// Exact planarity testing and planar embedding via the left-right (LR)
// algorithm (Brandes, "The left-right planarity test"). Linear time up to
// adjacency-list sorting; fully iterative, so arbitrarily deep DFS trees
// (paths, long cycles) are safe.
//
// This is a *centralized* substrate: the distributed tester uses it (a) as a
// stand-in for the Ghaffari-Haeupler distributed embedding black box (see
// DESIGN.md substitution #2) and (b) as ground truth in tests and benches.
#pragma once

#include <optional>

#include "graph/graph.h"
#include "planar/embedding.h"

namespace cpt {

// True iff g (simple, undirected, possibly disconnected) is planar.
bool is_planar(const Graph& g);

// A combinatorial planar embedding of g, or nullopt iff g is not planar.
std::optional<RotationSystem> lr_planar_embedding(const Graph& g);

}  // namespace cpt
