#include "planar/kuratowski.h"

#include <algorithm>

#include "planar/lr_planarity.h"
#include "util/contracts.h"

namespace cpt {
namespace {

Graph subgraph_from_edges(const Graph& g, const std::vector<EdgeId>& edges,
                          EdgeId skip) {
  GraphBuilder b(g.num_nodes());
  for (const EdgeId e : edges) {
    if (e == skip) continue;
    const Endpoints ep = g.endpoints(e);
    b.add_edge(ep.u, ep.v);
  }
  return std::move(b).build();
}

constexpr EdgeId kSkipNone = kNoEdge;

}  // namespace

std::optional<KuratowskiWitness> find_kuratowski_subdivision(const Graph& g) {
  if (is_planar(g)) return std::nullopt;

  // Greedy minimization: drop every edge whose removal keeps the subgraph
  // non-planar. One forward sweep suffices: planarity is monotone under
  // edge removal, so an edge that must stay now must stay forever.
  std::vector<EdgeId> edges(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges[e] = e;
  std::size_t i = 0;
  while (i < edges.size()) {
    const EdgeId candidate = edges[i];
    if (!is_planar(subgraph_from_edges(g, edges, candidate))) {
      edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  KuratowskiWitness w;
  w.edges = std::move(edges);
  std::vector<std::uint32_t> degree(g.num_nodes(), 0);
  for (const EdgeId e : w.edges) {
    const Endpoints ep = g.endpoints(e);
    ++degree[ep.u];
    ++degree[ep.v];
  }
  std::uint32_t deg3 = 0;
  std::uint32_t deg4 = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (degree[v] == 3) {
      ++deg3;
      w.branch_nodes.push_back(v);
    } else if (degree[v] == 4) {
      ++deg4;
      w.branch_nodes.push_back(v);
    } else {
      CPT_ASSERT(degree[v] == 0 || degree[v] == 2);
    }
  }
  // A minimal non-planar graph is a K5 subdivision (five degree-4 branch
  // nodes) or a K3,3 subdivision (six degree-3 branch nodes).
  if (deg4 == 5 && deg3 == 0) {
    w.kind = KuratowskiWitness::Kind::kK5;
  } else {
    CPT_ASSERT(deg3 == 6 && deg4 == 0);
    w.kind = KuratowskiWitness::Kind::kK33;
  }
  return w;
}

bool validate_kuratowski_witness(const Graph& g, const KuratowskiWitness& w) {
  // Non-planar as a whole...
  if (is_planar(subgraph_from_edges(g, w.edges, kSkipNone))) return false;
  // ...and minimal: removing any single edge restores planarity.
  for (const EdgeId e : w.edges) {
    if (!is_planar(subgraph_from_edges(g, w.edges, e))) return false;
  }
  // Branch count matches the kind.
  const std::size_t expected =
      w.kind == KuratowskiWitness::Kind::kK5 ? 5 : 6;
  return w.branch_nodes.size() == expected;
}

}  // namespace cpt
