#include "planar/embedding.h"

#include <algorithm>

#include "graph/properties.h"

namespace cpt {
namespace {

// Arc id of the half-edge of e leaving node v: 2e for the lower endpoint
// (endpoints(e).u), 2e+1 for the higher.
std::uint64_t arc_leaving(const Graph& g, EdgeId e, NodeId v) {
  const Endpoints ep = g.endpoints(e);
  CPT_EXPECTS(ep.u == v || ep.v == v);
  return 2ULL * e + (ep.u == v ? 0 : 1);
}

}  // namespace

bool is_valid_rotation(const Graph& g, const RotationSystem& rotation) {
  if (rotation.size() != g.num_nodes()) return false;
  std::vector<std::uint8_t> seen(g.num_edges(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rotation[v].size() != g.degree(v)) return false;
    for (const EdgeId e : rotation[v]) {
      if (e >= g.num_edges()) return false;
      const Endpoints ep = g.endpoints(e);
      if (ep.u != v && ep.v != v) return false;
      const int bit = ep.u == v ? 1 : 2;
      if (seen[e] & bit) return false;  // duplicate within the node's list
      seen[e] |= static_cast<std::uint8_t>(bit);
    }
  }
  return true;
}

std::uint64_t count_faces(const Graph& g, const RotationSystem& rotation) {
  CPT_EXPECTS(is_valid_rotation(g, rotation));
  const std::uint64_t num_arcs = 2ULL * g.num_edges();
  // Position of each leaving arc within its node's rotation.
  std::vector<std::uint32_t> pos(num_arcs, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t i = 0; i < rotation[v].size(); ++i) {
      pos[arc_leaving(g, rotation[v][i], v)] = i;
    }
  }
  // Face tracing: from arc (u -> v) along e, the next arc leaves v along the
  // rotation successor of e at v.
  std::vector<bool> visited(num_arcs, false);
  std::uint64_t faces = 0;
  for (std::uint64_t start = 0; start < num_arcs; ++start) {
    if (visited[start]) continue;
    ++faces;
    std::uint64_t arc = start;
    while (!visited[arc]) {
      visited[arc] = true;
      const EdgeId e = static_cast<EdgeId>(arc / 2);
      const Endpoints ep = g.endpoints(e);
      const NodeId from = (arc % 2 == 0) ? ep.u : ep.v;
      const NodeId to = (arc % 2 == 0) ? ep.v : ep.u;
      const std::uint32_t idx = pos[arc_leaving(g, e, to)];
      const std::uint32_t next_idx =
          (idx + 1) % static_cast<std::uint32_t>(rotation[to].size());
      const EdgeId next_edge = rotation[to][next_idx];
      arc = arc_leaving(g, next_edge, to);
      (void)from;
    }
  }
  return faces;
}

bool verify_planar_embedding(const Graph& g, const RotationSystem& rotation) {
  if (!is_valid_rotation(g, rotation)) return false;
  // Count faces per component. Isolated nodes contribute one face each and
  // satisfy Euler trivially (1 - 0 + 1 = 2).
  const ComponentInfo comps = connected_components(g);
  std::vector<std::int64_t> nodes(comps.num_components, 0);
  std::vector<std::int64_t> edges(comps.num_components, 0);
  std::vector<std::int64_t> faces(comps.num_components, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++nodes[comps.component_of[v]];
  for (const Endpoints e : g.edges()) ++edges[comps.component_of[e.u]];

  const std::uint64_t num_arcs = 2ULL * g.num_edges();
  std::vector<std::uint32_t> pos(num_arcs, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t i = 0; i < rotation[v].size(); ++i) {
      pos[arc_leaving(g, rotation[v][i], v)] = i;
    }
  }
  std::vector<bool> visited(num_arcs, false);
  for (std::uint64_t start = 0; start < num_arcs; ++start) {
    if (visited[start]) continue;
    const EdgeId start_edge = static_cast<EdgeId>(start / 2);
    ++faces[comps.component_of[g.endpoints(start_edge).u]];
    std::uint64_t arc = start;
    while (!visited[arc]) {
      visited[arc] = true;
      const EdgeId e = static_cast<EdgeId>(arc / 2);
      const Endpoints ep = g.endpoints(e);
      const NodeId to = (arc % 2 == 0) ? ep.v : ep.u;
      const std::uint32_t idx = pos[arc_leaving(g, e, to)];
      const std::uint32_t next_idx =
          (idx + 1) % static_cast<std::uint32_t>(rotation[to].size());
      arc = arc_leaving(g, rotation[to][next_idx], to);
    }
  }
  for (NodeId c = 0; c < comps.num_components; ++c) {
    if (nodes[c] == 1) continue;  // isolated node: trivially planar
    if (nodes[c] - edges[c] + faces[c] != 2) return false;
  }
  return true;
}

RotationSystem adjacency_rotation(const Graph& g) {
  RotationSystem rotation(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    rotation[v].reserve(g.degree(v));
    for (const Arc& a : g.neighbors(v)) rotation[v].push_back(a.edge);
  }
  return rotation;
}

}  // namespace cpt
