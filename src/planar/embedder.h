// Best-effort combinatorial embedding, mirroring the behaviour Stage II of
// the tester assumes from the distributed Ghaffari-Haeupler embedding
// black box: on planar inputs it produces a genuine planar embedding; on
// non-planar inputs it still emits *some* rotation system (the algorithm
// runs under a promise it cannot check), and the violation-detection step
// downstream is what catches the lie.
#pragma once

#include "graph/graph.h"
#include "planar/embedding.h"

namespace cpt {

struct EmbeddingResult {
  RotationSystem rotation;
  // True iff the rotation is a certified planar embedding (LR succeeded).
  // False means the graph is non-planar and `rotation` is a fallback
  // ordering; note the paper's Stage II never gets to *see* this flag --
  // it exists for tests and for the `eager_reject` tester mode.
  bool planar_certified = false;
};

EmbeddingResult best_effort_embedding(const Graph& g);

}  // namespace cpt
