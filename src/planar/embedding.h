// Combinatorial embeddings (rotation systems) and their verification.
//
// A rotation system assigns every node a circular ordering of its incident
// edges. A rotation system corresponds to a planar (genus-0) embedding iff
// face tracing satisfies Euler's formula V - E + F = 2 on every connected
// component.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cpt {

// rotation[v] lists the edge ids incident to v in circular (clockwise) order.
using RotationSystem = std::vector<std::vector<EdgeId>>;

// True iff rotation[v] is a permutation of the edges incident to v, for all v.
bool is_valid_rotation(const Graph& g, const RotationSystem& rotation);

// Number of faces traced by the rotation system (over all components).
// Precondition: is_valid_rotation.
std::uint64_t count_faces(const Graph& g, const RotationSystem& rotation);

// True iff the rotation system is a planar embedding: valid, and every
// connected component satisfies V - E + F = 2 (faces counted per component).
bool verify_planar_embedding(const Graph& g, const RotationSystem& rotation);

// Rotation system listing each node's incident edges in adjacency order.
// Not planar in general; used as the "best effort" fallback.
RotationSystem adjacency_rotation(const Graph& g);

}  // namespace cpt
