// Non-planarity certificates: an edge-minimal non-planar subgraph is a
// subdivision of K5 or K3,3 (Kuratowski's theorem). Extraction is by greedy
// edge minimization over the exact LR test -- O(m^2) worst case, intended
// for witness reporting and tests, not for the round-critical path.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace cpt {

struct KuratowskiWitness {
  enum class Kind { kK5, kK33 };

  Kind kind = Kind::kK5;
  std::vector<EdgeId> edges;        // edge ids (into the input graph)
  std::vector<NodeId> branch_nodes; // 5 nodes of degree 4, or 6 of degree 3
};

// A Kuratowski subdivision witness, or nullopt iff g is planar.
std::optional<KuratowskiWitness> find_kuratowski_subdivision(const Graph& g);

// Validation helper (tests): the witness edges form a non-planar,
// edge-minimal subgraph whose branch structure matches `kind`.
bool validate_kuratowski_witness(const Graph& g, const KuratowskiWitness& w);

}  // namespace cpt
