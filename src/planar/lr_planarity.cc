#include "planar/lr_planarity.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace cpt {
namespace {

constexpr std::uint32_t kNone32 = static_cast<std::uint32_t>(-1);

// One run of the LR algorithm. Phase 1 orients the graph by DFS and computes
// lowpoints and nesting depths; phase 2 maintains a stack of conflict pairs
// of intervals of back edges and fails exactly when the graph is non-planar;
// phase 3 (optional) resolves edge sides and constructs a rotation system.
class LrAlgorithm {
 public:
  explicit LrAlgorithm(const Graph& g)
      : g_(g),
        height_(g.num_nodes(), kNone32),
        parent_edge_(g.num_nodes(), kNoEdge),
        orient_src_(g.num_edges(), kNoNode),
        lowpt_(g.num_edges(), 0),
        lowpt2_(g.num_edges(), 0),
        nesting_(g.num_edges(), 0),
        ref_(g.num_edges(), kNoEdge),
        side_(g.num_edges(), 1),
        lowpt_edge_(g.num_edges(), kNoEdge),
        stack_bottom_(g.num_edges(), 0) {}

  // Returns true iff planar. If `rotation` is non-null and the graph is
  // planar, fills it with a planar rotation system.
  bool run(RotationSystem* rotation) {
    const std::int64_t n = g_.num_nodes();
    const std::int64_t m = g_.num_edges();
    if (n >= 3 && m > 3 * n - 6) return false;  // Euler bound

    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (height_[v] == kNone32) {
        height_[v] = 0;
        roots_.push_back(v);
        orient_dfs(v);
      }
    }
    build_ordered_out();
    for (const NodeId root : roots_) {
      if (!test_dfs(root)) return false;
    }
    if (rotation != nullptr) build_embedding(*rotation);
    return true;
  }

 private:
  struct Interval {
    EdgeId lo = kNoEdge;
    EdgeId hi = kNoEdge;
    bool empty() const { return lo == kNoEdge && hi == kNoEdge; }
  };

  struct ConflictPair {
    Interval left;
    Interval right;
    void swap_sides() { std::swap(left, right); }
  };

  NodeId src(EdgeId e) const { return orient_src_[e]; }
  NodeId dst(EdgeId e) const { return g_.other_endpoint(e, orient_src_[e]); }

  // ---- Phase 1: orientation ----

  // Finalizes a fully explored oriented edge e: computes its nesting depth
  // and folds its lowpoints into its parent edge's.
  void finalize_edge(EdgeId e) {
    const NodeId u = src(e);
    nesting_[e] = 2 * static_cast<std::int64_t>(lowpt_[e]) +
                  (lowpt2_[e] < height_[u] ? 1 : 0);
    const EdgeId pe = parent_edge_[u];
    if (pe == kNoEdge) return;
    if (lowpt_[e] < lowpt_[pe]) {
      lowpt2_[pe] = std::min(lowpt_[pe], lowpt2_[e]);
      lowpt_[pe] = lowpt_[e];
    } else if (lowpt_[e] > lowpt_[pe]) {
      lowpt2_[pe] = std::min(lowpt2_[pe], lowpt_[e]);
    } else {
      lowpt2_[pe] = std::min(lowpt2_[pe], lowpt2_[e]);
    }
  }

  void orient_dfs(NodeId root) {
    struct Frame {
      NodeId v;
      std::uint32_t i;
    };
    std::vector<Frame> stack{{root, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const NodeId v = f.v;
      const auto nbrs = g_.neighbors(v);
      if (f.i < nbrs.size()) {
        const Arc a = nbrs[f.i];
        ++f.i;
        if (orient_src_[a.edge] != kNoNode) continue;  // already oriented
        orient_src_[a.edge] = v;
        lowpt_[a.edge] = height_[v];
        lowpt2_[a.edge] = height_[v];
        if (height_[a.to] == kNone32) {  // tree edge
          parent_edge_[a.to] = a.edge;
          height_[a.to] = height_[v] + 1;
          stack.push_back({a.to, 0});
        } else {  // back edge
          lowpt_[a.edge] = height_[a.to];
          finalize_edge(a.edge);
        }
      } else {
        stack.pop_back();
        const EdgeId e = parent_edge_[v];
        if (e != kNoEdge) finalize_edge(e);
      }
    }
  }

  void build_ordered_out() {
    ordered_out_.assign(g_.num_nodes(), {});
    for (EdgeId e = 0; e < g_.num_edges(); ++e) {
      if (orient_src_[e] != kNoNode) ordered_out_[orient_src_[e]].push_back(e);
    }
    sort_ordered_out();
  }

  void sort_ordered_out() {
    for (auto& out : ordered_out_) {
      std::sort(out.begin(), out.end(), [this](EdgeId a, EdgeId b) {
        return nesting_[a] != nesting_[b] ? nesting_[a] < nesting_[b] : a < b;
      });
    }
  }

  // ---- Phase 2: testing ----

  bool conflicting(const Interval& i, EdgeId b) const {
    return !i.empty() && lowpt_[i.hi] > lowpt_[b];
  }

  std::uint32_t lowest(const ConflictPair& p) const {
    CPT_ASSERT(!(p.left.empty() && p.right.empty()));
    if (p.left.empty()) return lowpt_[p.right.lo];
    if (p.right.empty()) return lowpt_[p.left.lo];
    return std::min(lowpt_[p.left.lo], lowpt_[p.right.lo]);
  }

  // Integrates the constraints of edge ei (just fully processed) with those
  // of its preceding siblings, all children of parent edge e.
  bool add_constraints(EdgeId ei, EdgeId e) {
    ConflictPair p;
    // Merge return edges of ei into p.right.
    do {
      CPT_ASSERT(S_.size() > stack_bottom_[ei]);
      ConflictPair q = S_.back();
      S_.pop_back();
      if (!q.left.empty()) q.swap_sides();
      if (!q.left.empty()) return false;  // not planar
      CPT_ASSERT(q.right.lo != kNoEdge);
      if (lowpt_[q.right.lo] > lowpt_[e]) {
        // Merge intervals.
        if (p.right.empty()) {
          p.right.hi = q.right.hi;
        } else {
          ref_[p.right.lo] = q.right.hi;
        }
        p.right.lo = q.right.lo;
      } else {
        // Align.
        ref_[q.right.lo] = lowpt_edge_[e];
      }
    } while (S_.size() > stack_bottom_[ei]);
    // Merge conflicting return edges of previous siblings into p.left.
    while (!S_.empty() &&
           (conflicting(S_.back().left, ei) || conflicting(S_.back().right, ei))) {
      ConflictPair q = S_.back();
      S_.pop_back();
      if (conflicting(q.right, ei)) q.swap_sides();
      if (conflicting(q.right, ei)) return false;  // not planar
      // Merge interval below lowpt(ei) into p.right.
      if (p.right.lo != kNoEdge) ref_[p.right.lo] = q.right.hi;
      if (q.right.lo != kNoEdge) p.right.lo = q.right.lo;
      if (p.left.empty()) {
        p.left.hi = q.left.hi;
      } else {
        ref_[p.left.lo] = q.left.hi;
      }
      p.left.lo = q.left.lo;
    }
    if (!(p.left.empty() && p.right.empty())) S_.push_back(p);
    return true;
  }

  // Removes back edges that end at the parent u of edge e, after e's subtree
  // has been fully processed.
  void remove_back_edges(EdgeId e) {
    const NodeId u = src(e);
    // Drop entire conflict pairs whose lowest return point is u.
    while (!S_.empty() && lowest(S_.back()) == height_[u]) {
      ConflictPair p = S_.back();
      S_.pop_back();
      if (p.left.lo != kNoEdge) side_[p.left.lo] = -1;
    }
    if (S_.empty()) return;
    // Trim the topmost remaining pair.
    ConflictPair p = S_.back();
    S_.pop_back();
    while (p.left.hi != kNoEdge && dst(p.left.hi) == u) p.left.hi = ref_[p.left.hi];
    if (p.left.hi == kNoEdge && p.left.lo != kNoEdge) {
      // Left interval just became empty.
      ref_[p.left.lo] = p.right.lo;
      side_[p.left.lo] = -1;
      p.left.lo = kNoEdge;
    }
    while (p.right.hi != kNoEdge && dst(p.right.hi) == u) p.right.hi = ref_[p.right.hi];
    if (p.right.hi == kNoEdge && p.right.lo != kNoEdge) {
      ref_[p.right.lo] = p.left.lo;
      side_[p.right.lo] = -1;
      p.right.lo = kNoEdge;
    }
    S_.push_back(p);
  }

  // Handles the constraint bookkeeping after edge `ei` (the i-th ordered
  // out-edge of v) has been fully processed.
  bool integrate_edge(NodeId v, EdgeId parent, EdgeId ei, std::uint32_t i) {
    if (lowpt_[ei] < height_[v]) {  // ei has a return edge
      if (i == 0) {
        CPT_ASSERT(parent != kNoEdge);
        lowpt_edge_[parent] = lowpt_edge_[ei];
      } else if (!add_constraints(ei, parent)) {
        return false;
      }
    }
    return true;
  }

  bool test_dfs(NodeId root) {
    struct Frame {
      NodeId v;
      std::uint32_t i = 0;
      bool resume = false;  // true when returning from a tree-edge child
    };
    std::vector<Frame> stack{{root}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const NodeId v = f.v;
      const EdgeId e = parent_edge_[v];
      const auto& out = ordered_out_[v];
      if (f.resume) {
        f.resume = false;
        if (!integrate_edge(v, e, out[f.i], f.i)) return false;
        ++f.i;
        continue;
      }
      if (f.i < out.size()) {
        const EdgeId ei = out[f.i];
        stack_bottom_[ei] = static_cast<std::uint32_t>(S_.size());
        const NodeId w = dst(ei);
        if (parent_edge_[w] == ei) {  // tree edge
          f.resume = true;
          stack.push_back({w});
        } else {  // back edge
          lowpt_edge_[ei] = ei;
          S_.push_back(ConflictPair{{}, {ei, ei}});
          if (!integrate_edge(v, e, ei, f.i)) return false;
          ++f.i;
        }
        continue;
      }
      // All out-edges of v processed.
      if (e != kNoEdge) {
        remove_back_edges(e);
        const NodeId u = src(e);
        if (lowpt_[e] < height_[u]) {  // e has a return edge
          CPT_ASSERT(!S_.empty());
          const EdgeId hl = S_.back().left.hi;
          const EdgeId hr = S_.back().right.hi;
          if (hl != kNoEdge && (hr == kNoEdge || lowpt_[hl] > lowpt_[hr])) {
            ref_[e] = hl;
          } else {
            ref_[e] = hr;
          }
        }
      }
      stack.pop_back();
    }
    return true;
  }

  // ---- Phase 3: embedding ----

  // Resolves the side of e through its ref chain (iteratively).
  int sign(EdgeId e) {
    chain_.clear();
    while (ref_[e] != kNoEdge) {
      chain_.push_back(e);
      e = ref_[e];
    }
    int s = side_[e];
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
      side_[*it] = static_cast<std::int8_t>(side_[*it] * s);
      ref_[*it] = kNoEdge;
      s = side_[*it];
    }
    return s;
  }

  // Circular doubly-linked lists of half-edges per node. The half-edge of
  // edge e at node v is addressed as 2e (+1 if v is the higher endpoint).
  std::uint64_t half(EdgeId e, NodeId v) const {
    const Endpoints ep = g_.endpoints(e);
    return 2ULL * e + (ep.u == v ? 0 : 1);
  }

  void list_init_singleton(NodeId v, EdgeId e) {
    const std::uint64_t a = half(e, v);
    nxt_[a] = a;
    prv_[a] = a;
    first_[v] = a;
  }

  void insert_after(std::uint64_t pos, std::uint64_t a) {
    nxt_[a] = nxt_[pos];
    prv_[a] = pos;
    prv_[nxt_[pos]] = a;
    nxt_[pos] = a;
  }

  void add_half_edge_cw(NodeId v, EdgeId e, EdgeId ref_edge) {
    CPT_ASSERT(ref_edge != kNoEdge);
    insert_after(half(ref_edge, v), half(e, v));
  }

  void add_half_edge_ccw(NodeId v, EdgeId e, EdgeId ref_edge) {
    CPT_ASSERT(ref_edge != kNoEdge);
    const std::uint64_t r = half(ref_edge, v);
    insert_after(prv_[r], half(e, v));
    if (first_[v] == r) first_[v] = half(e, v);
  }

  void add_half_edge_first(NodeId v, EdgeId e) {
    if (first_[v] == kNoHalf) {
      list_init_singleton(v, e);
    } else {
      const std::uint64_t f0 = first_[v];
      insert_after(prv_[f0], half(e, v));
      first_[v] = half(e, v);
    }
  }

  void embed_dfs(NodeId root) {
    struct Frame {
      NodeId v;
      std::uint32_t i = 0;
    };
    std::vector<Frame> stack{{root}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const NodeId v = f.v;
      const auto& out = ordered_out_[v];
      if (f.i >= out.size()) {
        stack.pop_back();
        continue;
      }
      const EdgeId ei = out[f.i];
      ++f.i;
      const NodeId w = dst(ei);
      if (parent_edge_[w] == ei) {  // tree edge: (w -> v) becomes w's first
        add_half_edge_first(w, ei);
        left_ref_[v] = ei;
        right_ref_[v] = ei;
        stack.push_back({w});
      } else {  // back edge into ancestor w
        if (side_[ei] == 1) {
          add_half_edge_cw(w, ei, right_ref_[w]);
        } else {
          add_half_edge_ccw(w, ei, left_ref_[w]);
          left_ref_[w] = ei;
        }
      }
    }
  }

  void build_embedding(RotationSystem& rotation) {
    for (EdgeId e = 0; e < g_.num_edges(); ++e) {
      if (orient_src_[e] != kNoNode) nesting_[e] *= sign(e);
    }
    sort_ordered_out();

    nxt_.assign(2ULL * g_.num_edges(), kNoHalf);
    prv_.assign(2ULL * g_.num_edges(), kNoHalf);
    first_.assign(g_.num_nodes(), kNoHalf);
    left_ref_.assign(g_.num_nodes(), kNoEdge);
    right_ref_.assign(g_.num_nodes(), kNoEdge);

    // Initialize each node's list with its outgoing half-edges in signed
    // nesting-depth order.
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      for (const EdgeId e : ordered_out_[v]) {
        if (first_[v] == kNoHalf) {
          list_init_singleton(v, e);
        } else {
          insert_after(prv_[first_[v]], half(e, v));  // append at end
        }
      }
    }
    for (const NodeId root : roots_) embed_dfs(root);

    rotation.assign(g_.num_nodes(), {});
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (first_[v] == kNoHalf) {
        CPT_ASSERT(g_.degree(v) == 0);
        continue;
      }
      rotation[v].reserve(g_.degree(v));
      std::uint64_t a = first_[v];
      do {
        rotation[v].push_back(static_cast<EdgeId>(a / 2));
        a = nxt_[a];
      } while (a != first_[v]);
      CPT_ASSERT(rotation[v].size() == g_.degree(v));
    }
  }

  static constexpr std::uint64_t kNoHalf = static_cast<std::uint64_t>(-1);

  const Graph& g_;
  std::vector<std::uint32_t> height_;
  std::vector<EdgeId> parent_edge_;  // per node
  std::vector<NodeId> orient_src_;   // per edge; kNoNode = unoriented
  std::vector<std::uint32_t> lowpt_;
  std::vector<std::uint32_t> lowpt2_;
  std::vector<std::int64_t> nesting_;
  std::vector<EdgeId> ref_;
  std::vector<std::int8_t> side_;
  std::vector<EdgeId> lowpt_edge_;
  std::vector<std::uint32_t> stack_bottom_;
  std::vector<ConflictPair> S_;
  std::vector<std::vector<EdgeId>> ordered_out_;
  std::vector<NodeId> roots_;
  std::vector<EdgeId> chain_;  // scratch for sign()

  // Embedding phase state.
  std::vector<std::uint64_t> nxt_;
  std::vector<std::uint64_t> prv_;
  std::vector<std::uint64_t> first_;
  std::vector<EdgeId> left_ref_;
  std::vector<EdgeId> right_ref_;
};

}  // namespace

bool is_planar(const Graph& g) {
  LrAlgorithm algo(g);
  return algo.run(nullptr);
}

std::optional<RotationSystem> lr_planar_embedding(const Graph& g) {
  LrAlgorithm algo(g);
  RotationSystem rotation;
  if (!algo.run(&rotation)) return std::nullopt;
  return rotation;
}

}  // namespace cpt
