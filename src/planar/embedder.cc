#include "planar/embedder.h"

#include "planar/lr_planarity.h"

namespace cpt {

EmbeddingResult best_effort_embedding(const Graph& g) {
  EmbeddingResult result;
  if (auto rotation = lr_planar_embedding(g)) {
    result.rotation = std::move(*rotation);
    result.planar_certified = true;
  } else {
    result.rotation = adjacency_rotation(g);
    result.planar_certified = false;
  }
  return result;
}

}  // namespace cpt
