#include "lowerbound/construction.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/generators.h"
#include "graph/properties.h"
#include "util/contracts.h"

namespace cpt {
namespace {

// Removes one edge of every cycle of length <= max_len. Returns the number
// of removed edges. Mutable adjacency with truncated BFS sweeps, repeated
// until a full clean pass.
std::uint64_t short_cycle_surgery(std::vector<std::vector<NodeId>>& adj,
                                  std::uint32_t max_len) {
  const NodeId n = static_cast<NodeId>(adj.size());
  const std::uint32_t depth_cap = max_len / 2 + 1;
  std::uint64_t removed = 0;
  std::vector<std::uint32_t> dist(n);
  std::vector<NodeId> parent(n);
  std::vector<NodeId> touched;

  const auto remove_edge = [&](NodeId a, NodeId b) {
    auto& na = adj[a];
    na.erase(std::find(na.begin(), na.end(), b));
    auto& nb = adj[b];
    nb.erase(std::find(nb.begin(), nb.end(), a));
    ++removed;
  };

  bool dirty = true;
  std::fill(dist.begin(), dist.end(), kUnreachable);
  while (dirty) {
    dirty = false;
    for (NodeId s = 0; s < n; ++s) {
      bool restart = true;
      while (restart) {
        restart = false;
        for (const NodeId t : touched) dist[t] = kUnreachable;
        touched.clear();
        std::queue<NodeId> frontier;
        dist[s] = 0;
        parent[s] = kNoNode;
        touched.push_back(s);
        frontier.push(s);
        while (!frontier.empty() && !restart) {
          const NodeId v = frontier.front();
          frontier.pop();
          if (dist[v] >= depth_cap) break;
          for (const NodeId w : adj[v]) {
            if (w == parent[v]) continue;
            if (dist[w] == kUnreachable) {
              dist[w] = dist[v] + 1;
              parent[w] = v;
              touched.push_back(w);
              frontier.push(w);
            } else if (dist[v] + dist[w] + 1 <= max_len) {
              // A cycle of length <= max_len (the BFS estimate can only
              // overshoot the true length, so <= is conservative).
              remove_edge(v, w);
              dirty = true;
              restart = true;
              break;
            }
          }
        }
      }
    }
  }
  return removed;
}

}  // namespace

LowerBoundInstance build_lower_bound_instance(const LowerBoundOptions& opt) {
  CPT_EXPECTS(opt.n >= 8);
  CPT_EXPECTS(opt.avg_degree > 1.0);
  Rng rng(opt.seed);
  LowerBoundInstance out;
  out.girth_target =
      opt.girth_target != 0
          ? opt.girth_target
          : std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(std::floor(
                       std::log(static_cast<double>(opt.n)) /
                       std::log(opt.avg_degree))) +
                       1);

  const Graph base = gen::gnp(opt.n, opt.avg_degree / opt.n, rng);
  std::vector<std::vector<NodeId>> adj(opt.n);
  for (const Endpoints e : base.edges()) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  out.removed_edges = short_cycle_surgery(adj, out.girth_target - 1);

  GraphBuilder builder(opt.n);
  for (NodeId v = 0; v < opt.n; ++v) {
    for (const NodeId w : adj[v]) {
      if (v < w) builder.add_edge(v, w);
    }
  }
  out.graph = std::move(builder).build();
  out.girth = girth(out.graph);
  CPT_ENSURES(out.girth >= out.girth_target);
  out.distance_lb = planarity_distance_lower_bound(out.graph);
  out.certified_eps =
      out.graph.num_edges() == 0
          ? 0.0
          : static_cast<double>(out.distance_lb) / out.graph.num_edges();
  return out;
}

}  // namespace cpt
