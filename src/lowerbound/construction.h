// The Omega(log n) lower-bound construction (Section 3, Claims 11/12):
// sample G(n, p), then remove one edge from every cycle shorter than the
// girth target, yielding a graph that is still far from planarity (edge
// excess over Euler's bound certifies the distance) while containing no
// cycle shorter than Theta(log n). Any one-sided tester running in fewer
// than girth/2 rounds sees only trees and must accept.
//
// Paper constants (p = 1000 k^2 / n) are proof-friendly; the defaults here
// are scaled down and the bench *measures* girth and certified distance.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpt {

struct LowerBoundOptions {
  NodeId n = 1024;
  double avg_degree = 12.0;      // p = avg_degree / n
  std::uint32_t girth_target = 0;  // 0 = max(4, floor(ln n / ln avg_degree) + 1)
  std::uint64_t seed = 1;
};

struct LowerBoundInstance {
  Graph graph;
  std::uint32_t girth_target = 0;
  std::uint32_t girth = 0;          // measured (>= girth_target)
  std::uint64_t removed_edges = 0;  // surgery cost
  std::uint64_t distance_lb = 0;    // m - (3n - 6): certified edges-to-remove
  double certified_eps = 0.0;       // distance_lb / m
};

LowerBoundInstance build_lower_bound_instance(const LowerBoundOptions& opt);

}  // namespace cpt
