// Structural graph operations: induced subgraphs, contractions, unions,
// relabelings, edge additions/removals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace cpt {

// Result of taking an induced subgraph: the subgraph plus node mappings.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;    // subgraph node -> original node
  std::vector<NodeId> from_original;  // original node -> subgraph node or kNoNode
};

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

// A graph with 64-bit edge weights (used for contracted auxiliary graphs).
struct WeightedGraph {
  Graph graph;
  std::vector<std::uint64_t> edge_weight;  // indexed by EdgeId

  std::uint64_t total_weight() const {
    std::uint64_t sum = 0;
    for (const auto w : edge_weight) sum += w;
    return sum;
  }
};

// Contracts g according to `part_of` (node -> part id in [0, num_parts)).
// Parallel edges between parts collapse into one weighted edge whose weight
// is the number of original edges; intra-part edges disappear.
WeightedGraph contract(const Graph& g, std::span<const NodeId> part_of,
                       NodeId num_parts);

// Disjoint union; node ids of the i-th input are shifted by the total size of
// the previous inputs.
Graph disjoint_union(std::span<const Graph> graphs);

// Relabels nodes: node v of the input becomes perm[v] in the output.
Graph relabel(const Graph& g, std::span<const NodeId> perm);

// Copy of g with extra edges added (duplicates ignored).
Graph add_edges(const Graph& g, std::span<const Endpoints> extra);

// Copy of g with the given edge ids removed.
Graph remove_edges(const Graph& g, std::span<const EdgeId> to_remove);

}  // namespace cpt
