#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/ops.h"
#include "util/union_find.h"

namespace cpt::gen {
namespace {

// Packs an unordered node pair into a 64-bit key for dedup sets.
std::uint64_t pair_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

Graph cycle(NodeId n) {
  CPT_EXPECTS(n >= 3);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return std::move(b).build();
}

Graph star(NodeId n) {
  CPT_EXPECTS(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

Graph complete(NodeId k) {
  GraphBuilder b(k);
  for (NodeId i = 0; i < k; ++i) {
    for (NodeId j = i + 1; j < k; ++j) b.add_edge(i, j);
  }
  return std::move(b).build();
}

Graph complete_bipartite(NodeId a, NodeId b_count) {
  GraphBuilder b(a + b_count);
  for (NodeId i = 0; i < a; ++i) {
    for (NodeId j = 0; j < b_count; ++j) b.add_edge(i, a + j);
  }
  return std::move(b).build();
}

Graph grid(NodeId rows, NodeId cols) {
  CPT_EXPECTS(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph triangulated_grid(NodeId rows, NodeId cols) {
  CPT_EXPECTS(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols) b.add_edge(id(r, c), id(r + 1, c + 1));
    }
  }
  return std::move(b).build();
}

Graph hypercube(std::uint32_t dim) {
  CPT_EXPECTS(dim < 25);
  const NodeId n = NodeId{1} << dim;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t d = 0; d < dim; ++d) {
      const NodeId w = v ^ (NodeId{1} << d);
      if (v < w) b.add_edge(v, w);
    }
  }
  return std::move(b).build();
}

Graph binary_tree(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  return std::move(b).build();
}

Graph random_tree(NodeId n, Rng& rng) {
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) {
    b.add_edge(i, static_cast<NodeId>(rng.next_below(i)));
  }
  return std::move(b).build();
}

namespace {

// Chords of a uniform-ish random triangulation of the convex polygon
// 0..n-1 (recursive split; not the exact uniform distribution over
// triangulations but covers the space and is always non-crossing).
void polygon_triangulation_chords(NodeId lo, NodeId hi, Rng& rng,
                                  std::vector<Endpoints>& out) {
  if (hi - lo < 2) return;
  const NodeId k = lo + 1 + static_cast<NodeId>(rng.next_below(hi - lo - 1));
  if (k > lo + 1) out.push_back({lo, k});
  if (k + 1 < hi) out.push_back({k, hi});
  polygon_triangulation_chords(lo, k, rng, out);
  polygon_triangulation_chords(k, hi, rng, out);
}

}  // namespace

Graph outerplanar(NodeId n, NodeId num_chords, Rng& rng) {
  CPT_EXPECTS(n >= 3);
  CPT_EXPECTS(num_chords + 3 <= n);
  std::vector<Endpoints> chords;
  polygon_triangulation_chords(0, n - 1, rng, chords);
  CPT_ASSERT(chords.size() == static_cast<std::size_t>(n) - 3);
  // Shuffle and keep a prefix.
  for (std::size_t i = chords.size(); i > 1; --i) {
    std::swap(chords[i - 1], chords[rng.next_below(i)]);
  }
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  for (NodeId i = 0; i < num_chords; ++i) b.add_edge(chords[i].u, chords[i].v);
  return std::move(b).build();
}

Graph apollonian(NodeId n, Rng& rng) {
  CPT_EXPECTS(n >= 3);
  GraphBuilder b(n);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  struct Face {
    NodeId a, b, c;
  };
  std::vector<Face> faces;
  // Both sides of the initial triangle are faces; inserting into either keeps
  // the graph planar, so track the outer face too for more variety.
  faces.push_back({0, 1, 2});
  faces.push_back({0, 2, 1});
  for (NodeId v = 3; v < n; ++v) {
    const std::size_t idx = rng.next_below(faces.size());
    const Face f = faces[idx];
    b.add_edge(v, f.a);
    b.add_edge(v, f.b);
    b.add_edge(v, f.c);
    faces[idx] = {f.a, f.b, v};
    faces.push_back({f.b, f.c, v});
    faces.push_back({f.c, f.a, v});
  }
  return std::move(b).build();
}

Graph random_planar(NodeId n, EdgeId m, Rng& rng) {
  CPT_EXPECTS(n >= 3);
  CPT_EXPECTS(m + 1 >= n);            // connected
  CPT_EXPECTS(m <= 3 * n - 6);        // planar
  const Graph maximal = apollonian(n, rng);
  // Random spanning tree of `maximal`: process edges in random order,
  // union-find keeps tree edges.
  std::vector<EdgeId> order(maximal.num_edges());
  for (EdgeId e = 0; e < maximal.num_edges(); ++e) order[e] = e;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  UnionFind uf(n);
  std::vector<bool> keep(maximal.num_edges(), false);
  EdgeId kept = 0;
  for (const EdgeId e : order) {
    const Endpoints ep = maximal.endpoints(e);
    if (uf.unite(ep.u, ep.v)) {
      keep[e] = true;
      ++kept;
    }
  }
  CPT_ASSERT(kept == n - 1);
  // Top up with random non-tree edges until we hit m.
  for (const EdgeId e : order) {
    if (kept == m) break;
    if (!keep[e]) {
      keep[e] = true;
      ++kept;
    }
  }
  GraphBuilder b(n);
  for (EdgeId e = 0; e < maximal.num_edges(); ++e) {
    if (keep[e]) {
      const Endpoints ep = maximal.endpoints(e);
      b.add_edge(ep.u, ep.v);
    }
  }
  return std::move(b).build();
}

Graph gnp(NodeId n, double p, Rng& rng) {
  CPT_EXPECTS(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p > 0.0) {
    // Geometric skipping over the n(n-1)/2 potential edges.
    const double log1mp = std::log1p(-p);
    std::uint64_t idx = 0;
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    while (true) {
      if (p < 1.0) {
        const double r = rng.next_double();
        idx += 1 + static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log1mp));
      } else {
        idx += 1;
      }
      if (idx > total) break;
      // Map linear index (1-based) to pair (u, v), u < v.
      const std::uint64_t k = idx - 1;
      const NodeId u = static_cast<NodeId>(
          n - 2 -
          static_cast<std::uint64_t>(
              std::floor((std::sqrt(8.0 * (total - 1 - k) + 1) - 1) / 2)));
      const std::uint64_t before_u =
          static_cast<std::uint64_t>(u) * n - static_cast<std::uint64_t>(u) * (u + 1) / 2;
      const NodeId v = static_cast<NodeId>(u + 1 + (k - before_u));
      CPT_ASSERT(u < v && v < n);
      b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph gnm(NodeId n, EdgeId m, Rng& rng) {
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  CPT_EXPECTS(m <= total);
  std::unordered_set<std::uint64_t> seen;
  GraphBuilder b(n);
  while (seen.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph random_regular(NodeId n, std::uint32_t d, Rng& rng) {
  CPT_EXPECTS(d < n);
  CPT_EXPECTS((static_cast<std::uint64_t>(n) * d) % 2 == 0);
  // Configuration model: pair up n*d stubs; resample on self-loop/multi-edge.
  std::vector<NodeId> stubs(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs[static_cast<std::size_t>(v) * d + i] = v;
  }
  for (int attempt = 0; attempt < 200; ++attempt) {
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
    }
    std::unordered_set<std::uint64_t> seen;
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      const NodeId u = stubs[i];
      const NodeId v = stubs[i + 1];
      if (u == v || !seen.insert(pair_key(u, v)).second) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    GraphBuilder b(n);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      b.add_edge(stubs[i], stubs[i + 1]);
    }
    return std::move(b).build();
  }
  CPT_ASSERT(false && "random_regular: too many rejections");
  return Graph{};
}

Graph planar_plus_random_edges(const Graph& g, EdgeId extra, Rng& rng) {
  const NodeId n = g.num_nodes();
  CPT_EXPECTS(static_cast<std::uint64_t>(g.num_edges()) + extra <=
              static_cast<std::uint64_t>(n) * (n - 1) / 2);
  std::unordered_set<std::uint64_t> present;
  for (const Endpoints e : g.edges()) present.insert(pair_key(e.u, e.v));
  std::vector<Endpoints> added;
  while (added.size() < extra) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (present.insert(pair_key(u, v)).second) added.push_back({u, v});
  }
  return add_edges(g, added);
}

Graph disjoint_copies(const Graph& g, NodeId t) {
  std::vector<Graph> copies(t, g);
  return disjoint_union(copies);
}

Graph wheel(NodeId n) {
  CPT_EXPECTS(n >= 4);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) {
    b.add_edge(0, i);
    b.add_edge(i, i + 1 == n ? 1 : i + 1);
  }
  return std::move(b).build();
}

Graph caterpillar(NodeId spine, NodeId legs, Rng& rng) {
  CPT_EXPECTS(spine >= 1);
  GraphBuilder b(spine + legs);
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  for (NodeId leg = 0; leg < legs; ++leg) {
    b.add_edge(spine + leg, static_cast<NodeId>(rng.next_below(spine)));
  }
  return std::move(b).build();
}

Graph toroidal_grid(NodeId rows, NodeId cols) {
  CPT_EXPECTS(rows >= 3 && cols >= 3);
  GraphBuilder b(rows * cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(b).build();
}

Graph planar_with_k5_blobs(NodeId backbone_n, NodeId t, Rng& rng) {
  const Graph backbone = random_planar(
      backbone_n, std::min<EdgeId>(2 * backbone_n, 3 * backbone_n - 6), rng);
  GraphBuilder b(backbone_n + 5 * t);
  for (const Endpoints e : backbone.edges()) b.add_edge(e.u, e.v);
  for (NodeId i = 0; i < t; ++i) {
    const NodeId base = backbone_n + 5 * i;
    for (NodeId x = 0; x < 5; ++x) {
      for (NodeId y = x + 1; y < 5; ++y) b.add_edge(base + x, base + y);
    }
    // Glue by a single edge so the K5 contributes no extra planarity slack.
    b.add_edge(base, static_cast<NodeId>(rng.next_below(backbone_n)));
  }
  return std::move(b).build();
}

}  // namespace cpt::gen
