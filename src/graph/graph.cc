#include "graph/graph.h"

#include <algorithm>

namespace cpt {

Graph GraphBuilder::build() && {
  // Normalize and deduplicate: sort endpoint pairs (u < v), then unique.
  // Edge ids are assigned after dedup, in sorted-normalized order of first
  // insertion -- deterministic for a given edge multiset.
  std::vector<Endpoints> edges = std::move(pending_);
  for (Endpoints& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const Endpoints& a, const Endpoints& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Endpoints& a, const Endpoints& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());

  Graph g;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const Endpoints& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.arcs_.resize(2 * static_cast<std::size_t>(g.edges_.size()));
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const Endpoints ep = g.edges_[e];
    g.arcs_[cursor[ep.u]++] = {ep.v, e, 0};
    g.arcs_[cursor[ep.v]++] = {ep.u, e, 0};
  }

  // Fill Arc::peer_arc: record each endpoint's global arc index per
  // half-edge, then hand every arc the index of its reverse.
  std::vector<std::uint32_t> side_arc(g.arcs_.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (std::uint32_t i = g.offsets_[v]; i < g.offsets_[v + 1]; ++i) {
      const Arc& a = g.arcs_[i];
      const std::uint32_t side = g.edges_[a.edge].u == v ? 0u : 1u;
      side_arc[2ULL * a.edge + side] = i;
    }
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (std::uint32_t i = g.offsets_[v]; i < g.offsets_[v + 1]; ++i) {
      Arc& a = g.arcs_[i];
      const std::uint32_t side = g.edges_[a.edge].u == v ? 0u : 1u;
      a.peer_arc = side_arc[2ULL * a.edge + (side ^ 1)];
    }
  }
  return g;
}

}  // namespace cpt
