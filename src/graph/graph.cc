#include "graph/graph.h"

#include <algorithm>
#include <memory>

namespace cpt {

namespace {

// Heap home of a builder-produced graph's CSR arrays; Graph spans point
// into it and the type-erased shared_ptr keeps it alive across copies.
struct OwnedCsr {
  std::vector<std::uint32_t> offsets;
  std::vector<Arc> arcs;
  std::vector<Endpoints> edges;
};

}  // namespace

Graph GraphBuilder::build() && {
  // Normalize and deduplicate: sort endpoint pairs (u < v), then unique.
  // Edge ids are assigned after dedup, in sorted-normalized order of first
  // insertion -- deterministic for a given edge multiset.
  auto own = std::make_shared<OwnedCsr>();
  own->edges = std::move(pending_);
  std::vector<Endpoints>& edges = own->edges;
  for (Endpoints& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const Endpoints& a, const Endpoints& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Endpoints& a, const Endpoints& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());

  std::vector<std::uint32_t>& offsets = own->offsets;
  offsets.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const Endpoints& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  std::vector<Arc>& arcs = own->arcs;
  arcs.resize(2 * edges.size());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < edges.size(); ++e) {
    const Endpoints ep = edges[e];
    arcs[cursor[ep.u]++] = {ep.v, e, 0};
    arcs[cursor[ep.v]++] = {ep.u, e, 0};
  }

  // Fill Arc::peer_arc: record each endpoint's global arc index per
  // half-edge, then hand every arc the index of its reverse.
  std::vector<std::uint32_t> side_arc(arcs.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (std::uint32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Arc& a = arcs[i];
      const std::uint32_t side = edges[a.edge].u == v ? 0u : 1u;
      side_arc[2ULL * a.edge + side] = i;
    }
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (std::uint32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      Arc& a = arcs[i];
      const std::uint32_t side = edges[a.edge].u == v ? 0u : 1u;
      a.peer_arc = side_arc[2ULL * a.edge + (side ^ 1)];
    }
  }

  Graph g;
  g.offsets_ = own->offsets;
  g.arcs_ = own->arcs;
  g.edges_ = own->edges;
  g.backing_ = std::move(own);
  return g;
}

}  // namespace cpt
