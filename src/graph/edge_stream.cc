#include "graph/edge_stream.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt::gen {

namespace {

// Row-major lattice walker. Per node v = (r, c), in order: east (v, v+1),
// south (v, v+cols), and -- triangulated only -- south-east (v, v+cols+1).
// For a fixed v these targets are strictly increasing, and v itself
// ascends, so the output is sorted-normalized without any buffering. This
// is the same edge set (and therefore the same edge-id order) as
// gen::grid / gen::triangulated_grid.
class LatticeStream final : public EdgeStream {
 public:
  LatticeStream(NodeId rows, NodeId cols, bool diagonals)
      : rows_(rows), cols_(cols), diagonals_(diagonals) {
    CPT_EXPECTS(rows >= 1 && cols >= 1);
    CPT_EXPECTS(static_cast<std::uint64_t>(rows) * cols <= 0xFFFFFFFEULL);
    const std::uint64_t horizontal =
        static_cast<std::uint64_t>(rows) * (cols - 1);
    const std::uint64_t vertical =
        static_cast<std::uint64_t>(rows - 1) * cols;
    const std::uint64_t diag =
        diagonals ? static_cast<std::uint64_t>(rows - 1) * (cols - 1) : 0;
    const std::uint64_t total = horizontal + vertical + diag;
    CPT_EXPECTS(total <= 0xFFFFFFFFULL);
    num_edges_ = static_cast<EdgeId>(total);
  }

  NodeId num_nodes() const override { return rows_ * cols_; }
  EdgeId num_edges() const override { return num_edges_; }

  void rewind() override {
    r_ = 0;
    c_ = 0;
    step_ = 0;
  }

  bool next(Endpoints* out) override {
    while (r_ < rows_) {
      const NodeId v = r_ * cols_ + c_;
      const bool east_ok = c_ + 1 < cols_;
      const bool south_ok = r_ + 1 < rows_;
      switch (step_) {
        case 0:
          ++step_;
          if (east_ok) {
            *out = {v, v + 1};
            return true;
          }
          [[fallthrough]];
        case 1:
          ++step_;
          if (south_ok) {
            *out = {v, v + cols_};
            return true;
          }
          [[fallthrough]];
        default:
          step_ = 0;
          if (++c_ == cols_) {
            c_ = 0;
            ++r_;
          }
          if (diagonals_ && east_ok && south_ok) {
            *out = {v, v + cols_ + 1};
            return true;
          }
      }
    }
    return false;
  }

 private:
  NodeId rows_;
  NodeId cols_;
  bool diagonals_;
  EdgeId num_edges_ = 0;
  NodeId r_ = 0;
  NodeId c_ = 0;
  unsigned step_ = 0;  // next emission for the current node: 0=E, 1=S, 2=SE
};

class MergedStream final : public EdgeStream {
 public:
  MergedStream(std::unique_ptr<EdgeStream> base, std::vector<Endpoints> extra)
      : base_(std::move(base)), extra_(std::move(extra)) {
    for ([[maybe_unused]] const Endpoints& e : extra_) CPT_EXPECTS(e.u < e.v);
    std::sort(extra_.begin(), extra_.end(),
              [](const Endpoints& a, const Endpoints& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    rewind();
  }

  NodeId num_nodes() const override { return base_->num_nodes(); }
  EdgeId num_edges() const override {
    return base_->num_edges() + static_cast<EdgeId>(extra_.size());
  }

  void rewind() override {
    base_->rewind();
    base_live_ = base_->next(&base_next_);
    extra_pos_ = 0;
  }

  bool next(Endpoints* out) override {
    const bool extra_live = extra_pos_ < extra_.size();
    if (!base_live_ && !extra_live) return false;
    const bool take_base =
        base_live_ &&
        (!extra_live || base_next_.u < extra_[extra_pos_].u ||
         (base_next_.u == extra_[extra_pos_].u &&
          base_next_.v < extra_[extra_pos_].v));
    if (take_base) {
      *out = base_next_;
      base_live_ = base_->next(&base_next_);
    } else {
      *out = extra_[extra_pos_++];
    }
    return true;
  }

 private:
  std::unique_ptr<EdgeStream> base_;
  std::vector<Endpoints> extra_;
  Endpoints base_next_{};
  bool base_live_ = false;
  std::size_t extra_pos_ = 0;
};

}  // namespace

std::unique_ptr<EdgeStream> grid_stream(NodeId rows, NodeId cols) {
  return std::make_unique<LatticeStream>(rows, cols, false);
}

std::unique_ptr<EdgeStream> triangulated_grid_stream(NodeId rows, NodeId cols) {
  return std::make_unique<LatticeStream>(rows, cols, true);
}

std::unique_ptr<EdgeStream> merge_extra_edges(std::unique_ptr<EdgeStream> base,
                                              std::vector<Endpoints> extra) {
  return std::make_unique<MergedStream>(std::move(base), std::move(extra));
}

}  // namespace cpt::gen
