#include "graph/ops.h"

#include <algorithm>
#include <map>

namespace cpt {

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  InducedSubgraph out;
  out.from_original.assign(g.num_nodes(), kNoNode);
  out.to_original.assign(nodes.begin(), nodes.end());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    CPT_EXPECTS(nodes[i] < g.num_nodes());
    CPT_EXPECTS(out.from_original[nodes[i]] == kNoNode);  // no duplicates
    out.from_original[nodes[i]] = i;
  }
  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (const Endpoints e : g.edges()) {
    const NodeId u = out.from_original[e.u];
    const NodeId v = out.from_original[e.v];
    if (u != kNoNode && v != kNoNode) builder.add_edge(u, v);
  }
  out.graph = std::move(builder).build();
  return out;
}

WeightedGraph contract(const Graph& g, std::span<const NodeId> part_of,
                       NodeId num_parts) {
  CPT_EXPECTS(part_of.size() == g.num_nodes());
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> weight;
  for (const Endpoints e : g.edges()) {
    NodeId pu = part_of[e.u];
    NodeId pv = part_of[e.v];
    CPT_EXPECTS(pu < num_parts && pv < num_parts);
    if (pu == pv) continue;
    if (pu > pv) std::swap(pu, pv);
    ++weight[{pu, pv}];
  }
  GraphBuilder builder(num_parts);
  for (const auto& [key, w] : weight) builder.add_edge(key.first, key.second);
  WeightedGraph out;
  out.graph = std::move(builder).build();
  out.edge_weight.assign(out.graph.num_edges(), 0);
  for (const auto& [key, w] : weight) {
    const EdgeId e = out.graph.find_edge(key.first, key.second);
    CPT_ASSERT(e != kNoEdge);
    out.edge_weight[e] = w;
  }
  return out;
}

Graph disjoint_union(std::span<const Graph> graphs) {
  NodeId total = 0;
  for (const Graph& g : graphs) total += g.num_nodes();
  GraphBuilder builder(total);
  NodeId offset = 0;
  for (const Graph& g : graphs) {
    for (const Endpoints e : g.edges()) {
      builder.add_edge(e.u + offset, e.v + offset);
    }
    offset += g.num_nodes();
  }
  return std::move(builder).build();
}

Graph relabel(const Graph& g, std::span<const NodeId> perm) {
  CPT_EXPECTS(perm.size() == g.num_nodes());
  GraphBuilder builder(g.num_nodes());
  for (const Endpoints e : g.edges()) {
    builder.add_edge(perm[e.u], perm[e.v]);
  }
  return std::move(builder).build();
}

Graph add_edges(const Graph& g, std::span<const Endpoints> extra) {
  GraphBuilder builder(g.num_nodes());
  for (const Endpoints e : g.edges()) builder.add_edge(e.u, e.v);
  for (const Endpoints e : extra) builder.add_edge(e.u, e.v);
  return std::move(builder).build();
}

Graph remove_edges(const Graph& g, std::span<const EdgeId> to_remove) {
  std::vector<bool> removed(g.num_edges(), false);
  for (const EdgeId e : to_remove) {
    CPT_EXPECTS(e < g.num_edges());
    removed[e] = true;
  }
  GraphBuilder builder(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!removed[e]) {
      const Endpoints ep = g.endpoints(e);
      builder.add_edge(ep.u, ep.v);
    }
  }
  return std::move(builder).build();
}

}  // namespace cpt
