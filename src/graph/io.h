// Plain-text edge-list I/O:
//   line 1: "<num_nodes> <num_edges>"
//   next num_edges lines: "<u> <v>"
// Comments (lines starting with '#') and blank lines are skipped.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace cpt {

Graph read_edge_list(std::istream& in);
void write_edge_list(const Graph& g, std::ostream& out);

Graph load_edge_list_file(const std::string& path);
void save_edge_list_file(const Graph& g, const std::string& path);

}  // namespace cpt
