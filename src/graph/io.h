// Plain-text edge-list I/O:
//   line 1: "<num_nodes> <num_edges>"
//   next num_edges lines: "<u> <v>"
// Comments (lines starting with '#') and blank lines are skipped.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace cpt {

Graph read_edge_list(std::istream& in);
void write_edge_list(const Graph& g, std::ostream& out);

// Non-aborting variant for environmental inputs (user-supplied files):
// returns false and fills *error on a malformed list instead of tripping
// a contract. read_edge_list is this plus CPT_EXPECTS on the result.
bool try_read_edge_list(std::istream& in, Graph* out, std::string* error);

Graph load_edge_list_file(const std::string& path);
void save_edge_list_file(const Graph& g, const std::string& path);

}  // namespace cpt
