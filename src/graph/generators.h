// Graph families used by tests, benches and examples.
//
// Planar families: path, cycle, star, trees, grid, triangulated_grid,
// outerplanar, apollonian (maximal planar), random_planar.
// Non-planar / far-from-planar families: complete, complete_bipartite (a,b>=3),
// hypercube (dim>=4), gnp/gnm with m >> 3n, random_regular (d>=7 is
// non-planar by edge count for large n), planar_plus_random_edges.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpt::gen {

Graph path(NodeId n);
Graph cycle(NodeId n);
Graph star(NodeId n);  // n nodes total: one hub + n-1 leaves
Graph complete(NodeId k);
Graph complete_bipartite(NodeId a, NodeId b);
Graph grid(NodeId rows, NodeId cols);
// Grid with one diagonal per cell; maximal-planar-like density, diameter
// rows+cols.
Graph triangulated_grid(NodeId rows, NodeId cols);
Graph hypercube(std::uint32_t dim);
Graph binary_tree(NodeId n);

// Random recursive tree: node i >= 1 attaches to a uniform node < i.
Graph random_tree(NodeId n, Rng& rng);

// Cycle 0..n-1 plus `num_chords` non-crossing chords (<= n-3), sampled from a
// uniform random triangulation of the polygon. Always outerplanar.
Graph outerplanar(NodeId n, NodeId num_chords, Rng& rng);

// Random Apollonian network: maximal planar graph with 3n-6 edges (n >= 3),
// built by repeated insertion of a vertex into a uniformly chosen face.
Graph apollonian(NodeId n, Rng& rng);

// Connected planar graph with exactly m edges, n-1 <= m <= 3n-6: a random
// spanning tree of an Apollonian network plus a random subset of its
// remaining edges.
Graph random_planar(NodeId n, EdgeId m, Rng& rng);

// Erdos-Renyi G(n, p) via geometric edge skipping.
Graph gnp(NodeId n, double p, Rng& rng);

// Uniform graph with exactly m edges (m <= n(n-1)/2).
Graph gnm(NodeId n, EdgeId m, Rng& rng);

// Random d-regular graph via the configuration model (resampled until
// simple; requires n*d even, d < n).
Graph random_regular(NodeId n, std::uint32_t d, Rng& rng);

// Adds `extra` uniformly random non-edges to g.
Graph planar_plus_random_edges(const Graph& g, EdgeId extra, Rng& rng);

// t disjoint copies of g.
Graph disjoint_copies(const Graph& g, NodeId t);

// Wheel: a cycle of n-1 nodes plus a universal hub (node 0). Planar but not
// outerplanar for n >= 5.
Graph wheel(NodeId n);

// Caterpillar tree: a spine path with random leaf legs. Outerplanar.
Graph caterpillar(NodeId spine, NodeId legs, Rng& rng);

// Toroidal grid (grid with wrap-around rows and columns): genus 1, hence
// non-planar for rows, cols >= 3; locally looks exactly like a grid.
Graph toroidal_grid(NodeId rows, NodeId cols);

// Disjoint copies of K5 glued to a planar backbone by single edges: the
// graph stays connected and is at least (t / m)-far from planar (each K5
// needs one edge removed).
Graph planar_with_k5_blobs(NodeId backbone_n, NodeId t, Rng& rng);

}  // namespace cpt::gen
