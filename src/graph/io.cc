#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/contracts.h"

namespace cpt {
namespace {

// Next content line (skipping comments/blanks); false at EOF.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  CPT_EXPECTS(next_line(in, line) && "edge list: missing header");
  std::istringstream header(line);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  CPT_EXPECTS(static_cast<bool>(header >> n >> m) && "edge list: bad header");
  GraphBuilder b(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    CPT_EXPECTS(next_line(in, line) && "edge list: truncated");
    std::istringstream row(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    CPT_EXPECTS(static_cast<bool>(row >> u >> v) && "edge list: bad edge row");
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return std::move(b).build();
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Endpoints e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

Graph load_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  CPT_EXPECTS(in.good() && "cannot open edge list file");
  return read_edge_list(in);
}

void save_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  CPT_EXPECTS(out.good() && "cannot open output file");
  write_edge_list(g, out);
}

}  // namespace cpt
