#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/contracts.h"

namespace cpt {
namespace {

// Next content line (skipping comments/blanks); false at EOF.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

bool try_read_edge_list(std::istream& in, Graph* out, std::string* error) {
  const auto fail = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::string line;
  if (!next_line(in, line)) return fail("edge list: missing header");
  std::istringstream header(line);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  if (!(header >> n >> m)) return fail("edge list: bad header");
  if (n > 0xffffffffULL) return fail("edge list: node count exceeds 2^32");
  GraphBuilder b(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    if (!next_line(in, line)) return fail("edge list: truncated");
    std::istringstream row(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(row >> u >> v)) return fail("edge list: bad edge row");
    // GraphBuilder's preconditions, reported instead of tripped: this
    // variant exists precisely so user files cannot abort the process.
    if (u >= n || v >= n) return fail("edge list: endpoint out of range");
    if (u == v) return fail("edge list: self-loop");
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  *out = std::move(b).build();
  return true;
}

Graph read_edge_list(std::istream& in) {
  // Parsing happens outside the contract macros: checked conditions must
  // stay side-effect free or CPT_DISABLE_CONTRACTS builds would skip it.
  Graph g;
  std::string error;
  [[maybe_unused]] const bool ok = try_read_edge_list(in, &g, &error);
  CPT_EXPECTS(ok && "edge list: malformed (see try_read_edge_list)");
  return g;
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Endpoints e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

Graph load_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  CPT_EXPECTS(in.good() && "cannot open edge list file");
  return read_edge_list(in);
}

void save_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  CPT_EXPECTS(out.good() && "cannot open output file");
  write_edge_list(g, out);
}

}  // namespace cpt
