#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/contracts.h"

namespace cpt {
namespace {

// Next content line (skipping comments/blanks); false at EOF.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  // Reads happen outside the contract macros: checked conditions must stay
  // side-effect free or CPT_DISABLE_CONTRACTS builds would skip the parse.
  std::string line;
  [[maybe_unused]] const bool has_header = next_line(in, line);
  CPT_EXPECTS(has_header && "edge list: missing header");
  std::istringstream header(line);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  [[maybe_unused]] const bool header_ok =
      static_cast<bool>(header >> n >> m);
  CPT_EXPECTS(header_ok && "edge list: bad header");
  GraphBuilder b(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    [[maybe_unused]] const bool has_row = next_line(in, line);
    CPT_EXPECTS(has_row && "edge list: truncated");
    std::istringstream row(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    [[maybe_unused]] const bool row_ok = static_cast<bool>(row >> u >> v);
    CPT_EXPECTS(row_ok && "edge list: bad edge row");
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return std::move(b).build();
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Endpoints e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

Graph load_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  CPT_EXPECTS(in.good() && "cannot open edge list file");
  return read_edge_list(in);
}

void save_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  CPT_EXPECTS(out.good() && "cannot open output file");
  write_edge_list(g, out);
}

}  // namespace cpt
