#include "graph/properties.h"

#include <algorithm>
#include <queue>

namespace cpt {

ComponentInfo connected_components(const Graph& g) {
  ComponentInfo info;
  info.component_of.assign(g.num_nodes(), kNoNode);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (info.component_of[s] != kNoNode) continue;
    const NodeId comp = info.num_components++;
    info.component_of[s] = comp;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Arc& a : g.neighbors(v)) {
        if (info.component_of[a.to] == kNoNode) {
          info.component_of[a.to] = comp;
          stack.push_back(a.to);
        }
      }
    }
  }
  return info;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  return connected_components(g).num_components == 1;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  CPT_EXPECTS(src < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const Arc& a : g.neighbors(v)) {
      if (dist[a.to] == kUnreachable) {
        dist[a.to] = dist[v] + 1;
        frontier.push(a.to);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : bfs_distances(g, src)) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_exact(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, eccentricity(g, v));
  }
  return best;
}

std::uint32_t diameter_lower_bound(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  const auto dist = bfs_distances(g, 0);
  NodeId far = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] != kUnreachable && dist[v] > dist[far]) far = v;
  }
  return eccentricity(g, far);
}

std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g) {
  std::vector<std::uint8_t> color(g.num_nodes(), 2);  // 2 = uncolored
  std::queue<NodeId> frontier;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (color[s] != 2) continue;
    color[s] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const Arc& a : g.neighbors(v)) {
        if (color[a.to] == 2) {
          color[a.to] = static_cast<std::uint8_t>(1 - color[v]);
          frontier.push(a.to);
        } else if (color[a.to] == color[v]) {
          return std::nullopt;
        }
      }
    }
  }
  return color;
}

bool is_bipartite(const Graph& g) { return bipartition(g).has_value(); }

bool has_cycle(const Graph& g) {
  const auto comps = connected_components(g);
  return g.num_edges() + comps.num_components > g.num_nodes();
}

std::uint32_t girth(const Graph& g) {
  // For each start node, BFS; a non-tree edge between nodes at depths d1, d2
  // closes a cycle of length d1 + d2 + 1 through the root. Taking the minimum
  // over all roots yields the exact girth for unweighted graphs.
  std::uint32_t best = kUnreachable;
  std::vector<std::uint32_t> dist(g.num_nodes());
  std::vector<NodeId> parent_edge(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::fill(parent_edge.begin(), parent_edge.end(), kNoEdge);
    std::queue<NodeId> frontier;
    dist[s] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      if (best != kUnreachable && 2 * dist[v] >= best) break;
      for (const Arc& a : g.neighbors(v)) {
        if (a.edge == parent_edge[v]) continue;
        if (dist[a.to] == kUnreachable) {
          dist[a.to] = dist[v] + 1;
          parent_edge[a.to] = a.edge;
          frontier.push(a.to);
        } else {
          // Cycle through s of length <= dist[v] + dist[a.to] + 1.
          best = std::min(best, dist[v] + dist[a.to] + 1);
        }
      }
    }
  }
  return best;
}

std::uint32_t degeneracy(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket peeling (Matula-Beck) with lazy deletion: stale bucket entries
  // (node already removed, or degree since decreased) are skipped on pop.
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::uint32_t degen = 0;
  std::uint32_t cur = 0;
  NodeId processed = 0;
  while (processed < n) {
    if (buckets[cur].empty()) {
      ++cur;
      CPT_ASSERT(cur <= max_deg);
      continue;
    }
    const NodeId v = buckets[cur].back();
    buckets[cur].pop_back();
    if (removed[v] || deg[v] != cur) continue;  // stale entry
    removed[v] = true;
    ++processed;
    degen = std::max(degen, cur);
    for (const Arc& a : g.neighbors(v)) {
      if (!removed[a.to]) {
        --deg[a.to];
        buckets[deg[a.to]].push_back(a.to);
        if (deg[a.to] < cur) cur = deg[a.to];
      }
    }
  }
  return degen;
}

std::uint32_t arboricity_lower_bound(const Graph& g) {
  if (g.num_nodes() < 2) return 0;
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  return static_cast<std::uint32_t>((m + n - 2) / (n - 1));
}

std::uint64_t planarity_distance_lower_bound(const Graph& g) {
  const std::int64_t n = g.num_nodes();
  const std::int64_t m = g.num_edges();
  const std::int64_t bound = std::max<std::int64_t>(0, 3 * n - 6);
  return static_cast<std::uint64_t>(std::max<std::int64_t>(0, m - bound));
}

}  // namespace cpt
