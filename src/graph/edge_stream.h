// Pull-based edge producers for out-of-core graph materialization.
//
// An EdgeStream yields a graph's edge list in sorted-normalized order
// (u < v, lexicographic) -- exactly the edge-id order GraphBuilder assigns
// -- so a consumer can assign edge ids on the fly and produce the same CSR
// a builder round-trip would, without the edges ever being resident all at
// once. Streams are rewindable because the corpus v3 writer makes two
// passes (degree counting, then arc placement; see scenario/corpus.cc).
//
// Analytic streams exist for the regular lattice families (grid,
// triangulated grid); merge_extra_edges composes a base stream with a
// small sorted in-memory extra set (the road-network flyovers), keeping
// the resident footprint O(extras), not O(m).
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"

namespace cpt::gen {

class EdgeStream {
 public:
  virtual ~EdgeStream() = default;
  virtual NodeId num_nodes() const = 0;
  virtual EdgeId num_edges() const = 0;
  // Restart from the first edge.
  virtual void rewind() = 0;
  // Fills *out with the next edge and returns true; false at end. Edges
  // come out strictly increasing in (u, v) with u < v.
  virtual bool next(Endpoints* out) = 0;
};

// The lattice families of graph/generators.h, edge streams instead of
// resident graphs: same node numbering (r * cols + c), same edge sets.
std::unique_ptr<EdgeStream> grid_stream(NodeId rows, NodeId cols);
std::unique_ptr<EdgeStream> triangulated_grid_stream(NodeId rows, NodeId cols);

// Merges `extra` edges into `base`'s order. Preconditions: every extra is
// normalized (u < v), the set is duplicate-free and disjoint from the base
// stream's edges (callers dedup while sampling). `extra` need not arrive
// sorted; it is sorted here.
std::unique_ptr<EdgeStream> merge_extra_edges(std::unique_ptr<EdgeStream> base,
                                              std::vector<Endpoints> extra);

}  // namespace cpt::gen
