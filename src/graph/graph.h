// Static undirected simple graph in CSR form, plus a builder.
//
// Nodes are 0..n-1. Edges have stable ids 0..m-1 in sorted-normalized
// (u < v, lexicographic) order -- deterministic for a given edge multiset,
// independent of insertion order; each undirected edge appears as two arcs
// (one per endpoint adjacency list), both carrying the same edge id.
// Self-loops are rejected; parallel edges are deduplicated by the builder.
//
// A Graph is a read-only *view* over its three CSR arrays plus a shared
// keep-alive handle on whatever owns them: GraphBuilder::build() allocates
// the arrays on the heap, while Graph::from_csr wraps externally owned
// storage -- e.g. a read-only corpus file mapping (scenario/corpus.cc) --
// without copying. Copies are shallow and share the backing; a Graph is
// immutable after construction, so shared views are safe, and the arrays
// outlive every copy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/contracts.h"

namespace cpt {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

// One directed half of an undirected edge, as seen from its source node.
// `peer_arc` is the global index (arc_offset(to) + port of the source in
// `to`'s adjacency list) of this arc's reverse, precomputed at build time
// so message delivery can address the receiving half-edge with zero
// lookups (see congest::Simulator).
struct Arc {
  NodeId to;
  EdgeId edge;
  std::uint32_t peer_arc;
};

struct Endpoints {
  NodeId u;
  NodeId v;
};

class Graph {
 public:
  Graph() = default;

  // Wraps externally owned CSR arrays without copying: `offsets` has n+1
  // entries, `arcs` 2m (peer_arc prefilled), `edges` m, all in the exact
  // layout GraphBuilder produces. `backing` keeps the storage alive for as
  // long as any copy of the view exists (the corpus store hands in the
  // munmap guard of a mapped .cpg file). The arrays are trusted -- callers
  // validate before adopting (checksums, size cross-checks).
  static Graph from_csr(std::span<const std::uint32_t> offsets,
                        std::span<const Arc> arcs,
                        std::span<const Endpoints> edges,
                        std::shared_ptr<const void> backing) {
    CPT_EXPECTS(!offsets.empty());
    CPT_EXPECTS(arcs.size() == 2 * edges.size());
    Graph g;
    g.offsets_ = offsets;
    g.arcs_ = arcs;
    g.edges_ = edges;
    g.backing_ = std::move(backing);
    g.external_view_ = true;
    return g;
  }

  // True for graphs adopted via from_csr (zero-copy corpus hits); false
  // for builder-produced graphs. Lets tests pin "no GraphBuilder replay on
  // the hit path".
  bool is_external_view() const { return external_view_; }

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  std::uint32_t degree(NodeId v) const {
    CPT_EXPECTS(v < num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Arc> neighbors(NodeId v) const {
    CPT_EXPECTS(v < num_nodes());
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  // Index of v's first arc in the global arc array (CSR offset). Arc
  // indices order all 2m arcs by (owner node, port); `arc_offset(v) + p`
  // is the global id of v's port p. Accepts v == num_nodes() as the end
  // sentinel.
  std::uint32_t arc_offset(NodeId v) const {
    CPT_EXPECTS(v <= num_nodes());
    return offsets_.empty() ? 0 : offsets_[v];
  }

  Endpoints endpoints(EdgeId e) const {
    CPT_EXPECTS(e < num_edges());
    return edges_[e];
  }

  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const Endpoints ep = endpoints(e);
    CPT_EXPECTS(ep.u == v || ep.v == v);
    return ep.u == v ? ep.v : ep.u;
  }

  bool has_edge(NodeId u, NodeId v) const {
    if (u >= num_nodes() || v >= num_nodes() || u == v) return false;
    const NodeId probe = degree(u) <= degree(v) ? u : v;
    const NodeId want = probe == u ? v : u;
    for (const Arc& a : neighbors(probe)) {
      if (a.to == want) return true;
    }
    return false;
  }

  // Returns the edge id of {u,v}, or kNoEdge if absent.
  EdgeId find_edge(NodeId u, NodeId v) const {
    if (u >= num_nodes() || v >= num_nodes() || u == v) return kNoEdge;
    const NodeId probe = degree(u) <= degree(v) ? u : v;
    const NodeId want = probe == u ? v : u;
    for (const Arc& a : neighbors(probe)) {
      if (a.to == want) return a.edge;
    }
    return kNoEdge;
  }

  std::span<const Endpoints> edges() const { return edges_; }

  // Raw CSR arrays (offsets: n+1 entries; arcs: 2m, ordered by (owner,
  // port)). The corpus writer serializes these verbatim, and equivalence
  // tests compare them across materialization paths.
  std::span<const std::uint32_t> csr_offsets() const { return offsets_; }
  std::span<const Arc> csr_arcs() const { return arcs_; }

 private:
  friend class GraphBuilder;

  std::span<const std::uint32_t> offsets_;  // size n+1
  std::span<const Arc> arcs_;               // size 2m
  std::span<const Endpoints> edges_;        // size m
  std::shared_ptr<const void> backing_;     // owns whatever the spans view
  bool external_view_ = false;
};

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  // Adds an undirected edge; duplicates (in either orientation) are dropped
  // at build() time. Self-loops are a precondition violation.
  void add_edge(NodeId u, NodeId v) {
    CPT_EXPECTS(u < num_nodes_ && v < num_nodes_);
    CPT_EXPECTS(u != v);
    pending_.push_back({u, v});
  }

  // Grow the node count (edges may only reference nodes added so far).
  NodeId add_node() { return num_nodes_++; }

  NodeId num_nodes() const { return num_nodes_; }

  Graph build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Endpoints> pending_;
};

}  // namespace cpt
