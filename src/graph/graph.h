// Static undirected simple graph in CSR form, plus a builder.
//
// Nodes are 0..n-1. Edges have stable ids 0..m-1 in sorted-normalized
// (u < v, lexicographic) order -- deterministic for a given edge multiset,
// independent of insertion order; each undirected edge appears as two arcs
// (one per endpoint adjacency list), both carrying the same edge id.
// Self-loops are rejected; parallel edges are deduplicated by the builder.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/contracts.h"

namespace cpt {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

// One directed half of an undirected edge, as seen from its source node.
// `peer_arc` is the global index (arc_offset(to) + port of the source in
// `to`'s adjacency list) of this arc's reverse, precomputed at build time
// so message delivery can address the receiving half-edge with zero
// lookups (see congest::Simulator).
struct Arc {
  NodeId to;
  EdgeId edge;
  std::uint32_t peer_arc;
};

struct Endpoints {
  NodeId u;
  NodeId v;
};

class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  std::uint32_t degree(NodeId v) const {
    CPT_EXPECTS(v < num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Arc> neighbors(NodeId v) const {
    CPT_EXPECTS(v < num_nodes());
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  // Index of v's first arc in the global arc array (CSR offset). Arc
  // indices order all 2m arcs by (owner node, port); `arc_offset(v) + p`
  // is the global id of v's port p. Accepts v == num_nodes() as the end
  // sentinel.
  std::uint32_t arc_offset(NodeId v) const {
    CPT_EXPECTS(v <= num_nodes());
    return offsets_.empty() ? 0 : offsets_[v];
  }

  Endpoints endpoints(EdgeId e) const {
    CPT_EXPECTS(e < num_edges());
    return edges_[e];
  }

  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const Endpoints ep = endpoints(e);
    CPT_EXPECTS(ep.u == v || ep.v == v);
    return ep.u == v ? ep.v : ep.u;
  }

  bool has_edge(NodeId u, NodeId v) const {
    if (u >= num_nodes() || v >= num_nodes() || u == v) return false;
    const NodeId probe = degree(u) <= degree(v) ? u : v;
    const NodeId want = probe == u ? v : u;
    for (const Arc& a : neighbors(probe)) {
      if (a.to == want) return true;
    }
    return false;
  }

  // Returns the edge id of {u,v}, or kNoEdge if absent.
  EdgeId find_edge(NodeId u, NodeId v) const {
    if (u >= num_nodes() || v >= num_nodes() || u == v) return kNoEdge;
    const NodeId probe = degree(u) <= degree(v) ? u : v;
    const NodeId want = probe == u ? v : u;
    for (const Arc& a : neighbors(probe)) {
      if (a.to == want) return a.edge;
    }
    return kNoEdge;
  }

  std::span<const Endpoints> edges() const { return edges_; }

 private:
  friend class GraphBuilder;

  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;               // size 2m
  std::vector<Endpoints> edges_;        // size m
};

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  // Adds an undirected edge; duplicates (in either orientation) are dropped
  // at build() time. Self-loops are a precondition violation.
  void add_edge(NodeId u, NodeId v) {
    CPT_EXPECTS(u < num_nodes_ && v < num_nodes_);
    CPT_EXPECTS(u != v);
    pending_.push_back({u, v});
  }

  // Grow the node count (edges may only reference nodes added so far).
  NodeId add_node() { return num_nodes_++; }

  NodeId num_nodes() const { return num_nodes_; }

  Graph build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Endpoints> pending_;
};

}  // namespace cpt
