// Graph measurements: connectivity, distances, bipartiteness, girth,
// degeneracy/arboricity bounds. Centralized code used by generators, tests
// and benches (ground truth), not by the distributed algorithms themselves.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace cpt {

inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

struct ComponentInfo {
  std::vector<NodeId> component_of;  // node -> component id
  NodeId num_components = 0;
};

ComponentInfo connected_components(const Graph& g);

bool is_connected(const Graph& g);

// BFS distances from src (kUnreachable where not reachable).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src);

// Largest finite BFS distance from src.
std::uint32_t eccentricity(const Graph& g, NodeId src);

// Exact diameter via all-pairs BFS; O(n * m), intended for small graphs.
std::uint32_t diameter_exact(const Graph& g);

// 2-approximate diameter: eccentricity from an arbitrary node, doubled bound
// not applied -- returns ecc(furthest-from-0), a classic lower bound.
std::uint32_t diameter_lower_bound(const Graph& g);

// Two-coloring if bipartite; std::nullopt otherwise.
std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g);

bool is_bipartite(const Graph& g);

// True iff the graph contains a cycle (m > n - #components).
bool has_cycle(const Graph& g);

// Exact girth (length of shortest cycle), or kUnreachable if acyclic.
// O(n * m): BFS from every node.
std::uint32_t girth(const Graph& g);

// Degeneracy (max over subgraphs of min degree), via peeling. The arboricity
// `a` satisfies ceil(degeneracy/2) <= a <= degeneracy.
std::uint32_t degeneracy(const Graph& g);

// Nash-Williams lower bound on arboricity for the whole graph:
// ceil(m / (n - 1)) for connected graphs with n >= 2 (0 for smaller).
std::uint32_t arboricity_lower_bound(const Graph& g);

// Distance-to-planarity lower bound from edge excess over Euler's bound:
// max(0, m - max(0, 3n - 6)). Every planar graph on n >= 3 nodes has at most
// 3n-6 edges, so at least this many edges must be removed.
std::uint64_t planarity_distance_lower_bound(const Graph& g);

}  // namespace cpt
