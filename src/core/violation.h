// Violating non-tree edges (Definition 7): for labeled non-tree edges
// (u, v) with l(u) < l(v), edges (u, v) and (u', v') with l(u) < l(u')
// intersect iff l(u) < l(u') < l(v) < l(v'). Claims 8 and 10: a subgraph
// with no violating edge is planar, and a planar subgraph labeled through a
// consistent embedding has none -- so a gamma-far subgraph has >= gamma*m
// violating edges (Corollary 9).
#pragma once

#include <cstdint>
#include <vector>

#include "core/labels.h"

namespace cpt {

// A labeled non-tree edge, normalized so lo < hi lexicographically.
struct LabelPair {
  Label lo;
  Label hi;

  static LabelPair normalized(Label a, Label b) {
    if (b < a) std::swap(a, b);
    return {std::move(a), std::move(b)};
  }
};

// Definition 7 for a single pair of edges.
bool labels_intersect(const LabelPair& a, const LabelPair& b);

// Exhaustive detection: mask[i] == true iff edges[i] intersects some other
// edge. O(k log k) after label ranking (two Fenwick sweeps).
std::vector<bool> violating_mask(const std::vector<LabelPair>& edges);

std::uint64_t count_violating(const std::vector<LabelPair>& edges);

// O(k^2) reference implementation (tests only).
std::vector<bool> violating_mask_quadratic(const std::vector<LabelPair>& edges);

}  // namespace cpt
