#include "core/labels.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt {

using congest::Inbound;
using congest::Msg;
using congest::Exec;

namespace {
constexpr std::uint32_t kTagWord = 40;
constexpr std::uint32_t kTagEnd = 41;
}  // namespace

std::vector<std::vector<std::uint32_t>> child_edge_labels(
    const Graph& g, const RotationSystem& rotation,
    const std::vector<EdgeId>& bfs_parent,
    const std::vector<std::vector<EdgeId>>& bfs_children) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<std::uint32_t>> labels(n);
  std::vector<std::uint32_t> rank_of_edge;  // scratch, keyed by edge
  for (NodeId v = 0; v < n; ++v) {
    const auto& rot = rotation[v];
    const auto& kids = bfs_children[v];
    labels[v].assign(kids.size(), 0);
    if (kids.empty()) continue;
    // Nodes of parts that dropped out earlier (edge-bound reject) have no
    // rotation; their labels are never used.
    if (rot.size() != g.degree(v)) continue;
    // Start position: just after the parent edge; roots start at rot[0].
    std::size_t start = 0;
    if (bfs_parent[v] != kNoEdge) {
      const auto it = std::find(rot.begin(), rot.end(), bfs_parent[v]);
      CPT_ASSERT(it != rot.end());
      start = static_cast<std::size_t>(it - rot.begin()) + 1;
    }
    // Rank child edges by rotation order from `start`.
    std::uint32_t next_rank = 1;
    for (std::size_t off = 0; off < rot.size(); ++off) {
      const EdgeId e = rot[(start + off) % rot.size()];
      for (std::size_t i = 0; i < kids.size(); ++i) {
        if (kids[i] == e) {
          labels[v][i] = next_rank++;
          break;
        }
      }
    }
    CPT_ASSERT(next_rank == kids.size() + 1);
  }
  return labels;
}

// ---------------------------------------------------------- LabelDistribute

LabelDistribute::LabelDistribute(
    congest::TreeView tree,
    const std::vector<std::vector<std::uint32_t>>& child_labels)
    : tree_(tree), child_labels_(&child_labels) {
  const std::size_t n = tree.parent_edge->size();
  label_.resize(n);
  forward_idx_.assign(n, 0);
  got_end_.assign(n, 0);
  tail_sent_.assign(n, 0);
  end_sent_.assign(n, 0);
}

void LabelDistribute::begin(Exec& ex) {
  const NodeId n = static_cast<NodeId>(label_.size());
  for (NodeId v = 0; v < n; ++v) {
    if (!tree_.in(v)) continue;
    if ((*tree_.parent_edge)[v] != kNoEdge) continue;  // not a root
    got_end_[v] = 1;  // root's own label is empty and final
    if (!(*tree_.children)[v].empty()) ex.wake_next_round(v);
  }
}

void LabelDistribute::step(Exec& ex, NodeId v) {
  const auto& kids = (*tree_.children)[v];
  if (kids.empty()) return;
  if (forward_idx_[v] < label_[v].size()) {
    const std::int64_t word = label_[v][forward_idx_[v]++];
    for (const EdgeId ce : kids) {
      ex.send(v, ex.network().port_of_edge(v, ce), Msg::make(kTagWord, word));
    }
    ex.wake_next_round(v);
    return;
  }
  if (got_end_[v] && !tail_sent_[v]) {
    for (std::size_t i = 0; i < kids.size(); ++i) {
      ex.send(v, ex.network().port_of_edge(v, kids[i]),
               Msg::make(kTagWord, (*child_labels_)[v][i]));
    }
    tail_sent_[v] = 1;
    ex.wake_next_round(v);
    return;
  }
  if (got_end_[v] && tail_sent_[v] && !end_sent_[v]) {
    for (const EdgeId ce : kids) {
      ex.send(v, ex.network().port_of_edge(v, ce), Msg::make(kTagEnd));
    }
    end_sent_[v] = 1;
  }
}

void LabelDistribute::on_wake(Exec& ex, NodeId v,
                              std::span<const Inbound> inbox) {
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagWord) {
      label_[v].push_back(static_cast<std::uint32_t>(in.msg.w[0]));
    } else if (in.msg.tag == kTagEnd) {
      got_end_[v] = 1;
    }
  }
  step(ex, v);
}

std::uint32_t LabelDistribute::max_label_len() const {
  std::size_t best = 0;
  for (const Label& l : label_) best = std::max(best, l.size());
  return static_cast<std::uint32_t>(best);
}

// ---------------------------------------------------------- EdgeLabelStream

EdgeLabelStream::EdgeLabelStream(
    NodeId n, const std::vector<Label>& labels,
    const std::vector<std::vector<std::uint32_t>>& send_ports)
    : labels_(&labels), send_ports_(&send_ports) {
  cursor_.assign(n, 0);
  end_sent_.assign(n, 0);
  partial_.resize(n);
  done_.resize(n);
}

void EdgeLabelStream::begin(Exec& ex) {
  const NodeId n = static_cast<NodeId>(cursor_.size());
  for (NodeId v = 0; v < n; ++v) {
    if (!(*send_ports_)[v].empty()) step(ex, v);
  }
}

void EdgeLabelStream::step(Exec& ex, NodeId v) {
  const auto& ports = (*send_ports_)[v];
  if (ports.empty() || end_sent_[v]) return;
  const Label& label = (*labels_)[v];
  if (cursor_[v] < label.size()) {
    const std::int64_t word = label[cursor_[v]++];
    for (const std::uint32_t p : ports) {
      ex.send(v, p, Msg::make(kTagWord, word));
    }
    ex.wake_next_round(v);
  } else {
    for (const std::uint32_t p : ports) {
      ex.send(v, p, Msg::make(kTagEnd));
    }
    end_sent_[v] = 1;
  }
}

void EdgeLabelStream::on_wake(Exec& ex, NodeId v,
                              std::span<const Inbound> inbox) {
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagWord) {
      auto it = std::find_if(partial_[v].begin(), partial_[v].end(),
                             [&](const auto& pr) { return pr.first == in.port; });
      if (it == partial_[v].end()) {
        partial_[v].push_back({in.port, {}});
        it = partial_[v].end() - 1;
      }
      it->second.push_back(static_cast<std::uint32_t>(in.msg.w[0]));
    } else if (in.msg.tag == kTagEnd) {
      auto it = std::find_if(partial_[v].begin(), partial_[v].end(),
                             [&](const auto& pr) { return pr.first == in.port; });
      if (it != partial_[v].end()) {
        done_[v].push_back(std::move(*it));
        partial_[v].erase(it);
      } else {
        done_[v].push_back({in.port, {}});  // empty label (root endpoint)
      }
    }
  }
  step(ex, v);
}

// ------------------------------------------------------------ UpStreamWords

UpStreamWords::UpStreamWords(congest::TreeView tree) : tree_(tree) {
  const std::size_t n = tree.parent_edge->size();
  initial.resize(n);
  out_q_.resize(n);
  cursor_.assign(n, 0);
  sources_.resize(n);
  active_.assign(n, kNoSource);
  active_remaining_.assign(n, -1);
  partial_.resize(n);
  frames_.resize(n);
}

void UpStreamWords::transfer(NodeId v) {
  // Move buffered words into the out queue, cut-through: commit to one
  // source until its current frame is fully moved; then pick the next
  // source with buffered data.
  while (true) {
    if (active_[v] == kNoSource) {
      for (std::uint32_t i = 0; i < sources_[v].size(); ++i) {
        if (sources_[v][i].head < sources_[v][i].buf.size()) {
          active_[v] = i;
          active_remaining_[v] = -1;
          break;
        }
      }
      if (active_[v] == kNoSource) return;  // nothing buffered anywhere
    }
    Source& src = sources_[v][active_[v]];
    bool frame_done = false;
    while (src.head < src.buf.size()) {
      const std::int64_t w = src.buf[src.head++];
      out_q_[v].push_back(w);
      if (active_remaining_[v] < 0) {
        active_remaining_[v] = w;  // header: payload length
      } else {
        --active_remaining_[v];
      }
      if (active_remaining_[v] == 0) {
        frame_done = true;
        break;
      }
    }
    if (!frame_done) return;  // mid-frame: wait for more words of this source
    active_[v] = kNoSource;
    active_remaining_[v] = -1;
  }
}

void UpStreamWords::pump(Exec& ex, NodeId v) {
  if (cursor_[v] >= out_q_[v].size()) return;
  const EdgeId pe = (*tree_.parent_edge)[v];
  CPT_ASSERT(pe != kNoEdge);
  ex.send(v, ex.network().port_of_edge(v, pe),
           Msg::make(kTagWord, out_q_[v][cursor_[v]++]));
  if (cursor_[v] < out_q_[v].size()) ex.wake_next_round(v);
}

void UpStreamWords::begin(Exec& ex) {
  const NodeId n = static_cast<NodeId>(out_q_.size());
  for (NodeId v = 0; v < n; ++v) {
    if (!tree_.in(v)) continue;
    if ((*tree_.parent_edge)[v] == kNoEdge) {
      // Root: its own frames go straight to the result.
      for (const auto& f : initial[v]) frames_[v].push_back(f);
      continue;
    }
    if (!initial[v].empty()) {
      Source local{kLocalSource, {}, 0};
      for (const auto& f : initial[v]) {
        local.buf.push_back(static_cast<std::int64_t>(f.size()));
        local.buf.insert(local.buf.end(), f.begin(), f.end());
      }
      sources_[v].push_back(std::move(local));
      transfer(v);
      pump(ex, v);
    }
  }
}

void UpStreamWords::on_wake(Exec& ex, NodeId v,
                            std::span<const Inbound> inbox) {
  const bool is_root = (*tree_.parent_edge)[v] == kNoEdge;
  for (const Inbound& in : inbox) {
    if (in.msg.tag != kTagWord) continue;
    if (is_root) {
      // Reassemble frames directly.
      auto it = std::find_if(partial_[v].begin(), partial_[v].end(),
                             [&](const Partial& p) { return p.port == in.port; });
      if (it == partial_[v].end()) {
        partial_[v].push_back({in.port, -1, {}});
        it = partial_[v].end() - 1;
      }
      if (it->remaining < 0) {
        it->remaining = in.msg.w[0];
        it->payload.clear();
      } else {
        it->payload.push_back(in.msg.w[0]);
        --it->remaining;
      }
      if (it->remaining == 0) {
        frames_[v].push_back(std::move(it->payload));
        it->remaining = -1;
        it->payload.clear();
      }
      continue;
    }
    auto it = std::find_if(sources_[v].begin(), sources_[v].end(),
                           [&](const Source& s) { return s.port == in.port; });
    if (it == sources_[v].end()) {
      sources_[v].push_back({in.port, {}, 0});
      it = sources_[v].end() - 1;
    }
    it->buf.push_back(in.msg.w[0]);
  }
  if (!is_root) {
    transfer(v);
    pump(ex, v);
  }
}

}  // namespace cpt
