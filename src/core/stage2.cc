#include "core/stage2.h"

#include <algorithm>
#include <cmath>

#include "congest/primitives.h"
#include "core/labels.h"
#include "core/violation.h"
#include "graph/ops.h"
#include "planar/embedder.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpt {

using congest::BfsForest;
using congest::BroadcastRecords;
using congest::Combine;
using congest::ConvergeRecords;
using congest::Exchange;
using congest::Inbound;
using congest::Msg;
using congest::Record;
using congest::TreeView;

namespace {

constexpr std::uint32_t kTagInfo = 50;

// Sampled edge label pairs travel and are re-broadcast as framed word
// streams: [len(lo), lo words..., len(hi), hi words...].
std::vector<std::int64_t> encode_pair(const LabelPair& pair) {
  std::vector<std::int64_t> words;
  words.reserve(pair.lo.size() + pair.hi.size() + 2);
  words.push_back(static_cast<std::int64_t>(pair.lo.size()));
  for (const std::uint32_t w : pair.lo) words.push_back(w);
  words.push_back(static_cast<std::int64_t>(pair.hi.size()));
  for (const std::uint32_t w : pair.hi) words.push_back(w);
  return words;
}

bool decode_pair(const std::vector<std::int64_t>& words, LabelPair& out) {
  std::size_t i = 0;
  const auto read_label = [&](Label& label) {
    if (i >= words.size()) return false;
    const auto len = static_cast<std::size_t>(words[i++]);
    if (i + len > words.size()) return false;
    label.assign(words.begin() + static_cast<std::ptrdiff_t>(i),
                 words.begin() + static_cast<std::ptrdiff_t>(i + len));
    i += len;
    return true;
  };
  Label a;
  Label b;
  if (!read_label(a) || !read_label(b)) return false;
  out = LabelPair::normalized(std::move(a), std::move(b));
  return i == words.size();
}

struct Rejection {
  NodeId node;
  const char* why;
};

}  // namespace

Stage2Result run_stage2(congest::Simulator& sim, const Graph& g,
                        const PartForest& pf, const Stage2Options& opt,
                        congest::RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  Stage2Result result;
  std::vector<Rejection> rejections;
  std::vector<std::uint8_t> part_failed(n, 0);

  // ---- Preprocessing: per-part BFS trees (Section 2.2.1). ----
  BfsForest bfs(pf.root);
  {
    const auto r = sim.run(bfs);
    ledger.add_pass("stage2/bfs", r.rounds, r.messages);
  }
  for (NodeId v = 0; v < n; ++v) {
    result.stats.max_bfs_depth = std::max(result.stats.max_bfs_depth, bfs.level[v]);
  }

  // ---- Edge classification exchange: (level, id) over every edge. ----
  // Per node: list of (port, edge) of ASSIGNED non-tree edges (assignee =
  // deeper endpoint, ties to the higher id), plus ports of non-tree edges
  // where the far side is the assignee.
  std::vector<std::vector<std::pair<std::uint32_t, EdgeId>>> assigned(n);
  std::vector<std::vector<std::uint32_t>> feed_ports(n);  // we stream to assignee
  {
    std::vector<std::vector<std::uint8_t>> is_tree_port(n);
    for (NodeId v = 0; v < n; ++v) {
      is_tree_port[v].assign(g.degree(v), 0);
      if (bfs.parent_edge[v] != kNoEdge) {
        is_tree_port[v][sim.network().port_of_edge(v, bfs.parent_edge[v])] = 1;
      }
      for (const EdgeId ce : bfs.children[v]) {
        is_tree_port[v][sim.network().port_of_edge(v, ce)] = 1;
      }
    }
    Exchange classify(
        n,
        [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
          for (std::uint32_t p = 0; p < g.degree(v); ++p) {
            out.push_back({p, Msg::make(kTagInfo,
                                        static_cast<std::int64_t>(pf.root[v]),
                                        bfs.level[v])});
          }
        },
        [&](congest::Exec&, NodeId v, std::span<const Inbound> inbox) {
          for (const Inbound& in : inbox) {
            if (in.msg.tag != kTagInfo) continue;
            if (static_cast<NodeId>(in.msg.w[0]) != pf.root[v]) continue;
            if (is_tree_port[v][in.port]) continue;
            const NodeId w = sim.network().arc(v, in.port).to;
            const auto w_level = static_cast<std::uint32_t>(in.msg.w[1]);
            const bool i_am_assignee =
                bfs.level[v] != w_level ? bfs.level[v] > w_level : v > w;
            if (i_am_assignee) {
              assigned[v].push_back({in.port, sim.network().arc(v, in.port).edge});
            } else {
              feed_ports[v].push_back(in.port);
            }
          }
        });
    const auto r = sim.run(classify);
    ledger.add_pass("stage2/classify", r.rounds, r.messages);
  }

  // ---- Counting convergecast: n(G_j), m(G_j), mtilde(G_j). ----
  std::vector<std::int64_t> part_n(n, 0);
  std::vector<std::int64_t> part_m(n, 0);
  std::vector<std::int64_t> part_mt(n, 0);
  {
    std::vector<std::uint8_t> all(n, 1);
    ConvergeRecords conv(TreeView{&bfs.parent_edge, &bfs.children, &all},
                         Combine::kSum, 0);
    for (NodeId v = 0; v < n; ++v) {
      const std::int64_t own_edges =
          (bfs.parent_edge[v] != kNoEdge ? 1 : 0) +
          static_cast<std::int64_t>(assigned[v].size());
      conv.initial[v] = {{0, 1},
                         {1, own_edges},
                         {2, static_cast<std::int64_t>(assigned[v].size())}};
    }
    const auto r = sim.run(conv);
    ledger.add_pass("stage2/count", r.rounds, r.messages);
    for (NodeId root = 0; root < n; ++root) {
      if (pf.root[root] != root) continue;
      ++result.stats.parts;
      for (const Record& rec : conv.at_root(root)) {
        if (rec.key == 0) part_n[root] = rec.value;
        if (rec.key == 1) part_m[root] = rec.value;
        if (rec.key == 2) part_mt[root] = rec.value;
      }
      result.stats.total_nontree_edges +=
          static_cast<std::uint64_t>(part_mt[root]);
    }
  }

  // ---- Euler edge-bound check: m > 3n - 6 => root rejects. ----
  std::vector<std::uint8_t> dead(n, 0);  // per root: part dropped out
  for (NodeId root = 0; root < n; ++root) {
    if (pf.root[root] != root) continue;
    if (part_n[root] >= 3 && part_m[root] > 3 * part_n[root] - 6) {
      rejections.push_back({root, "edge bound m > 3n-6"});
      ++result.stats.parts_rejected_edge_bound;
      dead[root] = 1;
    }
  }
  // Dead parts tell their members to sit out the rest (one broadcast).
  std::vector<std::uint8_t> alive_node(n, 1);
  {
    BroadcastRecords bc(TreeView{&bfs.parent_edge, &bfs.children, nullptr});
    bool any_dead = false;
    for (NodeId root = 0; root < n; ++root) {
      if (pf.root[root] == root && dead[root]) {
        bc.stream[root] = {{0, 0}};
        alive_node[root] = 0;
        any_dead = true;
      }
    }
    if (any_dead) {
      const auto r = sim.run(bc);
      ledger.add_pass("stage2/deadcast", r.rounds, r.messages);
      for (NodeId v = 0; v < n; ++v) {
        if (!bc.received[v].empty()) alive_node[v] = 0;
      }
    }
  }

  // ---- Embedding (GH substitute; round cost charged, see DESIGN.md). ----
  // `certified[root]`: the embedding step certified the part planar. The
  // real GH black box succeeds on every planar part, so suppressing
  // Definition-7 rejects on certified parts restores one-sidedness --
  // Claim 10 as stated in the paper fails for BFS trees (see DESIGN.md,
  // "Discrepancy: Claim 10"); detection of far parts is carried entirely by
  // the sampling machinery on uncertified parts, whose guarantee
  // (Corollary 9) is label-agnostic and unaffected.
  std::vector<std::uint8_t> certified(n, 0);
  RotationSystem rotation(n);
  {
    std::vector<std::uint32_t> part_depth(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      part_depth[pf.root[v]] = std::max(part_depth[pf.root[v]], bfs.level[v]);
    }
    std::uint64_t max_gh_rounds = 0;
    for (NodeId root = 0; root < n; ++root) {
      if (pf.root[root] != root || dead[root]) continue;
      const auto& mem = pf.members[root];
      InducedSubgraph sub = induced_subgraph(g, mem);
      EmbeddingResult emb = best_effort_embedding(sub.graph);
      if (emb.planar_certified) {
        certified[root] = 1;
        ++result.stats.parts_certified_planar;
      } else {
        if (opt.eager_reject_embedding) {
          rejections.push_back({root, "embedding failure"});
          ++result.stats.parts_rejected_embedding;
          dead[root] = 1;
          for (const NodeId x : mem) alive_node[x] = 0;
          continue;
        }
      }
      // Translate sub-graph edge ids back to global ones.
      for (NodeId sv = 0; sv < sub.graph.num_nodes(); ++sv) {
        const NodeId v = sub.to_original[sv];
        rotation[v].reserve(emb.rotation[sv].size());
        for (const EdgeId se : emb.rotation[sv]) {
          const Endpoints sep = sub.graph.endpoints(se);
          const EdgeId ge = g.find_edge(sub.to_original[sep.u],
                                        sub.to_original[sep.v]);
          CPT_ASSERT(ge != kNoEdge);
          rotation[v].push_back(ge);
        }
      }
      const std::uint64_t d = part_depth[root];
      const std::uint64_t log_n = static_cast<std::uint64_t>(std::ceil(
          std::log2(std::max<double>(part_n[root], 2))));
      max_gh_rounds = std::max(
          max_gh_rounds, opt.gh_round_constant * d * std::min(log_n, d) + 1);
    }
    ledger.charge("stage2/gh-embedding", max_gh_rounds);
  }

  // ---- Certification broadcast: members learn whether their part's
  // embedding was certified (they skip violation rejects if so). ----
  std::vector<std::uint8_t> node_certified(n, 0);
  {
    BroadcastRecords bc(TreeView{&bfs.parent_edge, &bfs.children, nullptr});
    bool any = false;
    for (NodeId root = 0; root < n; ++root) {
      if (pf.root[root] == root && certified[root]) {
        bc.stream[root] = {{0, 1}};
        node_certified[root] = 1;
        any = true;
      }
    }
    if (any) {
      const auto r = sim.run(bc);
      ledger.add_pass("stage2/certify-bcast", r.rounds, r.messages);
      for (NodeId v = 0; v < n; ++v) {
        if (!bc.received[v].empty()) node_certified[v] = 1;
      }
    }
  }

  // ---- Labels: local child-edge labels + pipelined distribution. ----
  TreeView alive_tree{&bfs.parent_edge, &bfs.children, &alive_node};
  const auto kid_labels =
      child_edge_labels(g, rotation, bfs.parent_edge, bfs.children);
  LabelDistribute dist(alive_tree, kid_labels);
  {
    const auto r = sim.run(dist);
    ledger.add_pass("stage2/labels", r.rounds, r.messages);
    result.stats.max_label_len = dist.max_label_len();
  }
  std::vector<Label> labels(n);
  for (NodeId v = 0; v < n; ++v) labels[v] = dist.label(v);

  // ---- Non-tree label exchange: feed the assignee endpoint. ----
  // other_label[v] aligned with assigned[v].
  std::vector<std::vector<Label>> other_label(n);
  {
    std::vector<std::vector<std::uint32_t>> send_ports(n);
    for (NodeId v = 0; v < n; ++v) {
      if (alive_node[v]) send_ports[v] = feed_ports[v];
    }
    EdgeLabelStream stream(n, labels, send_ports);
    const auto r = sim.run(stream);
    ledger.add_pass("stage2/nontree-exchange", r.rounds, r.messages);
    for (NodeId v = 0; v < n; ++v) {
      other_label[v].resize(assigned[v].size());
      for (const auto& [port, label] : stream.received()[v]) {
        for (std::size_t i = 0; i < assigned[v].size(); ++i) {
          if (assigned[v][i].first == port) {
            other_label[v][i] = label;
            break;
          }
        }
      }
    }
  }

  // ---- Oracle mode: exhaustive centralized check (tests/benches). ----
  if (opt.exhaustive_check) {
    std::vector<std::vector<LabelPair>> per_part(n);
    std::vector<std::vector<NodeId>> pair_owner(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!alive_node[v]) continue;
      for (std::size_t i = 0; i < assigned[v].size(); ++i) {
        per_part[pf.root[v]].push_back(
            LabelPair::normalized(labels[v], other_label[v][i]));
        pair_owner[pf.root[v]].push_back(v);
      }
    }
    for (NodeId root = 0; root < n; ++root) {
      if (pf.root[root] != root || dead[root] || certified[root] ||
          per_part[root].empty()) {
        continue;
      }
      const auto mask = violating_mask(per_part[root]);
      bool any = false;
      for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) {
          ++result.stats.exhaustive_violating_edges;
          if (!any) rejections.push_back({pair_owner[root][i], "violating edge"});
          any = true;
        }
      }
      if (any) ++result.stats.parts_rejected_violation;
    }
  } else {
    // ---- Sampling path (the distributed algorithm). ----
    // Roots broadcast mtilde so nodes can set the per-edge coin bias.
    std::vector<std::int64_t> mtilde_at(n, 0);
    {
      BroadcastRecords bc(TreeView{&bfs.parent_edge, &bfs.children, nullptr});
      for (NodeId root = 0; root < n; ++root) {
        if (pf.root[root] == root && !dead[root] && part_mt[root] > 0) {
          bc.stream[root] = {{0, part_mt[root]}};
          mtilde_at[root] = part_mt[root];
        }
      }
      const auto r = sim.run(bc);
      ledger.add_pass("stage2/mtilde", r.rounds, r.messages);
      for (NodeId v = 0; v < n; ++v) {
        if (!bc.received[v].empty()) mtilde_at[v] = bc.received[v][0].value;
      }
    }
    const double s_target = std::ceil(
        opt.sample_constant * std::log(std::max<double>(n, 3)) / opt.epsilon);
    // Nodes flip coins for their assigned non-tree edges.
    Rng base(opt.seed ^ 0x5741d0a2ULL);
    UpStreamWords collect(alive_tree);
    for (NodeId v = 0; v < n; ++v) {
      if (!alive_node[v] || node_certified[v] || assigned[v].empty() ||
          mtilde_at[v] == 0) {
        continue;
      }
      Rng rng = base.fork(v);
      const double p =
          std::min(1.0, s_target / static_cast<double>(mtilde_at[v]));
      for (std::size_t i = 0; i < assigned[v].size(); ++i) {
        if (!rng.next_bernoulli(p)) continue;
        const LabelPair pair =
            LabelPair::normalized(labels[v], other_label[v][i]);
        collect.initial[v].push_back(encode_pair(pair));
      }
    }
    {
      const auto r = sim.run(collect);
      ledger.add_pass("stage2/sample-collect", r.rounds, r.messages);
    }

    // Roots validate the sample volume, cross-check the samples pairwise,
    // and re-broadcast them.
    const std::uint64_t cap = static_cast<std::uint64_t>(4 * s_target) + 8;
    BroadcastRecords sample_bcast(alive_tree);
    std::vector<std::vector<LabelPair>> root_samples(n);
    for (NodeId root = 0; root < n; ++root) {
      if (pf.root[root] != root || dead[root] || certified[root]) continue;
      std::vector<LabelPair>& samples = root_samples[root];
      for (const auto& frame : collect.frames_at_root(root)) {
        LabelPair pair;
        const bool ok = decode_pair(frame, pair);
        CPT_ASSERT(ok);
        samples.push_back(std::move(pair));
      }
      result.stats.sampled_edges += samples.size();
      if (samples.size() > cap) {
        part_failed[root] = 1;
        ++result.stats.parts_failed_sampling;
        continue;
      }
      // Pairwise check among the samples at the root (local computation).
      const auto mask = violating_mask(samples);
      if (std::find(mask.begin(), mask.end(), true) != mask.end()) {
        rejections.push_back({root, "violating edge (sampled pair)"});
        ++result.stats.parts_rejected_violation;
        result.stats.violations_found +=
            static_cast<std::uint64_t>(std::count(mask.begin(), mask.end(), true));
        dead[root] = 1;
        continue;
      }
      // Stream all samples down the tree.
      for (const LabelPair& pair : samples) {
        for (const std::int64_t w : encode_pair(pair)) {
          sample_bcast.stream[root].push_back(
              {0, w});
        }
      }
    }
    {
      const auto r = sim.run(sample_bcast);
      ledger.add_pass("stage2/sample-bcast", r.rounds, r.messages);
    }
    // Every node checks its assigned non-tree edges against the samples.
    for (NodeId v = 0; v < n; ++v) {
      if (!alive_node[v] || node_certified[v] || assigned[v].empty()) continue;
      const NodeId root = pf.root[v];
      if (dead[root] || part_failed[root]) continue;
      // Reassemble the broadcast word stream into label pairs.
      const auto words =
          v == root ? sample_bcast.stream[root] : sample_bcast.received[v];
      std::vector<std::int64_t> flat;
      flat.reserve(words.size());
      for (const Record& rec : words) flat.push_back(rec.value);
      std::vector<LabelPair> samples;
      std::size_t i = 0;
      while (i < flat.size()) {
        const auto len1 = static_cast<std::size_t>(flat[i]);
        CPT_ASSERT(i + len1 + 1 <= flat.size());
        const auto len2 = static_cast<std::size_t>(flat[i + len1 + 1]);
        const std::size_t total = len1 + len2 + 2;
        CPT_ASSERT(i + total <= flat.size());
        LabelPair pair;
        const bool ok = decode_pair(
            std::vector<std::int64_t>(flat.begin() + static_cast<std::ptrdiff_t>(i),
                                      flat.begin() + static_cast<std::ptrdiff_t>(i + total)),
            pair);
        CPT_ASSERT(ok);
        samples.push_back(std::move(pair));
        i += total;
      }
      bool rejected_here = false;
      for (std::size_t a = 0; a < assigned[v].size() && !rejected_here; ++a) {
        const LabelPair mine =
            LabelPair::normalized(labels[v], other_label[v][a]);
        for (const LabelPair& s : samples) {
          if (labels_intersect(mine, s)) {
            rejections.push_back({v, "violating edge (vs sample)"});
            ++result.stats.violations_found;
            rejected_here = true;
            break;
          }
        }
      }
    }
  }

  // ---- Verdict assembly. ----
  for (const Rejection& r : rejections) {
    result.rejecting_nodes.push_back(r.node);
    if (result.reason.empty()) result.reason = r.why;
  }
  if (!result.rejecting_nodes.empty()) {
    result.verdict = Verdict::kReject;
  } else if (std::find(part_failed.begin(), part_failed.end(), 1) !=
             part_failed.end()) {
    result.verdict = Verdict::kFail;
    result.reason = "sampling congestion cap exceeded";
  }
  return result;
}

}  // namespace cpt
