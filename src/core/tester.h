// The distributed one-sided-error planarity tester (Theorem 1): Stage I
// partitioning (Section 2.1) followed by Stage II local planarity
// verification (Section 2.2), with full CONGEST round accounting.
//
// Guarantees mirrored from the paper:
//   * planar G        => every node accepts (one-sided error);
//   * G eps-far       => with probability 1 - 1/poly(n) some node rejects;
//   * round complexity O(log n * poly(1/eps)).
#pragma once

#include <string>
#include <vector>

#include "congest/metrics.h"
#include "core/stage2.h"
#include "partition/partition.h"

namespace cpt {

struct TesterOptions {
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  // Simulator workers for round execution (0 = CPT_TEST_THREADS env or 1).
  // Any value produces bit-identical verdicts, ledgers and partitions.
  unsigned num_threads = 0;
  // Cumulative simulated-round budget across both stages (0 = unlimited);
  // exhausting it throws congest::RoundBudgetExceeded (see simulator.h).
  std::uint64_t max_rounds = 0;
  // Optional pooled simulator buffers (congest::SimMemory); the batch
  // engine reuses one per worker across jobs. nullptr = fresh allocation.
  congest::SimMemory* sim_memory = nullptr;
  // Optional trace track: per-pass ledger spans + simulator events land
  // here (see util/trace.h). nullptr = no tracing.
  util::TraceBuffer* trace = nullptr;
  Stage1Options stage1;   // epsilon is overwritten from the field above
  Stage2Options stage2;   // epsilon/seed are overwritten from above
};

struct TesterResult {
  Verdict verdict = Verdict::kAccept;
  std::vector<NodeId> rejecting_nodes;
  std::string reason;
  congest::RoundLedger ledger;
  // Stage breakdowns.
  bool stage1_rejected = false;
  std::uint32_t stage1_phases_emulated = 0;
  std::uint32_t stage1_phases_total = 0;
  PartitionStats partition;     // measured final partition quality
  Stage2Stats stage2;

  std::uint64_t rounds() const { return ledger.total_rounds(); }
};

TesterResult test_planarity(const Graph& g, const TesterOptions& opt);

}  // namespace cpt
