#include "core/violation.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt {
namespace {

// Fenwick tree over positions 1..size counting insertions.
class CountBit {
 public:
  explicit CountBit(std::size_t size) : tree_(size + 1, 0) {}

  void add(std::size_t pos) {  // 0-based
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      ++tree_[i];
    }
  }

  std::uint64_t prefix(std::size_t count) const {  // sum of first `count` slots
    std::uint64_t sum = 0;
    for (std::size_t i = count; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  // Number of inserted positions p with lo < p < hi (exclusive, 0-based).
  std::uint64_t count_strictly_between(std::size_t lo, std::size_t hi) const {
    if (hi <= lo + 1) return 0;
    return prefix(hi) - prefix(lo + 1);
  }

 private:
  std::vector<std::uint64_t> tree_;
};

struct RankedEdge {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t index = 0;  // position in the input vector
};

std::vector<RankedEdge> rank_edges(const std::vector<LabelPair>& edges) {
  std::vector<const Label*> labels;
  labels.reserve(2 * edges.size());
  for (const LabelPair& e : edges) {
    labels.push_back(&e.lo);
    labels.push_back(&e.hi);
  }
  std::sort(labels.begin(), labels.end(),
            [](const Label* a, const Label* b) { return *a < *b; });
  labels.erase(std::unique(labels.begin(), labels.end(),
                           [](const Label* a, const Label* b) { return *a == *b; }),
               labels.end());
  const auto rank = [&](const Label& l) {
    const auto it = std::lower_bound(
        labels.begin(), labels.end(), &l,
        [](const Label* a, const Label* b) { return *a < *b; });
    return static_cast<std::size_t>(it - labels.begin());
  };
  std::vector<RankedEdge> out(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    out[i] = {rank(edges[i].lo), rank(edges[i].hi), i};
  }
  return out;
}

}  // namespace

bool labels_intersect(const LabelPair& a, const LabelPair& b) {
  const LabelPair* first = &a;
  const LabelPair* second = &b;
  if (second->lo < first->lo) std::swap(first, second);
  if (!(first->lo < second->lo)) return false;  // shared lower endpoint
  return second->lo < first->hi && first->hi < second->hi;
}

std::vector<bool> violating_mask(const std::vector<LabelPair>& edges) {
  const std::size_t k = edges.size();
  std::vector<bool> mask(k, false);
  if (k < 2) return mask;
  std::vector<RankedEdge> ranked = rank_edges(edges);
  const std::size_t num_ranks = [&] {
    std::size_t best = 0;
    for (const RankedEdge& e : ranked) best = std::max(best, e.hi);
    return best + 1;
  }();

  // Pass 1: edge e is the "outer-left" edge of an intersection, i.e. there
  // exists e' with lo_e < lo' < hi_e < hi'. Process by decreasing hi so the
  // BIT contains exactly the edges with hi' > hi_e (strictly); query lo'
  // strictly inside (lo_e, hi_e).
  {
    std::vector<const RankedEdge*> order(k);
    for (std::size_t i = 0; i < k; ++i) order[i] = &ranked[i];
    std::sort(order.begin(), order.end(),
              [](const RankedEdge* a, const RankedEdge* b) { return a->hi > b->hi; });
    CountBit bit(num_ranks);
    std::size_t i = 0;
    while (i < k) {
      std::size_t j = i;
      while (j < k && order[j]->hi == order[i]->hi) ++j;
      for (std::size_t t = i; t < j; ++t) {
        if (bit.count_strictly_between(order[t]->lo, order[t]->hi) > 0) {
          mask[order[t]->index] = true;
        }
      }
      for (std::size_t t = i; t < j; ++t) bit.add(order[t]->lo);
      i = j;
    }
  }
  // Pass 2: edge e is the "outer-right" edge, i.e. there exists e' with
  // lo' < lo_e < hi' < hi_e. Process by increasing lo; the BIT contains
  // edges with lo' < lo_e (strictly); query hi' strictly inside
  // (lo_e, hi_e).
  {
    std::vector<const RankedEdge*> order(k);
    for (std::size_t i = 0; i < k; ++i) order[i] = &ranked[i];
    std::sort(order.begin(), order.end(),
              [](const RankedEdge* a, const RankedEdge* b) { return a->lo < b->lo; });
    CountBit bit(num_ranks);
    std::size_t i = 0;
    while (i < k) {
      std::size_t j = i;
      while (j < k && order[j]->lo == order[i]->lo) ++j;
      for (std::size_t t = i; t < j; ++t) {
        if (bit.count_strictly_between(order[t]->lo, order[t]->hi) > 0) {
          mask[order[t]->index] = true;
        }
      }
      for (std::size_t t = i; t < j; ++t) bit.add(order[t]->hi);
      i = j;
    }
  }
  return mask;
}

std::uint64_t count_violating(const std::vector<LabelPair>& edges) {
  std::uint64_t count = 0;
  for (const bool b : violating_mask(edges)) count += b ? 1 : 0;
  return count;
}

std::vector<bool> violating_mask_quadratic(const std::vector<LabelPair>& edges) {
  std::vector<bool> mask(edges.size(), false);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (labels_intersect(edges[i], edges[j])) {
        mask[i] = true;
        mask[j] = true;
      }
    }
  }
  return mask;
}

}  // namespace cpt
