#include "core/tester.h"

#include "congest/network.h"
#include "congest/simulator.h"

namespace cpt {

TesterResult test_planarity(const Graph& g, const TesterOptions& opt) {
  TesterResult result;
  congest::Network net(g);
  congest::SimOptions sim_opt;
  sim_opt.num_threads = opt.num_threads;
  sim_opt.max_rounds = opt.max_rounds;
  sim_opt.memory = opt.sim_memory;
  sim_opt.trace = opt.trace;
  congest::Simulator sim(net, sim_opt);
  result.ledger.set_trace(opt.trace);

  Stage1Options s1 = opt.stage1;
  s1.epsilon = opt.epsilon;
  const Stage1Result stage1 = run_stage1(sim, g, s1, result.ledger);
  result.stage1_phases_emulated = stage1.phases_emulated;
  result.stage1_phases_total = stage1.phases_total;
  if (stage1.rejected) {
    result.stage1_rejected = true;
    result.verdict = Verdict::kReject;
    result.rejecting_nodes = stage1.rejecting_nodes;
    result.reason = "stage I: arboricity evidence (active node after peeling)";
    result.partition = measure_partition(g, stage1.forest);
    return result;
  }
  result.partition = measure_partition(g, stage1.forest);

  Stage2Options s2 = opt.stage2;
  s2.epsilon = opt.epsilon;
  s2.seed = opt.seed;
  const Stage2Result stage2 = run_stage2(sim, g, stage1.forest, s2, result.ledger);
  result.verdict = stage2.verdict;
  result.rejecting_nodes = stage2.rejecting_nodes;
  result.reason = stage2.reason.empty() ? result.reason : "stage II: " + stage2.reason;
  result.stage2 = stage2.stats;
  return result;
}

}  // namespace cpt
