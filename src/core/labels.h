// Stage II labeling (Section 2.2.2): child edges are labeled by their rank
// in the node's rotation (circular order starting just after the parent
// edge; the root starts at an arbitrary incident edge), and a node's label
// is the concatenation of edge labels along its BFS-tree path from the
// root. Labels compare lexicographically (footnote 5), which is exactly
// std::vector's operator<.
//
// Also the three label-plumbing CONGEST passes:
//   * LabelDistribute -- pipelined distribution of node labels down the
//     BFS trees (one word per edge per round);
//   * EdgeLabelStream -- endpoints stream their label across selected
//     (non-tree) edges;
//   * UpStreamWords -- framed word streams converging to the roots (used to
//     collect sampled edge label pairs).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/primitives.h"
#include "congest/simulator.h"
#include "planar/embedding.h"

namespace cpt {

using Label = std::vector<std::uint32_t>;

// Per node: labels of its BFS-children edges, aligned with bfs_children[v].
// Children are ranked 1..k by rotation order starting after the parent edge.
std::vector<std::vector<std::uint32_t>> child_edge_labels(
    const Graph& g, const RotationSystem& rotation,
    const std::vector<EdgeId>& bfs_parent,
    const std::vector<std::vector<EdgeId>>& bfs_children);

// ---- Passes ----------------------------------------------------------------

class LabelDistribute : public congest::Program {
 public:
  // `alive_root[v]`: whether v's part participates (dead parts -- e.g.
  // rejected by the edge-count check -- are skipped). child_labels aligned
  // with tree.children lists.
  LabelDistribute(congest::TreeView tree,
                  const std::vector<std::vector<std::uint32_t>>& child_labels);

  void begin(congest::Exec& ex) override;
  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const congest::Inbound> inbox) override;

  const Label& label(NodeId v) const { return label_[v]; }
  std::uint32_t max_label_len() const;

 private:
  void step(congest::Exec& ex, NodeId v);

  congest::TreeView tree_;
  const std::vector<std::vector<std::uint32_t>>* child_labels_;
  std::vector<Label> label_;
  std::vector<std::uint32_t> forward_idx_;
  std::vector<std::uint8_t> got_end_;
  std::vector<std::uint8_t> tail_sent_;
  std::vector<std::uint8_t> end_sent_;
};

class EdgeLabelStream : public congest::Program {
 public:
  // Each node streams `labels[v]` + END over every port in send_ports[v].
  EdgeLabelStream(NodeId n, const std::vector<Label>& labels,
                  const std::vector<std::vector<std::uint32_t>>& send_ports);

  void begin(congest::Exec& ex) override;
  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const congest::Inbound> inbox) override;

  // Completed incoming labels per node as (port, label) pairs.
  const std::vector<std::vector<std::pair<std::uint32_t, Label>>>& received()
      const {
    return done_;
  }

 private:
  void step(congest::Exec& ex, NodeId v);

  const std::vector<Label>* labels_;
  const std::vector<std::vector<std::uint32_t>>* send_ports_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint8_t> end_sent_;
  std::vector<std::vector<std::pair<std::uint32_t, Label>>> partial_;
  std::vector<std::vector<std::pair<std::uint32_t, Label>>> done_;
};

// Framed word streams up the trees: each frame is [payload_len, payload...].
// Forwarding is cut-through with frame granularity: a node commits to one
// input stream (a child port or its own injected frames) until that frame
// completes, buffering the other inputs meanwhile -- so frames never
// interleave, yet a frame crosses the tree pipelined (total rounds ~ depth
// + total words, not depth * words).
class UpStreamWords : public congest::Program {
 public:
  explicit UpStreamWords(congest::TreeView tree);

  // Caller fills frames to inject at each node before running.
  std::vector<std::vector<std::vector<std::int64_t>>> initial;

  void begin(congest::Exec& ex) override;
  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const congest::Inbound> inbox) override;

  const std::vector<std::vector<std::int64_t>>& frames_at_root(NodeId r) const {
    return frames_[r];
  }

 private:
  static constexpr std::uint32_t kNoSource = static_cast<std::uint32_t>(-1);
  static constexpr std::uint32_t kLocalSource = static_cast<std::uint32_t>(-2);

  void transfer(NodeId v);  // move buffered words to the out queue
  void pump(congest::Exec& ex, NodeId v);

  // One input stream per source: each child port plus the node's own
  // injected frames (port == kLocalSource).
  struct Source {
    std::uint32_t port;
    std::vector<std::int64_t> buf;
    std::size_t head = 0;  // first word not yet moved to the out queue
  };

  congest::TreeView tree_;
  std::vector<std::vector<std::int64_t>> out_q_;  // words to send upward
  std::vector<std::size_t> cursor_;               // next word of out_q_
  std::vector<std::vector<Source>> sources_;
  std::vector<std::uint32_t> active_;           // index into sources_[v]
  std::vector<std::int64_t> active_remaining_;  // frame words left (-1: header next)
  // Root-side frame reassembly per receiving port.
  struct Partial {
    std::uint32_t port;
    std::int64_t remaining;  // payload words still expected (-1: want header)
    std::vector<std::int64_t> payload;
  };
  std::vector<std::vector<Partial>> partial_;
  std::vector<std::vector<std::vector<std::int64_t>>> frames_;  // at roots
};

}  // namespace cpt
