// Stage II of the planarity tester (Section 2.2): per part, build a BFS
// tree, check the Euler edge bound, compute a combinatorial embedding
// (Ghaffari-Haeupler substitute, see DESIGN.md), label nodes through the
// rotation system, and hunt for violating non-tree edges by sampling
// Theta(log n / eps) of them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/metrics.h"
#include "congest/simulator.h"
#include "partition/part_forest.h"

namespace cpt {

enum class Verdict {
  kAccept,
  kReject,
  kFail,  // congestion-cap overflow during sampling (prob 1/poly(n))
};

struct Stage2Options {
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  // c in s = ceil(c * ln(n) / eps) sampled non-tree edges per part.
  double sample_constant = 2.0;
  // c in the charged Ghaffari-Haeupler round bound c * D * min(log n, D).
  std::uint32_t gh_round_constant = 4;
  // Reject as soon as the embedding substitute certifies non-planarity of a
  // part. NOT what the paper does (its embedding black box can't certify);
  // off by default, available as a detection-power ablation.
  bool eager_reject_embedding = false;
  // Centralized oracle: check every non-tree edge pair instead of sampling
  // (tests/benches; deterministic detection).
  bool exhaustive_check = false;
};

struct Stage2Stats {
  NodeId parts = 0;
  std::uint32_t max_bfs_depth = 0;
  std::uint32_t max_label_len = 0;
  std::uint64_t total_nontree_edges = 0;
  std::uint64_t sampled_edges = 0;
  std::uint64_t violations_found = 0;
  NodeId parts_certified_planar = 0;      // embedding certified (see DESIGN.md)
  NodeId parts_rejected_edge_bound = 0;   // m > 3n - 6
  NodeId parts_rejected_embedding = 0;    // eager mode only
  NodeId parts_rejected_violation = 0;
  NodeId parts_failed_sampling = 0;
  std::uint64_t exhaustive_violating_edges = 0;  // oracle mode only
};

struct Stage2Result {
  Verdict verdict = Verdict::kAccept;
  std::vector<NodeId> rejecting_nodes;
  std::string reason;
  Stage2Stats stats;
};

Stage2Result run_stage2(congest::Simulator& sim, const Graph& g,
                        const PartForest& pf, const Stage2Options& opt,
                        congest::RoundLedger& ledger);

}  // namespace cpt
