// Stage I driver: the deterministic partitioning algorithm (Theorem 3, and
// Stage I of the planarity tester, Theorem 1). Runs t = Theta(log 1/eps)
// phases of forest-decomposition peeling + CHW merging. If the peeling ever
// leaves an active node, that node's part root rejects (arboricity > 3*alpha
// evidence) and the partition aborts.
#pragma once

#include <vector>

#include "congest/metrics.h"
#include "congest/simulator.h"
#include "partition/forest_decomposition.h"
#include "partition/merge.h"
#include "partition/part_forest.h"

namespace cpt {

// Pooled cross-run Stage I scratch: the reusable peeling result plus the
// peel/merge relay buffers. Already amortized across phases within one
// run; handing the same object to successive runs (the batch engine keeps
// one per worker context) also amortizes it across jobs. Default state is
// valid for any graph -- every table is resized and reset per call by the
// peeling/merge passes.
struct Stage1Scratch {
  PeelingResult peel;
  PeelScratch peel_scratch;
  MergeScratch merge_scratch;
};

struct Stage1Options {
  double epsilon = 0.1;              // edge-cut parameter
  std::uint32_t alpha = 3;           // arboricity bound (3 for planar)
  std::uint32_t phase_override = 0;  // 0 = theory value (Claim 3)
  std::uint32_t peel_super_rounds = 0;  // 0 = theory value
  // Stop phases once the cut target (eps*m/2) is reached. Uses global
  // knowledge for loop control; off by default (the paper runs all phases).
  bool adaptive = false;
  // Pipelined converge/broadcast/relay streams throughout Stage I: strictly
  // fewer rounds and messages, identical partitions. Off reproduces the
  // unpipelined schedule; the differential tests cross-check the two.
  bool pipelined_streams = true;
  // Optional pooled scratch reused across runs (see Stage1Scratch).
  // nullptr = per-run locals; results are identical either way.
  Stage1Scratch* scratch = nullptr;
};

struct PhaseStats {
  std::uint64_t cut_before = 0;
  std::uint64_t cut_after = 0;
  NodeId parts_before = 0;
  NodeId parts_after = 0;
  std::uint32_t cv_iterations = 0;
  std::uint32_t marked_tree_height = 0;
  std::uint64_t rounds = 0;
};

struct Stage1Result {
  PartForest forest;
  bool rejected = false;
  std::vector<NodeId> rejecting_nodes;  // part roots with arboricity evidence
  std::uint32_t phases_emulated = 0;    // phases actually simulated
  std::uint32_t phases_total = 0;       // including fast-forwarded ones
  std::vector<PhaseStats> phase_stats;
};

// Number of phases guaranteeing residual cut <= eps*m/2 when no reject
// occurs (Claims 1 and 3): (1 - 1/(12*alpha))^t <= eps/2.
std::uint32_t stage1_theory_phase_count(double epsilon, std::uint32_t alpha);

Stage1Result run_stage1(congest::Simulator& sim, const Graph& g,
                        const Stage1Options& opt, congest::RoundLedger& ledger);

}  // namespace cpt
