#include "partition/part_forest.h"

#include <algorithm>
#include <queue>

#include "util/contracts.h"

namespace cpt {

PartForest PartForest::singletons(NodeId n) {
  PartForest pf;
  pf.root.resize(n);
  for (NodeId v = 0; v < n; ++v) pf.root[v] = v;
  pf.parent_edge.assign(n, kNoEdge);
  pf.children.assign(n, {});
  pf.depth.assign(n, 0);
  pf.members.resize(n);
  for (NodeId v = 0; v < n; ++v) pf.members[v] = {v};
  return pf;
}

void PartForest::rebuild_root_index() const {
  live_roots_.clear();
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (root[v] == v) live_roots_.push_back(v);
  }
  dead_roots_ = 0;
  index_built_ = true;
}

const std::vector<NodeId>& PartForest::live_roots() const {
  if (!index_built_) {
    rebuild_root_index();
  } else if (dead_roots_ > 0) {
    // Stable in-place compaction keeps the list sorted, so driver loops
    // over roots visit them in the same increasing-id order as the O(n)
    // sweeps they replace.
    std::erase_if(live_roots_, [this](NodeId r) { return root[r] != r; });
    dead_roots_ = 0;
  }
  return live_roots_;
}

std::uint32_t PartForest::max_depth() const {
  std::uint32_t best = 0;
  for (const std::uint32_t d : depth) best = std::max(best, d);
  return best;
}

void PartForest::recompute_depths(const Graph& g) {
  const NodeId n = num_nodes();
  depth.assign(n, 0);
  std::vector<std::uint8_t> known(n, 0);
  std::vector<NodeId> chain;
  for (NodeId v = 0; v < n; ++v) {
    if (known[v]) continue;
    NodeId x = v;
    chain.clear();
    while (!known[x] && parent_edge[x] != kNoEdge) {
      chain.push_back(x);
      x = parent_node(g, x);
    }
    std::uint32_t d = depth[x];  // 0 if x is a root not yet visited
    known[x] = 1;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
      known[*it] = 1;
    }
  }
}

std::uint32_t PartForest::merge_into(const Graph& g, NodeId u, EdgeId e_uv,
                                     NodeId v) {
  const NodeId old_root = root[u];
  const NodeId new_root = root[v];
  CPT_EXPECTS(old_root != new_root);
  CPT_EXPECTS(g.other_endpoint(e_uv, u) == v);

  // Collect the path u -> old_root and its edges (the flip below mutates
  // parent pointers, so they must be snapshotted first).
  std::vector<NodeId> path{u};
  std::vector<EdgeId> path_edges;
  while (parent_edge[path.back()] != kNoEdge) {
    path_edges.push_back(parent_edge[path.back()]);
    path.push_back(parent_node(g, path.back()));
  }
  CPT_ASSERT(path.back() == old_root);

  // Flip: each former parent becomes a child of its former child.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId child = path[i];
    const NodeId par = path[i + 1];
    const EdgeId e = path_edges[i];
    auto& pc = children[par];
    const auto it = std::find(pc.begin(), pc.end(), e);
    CPT_ASSERT(it != pc.end());
    pc.erase(it);
    children[child].push_back(e);
    parent_edge[par] = e;
  }
  parent_edge[u] = e_uv;
  children[v].push_back(e_uv);

  // Re-root the absorbed members.
  for (const NodeId x : members[old_root]) root[x] = new_root;
  auto& dst = members[new_root];
  dst.insert(dst.end(), members[old_root].begin(), members[old_root].end());
  members[old_root].clear();
  if (index_built_) ++dead_roots_;  // old_root retired; compacted lazily

  return static_cast<std::uint32_t>(path.size() - 1);
}

PartForest::Dense PartForest::dense_index() const {
  Dense d;
  d.part_of.assign(num_nodes(), kNoNode);
  for (const NodeId r : live_roots()) {
    d.part_of[r] = d.num_parts++;
    d.root_of_part.push_back(r);
  }
  for (NodeId v = 0; v < num_nodes(); ++v) d.part_of[v] = d.part_of[root[v]];
  return d;
}

bool validate_part_forest(const Graph& g, const PartForest& pf) {
  const NodeId n = pf.num_nodes();
  if (n != g.num_nodes()) return false;
  std::vector<NodeId> seen_in_members(n, kNoNode);
  for (NodeId r = 0; r < n; ++r) {
    if (pf.root[r] == r) {
      if (pf.parent_edge[r] != kNoEdge) return false;
      for (const NodeId x : pf.members[r]) {
        if (pf.root[x] != r || seen_in_members[x] != kNoNode) return false;
        seen_in_members[x] = r;
      }
    } else if (!pf.members[r].empty()) {
      return false;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (seen_in_members[v] == kNoNode) return false;  // not in any member list
  }
  // Parent/children consistency + tree edges stay within parts.
  for (NodeId v = 0; v < n; ++v) {
    for (const EdgeId ce : pf.children[v]) {
      const NodeId w = g.other_endpoint(ce, v);
      if (pf.parent_edge[w] != ce) return false;
      if (pf.root[w] != pf.root[v]) return false;
    }
    if (pf.parent_edge[v] != kNoEdge) {
      const NodeId p = pf.parent_node(g, v);
      if (pf.root[p] != pf.root[v]) return false;
      const auto& pc = pf.children[p];
      if (std::count(pc.begin(), pc.end(), pf.parent_edge[v]) != 1) return false;
    }
  }
  // Acyclic + depths correct: walk up from every node, bounded by n steps.
  for (NodeId v = 0; v < n; ++v) {
    NodeId x = v;
    std::uint32_t steps = 0;
    while (pf.parent_edge[x] != kNoEdge) {
      x = pf.parent_node(g, x);
      if (++steps > n) return false;  // cycle
    }
    if (x != pf.root[v]) return false;
    if (steps != pf.depth[v]) return false;
  }
  // Live-root index consistent with the root array (also triggers the lazy
  // build/compaction, so a validated forest always has a fresh index).
  const std::vector<NodeId>& live = pf.live_roots();
  NodeId expected = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (pf.root[v] != v) continue;
    if (expected >= live.size() || live[expected] != v) return false;
    ++expected;
  }
  if (expected != live.size()) return false;
  return true;
}

PartitionStats measure_partition(const Graph& g, const PartForest& pf) {
  PartitionStats stats;
  stats.max_tree_depth = pf.max_depth();
  for (const Endpoints e : g.edges()) {
    if (pf.root[e.u] != pf.root[e.v]) ++stats.cut_edges;
  }
  // Per-part eccentricity of the root, BFS restricted to the part.
  std::vector<std::uint32_t> dist(g.num_nodes());
  for (const NodeId r : pf.live_roots()) {
    ++stats.num_parts;
    std::queue<NodeId> frontier;
    for (const NodeId x : pf.members[r]) dist[x] = static_cast<std::uint32_t>(-1);
    dist[r] = 0;
    frontier.push(r);
    std::uint32_t ecc = 0;
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      ecc = std::max(ecc, dist[v]);
      for (const Arc& a : g.neighbors(v)) {
        if (pf.root[a.to] != r) continue;
        if (dist[a.to] == static_cast<std::uint32_t>(-1)) {
          dist[a.to] = dist[v] + 1;
          frontier.push(a.to);
        }
      }
    }
    stats.max_part_ecc = std::max(stats.max_part_ecc, ecc);
  }
  return stats;
}

}  // namespace cpt
