// Emulation of the Barenboim-Elkin forest-decomposition peeling on the
// contracted auxiliary graph G_i (paper Sections 2.1.1 and 2.1.5).
//
// Each super-round is emulated by three passes on the underlying network:
//   A. a one-round exchange in which every node of a still-active part
//      announces ('Active', root id) to all neighbors;
//   B. a record convergecast up each participating part tree counting
//      distinct active foreign neighbor parts (capped at 3*alpha: more
//      distinct roots collapse to a plain 'Active' overflow, exactly the
//      paper's congestion control);
//   C. a broadcast informing a part's members when it becomes inactive.
// A part that inactivates in super-round l runs passes A+B once more in
// super-round l+1 to learn which neighbors inactivated simultaneously
// (paper: "this process is also executed one super-round after ...").
//
// Parts still active after all super-rounds are arboricity-> 3*alpha
// evidence: their roots output reject.
#pragma once

#include <vector>

#include "congest/metrics.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "partition/part_forest.h"

namespace cpt {

struct PeelingOptions {
  std::uint32_t alpha = 3;        // arboricity bound (3 for planar)
  std::uint32_t super_rounds = 0; // 0 = ceil(log_{3/2} n) + 1
  // Pipelined converge/broadcast streams (strictly fewer rounds and
  // messages, identical decisions); off reproduces the original schedule
  // for differential testing.
  bool pipelined = true;
};

struct PeelingResult {
  // Non-empty => at least one node of G_i stayed active: reject evidence.
  std::vector<NodeId> still_active_roots;
  // Per part root: the BE out-edges in G_i as (neighbor root id, weight),
  // weight = number of G-edges between the two parts. At most 3*alpha.
  std::vector<std::vector<congest::Record>> out_records;
  // Per node, per port: the neighbor's part root, refreshed by pass A.
  std::vector<std::vector<NodeId>> neighbor_root;
  std::uint32_t emulated_super_rounds = 0;  // super-rounds needing messages
};

// Reusable buffers for the peeling emulation. Passing one instance across
// the phases of a partition run keeps every per-node buffer's capacity (the
// record tables are flat arenas; see congest/record_table.h), so repeated
// peelings are allocation-free in steady state. Purely a performance knob:
// contents carry no state between calls.
struct PeelScratch {
  congest::ConvergeRecords conv;
  congest::BroadcastRecords bc;
  congest::TreePorts tree_ports;
  congest::RecordTable local_rec;
  congest::RecordTable rec_at_inact;
  std::vector<std::uint8_t> active, learning, announces, participates;
  std::vector<NodeId> announcing;
  // Participant lists (TreeView::members): nodes of parts still in the
  // peeling (pass B) and of parts inactivating this super-round (pass C).
  std::vector<NodeId> participants, inactivating;
};

// Overwrites `result` completely (capacity is reused across calls).
void run_forest_decomposition(congest::Simulator& sim, const Graph& g,
                              const PartForest& pf, const PeelingOptions& opt,
                              congest::RoundLedger& ledger,
                              PeelingResult& result,
                              PeelScratch* scratch = nullptr);

// Convenience wrapper returning a fresh result.
PeelingResult run_forest_decomposition(congest::Simulator& sim, const Graph& g,
                                       const PartForest& pf,
                                       const PeelingOptions& opt,
                                       congest::RoundLedger& ledger);

}  // namespace cpt
