#include "partition/random_partition.h"

#include <algorithm>
#include <cmath>

#include "congest/primitives.h"
#include "partition/merge.h"
#include "util/contracts.h"

namespace cpt {

using congest::BroadcastRecords;
using congest::Combine;
using congest::ConvergeRecords;
using congest::Exchange;
using congest::Inbound;
using congest::Msg;
using congest::Record;
using congest::TreeView;

namespace {

constexpr std::uint32_t kTagRoot = 30;
constexpr std::uint32_t kTagPick = 31;

// Uniform-random-incident-edge convergecast (paper Section 4.1): each node
// draws a uniform edge among its own boundary edges; going up the tree, a
// node keeps each subtree candidate with probability proportional to its
// boundary-edge count (weighted reservoir), so the root ends up with a
// uniform edge among all edges incident to the part. Exactly one message
// per tree edge.
class UniformEdgePick : public congest::Program {
 public:
  struct Candidate {
    NodeId node = kNoNode;       // boundary endpoint inside the part
    std::uint32_t port = 0;      // its port toward the outside
    NodeId target = kNoNode;     // the neighboring part's root
    std::int64_t count = 0;      // boundary edges in the subtree
  };

  UniformEdgePick(TreeView tree, const std::vector<std::vector<NodeId>>& nbr_root,
                  const std::vector<NodeId>& part_root, Rng& rng,
                  std::uint64_t salt)
      : tree_(tree), nbr_root_(&nbr_root), part_root_(&part_root) {
    const std::size_t n = part_root.size();
    state_.resize(n);
    pending_.assign(n, 0);
    rng_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      rng_.push_back(rng.fork((static_cast<std::uint64_t>(v) << 20) ^ salt));
    }
  }

  void begin(congest::Exec& ex) override {
    const NodeId n = static_cast<NodeId>(part_root_->size());
    for (NodeId v = 0; v < n; ++v) {
      if (!tree_.in(v)) continue;
      init_own(v);
      pending_[v] = static_cast<std::uint32_t>((*tree_.children)[v].size());
      if (pending_[v] == 0) emit(ex, v);
    }
  }

  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const Inbound> inbox) override {
    for (const Inbound& in : inbox) {
      if (in.msg.tag != kTagPick) continue;
      Candidate child;
      child.node = static_cast<NodeId>(in.msg.w[0] >> 20);
      child.port = static_cast<std::uint32_t>(in.msg.w[0] & 0xfffff);
      child.target = static_cast<NodeId>(in.msg.w[2]);
      child.count = in.msg.w[1];
      merge(v, child);
      CPT_ASSERT(pending_[v] > 0);
      if (--pending_[v] == 0) emit(ex, v);
    }
  }

  const Candidate& at_root(NodeId root) const { return state_[root]; }

 private:
  void init_own(NodeId v) {
    // Uniform pick among v's own boundary ports.
    std::int64_t count = 0;
    const auto& roots = (*nbr_root_)[v];
    for (std::uint32_t p = 0; p < roots.size(); ++p) {
      if (roots[p] != kNoNode && roots[p] != (*part_root_)[v]) {
        ++count;
        if (rng_[v].next_below(static_cast<std::uint64_t>(count)) == 0) {
          state_[v].node = v;
          state_[v].port = p;
          state_[v].target = roots[p];
        }
      }
    }
    state_[v].count = count;
  }

  void merge(NodeId v, const Candidate& child) {
    if (child.count == 0) return;
    state_[v].count += child.count;
    if (static_cast<std::int64_t>(rng_[v].next_below(
            static_cast<std::uint64_t>(state_[v].count))) < child.count) {
      state_[v].node = child.node;
      state_[v].port = child.port;
      state_[v].target = child.target;
    }
  }

  void emit(congest::Exec& ex, NodeId v) {
    const EdgeId pe = (*tree_.parent_edge)[v];
    if (pe == kNoEdge) return;  // root keeps the result
    const Candidate& c = state_[v];
    const std::int64_t packed =
        c.node == kNoNode
            ? -1
            : static_cast<std::int64_t>((static_cast<std::uint64_t>(c.node) << 20) |
                                        c.port);
    ex.send(v, ex.network().port_of_edge(v, pe),
             Msg::make(kTagPick, packed, c.count,
                       static_cast<std::int64_t>(c.target)));
  }

  TreeView tree_;
  const std::vector<std::vector<NodeId>>* nbr_root_;
  const std::vector<NodeId>* part_root_;
  std::vector<Candidate> state_;
  std::vector<std::uint32_t> pending_;
  std::vector<Rng> rng_;
};

std::uint64_t cut_weight(const Graph& g, const PartForest& pf) {
  std::uint64_t cut = 0;
  for (const Endpoints e : g.edges()) {
    if (pf.root[e.u] != pf.root[e.v]) ++cut;
  }
  return cut;
}

}  // namespace

std::uint32_t random_partition_theory_phase_count(double epsilon,
                                                  std::uint32_t alpha) {
  CPT_EXPECTS(epsilon > 0 && epsilon < 1);
  const double shrink = 1.0 - 1.0 / (64.0 * alpha);
  return static_cast<std::uint32_t>(
             std::ceil(std::log(epsilon / 2.0) / std::log(shrink))) +
         1;
}

RandomPartitionResult run_random_partition(congest::Simulator& sim,
                                           const Graph& g,
                                           const RandomPartitionOptions& opt,
                                           congest::RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  RandomPartitionResult result;
  result.forest = PartForest::singletons(n);
  result.phases_total =
      opt.phase_override != 0
          ? opt.phase_override
          : random_partition_theory_phase_count(opt.epsilon, opt.alpha);
  // Lemma 13: each trial independently fails with prob <= 1/(16*alpha - 1);
  // s trials drive the failure below delta (plus one for slack).
  result.trials_per_phase =
      opt.trials_override != 0
          ? opt.trials_override
          : static_cast<std::uint32_t>(
                std::ceil(std::log(1.0 / opt.delta) /
                          std::log(16.0 * opt.alpha - 1.0))) +
                1;

  Rng rng(opt.seed);
  const std::uint64_t target_cut = static_cast<std::uint64_t>(
      std::floor(opt.epsilon * static_cast<double>(g.num_edges()) / 2.0));

  std::vector<std::vector<NodeId>> neighbor_root(n);
  for (NodeId v = 0; v < n; ++v) neighbor_root[v].assign(g.degree(v), kNoNode);
  // Relay buffers amortized across phases (and across runs when pooled).
  MergeScratch local_merge_scratch;
  MergeScratch& merge_scratch = opt.scratch != nullptr
                                    ? opt.scratch->merge_scratch
                                    : local_merge_scratch;

  for (std::uint32_t phase = 1; phase <= result.phases_total; ++phase) {
    PartForest& pf = result.forest;
    PhaseStats stats;
    stats.cut_before = cut_weight(g, pf);
    stats.parts_before = pf.num_parts();
    const std::uint64_t rounds_at_start = ledger.total_rounds();

    // Refresh per-port neighbor roots (paper 4.1: "each node sends a message
    // to all its neighbors with the id of the root of its part").
    Exchange refresh(
        n,
        [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
          for (std::uint32_t p = 0; p < g.degree(v); ++p) {
            out.push_back(
                {p, Msg::make(kTagRoot, static_cast<std::int64_t>(pf.root[v]))});
          }
        },
        [&](congest::Exec&, NodeId v, std::span<const Inbound> inbox) {
          for (const Inbound& in : inbox) {
            if (in.msg.tag == kTagRoot) {
              neighbor_root[v][in.port] = static_cast<NodeId>(in.msg.w[0]);
            }
          }
        });
    auto rr = sim.run(refresh);
    ledger.add_pass("rand/refresh", std::max<std::uint64_t>(rr.rounds, 1),
                    rr.messages);

    // s weighted draws: each is a uniform boundary-edge pick.
    std::vector<UniformEdgePick::Candidate> best(n);
    std::vector<std::vector<UniformEdgePick::Candidate>> drawn(n);
    for (std::uint32_t trial = 0; trial < result.trials_per_phase; ++trial) {
      UniformEdgePick pick(TreeView{&pf.parent_edge, &pf.children, nullptr},
                           neighbor_root, pf.root, rng,
                           (static_cast<std::uint64_t>(phase) << 8) | trial);
      auto rp = sim.run(pick);
      ledger.add_pass("rand/pick", rp.rounds, rp.messages);
      for (const NodeId r : pf.live_roots()) {
        if (pick.at_root(r).node != kNoNode) {
          drawn[r].push_back(pick.at_root(r));
        }
      }
    }

    // Learn the weights of the drawn targets: broadcast the candidate target
    // roots, converge per-target boundary-edge counts, keep the heaviest.
    BroadcastRecords bc(
        TreeView{&pf.parent_edge, &pf.children, nullptr, &pf.live_roots()});
    for (const NodeId r : pf.live_roots()) {
      for (const auto& c : drawn[r]) {
        bc.stream[r].push_back({static_cast<std::uint64_t>(c.target), 0});
      }
    }
    auto rb = sim.run(bc);
    ledger.add_pass("rand/weights-bcast", rb.rounds, rb.messages);
    for (const NodeId r : pf.live_roots()) {
      if (!bc.stream[r].empty()) bc.received[r] = bc.stream[r];
    }
    std::vector<std::uint8_t> all(n, 1);
    ConvergeRecords conv(TreeView{&pf.parent_edge, &pf.children, &all},
                         Combine::kSum, 0);
    for (const NodeId v : bc.received.touched_rows()) {
      // touched_rows may repeat a row (cleared-and-refilled rows can be
      // listed by two shards); initial[v] is filled only here, so a
      // non-empty row marks v as already processed.
      if (!conv.initial[v].empty()) continue;
      for (const Record& want : bc.received[v]) {
        std::int64_t count = 0;
        for (std::uint32_t p = 0; p < g.degree(v); ++p) {
          if (neighbor_root[v][p] == static_cast<NodeId>(want.key)) ++count;
        }
        if (count > 0) conv.initial[v].push_back({want.key, count});
      }
    }
    auto rc = sim.run(conv);
    ledger.add_pass("rand/weights-conv", rc.rounds, rc.messages);

    Selection sel(n);
    for (const NodeId r : pf.live_roots()) {
      if (drawn[r].empty()) continue;
      for (const auto& c : drawn[r]) {
        std::uint64_t w = 0;
        for (const Record& rec : conv.at_root(r)) {
          if (rec.key == c.target) {
            w = static_cast<std::uint64_t>(rec.value);
            break;
          }
        }
        CPT_ASSERT(w > 0);
        if (sel.target[r] == kNoNode || w > sel.weight[r] ||
            (w == sel.weight[r] && c.target < sel.target[r])) {
          sel.target[r] = c.target;
          sel.weight[r] = w;
          sel.charge_node[r] = c.node;
          sel.charge_edge[r] = sim.network().arc(c.node, c.port).edge;
        }
      }
    }

    const MergeStats merge = run_merge_step(sim, g, pf, neighbor_root,
                                            std::move(sel), ledger,
                                            &merge_scratch);

    stats.cut_after = cut_weight(g, pf);
    stats.parts_after = pf.num_parts();
    stats.cv_iterations = merge.cv_iterations;
    stats.marked_tree_height = merge.marked_tree_height;
    stats.rounds = ledger.total_rounds() - rounds_at_start;
    result.phase_stats.push_back(stats);
    result.phases_emulated = phase;

    if (stats.cut_after == 0 && phase < result.phases_total) {
      // Frozen phases repeat with identical cost (refresh + s silent picks);
      // emulate one and charge the rest.
      const std::uint64_t frozen_start = ledger.total_rounds();
      auto rr2 = sim.run(refresh);
      ledger.add_pass("rand/refresh", std::max<std::uint64_t>(rr2.rounds, 1),
                      rr2.messages);
      for (std::uint32_t trial = 0; trial < result.trials_per_phase; ++trial) {
        UniformEdgePick pick(TreeView{&pf.parent_edge, &pf.children, nullptr},
                             neighbor_root, pf.root, rng, trial);
        auto rp = sim.run(pick);
        ledger.add_pass("rand/pick", rp.rounds, rp.messages);
      }
      const std::uint64_t frozen_cost = ledger.total_rounds() - frozen_start;
      ++result.phases_emulated;
      const std::uint32_t remaining = result.phases_total - phase - 1;
      if (remaining > 0) {
        ledger.charge("rand/fast-forward", frozen_cost * remaining);
      }
      break;
    }
    if (opt.adaptive && stats.cut_after <= target_cut) break;
  }
  return result;
}

}  // namespace cpt
