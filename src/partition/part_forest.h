// The per-node state that Lemma 6 guarantees throughout Stage I: every node
// knows its part's root, its parent edge and its children edges in a rooted
// spanning tree of its part. Contractions re-root merged parts by flipping
// the path from the old root to the designated boundary node, exactly as in
// the paper's Sub-step 4 emulation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cpt {

struct PartForest {
  std::vector<NodeId> root;                   // per node: its part's root id
  std::vector<EdgeId> parent_edge;            // per node: kNoEdge at roots
  std::vector<std::vector<EdgeId>> children;  // per node: child tree edges
  std::vector<std::uint32_t> depth;           // per node: depth in part tree
  // Member lists, indexed by root id (empty vectors at non-roots). This is
  // driver-side bookkeeping; the distributed state is the four arrays above.
  std::vector<std::vector<NodeId>> members;

  static PartForest singletons(NodeId n);

  NodeId num_nodes() const { return static_cast<NodeId>(root.size()); }
  bool is_root(NodeId v) const { return root[v] == v; }

  // Live root ids in increasing order, maintained incrementally: merges
  // only ever retire roots, so merge_into marks deaths and this call
  // lazily compacts the sorted list (amortized O(1) per retired root;
  // O(1) when nothing died since the last call; one O(n) build on first
  // use). Replaces the retired roots() method and the O(n) `is_root`
  // sweeps the Stage I drivers ran before every relay pass. The returned
  // reference stays valid until the next merge_into + live_roots() pair.
  // Hand-built forests that mutate `root` directly after reading the list
  // must call rebuild_root_index().
  const std::vector<NodeId>& live_roots() const;
  NodeId num_parts() const {
    return static_cast<NodeId>(live_roots().size());
  }
  void rebuild_root_index() const;

  std::uint32_t max_depth() const;

  // The parent node of v (resolves v's parent edge); kNoNode at roots.
  NodeId parent_node(const Graph& g, NodeId v) const {
    return parent_edge[v] == kNoEdge ? kNoNode
                                     : g.other_endpoint(parent_edge[v], v);
  }

  // Recomputes `depth` from the parent pointers (O(n)).
  void recompute_depths(const Graph& g);

  // Merges the part rooted at root[u] into the part containing v: flips
  // parent pointers along the path old-root -> u, attaches u below v via
  // edge e_uv, and updates roots/members. Returns the flipped path length
  // (the emulation's round-cost driver). Does NOT recompute depths; callers
  // batch merges and call recompute_depths once. Precondition: u and v are
  // in different parts and e_uv joins them.
  std::uint32_t merge_into(const Graph& g, NodeId u, EdgeId e_uv, NodeId v);

  // Dense part indexing for contraction and reporting.
  struct Dense {
    std::vector<NodeId> part_of;       // node -> dense part index
    std::vector<NodeId> root_of_part;  // dense part index -> root node
    NodeId num_parts = 0;
  };
  Dense dense_index() const;

 private:
  // Lazy sorted live-root list (see live_roots()). Mutable: compaction and
  // the first build happen behind const reads from drivers that hold a
  // const PartForest&.
  mutable std::vector<NodeId> live_roots_;
  mutable NodeId dead_roots_ = 0;      // retired since last compaction
  mutable bool index_built_ = false;
};

// Structural validation (tests): parent/children consistency, acyclicity,
// every part spanned by its tree, members match roots, depths correct.
bool validate_part_forest(const Graph& g, const PartForest& pf);

struct PartitionStats {
  NodeId num_parts = 0;
  std::uint64_t cut_edges = 0;       // edges between different parts
  std::uint32_t max_tree_depth = 0;  // max depth over part trees
  std::uint32_t max_part_ecc = 0;    // max graph eccentricity of a root
                                     // within its part (the part's diameter
                                     // is in [ecc, 2*ecc])
};

// Centralized measurement for reporting and tests.
PartitionStats measure_partition(const Graph& g, const PartForest& pf);

}  // namespace cpt
