#include "partition/forest_decomposition.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpt {

using congest::BroadcastRecords;
using congest::Combine;
using congest::ConvergeRecords;
using congest::Exchange;
using congest::Inbound;
using congest::Msg;
using congest::Record;
using congest::TreeView;

namespace {
constexpr std::uint32_t kTagActive = 10;
}

void run_forest_decomposition(congest::Simulator& sim, const Graph& g,
                              const PartForest& pf, const PeelingOptions& opt,
                              congest::RoundLedger& ledger,
                              PeelingResult& result, PeelScratch* scratch) {
  const NodeId n = g.num_nodes();
  const std::uint32_t cap = 3 * opt.alpha;
  const std::uint32_t s =
      opt.super_rounds != 0
          ? opt.super_rounds
          : static_cast<std::uint32_t>(
                std::ceil(std::log(std::max<double>(n, 2)) / std::log(1.5))) + 1;

  PeelScratch local_scratch;
  PeelScratch& sc = scratch != nullptr ? *scratch : local_scratch;

  result.still_active_roots.clear();
  result.emulated_super_rounds = 0;
  congest::clear_record_table(result.out_records, n);
  if (result.neighbor_root.size() != n) result.neighbor_root.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.neighbor_root[v].assign(g.degree(v), kNoNode);
  }

  // Root-side state (driver arrays indexed by root node id).
  auto& active = sc.active;
  auto& learning = sc.learning;
  auto& rec_at_inact = sc.rec_at_inact;
  // Node-side state: does my part announce in pass A this super-round?
  auto& announces = sc.announces;
  active.assign(n, 0);
  learning.assign(n, 0);
  rec_at_inact.reset(n);
  announces.assign(n, 1);  // all parts start active
  for (const NodeId r : pf.live_roots()) active[r] = 1;

  // Scratch: per-node local records collected from pass A. The converge /
  // broadcast passes are pooled across super-rounds and calls (reset()
  // keeps per-node buffer capacity), so the loop is allocation-free in
  // steady state.
  auto& local_rec = sc.local_rec;
  local_rec.reset(n);
  auto& participates = sc.participates;
  participates.assign(n, 1);  // everyone starts active
  auto& announcing = sc.announcing;
  auto& participants = sc.participants;
  auto& inactivating = sc.inactivating;
  TreeView tree{&pf.parent_edge, &pf.children, &participates, nullptr,
                &participants};
  ConvergeRecords& conv = sc.conv;
  BroadcastRecords& bc = sc.bc;
  // The part forest is fixed for the whole peeling: one port sweep serves
  // every converge/broadcast pass below.
  sc.tree_ports.build(sim.network(), pf.parent_edge, pf.children);

  for (std::uint32_t ell = 1; ell <= s + 1; ++ell) {
    bool any_active = false;
    bool any_learning = false;
    for (const NodeId r : pf.live_roots()) {
      any_active = any_active || active[r];
      any_learning = any_learning || learning[r];
    }
    if (!any_active && !any_learning) {
      // Remaining super-rounds are silent listening; the schedule still
      // ticks one round each.
      ledger.charge("stage1/peel-quiet", s + 1 - ell + 1);
      break;
    }
    ++result.emulated_super_rounds;

    // ---- Pass A: 'Active' announcements (one round). ----
    // Announcers are exactly the members of still-active parts (pass C
    // already cleared `announces` for inactivated members); building the
    // sender list from the part member lists costs O(parts + announcers),
    // not O(n).
    local_rec.reset(n);
    announcing.clear();
    for (const NodeId r : pf.live_roots()) {
      if (!active[r]) continue;
      const auto& mem = pf.members[r];
      announcing.insert(announcing.end(), mem.begin(), mem.end());
    }
    Exchange exchange(
        n,
        [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
          if (!announces[v]) return;
          for (std::uint32_t p = 0; p < g.degree(v); ++p) {
            out.push_back(
                {p, Msg::make(kTagActive,
                              static_cast<std::int64_t>(pf.root[v]))});
          }
        },
        [&](congest::Exec& ex, NodeId v, std::span<const Inbound> inbox) {
          for (const Inbound& in : inbox) {
            if (in.msg.tag != kTagActive) continue;
            const NodeId r = static_cast<NodeId>(in.msg.w[0]);
            result.neighbor_root[v][in.port] = r;
            if (r != pf.root[v]) local_rec.push(v, {r, 1}, ex.shard());
          }
        },
        &announcing);
    const auto ra = sim.run(exchange);
    ledger.add_pass("stage1/peel-exchange", std::max<std::uint64_t>(ra.rounds, 1),
                    ra.messages);

    // ---- Pass B: convergecast of distinct active foreign roots. ----
    // Participants: members of parts still active or learning. The
    // `participates` bits are maintained incrementally (parts only ever
    // leave, one super-round after inactivating -- see the decisions loop),
    // so refreshing mask + member list is O(parts + participants).
    participants.clear();
    for (const NodeId r : pf.live_roots()) {
      if (!(active[r] || learning[r])) continue;
      const auto& mem = pf.members[r];
      participants.insert(participants.end(), mem.begin(), mem.end());
    }
    conv.reset(tree, Combine::kSum, cap, &sc.tree_ports, opt.pipelined);
    for (const NodeId v : local_rec.touched_rows()) {
      if (participates[v] && !local_rec[v].empty()) {
        conv.initial[v] = local_rec[v];
      }
    }
    const auto rb = sim.run(conv);
    ledger.add_pass("stage1/peel-converge", rb.rounds, rb.messages);

    // ---- Decisions at roots (local computation). ----
    std::vector<NodeId> newly_inactive;
    for (const NodeId r : pf.live_roots()) {
      if (learning[r]) {
        // One super-round after inactivation: neighbors still announcing
        // now are the ones that stayed active; the rest of the
        // at-inactivation list inactivated simultaneously. The part is
        // done -- its members leave the participant set (the mask was
        // already read by this super-round's passes).
        learning[r] = 0;
        for (const NodeId v : pf.members[r]) participates[v] = 0;
        const auto now = conv.at_root(r);
        CPT_ASSERT(!conv.overflowed(r));
        for (const Record& rec : rec_at_inact[r]) {
          const bool still_active =
              std::any_of(now.begin(), now.end(),
                          [&](const Record& x) { return x.key == rec.key; });
          if (still_active || r < rec.key) {
            result.out_records[r].push_back(rec);
          }
        }
        continue;
      }
      if (!active[r] || ell > s) continue;
      if (conv.overflowed(r)) continue;  // > 3*alpha active neighbors
      // At most 3*alpha active neighbors: become inactive.
      active[r] = 0;
      learning[r] = 1;
      rec_at_inact[r] = conv.at_root(r);
      newly_inactive.push_back(r);
    }

    // ---- Pass C: notify members of parts that just became inactive. ----
    if (!newly_inactive.empty()) {
      inactivating.clear();
      for (const NodeId r : newly_inactive) {
        const auto& mem = pf.members[r];
        inactivating.insert(inactivating.end(), mem.begin(), mem.end());
      }
      bc.reset(TreeView{&pf.parent_edge, &pf.children, nullptr,
                        &newly_inactive, &inactivating},
               &sc.tree_ports, opt.pipelined);
      for (const NodeId r : newly_inactive) {
        bc.stream[r] = {{0, 0}};
        announces[r] = 0;  // the root itself
      }
      const auto rc = sim.run(bc);
      ledger.add_pass("stage1/peel-broadcast", rc.rounds, rc.messages);
      for (const NodeId v : bc.received.touched_rows()) {
        if (!bc.received[v].empty()) announces[v] = 0;
      }
    }
  }

  for (const NodeId r : pf.live_roots()) {
    if (active[r]) result.still_active_roots.push_back(r);
  }
}

PeelingResult run_forest_decomposition(congest::Simulator& sim, const Graph& g,
                                       const PartForest& pf,
                                       const PeelingOptions& opt,
                                       congest::RoundLedger& ledger) {
  PeelingResult result;
  run_forest_decomposition(sim, g, pf, opt, ledger, result, nullptr);
  return result;
}

}  // namespace cpt
