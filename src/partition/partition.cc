#include "partition/partition.h"

#include <algorithm>
#include <cmath>

#include "partition/forest_decomposition.h"
#include "partition/merge.h"
#include "util/contracts.h"

namespace cpt {

namespace {

std::uint64_t cut_weight(const Graph& g, const PartForest& pf) {
  std::uint64_t cut = 0;
  for (const Endpoints e : g.edges()) {
    if (pf.root[e.u] != pf.root[e.v]) ++cut;
  }
  return cut;
}

// Sub-step 1 of the merging step: each part picks its heaviest BE out-edge
// (ties broken toward the smaller root id, deterministically).
Selection heaviest_out_edge_selection(const Graph& g, const PartForest& pf,
                                      const PeelingResult& peel) {
  Selection sel(g.num_nodes());
  for (const NodeId r : pf.live_roots()) {
    for (const congest::Record& rec : peel.out_records[r]) {
      const NodeId target = static_cast<NodeId>(rec.key);
      const auto w = static_cast<std::uint64_t>(rec.value);
      if (sel.target[r] == kNoNode || w > sel.weight[r] ||
          (w == sel.weight[r] && target < sel.target[r])) {
        sel.target[r] = target;
        sel.weight[r] = w;
      }
    }
  }
  return sel;
}

}  // namespace

std::uint32_t stage1_theory_phase_count(double epsilon, std::uint32_t alpha) {
  CPT_EXPECTS(epsilon > 0 && epsilon < 1);
  const double shrink = 1.0 - 1.0 / (12.0 * alpha);
  return static_cast<std::uint32_t>(
             std::ceil(std::log(epsilon / 2.0) / std::log(shrink))) +
         1;
}

Stage1Result run_stage1(congest::Simulator& sim, const Graph& g,
                        const Stage1Options& opt, congest::RoundLedger& ledger) {
  Stage1Result result;
  result.forest = PartForest::singletons(g.num_nodes());
  result.phases_total = opt.phase_override != 0
                            ? opt.phase_override
                            : stage1_theory_phase_count(opt.epsilon, opt.alpha);

  const std::uint64_t target_cut = static_cast<std::uint64_t>(
      std::floor(opt.epsilon * static_cast<double>(g.num_edges()) / 2.0));

  PeelingOptions peel_opt;
  peel_opt.alpha = opt.alpha;
  peel_opt.super_rounds = opt.peel_super_rounds;
  peel_opt.pipelined = opt.pipelined_streams;
  // Peeling/merge buffers amortized across phases -- and, when the caller
  // supplies pooled scratch, across runs.
  Stage1Scratch local_scratch;
  Stage1Scratch& scr = opt.scratch != nullptr ? *opt.scratch : local_scratch;
  PeelingResult& peel = scr.peel;
  PeelScratch& peel_scratch = scr.peel_scratch;
  MergeScratch& merge_scratch = scr.merge_scratch;

  for (std::uint32_t phase = 1; phase <= result.phases_total; ++phase) {
    PhaseStats stats;
    stats.cut_before = cut_weight(g, result.forest);
    stats.parts_before = result.forest.num_parts();
    const std::uint64_t rounds_at_start = ledger.total_rounds();

    run_forest_decomposition(sim, g, result.forest, peel_opt, ledger, peel,
                             &peel_scratch);
    if (!peel.still_active_roots.empty()) {
      result.rejected = true;
      result.rejecting_nodes = std::move(peel.still_active_roots);
      result.phases_emulated = phase;
      stats.rounds = ledger.total_rounds() - rounds_at_start;
      result.phase_stats.push_back(stats);
      return result;
    }

    Selection sel = heaviest_out_edge_selection(g, result.forest, peel);
    const MergeStats merge = run_merge_step(sim, g, result.forest,
                                            peel.neighbor_root, std::move(sel),
                                            ledger, &merge_scratch,
                                            opt.pipelined_streams);

    stats.cut_after = cut_weight(g, result.forest);
    stats.parts_after = result.forest.num_parts();
    stats.cv_iterations = merge.cv_iterations;
    stats.marked_tree_height = merge.marked_tree_height;
    stats.rounds = ledger.total_rounds() - rounds_at_start;
    result.phase_stats.push_back(stats);
    result.phases_emulated = phase;

    if (stats.cut_after == 0 && phase < result.phases_total) {
      // All remaining phases are no-ops with identical cost: emulate one
      // frozen phase to measure it, then charge the rest. (Reuses `peel`:
      // its previous contents are no longer needed.)
      const std::uint64_t frozen_start = ledger.total_rounds();
      run_forest_decomposition(sim, g, result.forest, peel_opt, ledger, peel,
                               &peel_scratch);
      CPT_ASSERT(peel.still_active_roots.empty());
      const std::uint64_t frozen_cost = ledger.total_rounds() - frozen_start;
      ++result.phases_emulated;
      const std::uint32_t remaining = result.phases_total - phase - 1;
      if (remaining > 0) {
        ledger.charge("stage1/fast-forward", frozen_cost * remaining);
      }
      break;
    }
    if (opt.adaptive && stats.cut_after <= target_cut) break;
  }
  return result;
}

}  // namespace cpt
