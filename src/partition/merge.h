// Emulation of the merging step (paper Sections 2.1.2 and 2.1.6, following
// Czygrinow-Hanckowiak-Wawrzyniak):
//
//   1. each part selects an incident auxiliary edge (selection policy is the
//      caller's: heaviest BE out-edge for Theorem 1/3, weighted random draw
//      for Theorem 4) and designates one physical edge (u, v) realizing it;
//   2. the pseudo-forest F_i of selected edges is 3-colored by emulated
//      Cole-Vishkin (+ shift-down color reduction), with every inter-part
//      hop relayed through part trees and the designated edges;
//   3. edges of F_i are marked according to the color rules, producing
//      shallow subtrees T_i (Claim 15: always a forest);
//   4. per subtree, levels and even/odd weight sums are computed, the root
//      picks the heavier parity, and those edges are contracted: the child
//      part re-roots onto the parent part via the designated edge (path
//      flip, Lemma 6).
#pragma once

#include <vector>

#include "congest/metrics.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "partition/part_forest.h"

namespace cpt {

// Per part root: the selected F_i out-edge. Built by the caller.
struct Selection {
  std::vector<NodeId> target;          // target part root; kNoNode = none
  std::vector<std::uint64_t> weight;   // auxiliary edge weight (edge count)
  // Designated physical edge, if the selection process already produced one
  // (the Theorem-4 random draw does); otherwise kNoNode/kNoEdge and the
  // merge step runs the SEEK passes to find one.
  std::vector<NodeId> charge_node;
  std::vector<EdgeId> charge_edge;

  explicit Selection(NodeId n)
      : target(n, kNoNode),
        weight(n, 0),
        charge_node(n, kNoNode),
        charge_edge(n, kNoEdge) {}
};

struct MergeStats {
  NodeId merges = 0;
  std::uint32_t cv_iterations = 0;       // Cole-Vishkin iterations to <= 6 colors
  std::uint32_t marked_tree_height = 0;  // observed height of T_i ([10]: <= 10)
  std::uint64_t contracted_weight = 0;   // total weight of contracted edges
};

// Pooled per-node / per-root arrays of one merge step (formerly ~12 private
// O(n) allocations per run_merge_step call). Sized once to n, then reset by
// touched-index lists -- the live roots captured at step start, the
// charge/serving node lists, the sel/serve participant lists -- so the
// steady-state cost across the dozens of merge steps of a partition run is
// O(touched), never O(n), mirroring RecordTable's watermark reset. The
// clean-state invariant (every entry at its documented default outside a
// step) is restored by MergeCtx's destructor.
struct MergeNodeScratch {
  // Node-side.
  std::vector<std::uint32_t> charge_port;  // default kNoPort
  std::vector<std::vector<std::uint32_t>> serve_ports;         // empty
  std::vector<std::vector<std::uint32_t>> marked_serve_ports;  // empty
  std::vector<std::uint8_t> sel_mask;    // 0
  std::vector<std::uint8_t> serve_mask;  // 0
  // Root-side F_i / T_i state.
  std::vector<std::int64_t> color;            // kNoColor
  std::vector<std::uint8_t> out_marked;       // 0
  std::vector<std::int64_t> marked_children;  // 0
  std::vector<std::uint32_t> level;           // kNoLevel
  std::vector<std::int8_t> parity_bit;        // -1
  // mark_edges decision masks and run_t_phase accumulators.
  std::vector<std::uint8_t> mark_in_all;     // 0
  std::vector<std::uint8_t> mark_in_color2;  // 0
  std::vector<std::int64_t> acc_w0, acc_w1, acc_cnt;  // 0
  std::vector<std::uint8_t> reported;  // 0
  std::vector<std::uint8_t> ready;     // 0
  // Write-before-read per color-reduction wave (root entries only); needs
  // sizing but no reset.
  std::vector<std::int64_t> old_color;
  // Reset lists: roots live at step start (contractions only retire roots,
  // so this covers every root-indexed touch) and the ready rows of the
  // current t-phase wave.
  std::vector<NodeId> step_roots;
  std::vector<NodeId> ready_roots;
};

// Reusable buffers for run_merge_step. Passing one instance across the
// phases of a partition run makes the dozens of relay passes per phase
// allocation-free in steady state (the record tables are flat arenas whose
// reset bumps a watermark; see congest/record_table.h); with nullptr each
// merge step allocates privately. Purely a performance knob: contents
// carry no state between calls.
struct MergeScratch {
  MergeNodeScratch nodes;
  congest::BroadcastRecords bc_a, bc_b;
  congest::ConvergeRecords conv;
  congest::TreePorts tree_ports;
  congest::RecordTable at;                  // relay hop collection
  congest::RecordTable values_a, values_b;  // relay inputs
  congest::RecordTable out_a, out_b;        // relay outputs
  std::vector<std::uint8_t> all_mask;
  std::vector<NodeId> charge_nodes, serving_nodes;
  std::vector<std::uint32_t> hop_cursor;  // per-node relay-hop send slot
  // Participant lists (TreeView::members) rebuilt per pass: members of the
  // streaming parts of a broadcast, and of the sel_mask / serve_mask parts.
  std::vector<NodeId> bc_members, sel_members, serve_members;
  std::vector<NodeId> stream_roots;  // roots passing a relay pass's filter
};

// Executes one merging step, mutating `pf`. `neighbor_root` is the per-node,
// per-port map of neighbor part roots (refreshed by the preceding peeling
// or root-exchange pass). `pipelined` selects the pipelined converge /
// broadcast streams (strictly fewer rounds and messages, identical merge
// decisions); the unpipelined mode exists for differential testing.
MergeStats run_merge_step(congest::Simulator& sim, const Graph& g,
                          PartForest& pf,
                          const std::vector<std::vector<NodeId>>& neighbor_root,
                          Selection sel, congest::RoundLedger& ledger,
                          MergeScratch* scratch = nullptr,
                          bool pipelined = true);

}  // namespace cpt
