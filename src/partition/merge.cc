#include "partition/merge.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt {

using congest::BroadcastRecords;
using congest::Combine;
using congest::ConvergeRecords;
using congest::Exchange;
using congest::Inbound;
using congest::Msg;
using congest::Record;
using congest::RecordTable;
using congest::TreeView;

namespace {

constexpr std::uint32_t kTagSignal = 20;  // generic single-record exchange

constexpr std::int64_t kNoColor = -1;
constexpr std::uint32_t kNoLevel = static_cast<std::uint32_t>(-1);
constexpr std::uint32_t kNoPort = static_cast<std::uint32_t>(-1);
constexpr std::uint32_t kNilSlot = RecordTable::kNilSlot;

// All driver-side state for one merge step. Arrays indexed by node id hold
// root-local knowledge at root ids and node-local knowledge everywhere, as
// in the rest of the Stage I emulation. The arrays live in the pooled
// MergeNodeScratch (clean-state invariant: defaults outside a step); the
// destructor resets exactly the touched entries via the step's root /
// charge / serve lists, so repeated merge steps never pay O(n) re-init.
struct MergeCtx {
  congest::Simulator& sim;
  const Graph& g;
  PartForest& pf;
  const std::vector<std::vector<NodeId>>& neighbor_root;
  Selection& sel;
  congest::RoundLedger& ledger;
  bool pipelined;

  NodeId n;
  MergeNodeScratch& ns;
  // Node-side: the single designated port of an in-charge node (or kNoPort).
  std::vector<std::uint32_t>& charge_port;
  // Node-side: ports this node serves for neighboring parts' designated
  // edges, and which of those are marked (belong to T_i).
  std::vector<std::vector<std::uint32_t>>& serve_ports;
  std::vector<std::vector<std::uint32_t>>& marked_serve_ports;
  // Node-side participation masks for converge passes.
  std::vector<std::uint8_t>& sel_mask;    // part has a selection
  std::vector<std::uint8_t>& serve_mask;  // part serves >= 1 designated edge

  // Root-side F_i / T_i state.
  std::vector<std::int64_t>& color;
  std::vector<std::uint8_t>& out_marked;
  std::vector<std::int64_t>& marked_children;  // count of marked in-edges
  std::vector<std::uint32_t>& level;
  std::vector<std::int8_t>& parity_bit;  // -1 unknown, else 0/1

  // Pooled passes and tables (living in the cross-phase MergeScratch),
  // reset() per use so the dozens of relay passes in one merge step reuse
  // one contiguous record pool each instead of re-allocating per-node
  // vectors. Two broadcast pools because find_designated_edges keeps two
  // broadcasts' state alive at once; the sender lists let relay hops skip
  // silent nodes.
  BroadcastRecords& bc_pool;
  BroadcastRecords& bc_pool2;
  ConvergeRecords& conv_pool;
  congest::TreePorts& tree_ports;  // built once: forest fixed until contraction
  RecordTable& at_pool;
  std::vector<std::uint8_t>& all_mask;
  std::vector<NodeId>& charge_nodes;
  std::vector<NodeId>& serving_nodes;
  RecordTable& values_a;
  RecordTable& values_b;
  RecordTable& out_a;
  RecordTable& out_b;
  // Per-node relay-hop send slot. Invariant: kNilSlot outside a RelayHop
  // pass (every started sender drains its row), so only started senders
  // are touched per pass.
  std::vector<std::uint32_t>& hop_cursor;
  // Participant-list scratch (see stream_members / mask_members).
  std::vector<NodeId>& bc_members;
  std::vector<NodeId>& sel_members;
  std::vector<NodeId>& serve_members;
  std::vector<NodeId>& stream_roots;

  MergeCtx(congest::Simulator& sim_, const Graph& g_, PartForest& pf_,
           const std::vector<std::vector<NodeId>>& nr, Selection& sel_,
           congest::RoundLedger& ledger_, MergeScratch& scratch,
           bool pipelined_)
      : sim(sim_),
        g(g_),
        pf(pf_),
        neighbor_root(nr),
        sel(sel_),
        ledger(ledger_),
        pipelined(pipelined_),
        n(g_.num_nodes()),
        ns(scratch.nodes),
        charge_port(ns.charge_port),
        serve_ports(ns.serve_ports),
        marked_serve_ports(ns.marked_serve_ports),
        sel_mask(ns.sel_mask),
        serve_mask(ns.serve_mask),
        color(ns.color),
        out_marked(ns.out_marked),
        marked_children(ns.marked_children),
        level(ns.level),
        parity_bit(ns.parity_bit),
        bc_pool(scratch.bc_a),
        bc_pool2(scratch.bc_b),
        conv_pool(scratch.conv),
        tree_ports(scratch.tree_ports),
        at_pool(scratch.at),
        all_mask(scratch.all_mask),
        charge_nodes(scratch.charge_nodes),
        serving_nodes(scratch.serving_nodes),
        values_a(scratch.values_a),
        values_b(scratch.values_b),
        out_a(scratch.out_a),
        out_b(scratch.out_b),
        hop_cursor(scratch.hop_cursor),
        bc_members(scratch.bc_members),
        sel_members(scratch.sel_members),
        serve_members(scratch.serve_members),
        stream_roots(scratch.stream_roots) {
    if (all_mask.size() != n) all_mask.assign(n, 1);
    if (hop_cursor.size() != n) hop_cursor.assign(n, kNilSlot);
    // First use (or a graph of a different size): one O(n) sizing pass
    // establishes the clean-state defaults; every later step inherits them
    // from the previous step's destructor reset.
    if (ns.color.size() != n) {
      ns.charge_port.assign(n, kNoPort);
      ns.serve_ports.assign(n, {});
      ns.marked_serve_ports.assign(n, {});
      ns.sel_mask.assign(n, 0);
      ns.serve_mask.assign(n, 0);
      ns.color.assign(n, kNoColor);
      ns.out_marked.assign(n, 0);
      ns.marked_children.assign(n, 0);
      ns.level.assign(n, kNoLevel);
      ns.parity_bit.assign(n, -1);
      ns.mark_in_all.assign(n, 0);
      ns.mark_in_color2.assign(n, 0);
      ns.acc_w0.assign(n, 0);
      ns.acc_w1.assign(n, 0);
      ns.acc_cnt.assign(n, 0);
      ns.reported.assign(n, 0);
      ns.ready.assign(n, 0);
      ns.old_color.assign(n, kNoColor);
    }
    // Contractions only retire roots, so the roots live now cover every
    // root-indexed write of this step -- the destructor's reset list.
    ns.step_roots = pf.live_roots();
    ns.ready_roots.clear();
    tree_ports.build(sim.network(), pf.parent_edge, pf.children);
  }

  // Watermark-style reset (see MergeNodeScratch): restore the clean-state
  // defaults for exactly the entries this step touched.
  ~MergeCtx() {
    for (const NodeId r : ns.step_roots) {
      color[r] = kNoColor;
      out_marked[r] = 0;
      marked_children[r] = 0;
      level[r] = kNoLevel;
      parity_bit[r] = -1;
      ns.mark_in_all[r] = 0;
      ns.mark_in_color2[r] = 0;
      ns.acc_w0[r] = 0;
      ns.acc_w1[r] = 0;
      ns.acc_cnt[r] = 0;
      ns.reported[r] = 0;
      ns.ready[r] = 0;
    }
    for (const NodeId v : charge_nodes) charge_port[v] = kNoPort;
    for (const NodeId v : serving_nodes) {
      serve_ports[v].clear();  // keeps capacity
      marked_serve_ports[v].clear();
    }
    for (const NodeId v : sel_members) sel_mask[v] = 0;
    for (const NodeId v : serve_members) serve_mask[v] = 0;
  }

  RecordTable& claim_at_pool() {
    at_pool.reset(n);
    return at_pool;
  }

  const std::vector<NodeId>& roots() const { return pf.live_roots(); }

  bool has_sel(NodeId r) const { return sel.target[r] != kNoNode; }

  TreeView tree(const std::vector<std::uint8_t>* mask,
                const std::vector<NodeId>* members = nullptr) const {
    return TreeView{&pf.parent_edge, &pf.children, mask, &pf.live_roots(),
                    members};
  }

  // Participant list for a broadcast whose streams are the non-empty rows
  // of `values`: every node of every streaming part (broadcast messages
  // never leave the part tree). Rebuilds the shared scratch -- the
  // returned pointer is only read by the next reset()/begin(), so one
  // scratch serves every pass in the step.
  const std::vector<NodeId>* stream_members(const RecordTable& values) {
    bc_members.clear();
    for (const NodeId r : values.touched_rows()) {
      if (values[r].empty()) continue;
      const auto& mem = pf.members[r];
      bc_members.insert(bc_members.end(), mem.begin(), mem.end());
    }
    return &bc_members;
  }

  // Participant list matching a root mask: members of every part whose
  // root passes `pred`. O(participants); fills `out` and returns it.
  template <typename Pred>
  const std::vector<NodeId>* mask_members(std::vector<NodeId>& out,
                                          Pred pred) const {
    out.clear();
    for (const NodeId r : roots()) {
      if (!pred(r)) continue;
      const auto& mem = pf.members[r];
      out.insert(out.end(), mem.begin(), mem.end());
    }
    return &out;
  }

  void relay_down(const RecordTable& values, bool marked_only,
                  const char* passname, RecordTable& out);
  void relay_up(const RecordTable& values, bool marked_only,
                const std::vector<std::uint8_t>* senders, const char* passname,
                RecordTable& out);
};

// Streams every relay node's full record row across the designated edges it
// serves (or its own designated edge, going up), one record per round per
// edge. Replaces the one-Exchange-per-record hop loops: the same messages
// cross the same edges in the same rounds, but the host runs one simulator
// pass instead of max-stream-length passes.
class RelayHop : public congest::Program {
 public:
  enum class Dir { kDown, kUp };

  RelayHop(MergeCtx& ctx, Dir dir, bool marked_only, const RecordTable& source,
           RecordTable& sink)
      : ctx_(ctx),
        dir_(dir),
        marked_only_(marked_only),
        source_(source),
        sink_(sink) {}

  void begin(congest::Exec& ex) override {
    const auto& senders =
        dir_ == Dir::kDown ? ctx_.serving_nodes : ctx_.charge_nodes;
    for (const NodeId v : senders) {
      if (dir_ == Dir::kDown && serve_set(v).empty()) continue;
      ctx_.hop_cursor[v] = source_.head_slot(v);
      pump(ex, v);
    }
  }

  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const Inbound> inbox) override {
    for (const Inbound& in : inbox) {
      if (in.msg.tag != kTagSignal) continue;
      const Record rec{static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]};
      if (dir_ == Dir::kDown) {
        if (in.port == ctx_.charge_port[v]) sink_.push(v, rec, ex.shard());
      } else {
        const auto& ports = serve_set(v);
        if (std::find(ports.begin(), ports.end(), in.port) != ports.end()) {
          sink_.push(v, rec, ex.shard());
        }
      }
    }
    pump(ex, v);
  }

 private:
  const std::vector<std::uint32_t>& serve_set(NodeId v) const {
    return marked_only_ ? ctx_.marked_serve_ports[v] : ctx_.serve_ports[v];
  }

  void pump(congest::Exec& ex, NodeId v) {
    const std::uint32_t slot = ctx_.hop_cursor[v];
    if (slot == kNilSlot) return;
    const Record& rec = source_.at_slot(slot);
    const Msg msg = Msg::make(kTagSignal, static_cast<std::int64_t>(rec.key),
                              rec.value);
    if (dir_ == Dir::kDown) {
      for (const std::uint32_t p : serve_set(v)) ex.send(v, p, msg);
    } else {
      ex.send(v, ctx_.charge_port[v], msg);
    }
    const std::uint32_t next = source_.next_slot(slot);
    ctx_.hop_cursor[v] = next;
    if (next != kNilSlot) ex.wake_next_round(v);
  }

  MergeCtx& ctx_;
  Dir dir_;
  bool marked_only_;
  const RecordTable& source_;
  RecordTable& sink_;
};

// --- Composite relay passes ------------------------------------------------

// F_i-parent -> F_i-children: every part root with a value broadcasts it
// down its own tree; serving nodes forward their stream over the designated
// edges they serve (optionally only marked ones); the receiving in-charge
// nodes converge the records up their trees. Fills `out` (cleared here;
// must not alias `values`) with per-root received records (merged by key,
// summed).
void MergeCtx::relay_down(const RecordTable& values, bool marked_only,
                          const char* passname, RecordTable& out) {
  out.reset(n);
  bc_pool.reset(tree(nullptr, stream_members(values)), &tree_ports, pipelined);
  BroadcastRecords& bc = bc_pool;
  bool any = false;
  for (const NodeId r : values.touched_rows()) {
    if (!values[r].empty()) {
      bc.stream[r] = values[r];
      any = true;
    }
  }
  if (!any) return;
  auto rb = sim.run(bc);
  ledger.add_pass(std::string(passname) + "/bcast", rb.rounds, rb.messages);
  for (const NodeId r : values.touched_rows()) {
    if (!values[r].empty()) bc.received[r] = values[r];
  }
  // Serving nodes push the stream across designated edges, one record per
  // round per edge (a single multi-record hop pass).
  RecordTable& at_charge = claim_at_pool();
  RelayHop hop(*this, RelayHop::Dir::kDown, marked_only, bc.received,
               at_charge);
  auto re = sim.run(hop);
  ledger.add_pass(std::string(passname) + "/hop", re.rounds, re.messages);
  // Converge up the receiving (selection-holding) parts.
  conv_pool.reset(tree(&sel_mask, &sel_members), Combine::kSum, 0, &tree_ports,
                  pipelined);
  ConvergeRecords& conv = conv_pool;
  for (const NodeId v : at_charge.touched_rows()) {
    if (sel_mask[v] && !at_charge[v].empty()) conv.initial[v] = at_charge[v];
  }
  auto rc = sim.run(conv);
  ledger.add_pass(std::string(passname) + "/conv", rc.rounds, rc.messages);
  for (const NodeId r : roots()) {
    if (has_sel(r) && !conv.at_root(r).empty()) out[r] = conv.at_root(r);
  }
}

// F_i-children -> F_i-parent: sending parts broadcast their records down
// to their in-charge node, which pushes them over the designated edge;
// the parent part converges the arriving records up its tree, summing by
// key. `senders` (optional) restricts which selection-holding parts send.
// Fills `out` (cleared here; must not alias `values`).
void MergeCtx::relay_up(const RecordTable& values, bool marked_only,
                        const std::vector<std::uint8_t>* senders,
                        const char* passname, RecordTable& out) {
  out.reset(n);
  // Streaming parts: selection-holding rows of `values` passing the
  // sender/marked filters. The filter runs once; the collected roots feed
  // both the participant list and (after the reset) the streams, so the
  // two can never disagree.
  stream_roots.clear();
  bc_members.clear();
  for (const NodeId r : values.touched_rows()) {
    if (!has_sel(r) || values[r].empty()) continue;
    if (senders != nullptr && !(*senders)[r]) continue;
    if (marked_only && !out_marked[r]) continue;
    stream_roots.push_back(r);
    const auto& mem = pf.members[r];
    bc_members.insert(bc_members.end(), mem.begin(), mem.end());
  }
  bc_pool.reset(tree(nullptr, &bc_members), &tree_ports, pipelined);
  BroadcastRecords& bc = bc_pool;
  for (const NodeId r : stream_roots) bc.stream[r] = values[r];
  if (stream_roots.empty()) return;
  auto rb = sim.run(bc);
  ledger.add_pass(std::string(passname) + "/bcast", rb.rounds, rb.messages);
  for (const NodeId r : bc.stream.touched_rows()) {
    if (!bc.stream[r].empty()) bc.received[r] = bc.stream[r];
  }
  RecordTable& at_serve = claim_at_pool();
  RelayHop hop(*this, RelayHop::Dir::kUp, marked_only, bc.received, at_serve);
  auto re = sim.run(hop);
  ledger.add_pass(std::string(passname) + "/hop", re.rounds, re.messages);
  conv_pool.reset(tree(&serve_mask, &serve_members), Combine::kSum, 0,
                  &tree_ports, pipelined);
  ConvergeRecords& conv = conv_pool;
  for (const NodeId v : at_serve.touched_rows()) {
    if (serve_mask[v] && !at_serve[v].empty()) conv.initial[v] = at_serve[v];
  }
  auto rc = sim.run(conv);
  ledger.add_pass(std::string(passname) + "/conv", rc.rounds, rc.messages);
  for (const NodeId r : roots()) {
    if (!conv.at_root(r).empty()) out[r] = conv.at_root(r);
  }
}

// ---- Sub-step 1 (emulation): designated physical edges -------------------

void find_designated_edges(MergeCtx& ctx) {
  const NodeId n = ctx.n;
  // Dedup: if A and B selected each other's auxiliary edge, it becomes the
  // out-edge of the smaller root id (Section 4's pseudo-forest rule; cannot
  // trigger in the BE-oriented flow).
  for (const NodeId r : ctx.roots()) {
    if (!ctx.has_sel(r)) continue;
    const NodeId t = ctx.sel.target[r];
    if (t < r && ctx.sel.target[t] == r) ctx.sel.target[r] = kNoNode;
  }
  // sel_mask is clean (all zero) on entry; set the members of selection
  // parts only -- O(participants), and the destructor's reset list.
  ctx.mask_members(ctx.sel_members, [&](NodeId r) { return ctx.has_sel(r); });
  for (const NodeId v : ctx.sel_members) ctx.sel_mask[v] = 1;

  // SEEK passes for parts without a known physical edge.
  const auto seeks = [&](NodeId r) {
    return ctx.has_sel(r) && ctx.sel.charge_node[r] == kNoNode;
  };
  bool any_seek = false;
  for (const NodeId r : ctx.roots()) {
    if (seeks(r)) any_seek = true;
  }
  ctx.mask_members(ctx.bc_members, seeks);
  ctx.bc_pool.reset(ctx.tree(nullptr, &ctx.bc_members), &ctx.tree_ports,
                    ctx.pipelined);
  BroadcastRecords& bc = ctx.bc_pool;
  for (const NodeId r : ctx.roots()) {
    if (seeks(r)) {
      bc.stream[r] = {{0, static_cast<std::int64_t>(ctx.sel.target[r])}};
    }
  }
  if (any_seek) {
    auto rb = ctx.sim.run(bc);
    ctx.ledger.add_pass("stage1/seek/bcast", rb.rounds, rb.messages);
    for (const NodeId r : bc.stream.touched_rows()) {
      if (!bc.stream[r].empty()) bc.received[r] = bc.stream[r];
    }
    // Boundary nodes with an edge to the target nominate themselves (min id).
    ctx.conv_pool.reset(ctx.tree(&ctx.sel_mask, &ctx.sel_members),
                        Combine::kMin, 0, &ctx.tree_ports, ctx.pipelined);
    ConvergeRecords& conv = ctx.conv_pool;
    for (NodeId v = 0; v < n; ++v) {
      if (!ctx.sel_mask[v] || bc.received[v].empty()) continue;
      const NodeId target = static_cast<NodeId>(bc.received[v][0].value);
      for (std::uint32_t p = 0; p < ctx.g.degree(v); ++p) {
        if (ctx.neighbor_root[v][p] == target) {
          conv.initial[v] = {{0, static_cast<std::int64_t>(v)}};
          break;
        }
      }
    }
    auto rc = ctx.sim.run(conv);
    ctx.ledger.add_pass("stage1/seek/conv", rc.rounds, rc.messages);
    // Notify the chosen in-charge node down the tree. (Second pool:
    // bc.stream is still being read below. bc_members still holds the
    // seek parts' members -- the same parts stream here.)
    ctx.bc_pool2.reset(ctx.tree(nullptr, &ctx.bc_members), &ctx.tree_ports,
                       ctx.pipelined);
    BroadcastRecords& bc2 = ctx.bc_pool2;
    for (const NodeId r : ctx.roots()) {
      if (bc.stream[r].empty()) continue;
      const auto recs = conv.at_root(r);
      CPT_ASSERT(!recs.empty() && "selection target must be a real neighbor");
      ctx.sel.charge_node[r] = static_cast<NodeId>(recs[0].value);
      bc2.stream[r] = {{1, recs[0].value}};
    }
    auto rb2 = ctx.sim.run(bc2);
    ctx.ledger.add_pass("stage1/seek/notify", rb2.rounds, rb2.messages);
  }

  // In-charge nodes resolve their designated port (and edge id). A node
  // belongs to exactly one part, so each in-charge node appears for one
  // root only -- the collected list is duplicate-free; sorting restores
  // the ascending order the retired O(n) sweep produced.
  ctx.charge_nodes.clear();
  for (const NodeId r : ctx.roots()) {
    if (!ctx.has_sel(r)) continue;
    const NodeId u = ctx.sel.charge_node[r];
    CPT_ASSERT(u != kNoNode);
    if (ctx.sel.charge_edge[r] != kNoEdge) {
      ctx.charge_port[u] =
          ctx.sim.network().port_of_edge(u, ctx.sel.charge_edge[r]);
    } else {
      const NodeId target = ctx.sel.target[r];
      for (std::uint32_t p = 0; p < ctx.g.degree(u); ++p) {
        if (ctx.neighbor_root[u][p] == target) {
          ctx.charge_port[u] = p;
          ctx.sel.charge_edge[r] = ctx.sim.network().arc(u, p).edge;
          break;
        }
      }
      CPT_ASSERT(ctx.sel.charge_edge[r] != kNoEdge);
    }
    ctx.charge_nodes.push_back(u);
  }
  std::sort(ctx.charge_nodes.begin(), ctx.charge_nodes.end());

  // SERVE notifications: in-charge nodes tell the far endpoint (one round).
  Exchange serve(
      n,
      [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
        if (ctx.charge_port[v] != kNoPort) {
          out.push_back({ctx.charge_port[v], Msg::make(kTagSignal, 1)});
        }
      },
      [&](congest::Exec&, NodeId v, std::span<const Inbound> inbox) {
        for (const Inbound& in : inbox) {
          if (in.msg.tag == kTagSignal) ctx.serve_ports[v].push_back(in.port);
        }
      },
      &ctx.charge_nodes);
  auto rs = ctx.sim.run(serve);
  ctx.ledger.add_pass("stage1/seek/serve", rs.rounds, rs.messages);
  // Serving nodes are exactly the far endpoints of the designated edges; a
  // node serving several edges appears once (sort + unique restores the
  // ascending order of the retired O(n) sweep).
  ctx.serving_nodes.clear();
  for (const NodeId u : ctx.charge_nodes) {
    ctx.serving_nodes.push_back(
        ctx.sim.network().arc(u, ctx.charge_port[u]).to);
  }
  std::sort(ctx.serving_nodes.begin(), ctx.serving_nodes.end());
  ctx.serving_nodes.erase(
      std::unique(ctx.serving_nodes.begin(), ctx.serving_nodes.end()),
      ctx.serving_nodes.end());

  // Serve mask: parts with at least one serving node learn it via one
  // converge + one broadcast.
  ctx.conv_pool.reset(ctx.tree(&ctx.all_mask), Combine::kSum, 0,
                      &ctx.tree_ports, ctx.pipelined);
  ConvergeRecords& conv = ctx.conv_pool;
  for (const NodeId v : ctx.serving_nodes) {
    conv.initial[v] = {
        {0, static_cast<std::int64_t>(ctx.serve_ports[v].size())}};
  }
  auto rc = ctx.sim.run(conv);
  ctx.ledger.add_pass("stage1/seek/servemask-conv", rc.rounds, rc.messages);
  for (const NodeId r : ctx.roots()) {
    if (!conv.at_root(r).empty()) ctx.serve_mask[r] = 1;
  }
  ctx.mask_members(ctx.serve_members,
                   [&](NodeId r) { return ctx.serve_mask[r] != 0; });
  ctx.bc_pool.reset(ctx.tree(nullptr, &ctx.serve_members), &ctx.tree_ports,
                    ctx.pipelined);
  BroadcastRecords& bc3 = ctx.bc_pool;
  for (const NodeId r : ctx.roots()) {
    if (ctx.serve_mask[r]) bc3.stream[r] = {{0, 1}};
  }
  auto rb3 = ctx.sim.run(bc3);
  ctx.ledger.add_pass("stage1/seek/servemask-bcast", rb3.rounds, rb3.messages);
  for (const NodeId v : bc3.received.touched_rows()) {
    if (!bc3.received[v].empty()) ctx.serve_mask[v] = 1;
  }
}

// ---- Sub-step 2a: Cole-Vishkin 3-coloring of F_i -------------------------

std::uint32_t color_pseudo_forest(MergeCtx& ctx) {
  for (const NodeId r : ctx.roots()) ctx.color[r] = r;
  std::uint32_t iterations = 0;
  while (true) {
    std::int64_t max_color = 0;
    for (const NodeId r : ctx.roots()) {
      max_color = std::max(max_color, ctx.color[r]);
    }
    if (max_color <= 5) break;
    auto& values = ctx.values_a;
    values.reset(ctx.n);
    for (const NodeId r : ctx.roots()) {
      // Only parts that serve a designated edge have F_i children that need
      // their color.
      if (ctx.serve_mask[r]) values[r] = {{0, ctx.color[r]}};
    }
    auto& parent_color = ctx.out_a;
    ctx.relay_down(values, /*marked_only=*/false, "stage1/cv", parent_color);
    for (const NodeId r : ctx.roots()) {
      const std::int64_t c = ctx.color[r];
      if (!ctx.has_sel(r)) {
        ctx.color[r] = c & 1;  // F_i root keeps bit 0
        continue;
      }
      CPT_ASSERT(!parent_color[r].empty());
      const std::int64_t pc = parent_color[r][0].value;
      CPT_ASSERT(pc != c);
      int i = 0;
      while (((c >> i) & 1) == ((pc >> i) & 1)) ++i;
      ctx.color[r] = 2 * i + ((c >> i) & 1);
    }
    ++iterations;
    CPT_ASSERT(iterations < 64);
  }
  // Reduce 6 -> 3 colors: shift-down, then recolor one class at a time.
  // (old_color is pooled write-before-read scratch: only root entries
  // written this wave are read back.)
  auto& old_color = ctx.ns.old_color;
  for (std::int64_t target = 5; target >= 3; --target) {
    auto& values = ctx.values_a;
    values.reset(ctx.n);
    for (const NodeId r : ctx.roots()) {
      if (ctx.serve_mask[r]) values[r] = {{0, ctx.color[r]}};
    }
    auto& pre = ctx.out_a;
    ctx.relay_down(values, false, "stage1/cv-shift", pre);
    for (const NodeId r : ctx.roots()) old_color[r] = ctx.color[r];
    for (const NodeId r : ctx.roots()) {
      if (ctx.has_sel(r)) {
        CPT_ASSERT(!pre[r].empty());
        ctx.color[r] = pre[r][0].value;
      } else {
        ctx.color[r] = (ctx.color[r] + 1) % 3;
      }
    }
    auto& values2 = ctx.values_b;
    values2.reset(ctx.n);
    for (const NodeId r : ctx.roots()) {
      if (ctx.serve_mask[r]) values2[r] = {{0, ctx.color[r]}};
    }
    auto& post = ctx.out_b;
    ctx.relay_down(values2, false, "stage1/cv-recolor", post);
    for (const NodeId r : ctx.roots()) {
      if (ctx.color[r] != target) continue;
      const std::int64_t forbid1 =
          ctx.has_sel(r) && !post[r].empty() ? post[r][0].value : -1;
      const std::int64_t forbid2 = old_color[r];  // children's current color
      for (std::int64_t c = 0; c < 3; ++c) {
        if (c != forbid1 && c != forbid2) {
          ctx.color[r] = c;
          break;
        }
      }
    }
  }
  return iterations;
}

// ---- Sub-step 2b: marking -------------------------------------------------

void mark_edges(MergeCtx& ctx) {
  const NodeId n = ctx.n;
  // Each selection-holding part learns its target's color.
  auto& values = ctx.values_a;
  values.reset(n);
  for (const NodeId r : ctx.roots()) {
    if (ctx.serve_mask[r]) values[r] = {{0, ctx.color[r]}};
  }
  auto& target_color = ctx.out_a;
  ctx.relay_down(values, false, "stage1/mark-tcolor", target_color);

  // Each part tells its F_i parent (color, weight) of its selected edge;
  // the parent receives per-color weight sums.
  auto& up_values = ctx.values_b;
  up_values.reset(n);
  for (const NodeId r : ctx.roots()) {
    if (ctx.has_sel(r)) {
      up_values[r] = {{static_cast<std::uint64_t>(ctx.color[r]),
                       static_cast<std::int64_t>(ctx.sel.weight[r])}};
    }
  }
  auto& in_by_color = ctx.out_b;
  ctx.relay_up(up_values, false, nullptr, "stage1/mark-insum", in_by_color);

  // Marking decisions (colors 0/1/2 stand for the paper's 1/2/3). Pooled,
  // clean on entry, reset by the destructor's step_roots list.
  auto& mark_in_all = ctx.ns.mark_in_all;
  auto& mark_in_color2 = ctx.ns.mark_in_color2;
  for (const NodeId r : ctx.roots()) {
    std::int64_t sum_all = 0;
    std::int64_t sum_c2 = 0;
    for (const Record& rec : in_by_color[r]) {
      sum_all += rec.value;
      if (rec.key == 2) sum_c2 += rec.value;
    }
    if (ctx.color[r] == 0) {
      if (ctx.has_sel(r) &&
          static_cast<std::int64_t>(ctx.sel.weight[r]) >= sum_all) {
        ctx.out_marked[r] = 1;
      } else {
        mark_in_all[r] = 1;
      }
    } else if (ctx.color[r] == 1) {
      const bool target_is_2 =
          ctx.has_sel(r) && !target_color[r].empty() &&
          target_color[r][0].value == 2;
      if (target_is_2 &&
          static_cast<std::int64_t>(ctx.sel.weight[r]) >= sum_c2) {
        ctx.out_marked[r] = 1;
      } else {
        mark_in_color2[r] = 1;
      }
    }
  }

  // Parent-side marks flow down to children: (1, -1) marks all incoming,
  // (2, c) marks incoming edges from children colored c. (target_color and
  // in_by_color are dead by now, so their tables can be recycled.)
  auto& mark_values = ctx.values_a;
  mark_values.reset(n);
  for (const NodeId r : ctx.roots()) {
    if (mark_in_all[r]) mark_values[r] = {{1, -1}};
    if (mark_in_color2[r]) mark_values[r] = {{2, 2}};
  }
  auto& parent_marks = ctx.out_a;
  ctx.relay_down(mark_values, false, "stage1/mark-down", parent_marks);
  for (const NodeId r : ctx.roots()) {
    if (!ctx.has_sel(r)) continue;
    for (const Record& rec : parent_marks[r]) {
      if (rec.key == 1 || (rec.key == 2 && ctx.color[r] == rec.value)) {
        ctx.out_marked[r] = 1;
      }
    }
  }

  // In-charge nodes of marked out-edges notify the serving endpoint, so the
  // T_i relays know which designated edges are marked (one round). The part
  // root tells its in-charge node via one broadcast first.
  ctx.mask_members(ctx.bc_members,
                   [&](NodeId r) { return ctx.out_marked[r] != 0; });
  ctx.bc_pool.reset(ctx.tree(nullptr, &ctx.bc_members), &ctx.tree_ports,
                    ctx.pipelined);
  BroadcastRecords& bc = ctx.bc_pool;
  for (const NodeId r : ctx.roots()) {
    if (ctx.out_marked[r]) bc.stream[r] = {{0, 1}};
  }
  auto rb = ctx.sim.run(bc);
  ctx.ledger.add_pass("stage1/mark-notify/bcast", rb.rounds, rb.messages);
  for (const NodeId r : bc.stream.touched_rows()) {
    if (!bc.stream[r].empty()) bc.received[r] = bc.stream[r];
  }
  Exchange ex(
      n,
      [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
        if (ctx.charge_port[v] != kNoPort && !bc.received[v].empty() &&
            ctx.out_marked[ctx.pf.root[v]]) {
          out.push_back({ctx.charge_port[v], Msg::make(kTagSignal, 1)});
        }
      },
      [&](congest::Exec&, NodeId v, std::span<const Inbound> inbox) {
        for (const Inbound& in : inbox) {
          if (in.msg.tag == kTagSignal) {
            ctx.marked_serve_ports[v].push_back(in.port);
          }
        }
      },
      &ctx.charge_nodes);
  auto re = ctx.sim.run(ex);
  ctx.ledger.add_pass("stage1/mark-notify/hop", re.rounds, re.messages);

  // Count marked children per part (relay over marked edges only).
  auto& ones = ctx.values_b;
  ones.reset(n);
  for (const NodeId r : ctx.roots()) {
    if (ctx.out_marked[r]) ones[r] = {{0, 1}};
  }
  auto& counts = ctx.out_b;
  ctx.relay_up(ones, /*marked_only=*/true, nullptr, "stage1/mark-count",
               counts);
  for (const NodeId r : ctx.roots()) {
    for (const Record& rec : counts[r]) ctx.marked_children[r] += rec.value;
  }
}

// ---- Sub-steps 3+4: levels, parity sums, decision, contraction -----------

struct TPhaseResult {
  std::uint32_t height = 0;
  std::uint64_t contracted_weight = 0;
  NodeId merges = 0;
  std::uint32_t max_flip = 0;
};

TPhaseResult run_t_phase(MergeCtx& ctx) {
  const NodeId n = ctx.n;
  TPhaseResult out;

  // T roots: marked incoming edges but no marked out-edge.
  bool any_in_t = false;
  for (const NodeId r : ctx.roots()) {
    if (ctx.marked_children[r] > 0 && !ctx.out_marked[r]) {
      ctx.level[r] = 0;
      any_in_t = true;
    }
    if (ctx.out_marked[r]) any_in_t = true;
  }
  if (!any_in_t) return out;

  // Levels: iterate relay_down over marked edges until fixpoint.
  for (std::uint32_t guard = 0;; ++guard) {
    CPT_ASSERT(guard < 200 && "marked graph must be a forest (Claim 15)");
    auto& values = ctx.values_a;
    values.reset(n);
    for (const NodeId r : ctx.roots()) {
      if (ctx.serve_mask[r] && ctx.level[r] != kNoLevel) {
        values[r] = {{0, ctx.level[r]}};
      }
    }
    auto& down = ctx.out_a;
    ctx.relay_down(values, /*marked_only=*/true, "stage1/t-level", down);
    bool changed = false;
    for (const NodeId r : ctx.roots()) {
      if (!ctx.out_marked[r] || ctx.level[r] != kNoLevel) continue;
      if (!down[r].empty()) {
        ctx.level[r] = static_cast<std::uint32_t>(down[r][0].value) + 1;
        out.height = std::max(out.height, ctx.level[r]);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Parity-weight convergecast up T: a part reports (w0, w1) of its subtree
  // once all its marked children reported. Keys: 0 = even-edge weight,
  // 1 = odd-edge weight, 2 = reporter count. All accumulators are pooled
  // (clean on entry, reset by the destructor's step_roots list); the
  // per-wave `ready` mask clears via the ready_roots touch list instead of
  // an O(n) assign per wave.
  auto& acc_w0 = ctx.ns.acc_w0;
  auto& acc_w1 = ctx.ns.acc_w1;
  auto& acc_cnt = ctx.ns.acc_cnt;
  auto& reported = ctx.ns.reported;
  auto& ready = ctx.ns.ready;
  for (std::uint32_t guard = 0;; ++guard) {
    CPT_ASSERT(guard < 200);
    for (const NodeId r : ctx.ns.ready_roots) ready[r] = 0;
    ctx.ns.ready_roots.clear();
    auto& values = ctx.values_a;
    values.reset(n);
    bool any_ready = false;
    for (const NodeId r : ctx.roots()) {
      if (reported[r] || !ctx.out_marked[r]) continue;
      if (ctx.level[r] == kNoLevel) continue;
      if (acc_cnt[r] != ctx.marked_children[r]) continue;
      // Subtree sums plus this part's own connecting (marked out-)edge:
      // the edge's parity is this part's level parity (even level => even
      // edge, contributing to w0).
      std::int64_t w0 = acc_w0[r];
      std::int64_t w1 = acc_w1[r];
      if (ctx.level[r] % 2 == 0) {
        w0 += static_cast<std::int64_t>(ctx.sel.weight[r]);
      } else {
        w1 += static_cast<std::int64_t>(ctx.sel.weight[r]);
      }
      values[r] = {{0, w0}, {1, w1}, {2, 1}};
      ready[r] = 1;
      ctx.ns.ready_roots.push_back(r);
      reported[r] = 1;
      any_ready = true;
    }
    if (!any_ready) break;
    auto& up = ctx.out_a;
    ctx.relay_up(values, /*marked_only=*/true, &ready, "stage1/t-wsum", up);
    for (const NodeId r : ctx.roots()) {
      for (const Record& rec : up[r]) {
        if (rec.key == 0) acc_w0[r] += rec.value;
        if (rec.key == 1) acc_w1[r] += rec.value;
        if (rec.key == 2) acc_cnt[r] += rec.value;
      }
    }
  }

  // T roots decide the parity to contract.
  for (const NodeId r : ctx.roots()) {
    if (ctx.level[r] == 0 && acc_cnt[r] == ctx.marked_children[r]) {
      ctx.parity_bit[r] = acc_w0[r] >= acc_w1[r] ? 0 : 1;
    }
  }
  // Decision flows down T.
  for (std::uint32_t guard = 0;; ++guard) {
    CPT_ASSERT(guard < 200);
    auto& values = ctx.values_a;
    values.reset(n);
    for (const NodeId r : ctx.roots()) {
      if (ctx.serve_mask[r] && ctx.parity_bit[r] >= 0) {
        values[r] = {{0, ctx.parity_bit[r]}};
      }
    }
    auto& down = ctx.out_a;
    ctx.relay_down(values, /*marked_only=*/true, "stage1/t-bit", down);
    bool changed = false;
    for (const NodeId r : ctx.roots()) {
      if (!ctx.out_marked[r] || ctx.parity_bit[r] >= 0) continue;
      if (!down[r].empty()) {
        ctx.parity_bit[r] = static_cast<std::int8_t>(down[r][0].value);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Contract: a part at level l with a marked out-edge contracts it iff
  // l % 2 == bit (bit 0 = even edges, from even levels up to odd ones).
  std::vector<NodeId> merging;
  for (const NodeId r : ctx.roots()) {
    if (!ctx.out_marked[r]) continue;
    if (ctx.level[r] == kNoLevel || ctx.parity_bit[r] < 0) continue;
    if (ctx.level[r] % 2 == static_cast<std::uint32_t>(ctx.parity_bit[r])) {
      merging.push_back(r);
    }
  }
  for (const NodeId r : merging) {
    const NodeId u = ctx.sel.charge_node[r];
    const EdgeId e = ctx.sel.charge_edge[r];
    const NodeId v = ctx.g.other_endpoint(e, u);
    CPT_ASSERT(ctx.pf.root[u] == r);
    CPT_ASSERT(ctx.pf.root[v] != r);
    const std::uint32_t flip = ctx.pf.merge_into(ctx.g, u, e, v);
    out.max_flip = std::max(out.max_flip, flip);
    out.contracted_weight += ctx.sel.weight[r];
    ++out.merges;
  }
  if (!merging.empty()) {
    // New-root announcements and the path flip travel the old part trees.
    ctx.ledger.charge("stage1/contract", 2ULL * out.max_flip + 2);
    ctx.pf.recompute_depths(ctx.g);
  }
  return out;
}

}  // namespace

MergeStats run_merge_step(congest::Simulator& sim, const Graph& g,
                          PartForest& pf,
                          const std::vector<std::vector<NodeId>>& neighbor_root,
                          Selection sel, congest::RoundLedger& ledger,
                          MergeScratch* scratch, bool pipelined) {
  MergeStats stats;
  bool any_selection = false;
  for (const NodeId r : pf.live_roots()) {
    if (sel.target[r] != kNoNode) {
      any_selection = true;
      break;
    }
  }
  if (!any_selection) return stats;

  MergeScratch local_scratch;
  MergeCtx ctx(sim, g, pf, neighbor_root, sel, ledger,
               scratch != nullptr ? *scratch : local_scratch, pipelined);
  find_designated_edges(ctx);
  stats.cv_iterations = color_pseudo_forest(ctx);
  mark_edges(ctx);
  const TPhaseResult t = run_t_phase(ctx);
  stats.merges = t.merges;
  stats.marked_tree_height = t.height;
  stats.contracted_weight = t.contracted_weight;
  return stats;
}

}  // namespace cpt
