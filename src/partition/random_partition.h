// The randomized partitioning algorithm for minor-free graphs (Theorem 4):
// skips the arboricity-verification peeling entirely and replaces the
// heaviest-out-edge selection with a weighted random edge draw, repeated
// s = Theta(log 1/delta) times per phase (Lemma 13), keeping the heaviest
// drawn edge. Round complexity O(poly(1/eps)(log(1/delta) + log* n)),
// independent of log n.
#pragma once

#include <vector>

#include "congest/metrics.h"
#include "congest/simulator.h"
#include "partition/part_forest.h"
#include "partition/partition.h"
#include "util/rng.h"

namespace cpt {

struct RandomPartitionOptions {
  double epsilon = 0.1;   // edge-cut parameter
  double delta = 0.1;     // failure probability
  std::uint32_t alpha = 3;  // arboricity bound of the promised class
  std::uint32_t phase_override = 0;  // 0 = theory value (Claim 14)
  std::uint32_t trials_override = 0;  // 0 = theory value (Lemma 13)
  bool adaptive = false;  // stop phases early when cut target reached
  std::uint64_t seed = 1;
  // Optional pooled scratch (only the merge buffers are used: Theorem 4
  // skips the peeling). nullptr = per-run locals; identical results.
  Stage1Scratch* scratch = nullptr;
};

struct RandomPartitionResult {
  PartForest forest;
  std::uint32_t phases_emulated = 0;
  std::uint32_t phases_total = 0;
  std::uint32_t trials_per_phase = 0;
  std::vector<PhaseStats> phase_stats;
};

// Phases needed so (1 - 1/(64*alpha))^t <= eps/2 (Claim 14).
std::uint32_t random_partition_theory_phase_count(double epsilon,
                                                  std::uint32_t alpha);

RandomPartitionResult run_random_partition(congest::Simulator& sim,
                                           const Graph& g,
                                           const RandomPartitionOptions& opt,
                                           congest::RoundLedger& ledger);

}  // namespace cpt
