// Baseline planarity tester (Section 1.1 remark): the Elkin-Neiman-style
// random-shift partition followed by the same Stage II verification. Round
// complexity O(log^2(n) * poly(1/eps)) vs. our O(log(n) * poly(1/eps));
// also the partition guarantee is only with high probability, so the cut
// (and hence detection) can fail where Stage I's is deterministic.
#pragma once

#include "core/tester.h"

namespace cpt {

struct EnTesterOptions {
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  Stage2Options stage2;
};

TesterResult test_planarity_en(const Graph& g, const EnTesterOptions& opt);

}  // namespace cpt
