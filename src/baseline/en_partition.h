// Baseline partition: random-shift clustering in the style of
// Miller-Peng-Xu / Elkin-Neiman -- the alternative the paper mentions in
// Section 1.1 ("the algorithm of Elkin and Neiman can be adapted to obtain
// ... a partition of the nodes into parts of diameter O(log(n)/eps) such
// that the number of edges between parts is at most eps*m" with high
// probability). Every node draws an exponential shift delta_v ~ Exp(beta);
// node u joins the cluster of the center maximizing delta_c - d(c, u),
// computed by a genuinely message-passing staggered BFS. Shifts are
// quantized to integers (ids break ties), which preserves the guarantees up
// to constants; the bench measures the actual cut.
#pragma once

#include "congest/metrics.h"
#include "congest/simulator.h"
#include "partition/part_forest.h"

namespace cpt {

struct EnPartitionOptions {
  double epsilon = 0.1;   // target cut fraction; beta = epsilon * beta_scale
  double beta_scale = 0.5;
  std::uint64_t seed = 1;
};

struct EnPartitionResult {
  PartForest forest;
  std::uint32_t max_shift = 0;  // O(log n / eps) whp; drives the round count
};

EnPartitionResult run_en_partition(congest::Simulator& sim, const Graph& g,
                                   const EnPartitionOptions& opt,
                                   congest::RoundLedger& ledger);

}  // namespace cpt
