#include "baseline/en_partition.h"

#include <algorithm>
#include <cmath>

#include "congest/primitives.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpt {

using congest::Exchange;
using congest::Inbound;
using congest::Msg;

namespace {

constexpr std::uint32_t kTagWave = 60;
constexpr std::uint32_t kTagChild = 61;

// Staggered BFS: the wave of center c starts at round (max_shift -
// shift[c]) carrying value shift[c]; a claimed node relays value-1 the next
// round. Higher values arrive strictly earlier, so first arrival (ties by
// larger center id) is the argmax of shift[c] - d(c, u).
class ShiftedBfs : public congest::Program {
 public:
  ShiftedBfs(const std::vector<std::uint32_t>& shift, std::uint32_t max_shift)
      : shift_(&shift), max_shift_(max_shift) {
    const std::size_t n = shift.size();
    center.assign(n, kNoNode);
    value_.assign(n, -1);
    parent_edge.assign(n, kNoEdge);
    children.assign(n, {});
  }

  void begin(congest::Exec& ex) override {
    for (NodeId v = 0; v < center.size(); ++v) ex.wake_next_round(v);
  }

  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const Inbound> inbox) override {
    // Adopt the best arrival of this round, if still unclaimed.
    NodeId best_center = kNoNode;
    std::int64_t best_value = -1;
    std::uint32_t best_port = 0;
    for (const Inbound& in : inbox) {
      if (in.msg.tag == kTagChild) {
        children[v].push_back(ex.network().arc(v, in.port).edge);
        continue;
      }
      if (in.msg.tag != kTagWave) continue;
      const NodeId c = static_cast<NodeId>(in.msg.w[0]);
      const std::int64_t val = in.msg.w[1];
      if (center[v] == kNoNode &&
          (best_center == kNoNode || c > best_center)) {
        best_center = c;
        best_value = val;
        best_port = in.port;
      }
    }
    // Own candidacy activates at round (max_shift - shift[v]) + 1; an
    // arrival in the same round has the same value, ties broken by id.
    const std::uint64_t my_round =
        static_cast<std::uint64_t>(max_shift_ - (*shift_)[v]) + 1;
    if (center[v] == kNoNode && ex.current_round() >= my_round) {
      if (best_center == kNoNode || v > best_center) {
        best_center = v;
        best_value = (*shift_)[v];
        best_port = static_cast<std::uint32_t>(-1);
      }
    }
    if (center[v] == kNoNode && best_center != kNoNode) {
      // Claim and relay in the same round, so a wave carrying value w
      // always arrives exactly at round (max_shift - w + 1): higher values
      // strictly earlier, which makes first-arrival the argmax.
      center[v] = best_center;
      value_[v] = best_value;
      for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
        if (p == best_port) continue;
        if (value_[v] > 0) {
          ex.send(v, p, Msg::make(kTagWave,
                                   static_cast<std::int64_t>(center[v]),
                                   value_[v] - 1));
        }
      }
      if (best_port != static_cast<std::uint32_t>(-1)) {
        parent_edge[v] = ex.network().arc(v, best_port).edge;
        ex.send(v, best_port, Msg::make(kTagChild));
      }
      return;
    }
    // Unclaimed nodes keep waiting for their activation round.
    if (center[v] == kNoNode) ex.wake_next_round(v);
  }

  std::vector<NodeId> center;
  std::vector<EdgeId> parent_edge;
  std::vector<std::vector<EdgeId>> children;

 private:
  const std::vector<std::uint32_t>* shift_;
  std::uint32_t max_shift_;
  std::vector<std::int64_t> value_;
};

}  // namespace

EnPartitionResult run_en_partition(congest::Simulator& sim, const Graph& g,
                                   const EnPartitionOptions& opt,
                                   congest::RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  CPT_EXPECTS(opt.epsilon > 0 && opt.epsilon < 1);
  const double beta = opt.epsilon * opt.beta_scale;
  // Truncate shifts at 4 ln(n) / beta (exceeded with prob 1/n^3 per node).
  const std::uint32_t cap = static_cast<std::uint32_t>(
      std::ceil(4.0 * std::log(std::max<double>(n, 2)) / beta));

  Rng rng(opt.seed ^ 0xe1c0ffeeULL);
  std::vector<std::uint32_t> shift(n, 0);
  std::uint32_t max_shift = 0;
  for (NodeId v = 0; v < n; ++v) {
    shift[v] = std::min<std::uint32_t>(
        cap, static_cast<std::uint32_t>(std::floor(rng.next_exponential(beta))));
    max_shift = std::max(max_shift, shift[v]);
  }

  ShiftedBfs bfs(shift, max_shift);
  const auto r = sim.run(bfs);
  ledger.add_pass("en/shifted-bfs", r.rounds, r.messages);

  EnPartitionResult result;
  result.max_shift = max_shift;
  PartForest& pf = result.forest;
  pf.root.resize(n);
  pf.parent_edge = bfs.parent_edge;
  pf.children = bfs.children;
  pf.members.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    CPT_ASSERT(bfs.center[v] != kNoNode);
    pf.root[v] = bfs.center[v];
    pf.members[bfs.center[v]].push_back(v);
  }
  pf.recompute_depths(g);
  return result;
}

}  // namespace cpt
