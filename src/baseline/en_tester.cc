#include "baseline/en_tester.h"

#include "baseline/en_partition.h"
#include "congest/network.h"
#include "congest/simulator.h"

namespace cpt {

TesterResult test_planarity_en(const Graph& g, const EnTesterOptions& opt) {
  TesterResult result;
  congest::Network net(g);
  congest::Simulator sim(net);

  EnPartitionOptions ep;
  // Aim for a cut below eps*m/2, matching what Stage II assumes.
  ep.epsilon = opt.epsilon;
  ep.beta_scale = 0.5;
  ep.seed = opt.seed;
  EnPartitionResult part = run_en_partition(sim, g, ep, result.ledger);
  result.partition = measure_partition(g, part.forest);

  Stage2Options s2 = opt.stage2;
  s2.epsilon = opt.epsilon;
  s2.seed = opt.seed;
  const Stage2Result stage2 =
      run_stage2(sim, g, part.forest, s2, result.ledger);
  result.verdict = stage2.verdict;
  result.rejecting_nodes = stage2.rejecting_nodes;
  result.reason = stage2.reason;
  result.stage2 = stage2.stats;
  return result;
}

}  // namespace cpt
