// Minimal JSON reader/writer for the scenario engine (manifests in --
// including ones arriving over cpt_serve's socket -- aggregates out). No
// third-party dependency, mirroring bench/bench_json's approach on the
// write side. The reader is a strict recursive-descent parser for the
// JSON subset manifests need: objects (insertion order preserved --
// sweep-axis order is load-bearing, see manifest.h), arrays, strings,
// numbers, booleans and null. String escapes cover the full JSON set
// (\" \\ \/ \n \t \r \b \f \uXXXX): \u escapes decode to UTF-8 for every
// code point, with surrogate pairs combined and lone/mismatched
// surrogates rejected as line-numbered parse errors. Raw non-ASCII bytes
// pass through unchanged (the writer emits UTF-8 strings verbatim, so
// parse(render(s)) == s). Integers that fit std::int64_t stay exact;
// everything else is a double.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cpt::scenario {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  // True for numbers written without '.', 'e' or overflow (exact int64).
  bool is_integer() const { return kind_ == Kind::kNumber && is_int_; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int64() const { return int_; }
  double as_double() const { return is_int_ ? static_cast<double>(int_) : dbl_; }
  const std::string& as_string() const { return str_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  // Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  // Parses exactly one JSON document (trailing garbage is an error).
  // Returns false and fills *error (with a line number) on failure.
  static bool parse(std::string_view text, JsonValue* out, std::string* error);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// ---- Writing helpers (shared by aggregate.cc and the corpus index) -------

// Appends s as a quoted, escaped JSON string.
void json_append_escaped(std::string& out, std::string_view s);

// Round-trippable double rendering (%.17g); integral doubles still carry
// their fractional marker only when needed -- callers format true integers
// through json_render_int for stable output.
std::string json_render_double(double v);
std::string json_render_int(std::int64_t v);
std::string json_render_uint(std::uint64_t v);

// Reads a whole file; returns false on I/O failure.
bool read_text_file(const std::string& path, std::string* out);
// Atomic whole-file write (tmp + fsync + rename): on failure or crash the
// destination keeps its previous content (or stays absent) -- it can
// never hold a truncated document that looks complete.
bool write_text_file(const std::string& path, std::string_view body);

}  // namespace cpt::scenario
