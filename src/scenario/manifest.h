// Manifest-driven batch sweeps: a small JSON document declares a matrix of
// {scenario/family, params, perturbation, epsilon, tester, sim_threads,
// instances, trials}; expansion produces a flat, deterministically ordered
// job list with per-instance derived seeds (see registry.h for the seed
// contract). The same manifest always expands to the identical job list --
// pinned by scenario_test.cc's golden-expansion tests.
//
// Manifest shape:
//
//   {
//     "name": "ci_smoke",
//     "base_seed": 1,
//     "defaults": {"trials": 3, "epsilon": 0.1, "tester": "planarity"},
//     "cells": [
//       {"scenario": "grid", "params": {"rows": [16, 24], "cols": 16}},
//       {"scenario": "apollonian", "params": {"n": 256},
//        "perturb": {"kind": "plus_random_edges", "extra": [0, 120]},
//        "epsilon": [0.1, 0.25], "tester": ["planarity", "cycle_free"]}
//     ]
//   }
//
// Any scalar of params / perturb / epsilon / tester may instead be an
// array: the cell expands to the cross product. Axis order is declaration
// order (params axes outermost, then perturb axes, then epsilon, then
// tester), with the instance index and trial index innermost -- changing
// only an axis value list never reorders unrelated jobs. Per-cell keys
// (and "defaults" fallbacks): epsilon, tester, instances, trials,
// sim_threads, adaptive, randomized, pipelined, delta, alpha.
//
// Validation is strict: unknown top-level / defaults / cell keys, and
// params or perturb keys the named family/preset/perturbation does not
// accept (see registry param_keys), are parse errors -- a misspelled knob
// fails loudly instead of silently sweeping the default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/registry.h"

namespace cpt::scenario {

// Workload kinds the batch engine can dispatch: the three property testers
// plus the two bare Stage I partition drivers (Theorem 3 deterministic /
// Theorem 4 randomized), which the migrated E4/E6 benches sweep directly.
enum class TesterKind {
  kPlanarity,
  kCycleFree,
  kBipartite,
  kStage1Partition,
  kRandomPartition,
};
const char* tester_name(TesterKind k);
bool parse_tester(std::string_view name, TesterKind* out);

// One sweep axis: a param key plus >= 1 values.
struct SweepAxis {
  std::string key;
  bool for_perturb = false;  // axis over perturb params instead of params
  std::vector<ParamValue> values;
};

struct ManifestCell {
  std::string scenario;  // family or preset name
  ScenarioParams fixed_params;
  std::string perturb;  // "" = none
  ScenarioParams fixed_perturb_params;
  std::vector<SweepAxis> axes;        // declaration order
  std::vector<double> epsilons;       // >= 1 entry
  std::vector<TesterKind> testers;    // >= 1 entry
  std::uint32_t instances = 1;        // distinct graphs per config
  std::uint32_t trials = 1;           // tester seeds per graph
  unsigned sim_threads = 1;           // per-simulation workers
  bool adaptive = false;              // Stage I adaptive phase schedule
  bool randomized = false;            // Theorem 4 partition (minor-free testers)
  bool pipelined = true;              // Stage I pipelined streams (PR 2)
  double delta = 0.1;
  std::uint32_t alpha = 3;
  // Cumulative simulated-round budget per job (0 = unlimited): a job
  // exceeding it is recorded timed_out instead of wedging its worker.
  std::uint64_t max_rounds = 0;
};

struct Manifest {
  std::string name;
  std::uint64_t base_seed = 1;
  std::vector<ManifestCell> cells;
};

// One expanded simulation.
struct Job {
  std::uint32_t job_index = 0;   // position in the expanded list
  std::uint32_t cell_index = 0;  // originating manifest cell
  ScenarioInstance instance;
  std::uint32_t instance_index = 0;  // within the cell configuration
  std::uint32_t trial = 0;
  TesterKind tester = TesterKind::kPlanarity;
  double epsilon = 0.1;
  bool adaptive = false;
  bool randomized = false;
  bool pipelined = true;
  double delta = 0.1;
  std::uint32_t alpha = 3;
  unsigned sim_threads = 1;
  std::uint64_t max_rounds = 0;  // 0 = unlimited (see ManifestCell)
  std::uint64_t tester_seed = 0;

  // Aggregation key: instance label (seed-free) + tester + epsilon (+
  // adaptive/randomized/unpipelined/delta/maxr markers). Jobs differing
  // only in instance/trial index share a key and aggregate into one cell.
  std::string cell_key() const;
};

// Parses a manifest document; returns false and fills *error on malformed
// JSON, unknown scenario/perturbation/tester names, or mistyped fields.
bool parse_manifest(std::string_view json_text, Manifest* out,
                    std::string* error);
bool load_manifest_file(const std::string& path, Manifest* out,
                        std::string* error);

// Deterministic expansion (see the axis-order contract above).
std::vector<Job> expand_manifest(const Manifest& m);

// Per-trial tester seed: splitmix64 chain over the instance seed and the
// trial index (domain-separated from instance seeds).
std::uint64_t derive_tester_seed(std::uint64_t instance_seed,
                                 std::uint32_t trial);

}  // namespace cpt::scenario
