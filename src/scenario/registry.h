// Declarative registry of named, parameterized graph scenarios.
//
// Three layers:
//   * families  -- every generator in graph/generators.h plus "file"
//                  (edge-list via graph/io.h), keyed by name, taking typed
//                  key=value params;
//   * perturbations -- eps-far wrappers applied to a generated base graph:
//                  planar_plus_random_edges, K5/K3,3 blob injection,
//                  disjoint-copy scaling;
//   * presets   -- named scenarios composing a family + perturbation with
//                  default params (the examples' graph setups live here, so
//                  examples and batch sweeps share one source of truth).
//
// Reproducibility contract: a ScenarioInstance is fully determined by
// (resolved family, family params, base_seed, instance index). The
// instance seed is a documented splitmix64 chain over those four inputs
// (derive_instance_seed); perturbation params are deliberately excluded,
// so sweeping a perturbation axis varies the noise on one fixed base
// graph (controlled comparisons). Family generation and the perturbation
// draw from one Rng seeded with the instance seed -- re-expanding a
// manifest always rebuilds bit-identical graphs. hash() (over the full
// label, perturbation included) keys the corpus cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpt::scenario {

// One typed scenario parameter value.
struct ParamValue {
  enum class Kind { kInt, kDouble, kString };
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0;
  std::string s;

  static ParamValue of_int(std::int64_t v) {
    ParamValue p;
    p.kind = Kind::kInt;
    p.i = v;
    return p;
  }
  static ParamValue of_double(double v) {
    ParamValue p;
    p.kind = Kind::kDouble;
    p.d = v;
    return p;
  }
  static ParamValue of_string(std::string v) {
    ParamValue p;
    p.kind = Kind::kString;
    p.s = std::move(v);
    return p;
  }

  // Canonical rendering used by signatures, labels and seed derivation:
  // ints as decimal, doubles via %.17g, strings verbatim.
  std::string to_string() const;
};

// Ordered key -> value map (insertion order preserved for display; the
// canonical signature sorts by key so logically equal param sets hash
// equal regardless of declaration order).
class ScenarioParams {
 public:
  void set(std::string key, ParamValue v);
  void set_int(std::string key, std::int64_t v) { set(std::move(key), ParamValue::of_int(v)); }
  void set_double(std::string key, double v) { set(std::move(key), ParamValue::of_double(v)); }
  void set_string(std::string key, std::string v) { set(std::move(key), ParamValue::of_string(std::move(v))); }

  bool has(std::string_view key) const { return find(key) != nullptr; }
  const ParamValue* find(std::string_view key) const;

  // Typed getters with defaults. get_int accepts kInt only; get_double
  // accepts kInt or kDouble. A present-but-mistyped param is a contract
  // violation (manifest validation happens at parse time).
  std::int64_t get_int(std::string_view key, std::int64_t def) const;
  double get_double(std::string_view key, double def) const;
  std::string get_string(std::string_view key, std::string def) const;

  bool empty() const { return kv_.empty(); }
  const std::vector<std::pair<std::string, ParamValue>>& entries() const {
    return kv_;
  }

  // Canonical "k1=v1,k2=v2" with keys sorted; "" when empty.
  std::string signature() const;

 private:
  std::vector<std::pair<std::string, ParamValue>> kv_;
};

// A fully resolved instance: family + params, optional perturbation, and
// the derived instance seed.
struct ScenarioInstance {
  std::string family;
  ScenarioParams params;
  std::string perturb;  // "" = none
  ScenarioParams perturb_params;
  std::uint64_t seed = 0;

  // "family(sig)" or "family(sig)+perturb(sig)" -- seed excluded (the
  // aggregation cell key); with_seed appends "@seed".
  std::string label() const;
  std::string label_with_seed() const;

  // Corpus/cache key: 64-bit FNV-1a chain over label() and seed.
  std::uint64_t hash() const;
};

// ---- Registry introspection ----------------------------------------------

struct FamilyInfo {
  const char* name;
  const char* params_help;  // "rows=16,cols=16" style defaults summary
  const char* param_keys;   // comma-separated accepted keys (validation)
  bool randomized;          // false: the generator ignores the seed
  // True when the generator yields a planar graph for EVERY parameter
  // value -- the one-sidedness invariant (planar => never rejected) is
  // checked over exactly these families (scenario/invariants.h).
  bool planar;
  Graph (*make)(const ScenarioParams&, Rng&);
};

struct PerturbInfo {
  const char* name;
  const char* params_help;
  const char* param_keys;  // comma-separated accepted keys (validation)
  Graph (*apply)(const Graph& base, const ScenarioParams&, Rng&);
};

struct PresetInfo {
  const char* name;
  const char* params_help;
  const char* param_keys;  // comma-separated accepted keys (validation)
  // Expands user params (overriding preset defaults) into a family-level
  // instance. `seed` is left 0; callers derive it from the preset name.
  ScenarioInstance (*instantiate)(const ScenarioParams& user);
};

const std::vector<FamilyInfo>& scenario_families();
const std::vector<PerturbInfo>& scenario_perturbations();
const std::vector<PresetInfo>& scenario_presets();
const FamilyInfo* find_family(std::string_view name);
const PerturbInfo* find_perturbation(std::string_view name);
const PresetInfo* find_preset(std::string_view name);

// True iff `name` names a family or a preset.
bool is_known_scenario(std::string_view name);

// True when `key` appears in a comma-separated `keys` list ("" = none).
bool param_key_allowed(const char* keys, std::string_view key);

// The accepted param-key list for a family or preset name; nullptr when
// unknown. Used by manifest validation to reject misspelled params.
const char* scenario_param_keys(std::string_view name);

// ---- Instance construction ----------------------------------------------

// Documented seed chain: splitmix64 over a fixed domain constant, the FNV
// hashes of the scenario name and canonical param signature, base_seed and
// the instance index (in that order).
std::uint64_t derive_instance_seed(std::string_view scenario,
                                   const ScenarioParams& params,
                                   std::uint64_t base_seed,
                                   std::uint64_t index);

// Resolves a scenario name (family or preset) + params into an instance
// with the seed derived per the contract above. Unknown names are a
// contract violation; validate with is_known_scenario first.
ScenarioInstance resolve_scenario(std::string_view name,
                                  const ScenarioParams& params,
                                  std::uint64_t base_seed,
                                  std::uint64_t index);

// Builds the instance's graph: family generator, then the perturbation,
// both drawing from one Rng seeded with instance.seed.
Graph build_instance(const ScenarioInstance& instance);

// Streaming alternative to build_instance for families with analytic edge
// enumerations: grid and triangulated_grid, optionally perturbed by
// plus_random_edges (which covers the road_network preset). The returned
// stream yields exactly the edge set build_instance would produce -- the
// random extras replicate planar_plus_random_edges' draw sequence against
// analytic lattice adjacency, so the corpus file written from the stream
// is byte-identical to one written from the built graph (pinned by
// tests). Returns nullptr when the instance has no streaming generator;
// callers fall back to build_instance.
std::unique_ptr<gen::EdgeStream> make_edge_stream(
    const ScenarioInstance& instance);

std::uint64_t fnv1a64(std::string_view s);

}  // namespace cpt::scenario
