// Reader + analyses for the observability artifacts cpt_batch writes:
// `cpt_trace_v1` JSONL span streams (--trace) and `cpt_metrics_v1`
// registry snapshots (--metrics). Backs the cpt_trace CLI and the trace
// determinism tests.
//
// The determinism contract (util/trace.h) says `ts_ns`/`dur_ns` are the
// only schedule-dependent trace fields and that they render LAST on each
// event line; strip_trace_timestamps exploits that -- the deterministic
// view of a trace is a per-line suffix strip, no JSON parse needed. For
// metrics documents the schedule-dependent state is the "runtime"
// section (`rt/`-prefixed names), so the deterministic view is a
// re-render with that member dropped. trace_diff_files picks the right
// view by schema and reports the first divergence.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/json.h"

namespace cpt::scenario {

struct TraceTrack {
  std::uint64_t id = 0;
  std::string label;
};

struct TraceEventRec {
  std::uint64_t track = 0;
  std::uint64_t seq = 0;
  std::string kind;   // "span" | "instant" | "count"
  std::string name;
  std::uint32_t depth = 0;
  std::uint64_t value = 0;  // count events
  JsonValue args;           // object; kNull when absent
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // span events
  bool has_dur = false;
};

struct TraceFile {
  std::string name;
  std::vector<TraceTrack> tracks;
  std::vector<TraceEventRec> events;  // file order = (track, seq) order
};

// Parses a cpt_trace_v1 JSONL document. Returns false and fills *error
// (with a line number) on malformed input or a wrong schema tag.
bool load_trace_file(const std::string& path, TraceFile* out,
                     std::string* error);

// Per-name span/instant/count rollup. With include_wall the span rows
// carry total wall milliseconds; without it the output is a pure
// function of the deterministic trace fields (golden-testable).
// Spans also sum their numeric "rounds"/"messages" args when present.
std::string trace_summary(const TraceFile& t, bool include_wall);

// Flame rollup: per span name, call count, total and self wall time
// (self = total minus enclosed child spans), sorted by total descending.
// Inherently wall-clock: two runs flame differently.
std::string trace_flame(const TraceFile& t);

// Shard rebalance table from the simulator's sim/rebalance instants:
// one row per epoch (round, shard count, epoch-load imbalance max/mean,
// whether boundaries moved), plus a footer with totals.
std::string trace_shards(const TraceFile& t);

// Deterministic view of one JSONL line: truncates at the `,"ts_ns":`
// suffix (timestamps render last by contract) and recloses the object.
// Lines without timestamps (header, track decls) pass through.
std::string strip_trace_timestamps(std::string_view line);

// Deterministic view of a cpt_metrics_v1 document: re-rendered with the
// "runtime" section removed. Returns false on parse failure.
bool metrics_deterministic_view(const std::string& text, std::string* out,
                                std::string* error);

// Compares the deterministic views of two artifacts (both cpt_trace_v1
// or both cpt_metrics_v1, detected from the content). Returns true when
// they match; otherwise fills *report with the first divergence.
bool trace_diff_files(const std::string& path_a, const std::string& path_b,
                      std::string* report);

}  // namespace cpt::scenario
