#include "scenario/trace_analysis.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

namespace cpt::scenario {

namespace {

std::uint64_t member_u64(const JsonValue& obj, std::string_view key,
                         std::uint64_t fallback = 0) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_integer()) return fallback;
  return static_cast<std::uint64_t>(v->as_int64());
}

std::string member_str(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return std::string();
  return v->as_string();
}

// Splits a comma-separated list of unsigned integers (the simulator's
// rebalance payload encoding). Malformed entries parse as 0.
std::vector<std::uint64_t> split_csv_u64(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    std::uint64_t v = 0;
    for (std::size_t i = pos; i < comma; ++i) {
      const char c = csv[i];
      if (c < '0' || c > '9') break;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out.push_back(v);
    pos = comma + 1;
    if (comma == csv.size()) break;
  }
  if (csv.empty()) out.clear();
  return out;
}

std::string format_ms(std::uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

// Pretty-renders a JsonValue, dropping every object member named
// "runtime" (the schedule-dependent metrics section). Insertion order is
// preserved, matching the writer, so equal documents render equal text.
void render_deterministic(const JsonValue& v, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad_in(static_cast<std::size_t>(indent) + 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      if (v.is_integer()) {
        out += json_render_int(v.as_int64());
      } else {
        out += json_render_double(v.as_double());
      }
      return;
    case JsonValue::Kind::kString:
      json_append_escaped(out, v.as_string());
      return;
    case JsonValue::Kind::kArray: {
      if (v.items().empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.items().size(); ++i) {
        out += pad_in;
        render_deterministic(v.items()[i], indent + 2, out);
        if (i + 1 < v.items().size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      return;
    }
    case JsonValue::Kind::kObject: {
      std::vector<const std::pair<std::string, JsonValue>*> kept;
      for (const auto& m : v.members()) {
        if (m.first != "runtime") kept.push_back(&m);
      }
      if (kept.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < kept.size(); ++i) {
        out += pad_in;
        json_append_escaped(out, kept[i]->first);
        out += ": ";
        render_deterministic(kept[i]->second, indent + 2, out);
        if (i + 1 < kept.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      return;
    }
  }
}

void split_lines(const std::string& text, std::vector<std::string>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    out->push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
}

}  // namespace

bool load_trace_file(const std::string& path, TraceFile* out,
                     std::string* error) {
  std::string text;
  if (!read_text_file(path, &text)) {
    *error = "cannot read " + path;
    return false;
  }
  std::vector<std::string> lines;
  split_lines(text, &lines);
  if (lines.empty()) {
    *error = path + ": empty trace";
    return false;
  }
  *out = TraceFile();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    JsonValue v;
    std::string perr;
    if (!JsonValue::parse(lines[i], &v, &perr)) {
      *error = path + ":" + std::to_string(i + 1) + ": " + perr;
      return false;
    }
    if (i == 0) {
      if (member_str(v, "schema") != "cpt_trace_v1") {
        *error = path + ": not a cpt_trace_v1 stream";
        return false;
      }
      out->name = member_str(v, "name");
      continue;
    }
    if (v.find("label") != nullptr && v.find("seq") == nullptr) {
      TraceTrack t;
      t.id = member_u64(v, "track");
      t.label = member_str(v, "label");
      out->tracks.push_back(std::move(t));
      continue;
    }
    TraceEventRec e;
    e.track = member_u64(v, "track");
    e.seq = member_u64(v, "seq");
    e.kind = member_str(v, "kind");
    e.name = member_str(v, "name");
    e.depth = static_cast<std::uint32_t>(member_u64(v, "depth"));
    e.value = member_u64(v, "value");
    if (const JsonValue* a = v.find("args")) e.args = *a;
    e.ts_ns = member_u64(v, "ts_ns");
    e.dur_ns = member_u64(v, "dur_ns");
    e.has_dur = v.find("dur_ns") != nullptr;
    out->events.push_back(std::move(e));
  }
  return true;
}

std::string trace_summary(const TraceFile& t, bool include_wall) {
  struct SpanRow {
    std::uint64_t count = 0, wall_ns = 0, rounds = 0, messages = 0;
    bool has_rounds = false, has_messages = false;
  };
  std::map<std::string, SpanRow> spans;
  std::map<std::string, std::uint64_t> instants;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> counts;
  for (const TraceEventRec& e : t.events) {
    if (e.kind == "span") {
      SpanRow& row = spans[e.name];
      ++row.count;
      row.wall_ns += e.dur_ns;
      if (const JsonValue* r = e.args.find("rounds");
          r != nullptr && r->is_integer()) {
        row.rounds += static_cast<std::uint64_t>(r->as_int64());
        row.has_rounds = true;
      }
      if (const JsonValue* m = e.args.find("messages");
          m != nullptr && m->is_integer()) {
        row.messages += static_cast<std::uint64_t>(m->as_int64());
        row.has_messages = true;
      }
    } else if (e.kind == "instant") {
      ++instants[e.name];
    } else if (e.kind == "count") {
      auto& c = counts[e.name];
      ++c.first;
      c.second += e.value;
    }
  }
  std::string out = "trace " + t.name + ": " +
                    std::to_string(t.tracks.size()) + " tracks, " +
                    std::to_string(t.events.size()) + " events\n";
  if (!spans.empty()) {
    out += "spans:\n";
    for (const auto& [name, row] : spans) {
      out += "  " + name + "  count=" + std::to_string(row.count);
      if (row.has_rounds) out += "  rounds=" + std::to_string(row.rounds);
      if (row.has_messages) {
        out += "  messages=" + std::to_string(row.messages);
      }
      if (include_wall) out += "  wall_ms=" + format_ms(row.wall_ns);
      out += '\n';
    }
  }
  if (!instants.empty()) {
    out += "instants:\n";
    for (const auto& [name, n] : instants) {
      out += "  " + name + "  count=" + std::to_string(n) + '\n';
    }
  }
  if (!counts.empty()) {
    out += "counts:\n";
    for (const auto& [name, c] : counts) {
      out += "  " + name + "  count=" + std::to_string(c.first) +
             "  sum=" + std::to_string(c.second) + '\n';
    }
  }
  return out;
}

std::string trace_flame(const TraceFile& t) {
  struct Frame {
    std::uint32_t depth;
    std::uint64_t dur_ns;
    std::uint64_t child_ns = 0;
    const std::string* name;
  };
  struct Row {
    std::uint64_t count = 0, total_ns = 0, self_ns = 0;
  };
  std::map<std::string, Row> rows;
  // Events arrive in (track, seq) order; spans within a track appear in
  // begin order with explicit depth, so a depth-indexed stack recovers
  // the nesting: a new span at depth d closes everything at depth >= d.
  std::uint64_t cur_track = 0;
  bool have_track = false;
  std::vector<Frame> stack;
  auto pop_to = [&](std::size_t depth) {
    while (stack.size() > depth) {
      const Frame f = stack.back();
      stack.pop_back();
      Row& r = rows[*f.name];
      ++r.count;
      r.total_ns += f.dur_ns;
      r.self_ns += f.dur_ns > f.child_ns ? f.dur_ns - f.child_ns : 0;
      if (!stack.empty()) stack.back().child_ns += f.dur_ns;
    }
  };
  for (const TraceEventRec& e : t.events) {
    if (!have_track || e.track != cur_track) {
      pop_to(0);
      cur_track = e.track;
      have_track = true;
    }
    if (e.kind != "span") continue;
    pop_to(e.depth);
    stack.push_back(Frame{e.depth, e.dur_ns, 0, &e.name});
  }
  pop_to(0);

  std::vector<std::pair<std::string, Row>> sorted(rows.begin(), rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });
  std::string out = "flame " + t.name + ": wall-clock by span name\n";
  for (const auto& [name, r] : sorted) {
    out += "  " + name + "  count=" + std::to_string(r.count) +
           "  total_ms=" + format_ms(r.total_ns) +
           "  self_ms=" + format_ms(r.self_ns) + '\n';
  }
  return out;
}

std::string trace_shards(const TraceFile& t) {
  std::string out;
  std::uint64_t epochs = 0, moves = 0;
  for (const TraceEventRec& e : t.events) {
    if (e.kind != "instant" || e.name != "sim/rebalance") continue;
    ++epochs;
    const std::vector<std::uint64_t> loads =
        split_csv_u64(member_str(e.args, "loads"));
    std::uint64_t max_load = 0, sum = 0;
    for (std::uint64_t v : loads) {
      sum += v;
      max_load = std::max(max_load, v);
    }
    const double mean =
        loads.empty() ? 0.0
                      : static_cast<double>(sum) /
                            static_cast<double>(loads.size());
    const bool moved =
        member_str(e.args, "lo_before") != member_str(e.args, "lo_after");
    if (moved) ++moves;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  round=%" PRIu64 " shards=%" PRIu64 " load_max=%" PRIu64
                  " load_mean=%.1f imbalance=%.2f moved=%s\n",
                  member_u64(e.args, "round"), member_u64(e.args, "shards"),
                  max_load, mean,
                  mean > 0 ? static_cast<double>(max_load) / mean : 0.0,
                  moved ? "yes" : "no");
    out += buf;
  }
  return "shards " + t.name + ": " + std::to_string(epochs) +
         " rebalance epochs, " + std::to_string(moves) +
         " boundary moves\n" + out;
}

std::string strip_trace_timestamps(std::string_view line) {
  const std::size_t pos = line.rfind(",\"ts_ns\":");
  if (pos == std::string_view::npos) return std::string(line);
  return std::string(line.substr(0, pos)) + "}";
}

bool metrics_deterministic_view(const std::string& text, std::string* out,
                                std::string* error) {
  JsonValue v;
  if (!JsonValue::parse(text, &v, error)) return false;
  if (member_str(v, "schema") != "cpt_metrics_v1") {
    *error = "not a cpt_metrics_v1 document";
    return false;
  }
  out->clear();
  render_deterministic(v, 0, *out);
  *out += '\n';
  return true;
}

bool trace_diff_files(const std::string& path_a, const std::string& path_b,
                      std::string* report) {
  std::string a, b;
  if (!read_text_file(path_a, &a)) {
    *report = "cannot read " + path_a;
    return false;
  }
  if (!read_text_file(path_b, &b)) {
    *report = "cannot read " + path_b;
    return false;
  }
  const bool a_metrics = a.find("\"cpt_metrics_v1\"") != std::string::npos &&
                         a.find("\"cpt_trace_v1\"") == std::string::npos;
  const bool b_metrics = b.find("\"cpt_metrics_v1\"") != std::string::npos &&
                         b.find("\"cpt_trace_v1\"") == std::string::npos;
  if (a_metrics != b_metrics) {
    *report = "schema mismatch: " + path_a + " and " + path_b +
              " are different artifact kinds";
    return false;
  }
  std::string da, db;
  if (a_metrics) {
    std::string err;
    if (!metrics_deterministic_view(a, &da, &err)) {
      *report = path_a + ": " + err;
      return false;
    }
    if (!metrics_deterministic_view(b, &db, &err)) {
      *report = path_b + ": " + err;
      return false;
    }
  } else {
    std::vector<std::string> la, lb;
    split_lines(a, &la);
    split_lines(b, &lb);
    for (const std::string& l : la) da += strip_trace_timestamps(l) + '\n';
    for (const std::string& l : lb) db += strip_trace_timestamps(l) + '\n';
  }
  if (da == db) return true;
  std::vector<std::string> la, lb;
  split_lines(da, &la);
  split_lines(db, &lb);
  const std::size_t n = std::min(la.size(), lb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (la[i] != lb[i]) {
      *report = "first divergence at deterministic line " +
                std::to_string(i + 1) + ":\n  " + path_a + ": " + la[i] +
                "\n  " + path_b + ": " + lb[i];
      return false;
    }
  }
  *report = "line count differs: " + path_a + " has " +
            std::to_string(la.size()) + " deterministic lines, " + path_b +
            " has " + std::to_string(lb.size());
  return false;
}

}  // namespace cpt::scenario
