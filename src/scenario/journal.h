// Crash-safe job journal for resumable batch runs (cpt_batch --journal /
// --resume), schema cpt_batch_journal_v1.
//
// The journal is append-only JSONL written from the engine's in-order
// streaming sink: one checksummed record per retired job, in job-index
// order, fsync'd in bounded groups (default every 16 records) so a crash
// loses at most one group plus a possibly torn final line. Every line is
//
//   {"sum": "<16 lowercase hex>", "rec": <object>}\n
//
// where `sum` is FNV-1a-64 over the exact byte text of <object>. The
// fixed-width prefix puts the record text at a constant offset, so
// validation never needs to re-render JSON: recompute FNV over the bytes
// between the prefix and the closing brace and compare.
//
// Line 1's record is the header: schema, manifest name, base_seed, job
// count, and a fingerprint folding every expanded job's identity
// (instance hash, tester, epsilon, mode flags, seeds). --resume refuses a
// journal whose fingerprint does not match the freshly expanded manifest:
// replaying results into a different job list would silently mis-assign
// them. Subsequent records carry one JobResult each -- exactly the fields
// the aggregate document is a function of (verdict, rounds, messages,
// n/m, failure/timeout state), plus retries and wall_seconds for the
// timing report. (Per-phase trajectories are not journaled; resumable
// runs are the streaming CLI path, which never retains them.)
//
// Loading tolerates exactly the damage a crash can cause: a torn or
// corrupt *tail* is dropped (valid_bytes marks the keep-prefix, and the
// writer truncates to it before appending on resume, so a torn line can
// never splice into the next record). Corruption *before* valid records
// -- a damaged middle line followed by intact ones -- is refused as a
// hard error: that is bit rot or tampering, not a crash, and silently
// dropping acknowledged results would violate the resume contract.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "scenario/engine.h"
#include "scenario/json.h"
#include "scenario/manifest.h"

namespace cpt::scenario {

// ---- Checksummed-record plumbing ----------------------------------------
// Shared by the journal and the result cache (scenario/result_cache.h),
// which stores one journal-style line per cached JobResult so both layers
// validate and round-trip results with the same code.

// Incremental FNV-1a-64 folds (the registry's fnv1a64 restarts from the
// offset basis; these continue an existing hash) and the fixed 16-hex
// rendering checksums and fingerprints use.
std::uint64_t fnv_fold_bytes(std::uint64_t h, const char* data, std::size_t n);
std::uint64_t fnv_fold_u64(std::uint64_t h, std::uint64_t v);
std::string fnv_hex16(std::uint64_t v);
// Inverse of fnv_hex16: exactly 16 lowercase hex digits. Hex strings are
// how full-range u64 identities (hashes, seeds) round-trip through JSON
// records -- a bare integer above INT64_MAX falls back to double in the
// parser and silently loses low bits.
bool parse_hex16(std::string_view s, std::uint64_t* out);

// Wraps `rec`'s exact byte text as {"sum": "<16hex>", "rec": <rec>}\n.
std::string checksummed_record_line(const std::string& rec);
// Validates one line's shape + checksum (no trailing newline); on success
// points *rec_text at the record substring inside `line`.
bool split_checksummed_line(std::string_view line, std::string_view* rec_text);

// The JobResult body both record kinds share: every field the aggregate
// document is a function of (verdict, rounds, messages, n/m,
// failure/timeout state) plus retries and wall_seconds for the timing
// report. append starts with ", " (callers open the object and write
// their identity prefix first); parse reads the same fields back and
// fails only on a missing/unknown verdict.
void append_result_fields(std::string& rec, const JobResult& r);
bool parse_result_fields(const JsonValue& rec, JobResult* out,
                         std::string* error);

// ---- Journal ------------------------------------------------------------

// Folds the expanded job list's identity into 64 bits (see above).
std::uint64_t journal_fingerprint(const Manifest& manifest,
                                  const std::vector<Job>& jobs);

// One line each, including the trailing newline.
std::string render_journal_header(const Manifest& manifest,
                                  const std::vector<Job>& jobs);
std::string render_journal_record(const Job& job, const JobResult& result);

struct JournalReplay {
  std::string manifest_name;
  std::uint64_t base_seed = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t jobs = 0;  // job count the journal was written against
  // Retired results by job index (feed as BatchOptions::completed).
  std::unordered_map<std::uint32_t, JobResult> completed;
  std::size_t valid_bytes = 0;    // byte length of the intact prefix
  std::size_t dropped_bytes = 0;  // torn/corrupt tail discarded
};

// Parses a journal file. True with a populated *out when the file has a
// valid header and any prefix of valid records (a torn tail is normal
// after a crash -- reported via dropped_bytes, not an error). False on a
// missing/unreadable file, a bad header, or corruption before the tail.
bool load_journal(const std::string& path, JournalReplay* out,
                  std::string* error);

// Appends records with grouped fsync. All methods return false on write
// failure (and on injected kJournalWrite faults); after a failure the
// journal's intact prefix is still a valid resumable journal.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Creates/overwrites `path` with a fresh header (fsync'd immediately:
  // the header must survive any later crash for the file to be a journal).
  bool create(const std::string& path, const Manifest& manifest,
              const std::vector<Job>& jobs);

  // Opens an existing journal for append, first truncating to
  // `valid_bytes` (JournalReplay::valid_bytes) so a torn tail line is cut
  // before new records land after it.
  bool open_resume(const std::string& path, std::size_t valid_bytes);

  // Appends one record; fsyncs when `sync_every` records accumulated.
  // Fault site kJournalWrite (key = job index): shortwrite tears the line
  // mid-write and reports failure; exit tears it and kills the process.
  bool append(const Job& job, const JobResult& result);

  // Flushes and fsyncs any buffered group.
  bool sync();

  // Makes every appended record durable: flushes + fsyncs the partial
  // group past the last kSyncEvery boundary (up to 15 records that
  // append() alone leaves in the stdio buffer). Callers must invoke this
  // -- or close(), which includes it -- once the final record is in;
  // cpt_batch calls it as soon as the sink drains, *before* writing the
  // stream footer or any aggregate file, so a crash anywhere in the
  // output-publishing tail can no longer lose acknowledged records.
  // True only when every record is durably on disk.
  bool finish();

  bool close();  // finish + fclose; safe to call twice
  bool ok() const { return file_ != nullptr && !failed_; }

  // Records per fsync group. 1 = sync every record (slow, loses nothing);
  // the default trades <= 15 re-run jobs on power loss for one fsync per
  // group.
  static constexpr std::uint32_t kSyncEvery = 16;

 private:
  bool write_all(const char* data, std::size_t size);

  std::FILE* file_ = nullptr;
  std::uint32_t unsynced_ = 0;
  bool failed_ = false;
};

}  // namespace cpt::scenario
