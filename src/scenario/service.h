// cpt_serve's batch service: a long-lived daemon that accepts manifest
// runs over a local Unix-domain stream socket, queues them by priority
// onto one shared WorkerPool, and answers with the same byte streams the
// offline tools produce.
//
// Wire protocol (DESIGN.md section 10 is the normative spec): newline-
// delimited JSON both ways. Each request is one object with an "op":
//
//   {"op": "ping"}
//   {"op": "metrics"}
//   {"op": "shutdown"}
//   {"op": "run", "manifest_text": "<manifest JSON>",
//    "priority": 0, "sim_threads_policy": "auto"}
//
// A run request is acked with {"ok": true, "queued": true, ...}, then --
// once the executor picks it -- answered with the verbatim
// cpt_batch_aggregate_stream_v1 JSONL lines (header, one line per
// finalized cell, footer) followed by one terminal line
// {"done": true, "exit_code": ..., "aggregate": "<escaped>", ...}.
// Because cached and fresh results flow through the same streaming sink,
// those lines -- and the escaped aggregate document -- are byte-identical
// to an offline `cpt_batch run` of the same manifest at any --threads.
//
// Concurrency model: one reader thread per connection parses requests and
// enqueues them; a single executor thread pops the highest-priority
// request (ties FIFO by arrival) and runs it on the shared pool, so at
// most one batch executes at a time and every batch sees the pool's full
// width. Per-connection writes are serialized by a per-connection mutex
// (the ack comes from the reader thread, stream lines from the executor).
// A client that disconnects mid-run does not abort its batch: the
// executor keeps running it (results still populate the result cache) and
// just stops writing.
//
// stop() (signal handlers call request_stop(), which is async-signal-
// safe) closes the listener and wakes the executor; queued requests are
// drained, not dropped, so a shutdown racing a client's enqueue never
// loses an acked request.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "scenario/engine.h"
#include "scenario/result_cache.h"
#include "util/trace.h"

namespace cpt::scenario {

struct ServiceOptions {
  std::string socket_path;
  std::string corpus_dir;       // "" = no graph corpus
  std::string cache_dir;        // "" = result cache disabled
  std::uint64_t cache_max_entries = 0;  // 0 = unbounded
  unsigned threads = 0;         // shared pool width; 0 = resolve from env
  // Default core-split policy; a request's "sim_threads_policy" member
  // overrides it for that run only.
  SimThreadsPolicy sim_threads_policy = SimThreadsPolicy::kManifest;
  unsigned max_retries = 2;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Binds and listens on options.socket_path (unlinking a stale socket
  // left by a dead server). Returns false with *error set on failure.
  bool start(std::string* error);

  // Accept/serve loop; blocks until a shutdown request or request_stop(),
  // then drains the queue, joins connection threads and unlinks the
  // socket.
  void serve();

  // Async-signal-safe stop: flips an atomic and nudges the listener via
  // shutdown(2) so the accept loop wakes. Safe to call from any thread or
  // a signal handler, any number of times.
  void request_stop();

  // serve/ counters and gauges (plus the engine's per-run batch/ and
  // corpus/ counters for runs executed here). Snapshot with
  // metrics().render_json("cpt_serve").
  util::MetricsRegistry& metrics() { return metrics_; }

 private:
  // Folds the result cache's atomic counters into serve/cache_* registry
  // counters (delta-synced, so repeated snapshots never double count).
  void sync_cache_counters();

  struct Impl;
  util::MetricsRegistry metrics_;
  Impl* impl_;  // socket/queue/thread state (keeps <sys/socket.h> out of
                // this header)
};

}  // namespace cpt::scenario
