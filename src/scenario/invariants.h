// Metamorphic invariant checkers over scenario-engine batches: the
// paper-level guarantees (Levi-Medina-Ron, PODC 2018) and the engine-level
// determinism contracts, stated once and asserted over whole sweeps
// instead of hand-picked graphs (tests/metamorphic_test.cc drives them).
//
// Invariants:
//  (a) One-sidedness (Theorem 1): a guaranteed-planar instance is NEVER
//      rejected by the planarity tester (or the Stage I partition driver),
//      at any epsilon, tester seed, thread count or stream schedule.
//  (b) Detection monotonicity: with the base graph fixed (the registry's
//      seed contract excludes perturbation params from the instance seed),
//      the rejection rate is non-decreasing along a perturbation-strength
//      axis, and non-increasing along the epsilon axis (a larger allowed
//      cut can only hide evidence).
//  (c) Relabeling invariance: planarity is a label-invariant property, so
//      a vertex-permuted instance must produce the same verdict. Round
//      and message counts are explicitly NOT invariant -- Stage I
//      tie-breaks (heaviest-edge selection, BFS orders) read node ids, so
//      a permutation reshapes merge trees (measured: a permuted 12x12
//      grid costs 15657 rounds vs 15231) -- which is why the check pins
//      verdicts and partition cardinality, never ledgers.
//  (d) Pipelining dominance (the PR 2 differential, through the engine):
//      pipelined and unpipelined stream schedules compute identical
//      verdicts and partitions, with the pipelined run costing no more
//      rounds and no more messages on any job.
//
// Checkers append human-readable violations to an InvariantReport instead
// of asserting, so one run surfaces every broken case.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/engine.h"

namespace cpt::scenario {

// True when the family generates a planar graph for every parameter value
// (registry FamilyInfo::planar).
bool family_always_planar(std::string_view family);

// True when the whole instance is guaranteed planar: a planar family with
// no perturbation, a planarity-preserving perturbation strength of zero
// (plus_random_edges extra=0, k5/k33_blobs count=0), or disjoint_copies
// (disjoint unions of planar graphs stay planar).
bool instance_guaranteed_planar(const ScenarioInstance& instance);

struct InvariantViolation {
  std::string invariant;  // "one_sidedness", "monotone_detection", ...
  std::string detail;
};

struct InvariantReport {
  std::uint64_t checks = 0;  // individual assertions evaluated
  std::vector<InvariantViolation> violations;

  bool ok() const { return violations.empty(); }
  void fail(std::string invariant, std::string detail);
  // Multi-line listing for test failure messages; "" when ok.
  std::string summary() const;
};

// (a) Scans every planarity / stage1_partition job on a guaranteed-planar
// instance: any rejection is a violation. Failed jobs are skipped (they
// are reported through BatchResult::failed_jobs).
void check_one_sidedness(const BatchResult& batch, InvariantReport* report);

// (b) Groups jobs by everything except the named sweep axis (a perturb
// param when perturb_axis, else a family param), accumulates per-axis-
// value rejection rates, and asserts they are monotone: direction > 0
// demands non-decreasing rates in the axis value, direction < 0
// non-increasing. Rates compare exactly (cross-multiplied counts).
void check_monotone_detection(const BatchResult& batch,
                              std::string_view axis_key, bool perturb_axis,
                              int direction, InvariantReport* report);

// (b') The epsilon axis: rejection rate non-increasing as epsilon grows,
// per fixed (instance label, tester, mode) group.
void check_monotone_detection_in_epsilon(const BatchResult& batch,
                                         InvariantReport* report);

// (c) Runs the job on g and on a relabeled copy (deterministic
// Fisher-Yates permutation from perm_seed) and compares verdicts and part
// counts. Returns the permuted run's result for further inspection.
JobResult check_relabeling_invariance(const Job& job, const Graph& g,
                                      std::uint64_t perm_seed,
                                      InvariantReport* report);

// (d) `pipelined` and `unpipelined` must come from the same manifest
// expanded with only the pipelined flag flipped: per job, verdicts and
// partition shapes (num_parts, cut_edges) must match, and the pipelined
// run must cost <= rounds and <= messages.
void check_pipelining_dominance(const BatchResult& pipelined,
                                const BatchResult& unpipelined,
                                InvariantReport* report);

}  // namespace cpt::scenario
