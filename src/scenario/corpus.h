// Binary corpus store for generated scenario graphs, keyed by instance
// hash. Repeated sweeps over the same manifest skip regeneration: the batch
// engine materializes each unique instance once per run (in-memory dedup)
// and, when a corpus directory is configured, persists it as
// <dir>/<16-hex-hash>.cpg so later runs load instead of generating.
//
// On-disk format v3 (the full layout lives in DESIGN.md section 8): a
// 64-byte checksummed little-endian header (magic 'CPTC', version, n and m
// as u64, payload checksum, header checksum) followed by the in-memory CSR
// arrays verbatim, each section 64-byte aligned: node offsets ((n+1) x
// u32), arcs (2m x 12-byte Arc, peer_arc prefilled), endpoints (m x 8
// bytes). Because the file *is* the CSR, a corpus hit is a zero-copy mmap:
// load() returns a read-only Graph view backed by the mapping
// (Graph::from_csr) -- no GraphBuilder replay, no per-job O(m) allocation,
// and no node-count cap (v2 refused graphs above 2^27 nodes; v3 accepts
// anything within the format limits: n < 2^32 - 1, m < 2^31).
//
// Legacy v2 files (u32 header + endpoint list + FNV checksum) are still
// read -- via the old GraphBuilder replay, with the size cross-check done
// in u64 so a forged header cannot wrap it -- and are transparently
// migrated: a v2 hit is re-saved as v3 so the next load maps it.
//
// Integrity policy: the header checksum and exact-size cross-check are
// always enforced. The payload checksum is verified in full for files up
// to 64 MiB -- and always when CPT_CORPUS_VERIFY=full -- while larger
// files are admitted on the header alone (CPT_CORPUS_VERIFY=size makes
// that unconditional), so a multi-gigabyte hit stays zero-copy instead of
// paying a full read. Every file written by the test suite is far below
// the threshold, so torn/bit-rot coverage always runs checksummed.
//
// Robustness: load() distinguishes a missing file (kMiss) from a damaged
// one (kCorrupt: bad magic/version, truncated, size mismatch, checksum
// mismatch, trailing bytes). Corrupt files earn a stderr warning and the
// engine falls back to regeneration -- a half-written or garbled cache
// entry can slow a sweep down, never poison it. Saves are durable: tmp +
// fsync + rename + parent-directory fsync (util/fsio.h). The "file"
// family is exempt from the disk layer (see engine.cc): its hash names a
// path, not the file's content, and must not shadow later edits.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_stream.h"
#include "graph/graph.h"

namespace cpt::scenario {

class CorpusStore {
 public:
  // dir == "" disables the disk layer (load always misses, save no-ops).
  // The directory is created on first save if missing. Opening an existing
  // directory sweeps orphaned *.tmp files (the residue of saves killed
  // between fopen and rename) so they cannot accumulate across crashes.
  explicit CorpusStore(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  enum class LoadStatus { kMiss, kHit, kCorrupt };

  // kHit fills *out from <dir>/<hash>.cpg -- for v3 files a zero-copy
  // mmap-backed view, for v2 files a GraphBuilder replay (then re-saved as
  // v3). kCorrupt means the file exists but failed validation (warned on
  // stderr; caller should regenerate -- the subsequent save() replaces the
  // damaged file).
  LoadStatus load(std::uint64_t hash, Graph* out) const;

  // Persists g under its hash as v3; returns false on I/O failure (the
  // batch engine treats that as non-fatal: the graph is still in memory).
  bool save(std::uint64_t hash, const Graph& g) const;

  // Streaming save: materializes the stream straight into a v3 file in
  // two passes (degree count, then sequential endpoint + scattered arc
  // writes through a mapping of the output), so no resident Graph ever
  // exists. Peak memory is O(n) cursor arrays plus a bounded mapping
  // window (completed regions are released as the write frontier
  // advances), not O(m). The resulting file is byte-identical to
  // save(build(...)) for the same edge set -- pinned by tests.
  bool save_stream(std::uint64_t hash, gen::EdgeStream& stream) const;

  std::string path_for(std::uint64_t hash) const;

 private:
  std::string dir_;
};

// Writes a legacy v2 corpus file (u32 header + endpoint list + checksum).
// Production code always writes v3; this exists so migration tests can
// manufacture genuine v2 files.
bool write_corpus_v2(const std::string& path, const Graph& g);

}  // namespace cpt::scenario
