// Binary corpus store for generated scenario graphs, keyed by instance
// hash. Repeated sweeps over the same manifest skip regeneration: the batch
// engine materializes each unique instance once per run (in-memory dedup)
// and, when a corpus directory is configured, persists it as
// <dir>/<16-hex-hash>.cpg so later runs load instead of generating.
//
// File format (little-endian u32s): magic 'CPTC', version, n, m, then m
// (u, v) pairs in edge-id order, then a FNV-1a-64 checksum (two u32s,
// low word first) over every preceding payload u32 (n, m, endpoints).
// Loading rebuilds the graph through GraphBuilder, so arc layout and edge
// ids match a freshly generated graph exactly -- cached and regenerated
// instances are interchangeable bit-for-bit (pinned by scenario_test.cc).
// The "file" family is exempt from the disk layer (see engine.cc): its
// hash names a path, not the file's content, and must not shadow later
// edits.
//
// Robustness: load() distinguishes a missing file (kMiss) from a damaged
// one (kCorrupt: bad magic/version, truncated, out-of-range endpoints,
// checksum mismatch, trailing bytes). Corrupt files earn a stderr warning
// and the engine falls back to regeneration -- a half-written or garbled
// cache entry can slow a sweep down, never poison it. Graphs above 2^27
// nodes are never cached (the loader must bound its allocation before the
// checksum can vouch for n, and save mirrors the cap so a legitimate
// giant is skipped, not endlessly re-flagged corrupt).
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace cpt::scenario {

class CorpusStore {
 public:
  // dir == "" disables the disk layer (load always misses, save no-ops).
  // The directory is created on first save if missing. Opening an existing
  // directory sweeps orphaned *.tmp files (the residue of saves killed
  // between fopen and rename) so they cannot accumulate across crashes.
  explicit CorpusStore(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  enum class LoadStatus { kMiss, kHit, kCorrupt };

  // kHit fills *out from <dir>/<hash>.cpg; kCorrupt means the file exists
  // but failed validation (warned on stderr; caller should regenerate --
  // the subsequent save() replaces the damaged file).
  LoadStatus load(std::uint64_t hash, Graph* out) const;

  // Persists g under its hash; returns false on I/O failure (the batch
  // engine treats that as non-fatal: the graph is still in memory).
  bool save(std::uint64_t hash, const Graph& g) const;

  std::string path_for(std::uint64_t hash) const;

 private:
  std::string dir_;
};

}  // namespace cpt::scenario
