#include "scenario/journal.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "scenario/faultinject.h"
#include "scenario/json.h"
#include "scenario/registry.h"
#include "util/fsio.h"

namespace cpt::scenario {

std::uint64_t fnv_fold_bytes(std::uint64_t h, const char* data,
                             std::size_t n) {
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_fold_u64(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::string fnv_hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

namespace {

// Line layout: {"sum": "<16hex>", "rec": <object>}\n -- the record text
// starts at byte kRecOffset and ends 2 bytes before the line's end.
constexpr std::size_t kRecOffset = 35;
constexpr const char* kLinePrefix = "{\"sum\": \"";   // 9 bytes
constexpr const char* kLineInfix = "\", \"rec\": ";   // 10 bytes, at 25

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kAccept: return "accept";
    case Verdict::kReject: return "reject";
    case Verdict::kFail: return "fail";
  }
  return "?";
}

bool parse_verdict(const std::string& s, Verdict* out) {
  if (s == "accept") *out = Verdict::kAccept;
  else if (s == "reject") *out = Verdict::kReject;
  else if (s == "fail") *out = Verdict::kFail;
  else return false;
  return true;
}

std::uint64_t get_u64(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return 0;
  if (v->is_integer()) return static_cast<std::uint64_t>(v->as_int64());
  return static_cast<std::uint64_t>(v->as_double());
}

bool get_flag(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_bool() && v->as_bool();
}

}  // namespace

bool parse_hex16(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

std::string checksummed_record_line(const std::string& rec) {
  std::string line = kLinePrefix;
  line += fnv_hex16(fnv_fold_bytes(fnv1a64(""), rec.data(), rec.size()));
  line += kLineInfix;
  line += rec;
  line += "}\n";
  return line;
}

bool split_checksummed_line(std::string_view line,
                            std::string_view* rec_text) {
  if (line.size() < kRecOffset + 2) return false;
  if (line.substr(0, 9) != kLinePrefix) return false;
  if (line.substr(25, 10) != kLineInfix) return false;
  if (line.back() != '}') return false;
  for (std::size_t i = 9; i < 25; ++i) {
    const char c = line[i];
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  const std::string_view rec = line.substr(kRecOffset,
                                           line.size() - kRecOffset - 1);
  const std::uint64_t sum =
      fnv_fold_bytes(fnv1a64(""), rec.data(), rec.size());
  if (fnv_hex16(sum) != line.substr(9, 16)) return false;
  *rec_text = rec;
  return true;
}

void append_result_fields(std::string& rec, const JobResult& r) {
  rec += ", \"n\": " + json_render_uint(r.n);
  rec += ", \"m\": " + json_render_uint(r.m);
  if (r.failed) {
    rec += ", \"failed\": true, \"error\": ";
    json_append_escaped(rec, r.error);
  } else if (r.timed_out) {
    rec += ", \"timed_out\": true, \"error\": ";
    json_append_escaped(rec, r.error);
  } else {
    rec += ", \"verdict\": \"";
    rec += verdict_name(r.verdict);
    rec += "\", \"rounds\": " + json_render_uint(r.rounds);
    rec += ", \"messages\": " + json_render_uint(r.messages);
    rec += ", \"num_parts\": " + json_render_uint(r.num_parts);
    rec += ", \"cut_edges\": " + json_render_uint(r.cut_edges);
    rec += ", \"max_part_ecc\": " + json_render_uint(r.max_part_ecc);
    rec += ", \"max_tree_depth\": " + json_render_uint(r.max_tree_depth);
    rec += ", \"stage1_phases\": " + json_render_uint(r.stage1_phases);
    rec += ", \"stage1_phases_total\": " +
           json_render_uint(r.stage1_phases_total);
    if (r.trials_per_phase > 0) {
      rec += ", \"trials_per_phase\": " +
             json_render_uint(r.trials_per_phase);
    }
  }
  if (r.retries > 0) rec += ", \"retries\": " + json_render_uint(r.retries);
  rec += ", \"wall_seconds\": " + json_render_double(r.wall_seconds);
}

bool parse_result_fields(const JsonValue& rec, JobResult* out,
                         std::string* error) {
  JobResult r;
  r.n = static_cast<NodeId>(get_u64(rec, "n"));
  r.m = static_cast<EdgeId>(get_u64(rec, "m"));
  r.failed = get_flag(rec, "failed");
  r.timed_out = get_flag(rec, "timed_out");
  if (r.failed || r.timed_out) {
    if (const JsonValue* e = rec.find("error")) {
      if (e->is_string()) r.error = e->as_string();
    }
  } else {
    const JsonValue* verdict = rec.find("verdict");
    if (verdict == nullptr || !verdict->is_string() ||
        !parse_verdict(verdict->as_string(), &r.verdict)) {
      if (error != nullptr) *error = "record with bad verdict";
      return false;
    }
    r.rounds = get_u64(rec, "rounds");
    r.messages = get_u64(rec, "messages");
    r.num_parts = static_cast<NodeId>(get_u64(rec, "num_parts"));
    r.cut_edges = get_u64(rec, "cut_edges");
    r.max_part_ecc =
        static_cast<std::uint32_t>(get_u64(rec, "max_part_ecc"));
    r.max_tree_depth =
        static_cast<std::uint32_t>(get_u64(rec, "max_tree_depth"));
    r.stage1_phases =
        static_cast<std::uint32_t>(get_u64(rec, "stage1_phases"));
    r.stage1_phases_total =
        static_cast<std::uint32_t>(get_u64(rec, "stage1_phases_total"));
    r.trials_per_phase =
        static_cast<std::uint32_t>(get_u64(rec, "trials_per_phase"));
  }
  r.retries = static_cast<std::uint32_t>(get_u64(rec, "retries"));
  if (const JsonValue* w = rec.find("wall_seconds")) {
    if (w->is_number()) r.wall_seconds = w->as_double();
  }
  *out = std::move(r);
  return true;
}

std::uint64_t journal_fingerprint(const Manifest& manifest,
                                  const std::vector<Job>& jobs) {
  std::uint64_t h = fnv1a64(manifest.name);
  h = fnv_fold_u64(h, manifest.base_seed);
  h = fnv_fold_u64(h, jobs.size());
  for (const Job& job : jobs) {
    // cell_key covers label, tester, epsilon and every mode marker; the
    // hashes and seeds pin the exact instances and trial randomness.
    const std::string key = job.cell_key();
    h = fnv_fold_bytes(h, key.data(), key.size());
    h = fnv_fold_u64(h, job.instance.hash());
    h = fnv_fold_u64(h, job.tester_seed);
    h = fnv_fold_u64(h, job.sim_threads);
  }
  return h;
}

std::string render_journal_header(const Manifest& manifest,
                                  const std::vector<Job>& jobs) {
  std::string rec = "{\"schema\": \"cpt_batch_journal_v1\", \"manifest\": ";
  json_append_escaped(rec, manifest.name);
  rec += ", \"base_seed\": " + json_render_uint(manifest.base_seed);
  rec += ", \"jobs\": " + json_render_uint(jobs.size());
  rec += ", \"fingerprint\": \"" +
         fnv_hex16(journal_fingerprint(manifest, jobs));
  rec += "\"}";
  return checksummed_record_line(rec);
}

std::string render_journal_record(const Job& job, const JobResult& r) {
  std::string rec = "{\"job\": " + json_render_uint(job.job_index);
  rec += ", \"key\": ";
  json_append_escaped(rec, job.cell_key());
  rec += ", \"seed\": " + json_render_uint(job.tester_seed);
  append_result_fields(rec, r);
  rec += "}";
  return checksummed_record_line(rec);
}

bool load_journal(const std::string& path, JournalReplay* out,
                  std::string* error) {
  *out = JournalReplay{};
  std::string text;
  if (!read_text_file(path, &text)) {
    if (error != nullptr) *error = "cannot read journal " + path;
    return false;
  }
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = path + ": " + msg;
    return false;
  };

  std::size_t pos = 0;
  bool saw_header = false;
  std::size_t tail_start = std::string::npos;  // first invalid line
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // No newline: a torn final line (crash mid-append).
      tail_start = pos;
      break;
    }
    const std::string_view line(text.data() + pos, nl - pos);
    std::string_view rec_text;
    JsonValue rec;
    std::string jerr;
    if (!split_checksummed_line(line, &rec_text) ||
        !JsonValue::parse(rec_text, &rec, &jerr) || !rec.is_object()) {
      tail_start = pos;
      break;
    }
    if (!saw_header) {
      const JsonValue* schema = rec.find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != "cpt_batch_journal_v1") {
        return fail("not a cpt_batch_journal_v1 journal");
      }
      if (const JsonValue* name = rec.find("manifest")) {
        if (name->is_string()) out->manifest_name = name->as_string();
      }
      out->base_seed = get_u64(rec, "base_seed");
      out->jobs = get_u64(rec, "jobs");
      const JsonValue* fp = rec.find("fingerprint");
      if (fp == nullptr || !fp->is_string() ||
          !parse_hex16(fp->as_string(), &out->fingerprint)) {
        return fail("journal header missing fingerprint");
      }
      saw_header = true;
    } else {
      const JsonValue* jv = rec.find("job");
      if (jv == nullptr || !jv->is_integer() || jv->as_int64() < 0 ||
          static_cast<std::uint64_t>(jv->as_int64()) >= out->jobs) {
        return fail("journal record with out-of-range job index");
      }
      const std::uint32_t j = static_cast<std::uint32_t>(jv->as_int64());
      JobResult r;
      std::string perr;
      if (!parse_result_fields(rec, &r, &perr)) {
        return fail("journal " + perr);
      }
      out->completed[j] = std::move(r);
    }
    pos = nl + 1;
  }
  if (!saw_header) return fail("missing or corrupt journal header");
  out->valid_bytes = tail_start == std::string::npos ? text.size()
                                                     : tail_start;
  out->dropped_bytes = text.size() - out->valid_bytes;
  // A torn tail is what crashes produce; valid records *after* damage are
  // not -- refuse rather than silently dropping acknowledged results.
  if (tail_start != std::string::npos) {
    std::size_t p = tail_start;
    while (true) {
      const std::size_t nl = text.find('\n', p);
      if (nl == std::string::npos) break;
      const std::string_view line(text.data() + p, nl - p);
      std::string_view rec_text;
      if (split_checksummed_line(line, &rec_text)) {
        return fail("corrupt record followed by valid data (not a torn "
                    "tail; refusing to resume)");
      }
      p = nl + 1;
    }
  }
  return true;
}

bool JournalWriter::write_all(const char* data, std::size_t size) {
  if (file_ == nullptr || failed_) return false;
  if (std::fwrite(data, 1, size, file_) != size) {
    failed_ = true;
    return false;
  }
  return true;
}

bool JournalWriter::create(const std::string& path, const Manifest& manifest,
                           const std::vector<Job>& jobs) {
  close();
  failed_ = false;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    failed_ = true;
    return false;
  }
  const std::string header = render_journal_header(manifest, jobs);
  if (!write_all(header.data(), header.size())) return false;
  // The header must survive any later crash for the file to be a journal
  // -- including its directory entry, which fsync(file) alone does not
  // cover for a freshly created file.
  if (!sync()) return false;
  if (!fsync_parent_dir(path)) {
    failed_ = true;
    return false;
  }
  return true;
}

bool JournalWriter::open_resume(const std::string& path,
                                std::size_t valid_bytes) {
  close();
  failed_ = false;
  // Cut the torn tail first: appending after it would splice the tear
  // into the next record.
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    failed_ = true;
    return false;
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    failed_ = true;
    return false;
  }
  return true;
}

bool JournalWriter::append(const Job& job, const JobResult& result) {
  if (file_ == nullptr || failed_) return false;
  const std::string line = render_journal_record(job, result);
  const FaultAction fault =
      fault_check(FaultSite::kJournalWrite, job.job_index);
  if (fault == FaultAction::kShortWrite || fault == FaultAction::kExit) {
    // Tear the line mid-record -- exactly what a crash mid-append leaves.
    write_all(line.data(), line.size() / 2);
    std::fflush(file_);
    if (fault == FaultAction::kExit) ::_exit(kFaultExitCode);
    failed_ = true;
    return false;
  }
  fault_raise(fault, FaultSite::kJournalWrite, job.job_index);
  if (!write_all(line.data(), line.size())) return false;
  if (++unsynced_ >= kSyncEvery) return sync();
  return true;
}

bool JournalWriter::sync() {
  if (file_ == nullptr || failed_) return false;
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    failed_ = true;
    return false;
  }
  unsynced_ = 0;
  return true;
}

bool JournalWriter::finish() {
  // No journal (or already closed) with no recorded failure is vacuously
  // durable -- cpt_batch calls finish() unconditionally after the sink
  // drains, journal or not.
  if (file_ == nullptr) return !failed_;
  return sync();
}

bool JournalWriter::close() {
  if (file_ == nullptr) return !failed_;
  const bool synced = finish();
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  return synced && closed && !failed_;
}

}  // namespace cpt::scenario
