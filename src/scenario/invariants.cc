#include "scenario/invariants.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

#include "graph/ops.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace cpt::scenario {

bool family_always_planar(std::string_view family) {
  const FamilyInfo* info = find_family(family);
  return info != nullptr && info->planar;
}

bool instance_guaranteed_planar(const ScenarioInstance& instance) {
  if (!family_always_planar(instance.family)) return false;
  if (instance.perturb.empty()) return true;
  if (instance.perturb == "disjoint_copies") return true;
  if (instance.perturb == "plus_random_edges") {
    return instance.perturb_params.get_int("extra", 0) == 0;
  }
  if (instance.perturb == "k5_blobs" || instance.perturb == "k33_blobs") {
    return instance.perturb_params.get_int("count", 8) == 0;
  }
  return false;
}

void InvariantReport::fail(std::string invariant, std::string detail) {
  violations.push_back({std::move(invariant), std::move(detail)});
}

std::string InvariantReport::summary() const {
  std::string out;
  for (const InvariantViolation& v : violations) {
    out += "[" + v.invariant + "] " + v.detail + "\n";
  }
  return out;
}

void check_one_sidedness(const BatchResult& batch, InvariantReport* report) {
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const Job& job = batch.jobs[j];
    const JobResult& res = batch.results[j];
    if (res.failed) continue;
    if (job.tester != TesterKind::kPlanarity &&
        job.tester != TesterKind::kStage1Partition) {
      continue;
    }
    if (!instance_guaranteed_planar(job.instance)) continue;
    ++report->checks;
    if (res.verdict != Verdict::kAccept) {
      char buf[64];
      std::snprintf(buf, sizeof buf, " (eps=%g, trial=%u, seed=%016llx)",
                    job.epsilon, job.trial,
                    static_cast<unsigned long long>(job.tester_seed));
      report->fail("one_sidedness",
                   "planar instance rejected: " + job.cell_key() + buf);
    }
  }
}

namespace {

// Rejection tally for one point on a monotonicity axis.
struct AxisPoint {
  std::uint32_t jobs = 0;
  std::uint32_t rejects = 0;
};

void check_monotone_series(const std::string& group,
                           const std::map<double, AxisPoint>& series,
                           int direction, const char* axis_label,
                           InvariantReport* report) {
  const AxisPoint* prev = nullptr;
  double prev_value = 0;
  for (const auto& [value, point] : series) {
    if (prev != nullptr) {
      ++report->checks;
      // rate(prev) <=> rate(cur) without division:
      // prev.rejects/prev.jobs <= point.rejects/point.jobs
      //   <=> prev.rejects * point.jobs <= point.rejects * prev.jobs.
      const std::uint64_t lhs =
          static_cast<std::uint64_t>(prev->rejects) * point.jobs;
      const std::uint64_t rhs =
          static_cast<std::uint64_t>(point.rejects) * prev->jobs;
      const bool ok = direction > 0 ? lhs <= rhs : lhs >= rhs;
      if (!ok) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      ": rate %u/%u at %s=%g vs %u/%u at %s=%g",
                      prev->rejects, prev->jobs, axis_label, prev_value,
                      point.rejects, point.jobs, axis_label, value);
        report->fail("monotone_detection", group + buf);
      }
    }
    prev = &point;
    prev_value = value;
  }
}

}  // namespace

void check_monotone_detection(const BatchResult& batch,
                              std::string_view axis_key, bool perturb_axis,
                              int direction, InvariantReport* report) {
  // Group key: the job's cell key with the axis param masked out of the
  // instance label (rebuilt from structured fields, not string surgery).
  std::map<std::string, std::map<double, AxisPoint>> groups;
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const Job& job = batch.jobs[j];
    const JobResult& res = batch.results[j];
    if (res.failed) continue;
    const ScenarioParams& swept =
        perturb_axis ? job.instance.perturb_params : job.instance.params;
    const ParamValue* axis = swept.find(axis_key);
    if (axis == nullptr) continue;
    ScenarioParams masked;
    for (const auto& [k, v] : swept.entries()) {
      if (k != axis_key) masked.set(k, v);
    }
    ScenarioInstance skeleton = job.instance;
    (perturb_axis ? skeleton.perturb_params : skeleton.params) = masked;
    Job group_job = job;
    group_job.instance = skeleton;
    AxisPoint& point =
        groups[group_job.cell_key()][swept.get_double(axis_key, 0)];
    ++point.jobs;
    if (res.verdict == Verdict::kReject) ++point.rejects;
  }
  const std::string axis_name(axis_key);
  for (const auto& [group, series] : groups) {
    check_monotone_series(group, series, direction, axis_name.c_str(),
                          report);
  }
}

void check_monotone_detection_in_epsilon(const BatchResult& batch,
                                         InvariantReport* report) {
  std::map<std::string, std::map<double, AxisPoint>> groups;
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const Job& job = batch.jobs[j];
    const JobResult& res = batch.results[j];
    if (res.failed) continue;
    // The group is the cell key with epsilon erased: rebuild it from a
    // job whose epsilon is pinned to a sentinel shared by the group.
    Job group_job = job;
    group_job.epsilon = 0;
    AxisPoint& point = groups[group_job.cell_key()][job.epsilon];
    ++point.jobs;
    if (res.verdict == Verdict::kReject) ++point.rejects;
  }
  for (const auto& [group, series] : groups) {
    check_monotone_series(group, series, /*direction=*/-1, "eps", report);
  }
}

JobResult check_relabeling_invariance(const Job& job, const Graph& g,
                                      std::uint64_t perm_seed,
                                      InvariantReport* report) {
  std::vector<NodeId> perm(g.num_nodes());
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(perm_seed);
  for (NodeId i = g.num_nodes(); i > 1; --i) {
    const NodeId j = static_cast<NodeId>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  const Graph permuted = relabel(g, perm);
  const JobResult base = run_job(job, g);
  const JobResult shuffled = run_job(job, permuted);
  ++report->checks;
  if (base.failed || shuffled.failed) {
    report->fail("relabeling", "job failed: " + job.cell_key() + ": " +
                                   (base.failed ? base.error : shuffled.error));
    return shuffled;
  }
  if (base.verdict != shuffled.verdict) {
    report->fail("relabeling",
                 "verdict changed under relabeling: " + job.cell_key());
  }
  if (base.num_parts != shuffled.num_parts) {
    char buf[64];
    std::snprintf(buf, sizeof buf, ": %u vs %u parts", base.num_parts,
                  shuffled.num_parts);
    report->fail("relabeling",
                 "partition cardinality changed under relabeling: " +
                     job.cell_key() + buf);
  }
  return shuffled;
}

void check_pipelining_dominance(const BatchResult& pipelined,
                                const BatchResult& unpipelined,
                                InvariantReport* report) {
  if (pipelined.jobs.size() != unpipelined.jobs.size()) {
    report->fail("pipelining", "job lists differ in size");
    return;
  }
  for (std::size_t j = 0; j < pipelined.jobs.size(); ++j) {
    const JobResult& p = pipelined.results[j];
    const JobResult& u = unpipelined.results[j];
    if (p.failed || u.failed) continue;
    ++report->checks;
    const std::string key = pipelined.jobs[j].cell_key();
    if (p.verdict != u.verdict) {
      report->fail("pipelining", "verdict differs: " + key);
    }
    if (p.num_parts != u.num_parts || p.cut_edges != u.cut_edges) {
      report->fail("pipelining", "partition differs: " + key);
    }
    if (p.rounds > u.rounds || p.messages > u.messages) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    ": rounds %llu vs %llu, messages %llu vs %llu",
                    static_cast<unsigned long long>(p.rounds),
                    static_cast<unsigned long long>(u.rounds),
                    static_cast<unsigned long long>(p.messages),
                    static_cast<unsigned long long>(u.messages));
      report->fail("pipelining",
                   "pipelined run costs more than unpipelined: " + key + buf);
    }
  }
}

}  // namespace cpt::scenario
