// Aggregation of batch results into a stable JSON/CSV schema.
//
// Jobs group by Job::cell_key() (instance label + tester + epsilon +
// mode markers); within a cell the instance and trial indices enumerate
// repetitions. Every aggregate field is a deterministic function of the
// job list and the simulated results (verdicts, rounds, messages, graph
// sizes) -- wall-clock lives in a separate timing report -- so the
// rendered aggregate JSON is bit-identical across batch --threads values
// (pinned by scenario_batch_test.cc).
//
// Quantiles are nearest-rank with midpoint rounding up over the sorted
// per-cell values: index(q) = floor(q * (count - 1) + 1/2) computed in
// integer arithmetic (quarters: (k*(count-1) + 2) / 4 for k = 0..4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/engine.h"

namespace cpt::scenario {

struct QuantileSummary {
  std::uint64_t min = 0, p25 = 0, p50 = 0, p75 = 0, max = 0;
};

QuantileSummary summarize(std::vector<std::uint64_t> values);

struct CellAggregate {
  std::string key;              // Job::cell_key()
  std::string scenario;         // instance label (family+params+perturb)
  std::string tester;
  double epsilon = 0.1;
  bool adaptive = false;
  bool randomized = false;
  std::uint32_t jobs = 0;       // instances x trials
  std::uint32_t instances = 0;  // distinct graphs
  std::uint32_t accepts = 0;
  std::uint32_t rejects = 0;
  double detection_rate = 0;    // rejects / jobs
  NodeId n_min = 0, n_max = 0;  // across the cell's instances
  EdgeId m_min = 0, m_max = 0;
  QuantileSummary rounds;
  QuantileSummary messages;
  // Summed job wall time. NOT rendered into the aggregate document (it is
  // schedule-dependent); render_timing_json reports it.
  double wall_seconds = 0;
};

// First-seen cell order (deterministic: expansion order).
std::vector<CellAggregate> aggregate_cells(const BatchResult& batch);

// The aggregate document. Schema documented in bench/README.md.
std::string render_aggregate_json(const Manifest& manifest,
                                  const BatchResult& batch,
                                  const std::vector<CellAggregate>& cells);

// One header line + one row per cell.
std::string render_aggregate_csv(const std::vector<CellAggregate>& cells);

// Wall-clock report (nondeterministic by nature; kept separate from the
// aggregate document).
std::string render_timing_json(const Manifest& manifest,
                               const BatchResult& batch,
                               const std::vector<CellAggregate>& cells);

}  // namespace cpt::scenario
