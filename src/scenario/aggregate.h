// Aggregation of batch results into a stable JSON/CSV schema.
//
// Jobs group by Job::cell_key() (instance label + tester + epsilon +
// mode markers); within a cell the instance and trial indices enumerate
// repetitions. Every aggregate field is a deterministic function of the
// job list and the simulated results (verdicts, rounds, messages, graph
// sizes) -- wall-clock lives in a separate timing report -- so the
// rendered aggregate JSON is bit-identical across batch --threads values
// (pinned by scenario_batch_test.cc).
//
// Quantiles are nearest-rank with midpoint rounding up over the sorted
// per-cell values: index(q) = floor(q * (count - 1) + 1/2) computed in
// integer arithmetic (quarters: (k*(count-1) + 2) / 4 for k = 0..4).
//
// Failed jobs (JobResult::failed) and timed-out jobs (JobResult::
// timed_out, the max_rounds guard) contribute to no cell; callers surface
// BatchResult::failed_jobs / timed_out_jobs (rendered as "failed_jobs" /
// "timed_out_jobs" when nonzero). A cancelled batch renders "partial":
// true plus "completed_jobs" so a truncated document can never pass for a
// finished sweep.
//
// Streaming: StreamingAggregator consumes (job, result) pairs in
// job-index order -- the engine's streaming sink order -- holding per-job
// values only for cells still accumulating. A cell is finalized the
// moment its last job arrives and (in first-seen cell order) handed to
// the cell sink, which renders one cpt_batch_aggregate_stream_v1 JSONL
// line; because expansion emits each cell's jobs contiguously, at most
// one cell is open at a time (two when a manifest repeats a cell key).
// The finalized cells are byte-identical to aggregate_cells() on a fully
// retained BatchResult -- aggregate_cells() IS this class fed in a loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "scenario/engine.h"

namespace cpt::scenario {

struct QuantileSummary {
  std::uint64_t min = 0, p25 = 0, p50 = 0, p75 = 0, max = 0;
};

QuantileSummary summarize(std::vector<std::uint64_t> values);

struct CellAggregate {
  std::string key;              // Job::cell_key()
  std::string scenario;         // instance label (family+params+perturb)
  std::string tester;
  double epsilon = 0.1;
  bool adaptive = false;
  bool randomized = false;
  std::uint32_t jobs = 0;       // instances x trials (failed jobs excluded)
  std::uint32_t instances = 0;  // distinct graphs
  std::uint32_t accepts = 0;
  std::uint32_t rejects = 0;
  double detection_rate = 0;    // rejects / jobs
  NodeId n_min = 0, n_max = 0;  // across the cell's instances
  EdgeId m_min = 0, m_max = 0;
  QuantileSummary rounds;
  QuantileSummary messages;
  // Summed job wall time. NOT rendered into the aggregate document (it is
  // schedule-dependent); render_timing_json reports it.
  double wall_seconds = 0;
};

class StreamingAggregator {
 public:
  // `jobs` is the full expanded job list: per-cell job counts are
  // precomputed from it so a cell finalizes exactly when its last job is
  // consumed.
  explicit StreamingAggregator(const std::vector<Job>& jobs);

  // Invoked once per completed cell, in first-seen (expansion) order.
  using CellSink = std::function<void(const CellAggregate&)>;
  void set_cell_sink(CellSink sink) { cell_sink_ = std::move(sink); }

  // Feed every (job, result) pair in job-index order. Safe to call from
  // the engine's streaming sink (already serialized).
  void consume(const Job& job, const JobResult& result);

  // Call after the last consume: defensively finalizes and flushes any
  // cell still open (can only happen if the constructor's job list and
  // the consumed stream diverge -- they must come from the same
  // expansion) so the sink always sees every cell. Returns the cells.
  const std::vector<CellAggregate>& finish();

  // The finalized cells in first-seen order (identical to
  // aggregate_cells()).
  const std::vector<CellAggregate>& cells() const { return cells_; }

  std::uint32_t consumed_jobs() const { return consumed_jobs_; }
  std::uint32_t failed_jobs() const { return failed_jobs_; }
  std::uint32_t timed_out_jobs() const { return timed_out_jobs_; }
  // High-water mark of cells holding live per-job value buffers.
  std::size_t peak_open_cells() const { return peak_open_cells_; }

 private:
  struct Accum {
    std::vector<std::uint64_t> rounds, messages;
    std::unordered_set<std::uint64_t> instance_hashes;
    bool open = false;   // accumulating (holds per-job buffers)
    bool done = false;   // finalized (buffers dropped, ready to flush)
  };

  void finalize(std::size_t index);

  std::unordered_map<std::string, std::uint32_t> expected_;  // key -> jobs
  std::unordered_map<std::string, std::uint32_t> consumed_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<CellAggregate> cells_;
  std::vector<Accum> accums_;
  std::size_t next_flush_ = 0;  // first-seen order flush cursor
  std::size_t open_cells_ = 0;
  std::size_t peak_open_cells_ = 0;
  std::uint32_t consumed_jobs_ = 0;
  std::uint32_t failed_jobs_ = 0;
  std::uint32_t timed_out_jobs_ = 0;
  CellSink cell_sink_;
};

// First-seen cell order (deterministic: expansion order). Requires a
// batch with retained results (non-streaming run_batch).
std::vector<CellAggregate> aggregate_cells(const BatchResult& batch);

// The aggregate document. Schema documented in bench/README.md.
std::string render_aggregate_json(const Manifest& manifest,
                                  const BatchResult& batch,
                                  const std::vector<CellAggregate>& cells);

// One header line + one row per cell.
std::string render_aggregate_csv(const std::vector<CellAggregate>& cells);

// Wall-clock report (nondeterministic by nature; kept separate from the
// aggregate document). When `metrics` is non-null its registry snapshot
// is embedded under a "metrics" key (same body as the cpt_metrics_v1
// document cpt_batch --metrics writes).
std::string render_timing_json(const Manifest& manifest,
                               const BatchResult& batch,
                               const std::vector<CellAggregate>& cells,
                               const util::MetricsRegistry* metrics = nullptr);

// ---- Streamed aggregate (JSONL, schema cpt_batch_aggregate_stream_v1) ----
// One header line, one line per finalized cell (same fields as the
// aggregate document's cells, in the same order), one footer line with the
// batch totals. Deterministic: bit-identical at every --threads value.
// Each returned string is one line including the trailing newline.
std::string render_stream_header(const Manifest& manifest, std::size_t jobs);
std::string render_stream_cell(const CellAggregate& cell);
std::string render_stream_footer(const BatchResult& batch, std::size_t cells);

}  // namespace cpt::scenario
