#include "scenario/manifest.h"

#include <cstdio>

#include "scenario/json.h"

namespace cpt::scenario {

const char* tester_name(TesterKind k) {
  switch (k) {
    case TesterKind::kPlanarity: return "planarity";
    case TesterKind::kCycleFree: return "cycle_free";
    case TesterKind::kBipartite: return "bipartite";
    case TesterKind::kStage1Partition: return "stage1_partition";
    case TesterKind::kRandomPartition: return "random_partition";
  }
  return "?";
}

bool parse_tester(std::string_view name, TesterKind* out) {
  if (name == "planarity") { *out = TesterKind::kPlanarity; return true; }
  if (name == "cycle_free") { *out = TesterKind::kCycleFree; return true; }
  if (name == "bipartite") { *out = TesterKind::kBipartite; return true; }
  if (name == "stage1_partition") {
    *out = TesterKind::kStage1Partition;
    return true;
  }
  if (name == "random_partition") {
    *out = TesterKind::kRandomPartition;
    return true;
  }
  return false;
}

std::string Job::cell_key() const {
  std::string key = instance.label();
  key += '|';
  key += tester_name(tester);
  char buf[48];
  std::snprintf(buf, sizeof buf, "|eps=%.17g", epsilon);
  key += buf;
  if (adaptive) key += "|adaptive";
  if (!pipelined) key += "|unpipelined";
  if (randomized) {
    std::snprintf(buf, sizeof buf, "|rand,delta=%.17g", delta);
    key += buf;
  }
  if (tester == TesterKind::kRandomPartition) {
    std::snprintf(buf, sizeof buf, "|delta=%.17g", delta);
    key += buf;
  }
  if (max_rounds != 0) {
    std::snprintf(buf, sizeof buf, "|maxr=%llu",
                  static_cast<unsigned long long>(max_rounds));
    key += buf;
  }
  return key;
}

std::uint64_t derive_tester_seed(std::uint64_t instance_seed,
                                 std::uint32_t trial) {
  // Same mixing discipline as derive_instance_seed: each injection lands
  // on a fully mixed state.
  std::uint64_t s = 0x545354445f435054ULL;  // "TSTD_CPT": domain separator
  s ^= instance_seed;
  s = splitmix64(s);
  s ^= trial;
  return splitmix64(s);
}

namespace {

struct ParseCtx {
  std::string* error;
  bool fail(const std::string& msg) {
    if (error != nullptr && error->empty()) *error = msg;
    return false;
  }
};

bool json_to_param(const JsonValue& v, ParamValue* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNumber:
      *out = v.is_integer() ? ParamValue::of_int(v.as_int64())
                            : ParamValue::of_double(v.as_double());
      return true;
    case JsonValue::Kind::kString:
      *out = ParamValue::of_string(v.as_string());
      return true;
    case JsonValue::Kind::kBool:
      *out = ParamValue::of_int(v.as_bool() ? 1 : 0);
      return true;
    default:
      return false;
  }
}

// A params-like object: scalars land in `fixed`, arrays become sweep axes
// (declaration order). `allowed_keys` is the comma-separated key list the
// named family/preset/perturbation accepts -- anything else (a typo, a
// knob from another family) is a hard error, never a silent default.
bool parse_param_block(ParseCtx& ctx, const JsonValue& obj, bool for_perturb,
                       const char* allowed_keys, const char* owner,
                       ScenarioParams* fixed, std::vector<SweepAxis>* axes,
                       const std::string& where) {
  if (!obj.is_object()) return ctx.fail(where + " must be an object");
  for (const auto& [key, value] : obj.members()) {
    if (for_perturb && key == "kind") continue;
    if (!param_key_allowed(allowed_keys, key)) {
      return ctx.fail(where + "." + key + ": unknown param for \"" +
                      owner + "\" (accepted: " + allowed_keys + ")");
    }
    if (value.is_array()) {
      SweepAxis axis;
      axis.key = key;
      axis.for_perturb = for_perturb;
      if (value.items().empty()) {
        return ctx.fail(where + "." + key + ": empty sweep axis");
      }
      for (const JsonValue& item : value.items()) {
        ParamValue pv;
        if (!json_to_param(item, &pv)) {
          return ctx.fail(where + "." + key + ": unsupported value type");
        }
        axis.values.push_back(std::move(pv));
      }
      axes->push_back(std::move(axis));
    } else {
      ParamValue pv;
      if (!json_to_param(value, &pv)) {
        return ctx.fail(where + "." + key + ": unsupported value type");
      }
      fixed->set(key, std::move(pv));
    }
  }
  return true;
}

bool parse_epsilons(ParseCtx& ctx, const JsonValue& v,
                    std::vector<double>* out) {
  out->clear();
  if (v.is_number()) {
    out->push_back(v.as_double());
    return true;
  }
  if (v.is_array() && !v.items().empty()) {
    for (const JsonValue& item : v.items()) {
      if (!item.is_number()) return ctx.fail("epsilon: expected numbers");
      out->push_back(item.as_double());
    }
    return true;
  }
  return ctx.fail("epsilon: expected a number or non-empty array");
}

bool parse_testers(ParseCtx& ctx, const JsonValue& v,
                   std::vector<TesterKind>* out) {
  out->clear();
  const auto one = [&](const JsonValue& item) {
    TesterKind k;
    if (!item.is_string() || !parse_tester(item.as_string(), &k)) {
      return ctx.fail("tester: unknown tester \"" +
                      (item.is_string() ? item.as_string() : "<non-string>") +
                      "\" (planarity | cycle_free | bipartite | "
                      "stage1_partition | random_partition)");
    }
    out->push_back(k);
    return true;
  };
  if (v.is_string()) return one(v);
  if (v.is_array() && !v.items().empty()) {
    for (const JsonValue& item : v.items()) {
      if (!one(item)) return false;
    }
    return true;
  }
  return ctx.fail("tester: expected a name or non-empty array");
}

// Scalar cell fields, with `defaults` as fallback.
const JsonValue* cell_field(const JsonValue& cell, const JsonValue* defaults,
                            std::string_view key) {
  if (const JsonValue* v = cell.find(key)) return v;
  return defaults != nullptr ? defaults->find(key) : nullptr;
}

bool get_u32(ParseCtx& ctx, const JsonValue* v, std::uint32_t lo,
             std::uint32_t hi, std::uint32_t* out, const char* what) {
  if (v == nullptr) return true;  // keep default
  if (!v->is_integer() || v->as_int64() < lo || v->as_int64() > hi) {
    return ctx.fail(std::string(what) + ": expected an integer in [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  *out = static_cast<std::uint32_t>(v->as_int64());
  return true;
}

bool get_bool(ParseCtx& ctx, const JsonValue* v, bool* out, const char* what) {
  if (v == nullptr) return true;
  if (!v->is_bool()) return ctx.fail(std::string(what) + ": expected a bool");
  *out = v->as_bool();
  return true;
}

// Keys a cell object may carry ("scenario"/"family" + sweep blocks + the
// scalar fields); "defaults" accepts the scalar fields only.
constexpr const char* kCellScalarKeys =
    "epsilon,tester,instances,trials,sim_threads,adaptive,randomized,"
    "pipelined,delta,alpha,max_rounds";
constexpr const char* kCellKeys =
    "scenario,family,params,perturb,epsilon,tester,instances,trials,"
    "sim_threads,adaptive,randomized,pipelined,delta,alpha,max_rounds";

bool check_known_keys(ParseCtx& ctx, const JsonValue& obj, const char* allowed,
                      const std::string& where) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (!param_key_allowed(allowed, key)) {
      return ctx.fail(where + ": unknown key \"" + key + "\" (accepted: " +
                      allowed + ")");
    }
  }
  return true;
}

bool parse_cell(ParseCtx& ctx, const JsonValue& cv, const JsonValue* defaults,
                ManifestCell* cell) {
  if (!cv.is_object()) return ctx.fail("cells[]: expected objects");
  if (!check_known_keys(ctx, cv, kCellKeys, "cells[]")) return false;
  const JsonValue* scenario = cv.find("scenario");
  if (scenario == nullptr) scenario = cv.find("family");  // accepted alias
  if (scenario == nullptr || !scenario->is_string()) {
    return ctx.fail("cells[]: missing \"scenario\" name");
  }
  cell->scenario = scenario->as_string();
  if (!is_known_scenario(cell->scenario)) {
    return ctx.fail("unknown scenario \"" + cell->scenario + "\"");
  }
  if (const JsonValue* params = cv.find("params")) {
    if (!parse_param_block(ctx, *params, false,
                           scenario_param_keys(cell->scenario),
                           cell->scenario.c_str(), &cell->fixed_params,
                           &cell->axes, "params")) {
      return false;
    }
  }
  if (const JsonValue* perturb = cv.find("perturb")) {
    if (!perturb->is_object()) return ctx.fail("perturb must be an object");
    const JsonValue* kind = perturb->find("kind");
    const PerturbInfo* info =
        kind != nullptr && kind->is_string()
            ? find_perturbation(kind->as_string())
            : nullptr;
    if (info == nullptr) {
      return ctx.fail("perturb.kind: unknown perturbation");
    }
    if (find_preset(cell->scenario) != nullptr) {
      return ctx.fail("perturb cannot be combined with preset \"" +
                      cell->scenario + "\" (presets fix their perturbation)");
    }
    cell->perturb = kind->as_string();
    if (!parse_param_block(ctx, *perturb, true, info->param_keys, info->name,
                           &cell->fixed_perturb_params, &cell->axes,
                           "perturb")) {
      return false;
    }
  }

  cell->epsilons = {0.1};
  if (const JsonValue* eps = cell_field(cv, defaults, "epsilon")) {
    if (!parse_epsilons(ctx, *eps, &cell->epsilons)) return false;
  }
  cell->testers = {TesterKind::kPlanarity};
  if (const JsonValue* tester = cell_field(cv, defaults, "tester")) {
    if (!parse_testers(ctx, *tester, &cell->testers)) return false;
  }
  std::uint32_t threads = 1;
  if (!get_u32(ctx, cell_field(cv, defaults, "instances"), 1, 1u << 20,
               &cell->instances, "instances") ||
      !get_u32(ctx, cell_field(cv, defaults, "trials"), 1, 1u << 20,
               &cell->trials, "trials") ||
      !get_u32(ctx, cell_field(cv, defaults, "sim_threads"), 1, 32, &threads,
               "sim_threads") ||
      !get_u32(ctx, cell_field(cv, defaults, "alpha"), 1, 64, &cell->alpha,
               "alpha") ||
      !get_bool(ctx, cell_field(cv, defaults, "adaptive"), &cell->adaptive,
                "adaptive") ||
      !get_bool(ctx, cell_field(cv, defaults, "randomized"), &cell->randomized,
                "randomized") ||
      !get_bool(ctx, cell_field(cv, defaults, "pipelined"), &cell->pipelined,
                "pipelined")) {
    return false;
  }
  cell->sim_threads = threads;
  if (const JsonValue* mr = cell_field(cv, defaults, "max_rounds")) {
    if (!mr->is_integer() || mr->as_int64() < 0) {
      return ctx.fail("max_rounds: expected a non-negative integer");
    }
    cell->max_rounds = static_cast<std::uint64_t>(mr->as_int64());
  }
  if (const JsonValue* delta = cell_field(cv, defaults, "delta")) {
    if (!delta->is_number()) return ctx.fail("delta: expected a number");
    cell->delta = delta->as_double();
  }
  return true;
}

}  // namespace

bool parse_manifest(std::string_view json_text, Manifest* out,
                    std::string* error) {
  *out = Manifest{};
  ParseCtx ctx{error};
  JsonValue doc;
  if (!JsonValue::parse(json_text, &doc, error)) return false;
  if (!doc.is_object()) return ctx.fail("manifest must be a JSON object");
  if (!check_known_keys(ctx, doc, "name,base_seed,defaults,cells",
                        "manifest")) {
    return false;
  }
  if (const JsonValue* name = doc.find("name")) {
    if (!name->is_string()) return ctx.fail("name: expected a string");
    out->name = name->as_string();
  }
  if (const JsonValue* seed = doc.find("base_seed")) {
    if (!seed->is_integer() || seed->as_int64() < 0) {
      return ctx.fail("base_seed: expected a non-negative integer");
    }
    out->base_seed = static_cast<std::uint64_t>(seed->as_int64());
  }
  const JsonValue* defaults = doc.find("defaults");
  if (defaults != nullptr && !defaults->is_object()) {
    return ctx.fail("defaults: expected an object");
  }
  if (defaults != nullptr &&
      !check_known_keys(ctx, *defaults, kCellScalarKeys, "defaults")) {
    return false;
  }
  const JsonValue* cells = doc.find("cells");
  if (cells == nullptr || !cells->is_array() || cells->items().empty()) {
    return ctx.fail("cells: expected a non-empty array");
  }
  for (const JsonValue& cv : cells->items()) {
    ManifestCell cell;
    if (!parse_cell(ctx, cv, defaults, &cell)) return false;
    out->cells.push_back(std::move(cell));
  }
  return true;
}

bool load_manifest_file(const std::string& path, Manifest* out,
                        std::string* error) {
  std::string text;
  if (!read_text_file(path, &text)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  if (!parse_manifest(text, out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

namespace {

// Recursively walks the cell's sweep axes (declaration order), then the
// epsilon / tester / instance / trial loops innermost.
void expand_axes(const Manifest& m, std::uint32_t cell_index,
                 const ManifestCell& cell, std::size_t axis,
                 ScenarioParams& params, ScenarioParams& perturb_params,
                 std::vector<Job>* out) {
  if (axis < cell.axes.size()) {
    const SweepAxis& ax = cell.axes[axis];
    ScenarioParams& target = ax.for_perturb ? perturb_params : params;
    for (const ParamValue& v : ax.values) {
      target.set(ax.key, v);
      expand_axes(m, cell_index, cell, axis + 1, params, perturb_params, out);
    }
    return;
  }
  for (const double eps : cell.epsilons) {
    for (const TesterKind tester : cell.testers) {
      for (std::uint32_t inst = 0; inst < cell.instances; ++inst) {
        // The seed covers family + family params + index only (see
        // resolve_scenario): a perturbation axis sweeps one fixed base
        // graph, and the shared Rng makes e.g. extra=[40, 90] nested --
        // the 90-edge noise extends the 40-edge noise.
        ScenarioInstance instance =
            resolve_scenario(cell.scenario, params, m.base_seed, inst);
        if (!cell.perturb.empty()) {
          instance.perturb = cell.perturb;
          instance.perturb_params = perturb_params;
        }
        for (std::uint32_t trial = 0; trial < cell.trials; ++trial) {
          Job job;
          job.job_index = static_cast<std::uint32_t>(out->size());
          job.cell_index = cell_index;
          job.instance = instance;
          job.instance_index = inst;
          job.trial = trial;
          job.tester = tester;
          job.epsilon = eps;
          job.adaptive = cell.adaptive;
          job.randomized = cell.randomized;
          job.pipelined = cell.pipelined;
          job.delta = cell.delta;
          job.alpha = cell.alpha;
          job.sim_threads = cell.sim_threads;
          job.max_rounds = cell.max_rounds;
          job.tester_seed = derive_tester_seed(instance.seed, trial);
          out->push_back(std::move(job));
        }
      }
    }
  }
}

}  // namespace

std::vector<Job> expand_manifest(const Manifest& m) {
  std::vector<Job> jobs;
  for (std::uint32_t c = 0; c < m.cells.size(); ++c) {
    const ManifestCell& cell = m.cells[c];
    ScenarioParams params = cell.fixed_params;
    ScenarioParams perturb_params = cell.fixed_perturb_params;
    expand_axes(m, c, cell, 0, params, perturb_params, &jobs);
  }
  return jobs;
}

}  // namespace cpt::scenario
