#include "scenario/corpus.h"

#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <vector>

#include "scenario/faultinject.h"

namespace cpt::scenario {

namespace {

constexpr std::uint32_t kMagic = 0x43545043;  // 'CPTC'
// v2 appended the payload checksum; v1 files (no checksum) are treated as
// corrupt and regenerated -- the corpus is a cache, never a source of
// truth.
constexpr std::uint32_t kVersion = 2;

bool read_u32(std::FILE* f, std::uint32_t* out) {
  unsigned char b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  *out = static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
  return true;
}

bool write_u32(std::FILE* f, std::uint32_t v) {
  const unsigned char b[4] = {
      static_cast<unsigned char>(v & 0xff),
      static_cast<unsigned char>((v >> 8) & 0xff),
      static_cast<unsigned char>((v >> 16) & 0xff),
      static_cast<unsigned char>((v >> 24) & 0xff),
  };
  return std::fwrite(b, 1, 4, f) == 4;
}

// FNV-1a-64 folded over a payload u32 (byte order matches the file).
std::uint64_t checksum_step(std::uint64_t h, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ULL;

// Loader-side allocation guard (GraphBuilder allocates O(n) before the
// checksum can vouch for n). save() declines to cache anything bigger, so
// a legitimate over-cap graph is simply never cached rather than being
// re-flagged corrupt on every later run.
constexpr std::uint32_t kMaxCachedNodes = 1u << 27;

}  // namespace

CorpusStore::CorpusStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  // Sweep orphaned save temporaries: a process killed between fopen and
  // rename leaves <hash>.cpg.tmp behind. They are never loaded (load()
  // only opens final names), but without the sweep every crash leaks one
  // file into the corpus forever.
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;  // created later on first save
  while (const dirent* entry = ::readdir(d)) {
    const std::size_t len = std::strlen(entry->d_name);
    constexpr const char* kSuffix = ".cpg.tmp";
    constexpr std::size_t kSuffixLen = 8;
    if (len <= kSuffixLen ||
        std::strcmp(entry->d_name + (len - kSuffixLen), kSuffix) != 0) {
      continue;
    }
    const std::string orphan = dir_ + "/" + entry->d_name;
    std::remove(orphan.c_str());
  }
  ::closedir(d);
}

std::string CorpusStore::path_for(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.cpg",
                static_cast<unsigned long long>(hash));
  return dir_ + "/" + name;
}

CorpusStore::LoadStatus CorpusStore::load(std::uint64_t hash,
                                          Graph* out) const {
  if (!enabled()) return LoadStatus::kMiss;
  const std::string path = path_for(hash);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return LoadStatus::kMiss;
  // Injected read faults: corrupt-on-read exercises the regenerate path
  // without touching the file; throw/badalloc surface as transient
  // materialization failures.
  const FaultAction fault = fault_check(FaultSite::kCorpusLoad, hash);
  if (fault == FaultAction::kCorrupt) {
    std::fclose(f);
    std::fprintf(stderr,
                 "warning: corpus file %s is truncated or corrupt; "
                 "regenerating the instance\n",
                 path.c_str());
    return LoadStatus::kCorrupt;
  }
  if (fault != FaultAction::kNone) {
    std::fclose(f);
    fault_raise(fault, FaultSite::kCorpusLoad, hash);
  }
  std::uint32_t magic = 0, version = 0, n = 0, m = 0;
  bool ok = read_u32(f, &magic) && read_u32(f, &version) && read_u32(f, &n) &&
            read_u32(f, &m) && magic == kMagic && version == kVersion;
  // Before trusting n (GraphBuilder allocates per-node arrays) and m,
  // cross-check the exact file size a well-formed record implies: header +
  // m endpoint pairs + checksum. Catches truncation, garbled counts and
  // appended junk without touching memory proportional to the lie.
  if (ok) {
    const long expected = 16L + 8L * static_cast<long>(m) + 8L;
    ok = n <= kMaxCachedNodes &&
         std::fseek(f, 0, SEEK_END) == 0 && std::ftell(f) == expected &&
         std::fseek(f, 16, SEEK_SET) == 0;
  }
  if (ok) {
    std::uint64_t sum = checksum_step(checksum_step(kChecksumSeed, n), m);
    GraphBuilder b(n);
    for (std::uint32_t e = 0; e < m && ok; ++e) {
      std::uint32_t u = 0, v = 0;
      ok = read_u32(f, &u) && read_u32(f, &v) && u < n && v < n && u != v;
      if (ok) {
        sum = checksum_step(checksum_step(sum, u), v);
        b.add_edge(u, v);
      }
    }
    std::uint32_t sum_lo = 0, sum_hi = 0;
    ok = ok && read_u32(f, &sum_lo) && read_u32(f, &sum_hi) &&
         ((static_cast<std::uint64_t>(sum_hi) << 32) | sum_lo) == sum;
    // Anything after the checksum means the writer and reader disagree
    // about the record: don't trust it.
    ok = ok && std::fgetc(f) == EOF;
    if (ok) *out = std::move(b).build();
  }
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr,
                 "warning: corpus file %s is truncated or corrupt; "
                 "regenerating the instance\n",
                 path.c_str());
    return LoadStatus::kCorrupt;
  }
  return LoadStatus::kHit;
}

bool CorpusStore::save(std::uint64_t hash, const Graph& g) const {
  if (!enabled() || g.num_nodes() > kMaxCachedNodes) return false;
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; failures surface at fopen
  // Write to a temp name then rename: a batch killed mid-save must not
  // leave a truncated file a later run would trust.
  const std::string final_path = path_for(hash);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  // Injected save faults: shortwrite abandons a half-written temp file
  // *without* cleaning it up (the constructor's orphan sweep is the test
  // subject); exit kills the process mid-save the same way.
  const FaultAction fault = fault_check(FaultSite::kCorpusSave, hash);
  if (fault == FaultAction::kShortWrite || fault == FaultAction::kExit) {
    write_u32(f, kMagic);
    write_u32(f, kVersion);
    std::fflush(f);
    if (fault == FaultAction::kExit) ::_exit(kFaultExitCode);
    std::fclose(f);
    return false;
  }
  if (fault != FaultAction::kNone) {
    std::fclose(f);
    std::remove(tmp_path.c_str());
    fault_raise(fault, FaultSite::kCorpusSave, hash);
  }
  bool ok = write_u32(f, kMagic) && write_u32(f, kVersion) &&
            write_u32(f, g.num_nodes()) && write_u32(f, g.num_edges());
  std::uint64_t sum = checksum_step(
      checksum_step(kChecksumSeed, g.num_nodes()), g.num_edges());
  for (EdgeId e = 0; ok && e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    ok = write_u32(f, ep.u) && write_u32(f, ep.v);
    sum = checksum_step(checksum_step(sum, ep.u), ep.v);
  }
  ok = ok && write_u32(f, static_cast<std::uint32_t>(sum)) &&
       write_u32(f, static_cast<std::uint32_t>(sum >> 32));
  // fsync before the rename: rename() orders metadata, not data -- without
  // it a power cut can leave a fully *named* file with unwritten contents,
  // which the checksum would then reject on every later run.
  ok = ok && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (ok) ok = std::rename(tmp_path.c_str(), final_path.c_str()) == 0;
  if (!ok) std::remove(tmp_path.c_str());
  return ok;
}

}  // namespace cpt::scenario
