#include "scenario/corpus.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "scenario/faultinject.h"
#include "util/fsio.h"

namespace cpt::scenario {

namespace {

// The v3 sections are the in-memory arrays written verbatim; the format is
// little-endian by fiat (every platform this repo targets is).
static_assert(std::endian::native == std::endian::little,
              "corpus v3 serializes CSR arrays verbatim (little-endian)");
static_assert(sizeof(Arc) == 12 && alignof(Arc) == 4);
static_assert(sizeof(Endpoints) == 8 && alignof(Endpoints) == 4);

constexpr std::uint32_t kMagic = 0x43545043;  // 'CPTC'
constexpr std::uint32_t kVersionV2 = 2;
constexpr std::uint32_t kVersionV3 = 3;

// ---- v3 layout ------------------------------------------------------------
//
// [ 0, 64)  header: magic u32, version u32, n u64, m u64, payload checksum
//           u64 (FNV-1a-64 over bytes [64, file_size)), header checksum
//           u64 (FNV-1a-64 over bytes [0, 32)), then zero padding.
// [64, ...) sections, each 64-byte aligned, gaps zero-filled:
//           offsets  (n+1) x u32
//           arcs     2m x 12-byte Arc (peer_arc prefilled)
//           edges    m x 8-byte Endpoints
constexpr std::uint64_t kHeaderBytes = 64;
constexpr std::uint64_t kHeaderChecksumOff = 32;
// n+1 must fit offsets entries and NodeId; 2m must fit the u32 arc indices
// CSR offsets and Arc::peer_arc hold.
constexpr std::uint64_t kMaxNodesV3 = 0xFFFFFFFEULL;
constexpr std::uint64_t kMaxEdgesV3 = 0x7FFFFFFFULL;
// Payload checksums are verified in full below this size (and always under
// CPT_CORPUS_VERIFY=full); larger files are admitted on the header +
// exact-size cross-check so a multi-GB hit stays zero-copy.
constexpr std::uint64_t kFullVerifyBytes = 64ULL << 20;

constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t align64(std::uint64_t off) { return (off + 63) & ~63ULL; }

struct LayoutV3 {
  std::uint64_t offsets_off = kHeaderBytes;
  std::uint64_t arcs_off = 0;
  std::uint64_t edges_off = 0;
  std::uint64_t file_size = 0;
};

// All arithmetic in u64 from untrusted counts; the limits bound every term
// far below wrap-around, so a forged header cannot alias a small file size.
bool compute_layout_v3(std::uint64_t n, std::uint64_t m, LayoutV3* out) {
  if (n > kMaxNodesV3 || m > kMaxEdgesV3) return false;
  out->arcs_off = align64(kHeaderBytes + 4 * (n + 1));
  out->edges_off = align64(out->arcs_off + 2 * m * sizeof(Arc));
  out->file_size = out->edges_off + m * sizeof(Endpoints);
  return true;
}

void store_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void store_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

enum class VerifyMode { kAuto, kFull, kSizeOnly };

VerifyMode verify_mode() {
  const char* env = std::getenv("CPT_CORPUS_VERIFY");
  if (env == nullptr) return VerifyMode::kAuto;
  if (std::strcmp(env, "full") == 0) return VerifyMode::kFull;
  if (std::strcmp(env, "size") == 0) return VerifyMode::kSizeOnly;
  return VerifyMode::kAuto;
}

// Keep-alive handle a mapped Graph view carries: unmapping happens when
// the last copy of the view dies.
struct Mapping {
  void* base = MAP_FAILED;
  std::size_t len = 0;
  ~Mapping() {
    if (base != MAP_FAILED) ::munmap(base, len);
  }
};

// Folds the payload checksum over a mapped range in windows, releasing
// each window afterwards so verifying a large file never holds more than
// one window resident.
std::uint64_t checksum_range_windowed(unsigned char* base, std::uint64_t lo,
                                      std::uint64_t hi, bool release) {
  constexpr std::uint64_t kWindow = 8ULL << 20;
  std::uint64_t sum = kChecksumSeed;
  for (std::uint64_t off = lo; off < hi; off += kWindow) {
    const std::uint64_t end = std::min(hi, off + kWindow);
    sum = fnv_bytes(sum, base + off, end - off);
    if (release) {
      const std::uint64_t page_lo = off & ~4095ULL;
      const std::uint64_t page_hi = end & ~4095ULL;
      if (page_hi > page_lo) {
        ::madvise(base + page_lo, page_hi - page_lo, MADV_DONTNEED);
      }
    }
  }
  return sum;
}

void fill_header_v3(unsigned char* h, std::uint64_t n, std::uint64_t m,
                    std::uint64_t payload_sum) {
  std::memset(h, 0, kHeaderBytes);
  store_u32(h + 0, kMagic);
  store_u32(h + 4, kVersionV3);
  store_u64(h + 8, n);
  store_u64(h + 16, m);
  store_u64(h + 24, payload_sum);
  store_u64(h + kHeaderChecksumOff,
            fnv_bytes(kChecksumSeed, h, kHeaderChecksumOff));
}

// ---- v2 compatibility ------------------------------------------------------

bool read_u32_f(std::FILE* f, std::uint32_t* out) {
  unsigned char b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  *out = load_u32(b);
  return true;
}

bool write_u32_f(std::FILE* f, std::uint32_t v) {
  unsigned char b[4];
  store_u32(b, v);
  return std::fwrite(b, 1, 4, f) == 4;
}

// FNV-1a-64 folded over a payload u32 (byte order matches the file).
std::uint64_t checksum_step(std::uint64_t h, std::uint32_t v) {
  unsigned char b[4];
  store_u32(b, v);
  return fnv_bytes(h, b, 4);
}

// v2 loader-side allocation guard: the GraphBuilder replay allocates O(n)
// before the trailing checksum can vouch for n, so legacy files keep the
// historical cap. v3 has no such window (the header is checksummed and the
// graph is mapped, not allocated).
constexpr std::uint32_t kMaxCachedNodesV2 = 1u << 27;

// Reads the rest of a v2 file (the FILE* is positioned after magic +
// version) and rebuilds the graph through GraphBuilder.
bool load_v2_body(std::FILE* f, std::uint64_t file_size, Graph* out) {
  std::uint32_t n = 0, m = 0;
  if (!read_u32_f(f, &n) || !read_u32_f(f, &m)) return false;
  // Cross-check the exact file size a well-formed record implies (header +
  // m endpoint pairs + checksum) before trusting n and m. u64 arithmetic:
  // the worst-case forged m (2^32 - 1) stays far below wrap-around, so the
  // comparison cannot be aliased by an overflowed product.
  const std::uint64_t expected =
      16ULL + 8ULL * static_cast<std::uint64_t>(m) + 8ULL;
  if (n > kMaxCachedNodesV2 || file_size != expected) return false;
  std::uint64_t sum = checksum_step(checksum_step(kChecksumSeed, n), m);
  GraphBuilder b(n);
  for (std::uint32_t e = 0; e < m; ++e) {
    std::uint32_t u = 0, v = 0;
    if (!read_u32_f(f, &u) || !read_u32_f(f, &v) || u >= n || v >= n || u == v) {
      return false;
    }
    sum = checksum_step(checksum_step(sum, u), v);
    b.add_edge(u, v);
  }
  std::uint32_t sum_lo = 0, sum_hi = 0;
  if (!read_u32_f(f, &sum_lo) || !read_u32_f(f, &sum_hi) ||
      ((static_cast<std::uint64_t>(sum_hi) << 32) | sum_lo) != sum) {
    return false;
  }
  // Anything after the checksum means the writer and reader disagree about
  // the record: don't trust it.
  if (std::fgetc(f) != EOF) return false;
  *out = std::move(b).build();
  return true;
}

// ---- v3 loading ------------------------------------------------------------

// Validates and maps a v3 file; the fd stays owned by the caller.
bool load_v3_mapped(int fd, std::uint64_t file_size, Graph* out) {
  if (file_size < kHeaderBytes) return false;
  auto mapping = std::make_shared<Mapping>();
  mapping->len = static_cast<std::size_t>(file_size);
  mapping->base =
      ::mmap(nullptr, mapping->len, PROT_READ, MAP_SHARED, fd, 0);
  if (mapping->base == MAP_FAILED) return false;
  auto* bytes = static_cast<unsigned char*>(mapping->base);

  if (load_u64(bytes + kHeaderChecksumOff) !=
      fnv_bytes(kChecksumSeed, bytes, kHeaderChecksumOff)) {
    return false;
  }
  for (std::uint64_t i = kHeaderChecksumOff + 8; i < kHeaderBytes; ++i) {
    if (bytes[i] != 0) return false;
  }
  const std::uint64_t n = load_u64(bytes + 8);
  const std::uint64_t m = load_u64(bytes + 16);
  LayoutV3 layout;
  if (!compute_layout_v3(n, m, &layout) || layout.file_size != file_size) {
    return false;
  }

  const VerifyMode mode = verify_mode();
  const bool verify_payload =
      mode == VerifyMode::kFull ||
      (mode == VerifyMode::kAuto && file_size <= kFullVerifyBytes);
  if (verify_payload) {
    const std::uint64_t sum = checksum_range_windowed(
        bytes, kHeaderBytes, file_size, file_size > kFullVerifyBytes);
    if (sum != load_u64(bytes + 24)) return false;
  }

  const auto* offsets =
      reinterpret_cast<const std::uint32_t*>(bytes + layout.offsets_off);
  const auto* arcs = reinterpret_cast<const Arc*>(bytes + layout.arcs_off);
  const auto* edges =
      reinterpret_cast<const Endpoints*>(bytes + layout.edges_off);
  // O(1) structural anchors (the checksum, when verified, vouches for the
  // rest; these also catch a header-only forgery in size-only mode).
  if (offsets[0] != 0 || offsets[n] != 2 * m) return false;

  *out = Graph::from_csr(
      {offsets, static_cast<std::size_t>(n) + 1},
      {arcs, static_cast<std::size_t>(2 * m)},
      {edges, static_cast<std::size_t>(m)}, std::move(mapping));
  return true;
}

}  // namespace

CorpusStore::CorpusStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  // Sweep orphaned save temporaries: a process killed between fopen and
  // rename leaves <hash>.cpg.tmp.<pid>.<n> behind (unique_tmp_path names;
  // the bare <hash>.cpg.tmp spelling predates it and is swept too). They
  // are never loaded (load() only opens final names), but without the
  // sweep every crash leaks one file into the corpus forever.
  // sweepable_tmp keeps temps whose owning pid is still alive -- another
  // process (or thread) may be mid-save in a shared directory, and
  // unlinking its temp out from under the rename would fail that save.
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;  // created later on first save
  while (const dirent* entry = ::readdir(d)) {
    if (!sweepable_tmp(entry->d_name, ".cpg.tmp")) continue;
    const std::string orphan = dir_ + "/" + entry->d_name;
    std::remove(orphan.c_str());
  }
  ::closedir(d);
}

std::string CorpusStore::path_for(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.cpg",
                static_cast<unsigned long long>(hash));
  return dir_ + "/" + name;
}

CorpusStore::LoadStatus CorpusStore::load(std::uint64_t hash,
                                          Graph* out) const {
  if (!enabled()) return LoadStatus::kMiss;
  const std::string path = path_for(hash);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return LoadStatus::kMiss;
  const auto corrupt = [&](bool close_fd) {
    if (close_fd) ::close(fd);
    std::fprintf(stderr,
                 "warning: corpus file %s is truncated or corrupt; "
                 "regenerating the instance\n",
                 path.c_str());
    return LoadStatus::kCorrupt;
  };
  // Injected read faults: corrupt-on-read exercises the regenerate path
  // without touching the file; throw/badalloc surface as transient
  // materialization failures.
  const FaultAction fault = fault_check(FaultSite::kCorpusLoad, hash);
  if (fault == FaultAction::kCorrupt) return corrupt(true);
  if (fault != FaultAction::kNone) {
    ::close(fd);
    fault_raise(fault, FaultSite::kCorpusLoad, hash);
  }

  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 8) return corrupt(true);
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  unsigned char head[8];
  if (::pread(fd, head, 8, 0) != 8) return corrupt(true);
  const std::uint32_t magic = load_u32(head);
  const std::uint32_t version = load_u32(head + 4);
  if (magic != kMagic) return corrupt(true);

  if (version == kVersionV3) {
    const bool ok = load_v3_mapped(fd, file_size, out);
    ::close(fd);  // the mapping survives the close
    return ok ? LoadStatus::kHit : corrupt(false);
  }
  if (version == kVersionV2) {
    // Legacy format: GraphBuilder replay, then transparent migration --
    // re-save as v3 (best effort) so the next load is a zero-copy map.
    std::FILE* f = ::fdopen(fd, "rb");
    if (f == nullptr) return corrupt(true);
    bool ok = std::fseek(f, 8, SEEK_SET) == 0 &&
              load_v2_body(f, file_size, out);
    std::fclose(f);  // closes fd
    if (!ok) return corrupt(false);
    save(hash, *out);
    return LoadStatus::kHit;
  }
  return corrupt(true);
}

bool CorpusStore::save(std::uint64_t hash, const Graph& g) const {
  if (!enabled()) return false;
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  LayoutV3 layout;
  if (!compute_layout_v3(n, m, &layout)) return false;
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; failures surface at fopen
  // Write to a writer-unique temp name then rename: a batch killed
  // mid-save must not leave a truncated file a later run would trust, and
  // two concurrent writers of the same instance (daemon + CLI, or two
  // batch workers in different processes) must not share a temp file --
  // with a fixed name, one writer's rename can publish the other's
  // half-written bytes. Concurrent renames of complete files are fine:
  // both wrote identical bytes (saves are deterministic), last one wins.
  const std::string final_path = path_for(hash);
  const std::string tmp_path = unique_tmp_path(final_path);
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  // Injected save faults: shortwrite abandons a half-written temp file
  // *without* cleaning it up (the constructor's orphan sweep is the test
  // subject); exit kills the process mid-save the same way.
  const FaultAction fault = fault_check(FaultSite::kCorpusSave, hash);
  if (fault == FaultAction::kShortWrite || fault == FaultAction::kExit) {
    write_u32_f(f, kMagic);
    write_u32_f(f, kVersionV3);
    std::fflush(f);
    if (fault == FaultAction::kExit) ::_exit(kFaultExitCode);
    std::fclose(f);
    return false;
  }
  if (fault != FaultAction::kNone) {
    std::fclose(f);
    std::remove(tmp_path.c_str());
    fault_raise(fault, FaultSite::kCorpusSave, hash);
  }

  // Sections are written sequentially with explicit alignment padding; the
  // payload checksum folds over exactly the bytes written (gaps included),
  // matching the loader's flat [64, size) fold.
  std::uint64_t pos = kHeaderBytes;
  std::uint64_t sum = kChecksumSeed;
  const auto emit = [&](const void* data, std::uint64_t len) {
    if (len == 0) return true;
    sum = fnv_bytes(sum, data, static_cast<std::size_t>(len));
    pos += len;
    return std::fwrite(data, 1, static_cast<std::size_t>(len), f) == len;
  };
  const auto pad_to = [&](std::uint64_t off) {
    static constexpr unsigned char kZeros[64] = {};
    while (pos < off) {
      const std::uint64_t chunk = std::min<std::uint64_t>(off - pos, 64);
      if (!emit(kZeros, chunk)) return false;
    }
    return true;
  };

  unsigned char header[kHeaderBytes] = {};
  bool ok = std::fwrite(header, 1, kHeaderBytes, f) == kHeaderBytes;
  const std::span<const std::uint32_t> offsets = g.csr_offsets();
  // An empty graph has no offsets array; the format still stores the
  // single sentinel entry.
  const std::uint32_t zero_offset = 0;
  ok = ok && (offsets.empty() ? emit(&zero_offset, 4)
                              : emit(offsets.data(), 4 * offsets.size()));
  ok = ok && pad_to(layout.arcs_off);
  ok = ok && emit(g.csr_arcs().data(), 2 * m * sizeof(Arc));
  ok = ok && pad_to(layout.edges_off);
  ok = ok && emit(g.edges().data(), m * sizeof(Endpoints));
  CPT_ASSERT(!ok || pos == layout.file_size);

  fill_header_v3(header, n, m, sum);
  ok = ok && std::fseek(f, 0, SEEK_SET) == 0 &&
       std::fwrite(header, 1, kHeaderBytes, f) == kHeaderBytes;
  // fsync before the rename: rename() orders metadata, not data -- without
  // it a power cut can leave a fully *named* file with unwritten contents,
  // which the checksum would then reject on every later run.
  ok = ok && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  // durable_rename also fsyncs the parent directory: without that, the
  // rename itself can be rolled back by a crash, resurrecting the miss.
  if (ok) ok = durable_rename(tmp_path, final_path);
  if (!ok) std::remove(tmp_path.c_str());
  return ok;
}

bool CorpusStore::save_stream(std::uint64_t hash,
                              gen::EdgeStream& stream) const {
  if (!enabled()) return false;
  const std::uint64_t n = stream.num_nodes();
  const std::uint64_t m = stream.num_edges();
  LayoutV3 layout;
  if (!compute_layout_v3(n, m, &layout)) return false;
  ::mkdir(dir_.c_str(), 0755);
  const std::string final_path = path_for(hash);
  const std::string tmp_path = unique_tmp_path(final_path);  // see save()
  const int fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  // Same injected-fault surface as save(): the streaming writer is just
  // another producer of corpus files.
  const FaultAction fault = fault_check(FaultSite::kCorpusSave, hash);
  if (fault == FaultAction::kShortWrite || fault == FaultAction::kExit) {
    unsigned char head[8];
    store_u32(head, kMagic);
    store_u32(head + 4, kVersionV3);
    [[maybe_unused]] const auto written = ::write(fd, head, 8);
    if (fault == FaultAction::kExit) ::_exit(kFaultExitCode);
    ::close(fd);
    return false;
  }
  if (fault != FaultAction::kNone) {
    ::close(fd);
    std::remove(tmp_path.c_str());
    fault_raise(fault, FaultSite::kCorpusSave, hash);
  }

  const auto fail = [&](void* base, std::size_t len) {
    if (base != MAP_FAILED) ::munmap(base, len);
    ::close(fd);
    std::remove(tmp_path.c_str());
    return false;
  };
  if (::ftruncate(fd, static_cast<off_t>(layout.file_size)) != 0) {
    return fail(MAP_FAILED, 0);
  }
  const auto len = static_cast<std::size_t>(layout.file_size);
  void* base = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) return fail(base, len);
  auto* bytes = static_cast<unsigned char*>(base);
  auto* offsets = reinterpret_cast<std::uint32_t*>(bytes + layout.offsets_off);
  auto* arcs = reinterpret_cast<Arc*>(bytes + layout.arcs_off);
  auto* edges = reinterpret_cast<Endpoints*>(bytes + layout.edges_off);

  // Pass 1: degree counts into the file's own offsets section, then an
  // in-place prefix sum -- the section is final before pass 2 begins.
  // ftruncate delivered zero pages, so no explicit clearing is needed.
  stream.rewind();
  Endpoints e{};
  std::uint64_t count = 0;
  Endpoints prev{kNoNode, kNoNode};
  while (stream.next(&e)) {
    CPT_ASSERT(e.u < e.v && e.v < n);
    CPT_ASSERT(prev.u == kNoNode || e.u > prev.u ||
               (e.u == prev.u && e.v > prev.v));
    prev = e;
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
    ++count;
  }
  CPT_ASSERT(count == m && "EdgeStream yielded a different edge count");
  for (std::uint64_t v = 1; v <= n; ++v) offsets[v] += offsets[v - 1];
  CPT_ASSERT(n == 0 || offsets[n] == 2 * m);

  // Pass 2: endpoints sequentially, arcs scattered through per-node write
  // cursors (the only O(n) heap allocation). A release frontier walks the
  // completed prefix of the arc array and drops it from the mapping every
  // few million edges, so peak RSS tracks the write window, not 2m arcs.
  std::vector<std::uint32_t> cursor(offsets, offsets + n);
  stream.rewind();
  constexpr std::uint64_t kReleaseInterval = 1ULL << 22;
  std::uint64_t release_node = 0;
  std::uint64_t released_arc_byte = layout.arcs_off;
  std::uint64_t released_edge_byte = layout.edges_off;
  // Dropping completed MAP_SHARED pages hands their dirty contents to the
  // page cache (writeback preserves them); only this process's RSS shrinks.
  const auto release_range = [&](std::uint64_t* released, std::uint64_t hi) {
    const std::uint64_t page_hi = hi & ~4095ULL;
    if (page_hi > *released + (4096ULL << 4)) {
      const std::uint64_t page_lo = *released & ~4095ULL;
      ::madvise(bytes + page_lo, page_hi - page_lo, MADV_DONTNEED);
      *released = page_hi;
    }
  };
  const auto release_completed = [&](std::uint64_t eid) {
    // Arcs: every node whose cursor reached its next offset is fully
    // written, so the prefix of the arc array up to it is final.
    while (release_node < n &&
           cursor[release_node] == offsets[release_node + 1]) {
      ++release_node;
    }
    release_range(
        &released_arc_byte,
        layout.arcs_off +
            (release_node == 0
                 ? 0
                 : static_cast<std::uint64_t>(offsets[release_node]) *
                       sizeof(Arc)));
    // Endpoints: strictly sequential, everything before eid is final.
    release_range(&released_edge_byte,
                  layout.edges_off + eid * sizeof(Endpoints));
  };
  for (std::uint64_t eid = 0; eid < m; ++eid) {
    [[maybe_unused]] const bool have = stream.next(&e);
    CPT_ASSERT(have);
    edges[eid] = e;
    const std::uint32_t cu = cursor[e.u]++;
    const std::uint32_t cv = cursor[e.v]++;
    arcs[cu] = {e.v, static_cast<EdgeId>(eid), cv};
    arcs[cv] = {e.u, static_cast<EdgeId>(eid), cu};
    if ((eid + 1) % kReleaseInterval == 0) release_completed(eid + 1);
  }
  cursor.clear();
  cursor.shrink_to_fit();

  // Checksum sweep over the payload (windowed, self-releasing for large
  // files), then the header, then durability: msync + fsync + durable
  // rename.
  const bool release_windows = layout.file_size > kFullVerifyBytes;
  const std::uint64_t sum = checksum_range_windowed(
      bytes, kHeaderBytes, layout.file_size, release_windows);
  fill_header_v3(bytes, n, m, sum);
  bool ok = ::msync(base, len, MS_SYNC) == 0;
  ::munmap(base, len);
  ok = ok && ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (ok) ok = durable_rename(tmp_path, final_path);
  if (!ok) std::remove(tmp_path.c_str());
  return ok;
}

bool write_corpus_v2(const std::string& path, const Graph& g) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = write_u32_f(f, kMagic) && write_u32_f(f, kVersionV2) &&
            write_u32_f(f, g.num_nodes()) && write_u32_f(f, g.num_edges());
  std::uint64_t sum = checksum_step(
      checksum_step(kChecksumSeed, g.num_nodes()), g.num_edges());
  for (EdgeId e = 0; ok && e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    ok = write_u32_f(f, ep.u) && write_u32_f(f, ep.v);
    sum = checksum_step(checksum_step(sum, ep.u), ep.v);
  }
  ok = ok && write_u32_f(f, static_cast<std::uint32_t>(sum)) &&
       write_u32_f(f, static_cast<std::uint32_t>(sum >> 32));
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace cpt::scenario
