#include "scenario/corpus.h"

#include <cstdio>
#include <sys/stat.h>
#include <sys/types.h>

#include <vector>

namespace cpt::scenario {

namespace {

constexpr std::uint32_t kMagic = 0x43545043;  // 'CPTC'
constexpr std::uint32_t kVersion = 1;

bool read_u32(std::FILE* f, std::uint32_t* out) {
  unsigned char b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  *out = static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
  return true;
}

bool write_u32(std::FILE* f, std::uint32_t v) {
  const unsigned char b[4] = {
      static_cast<unsigned char>(v & 0xff),
      static_cast<unsigned char>((v >> 8) & 0xff),
      static_cast<unsigned char>((v >> 16) & 0xff),
      static_cast<unsigned char>((v >> 24) & 0xff),
  };
  return std::fwrite(b, 1, 4, f) == 4;
}

}  // namespace

std::string CorpusStore::path_for(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.cpg",
                static_cast<unsigned long long>(hash));
  return dir_ + "/" + name;
}

bool CorpusStore::load(std::uint64_t hash, Graph* out) const {
  if (!enabled()) return false;
  std::FILE* f = std::fopen(path_for(hash).c_str(), "rb");
  if (f == nullptr) return false;
  std::uint32_t magic = 0, version = 0, n = 0, m = 0;
  bool ok = read_u32(f, &magic) && read_u32(f, &version) && read_u32(f, &n) &&
            read_u32(f, &m) && magic == kMagic && version == kVersion;
  if (ok) {
    GraphBuilder b(n);
    for (std::uint32_t e = 0; e < m && ok; ++e) {
      std::uint32_t u = 0, v = 0;
      ok = read_u32(f, &u) && read_u32(f, &v) && u < n && v < n && u != v;
      if (ok) b.add_edge(u, v);
    }
    if (ok) *out = std::move(b).build();
  }
  std::fclose(f);
  return ok;
}

bool CorpusStore::save(std::uint64_t hash, const Graph& g) const {
  if (!enabled()) return false;
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; failures surface at fopen
  // Write to a temp name then rename: a batch killed mid-save must not
  // leave a truncated file a later run would trust.
  const std::string final_path = path_for(hash);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = write_u32(f, kMagic) && write_u32(f, kVersion) &&
            write_u32(f, g.num_nodes()) && write_u32(f, g.num_edges());
  for (EdgeId e = 0; ok && e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    ok = write_u32(f, ep.u) && write_u32(f, ep.v);
  }
  ok = (std::fclose(f) == 0) && ok;
  if (ok) ok = std::rename(tmp_path.c_str(), final_path.c_str()) == 0;
  if (!ok) std::remove(tmp_path.c_str());
  return ok;
}

}  // namespace cpt::scenario
