#include "scenario/aggregate.h"

#include <algorithm>

#include "scenario/json.h"
#include "util/contracts.h"

namespace cpt::scenario {

QuantileSummary summarize(std::vector<std::uint64_t> values) {
  QuantileSummary q;
  if (values.empty()) return q;
  std::sort(values.begin(), values.end());
  const std::size_t last = values.size() - 1;
  const auto rank = [&](std::size_t k) {  // quarter k of 4
    return values[(k * last + 2) / 4];
  };
  q.min = values.front();
  q.p25 = rank(1);
  q.p50 = rank(2);
  q.p75 = rank(3);
  q.max = values.back();
  return q;
}

StreamingAggregator::StreamingAggregator(const std::vector<Job>& jobs) {
  for (const Job& job : jobs) ++expected_[job.cell_key()];
}

void StreamingAggregator::finalize(std::size_t index) {
  CellAggregate& cell = cells_[index];
  Accum& acc = accums_[index];
  cell.instances = static_cast<std::uint32_t>(acc.instance_hashes.size());
  cell.detection_rate =
      cell.jobs == 0 ? 0.0
                     : static_cast<double>(cell.rejects) / cell.jobs;
  cell.rounds = summarize(std::move(acc.rounds));
  cell.messages = summarize(std::move(acc.messages));
  acc = Accum{};  // drop the per-job buffers
  acc.done = true;
  --open_cells_;
}

void StreamingAggregator::consume(const Job& job, const JobResult& result) {
  ++consumed_jobs_;
  std::string key = job.cell_key();
  const std::uint32_t seen = ++consumed_[key];
  if (result.failed || result.timed_out) {
    // Neither contributes values to a cell; both still tick the per-key
    // counter so the cell finalizes when its last job arrives.
    if (result.timed_out) {
      ++timed_out_jobs_;
    } else {
      ++failed_jobs_;
    }
  } else {
    auto [it, fresh] = index_.emplace(std::move(key), cells_.size());
    if (fresh) {
      CellAggregate cell;
      cell.key = it->first;
      cell.scenario = job.instance.label();
      cell.tester = tester_name(job.tester);
      cell.epsilon = job.epsilon;
      cell.adaptive = job.adaptive;
      cell.randomized = job.randomized;
      cell.n_min = result.n;
      cell.n_max = result.n;
      cell.m_min = result.m;
      cell.m_max = result.m;
      cells_.push_back(std::move(cell));
      accums_.emplace_back();
      accums_.back().open = true;
      ++open_cells_;
      peak_open_cells_ = std::max(peak_open_cells_, open_cells_);
    }
    CellAggregate& cell = cells_[it->second];
    Accum& acc = accums_[it->second];
    ++cell.jobs;
    if (result.verdict == Verdict::kAccept) ++cell.accepts;
    if (result.verdict == Verdict::kReject) ++cell.rejects;
    cell.n_min = std::min(cell.n_min, result.n);
    cell.n_max = std::max(cell.n_max, result.n);
    cell.m_min = std::min(cell.m_min, result.m);
    cell.m_max = std::max(cell.m_max, result.m);
    cell.wall_seconds += result.wall_seconds;
    acc.rounds.push_back(result.rounds);
    acc.messages.push_back(result.messages);
    acc.instance_hashes.insert(job.instance.hash());
    key = cell.key;  // emplace may have consumed the local above
  }
  if (seen == expected_[key]) {
    const auto it = index_.find(key);
    if (it != index_.end() && accums_[it->second].open) {
      finalize(it->second);
    }
  }
  // Flush finalized cells in first-seen order (== the in-memory document's
  // cell order); a cell whose key recurs later in the expansion holds the
  // queue until its last job lands.
  while (next_flush_ < cells_.size() && accums_[next_flush_].done) {
    if (cell_sink_) cell_sink_(cells_[next_flush_]);
    ++next_flush_;
  }
}

const std::vector<CellAggregate>& StreamingAggregator::finish() {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (accums_[i].open) finalize(i);
  }
  while (next_flush_ < cells_.size()) {
    if (cell_sink_) cell_sink_(cells_[next_flush_]);
    ++next_flush_;
  }
  return cells_;
}

std::vector<CellAggregate> aggregate_cells(const BatchResult& batch) {
  CPT_EXPECTS(batch.jobs.size() == batch.results.size());
  StreamingAggregator agg(batch.jobs);
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    agg.consume(batch.jobs[j], batch.results[j]);
  }
  return agg.cells();
}

namespace {

void append_quantiles(std::string& out, const char* name,
                      const QuantileSummary& q) {
  out += "\"";
  out += name;
  out += "\": {\"min\": " + json_render_uint(q.min);
  out += ", \"p25\": " + json_render_uint(q.p25);
  out += ", \"p50\": " + json_render_uint(q.p50);
  out += ", \"p75\": " + json_render_uint(q.p75);
  out += ", \"max\": " + json_render_uint(q.max);
  out += "}";
}

// The cell body shared by the aggregate document (sep = newline + indent)
// and the stream lines (sep = single space): identical fields, identical
// order, identical value rendering.
void append_cell_body(std::string& out, const CellAggregate& cell,
                      const char* sep) {
  out += "{\"scenario\": ";
  json_append_escaped(out, cell.scenario);
  out += ", \"tester\": ";
  json_append_escaped(out, cell.tester);
  out += ", \"epsilon\": " + json_render_double(cell.epsilon);
  if (cell.adaptive) out += ", \"adaptive\": true";
  if (cell.randomized) out += ", \"randomized\": true";
  out += ",";
  out += sep;
  out += "\"jobs\": " + json_render_uint(cell.jobs);
  out += ", \"instances\": " + json_render_uint(cell.instances);
  out += ", \"n\": [" + json_render_uint(cell.n_min) + ", " +
         json_render_uint(cell.n_max) + "]";
  out += ", \"m\": [" + json_render_uint(cell.m_min) + ", " +
         json_render_uint(cell.m_max) + "]";
  out += ",";
  out += sep;
  out += "\"accepts\": " + json_render_uint(cell.accepts);
  out += ", \"rejects\": " + json_render_uint(cell.rejects);
  out += ", \"detection_rate\": " + json_render_double(cell.detection_rate);
  out += ",";
  out += sep;
  append_quantiles(out, "rounds", cell.rounds);
  out += ",";
  out += sep;
  append_quantiles(out, "messages", cell.messages);
  out += "}";
}

}  // namespace

std::string render_aggregate_json(const Manifest& manifest,
                                  const BatchResult& batch,
                                  const std::vector<CellAggregate>& cells) {
  std::string out = "{\n  \"schema\": \"cpt_batch_aggregate_v1\",\n  \"name\": ";
  json_append_escaped(out, manifest.name);
  out += ",\n  \"base_seed\": " + json_render_uint(manifest.base_seed);
  out += ",\n  \"jobs\": " + json_render_uint(batch.jobs.size());
  if (batch.failed_jobs > 0) {
    out += ",\n  \"failed_jobs\": " + json_render_uint(batch.failed_jobs);
  }
  if (batch.timed_out_jobs > 0) {
    out += ",\n  \"timed_out_jobs\": " +
           json_render_uint(batch.timed_out_jobs);
  }
  if (batch.cancelled) {
    out += ",\n  \"partial\": true";
    out += ",\n  \"completed_jobs\": " +
           json_render_uint(batch.completed_jobs);
  }
  out += ",\n  \"unique_instances\": " +
         json_render_uint(batch.corpus.unique_instances);
  out += ",\n  \"cells\": [";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    out += c == 0 ? "\n    " : ",\n    ";
    append_cell_body(out, cells[c], "\n     ");
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string render_aggregate_csv(const std::vector<CellAggregate>& cells) {
  std::string out =
      "scenario,tester,epsilon,adaptive,randomized,jobs,instances,"
      "n_min,n_max,m_min,m_max,accepts,rejects,detection_rate,"
      "rounds_min,rounds_p50,rounds_max,messages_min,messages_p50,"
      "messages_max\n";
  for (const CellAggregate& cell : cells) {
    // Scenario labels contain commas; quote them.
    out += '"';
    for (const char ch : cell.scenario) {
      if (ch == '"') out += '"';  // CSV doubling
      out += ch;
    }
    out += '"';
    out += ',';
    out += cell.tester;
    out += ',' + json_render_double(cell.epsilon);
    out += cell.adaptive ? ",1" : ",0";
    out += cell.randomized ? ",1" : ",0";
    out += ',' + json_render_uint(cell.jobs);
    out += ',' + json_render_uint(cell.instances);
    out += ',' + json_render_uint(cell.n_min);
    out += ',' + json_render_uint(cell.n_max);
    out += ',' + json_render_uint(cell.m_min);
    out += ',' + json_render_uint(cell.m_max);
    out += ',' + json_render_uint(cell.accepts);
    out += ',' + json_render_uint(cell.rejects);
    out += ',' + json_render_double(cell.detection_rate);
    out += ',' + json_render_uint(cell.rounds.min);
    out += ',' + json_render_uint(cell.rounds.p50);
    out += ',' + json_render_uint(cell.rounds.max);
    out += ',' + json_render_uint(cell.messages.min);
    out += ',' + json_render_uint(cell.messages.p50);
    out += ',' + json_render_uint(cell.messages.max);
    out += '\n';
  }
  return out;
}

std::string render_timing_json(const Manifest& manifest,
                               const BatchResult& batch,
                               const std::vector<CellAggregate>& cells,
                               const util::MetricsRegistry* metrics) {
  std::string out = "{\n  \"schema\": \"cpt_batch_timing_v1\",\n  \"name\": ";
  json_append_escaped(out, manifest.name);
  out += ",\n  \"threads\": " + json_render_uint(batch.threads_used);
  out += ",\n  \"sim_threads_policy\": ";
  json_append_escaped(out, sim_threads_policy_name(batch.sim_threads_policy));
  out += ",\n  \"jobs\": " + json_render_uint(batch.jobs.size());
  out += ",\n  \"wall_seconds\": " + json_render_double(batch.wall_seconds);
  // Degradation counters live here, not in the aggregate document: a
  // resumed run retries/resumes differently than an uninterrupted one, and
  // the aggregate must stay byte-identical between the two.
  out += ",\n  \"retried_jobs\": " + json_render_uint(batch.retried_jobs);
  out += ", \"total_retries\": " + json_render_uint(batch.total_retries);
  out += ", \"resumed_jobs\": " + json_render_uint(batch.resumed_jobs);
  out += ", \"cache_hit_jobs\": " + json_render_uint(batch.cache_hit_jobs);
  out += ",\n  \"corpus\": {\"unique_instances\": " +
         json_render_uint(batch.corpus.unique_instances);
  out += ", \"disk_hits\": " + json_render_uint(batch.corpus.disk_hits);
  out += ", \"generated\": " + json_render_uint(batch.corpus.generated);
  out += ", \"skipped\": " + json_render_uint(batch.corpus.skipped);
  out += ", \"corrupt_files\": " + json_render_uint(batch.corpus.corrupt_files);
  out += "},\n  \"cells\": [";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    out += c == 0 ? "\n" : ",\n";
    out += "    {\"scenario\": ";
    json_append_escaped(out, cells[c].scenario);
    out += ", \"tester\": ";
    json_append_escaped(out, cells[c].tester);
    out += ", \"wall_seconds\": " + json_render_double(cells[c].wall_seconds);
    out += "}";
  }
  out += "\n  ]";
  if (metrics != nullptr && !metrics->empty()) {
    out += ",\n  \"metrics\": " + metrics->render_object(2);
  }
  out += "\n}\n";
  return out;
}

std::string render_stream_header(const Manifest& manifest, std::size_t jobs) {
  std::string out = "{\"schema\": \"cpt_batch_aggregate_stream_v1\", \"name\": ";
  json_append_escaped(out, manifest.name);
  out += ", \"base_seed\": " + json_render_uint(manifest.base_seed);
  out += ", \"jobs\": " + json_render_uint(jobs);
  out += "}\n";
  return out;
}

std::string render_stream_cell(const CellAggregate& cell) {
  std::string out;
  append_cell_body(out, cell, " ");
  out += '\n';
  return out;
}

std::string render_stream_footer(const BatchResult& batch, std::size_t cells) {
  std::string out = "{\"end\": true, \"cells\": " + json_render_uint(cells);
  out += ", \"jobs\": " + json_render_uint(batch.jobs.size());
  out += ", \"failed_jobs\": " + json_render_uint(batch.failed_jobs);
  if (batch.timed_out_jobs > 0) {
    out += ", \"timed_out_jobs\": " + json_render_uint(batch.timed_out_jobs);
  }
  if (batch.cancelled) {
    out += ", \"partial\": true, \"completed_jobs\": " +
           json_render_uint(batch.completed_jobs);
  }
  out += ", \"unique_instances\": " +
         json_render_uint(batch.corpus.unique_instances);
  out += "}\n";
  return out;
}

}  // namespace cpt::scenario
