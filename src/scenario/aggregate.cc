#include "scenario/aggregate.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "scenario/json.h"
#include "util/contracts.h"

namespace cpt::scenario {

QuantileSummary summarize(std::vector<std::uint64_t> values) {
  QuantileSummary q;
  if (values.empty()) return q;
  std::sort(values.begin(), values.end());
  const std::size_t last = values.size() - 1;
  const auto rank = [&](std::size_t k) {  // quarter k of 4
    return values[(k * last + 2) / 4];
  };
  q.min = values.front();
  q.p25 = rank(1);
  q.p50 = rank(2);
  q.p75 = rank(3);
  q.max = values.back();
  return q;
}

std::vector<CellAggregate> aggregate_cells(const BatchResult& batch) {
  CPT_EXPECTS(batch.jobs.size() == batch.results.size());
  struct Accum {
    std::vector<std::uint64_t> rounds, messages;
    std::unordered_set<std::uint64_t> instance_hashes;
  };
  std::vector<CellAggregate> cells;
  std::vector<Accum> accums;
  std::unordered_map<std::string, std::size_t> index;

  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const Job& job = batch.jobs[j];
    const JobResult& res = batch.results[j];
    std::string key = job.cell_key();
    auto [it, fresh] = index.emplace(std::move(key), cells.size());
    if (fresh) {
      CellAggregate cell;
      cell.key = it->first;
      cell.scenario = job.instance.label();
      cell.tester = tester_name(job.tester);
      cell.epsilon = job.epsilon;
      cell.adaptive = job.adaptive;
      cell.randomized = job.randomized;
      cell.n_min = res.n;
      cell.n_max = res.n;
      cell.m_min = res.m;
      cell.m_max = res.m;
      cells.push_back(std::move(cell));
      accums.emplace_back();
    }
    CellAggregate& cell = cells[it->second];
    Accum& acc = accums[it->second];
    ++cell.jobs;
    if (res.verdict == Verdict::kAccept) ++cell.accepts;
    if (res.verdict == Verdict::kReject) ++cell.rejects;
    cell.n_min = std::min(cell.n_min, res.n);
    cell.n_max = std::max(cell.n_max, res.n);
    cell.m_min = std::min(cell.m_min, res.m);
    cell.m_max = std::max(cell.m_max, res.m);
    cell.wall_seconds += res.wall_seconds;
    acc.rounds.push_back(res.rounds);
    acc.messages.push_back(res.messages);
    acc.instance_hashes.insert(job.instance.hash());
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].instances =
        static_cast<std::uint32_t>(accums[c].instance_hashes.size());
    cells[c].detection_rate =
        cells[c].jobs == 0
            ? 0.0
            : static_cast<double>(cells[c].rejects) / cells[c].jobs;
    cells[c].rounds = summarize(std::move(accums[c].rounds));
    cells[c].messages = summarize(std::move(accums[c].messages));
  }
  return cells;
}

namespace {

void append_quantiles(std::string& out, const char* name,
                      const QuantileSummary& q) {
  out += "\"";
  out += name;
  out += "\": {\"min\": " + json_render_uint(q.min);
  out += ", \"p25\": " + json_render_uint(q.p25);
  out += ", \"p50\": " + json_render_uint(q.p50);
  out += ", \"p75\": " + json_render_uint(q.p75);
  out += ", \"max\": " + json_render_uint(q.max);
  out += "}";
}

}  // namespace

std::string render_aggregate_json(const Manifest& manifest,
                                  const BatchResult& batch,
                                  const std::vector<CellAggregate>& cells) {
  std::string out = "{\n  \"schema\": \"cpt_batch_aggregate_v1\",\n  \"name\": ";
  json_append_escaped(out, manifest.name);
  out += ",\n  \"base_seed\": " + json_render_uint(manifest.base_seed);
  out += ",\n  \"jobs\": " + json_render_uint(batch.jobs.size());
  out += ",\n  \"unique_instances\": " +
         json_render_uint(batch.corpus.unique_instances);
  out += ",\n  \"cells\": [";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellAggregate& cell = cells[c];
    out += c == 0 ? "\n" : ",\n";
    out += "    {\"scenario\": ";
    json_append_escaped(out, cell.scenario);
    out += ", \"tester\": ";
    json_append_escaped(out, cell.tester);
    out += ", \"epsilon\": " + json_render_double(cell.epsilon);
    if (cell.adaptive) out += ", \"adaptive\": true";
    if (cell.randomized) out += ", \"randomized\": true";
    out += ",\n     \"jobs\": " + json_render_uint(cell.jobs);
    out += ", \"instances\": " + json_render_uint(cell.instances);
    out += ", \"n\": [" + json_render_uint(cell.n_min) + ", " +
           json_render_uint(cell.n_max) + "]";
    out += ", \"m\": [" + json_render_uint(cell.m_min) + ", " +
           json_render_uint(cell.m_max) + "]";
    out += ",\n     \"accepts\": " + json_render_uint(cell.accepts);
    out += ", \"rejects\": " + json_render_uint(cell.rejects);
    out += ", \"detection_rate\": " + json_render_double(cell.detection_rate);
    out += ",\n     ";
    append_quantiles(out, "rounds", cell.rounds);
    out += ",\n     ";
    append_quantiles(out, "messages", cell.messages);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string render_aggregate_csv(const std::vector<CellAggregate>& cells) {
  std::string out =
      "scenario,tester,epsilon,adaptive,randomized,jobs,instances,"
      "n_min,n_max,m_min,m_max,accepts,rejects,detection_rate,"
      "rounds_min,rounds_p50,rounds_max,messages_min,messages_p50,"
      "messages_max\n";
  for (const CellAggregate& cell : cells) {
    // Scenario labels contain commas; quote them.
    out += '"';
    for (const char ch : cell.scenario) {
      if (ch == '"') out += '"';  // CSV doubling
      out += ch;
    }
    out += '"';
    out += ',';
    out += cell.tester;
    out += ',' + json_render_double(cell.epsilon);
    out += cell.adaptive ? ",1" : ",0";
    out += cell.randomized ? ",1" : ",0";
    out += ',' + json_render_uint(cell.jobs);
    out += ',' + json_render_uint(cell.instances);
    out += ',' + json_render_uint(cell.n_min);
    out += ',' + json_render_uint(cell.n_max);
    out += ',' + json_render_uint(cell.m_min);
    out += ',' + json_render_uint(cell.m_max);
    out += ',' + json_render_uint(cell.accepts);
    out += ',' + json_render_uint(cell.rejects);
    out += ',' + json_render_double(cell.detection_rate);
    out += ',' + json_render_uint(cell.rounds.min);
    out += ',' + json_render_uint(cell.rounds.p50);
    out += ',' + json_render_uint(cell.rounds.max);
    out += ',' + json_render_uint(cell.messages.min);
    out += ',' + json_render_uint(cell.messages.p50);
    out += ',' + json_render_uint(cell.messages.max);
    out += '\n';
  }
  return out;
}

std::string render_timing_json(const Manifest& manifest,
                               const BatchResult& batch,
                               const std::vector<CellAggregate>& cells) {
  std::string out = "{\n  \"schema\": \"cpt_batch_timing_v1\",\n  \"name\": ";
  json_append_escaped(out, manifest.name);
  out += ",\n  \"threads\": " + json_render_uint(batch.threads_used);
  out += ",\n  \"jobs\": " + json_render_uint(batch.jobs.size());
  out += ",\n  \"wall_seconds\": " + json_render_double(batch.wall_seconds);
  out += ",\n  \"corpus\": {\"unique_instances\": " +
         json_render_uint(batch.corpus.unique_instances);
  out += ", \"disk_hits\": " + json_render_uint(batch.corpus.disk_hits);
  out += ", \"generated\": " + json_render_uint(batch.corpus.generated);
  out += "},\n  \"cells\": [";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    out += c == 0 ? "\n" : ",\n";
    out += "    {\"scenario\": ";
    json_append_escaped(out, cells[c].scenario);
    out += ", \"tester\": ";
    json_append_escaped(out, cells[c].tester);
    out += ", \"wall_seconds\": " + json_render_double(cells[c].wall_seconds);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace cpt::scenario
