#include "scenario/service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "congest/simulator.h"
#include "scenario/aggregate.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "util/parallel.h"

namespace cpt::scenario {

namespace {

// Writes the whole buffer with MSG_NOSIGNAL (a disconnected client must
// surface as an error return, never SIGPIPE). Returns false on any error.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

// One connected client. Writes are serialized by `write_mu` (the reader
// thread acks, the executor streams results); once a write fails the
// connection is marked broken and later writes are silently dropped --
// the batch itself still runs to completion.
struct Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> broken{false};

  bool write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (broken.load(std::memory_order_relaxed)) return false;
    if (!send_all(fd, line)) {
      broken.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

std::string error_line(const std::string& message) {
  std::string out = "{\"ok\": false, \"error\": ";
  json_append_escaped(out, message);
  out += "}\n";
  return out;
}

}  // namespace

struct Service::Impl {
  ServiceOptions options;
  ResultCache cache;
  WorkerPool pool;

  int listen_fd = -1;
  std::atomic<bool> stop{false};

  // Request queue: priority desc, then arrival seq asc. The executor pops
  // under `mu`; readers push under `mu`.
  struct Request {
    std::int64_t priority = 0;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    Manifest manifest;
    SimThreadsPolicy policy = SimThreadsPolicy::kManifest;
    std::shared_ptr<Connection> conn;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Request> queue;
  std::uint64_t next_seq = 0;
  bool executor_done = false;

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> conn_threads;

  // Last cache counter values already exported to the registry; the
  // snapshot path adds deltas so serve/cache_* counters track the atomic
  // totals without double counting. Guarded by `mu`.
  std::uint64_t exported_hits = 0, exported_misses = 0, exported_corrupt = 0,
                exported_stores = 0, exported_evictions = 0;

  explicit Impl(ServiceOptions opts)
      : options(std::move(opts)),
        cache(options.cache_dir, options.cache_max_entries),
        pool(congest::resolve_sim_threads(options.threads)) {}
};

Service::Service(ServiceOptions options)
    : impl_(new Impl(std::move(options))) {}

Service::~Service() {
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  delete impl_;
}

bool Service::start(std::string* error) {
  const std::string& path = impl_->options.socket_path;
  if (path.empty()) {
    if (error != nullptr) *error = "empty socket path";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  // A stale socket file from a killed server blocks bind(); a live server
  // holds the listening socket open, so connect() distinguishes the two.
  int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
        0) {
      ::close(probe);
      ::close(fd);
      if (error != nullptr) {
        *error = "another server is already listening on " + path;
      }
      return false;
    }
    ::close(probe);
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "cannot listen on " + path + ": " + strerror(errno);
    }
    ::close(fd);
    return false;
  }
  impl_->listen_fd = fd;
  return true;
}

void Service::request_stop() {
  impl_->stop.store(true, std::memory_order_relaxed);
  // shutdown(2) is async-signal-safe and wakes a blocked accept(2) with
  // EINVAL/ECONNABORTED; close() here would race the accept loop's fd use.
  if (impl_->listen_fd >= 0) ::shutdown(impl_->listen_fd, SHUT_RDWR);
}

namespace {

// Reads one '\n'-terminated line from fd into *line (newline stripped).
// Returns false on EOF or error. `buf` carries bytes across calls.
bool read_line(int fd, std::string* buf, std::string* line) {
  while (true) {
    const std::size_t pos = buf->find('\n');
    if (pos != std::string::npos) {
      line->assign(*buf, 0, pos);
      buf->erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf->append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

void Service::serve() {
  Impl& im = *impl_;

  // Executor: pops the best queued request and runs it on the shared
  // pool. Exactly one batch runs at a time -- requests multiplex the
  // machine by queueing, not by splitting the pool.
  std::thread executor([&] {
    while (true) {
      Impl::Request req;
      {
        std::unique_lock<std::mutex> lock(im.mu);
        im.cv.wait(lock, [&] {
          return !im.queue.empty() ||
                 im.stop.load(std::memory_order_relaxed);
        });
        if (im.queue.empty()) {
          if (im.stop.load(std::memory_order_relaxed)) break;
          continue;
        }
        const auto best = std::min_element(
            im.queue.begin(), im.queue.end(),
            [](const Impl::Request& a, const Impl::Request& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.seq < b.seq;
            });
        req = std::move(*best);
        im.queue.erase(best);
        metrics_.set_gauge("serve/queue_depth",
                           static_cast<double>(im.queue.size()));
      }

      BatchOptions options;
      options.threads = im.pool.num_workers();
      options.pool = &im.pool;
      options.sim_threads_policy = req.policy;
      options.corpus_dir = im.options.corpus_dir;
      options.result_cache = im.cache.enabled() ? &im.cache : nullptr;
      options.max_retries = im.options.max_retries;

      const std::vector<Job> jobs = expand_manifest(req.manifest);
      req.conn->write_line(render_stream_header(req.manifest, jobs.size()));
      StreamingAggregator agg(jobs);
      agg.set_cell_sink([&](const CellAggregate& cell) {
        req.conn->write_line(render_stream_cell(cell));
      });
      const BatchResult batch = run_batch(
          req.manifest, options,
          [&](const Job& job, const JobResult& result) {
            agg.consume(job, result);
          });
      const std::vector<CellAggregate> cells = agg.finish();
      req.conn->write_line(render_stream_footer(batch, cells.size()));

      // The terminal line carries the full aggregate/CSV documents as
      // escaped strings so a thin client can write --out/--csv files
      // byte-identical to an offline run without re-deriving them.
      std::string done = "{\"done\": true, \"request_id\": " +
                         json_render_uint(req.id);
      done += ", \"exit_code\": " +
              json_render_int(batch.failed_jobs > 0 ? 1 : 0);
      done += ", \"jobs\": " + json_render_uint(batch.jobs.size());
      done += ", \"failed_jobs\": " + json_render_uint(batch.failed_jobs);
      done +=
          ", \"timed_out_jobs\": " + json_render_uint(batch.timed_out_jobs);
      done +=
          ", \"cache_hit_jobs\": " + json_render_uint(batch.cache_hit_jobs);
      done += ", \"aggregate\": ";
      json_append_escaped(done,
                          render_aggregate_json(req.manifest, batch, cells));
      done += ", \"csv\": ";
      json_append_escaped(done, render_aggregate_csv(cells));
      done += "}\n";
      req.conn->write_line(done);

      metrics_.add_counter("serve/runs", 1);
      metrics_.add_counter("serve/jobs", batch.jobs.size());
      metrics_.add_counter("serve/cache_hit_jobs", batch.cache_hit_jobs);
      metrics_.add_counter("serve/failed_jobs", batch.failed_jobs);
      metrics_.add_counter("serve/timed_out_jobs", batch.timed_out_jobs);
    }
    std::lock_guard<std::mutex> lock(im.mu);
    im.executor_done = true;
  });

  // Accept loop. One reader thread per connection; threads are collected
  // (not detached) so serve() returns only after every reader exited.
  while (!im.stop.load(std::memory_order_relaxed)) {
    const int cfd = ::accept(im.listen_fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (request_stop) or hard error
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = cfd;
    metrics_.add_counter("serve/connections", 1);
    {
      std::lock_guard<std::mutex> lock(im.conns_mu);
      im.conns.push_back(conn);
      im.conn_threads.emplace_back([this, &im, conn] {
        std::string buf, line;
        while (read_line(conn->fd, &buf, &line)) {
          metrics_.add_counter("serve/requests", 1);
          JsonValue req;
          std::string jerr;
          if (!JsonValue::parse(line, &req, &jerr) || !req.is_object()) {
            metrics_.add_counter("serve/bad_requests", 1);
            conn->write_line(error_line("bad request: " + jerr));
            continue;
          }
          const JsonValue* op = req.find("op");
          const std::string op_name =
              op != nullptr && op->is_string() ? op->as_string() : "";
          if (op_name == "ping") {
            conn->write_line("{\"ok\": true, \"pong\": true}\n");
          } else if (op_name == "metrics") {
            sync_cache_counters();
            std::string out = "{\"ok\": true, \"metrics\": ";
            json_append_escaped(out, metrics_.render_json("cpt_serve"));
            out += "}\n";
            conn->write_line(out);
          } else if (op_name == "shutdown") {
            conn->write_line("{\"ok\": true, \"stopping\": true}\n");
            request_stop();
            std::lock_guard<std::mutex> qlock(im.mu);
            im.cv.notify_all();
          } else if (op_name == "run") {
            metrics_.add_counter("serve/run_requests", 1);
            Impl::Request r;
            std::string merr;
            const JsonValue* text = req.find("manifest_text");
            const JsonValue* path = req.find("manifest_path");
            bool ok = false;
            if (text != nullptr && text->is_string()) {
              ok = parse_manifest(text->as_string(), &r.manifest, &merr);
            } else if (path != nullptr && path->is_string()) {
              ok = load_manifest_file(path->as_string(), &r.manifest, &merr);
            } else {
              merr = "run request needs manifest_text or manifest_path";
            }
            r.policy = im.options.sim_threads_policy;
            const JsonValue* policy = req.find("sim_threads_policy");
            if (ok && policy != nullptr) {
              if (!policy->is_string() ||
                  !parse_sim_threads_policy(policy->as_string(), &r.policy)) {
                ok = false;
                merr = "bad sim_threads_policy";
              }
            }
            if (!ok) {
              metrics_.add_counter("serve/bad_requests", 1);
              conn->write_line(error_line(merr));
              continue;
            }
            const JsonValue* prio = req.find("priority");
            if (prio != nullptr && prio->is_integer()) {
              r.priority = prio->as_int64();
            }
            r.conn = conn;
            std::size_t depth = 0;
            std::uint64_t id = 0;
            bool queued = false;
            {
              std::lock_guard<std::mutex> qlock(im.mu);
              if (!im.stop.load(std::memory_order_relaxed) &&
                  !im.executor_done) {
                r.seq = im.next_seq++;
                r.id = id = r.seq;
                im.queue.push_back(std::move(r));
                depth = im.queue.size();
                queued = true;
              }
            }
            if (!queued) {
              conn->write_line(error_line("server is shutting down"));
              continue;
            }
            metrics_.max_gauge("serve/queue_depth_peak",
                               static_cast<double>(depth));
            std::string ack =
                "{\"ok\": true, \"queued\": true, \"request_id\": ";
            ack += json_render_uint(id);
            ack += "}\n";
            conn->write_line(ack);
            im.cv.notify_all();
          } else {
            metrics_.add_counter("serve/bad_requests", 1);
            conn->write_line(error_line("unknown op \"" + op_name + "\""));
          }
        }
        ::shutdown(conn->fd, SHUT_RDWR);
      });
    }
  }

  // Shutdown: wake the executor (it drains the queue -- acked requests
  // are never dropped), join it, then unblock and join the readers.
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.stop.store(true, std::memory_order_relaxed);
  }
  im.cv.notify_all();
  executor.join();
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    for (const auto& conn : im.conns) ::shutdown(conn->fd, SHUT_RDWR);
    for (std::thread& t : im.conn_threads) t.join();
    for (const auto& conn : im.conns) ::close(conn->fd);
    im.conns.clear();
    im.conn_threads.clear();
  }
  sync_cache_counters();
  ::unlink(im.options.socket_path.c_str());
}

void Service::sync_cache_counters() {
  Impl& im = *impl_;
  const ResultCache::Counters& c = im.cache.counters();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto sync = [&](const char* name, const std::atomic<std::uint64_t>& v,
                        std::uint64_t* exported) {
    const std::uint64_t now = v.load(std::memory_order_relaxed);
    if (now > *exported) {
      metrics_.add_counter(name, now - *exported);
      *exported = now;
    }
  };
  sync("serve/cache_hits", c.hits, &im.exported_hits);
  sync("serve/cache_misses", c.misses, &im.exported_misses);
  sync("serve/cache_corrupt", c.corrupt, &im.exported_corrupt);
  sync("serve/cache_stores", c.stores, &im.exported_stores);
  sync("serve/cache_evictions", c.evictions, &im.exported_evictions);
}

}  // namespace cpt::scenario
