#include "scenario/result_cache.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "scenario/journal.h"
#include "scenario/json.h"
#include "scenario/registry.h"
#include "util/fsio.h"

namespace cpt::scenario {

namespace {

// Entry filenames: <16hex key>.cpr ("cpt result"). The extension keeps
// the cache dir shareable with the corpus (.cpg) without the two sweeps
// or globs ever matching each other's files.
constexpr const char* kEntrySuffix = ".cpr";
constexpr std::size_t kEntrySuffixLen = 4;

}  // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t max_entries)
    : dir_(std::move(dir)), max_entries_(max_entries) {
  if (dir_.empty()) return;
  // Sweep orphaned publish temporaries, mirroring the corpus store: a
  // writer killed between open and rename leaks <key>.cpr.tmp.<pid>.<n>.
  // Live-pid temps are kept (sweepable_tmp): a concurrent daemon or batch
  // process may be mid-store in this very directory.
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;  // created later on first store
  while (const dirent* entry = ::readdir(d)) {
    if (!sweepable_tmp(entry->d_name, ".cpr.tmp")) continue;
    const std::string orphan = dir_ + "/" + entry->d_name;
    std::remove(orphan.c_str());
  }
  ::closedir(d);
}

std::uint64_t ResultCache::key_for(const Job& job) {
  std::uint64_t h = fnv1a64("cpt_result_v1");
  const std::string key = job.cell_key();
  h = fnv_fold_bytes(h, key.data(), key.size());
  h = fnv_fold_u64(h, job.instance.hash());
  h = fnv_fold_u64(h, job.tester_seed);
  return h;
}

std::string ResultCache::path_for(std::uint64_t key) const {
  return dir_ + "/" + fnv_hex16(key) + kEntrySuffix;
}

ResultCache::LoadStatus ResultCache::load(const Job& job,
                                          JobResult* out) const {
  if (!enabled()) return LoadStatus::kMiss;
  const std::string path = path_for(key_for(job));
  std::string text;
  if (!read_text_file(path, &text)) {
    counters_.misses.fetch_add(1, std::memory_order_relaxed);
    return LoadStatus::kMiss;
  }
  const auto corrupt = [&] {
    // Self-heal: a removed entry is re-stored on this run's retire. A
    // concurrent writer may have already replaced it with a good entry;
    // removing that one too only costs the next run a re-execution.
    std::remove(path.c_str());
    counters_.corrupt.fetch_add(1, std::memory_order_relaxed);
    return LoadStatus::kCorrupt;
  };
  if (text.empty() || text.back() != '\n') return corrupt();
  const std::string_view line(text.data(), text.size() - 1);
  std::string_view rec_text;
  JsonValue rec;
  std::string jerr;
  if (!split_checksummed_line(line, &rec_text) ||
      !JsonValue::parse(rec_text, &rec, &jerr) || !rec.is_object()) {
    return corrupt();
  }
  // Full identity check, not just the filename: the record's cell_key
  // text, instance hash and seed must all match the requesting job, so a
  // 64-bit key collision (or a renamed file) can never serve a wrong
  // result.
  const JsonValue* schema = rec.find("schema");
  const JsonValue* key = rec.find("key");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "cpt_result_v1" || key == nullptr ||
      !key->is_string()) {
    return corrupt();
  }
  const auto rec_hex_u64 = [&rec](const char* field, std::uint64_t* out) {
    const JsonValue* v = rec.find(field);
    return v != nullptr && v->is_string() && parse_hex16(v->as_string(), out);
  };
  std::uint64_t instance_hash = 0, seed = 0;
  if (!rec_hex_u64("instance", &instance_hash) || !rec_hex_u64("seed", &seed)) {
    return corrupt();
  }
  if (key->as_string() != job.cell_key() || instance_hash != job.instance.hash() ||
      seed != job.tester_seed) {
    // A valid entry for a different job: a key collision. Not corruption
    // of this file -- leave it for its owner -- but a miss for us.
    counters_.misses.fetch_add(1, std::memory_order_relaxed);
    return LoadStatus::kMiss;
  }
  JobResult r;
  std::string perr;
  if (!parse_result_fields(rec, &r, &perr)) return corrupt();
  counters_.hits.fetch_add(1, std::memory_order_relaxed);
  *out = std::move(r);
  return LoadStatus::kHit;
}

bool ResultCache::store(const Job& job, const JobResult& result) const {
  if (!enabled() || result.failed) return false;
  std::string rec = "{\"schema\": \"cpt_result_v1\", \"key\": ";
  json_append_escaped(rec, job.cell_key());
  // Hex16, not bare integers: instance hashes and derived seeds use the
  // full u64 range, and the JSON parser demotes integers above INT64_MAX
  // to double -- the low bits the identity check depends on would vanish.
  rec += ", \"instance\": \"" + fnv_hex16(job.instance.hash()) + "\"";
  rec += ", \"seed\": \"" + fnv_hex16(job.tester_seed) + "\"";
  append_result_fields(rec, result);
  rec += "}";
  const std::string line = checksummed_record_line(rec);

  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; failures surface at fopen
  const std::string final_path = path_for(key_for(job));
  const std::string tmp_path = unique_tmp_path(final_path);
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (ok) ok = durable_rename(tmp_path, final_path);
  if (!ok) {
    std::remove(tmp_path.c_str());
    return false;
  }
  counters_.stores.fetch_add(1, std::memory_order_relaxed);
  if (max_entries_ > 0) evict_over_cap();
  return true;
}

void ResultCache::evict_over_cap() const {
  // Write-time FIFO over mtime. The scan is O(entries) per store; caches
  // small enough to want a cap are small enough to scan. Concurrent
  // evictors race benignly: remove() of a already-gone file fails
  // silently and the count converges.
  struct Entry {
    std::string name;
    std::int64_t mtime_ns;
  };
  std::vector<Entry> entries;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;
  while (const dirent* ent = ::readdir(d)) {
    const std::size_t len = std::strlen(ent->d_name);
    if (len <= kEntrySuffixLen ||
        std::strcmp(ent->d_name + (len - kEntrySuffixLen), kEntrySuffix) !=
            0) {
      continue;
    }
    struct stat st {};
    const std::string path = dir_ + "/" + ent->d_name;
    if (::stat(path.c_str(), &st) != 0) continue;
    entries.push_back(
        {ent->d_name, static_cast<std::int64_t>(st.st_mtim.tv_sec) *
                              1000000000 +
                          st.st_mtim.tv_nsec});
  }
  ::closedir(d);
  if (entries.size() <= max_entries_) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              // Oldest first; name breaks mtime ties so two evictors
              // agree on the victim order.
              return a.mtime_ns != b.mtime_ns ? a.mtime_ns < b.mtime_ns
                                              : a.name < b.name;
            });
  const std::size_t excess = entries.size() - max_entries_;
  for (std::size_t i = 0; i < excess; ++i) {
    if (std::remove((dir_ + "/" + entries[i].name).c_str()) == 0) {
      counters_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace cpt::scenario
