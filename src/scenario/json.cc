#include "scenario/json.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/fsio.h"

namespace cpt::scenario {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

// Strict recursive-descent parser. Depth-limited (manifests are shallow);
// positions track line numbers for error messages.
class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 32;

  bool fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "line " + std::to_string(line_) + ": " + msg;
    }
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == '\n') ++line_;
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c, const char* what) {
    if (eof() || peek() != c) return fail(std::string("expected ") + what);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return parse_string(&out->str_);
      case 't':
      case 'f': return parse_literal(out);
      case 'n': return parse_literal(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"') return fail("expected object key");
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':', "':'")) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      for (const auto& [k, unused] : out->members_) {
        (void)unused;
        if (k == key) return fail("duplicate object key \"" + key + "\"");
      }
      out->members_.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "'}' or ','");
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      out->items_.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "']' or ','");
    }
  }

  // Four hex digits after "\u"; advances past them.
  bool parse_u_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return fail("bad \\u escape");
    }
    *out = code;
    return true;
  }

  // Encodes one Unicode scalar value (<= 0x10ffff, surrogates excluded by
  // the caller) as UTF-8.
  static void append_utf8(std::string* out, unsigned code) {
    if (code <= 0x7f) {
      out->push_back(static_cast<char>(code));
    } else if (code <= 0x7ff) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code <= 0xffff) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\n') return fail("raw newline in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_u_hex4(&code)) return false;
          // Surrogate pairs: a high surrogate must be immediately followed
          // by an escaped low surrogate (JSON strings cannot carry raw
          // UTF-16); anything else -- a lone half in either order -- is a
          // hard parse error, never silently passed through.
          if (code >= 0xd800 && code <= 0xdbff) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("high surrogate \\u escape without a low "
                          "surrogate pair");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_u_hex4(&low)) return false;
            if (low < 0xdc00 || low > 0xdfff) {
              return fail("high surrogate \\u escape paired with a "
                          "non-low-surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return fail("lone low surrogate \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_literal(JsonValue* out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.rfind("true", 0) == 0) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      pos_ += 4;
      return true;
    }
    if (rest.rfind("false", 0) == 0) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      pos_ += 5;
      return true;
    }
    if (rest.rfind("null", 0) == 0) {
      out->kind_ = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return fail("unknown literal");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    bool is_int = true;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    out->kind_ = JsonValue::Kind::kNumber;
    errno = 0;
    if (is_int) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->is_int_ = true;
        out->int_ = v;
        return true;
      }
      errno = 0;  // overflowed int64: fall through to double
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return fail("bad number \"" + token + "\"");
    }
    out->is_int_ = false;
    out->dbl_ = d;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

bool JsonValue::parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  if (error != nullptr) error->clear();
  return JsonParser(text, error).run(out);
}

void json_append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_render_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_render_int(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string json_render_uint(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

bool read_text_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_text_file(const std::string& path, std::string_view body) {
  // tmp + fsync + durable rename (the parent directory is fsynced too, so
  // the new entry survives a crash): consumers of these files (aggregate
  // JSON/CSV, timing docs) treat existence as completeness, so a crashed
  // or failed writer must leave either the old content or nothing --
  // never a truncated file that looks finished.
  // unique_tmp_path: the daemon and a CLI run (or two daemon requests)
  // may publish the same output path concurrently; a shared ".tmp" name
  // would let one writer's rename publish the other's partial bytes.
  const std::string tmp_path = unique_tmp_path(path);
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (ok) ok = durable_rename(tmp_path, path);
  if (!ok) std::remove(tmp_path.c_str());
  return ok;
}

}  // namespace cpt::scenario
