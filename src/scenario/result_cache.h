// Persistent content-addressed result cache (cpt_serve's reason repeated
// sweeps cost nothing), living next to the corpus store: one file per
// cached JobResult, keyed by the job's content address.
//
// Key derivation reuses the journal fingerprint's FNV-1a-64 chain over
// exactly the identity a result is a function of: the cell_key string
// (family, params, perturbation, epsilon, tester, mode flags), the
// instance hash (pins the exact graph incl. its seed chain) and the
// tester seed. Deliberately *not* folded: job_index (the same cell can
// appear at different indices across manifests and must still hit) and
// sim_threads (results are bit-identical at every thread count by the
// determinism contract, so a result computed at --threads 4 serves a
// --threads 1 request byte-for-byte).
//
// Entries are single checksummed lines in the journal's record format
// ({"sum": "<16hex>", "rec": {...}}, FNV over the record bytes -- the
// same validate-before-trust discipline as corpus v3), written via
// unique-tmp + fsync + durable_rename so concurrent writers (threads or
// processes) can never publish a torn entry: a reader sees the old
// complete entry, the new complete entry, or a miss. The record carries
// the full identity (cell_key text, instance hash, seed), and load()
// verifies all three against the requesting job -- a 64-bit filename
// collision degrades to a miss, never to a wrong result.
//
// Corrupt entries (bit rot, torn by a mid-write power cut) are removed
// and reported as kCorrupt; the engine re-executes and re-stores, so the
// cache self-heals exactly like the corpus. Failed results are never
// stored (they may be transient); timed-out results are (a round-budget
// refusal is deterministic).
//
// Eviction: with max_entries > 0, store() scans the directory after
// publishing and removes the oldest entries by mtime until the count is
// back under the cap -- write-time FIFO, not LRU (reads do not touch
// mtime), which is cheap, multi-process safe (remove() of an already
// evicted entry is a no-op) and good enough for a bounded scratch cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "scenario/engine.h"
#include "scenario/manifest.h"

namespace cpt::scenario {

class ResultCache {
 public:
  // dir = "" disables the cache (every load misses, every store no-ops).
  // max_entries = 0 means unbounded.
  explicit ResultCache(std::string dir, std::uint64_t max_entries = 0);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // The 64-bit content address (see file comment for what it folds).
  static std::uint64_t key_for(const Job& job);

  enum class LoadStatus { kMiss, kHit, kCorrupt };

  // kHit fills *out with a result byte-equivalent to re-running the job
  // (same round-trip as journal replay). kCorrupt means an entry existed
  // but failed validation and was removed -- callers re-execute, exactly
  // like a miss. Thread- and process-safe against concurrent store()s.
  LoadStatus load(const Job& job, JobResult* out) const;

  // Publishes the result under the job's key (atomic replace; last writer
  // wins -- both wrote equivalent results by the determinism contract).
  // Failed results are rejected (returns false without writing).
  bool store(const Job& job, const JobResult& result) const;

  // Monotonic counters since construction (relaxed atomics; exact once
  // concurrent runs quiesce). Evictions count files this instance removed
  // to enforce max_entries; corrupt counts entries load() rejected.
  struct Counters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> corrupt{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> evictions{0};
  };
  const Counters& counters() const { return counters_; }

 private:
  std::string path_for(std::uint64_t key) const;
  void evict_over_cap() const;

  std::string dir_;
  std::uint64_t max_entries_ = 0;
  mutable Counters counters_;
};

}  // namespace cpt::scenario
