#include "scenario/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "apps/bipartite.h"
#include "apps/cycle_free.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "core/tester.h"
#include "partition/random_partition.h"
#include "scenario/faultinject.h"
#include "scenario/registry.h"
#include "scenario/result_cache.h"
#include "util/parallel.h"

namespace cpt::scenario {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool is_transient_error(const std::string& message) {
  return message.find("transient") != std::string::npos ||
         message.find("bad_alloc") != std::string::npos;
}

const char* sim_threads_policy_name(SimThreadsPolicy policy) {
  switch (policy) {
    case SimThreadsPolicy::kManifest:
      return "manifest";
    case SimThreadsPolicy::kSerialJobsWide:
      return "serial-jobs-wide";
    case SimThreadsPolicy::kThreadedJobsNarrow:
      return "threaded-jobs-narrow";
    case SimThreadsPolicy::kAuto:
      return "auto";
  }
  return "manifest";
}

bool parse_sim_threads_policy(const std::string& name, SimThreadsPolicy* out) {
  if (name == "manifest") {
    *out = SimThreadsPolicy::kManifest;
  } else if (name == "serial-jobs-wide") {
    *out = SimThreadsPolicy::kSerialJobsWide;
  } else if (name == "threaded-jobs-narrow") {
    *out = SimThreadsPolicy::kThreadedJobsNarrow;
  } else if (name == "auto") {
    *out = SimThreadsPolicy::kAuto;
  } else {
    return false;
  }
  return true;
}

JobResult run_job(const Job& job, const Graph& g, RunState* state,
                  util::TraceBuffer* trace) {
  JobResult r;
  r.n = g.num_nodes();
  r.m = g.num_edges();
  congest::SimMemory* const mem =
      state != nullptr ? &state->sim_memory : nullptr;
  Stage1Scratch* const scratch = state != nullptr ? &state->stage1 : nullptr;
  if (!util::kTraceCompiled) trace = nullptr;
  std::size_t job_span = 0;
  if (trace != nullptr) job_span = trace->begin_span("job");
  const double t0 = now_seconds();
  try {
    fault_point(FaultSite::kRunJob, job.job_index);
    switch (job.tester) {
      case TesterKind::kPlanarity: {
        TesterOptions opt;
        opt.epsilon = job.epsilon;
        opt.seed = job.tester_seed;
        opt.num_threads = job.sim_threads;
        opt.max_rounds = job.max_rounds;
        opt.sim_memory = mem;
        opt.stage1.adaptive = job.adaptive;
        opt.stage1.pipelined_streams = job.pipelined;
        opt.stage1.scratch = scratch;
        opt.trace = trace;
        const TesterResult tr = test_planarity(g, opt);
        r.verdict = tr.verdict;
        r.rounds = tr.ledger.total_rounds();
        r.messages = tr.ledger.total_messages();
        r.num_parts = tr.partition.num_parts;
        r.cut_edges = tr.partition.cut_edges;
        r.max_part_ecc = tr.partition.max_part_ecc;
        r.max_tree_depth = tr.partition.max_tree_depth;
        r.stage1_phases = tr.stage1_phases_emulated;
        r.stage1_phases_total = tr.stage1_phases_total;
        break;
      }
      case TesterKind::kCycleFree:
      case TesterKind::kBipartite: {
        MinorFreeOptions opt;
        opt.epsilon = job.epsilon;
        opt.alpha = job.alpha;
        opt.randomized = job.randomized;
        opt.delta = job.delta;
        opt.seed = job.tester_seed;
        opt.adaptive_phases = job.adaptive;
        opt.pipelined_streams = job.pipelined;
        opt.num_threads = job.sim_threads;
        opt.max_rounds = job.max_rounds;
        opt.sim_memory = mem;
        opt.scratch = scratch;
        opt.trace = trace;
        const AppResult ar = job.tester == TesterKind::kCycleFree
                                 ? test_cycle_freeness(g, opt)
                                 : test_bipartiteness(g, opt);
        r.verdict = ar.verdict;
        r.rounds = ar.ledger.total_rounds();
        r.messages = ar.ledger.total_messages();
        r.num_parts = ar.partition.num_parts;
        r.cut_edges = ar.partition.cut_edges;
        r.max_part_ecc = ar.partition.max_part_ecc;
        r.max_tree_depth = ar.partition.max_tree_depth;
        break;
      }
      case TesterKind::kStage1Partition: {
        congest::Network net(g);
        congest::SimOptions sopt;
        sopt.num_threads = job.sim_threads;
        sopt.max_rounds = job.max_rounds;
        sopt.memory = mem;
        sopt.trace = trace;
        congest::Simulator sim(net, sopt);
        congest::RoundLedger ledger;
        ledger.set_trace(trace);
        Stage1Options opt;
        opt.epsilon = job.epsilon;
        opt.alpha = job.alpha;
        opt.adaptive = job.adaptive;
        opt.pipelined_streams = job.pipelined;
        opt.scratch = scratch;
        const Stage1Result sr = run_stage1(sim, g, opt, ledger);
        r.verdict = sr.rejected ? Verdict::kReject : Verdict::kAccept;
        r.rounds = ledger.total_rounds();
        r.messages = ledger.total_messages();
        r.stage1_phases = sr.phases_emulated;
        r.stage1_phases_total = sr.phases_total;
        r.phase_stats = sr.phase_stats;
        const PartitionStats st = measure_partition(g, sr.forest);
        r.num_parts = st.num_parts;
        r.cut_edges = st.cut_edges;
        r.max_part_ecc = st.max_part_ecc;
        r.max_tree_depth = st.max_tree_depth;
        break;
      }
      case TesterKind::kRandomPartition: {
        congest::Network net(g);
        congest::SimOptions sopt;
        sopt.num_threads = job.sim_threads;
        sopt.max_rounds = job.max_rounds;
        sopt.memory = mem;
        sopt.trace = trace;
        congest::Simulator sim(net, sopt);
        congest::RoundLedger ledger;
        ledger.set_trace(trace);
        RandomPartitionOptions opt;
        opt.epsilon = job.epsilon;
        opt.delta = job.delta;
        opt.alpha = job.alpha;
        opt.adaptive = job.adaptive;
        opt.seed = job.tester_seed;
        opt.scratch = scratch;
        const RandomPartitionResult rr =
            run_random_partition(sim, g, opt, ledger);
        r.verdict = Verdict::kAccept;  // Theorem 4 has no reject path
        r.rounds = ledger.total_rounds();
        r.messages = ledger.total_messages();
        r.stage1_phases = rr.phases_emulated;
        r.stage1_phases_total = rr.phases_total;
        r.trials_per_phase = rr.trials_per_phase;
        r.phase_stats = rr.phase_stats;
        const PartitionStats st = measure_partition(g, rr.forest);
        r.num_parts = st.num_parts;
        r.cut_edges = st.cut_edges;
        r.max_part_ecc = st.max_part_ecc;
        r.max_tree_depth = st.max_tree_depth;
        break;
      }
    }
  } catch (const congest::RoundBudgetExceeded& e) {
    // A refused job, not a failed one: deterministic (same instance, same
    // budget, same round count), so never retried, and counted apart from
    // failures so callers can render it distinctly.
    r = JobResult{};
    r.n = g.num_nodes();
    r.m = g.num_edges();
    r.timed_out = true;
    r.error = e.what();
  } catch (const std::exception& e) {
    r = JobResult{};
    r.n = g.num_nodes();
    r.m = g.num_edges();
    r.failed = true;
    r.error = e.what();
  }
  r.wall_seconds = now_seconds() - t0;
  if (trace != nullptr) {
    util::TraceArgs args;
    args.add_hex("instance", job.instance.hash())
        .add("tester", tester_name(job.tester))
        .add("epsilon", job.epsilon)
        .add("verdict", r.timed_out  ? "timed_out"
                        : r.failed   ? "failed"
                        : r.verdict == Verdict::kReject ? "reject"
                                                        : "accept")
        .add("rounds", r.rounds)
        .add("messages", r.messages)
        .add("n", static_cast<std::uint64_t>(r.n))
        .add("m", static_cast<std::uint64_t>(r.m));
    if (!r.error.empty()) args.add("error", r.error);
    trace->end_span(job_span, std::move(args));
  }
  return r;
}

namespace {

// Bounded retry around run_job: transient failures (is_transient_error)
// re-run up to max_retries times with linear backoff; the returned
// result's `retries` counts the re-runs it took. Deterministic failures
// and timeouts return immediately -- re-running them cannot change the
// outcome.
JobResult run_job_retrying(const Job& job, const Graph& g,
                           const BatchOptions& options, RunState* state,
                           util::TraceBuffer* trace = nullptr) {
  JobResult r = run_job(job, g, state, trace);
  std::uint32_t attempts = 0;
  while (r.failed && is_transient_error(r.error) &&
         attempts < options.max_retries) {
    ++attempts;
    if (options.progress != nullptr) {
      options.progress->retries.fetch_add(1, std::memory_order_relaxed);
    }
    if (util::kTraceCompiled && trace != nullptr) {
      trace->instant("job/retry", util::TraceArgs()
                                      .add("attempt", attempts)
                                      .add("error", r.error));
    }
    if (options.retry_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms * attempts));
    }
    r = run_job(job, g, state, trace);
    r.retries = attempts;
  }
  return r;
}

// Materializes one instance into `*out`: corpus hit (mmap for v3), else a
// streaming generator straight into the store (then a mapped load-back),
// else build_instance (+ save). Returns true if the graph came off disk.
bool materialize_instance(const CorpusStore& store,
                          const ScenarioInstance& instance, bool cacheable,
                          Graph* out, bool* corrupt_file) {
  fault_point(FaultSite::kMaterialize, instance.hash());
  CorpusStore::LoadStatus status = CorpusStore::LoadStatus::kMiss;
  if (cacheable) {
    status = store.load(instance.hash(), out);
  }
  if (status == CorpusStore::LoadStatus::kHit) return true;
  *corrupt_file = status == CorpusStore::LoadStatus::kCorrupt;
  if (cacheable && store.enabled()) {
    // Families with a streaming edge generator never build a heap-resident
    // graph on a miss: the stream writes the v3 file directly and the
    // instance is served by mapping that file -- same bytes either way
    // (save_stream is pinned byte-identical to save(build_instance(...))).
    if (const auto stream = make_edge_stream(instance)) {
      if (store.save_stream(instance.hash(), *stream) &&
          store.load(instance.hash(), out) ==
              CorpusStore::LoadStatus::kHit) {
        return false;  // generated this run (streamed), not a disk hit
      }
    }
  }
  *out = build_instance(instance);
  if (cacheable) store.save(instance.hash(), *out);
  return false;
}

// Runs the execute-phase pool with a "batch/execute" span on the batch
// track when tracing. During the pool run nothing else writes track 0
// (workers write their own job tracks), so the span bracketing is safe.
template <typename Fn>
void run_execute_phase(util::TraceBuffer* batch_track, WorkerPool& pool,
                       Fn&& fn) {
  if (batch_track == nullptr) {
    pool.run(fn);
    return;
  }
  const std::uint64_t start = batch_track->now_ns();
  pool.run(fn);
  batch_track->complete_span("batch/execute", start);
}

BatchResult run_batch_impl(const Manifest& manifest,
                           const BatchOptions& options, const ResultSink* sink,
                           StreamStats* stats) {
  BatchResult out;
  const double t0 = now_seconds();
  out.jobs = expand_manifest(manifest);
  util::TraceSession* const trace =
      util::kTraceCompiled ? options.trace : nullptr;
  if (options.progress != nullptr) {
    options.progress->jobs_total.store(out.jobs.size(),
                                       std::memory_order_relaxed);
  }

  // Resolve the core split. `cores` is the resolved --threads value (a
  // shared external pool's width when one is donated); `batch_workers`
  // of them claim jobs concurrently and `sim_override`
  // (0 = keep the manifest's per-job value) is forced into every executed
  // job's sim_threads. kAuto resolves from the manifest alone -- job count
  // vs cores and the largest instance's advertised size -- so the choice
  // (like everything downstream of it) is schedule-deterministic.
  const unsigned cores = options.pool != nullptr
                             ? options.pool->num_workers()
                             : congest::resolve_sim_threads(options.threads);
  SimThreadsPolicy policy = options.sim_threads_policy;
  if (policy == SimThreadsPolicy::kAuto) {
    std::int64_t max_n = 0;
    for (const Job& job : out.jobs) {
      std::int64_t n = job.instance.params.get_int("n", 0);
      if (n == 0) {
        n = job.instance.params.get_int("rows", 0) *
            job.instance.params.get_int("cols", 0);
      }
      max_n = std::max(max_n, n);
    }
    // Enough jobs to fill the cores -> cross-sim parallelism wins (no
    // intra-sim overhead at all); fewer, large jobs -> put the cores
    // inside the simulator, where a big instance can actually use them.
    policy = (out.jobs.size() >= cores || max_n < 4096)
                 ? SimThreadsPolicy::kSerialJobsWide
                 : SimThreadsPolicy::kThreadedJobsNarrow;
  }
  unsigned batch_workers = cores;
  unsigned sim_override = 0;
  switch (policy) {
    case SimThreadsPolicy::kManifest:
    case SimThreadsPolicy::kAuto:  // resolved above; unreachable
      break;
    case SimThreadsPolicy::kSerialJobsWide:
      sim_override = 1;
      break;
    case SimThreadsPolicy::kThreadedJobsNarrow:
      batch_workers = 1;
      sim_override = cores;
      break;
  }
  out.sim_threads_policy = policy;
  out.threads_used = batch_workers;

  // Track 0 carries the batch phase spans. The resolved worker counts are
  // --threads dependent, so they go to runtime metrics, keeping the trace
  // stream byte-identical at every --threads value.
  util::TraceBuffer* const batch_track =
      trace != nullptr ? trace->make_track(0, "batch") : nullptr;
  if (batch_track != nullptr) {
    batch_track->instant("batch/start",
                         util::TraceArgs().add(
                             "jobs", static_cast<std::uint64_t>(out.jobs.size())));
    trace->metrics().set_gauge("rt/batch/workers",
                               static_cast<double>(batch_workers));
  }

  // Unique instances (by hash), in first-job order, and the job -> slot map.
  struct Slot {
    ScenarioInstance instance;
    Graph graph;
    bool from_disk = false;
    bool corrupt_file = false;
    std::string error;  // materialization failure: all its jobs fail
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> job_slot(out.jobs.size());
  {
    std::unordered_map<std::uint64_t, std::uint32_t> by_hash;
    for (std::size_t j = 0; j < out.jobs.size(); ++j) {
      const std::uint64_t h = out.jobs[j].instance.hash();
      auto [it, fresh] =
          by_hash.emplace(h, static_cast<std::uint32_t>(slots.size()));
      if (fresh) slots.push_back({out.jobs[j].instance, Graph{}, false, false, {}});
      job_slot[j] = it->second;
    }
  }
  out.corpus.unique_instances = slots.size();

  const CorpusStore store(options.corpus_dir);
  // Materialization is instance-parallel under every policy (no simulator
  // runs yet), so the pool spans all cores; only the execute phase narrows
  // to batch_workers. A donated external pool (cpt_serve) is reused as-is;
  // otherwise the batch owns one for the call.
  std::optional<WorkerPool> owned_pool;
  if (options.pool == nullptr) owned_pool.emplace(cores);
  WorkerPool& pool = options.pool != nullptr ? *options.pool : *owned_pool;

  const auto cancelled = [&] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };
  const auto resumed_job = [&](std::uint32_t j) {
    return options.completed != nullptr &&
           options.completed->count(j) != 0;
  };

  // Phase 0: consult the persistent result cache. Lookups are per-job
  // file reads, parallel across the pool; the hit set is a pure function
  // of the cache directory's state and the job list, never the schedule.
  ResultCache* const cache =
      options.result_cache != nullptr && options.result_cache->enabled()
          ? options.result_cache
          : nullptr;
  std::vector<JobResult> cache_results;
  std::vector<char> cache_hit;
  if (cache != nullptr) {
    cache_results.resize(out.jobs.size());
    cache_hit.assign(out.jobs.size(), 0);
    std::atomic<std::uint32_t> cursor{0};
    pool.run([&](unsigned) {
      while (!cancelled()) {
        const std::uint32_t j =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (j >= out.jobs.size()) return;
        if (resumed_job(j)) continue;  // journal replay wins; no I/O
        JobResult r;
        if (cache->load(out.jobs[j], &r) == ResultCache::LoadStatus::kHit) {
          cache_results[j] = std::move(r);
          cache_hit[j] = 1;
        }
      }
    });
  }
  const auto cache_hit_job = [&](std::uint32_t j) {
    return !cache_hit.empty() && cache_hit[j] != 0;
  };

  // Instances whose every job is already served (resume map or result
  // cache) never need their graph: skip materialization entirely, the
  // big win of a warm cache. The skip set derives from phase 0, so it is
  // schedule-deterministic like everything else.
  std::vector<char> slot_needed(slots.size(),
                                options.completed == nullptr &&
                                        cache == nullptr
                                    ? 1
                                    : 0);
  if (options.completed != nullptr || cache != nullptr) {
    for (std::size_t j = 0; j < out.jobs.size(); ++j) {
      if (!resumed_job(static_cast<std::uint32_t>(j)) &&
          !cache_hit_job(static_cast<std::uint32_t>(j))) {
        slot_needed[job_slot[j]] = 1;
      }
    }
  }

  // Phase 1: materialize every needed unique instance (corpus load or
  // generate), embarrassingly parallel, one slot per instance. Generation
  // failures are captured per slot -- worker callables must not throw.
  // Transient failures (memory spikes, injected io faults) get the same
  // bounded retry as job execution; a corrupt corpus file is not an error
  // at all (kCorrupt regenerates).
  std::atomic<std::uint32_t> materialize_retries{0};
  {
    std::atomic<std::uint32_t> cursor{0};
    auto materialize = [&](unsigned) {
      while (!cancelled()) {
        const std::uint32_t i =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= slots.size()) return;
        if (slot_needed[i] == 0) {
          if (trace != nullptr) {
            trace
                ->make_track(1 + i,
                             "instance " + slots[i].instance.label_with_seed())
                ->instant("corpus/skipped");
          }
          continue;
        }
        Slot& slot = slots[i];
        util::TraceBuffer* slot_track = nullptr;
        std::size_t slot_span = 0;
        if (trace != nullptr) {
          slot_track = trace->make_track(
              1 + i, "instance " + slot.instance.label_with_seed());
          slot_span = slot_track->begin_span("materialize");
        }
        // The "file" family's identity is a path, not content: a cached
        // copy would silently survive edits to the edge-list file, so it
        // never touches the disk corpus (loading it is already cheap).
        const bool cacheable = slot.instance.family != "file";
        for (std::uint32_t attempt = 0;; ++attempt) {
          try {
            slot.error.clear();
            slot.from_disk = materialize_instance(
                store, slot.instance, cacheable, &slot.graph,
                &slot.corrupt_file);
          } catch (const std::exception& e) {
            slot.error = e.what();
          }
          if (slot.error.empty() || !is_transient_error(slot.error) ||
              attempt >= options.max_retries) {
            break;
          }
          materialize_retries.fetch_add(1, std::memory_order_relaxed);
          if (options.progress != nullptr) {
            options.progress->retries.fetch_add(1, std::memory_order_relaxed);
          }
          if (slot_track != nullptr) {
            slot_track->instant("corpus/retry", util::TraceArgs()
                                                    .add("attempt", attempt + 1)
                                                    .add("error", slot.error));
          }
          if (options.retry_backoff_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                options.retry_backoff_ms * (attempt + 1)));
          }
        }
        if (options.progress != nullptr) {
          auto& counter = slot.from_disk && slot.error.empty()
                              ? options.progress->corpus_hits
                              : options.progress->corpus_generated;
          counter.fetch_add(1, std::memory_order_relaxed);
        }
        if (slot_track != nullptr) {
          if (slot.corrupt_file) slot_track->instant("corpus/corrupt");
          util::TraceArgs args;
          args.add_hex("hash", slot.instance.hash());
          if (!slot.error.empty()) {
            slot_track->instant("corpus/failed");
            args.add("status", "failed").add("error", slot.error);
          } else {
            slot_track->instant(slot.from_disk ? "corpus/hit"
                                               : "corpus/generated");
            args.add("status", slot.from_disk ? "hit" : "generated")
                .add("n", static_cast<std::uint64_t>(slot.graph.num_nodes()))
                .add("m", static_cast<std::uint64_t>(slot.graph.num_edges()));
          }
          slot_track->end_span(slot_span, std::move(args));
        }
      }
    };
    if (batch_track != nullptr) {
      const std::uint64_t mstart = batch_track->now_ns();
      pool.run(materialize);
      batch_track->complete_span(
          "batch/materialize", mstart,
          util::TraceArgs().add(
              "unique_instances",
              static_cast<std::uint64_t>(slots.size())));
    } else {
      pool.run(materialize);
    }
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slot_needed[i] == 0) {
      ++out.corpus.skipped;
      continue;
    }
    if (slots[i].from_disk) {
      ++out.corpus.disk_hits;
    } else {
      ++out.corpus.generated;
    }
    if (slots[i].corrupt_file) ++out.corpus.corrupt_files;
  }
  // Materialization re-runs count toward the degradation totals (no
  // retried_jobs tick: that counter is per job, not per instance).
  out.total_retries += materialize_retries.load(std::memory_order_relaxed);

  // Phase 2: run the jobs. Claiming order is racy; result placement is by
  // job slot, so the result array is schedule-independent.
  const auto cached_result = [&](std::uint32_t j) -> const JobResult* {
    if (options.completed == nullptr) return nullptr;
    const auto it = options.completed->find(j);
    return it == options.completed->end() ? nullptr : &it->second;
  };
  // One job's outcome: the resume cache, the result cache (phase 0), a
  // materialization failure propagated to every dependent job, or an
  // actual run (with retry).
  const auto produce = [&](std::uint32_t j, bool* resumed, bool* from_cache,
                           RunState* state) -> JobResult {
    // Job tracks follow the instance tracks in id space; the label is a
    // pure function of the expansion, so the layout is schedule-invariant.
    util::TraceBuffer* job_track = nullptr;
    if (trace != nullptr) {
      job_track = trace->make_track(
          1 + slots.size() + j,
          "job " + std::to_string(j) + " " + out.jobs[j].cell_key() + " i" +
              std::to_string(out.jobs[j].instance_index) + " t" +
              std::to_string(out.jobs[j].trial));
    }
    *resumed = false;
    *from_cache = false;
    if (const JobResult* cached = cached_result(j)) {
      *resumed = true;
      if (job_track != nullptr) job_track->instant("job/resumed");
      return *cached;
    }
    if (cache_hit_job(j)) {
      *from_cache = true;
      if (job_track != nullptr) job_track->instant("job/cache_hit");
      return cache_results[j];
    }
    const Slot& slot = slots[job_slot[j]];
    if (!slot.error.empty()) {
      JobResult r;
      r.failed = true;
      r.error = slot.error;
      if (job_track != nullptr) {
        job_track->instant("job/slot_error",
                           util::TraceArgs().add("error", slot.error));
      }
      return r;
    }
    if (sim_override != 0) {
      Job job = out.jobs[j];
      job.sim_threads = sim_override;
      return run_job_retrying(job, slot.graph, options, state, job_track);
    }
    return run_job_retrying(out.jobs[j], slot.graph, options, state,
                            job_track);
  };
  // One pooled RunState per batch worker, reused across every job that
  // worker claims (never shared concurrently: worker w touches states[w]
  // only). Allocation reuse only -- results stay schedule-independent.
  std::vector<RunState> states(cores);
  // Per-worker busy nanoseconds (time inside produce), sampled only when
  // tracing; flushed to an rt/ histogram after the pool joins.
  std::vector<std::uint64_t> busy_ns(cores, 0);
  const auto mark_done = [&] {
    if (options.progress != nullptr) {
      options.progress->jobs_done.fetch_add(1, std::memory_order_relaxed);
    }
  };
  const auto flush_busy = [&] {
    if (trace == nullptr) return;
    for (unsigned w = 0; w < batch_workers; ++w) {
      trace->metrics().record("rt/batch/worker_busy_ns", busy_ns[w]);
    }
  };
  const auto tally = [&](const JobResult& r, bool resumed, bool from_cache) {
    if (r.timed_out) {
      ++out.timed_out_jobs;
    } else if (r.failed) {
      ++out.failed_jobs;
    }
    if (r.retries > 0) {
      ++out.retried_jobs;
      out.total_retries += r.retries;
    }
    if (resumed) ++out.resumed_jobs;
    if (from_cache) ++out.cache_hit_jobs;
  };
  // Freshly executed results populate the cache on retire (hits and
  // journal-replayed results are already there or equivalent; failures are
  // rejected by store()). A store failure only costs the next run a
  // re-execution, so it is not an error.
  const auto publish = [&](std::uint32_t j, const JobResult& r, bool resumed,
                           bool from_cache) {
    if (cache != nullptr && !resumed && !from_cache && !r.failed) {
      cache->store(out.jobs[j], r);
    }
  };
  if (sink == nullptr) {
    out.results.resize(out.jobs.size());
    // Per-index flags, each written by the one worker that claimed the
    // index and read only after the pool joins -- no atomics needed.
    std::vector<char> executed(out.jobs.size(), 0);
    std::vector<char> resumed_flags(out.jobs.size(), 0);
    std::vector<char> cache_flags(out.jobs.size(), 0);
    std::atomic<std::uint32_t> cursor{0};
    auto execute = [&](unsigned w) {
      if (w >= batch_workers) return;  // narrow policies idle extra cores
      while (!cancelled()) {
        const std::uint32_t j =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (j >= out.jobs.size()) return;
        bool resumed = false;
        bool from_cache = false;
        const std::uint64_t b0 =
            trace != nullptr ? util::trace_now_ns() : 0;
        out.results[j] = produce(j, &resumed, &from_cache, &states[w]);
        if (trace != nullptr) busy_ns[w] += util::trace_now_ns() - b0;
        publish(j, out.results[j], resumed, from_cache);
        resumed_flags[j] = resumed ? 1 : 0;
        cache_flags[j] = from_cache ? 1 : 0;
        executed[j] = 1;
        mark_done();
      }
    };
    run_execute_phase(batch_track, pool, execute);
    flush_busy();
    for (std::size_t j = 0; j < out.results.size(); ++j) {
      if (executed[j] == 0) {
        // Cancelled before this job ran: a default JobResult would count
        // as an accept, so mark it failed -- partial retained batches must
        // never aggregate silently.
        out.results[j] = JobResult{};
        out.results[j].failed = true;
        out.results[j].error = "cancelled before execution";
        out.cancelled = true;
      } else {
        ++out.completed_jobs;
      }
      tally(out.results[j], resumed_flags[j] != 0, cache_flags[j] != 0);
    }
  } else {
    // Streaming: completed results park in `pending` until every earlier
    // job has retired, so the sink sees expansion order. A worker about to
    // run a job far ahead of the retirement frontier waits instead --
    // `pending` (the only per-job result storage) stays O(workers).
    //
    // Cancellation drains: workers stop claiming, claimed-but-waiting jobs
    // are abandoned (their index never lands in `pending`, so the frontier
    // simply stops there), in-flight jobs finish and retire if contiguous.
    // Every job below the final frontier went through the sink exactly
    // once -- the journal written from the sink resumes from there.
    std::atomic<std::uint32_t> cursor{0};
    std::mutex mu;
    std::condition_variable cv;
    struct Pending {
      JobResult result;
      bool resumed;
      bool from_cache;
    };
    std::unordered_map<std::uint32_t, Pending> pending;
    std::uint32_t next_retire = 0;
    std::size_t peak_pending = 0;
    const std::uint32_t window = 4 * batch_workers + 4;
    auto execute = [&](unsigned w) {
      if (w >= batch_workers) return;  // narrow policies idle extra cores
      while (!cancelled()) {
        const std::uint32_t j =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (j >= out.jobs.size()) return;
        {
          // The worker owning the retirement frontier (j == next_retire)
          // never waits, so the frontier always advances. The wait polls
          // the cancel flag (signal handlers cannot notify a condition
          // variable), abandoning the claimed job on cancellation.
          std::unique_lock<std::mutex> lock(mu);
          while (j >= next_retire + window) {
            if (cancelled()) return;
            cv.wait_for(lock, std::chrono::milliseconds(20));
          }
        }
        bool resumed = false;
        bool from_cache = false;
        const std::uint64_t b0 =
            trace != nullptr ? util::trace_now_ns() : 0;
        JobResult r = produce(j, &resumed, &from_cache, &states[w]);
        if (trace != nullptr) busy_ns[w] += util::trace_now_ns() - b0;
        // Cache publish happens outside the retirement lock (it is file
        // I/O) and before the result is surfaced, so a crash after the
        // sink ran never leaves a journaled-but-uncached fresh result.
        publish(j, r, resumed, from_cache);
        mark_done();
        {
          std::lock_guard<std::mutex> lock(mu);
          pending.emplace(j, Pending{std::move(r), resumed, from_cache});
          peak_pending = std::max(peak_pending, pending.size());
          while (true) {
            const auto it = pending.find(next_retire);
            if (it == pending.end()) break;
            tally(it->second.result, it->second.resumed,
                  it->second.from_cache);
            (*sink)(out.jobs[next_retire], it->second.result);
            pending.erase(it);
            ++next_retire;
          }
        }
        cv.notify_all();
      }
    };
    run_execute_phase(batch_track, pool, execute);
    flush_busy();
    out.completed_jobs = next_retire;
    out.cancelled = next_retire < out.jobs.size();
    if (stats != nullptr) stats->peak_pending_results = peak_pending;
    if (trace != nullptr) {
      trace->metrics().max_gauge("rt/batch/stream_window_peak",
                                 static_cast<double>(peak_pending));
    }
  }

  out.wall_seconds = now_seconds() - t0;
  if (trace != nullptr) {
    // Deterministic batch counters: pure functions of the manifest, the
    // corpus state and the fault plan -- never of the schedule.
    util::MetricsRegistry& m = trace->metrics();
    m.add_counter("batch/jobs", out.jobs.size());
    m.add_counter("batch/completed_jobs", out.completed_jobs);
    m.add_counter("batch/failed_jobs", out.failed_jobs);
    m.add_counter("batch/timed_out_jobs", out.timed_out_jobs);
    m.add_counter("batch/resumed_jobs", out.resumed_jobs);
    m.add_counter("batch/retried_jobs", out.retried_jobs);
    m.add_counter("batch/total_retries", out.total_retries);
    m.add_counter("batch/cache_hit_jobs", out.cache_hit_jobs);
    m.add_counter("corpus/unique_instances", out.corpus.unique_instances);
    m.add_counter("corpus/disk_hits", out.corpus.disk_hits);
    m.add_counter("corpus/generated", out.corpus.generated);
    m.add_counter("corpus/corrupt_files", out.corpus.corrupt_files);
    m.add_counter("corpus/skipped", out.corpus.skipped);
  }
  return out;
}

}  // namespace

BatchResult run_batch(const Manifest& manifest, const BatchOptions& options) {
  return run_batch_impl(manifest, options, nullptr, nullptr);
}

BatchResult run_batch(const Manifest& manifest, const BatchOptions& options,
                      const ResultSink& sink, StreamStats* stats) {
  return run_batch_impl(manifest, options, &sink, stats);
}

MaterializeResult materialize_manifest(const Manifest& manifest,
                                       const BatchOptions& options) {
  MaterializeResult out;
  const double t0 = now_seconds();
  const std::vector<Job> jobs = expand_manifest(manifest);
  // Unique instances by hash, first-job order (mirrors run_batch's dedup).
  std::vector<ScenarioInstance> instances;
  {
    std::unordered_map<std::uint64_t, std::uint32_t> by_hash;
    for (const Job& job : jobs) {
      if (by_hash
              .emplace(job.instance.hash(),
                       static_cast<std::uint32_t>(instances.size()))
              .second) {
        instances.push_back(job.instance);
      }
    }
  }
  out.corpus.unique_instances = instances.size();

  const CorpusStore store(options.corpus_dir);
  const unsigned workers = congest::resolve_sim_threads(options.threads);
  WorkerPool pool(workers);
  std::mutex mu;  // guards the result counters/errors only
  std::atomic<std::uint32_t> cursor{0};
  auto work = [&](unsigned) {
    while (true) {
      const std::uint32_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= instances.size()) return;
      const ScenarioInstance& instance = instances[i];
      const bool cacheable = instance.family != "file";
      std::string error;
      bool from_disk = false;
      bool corrupt = false;
      for (std::uint32_t attempt = 0;; ++attempt) {
        try {
          error.clear();
          // The graph dies at scope exit: materialize-only never keeps an
          // instance resident, so peak RSS is one instance (and streamed
          // families never build one at all).
          Graph g;
          from_disk =
              materialize_instance(store, instance, cacheable, &g, &corrupt);
        } catch (const std::exception& e) {
          error = e.what();
        }
        if (error.empty() || !is_transient_error(error) ||
            attempt >= options.max_retries) {
          break;
        }
        if (options.retry_backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              options.retry_backoff_ms * (attempt + 1)));
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!error.empty()) {
        ++out.failed_instances;
        out.errors.push_back(instance.label_with_seed() + ": " + error);
      } else if (from_disk) {
        ++out.corpus.disk_hits;
      } else {
        ++out.corpus.generated;
      }
      if (corrupt) ++out.corpus.corrupt_files;
    }
  };
  pool.run(work);
  out.wall_seconds = now_seconds() - t0;
  return out;
}

}  // namespace cpt::scenario
