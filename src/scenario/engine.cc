#include "scenario/engine.h"

#include <atomic>
#include <chrono>
#include <unordered_map>

#include "apps/bipartite.h"
#include "apps/cycle_free.h"
#include "congest/simulator.h"
#include "core/tester.h"
#include "util/parallel.h"

namespace cpt::scenario {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

JobResult run_job(const Job& job, const Graph& g) {
  JobResult r;
  r.n = g.num_nodes();
  r.m = g.num_edges();
  const double t0 = now_seconds();
  switch (job.tester) {
    case TesterKind::kPlanarity: {
      TesterOptions opt;
      opt.epsilon = job.epsilon;
      opt.seed = job.tester_seed;
      opt.num_threads = job.sim_threads;
      opt.stage1.adaptive = job.adaptive;
      const TesterResult tr = test_planarity(g, opt);
      r.verdict = tr.verdict;
      r.rounds = tr.ledger.total_rounds();
      r.messages = tr.ledger.total_messages();
      r.num_parts = tr.partition.num_parts;
      r.stage1_phases = tr.stage1_phases_emulated;
      break;
    }
    case TesterKind::kCycleFree:
    case TesterKind::kBipartite: {
      MinorFreeOptions opt;
      opt.epsilon = job.epsilon;
      opt.alpha = job.alpha;
      opt.randomized = job.randomized;
      opt.delta = job.delta;
      opt.seed = job.tester_seed;
      opt.adaptive_phases = job.adaptive;
      opt.num_threads = job.sim_threads;
      const AppResult ar = job.tester == TesterKind::kCycleFree
                               ? test_cycle_freeness(g, opt)
                               : test_bipartiteness(g, opt);
      r.verdict = ar.verdict;
      r.rounds = ar.ledger.total_rounds();
      r.messages = ar.ledger.total_messages();
      r.num_parts = ar.partition.num_parts;
      break;
    }
  }
  r.wall_seconds = now_seconds() - t0;
  return r;
}

BatchResult run_batch(const Manifest& manifest, const BatchOptions& options) {
  BatchResult out;
  const double t0 = now_seconds();
  out.jobs = expand_manifest(manifest);
  out.results.resize(out.jobs.size());
  out.threads_used = congest::resolve_sim_threads(options.threads);

  // Unique instances (by hash), in first-job order, and the job -> slot map.
  struct Slot {
    ScenarioInstance instance;
    Graph graph;
    bool from_disk = false;
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> job_slot(out.jobs.size());
  {
    std::unordered_map<std::uint64_t, std::uint32_t> by_hash;
    for (std::size_t j = 0; j < out.jobs.size(); ++j) {
      const std::uint64_t h = out.jobs[j].instance.hash();
      auto [it, fresh] =
          by_hash.emplace(h, static_cast<std::uint32_t>(slots.size()));
      if (fresh) slots.push_back({out.jobs[j].instance, Graph{}, false});
      job_slot[j] = it->second;
    }
  }
  out.corpus.unique_instances = slots.size();

  const CorpusStore store(options.corpus_dir);
  const unsigned workers = out.threads_used;
  WorkerPool pool(workers);

  // Phase 1: materialize every unique instance (corpus load or generate),
  // embarrassingly parallel, one slot per instance.
  {
    std::atomic<std::uint32_t> cursor{0};
    auto materialize = [&](unsigned) {
      while (true) {
        const std::uint32_t i =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= slots.size()) return;
        Slot& slot = slots[i];
        // The "file" family's identity is a path, not content: a cached
        // copy would silently survive edits to the edge-list file, so it
        // never touches the disk corpus (loading it is already cheap).
        const bool cacheable = slot.instance.family != "file";
        if (cacheable && store.load(slot.instance.hash(), &slot.graph)) {
          slot.from_disk = true;
        } else {
          slot.graph = build_instance(slot.instance);
          if (cacheable) store.save(slot.instance.hash(), slot.graph);
        }
      }
    };
    pool.run(materialize);
  }
  for (const Slot& slot : slots) {
    if (slot.from_disk) {
      ++out.corpus.disk_hits;
    } else {
      ++out.corpus.generated;
    }
  }

  // Phase 2: run the jobs. Claiming order is racy; result placement is by
  // job slot, so the result array is schedule-independent.
  {
    std::atomic<std::uint32_t> cursor{0};
    auto execute = [&](unsigned) {
      while (true) {
        const std::uint32_t j =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (j >= out.jobs.size()) return;
        out.results[j] = run_job(out.jobs[j], slots[job_slot[j]].graph);
      }
    };
    pool.run(execute);
  }

  out.wall_seconds = now_seconds() - t0;
  return out;
}

}  // namespace cpt::scenario
