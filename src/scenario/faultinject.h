// Deterministic fault injection for the batch stack's recovery paths.
//
// A FaultPlan is parsed from a small spec string (cpt_batch --fault-plan,
// or the CPT_FAULT_PLAN environment variable) and installed globally;
// instrumented sites in the corpus store, the registry's file loader, the
// engine's materialization/execution loops and the stream/journal writers
// then ask the plan whether to fail. With no plan installed every check is
// a single relaxed atomic load returning kNone -- production runs pay
// nothing.
//
// Determinism contract: every site is keyed by a schedule-independent
// 64-bit key (job index for run_job / journal records, instance hash for
// corpus and materialization, FNV of the path for edge-list reads, the
// emit ordinal for the in-order stream writer) -- never by a global hit
// counter -- so the same plan fires on the same work items at every
// --threads value. `rate` rules derive their coin from splitmix64 over
// (plan seed, rule index, site, key): reproducible pseudo-random sweeps.
//
// Spec grammar (comma-separated rules):
//
//   plan   := rule (',' rule)*
//   rule   := 'seed=' S
//           | action '@' site (':' cond)*
//   action := throw | badalloc | corrupt | shortwrite | exit
//   site   := corpus_load | corpus_save | edge_list | materialize
//           | run_job | stream_write | journal_write
//   cond   := 'key='   K   -- fire only for site key K
//           | 'every=' N   -- fire when key % N == 0
//           | 'rate='  R   -- fire with probability R (seeded, per key)
//           | 'times=' T   -- fire at most T times per key (default 1)
//
// The default times=1 makes `throw` faults transient by construction: the
// first attempt on a key fails, the engine's retry succeeds. times=<big>
// turns the same rule into a deterministic (never-recovering) failure.
//
// Action semantics:
//   throw      -- std::runtime_error("injected transient fault ...");
//                 classified transient by the engine and retried
//   badalloc   -- std::bad_alloc (the real-world transient: memory spike)
//   corrupt    -- returned to the caller: corpus_load treats the file as
//                 damaged, edge_list as malformed (deterministic failure)
//   shortwrite -- returned to the caller: writers simulate a failed or
//                 half-completed write (corpus_save leaves its .tmp file
//                 behind, exercising the orphan sweep)
//   exit       -- hard ::_exit(kFaultExitCode) at the site, after writers
//                 tear their in-progress record -- the kill-anywhere
//                 resume tests
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cpt::scenario {

enum class FaultSite {
  kCorpusLoad,
  kCorpusSave,
  kEdgeListRead,
  kMaterialize,
  kRunJob,
  kStreamWrite,
  kJournalWrite,
};
const char* fault_site_name(FaultSite site);

enum class FaultAction {
  kNone,
  kThrow,
  kBadAlloc,
  kCorrupt,
  kShortWrite,
  kExit,
};

// The status `exit` actions die with (chosen to mimic SIGKILL's 128+9 so
// harnesses treat it as a hard kill, distinct from the resumable 75).
inline constexpr int kFaultExitCode = 137;

class FaultPlan {
 public:
  // Parses the grammar above; false + *error on a malformed spec.
  static bool parse(std::string_view spec, FaultPlan* out, std::string* error);

  // Consumes one occurrence at (site, key) and returns the action of the
  // first matching rule with budget left (kNone otherwise). Thread-safe.
  // Never raises -- callers that want the raising behavior use
  // fault_raise / fault_point below.
  FaultAction check(FaultSite site, std::uint64_t key);

  bool empty() const { return rules_.empty(); }
  std::uint64_t seed() const { return seed_; }

 private:
  struct Rule {
    FaultAction action = FaultAction::kNone;
    FaultSite site = FaultSite::kRunJob;
    bool has_key = false;
    std::uint64_t key = 0;
    std::uint64_t every = 0;   // 0 = no modulus condition
    double rate = -1;          // < 0 = no rate condition
    std::uint32_t times = 1;   // per-key firing budget
    std::map<std::uint64_t, std::uint32_t> fired;  // key -> times fired
  };

  std::uint64_t seed_ = 1;
  std::vector<Rule> rules_;
  std::mutex mu_;
};

// Installs (or, with nullptr, removes) the process-global plan consulted
// by fault_check/fault_point. Not thread-safe against in-flight checks --
// install before starting a batch, as cpt_batch and the tests do.
void install_fault_plan(std::shared_ptr<FaultPlan> plan);

// kNone immediately when no plan is installed (one atomic load).
FaultAction fault_check(FaultSite site, std::uint64_t key);

// Performs the raising actions: kThrow/kBadAlloc throw, kExit flushes
// stdio and ::_exit(kFaultExitCode). kNone/kCorrupt/kShortWrite return
// (callers that passed through fault_check handle those themselves).
void fault_raise(FaultAction action, FaultSite site, std::uint64_t key);

// fault_raise(fault_check(site, key)): the one-liner for sites where only
// the raising actions make sense (run_job, materialize).
void fault_point(FaultSite site, std::uint64_t key);

}  // namespace cpt::scenario
