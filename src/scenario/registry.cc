#include "scenario/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "graph/generators.h"
#include "graph/io.h"
#include "scenario/faultinject.h"
#include "util/contracts.h"

namespace cpt::scenario {

std::string ParamValue::to_string() const {
  char buf[40];
  switch (kind) {
    case Kind::kInt:
      std::snprintf(buf, sizeof buf, "%" PRId64, i);
      return buf;
    case Kind::kDouble:
      std::snprintf(buf, sizeof buf, "%.17g", d);
      return buf;
    case Kind::kString:
      return s;
  }
  return {};
}

void ScenarioParams::set(std::string key, ParamValue v) {
  for (auto& [k, old] : kv_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  kv_.emplace_back(std::move(key), std::move(v));
}

const ParamValue* ScenarioParams::find(std::string_view key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t ScenarioParams::get_int(std::string_view key,
                                     std::int64_t def) const {
  const ParamValue* p = find(key);
  if (p == nullptr) return def;
  CPT_EXPECTS(p->kind == ParamValue::Kind::kInt && "integer param expected");
  return p->i;
}

double ScenarioParams::get_double(std::string_view key, double def) const {
  const ParamValue* p = find(key);
  if (p == nullptr) return def;
  CPT_EXPECTS(p->kind != ParamValue::Kind::kString && "numeric param expected");
  return p->kind == ParamValue::Kind::kInt ? static_cast<double>(p->i) : p->d;
}

std::string ScenarioParams::get_string(std::string_view key,
                                       std::string def) const {
  const ParamValue* p = find(key);
  if (p == nullptr) return def;
  CPT_EXPECTS(p->kind == ParamValue::Kind::kString && "string param expected");
  return p->s;
}

std::string ScenarioParams::signature() const {
  std::vector<std::pair<std::string, std::string>> rendered;
  rendered.reserve(kv_.size());
  for (const auto& [k, v] : kv_) rendered.emplace_back(k, v.to_string());
  std::sort(rendered.begin(), rendered.end());
  std::string out;
  for (const auto& [k, v] : rendered) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::string ScenarioInstance::label() const {
  std::string out = family + "(" + params.signature() + ")";
  if (!perturb.empty()) {
    out += "+" + perturb + "(" + perturb_params.signature() + ")";
  }
  return out;
}

std::string ScenarioInstance::label_with_seed() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "@%" PRIu64, seed);
  return label() + buf;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t ScenarioInstance::hash() const {
  std::uint64_t state = fnv1a64(label());
  state ^= seed;
  return splitmix64(state);
}

std::uint64_t derive_instance_seed(std::string_view scenario,
                                   const ScenarioParams& params,
                                   std::uint64_t base_seed,
                                   std::uint64_t index) {
  // Each stage feeds splitmix64's *mixed output* (not its +gamma state)
  // into the next injection, so no two inputs can cancel by XOR algebra.
  std::uint64_t s = 0x53434e5f43505431ULL;  // "SCN_CPT1": domain separator
  s ^= fnv1a64(scenario);
  s = splitmix64(s);
  s ^= fnv1a64(params.signature());
  s = splitmix64(s);
  s ^= base_seed;
  s = splitmix64(s);
  s ^= index;
  return splitmix64(s);
}

namespace {

NodeId p_node(const ScenarioParams& p, std::string_view key, std::int64_t def) {
  const std::int64_t v = p.get_int(key, def);
  CPT_EXPECTS(v >= 0 && "node-count param must be non-negative");
  return static_cast<NodeId>(v);
}

// ---- Family generators ----------------------------------------------------

Graph f_path(const ScenarioParams& p, Rng&) { return gen::path(p_node(p, "n", 64)); }
Graph f_cycle(const ScenarioParams& p, Rng&) { return gen::cycle(p_node(p, "n", 64)); }
Graph f_star(const ScenarioParams& p, Rng&) { return gen::star(p_node(p, "n", 64)); }
Graph f_complete(const ScenarioParams& p, Rng&) { return gen::complete(p_node(p, "k", 5)); }
Graph f_complete_bipartite(const ScenarioParams& p, Rng&) {
  return gen::complete_bipartite(p_node(p, "a", 3), p_node(p, "b", 3));
}
Graph f_grid(const ScenarioParams& p, Rng&) {
  return gen::grid(p_node(p, "rows", 16), p_node(p, "cols", 16));
}
Graph f_trigrid(const ScenarioParams& p, Rng&) {
  return gen::triangulated_grid(p_node(p, "rows", 16), p_node(p, "cols", 16));
}
Graph f_hypercube(const ScenarioParams& p, Rng&) {
  return gen::hypercube(static_cast<std::uint32_t>(p.get_int("dim", 4)));
}
Graph f_binary_tree(const ScenarioParams& p, Rng&) {
  return gen::binary_tree(p_node(p, "n", 127));
}
Graph f_random_tree(const ScenarioParams& p, Rng& rng) {
  return gen::random_tree(p_node(p, "n", 256), rng);
}
Graph f_outerplanar(const ScenarioParams& p, Rng& rng) {
  const NodeId n = p_node(p, "n", 128);
  const std::int64_t def_chords = n >= 3 ? (n - 3) / 2 : 0;
  return gen::outerplanar(n, p_node(p, "chords", def_chords), rng);
}
Graph f_apollonian(const ScenarioParams& p, Rng& rng) {
  return gen::apollonian(p_node(p, "n", 256), rng);
}
Graph f_random_planar(const ScenarioParams& p, Rng& rng) {
  const NodeId n = p_node(p, "n", 256);
  const std::int64_t def_m = 2 * static_cast<std::int64_t>(n);
  return gen::random_planar(n, static_cast<EdgeId>(p.get_int("m", def_m)), rng);
}
Graph f_gnp(const ScenarioParams& p, Rng& rng) {
  const NodeId n = p_node(p, "n", 256);
  CPT_EXPECTS(n > 0);
  const double prob = p.has("p") ? p.get_double("p", 0.0)
                                 : p.get_double("avg_degree", 8.0) / n;
  return gen::gnp(n, prob, rng);
}
Graph f_gnm(const ScenarioParams& p, Rng& rng) {
  const NodeId n = p_node(p, "n", 256);
  return gen::gnm(n, static_cast<EdgeId>(p.get_int("m", 4 * static_cast<std::int64_t>(n))), rng);
}
Graph f_random_regular(const ScenarioParams& p, Rng& rng) {
  // Default degree 4: the configuration model resamples whole matchings,
  // whose simple-graph acceptance rate decays like exp(-(d^2-1)/4) -- d >= 6
  // virtually never survives the generator's 200 attempts.
  return gen::random_regular(p_node(p, "n", 256),
                             static_cast<std::uint32_t>(p.get_int("d", 4)), rng);
}
Graph f_wheel(const ScenarioParams& p, Rng&) { return gen::wheel(p_node(p, "n", 64)); }
Graph f_caterpillar(const ScenarioParams& p, Rng& rng) {
  return gen::caterpillar(p_node(p, "spine", 64), p_node(p, "legs", 128), rng);
}
Graph f_toroidal_grid(const ScenarioParams& p, Rng&) {
  return gen::toroidal_grid(p_node(p, "rows", 16), p_node(p, "cols", 16));
}
Graph f_k5_blobs(const ScenarioParams& p, Rng& rng) {
  return gen::planar_with_k5_blobs(p_node(p, "backbone_n", 200),
                                   p_node(p, "blobs", 20), rng);
}
// Environmental failures (missing/unreadable files) throw instead of
// tripping a contract: the batch engine catches them per job, so one bad
// path fails its jobs -- reported, nonzero exit -- without killing a sweep.
Graph f_file(const ScenarioParams& p, Rng&) {
  const std::string path = p.get_string("path", "");
  if (path.empty()) {
    throw std::runtime_error("file scenario requires path=");
  }
  // Fault site for external input reads (keyed by path hash -- stable
  // across schedules and job orders): corrupt simulates a malformed
  // edge list, throw/badalloc a transient read failure. The hook lives
  // here rather than in graph/io because the graph layer must not depend
  // on the scenario layer.
  const FaultAction fault =
      fault_check(FaultSite::kEdgeListRead, fnv1a64(path));
  if (fault == FaultAction::kCorrupt) {
    throw std::runtime_error("file scenario: " + path +
                             ": malformed edge list (injected corruption)");
  }
  fault_raise(fault, FaultSite::kEdgeListRead, fnv1a64(path));
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("file scenario: cannot open " + path);
  }
  Graph g;
  std::string error;
  if (!try_read_edge_list(in, &g, &error)) {
    throw std::runtime_error("file scenario: " + path + ": " + error);
  }
  return g;
}

// ---- Perturbations --------------------------------------------------------

Graph x_plus_random_edges(const Graph& base, const ScenarioParams& p,
                          Rng& rng) {
  return gen::planar_plus_random_edges(
      base, static_cast<EdgeId>(p.get_int("extra", 0)), rng);
}

// Attaches `count` disjoint copies of `blob` to uniformly random base
// nodes, one bridge edge each (blob node 0 -> the chosen anchor). Each blob
// needs >= 1 edge removed to restore the base family's property, so the
// result is at least (count / m)-far from it -- the same argument as
// gen::planar_with_k5_blobs, over an arbitrary base.
Graph inject_blobs(const Graph& base, const Graph& blob, NodeId count,
                   Rng& rng) {
  CPT_EXPECTS(base.num_nodes() > 0);
  GraphBuilder b(base.num_nodes());
  for (const Endpoints e : base.edges()) b.add_edge(e.u, e.v);
  for (NodeId t = 0; t < count; ++t) {
    const NodeId anchor =
        static_cast<NodeId>(rng.next_below(base.num_nodes()));
    const NodeId off = b.num_nodes();
    for (NodeId v = 0; v < blob.num_nodes(); ++v) b.add_node();
    for (const Endpoints e : blob.edges()) b.add_edge(off + e.u, off + e.v);
    b.add_edge(off, anchor);
  }
  return std::move(b).build();
}

Graph x_k5_blobs(const Graph& base, const ScenarioParams& p, Rng& rng) {
  return inject_blobs(base, gen::complete(5),
                      p_node(p, "count", 8), rng);
}
Graph x_k33_blobs(const Graph& base, const ScenarioParams& p, Rng& rng) {
  return inject_blobs(base, gen::complete_bipartite(3, 3),
                      p_node(p, "count", 8), rng);
}
Graph x_disjoint_copies(const Graph& base, const ScenarioParams& p, Rng&) {
  return gen::disjoint_copies(base, p_node(p, "copies", 2));
}

// ---- Presets (examples' graph setups; see examples/*.cc) ------------------

// road_network: a planar street grid with `flyovers` long-range crossings
// (examples/road_network.cc).
ScenarioInstance preset_road_network(const ScenarioParams& user) {
  ScenarioInstance inst;
  inst.family = "grid";
  inst.params.set_int("rows", user.get_int("rows", 40));
  inst.params.set_int("cols", user.get_int("cols", 40));
  const std::int64_t flyovers = user.get_int("flyovers", 200);
  if (flyovers > 0) {
    inst.perturb = "plus_random_edges";
    inst.perturb_params.set_int("extra", flyovers);
  }
  return inst;
}

// overlay_backbone: a random planar P2P backbone with `overlay` extra links
// (examples/overlay_sweep.cc).
ScenarioInstance preset_overlay_backbone(const ScenarioParams& user) {
  ScenarioInstance inst;
  inst.family = "random_planar";
  inst.params.set_int("n", user.get_int("n", 1500));
  inst.params.set_int("m", user.get_int("m", 3200));
  const std::int64_t overlay = user.get_int("overlay", 300);
  if (overlay > 0) {
    inst.perturb = "plus_random_edges";
    inst.perturb_params.set_int("extra", overlay);
  }
  return inst;
}

}  // namespace

const std::vector<FamilyInfo>& scenario_families() {
  static const std::vector<FamilyInfo> kFamilies = {
      {"path", "n=64", "n", false, true, f_path},
      {"cycle", "n=64", "n", false, true, f_cycle},
      {"star", "n=64", "n", false, true, f_star},
      {"complete", "k=5", "k", false, false, f_complete},
      {"complete_bipartite", "a=3,b=3", "a,b", false, false,
       f_complete_bipartite},
      {"grid", "rows=16,cols=16", "rows,cols", false, true, f_grid},
      {"triangulated_grid", "rows=16,cols=16", "rows,cols", false, true,
       f_trigrid},
      {"hypercube", "dim=4", "dim", false, false, f_hypercube},
      {"binary_tree", "n=127", "n", false, true, f_binary_tree},
      {"random_tree", "n=256", "n", true, true, f_random_tree},
      {"outerplanar", "n=128,chords=(n-3)/2", "n,chords", true, true,
       f_outerplanar},
      {"apollonian", "n=256", "n", true, true, f_apollonian},
      {"random_planar", "n=256,m=2n", "n,m", true, true, f_random_planar},
      {"gnp", "n=256,avg_degree=8 (or p=)", "n,p,avg_degree", true, false,
       f_gnp},
      {"gnm", "n=256,m=4n", "n,m", true, false, f_gnm},
      {"random_regular", "n=256,d=4 (d>=6 rarely feasible)", "n,d", true,
       false, f_random_regular},
      {"wheel", "n=64", "n", false, true, f_wheel},
      {"caterpillar", "spine=64,legs=128", "spine,legs", true, true,
       f_caterpillar},
      {"toroidal_grid", "rows=16,cols=16", "rows,cols", false, false,
       f_toroidal_grid},
      {"k5_blobs", "backbone_n=200,blobs=20", "backbone_n,blobs", true, false,
       f_k5_blobs},
      {"file", "path=<edge list>", "path", false, false, f_file},
  };
  return kFamilies;
}

const std::vector<PerturbInfo>& scenario_perturbations() {
  static const std::vector<PerturbInfo> kPerturbs = {
      {"plus_random_edges", "extra=0", "extra", x_plus_random_edges},
      {"k5_blobs", "count=8", "count", x_k5_blobs},
      {"k33_blobs", "count=8", "count", x_k33_blobs},
      {"disjoint_copies", "copies=2", "copies", x_disjoint_copies},
  };
  return kPerturbs;
}

const std::vector<PresetInfo>& scenario_presets() {
  static const std::vector<PresetInfo> kPresets = {
      {"road_network", "rows=40,cols=40,flyovers=200", "rows,cols,flyovers",
       preset_road_network},
      {"overlay_backbone", "n=1500,m=3200,overlay=300", "n,m,overlay",
       preset_overlay_backbone},
  };
  return kPresets;
}

const FamilyInfo* find_family(std::string_view name) {
  for (const FamilyInfo& f : scenario_families()) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

const PerturbInfo* find_perturbation(std::string_view name) {
  for (const PerturbInfo& p : scenario_perturbations()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

const PresetInfo* find_preset(std::string_view name) {
  for (const PresetInfo& p : scenario_presets()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

bool is_known_scenario(std::string_view name) {
  return find_family(name) != nullptr || find_preset(name) != nullptr;
}

bool param_key_allowed(const char* keys, std::string_view key) {
  std::string_view rest(keys);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view head = rest.substr(0, comma);
    if (head == key) return true;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return false;
}

const char* scenario_param_keys(std::string_view name) {
  if (const PresetInfo* preset = find_preset(name)) return preset->param_keys;
  if (const FamilyInfo* family = find_family(name)) return family->param_keys;
  return nullptr;
}

ScenarioInstance resolve_scenario(std::string_view name,
                                  const ScenarioParams& params,
                                  std::uint64_t base_seed,
                                  std::uint64_t index) {
  // The seed derives from the *resolved* family and its params only --
  // perturbation params (and preset knobs that become them, e.g.
  // road_network's flyovers) are deliberately excluded, so sweeping a
  // perturbation axis perturbs one fixed base graph: a controlled
  // comparison, not a resample per sweep point. The corpus hash covers
  // the full label (perturbation included), so distinct perturbed graphs
  // never collide in the cache.
  ScenarioInstance inst;
  if (const PresetInfo* preset = find_preset(name)) {
    inst = preset->instantiate(params);
    CPT_ASSERT(find_family(inst.family) != nullptr);
  } else {
    const FamilyInfo* family = find_family(name);
    CPT_EXPECTS(family != nullptr && "unknown scenario name");
    inst.family = family->name;
    inst.params = params;
  }
  inst.seed = derive_instance_seed(inst.family, inst.params, base_seed, index);
  return inst;
}

Graph build_instance(const ScenarioInstance& instance) {
  const FamilyInfo* family = find_family(instance.family);
  CPT_EXPECTS(family != nullptr && "unknown scenario family");
  Rng rng(instance.seed);
  Graph g = family->make(instance.params, rng);
  if (!instance.perturb.empty()) {
    const PerturbInfo* perturb = find_perturbation(instance.perturb);
    CPT_EXPECTS(perturb != nullptr && "unknown perturbation");
    g = perturb->apply(g, instance.perturb_params, rng);
  }
  return g;
}

namespace {

// Analytic adjacency of the row-major lattice (node = r * cols + c), the
// membership test streaming extras need without a resident base graph.
// Expects a normalized pair (a < b).
bool lattice_has_edge(NodeId a, NodeId b, NodeId cols, bool diagonals) {
  const NodeId d = b - a;
  const bool not_last_col = a % cols != cols - 1;
  if (d == 1) return not_last_col;
  if (d == cols) return true;  // b < n already implies r + 1 < rows
  if (diagonals && d == cols + 1) return not_last_col;
  return false;
}

// Replays planar_plus_random_edges' exact draw sequence (two next_below
// per attempt, rejection on self-loops and already-present pairs) against
// the analytic lattice adjacency plus the extras drawn so far -- the same
// accept/reject decisions gen::planar_plus_random_edges makes against its
// `present` set, so the resulting edge multiset is identical.
std::vector<Endpoints> draw_lattice_extras(NodeId rows, NodeId cols,
                                           bool diagonals, std::uint64_t extra,
                                           std::uint64_t base_edges, Rng& rng) {
  const std::uint64_t n = static_cast<std::uint64_t>(rows) * cols;
  CPT_EXPECTS(base_edges + extra <= n * (n - 1) / 2);
  std::unordered_set<std::uint64_t> drawn;
  std::vector<Endpoints> added;
  added.reserve(static_cast<std::size_t>(extra));
  while (added.size() < extra) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    const NodeId a = std::min(u, v);
    const NodeId b = std::max(u, v);
    if (lattice_has_edge(a, b, cols, diagonals)) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (drawn.insert(key).second) added.push_back({a, b});
  }
  return added;
}

}  // namespace

std::unique_ptr<gen::EdgeStream> make_edge_stream(
    const ScenarioInstance& instance) {
  const bool diagonals = instance.family == "triangulated_grid";
  if (!diagonals && instance.family != "grid") return nullptr;
  if (!instance.perturb.empty() && instance.perturb != "plus_random_edges") {
    return nullptr;
  }
  const NodeId rows = p_node(instance.params, "rows", 16);
  const NodeId cols = p_node(instance.params, "cols", 16);
  auto base = diagonals ? gen::triangulated_grid_stream(rows, cols)
                        : gen::grid_stream(rows, cols);
  if (instance.perturb.empty()) return base;
  const auto extra = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, instance.perturb_params.get_int("extra", 0)));
  if (extra == 0) {
    // planar_plus_random_edges with extra=0 draws nothing; the base set is
    // the whole graph.
    return base;
  }
  // Mirror build_instance's seed discipline: the family generator ignores
  // the Rng, so the perturbation draws from a fresh instance-seeded chain.
  Rng rng(instance.seed);
  std::vector<Endpoints> extras = draw_lattice_extras(
      rows, cols, diagonals, extra, base->num_edges(), rng);
  return gen::merge_extra_edges(std::move(base), std::move(extras));
}

}  // namespace cpt::scenario
