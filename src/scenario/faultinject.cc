#include "scenario/faultinject.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "util/rng.h"

namespace cpt::scenario {
namespace {

// Installed plan. A shared_ptr juggled under a mutex with a raw "is a plan
// present" flag on the side: the flag makes the uninstalled fast path one
// relaxed load, while the mutex keeps install/check races defined (checks
// only happen between installs in practice, but tests reinstall often).
std::atomic<bool> g_plan_present{false};
std::mutex g_plan_mu;
std::shared_ptr<FaultPlan> g_plan;

std::shared_ptr<FaultPlan> current_plan() {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  return g_plan;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (~0ULL - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_rate(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

bool parse_action(std::string_view s, FaultAction* out) {
  if (s == "throw") *out = FaultAction::kThrow;
  else if (s == "badalloc") *out = FaultAction::kBadAlloc;
  else if (s == "corrupt") *out = FaultAction::kCorrupt;
  else if (s == "shortwrite") *out = FaultAction::kShortWrite;
  else if (s == "exit") *out = FaultAction::kExit;
  else return false;
  return true;
}

bool parse_site(std::string_view s, FaultSite* out) {
  if (s == "corpus_load") *out = FaultSite::kCorpusLoad;
  else if (s == "corpus_save") *out = FaultSite::kCorpusSave;
  else if (s == "edge_list") *out = FaultSite::kEdgeListRead;
  else if (s == "materialize") *out = FaultSite::kMaterialize;
  else if (s == "run_job") *out = FaultSite::kRunJob;
  else if (s == "stream_write") *out = FaultSite::kStreamWrite;
  else if (s == "journal_write") *out = FaultSite::kJournalWrite;
  else return false;
  return true;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kCorpusLoad: return "corpus_load";
    case FaultSite::kCorpusSave: return "corpus_save";
    case FaultSite::kEdgeListRead: return "edge_list";
    case FaultSite::kMaterialize: return "materialize";
    case FaultSite::kRunJob: return "run_job";
    case FaultSite::kStreamWrite: return "stream_write";
    case FaultSite::kJournalWrite: return "journal_write";
  }
  return "?";
}

bool FaultPlan::parse(std::string_view spec, FaultPlan* out,
                      std::string* error) {
  out->rules_.clear();
  out->seed_ = 1;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view rule_text = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (rule_text.empty()) {
      if (spec.empty()) break;  // empty spec = empty plan
      if (error) *error = "fault plan: empty rule";
      return false;
    }
    if (rule_text.substr(0, 5) == "seed=") {
      if (!parse_u64(rule_text.substr(5), &out->seed_)) {
        if (error) *error = "fault plan: bad seed in '" +
                            std::string(rule_text) + "'";
        return false;
      }
      if (pos > spec.size()) break;
      continue;
    }
    const std::size_t at = rule_text.find('@');
    if (at == std::string_view::npos) {
      if (error) *error = "fault plan: rule '" + std::string(rule_text) +
                          "' missing '@site'";
      return false;
    }
    Rule rule;
    if (!parse_action(rule_text.substr(0, at), &rule.action)) {
      if (error) *error = "fault plan: unknown action in '" +
                          std::string(rule_text) + "'";
      return false;
    }
    std::size_t cpos = rule_text.find(':', at + 1);
    const std::string_view site_text =
        rule_text.substr(at + 1, (cpos == std::string_view::npos
                                      ? rule_text.size()
                                      : cpos) - (at + 1));
    if (!parse_site(site_text, &rule.site)) {
      if (error) *error = "fault plan: unknown site in '" +
                          std::string(rule_text) + "'";
      return false;
    }
    while (cpos != std::string_view::npos) {
      const std::size_t next = rule_text.find(':', cpos + 1);
      const std::string_view cond = rule_text.substr(
          cpos + 1,
          (next == std::string_view::npos ? rule_text.size() : next) -
              (cpos + 1));
      cpos = next;
      bool ok = false;
      if (cond.substr(0, 4) == "key=") {
        ok = parse_u64(cond.substr(4), &rule.key);
        rule.has_key = ok;
      } else if (cond.substr(0, 6) == "every=") {
        ok = parse_u64(cond.substr(6), &rule.every) && rule.every > 0;
      } else if (cond.substr(0, 5) == "rate=") {
        ok = parse_rate(cond.substr(5), &rule.rate);
      } else if (cond.substr(0, 6) == "times=") {
        std::uint64_t t = 0;
        ok = parse_u64(cond.substr(6), &t) && t > 0 && t <= 0xffffffffULL;
        rule.times = static_cast<std::uint32_t>(t);
      }
      if (!ok) {
        if (error) *error = "fault plan: bad condition '" + std::string(cond) +
                            "' in '" + std::string(rule_text) + "'";
        return false;
      }
    }
    out->rules_.push_back(std::move(rule));
    if (pos > spec.size()) break;
  }
  return true;
}

FaultAction FaultPlan::check(FaultSite site, std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    Rule& rule = rules_[i];
    if (rule.site != site) continue;
    if (rule.has_key && rule.key != key) continue;
    if (rule.every != 0 && key % rule.every != 0) continue;
    if (rule.rate >= 0) {
      // Seeded per-(rule, site, key) coin: the same key draws the same
      // coin at every --threads value and on every retry, so a rate rule
      // is a deterministic *subset* of keys, not a racy dice roll. The
      // per-key `times` budget is what ends up making it transient.
      std::uint64_t s = seed_ ^ (0x46494E4A43505455ULL + i);
      splitmix64(s);
      s ^= static_cast<std::uint64_t>(site) * 0x9E3779B97F4A7C15ULL;
      splitmix64(s);
      s ^= key;
      const std::uint64_t coin = splitmix64(s);
      const double u =
          static_cast<double>(coin >> 11) * (1.0 / 9007199254740992.0);
      if (u >= rule.rate) continue;
    }
    std::uint32_t& fired = rule.fired[key];
    if (fired >= rule.times) continue;
    ++fired;
    return rule.action;
  }
  return FaultAction::kNone;
}

void install_fault_plan(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  g_plan = std::move(plan);
  g_plan_present.store(g_plan != nullptr && !g_plan->empty(),
                       std::memory_order_relaxed);
}

FaultAction fault_check(FaultSite site, std::uint64_t key) {
  if (!g_plan_present.load(std::memory_order_relaxed)) {
    return FaultAction::kNone;
  }
  const std::shared_ptr<FaultPlan> plan = current_plan();
  if (!plan) return FaultAction::kNone;
  return plan->check(site, key);
}

void fault_raise(FaultAction action, FaultSite site, std::uint64_t key) {
  switch (action) {
    case FaultAction::kNone:
    case FaultAction::kCorrupt:
    case FaultAction::kShortWrite:
      return;
    case FaultAction::kThrow: {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "injected transient fault at %s key=%llu",
                    fault_site_name(site),
                    static_cast<unsigned long long>(key));
      throw std::runtime_error(buf);
    }
    case FaultAction::kBadAlloc:
      throw std::bad_alloc();
    case FaultAction::kExit:
      // A crash, not an exit: skip atexit/flush so buffered stream output
      // tears exactly like a SIGKILL'd process's would.
      ::_exit(kFaultExitCode);
  }
}

void fault_point(FaultSite site, std::uint64_t key) {
  fault_raise(fault_check(site, key), site, key);
}

}  // namespace cpt::scenario
