// Batch engine: expands a manifest into jobs and executes the independent
// simulations concurrently on a util/parallel.h WorkerPool -- cross-
// simulation parallelism (each job runs its own Network/Simulator, by
// default single-worker). Jobs are claimed from an atomic cursor, so the
// schedule is work-stealing and nondeterministic, but every result lands
// in its job's slot and each job is self-contained (own graph reference,
// own seeds): the result array -- and everything aggregated from it -- is
// bit-identical at every --threads value. Wall-clock fields are the only
// nondeterministic outputs and are kept out of the aggregate schema.
//
// Graph materialization happens before job execution: unique instances
// (deduplicated by instance hash) are generated -- or loaded from the
// corpus store -- in parallel, then shared read-only by all their jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stage2.h"  // Verdict
#include "scenario/corpus.h"
#include "scenario/manifest.h"

namespace cpt::scenario {

struct BatchOptions {
  // Concurrent simulations. 0 resolves like the simulator's thread knob
  // (CPT_TEST_THREADS env, else 1).
  unsigned threads = 1;
  // Corpus directory ("" = in-memory dedup only).
  std::string corpus_dir;
};

struct JobResult {
  Verdict verdict = Verdict::kAccept;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  NodeId n = 0;
  EdgeId m = 0;
  NodeId num_parts = 0;
  std::uint32_t stage1_phases = 0;  // planarity tester only
  double wall_seconds = 0;  // nondeterministic; excluded from aggregates
};

struct CorpusCounters {
  std::uint64_t unique_instances = 0;
  std::uint64_t disk_hits = 0;   // loaded from the corpus store
  std::uint64_t generated = 0;   // built by the registry (disk misses)
};

struct BatchResult {
  std::vector<Job> jobs;
  std::vector<JobResult> results;  // slot i <-> jobs[i]
  CorpusCounters corpus;
  double wall_seconds = 0;
  unsigned threads_used = 1;
};

// Runs one job against a pre-built graph (also the single-simulation entry
// point the migrated E1/E3/E7 benches and the equivalence tests use).
JobResult run_job(const Job& job, const Graph& g);

BatchResult run_batch(const Manifest& manifest, const BatchOptions& options);

}  // namespace cpt::scenario
