// Batch engine: expands a manifest into jobs and executes the independent
// simulations concurrently on a util/parallel.h WorkerPool -- cross-
// simulation parallelism (each job runs its own Network/Simulator, by
// default single-worker). Jobs are claimed from an atomic cursor, so the
// schedule is work-stealing and nondeterministic, but every result lands
// in its job's slot and each job is self-contained (own graph reference,
// own seeds): the result array -- and everything aggregated from it -- is
// bit-identical at every --threads value. Wall-clock fields are the only
// nondeterministic outputs and are kept out of the aggregate schema.
//
// Graph materialization happens before job execution: unique instances
// (deduplicated by instance hash) are generated -- or loaded from the
// corpus store -- in parallel, then shared read-only by all their jobs.
//
// Two execution modes:
//   * run_batch(manifest, options) retains every JobResult (slot i <->
//     jobs[i]) -- what the migrated benches and most tests use;
//   * run_batch(manifest, options, sink) streams: the sink receives every
//     (job, result) pair exactly once, in job-index order (a bounded
//     reorder window turns the racy completion order back into expansion
//     order), and results are NOT retained -- peak per-job result storage
//     is the reorder window, O(batch threads), regardless of sweep size.
//     Feed the sink into a StreamingAggregator (scenario/aggregate.h) to
//     get aggregates bit-identical to the in-memory mode.
//
// Failures (an unreadable "file" path, any std::exception out of
// generation or simulation) are captured per job: the slot's JobResult
// carries failed=true plus the message, BatchResult::failed_jobs counts
// them, and aggregation excludes them -- callers must check (cpt_batch
// exits nonzero) instead of trusting a silently partial aggregate.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "congest/simulator.h"  // SimMemory
#include "core/stage2.h"  // Verdict
#include "partition/partition.h"  // PhaseStats, Stage1Scratch
#include "scenario/corpus.h"
#include "scenario/manifest.h"
#include "util/trace.h"

namespace cpt {
class WorkerPool;  // util/parallel.h
}

namespace cpt::scenario {

class ResultCache;  // scenario/result_cache.h

struct JobResult {
  Verdict verdict = Verdict::kAccept;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  NodeId n = 0;
  EdgeId m = 0;
  // Final partition quality (measure_partition; planarity tester and the
  // two partition workloads -- zero for cycle_free/bipartite, whose
  // AppResult reports num_parts only).
  NodeId num_parts = 0;
  std::uint64_t cut_edges = 0;
  std::uint32_t max_part_ecc = 0;
  std::uint32_t max_tree_depth = 0;
  std::uint32_t stage1_phases = 0;        // phases emulated
  std::uint32_t stage1_phases_total = 0;  // incl. fast-forwarded
  std::uint32_t trials_per_phase = 0;     // random_partition only (Lemma 13)
  // Per-phase trajectory (partition workloads only; E4's table).
  std::vector<PhaseStats> phase_stats;
  // Failure capture: failed jobs carry an error message and contribute to
  // no aggregate cell.
  bool failed = false;
  std::string error;
  // Round budget violation (SimOptions::max_rounds via Job::max_rounds):
  // deterministic, never retried, excluded from aggregate cells but
  // counted separately (BatchResult::timed_out_jobs) -- a timed-out job
  // is not a *failed* job, it is a refused one.
  bool timed_out = false;
  // Transient-failure re-runs this result took (0 = first attempt stood).
  // Deterministic under an injected fault plan; excluded from the
  // aggregate document (a resumed run retries differently than an
  // uninterrupted one) and reported via the timing doc / CLI summary.
  std::uint32_t retries = 0;
  double wall_seconds = 0;  // nondeterministic; excluded from aggregates
};

// Transient failures (worth retrying: injected transient faults, memory
// pressure) vs deterministic ones (same input -> same failure: parse
// errors, contract violations, budget timeouts). Classification is by
// message: "transient" or "bad_alloc" substrings mark a retryable error.
bool is_transient_error(const std::string& message);

// How run_batch splits its resolved core count between concurrent
// simulations (batch width) and workers inside one simulation. Results are
// bit-identical under every policy -- the simulator is thread-count-
// invariant and the aggregate schema carries no thread fields -- so the
// policy is purely a wall-clock/footprint knob.
enum class SimThreadsPolicy {
  // Default: all cores go to batch width; each job keeps the sim_threads
  // its manifest cell requested (usually 1).
  kManifest,
  // Force every job single-threaded and run --threads jobs concurrently:
  // the right split for sweeps with many small/medium jobs.
  kSerialJobsWide,
  // Run one job at a time with all cores inside its simulator: the right
  // split for a handful of huge instances that each parallelize well.
  kThreadedJobsNarrow,
  // Pick between the two above deterministically from the manifest (job
  // count vs cores, instance size) -- never from load or wall clock.
  kAuto,
};

// Canonical flag spellings: "manifest", "serial-jobs-wide",
// "threaded-jobs-narrow", "auto".
const char* sim_threads_policy_name(SimThreadsPolicy policy);
// Strict parse of the names above; returns false (out untouched) on
// anything else.
bool parse_sim_threads_policy(const std::string& name, SimThreadsPolicy* out);

// Live progress counters the batch engine bumps as it goes (relaxed
// atomics; read-only consumers like cpt_batch's --progress heartbeat poll
// them from another thread). Purely observational: nothing in the engine
// reads them back, so they cannot perturb results, aggregates or journal
// bytes.
struct ProgressCounters {
  std::atomic<std::uint64_t> jobs_total{0};
  std::atomic<std::uint64_t> jobs_done{0};      // executed, resumed or failed
  std::atomic<std::uint64_t> corpus_hits{0};    // instances served from disk
  std::atomic<std::uint64_t> corpus_generated{0};
  std::atomic<std::uint64_t> retries{0};        // job + materialize re-runs
};

struct BatchOptions {
  // Concurrent simulations. 0 resolves like the simulator's thread knob
  // (CPT_TEST_THREADS env, else 1).
  unsigned threads = 1;
  // Core split between batch width and intra-simulation workers (see
  // SimThreadsPolicy). Never affects results, only wall clock.
  SimThreadsPolicy sim_threads_policy = SimThreadsPolicy::kManifest;
  // Corpus directory ("" = in-memory dedup only).
  std::string corpus_dir;
  // Bounded per-job retry for transient failures (is_transient_error):
  // up to max_retries re-runs with linear backoff (attempt *
  // retry_backoff_ms). Deterministic failures -- and round-budget
  // timeouts -- are never retried: re-running them yields the same
  // outcome by the determinism contract.
  unsigned max_retries = 2;
  unsigned retry_backoff_ms = 10;
  // Cooperative cancellation (cpt_batch's SIGINT/SIGTERM path). When the
  // pointee flips true, workers stop claiming jobs, in-flight jobs drain,
  // and the streaming retirement frontier stops at the first unexecuted
  // job -- everything retired before it reached the sink exactly once, so
  // a journal written from the sink is resumable. BatchResult::cancelled
  // reports the truncation.
  const std::atomic<bool>* cancel = nullptr;
  // Resume cache (journal replay): jobs present here are not re-executed;
  // the cached result is fed through the sink / result slot unchanged.
  // Counted in BatchResult::resumed_jobs.
  const std::unordered_map<std::uint32_t, JobResult>* completed = nullptr;
  // Persistent result cache (scenario/result_cache.h). Consulted before
  // execution -- hits flow through the sink / result slot exactly like
  // resumed jobs, so aggregates stay byte-identical to uncached runs --
  // and populated as freshly executed jobs retire. Instances whose every
  // job is served from the cache (or the resume map) are not materialized
  // at all. Counted in BatchResult::cache_hit_jobs. nullptr = off.
  ResultCache* result_cache = nullptr;
  // External WorkerPool to run on instead of constructing one per batch
  // (cpt_serve shares one pool across requests, amortizing thread
  // creation and keeping the daemon's core budget fixed). When set, the
  // pool's worker count overrides `threads` as the resolved core count.
  // The pool must not be running anything else for the duration of the
  // call (WorkerPool is not reentrant).
  WorkerPool* pool = nullptr;
  // Optional trace session (util/trace.h). The engine lays out tracks
  // deterministically -- 0 = batch phases, 1+slot = instance
  // materialization, 1+num_slots+job_index = jobs -- so the rendered
  // stream's non-timestamp bytes are identical at every --threads value.
  // Schedule-dependent quantities (worker busy time, reorder-window
  // peaks, delivery-path tallies) go to the session registry under rt/
  // names. nullptr = no tracing.
  util::TraceSession* trace = nullptr;
  // Optional live progress counters (see ProgressCounters). nullptr = off.
  ProgressCounters* progress = nullptr;
};

struct CorpusCounters {
  std::uint64_t unique_instances = 0;
  std::uint64_t disk_hits = 0;   // loaded from the corpus store
  std::uint64_t generated = 0;   // built by the registry (disk misses)
  std::uint64_t corrupt_files = 0;  // rejected .cpg files (regenerated)
  // Instances never materialized because every dependent job was served
  // from the result cache / resume map (disk_hits + generated + skipped
  // == unique_instances).
  std::uint64_t skipped = 0;
};

struct BatchResult {
  std::vector<Job> jobs;
  std::vector<JobResult> results;  // slot i <-> jobs[i]; empty when streamed
  CorpusCounters corpus;
  std::uint32_t failed_jobs = 0;     // excludes timed_out jobs
  std::uint32_t timed_out_jobs = 0;  // round-budget violations
  // Degradation counters (deterministic under a fault plan; reported via
  // the timing doc and the CLI summary, never the aggregate document).
  std::uint32_t retried_jobs = 0;    // jobs needing >= 1 re-run
  std::uint32_t total_retries = 0;   // re-runs across all jobs
  std::uint32_t resumed_jobs = 0;    // served from the resume cache
  // Served from the persistent result cache (BatchOptions::result_cache).
  // Like resumed_jobs, reported via the timing doc / CLI summary only:
  // the aggregate document is byte-identical either way.
  std::uint32_t cache_hit_jobs = 0;
  // Cancellation (BatchOptions::cancel): true when the run stopped early.
  // completed_jobs is the retirement frontier -- every job below it went
  // through the sink exactly once; in a full run it equals jobs.size().
  bool cancelled = false;
  std::uint32_t completed_jobs = 0;
  double wall_seconds = 0;
  // Batch width actually used (concurrent simulations). Under kManifest /
  // kSerialJobsWide this is the resolved --threads value; under
  // kThreadedJobsNarrow it is 1 (the cores went inside the simulator).
  unsigned threads_used = 1;
  // Policy the run executed under, with kAuto resolved to its concrete
  // choice. Reported via the timing doc, never the aggregate.
  SimThreadsPolicy sim_threads_policy = SimThreadsPolicy::kManifest;
};

// Pooled per-worker run state: simulator buffers (flight payloads, inbox
// shards, the intra-sim WorkerPool) and Stage I scratch (peeling +
// merge-proposal arrays), reused across the jobs one batch worker claims.
// Purely an allocation optimization: every pooled buffer is re-sized and
// re-initialized by its consumer before use, so results are bit-identical
// to fresh state at every --threads value (pinned by tests). A RunState
// must never be shared between concurrently running jobs.
struct RunState {
  congest::SimMemory sim_memory;
  Stage1Scratch stage1;
};

// Runs one job against a pre-built graph (also the single-simulation entry
// point the migrated E1-E7 benches and the equivalence tests use).
// Exceptions are captured into JobResult::failed/error. `state` (optional)
// donates pooled buffers for the run and receives them back afterwards.
// `trace` (optional) receives a "job" span wrapping per-pass ledger spans
// and simulator events; it must be a track no other thread writes.
JobResult run_job(const Job& job, const Graph& g, RunState* state = nullptr,
                  util::TraceBuffer* trace = nullptr);

BatchResult run_batch(const Manifest& manifest, const BatchOptions& options);

// Streaming mode: sink(job, result) is invoked exactly once per job, in
// job-index order, serialized (never concurrently), from worker threads --
// it must not throw. BatchResult::results stays empty.
using ResultSink = std::function<void(const Job&, const JobResult&)>;

struct StreamStats {
  // High-water mark of completed-but-not-yet-retired results (the reorder
  // window) -- the streamed mode's whole per-job result footprint.
  std::size_t peak_pending_results = 0;
};

BatchResult run_batch(const Manifest& manifest, const BatchOptions& options,
                      const ResultSink& sink, StreamStats* stats = nullptr);

// Materialize-only mode (cpt_batch's `materialize` subcommand): resolves
// every unique cacheable instance in the manifest into the corpus store --
// via the registry's streaming edge generator where one exists (no
// resident graph, O(n) peak memory), else build_instance + save -- and
// releases each graph immediately, so peak RSS is bounded by one instance
// regardless of manifest size. Requires options.corpus_dir != "".
// Instances already present (and valid) in the store are verified-by-load
// and counted as disk_hits.
struct MaterializeResult {
  CorpusCounters corpus;
  std::uint32_t failed_instances = 0;
  std::vector<std::string> errors;  // one message per failed instance
  double wall_seconds = 0;
};

MaterializeResult materialize_manifest(const Manifest& manifest,
                                       const BatchOptions& options);

}  // namespace cpt::scenario
