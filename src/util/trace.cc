#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "util/contracts.h"

namespace cpt {
namespace util {

namespace {

// Local JSON helpers; util does not depend on scenario/json.h, but the
// formats match (%.17g doubles, same escape set) so documents compose.
void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string render_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string render_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string render_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_args_object(std::string& out, const TraceArgs& args) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : args.entries()) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, k);
    out += ':';
    out += v;
  }
  out += '}';
}

bool is_runtime_name(const std::string& name) {
  return name.size() >= 3 && name.compare(0, 3, "rt/") == 0;
}

// Nearest-rank quarter quantile over a sorted sample set; same
// convention as scenario/aggregate.h so doc consumers see one rule.
std::uint64_t quartile(const std::vector<std::uint64_t>& sorted, int k) {
  const std::size_t c = sorted.size();
  const std::size_t idx =
      (static_cast<std::size_t>(k) * (c - 1) + 2) / 4;
  return sorted[idx];
}

}  // namespace

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceArgs& TraceArgs::add(std::string key, std::uint64_t v) {
  kv_.emplace_back(std::move(key), render_u64(v));
  return *this;
}

TraceArgs& TraceArgs::add(std::string key, std::int64_t v) {
  kv_.emplace_back(std::move(key), render_i64(v));
  return *this;
}

TraceArgs& TraceArgs::add(std::string key, int v) {
  return add(std::move(key), static_cast<std::int64_t>(v));
}

TraceArgs& TraceArgs::add(std::string key, unsigned v) {
  return add(std::move(key), static_cast<std::uint64_t>(v));
}

TraceArgs& TraceArgs::add(std::string key, double v) {
  kv_.emplace_back(std::move(key), render_double(v));
  return *this;
}

TraceArgs& TraceArgs::add(std::string key, bool v) {
  kv_.emplace_back(std::move(key), v ? "true" : "false");
  return *this;
}

TraceArgs& TraceArgs::add(std::string key, std::string_view v) {
  std::string rendered;
  append_escaped(rendered, v);
  kv_.emplace_back(std::move(key), std::move(rendered));
  return *this;
}

TraceArgs& TraceArgs::add(std::string key, const char* v) {
  return add(std::move(key), std::string_view(v));
}

TraceArgs& TraceArgs::add_hex(std::string key, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", v);
  kv_.emplace_back(std::move(key), buf);
  return *this;
}

std::size_t TraceBuffer::begin_span(std::string name) {
  const std::size_t index = events_.size();
  TraceEvent e;
  e.kind = TraceEvent::kSpan;
  e.name = std::move(name);
  e.depth = static_cast<std::uint32_t>(open_.size());
  e.ts_ns = now_ns();
  events_.push_back(std::move(e));
  open_.push_back(index);
  return index;
}

void TraceBuffer::end_span(std::size_t index, TraceArgs args) {
  CPT_ASSERT(index < events_.size() &&
            events_[index].kind == TraceEvent::kSpan);
  CPT_ASSERT(!open_.empty() && open_.back() == index);
  open_.pop_back();
  TraceEvent& e = events_[index];
  e.dur_ns = now_ns() - e.ts_ns;
  e.args = std::move(args);
}

void TraceBuffer::complete_span(std::string name,
                                std::uint64_t start_rel_ns,
                                TraceArgs args) {
  TraceEvent e;
  e.kind = TraceEvent::kSpan;
  e.name = std::move(name);
  e.depth = static_cast<std::uint32_t>(open_.size());
  e.ts_ns = start_rel_ns;
  e.dur_ns = now_ns() - start_rel_ns;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceBuffer::instant(std::string name, TraceArgs args) {
  TraceEvent e;
  e.kind = TraceEvent::kInstant;
  e.name = std::move(name);
  e.depth = static_cast<std::uint32_t>(open_.size());
  e.ts_ns = now_ns();
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceBuffer::count(std::string name, std::uint64_t value) {
  TraceEvent e;
  e.kind = TraceEvent::kCount;
  e.name = std::move(name);
  e.depth = static_cast<std::uint32_t>(open_.size());
  e.value = value;
  e.ts_ns = now_ns();
  events_.push_back(std::move(e));
}

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::max_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void MetricsRegistry::record(const std::string& name,
                             std::uint64_t sample) {
  std::lock_guard<std::mutex> lock(mu_);
  hists_[name].push_back(sample);
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && hists_.empty();
}

namespace {

template <typename Map, typename RenderValue>
void append_section(std::string& out, const std::string& pad,
                    const char* title, const Map& map, bool runtime,
                    bool& first_section, RenderValue&& render_value) {
  bool any = false;
  for (const auto& [name, value] : map) {
    if (is_runtime_name(name) != runtime) continue;
    any = true;
    break;
  }
  if (!any) return;
  if (!first_section) out += ",\n";
  first_section = false;
  out += pad + "  ";
  append_escaped(out, title);
  out += ": {\n";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (is_runtime_name(name) != runtime) continue;
    if (!first) out += ",\n";
    first = false;
    out += pad + "    ";
    append_escaped(out, name);
    out += ": ";
    out += render_value(value);
  }
  out += "\n" + pad + "  }";
}

std::string render_hist(const std::vector<std::uint64_t>& samples) {
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t sum = 0;
  for (const std::uint64_t s : sorted) sum += s;
  std::string out = "{\"count\": " + render_u64(sorted.size());
  out += ", \"min\": " + render_u64(sorted.front());
  out += ", \"p25\": " + render_u64(quartile(sorted, 1));
  out += ", \"p50\": " + render_u64(quartile(sorted, 2));
  out += ", \"p75\": " + render_u64(quartile(sorted, 3));
  out += ", \"max\": " + render_u64(sorted.back());
  out += ", \"sum\": " + render_u64(sum);
  out += "}";
  return out;
}

// Renders one determinism class (deterministic or runtime) of the
// registry maps into `out` as the body of an object.
void append_sections(std::string& out, const std::string& pad,
                     bool runtime,
                     const std::map<std::string, std::uint64_t>& counters,
                     const std::map<std::string, double>& gauges,
                     const std::map<std::string,
                                    std::vector<std::uint64_t>>& hists) {
  bool first_section = true;
  append_section(out, pad, "counters", counters, runtime, first_section,
                 [](std::uint64_t v) { return render_u64(v); });
  append_section(out, pad, "gauges", gauges, runtime, first_section,
                 [](double v) { return render_double(v); });
  append_section(out, pad, "histograms", hists, runtime, first_section,
                 [](const std::vector<std::uint64_t>& v) {
                   return render_hist(v);
                 });
}

bool has_runtime(const std::map<std::string, std::uint64_t>& counters,
                 const std::map<std::string, double>& gauges,
                 const std::map<std::string,
                                std::vector<std::uint64_t>>& hists) {
  for (const auto& [name, v] : counters) {
    if (is_runtime_name(name)) return true;
  }
  for (const auto& [name, v] : gauges) {
    if (is_runtime_name(name)) return true;
  }
  for (const auto& [name, v] : hists) {
    if (is_runtime_name(name)) return true;
  }
  return false;
}

}  // namespace

std::string MetricsRegistry::render_object(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  append_sections(out, pad, /*runtime=*/false, counters_, gauges_,
                  hists_);
  if (has_runtime(counters_, gauges_, hists_)) {
    const bool had_deterministic = out.size() > 2;
    if (had_deterministic) out += ",\n";
    out += pad + "  \"runtime\": {\n";
    append_sections(out, pad + "  ", /*runtime=*/true, counters_,
                    gauges_, hists_);
    out += "\n" + pad + "  }";
  }
  out += "\n" + pad + "}";
  return out;
}

std::string MetricsRegistry::render_json(const std::string& name) const {
  std::string out = "{\n  \"schema\": \"cpt_metrics_v1\",\n  \"name\": ";
  append_escaped(out, name);
  out += ",\n  \"metrics\": ";
  out += render_object(2);
  out += "\n}\n";
  return out;
}

TraceBuffer* TraceSession::make_track(std::uint64_t id,
                                      std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : tracks_) {
    if (t->track_id() == id) return t.get();
  }
  tracks_.push_back(std::make_unique<TraceBuffer>(
      id, std::move(label), epoch_ns_, &metrics_));
  return tracks_.back().get();
}

std::string TraceSession::render_jsonl(const std::string& name) const {
  std::vector<const TraceBuffer*> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    order.reserve(tracks_.size());
    for (const auto& t : tracks_) order.push_back(t.get());
  }
  std::sort(order.begin(), order.end(),
            [](const TraceBuffer* a, const TraceBuffer* b) {
              return a->track_id() < b->track_id();
            });
  std::string out = "{\"schema\":\"cpt_trace_v1\",\"name\":";
  append_escaped(out, name);
  out += ",\"tracks\":" + render_u64(order.size()) + "}\n";
  for (const TraceBuffer* t : order) {
    out += "{\"track\":" + render_u64(t->track_id()) + ",\"label\":";
    append_escaped(out, t->label());
    out += "}\n";
    std::uint64_t seq = 0;
    for (const TraceEvent& e : t->events()) {
      out += "{\"track\":" + render_u64(t->track_id());
      out += ",\"seq\":" + render_u64(seq++);
      out += ",\"kind\":";
      switch (e.kind) {
        case TraceEvent::kSpan: out += "\"span\""; break;
        case TraceEvent::kInstant: out += "\"instant\""; break;
        case TraceEvent::kCount: out += "\"count\""; break;
      }
      out += ",\"name\":";
      append_escaped(out, e.name);
      out += ",\"depth\":" + render_u64(e.depth);
      if (e.kind == TraceEvent::kCount) {
        out += ",\"value\":" + render_u64(e.value);
      }
      if (!e.args.empty()) {
        out += ",\"args\":";
        append_args_object(out, e.args);
      }
      // Timestamps last: the deterministic view of a line is a suffix
      // strip (see strip_trace_timestamps in scenario/trace_analysis).
      out += ",\"ts_ns\":" + render_u64(e.ts_ns);
      if (e.kind == TraceEvent::kSpan) {
        out += ",\"dur_ns\":" + render_u64(e.dur_ns);
      }
      out += "}\n";
    }
  }
  return out;
}

}  // namespace util
}  // namespace cpt
