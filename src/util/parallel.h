// A persistent fork-join worker pool for deterministic data-parallel
// stages. The pool owns `num_workers() - 1` threads; the caller of run()
// acts as the last worker, so a pool of size 1 never context-switches and
// a dispatch costs two mutex hand-offs per helper thread. Work is handed
// out as a single callable invoked once per worker id -- the caller is
// responsible for making the id -> work mapping deterministic (the CONGEST
// simulator maps worker ids to fixed node-id shards).
//
// Memory-ordering contract: everything written by the caller before run()
// happens-before every fn(w) invocation, and everything written inside
// fn(w) happens-before run()'s return (the dispatch mutex sequences both
// directions). Worker callables must not throw.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cpt {

class WorkerPool {
 public:
  // Spawns `num_workers - 1` helper threads. num_workers >= 1.
  explicit WorkerPool(unsigned num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned num_workers() const { return num_workers_; }

  // Invokes fn(w) for every w in [0, num_workers()) -- helpers run
  // w in [0, num_workers()-1), the calling thread runs the last id --
  // and returns once all invocations completed. Not reentrant.
  void run(void (*fn)(void*, unsigned), void* arg);

  // Convenience wrapper for lambdas (lvalue or rvalue).
  template <typename Fn>
  void run(Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    auto thunk = [](void* a, unsigned w) { (*static_cast<F*>(a))(w); };
    run(+thunk, &fn);
  }

 private:
  void worker_loop(unsigned idx);

  unsigned num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;     // bumped per dispatch
  unsigned pending_ = 0;        // helpers still running the current epoch
  bool stopping_ = false;
  void (*fn_)(void*, unsigned) = nullptr;
  void* arg_ = nullptr;
};

}  // namespace cpt
