#include "util/union_find.h"

#include "util/contracts.h"

namespace cpt {

UnionFind::UnionFind(std::uint32_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (std::uint32_t i = 0; i < n; ++i) parent_[i] = i;
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  CPT_EXPECTS(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t x, std::uint32_t y) {
  std::uint32_t rx = find(x);
  std::uint32_t ry = find(y);
  if (rx == ry) return false;
  if (size_[rx] < size_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  size_[rx] += size_[ry];
  --num_sets_;
  return true;
}

}  // namespace cpt
