// Disjoint-set forest with union by size and path halving.
#pragma once

#include <cstdint>
#include <vector>

namespace cpt {

class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n);

  std::uint32_t find(std::uint32_t x);

  // Returns true if x and y were in different sets (i.e., a merge happened).
  bool unite(std::uint32_t x, std::uint32_t y);

  bool same(std::uint32_t x, std::uint32_t y) { return find(x) == find(y); }

  std::uint32_t set_size(std::uint32_t x) { return size_[find(x)]; }

  std::uint32_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::uint32_t num_sets_;
};

}  // namespace cpt
