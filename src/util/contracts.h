// Lightweight contract checking in the spirit of the Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations abort with a source location;
// they indicate programmer error, never recoverable conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cpt {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace cpt

// CPT_DISABLE_CONTRACTS compiles all checks out (maximum-throughput
// builds). Checked conditions must stay side-effect free.
#if defined(CPT_DISABLE_CONTRACTS)

#define CPT_EXPECTS(cond) ((void)0)
#define CPT_ENSURES(cond) ((void)0)
#define CPT_ASSERT(cond) ((void)0)

#else

#define CPT_EXPECTS(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::cpt::contract_fail("Precondition", #cond, __FILE__, \
                                      __LINE__);                       \
  } while (0)

#define CPT_ENSURES(cond)                                               \
  do {                                                                  \
    if (!(cond)) ::cpt::contract_fail("Postcondition", #cond, __FILE__, \
                                      __LINE__);                        \
  } while (0)

#define CPT_ASSERT(cond)                                            \
  do {                                                              \
    if (!(cond)) ::cpt::contract_fail("Invariant", #cond, __FILE__, \
                                      __LINE__);                    \
  } while (0)

#endif  // CPT_DISABLE_CONTRACTS
