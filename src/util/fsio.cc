#include "util/fsio.h"

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

namespace cpt {

bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool durable_rename(const std::string& tmp_path, const std::string& final_path) {
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) return false;
  return fsync_parent_dir(final_path);
}

}  // namespace cpt
