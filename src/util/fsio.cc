#include "util/fsio.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cpt {

bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool durable_rename(const std::string& tmp_path, const std::string& final_path) {
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) return false;
  return fsync_parent_dir(final_path);
}

std::string unique_tmp_path(const std::string& final_path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  char suffix[48];
  std::snprintf(suffix, sizeof suffix, ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(n));
  return final_path + suffix;
}

bool sweepable_tmp(const char* name, const char* marker) {
  const char* at = std::strstr(name, marker);
  if (at == nullptr) return false;
  const char* rest = at + std::strlen(marker);
  if (*rest == '\0') return true;  // legacy fixed "<final>.tmp" name
  if (*rest != '.') return false;  // some other file, not a publish temp
  char* end = nullptr;
  const long pid = std::strtol(rest + 1, &end, 10);
  if (end == rest + 1 || end == nullptr || *end != '.' || pid <= 0) {
    return true;  // malformed suffix: nothing owns it
  }
  // kill(pid, 0) probes liveness without signalling. ESRCH means the
  // owner died mid-publish (a true orphan); EPERM means *some* live
  // process holds the pid -- possibly recycled, but deleting a live
  // writer's temp is the worse failure, so keep it for a later sweep.
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return false;
  return errno == ESRCH;
}

}  // namespace cpt
