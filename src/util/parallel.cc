#include "util/parallel.h"

#include "util/contracts.h"

namespace cpt {

WorkerPool::WorkerPool(unsigned num_workers) : num_workers_(num_workers) {
  CPT_EXPECTS(num_workers >= 1);
  threads_.reserve(num_workers - 1);
  for (unsigned i = 0; i + 1 < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(void (*fn)(void*, unsigned), void* arg) {
  if (!threads_.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    arg_ = arg;
    pending_ = static_cast<unsigned>(threads_.size());
    ++epoch_;
    work_cv_.notify_all();
  }
  const auto drain = [this] {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  };
  try {
    fn(arg, num_workers_ - 1);  // the caller is the last worker
  } catch (...) {
    // The callable and whatever it captures must outlive the helpers:
    // finish the dispatch before letting the exception unwind the caller.
    if (!threads_.empty()) drain();
    throw;
  }
  if (!threads_.empty()) drain();
}

void WorkerPool::worker_loop(unsigned idx) {
  std::uint64_t seen = 0;
  for (;;) {
    void (*fn)(void*, unsigned) = nullptr;
    void* arg = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
      fn = fn_;
      arg = arg_;
    }
    fn(arg, idx);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace cpt
