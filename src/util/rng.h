// Deterministic, seedable random number generation used everywhere in the
// library. We ship our own xoshiro256** so results are reproducible across
// standard libraries (std::mt19937 streams are portable, but distributions
// are not).
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace cpt {

// SplitMix64; used to seed xoshiro and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be positive. Uses Lemire's method.
  std::uint64_t next_below(std::uint64_t bound) {
    CPT_EXPECTS(bound > 0);
    while (true) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    CPT_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bernoulli(double p) { return next_double() < p; }

  // Standard exponential with rate lambda (> 0).
  double next_exponential(double lambda);

  // Random permutation of {0,..,n-1} (Fisher-Yates).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

  // Sample k distinct values from {0,..,n-1} (Floyd's algorithm), unsorted.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  // Derive an independent child stream; deterministic in (this stream state,
  // salt). Useful for giving each simulated node its own generator.
  Rng fork(std::uint64_t salt) {
    std::uint64_t mix = state_[0] ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cpt
