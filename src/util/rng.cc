#include "util/rng.h"

#include <cmath>
#include <unordered_set>

namespace cpt {

double Rng::next_exponential(double lambda) {
  CPT_EXPECTS(lambda > 0);
  // Avoid log(0): next_double() is in [0,1), so 1-u is in (0,1].
  return -std::log(1.0 - next_double()) / lambda;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  CPT_EXPECTS(k <= n);
  std::unordered_set<std::uint32_t> chosen;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(next_below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace cpt
