// Structured tracing + metrics registry.
//
// Three event kinds flow through a TraceBuffer: spans (named intervals
// with nesting depth), instants (point events), and counts (named
// samples). Every event may carry pre-rendered JSON args. A
// TraceSession owns one buffer ("track") per logical lane — batch
// driver, instance materialization slot, job — and renders them as a
// `cpt_trace_v1` JSONL stream in deterministic (track id, seq) order.
//
// Determinism contract: `ts_ns` and `dur_ns` are the ONLY fields that
// may differ between two runs of the same workload; every other byte
// of the rendered trace is schedule-invariant, so traces diff like
// aggregates once timestamps are stripped (see cpt_trace diff).
// Schedule-dependent quantities (delivery-path choices, wake
// latencies, worker utilization) go to the MetricsRegistry under an
// `rt/` name prefix, which the renderer segregates into a "runtime"
// section that diffing ignores.
//
// Overhead: every instrumentation site is guarded by a null check on
// the buffer/session pointer (a single predictable branch when tracing
// is off), and building with -DCPT_TRACE_DISABLED=1 turns
// `kTraceCompiled` into a compile-time false so the guarded blocks are
// dead-code-eliminated entirely.
//
// Threading: a TraceBuffer is single-writer; concurrency comes from
// giving each lane its own track. TraceSession::make_track and the
// MetricsRegistry are mutex-guarded and safe from any thread.
#ifndef CPT_UTIL_TRACE_H_
#define CPT_UTIL_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cpt {
namespace util {

#if defined(CPT_TRACE_DISABLED)
inline constexpr bool kTraceCompiled = false;
#else
inline constexpr bool kTraceCompiled = true;
#endif

// Monotonic wall clock, ns. Absolute value is meaningless; only
// differences matter.
std::uint64_t trace_now_ns();

// Ordered key/value args attached to an event. Values are rendered to
// JSON immediately so the event stores plain strings.
class TraceArgs {
 public:
  TraceArgs& add(std::string key, std::uint64_t v);
  TraceArgs& add(std::string key, std::int64_t v);
  TraceArgs& add(std::string key, int v);
  TraceArgs& add(std::string key, unsigned v);
  TraceArgs& add(std::string key, double v);
  TraceArgs& add(std::string key, bool v);
  TraceArgs& add(std::string key, std::string_view v);
  TraceArgs& add(std::string key, const char* v);
  // 0x-prefixed lower-case hex, for instance hashes.
  TraceArgs& add_hex(std::string key, std::uint64_t v);

  bool empty() const { return kv_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return kv_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;  // value is JSON
};

struct TraceEvent {
  enum Kind : std::uint8_t { kSpan, kInstant, kCount };
  Kind kind = kInstant;
  std::uint32_t depth = 0;       // span nesting depth within the track
  std::string name;
  std::uint64_t value = 0;       // kCount only
  TraceArgs args;
  std::uint64_t ts_ns = 0;       // relative to session epoch
  std::uint64_t dur_ns = 0;      // kSpan only
};

class MetricsRegistry;

// Single-writer event buffer for one track.
class TraceBuffer {
 public:
  TraceBuffer(std::uint64_t track_id, std::string label,
              std::uint64_t epoch_ns, MetricsRegistry* metrics)
      : track_id_(track_id),
        label_(std::move(label)),
        epoch_ns_(epoch_ns),
        metrics_(metrics) {}

  // Opens a span; returns its event index for end_span. Events render
  // in begin order.
  std::size_t begin_span(std::string name);
  void end_span(std::size_t index, TraceArgs args = TraceArgs());
  // A span whose interval was measured externally: starts at
  // start_rel_ns (relative ns, as returned by now_ns) and ends now.
  void complete_span(std::string name, std::uint64_t start_rel_ns,
                     TraceArgs args = TraceArgs());
  void instant(std::string name, TraceArgs args = TraceArgs());
  void count(std::string name, std::uint64_t value);

  // Session-relative monotonic timestamp.
  std::uint64_t now_ns() const { return trace_now_ns() - epoch_ns_; }

  std::uint64_t track_id() const { return track_id_; }
  const std::string& label() const { return label_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  // Registry shared by all tracks of the owning session (may be
  // detached-null in tests).
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  std::uint64_t track_id_;
  std::string label_;
  std::uint64_t epoch_ns_;
  MetricsRegistry* metrics_;
  std::vector<TraceEvent> events_;
  std::vector<std::size_t> open_;  // indices of currently open spans
};

// RAII span. A null buffer makes every operation a no-op.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buf, std::string name) : buf_(buf) {
    if (kTraceCompiled && buf_ != nullptr) {
      index_ = buf_->begin_span(std::move(name));
    }
  }
  ~TraceSpan() { end(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Close early, optionally attaching args.
  void end(TraceArgs args = TraceArgs()) {
    if (kTraceCompiled && buf_ != nullptr) {
      buf_->end_span(index_, std::move(args));
      buf_ = nullptr;
    }
  }

 private:
  TraceBuffer* buf_;
  std::size_t index_ = 0;
};

// Named counters, gauges, and u64 histograms with nearest-rank
// quantiles. Names with an `rt/` prefix are runtime-only (schedule
// dependent) and render under a separate "runtime" section that
// `cpt_trace diff` ignores; all other names must be deterministic.
class MetricsRegistry {
 public:
  void add_counter(const std::string& name, std::uint64_t delta);
  void set_gauge(const std::string& name, double value);
  void max_gauge(const std::string& name, double value);
  void record(const std::string& name, std::uint64_t sample);

  bool empty() const;
  // The registry body (one JSON object: counters/gauges/histograms and
  // a nested "runtime" section), indented by `indent` spaces.
  std::string render_object(int indent) const;
  // Full `cpt_metrics_v1` document.
  std::string render_json(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<std::uint64_t>> hists_;
};

// Owns the track buffers and the shared registry for one traced run.
class TraceSession {
 public:
  TraceSession() : epoch_ns_(trace_now_ns()) {}

  // Returns the track with this id, creating it on first use (the
  // label of the first caller wins). Thread-safe; the returned buffer
  // is single-writer and stays valid for the session's lifetime.
  TraceBuffer* make_track(std::uint64_t id, std::string label);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  std::uint64_t epoch_ns() const { return epoch_ns_; }

  // `cpt_trace_v1` JSONL: header, then track declarations and events
  // sorted by (track id, seq). Timestamp fields render last on each
  // line so a deterministic view is a per-line suffix strip.
  std::string render_jsonl(const std::string& name) const;

 private:
  std::uint64_t epoch_ns_;
  MetricsRegistry metrics_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> tracks_;
};

}  // namespace util
}  // namespace cpt

#endif  // CPT_UTIL_TRACE_H_
