// Durable file-system plumbing shared by everything that publishes a file
// via the tmp+rename pattern (corpus saves, manifest/aggregate writers,
// journal creation). rename() makes the *data* of a previously fsync'd
// file durable under its new name, but the directory entry itself lives in
// the parent directory's metadata: without an fsync of the parent, a crash
// right after rename() can roll the directory back and lose the entry the
// resume machinery depends on.
#pragma once

#include <string>

namespace cpt {

// fsync the directory containing `path` ("." when path has no slash).
// Returns false on open/fsync failure (callers treat it like any other
// I/O failure on the publish path).
bool fsync_parent_dir(const std::string& path);

// rename(tmp_path, final_path) followed by an fsync of final_path's parent
// directory. The caller must have already flushed and fsync'd the file
// contents; this makes the *name* durable too.
bool durable_rename(const std::string& tmp_path, const std::string& final_path);

}  // namespace cpt
