// Durable file-system plumbing shared by everything that publishes a file
// via the tmp+rename pattern (corpus saves, manifest/aggregate writers,
// journal creation). rename() makes the *data* of a previously fsync'd
// file durable under its new name, but the directory entry itself lives in
// the parent directory's metadata: without an fsync of the parent, a crash
// right after rename() can roll the directory back and lose the entry the
// resume machinery depends on.
#pragma once

#include <string>

namespace cpt {

// fsync the directory containing `path` ("." when path has no slash).
// Returns false on open/fsync failure (callers treat it like any other
// I/O failure on the publish path).
bool fsync_parent_dir(const std::string& path);

// rename(tmp_path, final_path) followed by an fsync of final_path's parent
// directory. The caller must have already flushed and fsync'd the file
// contents; this makes the *name* durable too.
bool durable_rename(const std::string& tmp_path, const std::string& final_path);

// A collision-free temporary name for publishing `final_path`:
// "<final_path>.tmp.<pid>.<counter>". The pid separates concurrent
// processes (daemon + CLI, or two clients materializing the same
// instance); the process-wide atomic counter separates concurrent threads
// inside one. A fixed "<final>.tmp" name lets two writers open the same
// temp file: the second truncates the first mid-write and the first's
// rename() then publishes the second's half-written bytes under the final
// name.
std::string unique_tmp_path(const std::string& final_path);

// Orphan-sweep predicate for directory entries: true when `name` carries
// `marker` (e.g. ".cpg.tmp") and the temp file is safe to delete. Legacy
// bare-marker names (the fixed "<final>.tmp" spelling that predates
// unique_tmp_path) are always sweepable; pid-suffixed names only once the
// owning process is gone, so a store opening a shared directory (daemon +
// CLI, two batch processes) never deletes another live writer's in-flight
// bytes out from under its rename.
bool sweepable_tmp(const char* name, const char* marker);

}  // namespace cpt
