// An ordered set of integers in [0, capacity) on a three-level bitmap
// hierarchy: level 0 holds one bit per element, each level-1 bit says "this
// level-0 word is nonzero", and likewise for level 2 over level 1.
//
// insert / erase / contains are O(1) (three word operations); pop_front
// extracts the minimum in O(1) word operations amortized, using a cursor
// over the level-2 summary. Draining k elements therefore costs O(k) plus
// the level-2 scan (capacity / 2^18 words), with no sorting and no
// allocation. The CONGEST simulator uses one of these per in-flight buffer
// to deliver messages in (destination, port) order sort-free; it is also a
// reusable "epoch-free" scratch set: clear() costs O(size), not
// O(capacity), so a quiesced structure is reusable for free.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace cpt {

class IndexedBitset {
 public:
  IndexedBitset() = default;
  explicit IndexedBitset(std::size_t capacity) { reset(capacity); }

  // Resizes to hold [0, capacity) and removes all elements. O(capacity).
  void reset(std::size_t capacity) {
    capacity_ = capacity;
    l0_.assign(words_for(capacity), 0);
    l1_.assign(words_for(l0_.size()), 0);
    l2_.assign(words_for(l1_.size()), 0);
    count_ = 0;
    scan0_ = 0;
    scan2_ = 0;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool contains(std::size_t i) const {
    CPT_EXPECTS(i < capacity_);
    return (l0_[i >> 6] >> (i & 63)) & 1;
  }

  // Returns false (leaving the set unchanged) if `i` is already a member.
  bool insert(std::size_t i) {
    CPT_EXPECTS(i < capacity_);
    const std::size_t w0 = i >> 6;
    const std::uint64_t old = l0_[w0];
    const std::uint64_t bit = 1ULL << (i & 63);
    if (old & bit) return false;
    l0_[w0] = old | bit;
    if (old == 0) {  // summaries already cover a nonzero word
      l1_[w0 >> 6] |= 1ULL << (w0 & 63);
      l2_[w0 >> 12] |= 1ULL << ((w0 >> 6) & 63);
    }
    if (w0 < scan0_) scan0_ = w0;
    if ((w0 >> 12) < scan2_) scan2_ = w0 >> 12;
    ++count_;
    return true;
  }

  // Precondition: `i` is a member.
  void erase(std::size_t i) {
    CPT_EXPECTS(contains(i));
    const std::size_t w0 = i >> 6;
    if ((l0_[w0] &= ~(1ULL << (i & 63))) == 0) {
      if ((l1_[w0 >> 6] &= ~(1ULL << (w0 & 63))) == 0) {
        l2_[w0 >> 12] &= ~(1ULL << ((w0 >> 6) & 63));
      }
    }
    --count_;
  }

  // Smallest member. Precondition: !empty().
  std::size_t front() const {
    CPT_EXPECTS(count_ > 0);
    // Fast path: scan0_ still points at the minimum's level-0 word (true
    // whenever the set is drained in order, e.g. message delivery popping
    // consecutive arcs). One load + countr_zero.
    if (l0_[scan0_] != 0) return (scan0_ << 6) + std::countr_zero(l0_[scan0_]);
    while (l2_[scan2_] == 0) ++scan2_;
    const std::size_t w1 = (scan2_ << 6) + std::countr_zero(l2_[scan2_]);
    const std::size_t w0 = (w1 << 6) + std::countr_zero(l1_[w1]);
    scan0_ = w0;
    return (w0 << 6) + std::countr_zero(l0_[w0]);
  }

  // Removes and returns the smallest member. Precondition: !empty().
  std::size_t pop_front() {
    const std::size_t i = front();
    erase(i);
    return i;
  }

  // No member >= the probe: next_at_least's "exhausted" result.
  static constexpr std::size_t kNone = ~std::size_t{0};

  // Smallest member >= i, or kNone. Pure read (unlike front(), it never
  // touches the scan cursors), so any number of threads may iterate
  // disjoint -- or even overlapping -- ranges of one bitset concurrently
  // with each other, as long as nobody mutates. Amortized O(1) per element
  // when walking a range in order; a probe into an empty tail costs the
  // level-2 scan (capacity / 2^18 words).
  std::size_t next_at_least(std::size_t i) const {
    if (i >= capacity_) return kNone;
    std::size_t w0 = i >> 6;
    if (const std::uint64_t m = l0_[w0] & (~std::uint64_t{0} << (i & 63))) {
      return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(m));
    }
    // Find the next nonzero level-0 word strictly after w0 via the
    // summaries. bits_above masks away bit `b` and everything below it.
    const auto bits_above = [](std::uint64_t x, std::size_t b) {
      return b >= 63 ? std::uint64_t{0} : x & (~std::uint64_t{0} << (b + 1));
    };
    std::size_t w1 = w0 >> 6;  // level-1 word covering w0
    std::uint64_t m1 = bits_above(l1_[w1], w0 & 63);
    if (m1 == 0) {
      std::size_t w2 = w1 >> 6;  // level-2 word covering w1
      std::uint64_t m2 = bits_above(l2_[w2], w1 & 63);
      while (m2 == 0) {
        if (++w2 >= l2_.size()) return kNone;
        m2 = l2_[w2];
      }
      w1 = (w2 << 6) + static_cast<std::size_t>(std::countr_zero(m2));
      m1 = l1_[w1];
    }
    w0 = (w1 << 6) + static_cast<std::size_t>(std::countr_zero(m1));
    return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(l0_[w0]));
  }

  // Removes all elements in O(size) + the level-2 scan (NOT O(capacity)).
  void clear() {
    while (count_ > 0) pop_front();
    scan0_ = 0;
    scan2_ = 0;
  }

 private:
  static std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
  // Cursors bounding the minimum from below: scan0_ <= min's level-0 word
  // and scan2_ <= min's level-2 word. Only lowered by insert and only
  // raised when proven empty below, so min-extraction never rescans.
  mutable std::size_t scan0_ = 0;
  mutable std::size_t scan2_ = 0;
  std::vector<std::uint64_t> l0_, l1_, l2_;
};

}  // namespace cpt
