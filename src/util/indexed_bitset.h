// An ordered set of integers in [0, capacity) on a three-level bitmap
// hierarchy: level 0 holds one bit per element, each level-1 bit says "this
// level-0 word is nonzero", and likewise for level 2 over level 1.
//
// insert / erase / contains are O(1) (three word operations); pop_front
// extracts the minimum in O(1) word operations amortized, using a cursor
// over the level-2 summary. Draining k elements therefore costs O(k) plus
// the level-2 scan (capacity / 2^18 words), with no sorting and no
// allocation. The CONGEST simulator uses one of these per in-flight buffer
// to deliver messages in (destination, port) order sort-free; it is also a
// reusable "epoch-free" scratch set: clear() costs O(size), not
// O(capacity), so a quiesced structure is reusable for free.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace cpt {

class IndexedBitset {
 public:
  IndexedBitset() = default;
  explicit IndexedBitset(std::size_t capacity) { reset(capacity); }

  // Resizes to hold [0, capacity) and removes all elements. O(capacity).
  void reset(std::size_t capacity) {
    capacity_ = capacity;
    l0_.assign(words_for(capacity), 0);
    l1_.assign(words_for(l0_.size()), 0);
    l2_.assign(words_for(l1_.size()), 0);
    count_ = 0;
    scan0_ = 0;
    scan2_ = 0;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool contains(std::size_t i) const {
    CPT_EXPECTS(i < capacity_);
    return (l0_[i >> 6] >> (i & 63)) & 1;
  }

  // Returns false (leaving the set unchanged) if `i` is already a member.
  bool insert(std::size_t i) {
    CPT_EXPECTS(i < capacity_);
    const std::size_t w0 = i >> 6;
    const std::uint64_t old = l0_[w0];
    const std::uint64_t bit = 1ULL << (i & 63);
    if (old & bit) return false;
    l0_[w0] = old | bit;
    if (old == 0) {  // summaries already cover a nonzero word
      l1_[w0 >> 6] |= 1ULL << (w0 & 63);
      l2_[w0 >> 12] |= 1ULL << ((w0 >> 6) & 63);
    }
    if (w0 < scan0_) scan0_ = w0;
    if ((w0 >> 12) < scan2_) scan2_ = w0 >> 12;
    ++count_;
    return true;
  }

  // Precondition: `i` is a member.
  void erase(std::size_t i) {
    CPT_EXPECTS(contains(i));
    const std::size_t w0 = i >> 6;
    if ((l0_[w0] &= ~(1ULL << (i & 63))) == 0) {
      if ((l1_[w0 >> 6] &= ~(1ULL << (w0 & 63))) == 0) {
        l2_[w0 >> 12] &= ~(1ULL << ((w0 >> 6) & 63));
      }
    }
    --count_;
  }

  // Smallest member. Precondition: !empty().
  std::size_t front() const {
    CPT_EXPECTS(count_ > 0);
    // Fast path: scan0_ still points at the minimum's level-0 word (true
    // whenever the set is drained in order, e.g. message delivery popping
    // consecutive arcs). One load + countr_zero.
    if (l0_[scan0_] != 0) return (scan0_ << 6) + std::countr_zero(l0_[scan0_]);
    while (l2_[scan2_] == 0) ++scan2_;
    const std::size_t w1 = (scan2_ << 6) + std::countr_zero(l2_[scan2_]);
    const std::size_t w0 = (w1 << 6) + std::countr_zero(l1_[w1]);
    scan0_ = w0;
    return (w0 << 6) + std::countr_zero(l0_[w0]);
  }

  // Removes and returns the smallest member. Precondition: !empty().
  std::size_t pop_front() {
    const std::size_t i = front();
    erase(i);
    return i;
  }

  // No member >= the probe: next_at_least's "exhausted" result.
  static constexpr std::size_t kNone = ~std::size_t{0};

  // Smallest member >= i, or kNone. Pure read (unlike front(), it never
  // touches the scan cursors), so any number of threads may iterate
  // disjoint -- or even overlapping -- ranges of one bitset concurrently
  // with each other, as long as nobody mutates. Amortized O(1) per element
  // when walking a range in order; a probe into an empty tail costs the
  // level-2 scan (capacity / 2^18 words).
  std::size_t next_at_least(std::size_t i) const {
    if (i >= capacity_) return kNone;
    std::size_t w0 = i >> 6;
    if (const std::uint64_t m = l0_[w0] & (~std::uint64_t{0} << (i & 63))) {
      return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(m));
    }
    // Find the next nonzero level-0 word strictly after w0 via the
    // summaries. bits_above masks away bit `b` and everything below it.
    const auto bits_above = [](std::uint64_t x, std::size_t b) {
      return b >= 63 ? std::uint64_t{0} : x & (~std::uint64_t{0} << (b + 1));
    };
    std::size_t w1 = w0 >> 6;  // level-1 word covering w0
    std::uint64_t m1 = bits_above(l1_[w1], w0 & 63);
    if (m1 == 0) {
      std::size_t w2 = w1 >> 6;  // level-2 word covering w1
      std::uint64_t m2 = bits_above(l2_[w2], w1 & 63);
      while (m2 == 0) {
        if (++w2 >= l2_.size()) return kNone;
        m2 = l2_[w2];
      }
      w1 = (w2 << 6) + static_cast<std::size_t>(std::countr_zero(m2));
      m1 = l1_[w1];
    }
    w0 = (w1 << 6) + static_cast<std::size_t>(std::countr_zero(m1));
    return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(l0_[w0]));
  }

  // OR the members of `other` lying in [lo, hi) into this set, word by
  // word: `other`'s summaries drive the scan (an empty 2^12-element region
  // costs one level-2 probe), boundary words are masked so neighbours of
  // the range are never touched, and each merged word updates the count by
  // popcount of the freshly set bits. The delivery engine builds its
  // per-shard union of all live flights with this. Capacities must match.
  // Returns the number of elements added.
  std::size_t union_range_from(const IndexedBitset& other, std::size_t lo,
                               std::size_t hi) {
    CPT_EXPECTS(other.capacity_ == capacity_);
    CPT_EXPECTS(lo <= hi && hi <= capacity_);
    if (lo >= hi || other.count_ == 0) return 0;
    const std::size_t w_first = lo >> 6;        // first level-0 word
    const std::size_t w_last = (hi - 1) >> 6;   // last level-0 word
    const std::uint64_t lo_mask = ~std::uint64_t{0} << (lo & 63);
    const std::uint64_t hi_mask =
        ~std::uint64_t{0} >> (63 - ((hi - 1) & 63));
    std::size_t added = 0;
    std::size_t w1 = w_first >> 6;
    const std::size_t w1_last = w_last >> 6;
    while (w1 <= w1_last) {
      std::uint64_t m1 = other.l1_[w1];
      if (m1 == 0) {
        // Summary-level short-circuit: an aligned empty level-2 word skips
        // 64 level-1 words (2^12 level-0 words) in one probe.
        if ((w1 & 63) == 0 && other.l2_[w1 >> 6] == 0) {
          w1 += 64;
        } else {
          ++w1;
        }
        continue;
      }
      if (w1 == (w_first >> 6)) {
        m1 &= ~std::uint64_t{0} << (w_first & 63);
      }
      if (w1 == w1_last) {
        m1 &= ~std::uint64_t{0} >> (63 - (w_last & 63));
      }
      while (m1 != 0) {
        const std::size_t w0 =
            (w1 << 6) + static_cast<std::size_t>(std::countr_zero(m1));
        m1 &= m1 - 1;
        std::uint64_t bits = other.l0_[w0];
        if (w0 == w_first) bits &= lo_mask;
        if (w0 == w_last) bits &= hi_mask;
        const std::uint64_t old = l0_[w0];
        const std::uint64_t fresh = bits & ~old;
        if (fresh == 0) continue;
        l0_[w0] = old | fresh;
        if (old == 0) {
          l1_[w0 >> 6] |= 1ULL << (w0 & 63);
          l2_[w0 >> 12] |= 1ULL << ((w0 >> 6) & 63);
        }
        if (w0 < scan0_) scan0_ = w0;
        if ((w0 >> 12) < scan2_) scan2_ = w0 >> 12;
        added += static_cast<std::size_t>(std::popcount(fresh));
      }
      ++w1;
    }
    count_ += added;
    return added;
  }

  // Whole-set union; same word-level walk as union_range_from.
  std::size_t union_from(const IndexedBitset& other) {
    return union_range_from(other, 0, capacity_);
  }

  // Visits every nonzero level-0 word in increasing index order as
  // fn(word_index, word_bits); element i is set iff bit (i & 63) of the
  // word with index i >> 6. Summary-driven (empty regions cost one probe
  // per 2^12 elements) and read-only, so concurrent readers are fine.
  template <typename Fn>
  void for_each_word(Fn&& fn) const {
    if (count_ == 0) return;
    for (std::size_t w2 = 0; w2 < l2_.size(); ++w2) {
      std::uint64_t m2 = l2_[w2];
      while (m2 != 0) {
        const std::size_t w1 =
            (w2 << 6) + static_cast<std::size_t>(std::countr_zero(m2));
        m2 &= m2 - 1;
        std::uint64_t m1 = l1_[w1];
        while (m1 != 0) {
          const std::size_t w0 =
              (w1 << 6) + static_cast<std::size_t>(std::countr_zero(m1));
          m1 &= m1 - 1;
          fn(w0, l0_[w0]);
        }
      }
    }
  }

  // Raw level-0 word `w` (members 64w .. 64w+63). The delivery engine's
  // payload-ownership probe reads one cached word per flight instead of a
  // contains() load per (arc, flight) pair.
  std::uint64_t l0_word(std::size_t w) const {
    CPT_EXPECTS(w < l0_.size());
    return l0_[w];
  }

  // Removes all elements in O(nonzero words) + the level-2 scan (NOT
  // O(capacity), and no per-bit pop loop): the summaries name exactly the
  // level-0 words to zero.
  void clear() {
    if (count_ != 0) {
      for (std::size_t w2 = 0; w2 < l2_.size(); ++w2) {
        std::uint64_t m2 = l2_[w2];
        if (m2 == 0) continue;
        l2_[w2] = 0;
        while (m2 != 0) {
          const std::size_t w1 =
              (w2 << 6) + static_cast<std::size_t>(std::countr_zero(m2));
          m2 &= m2 - 1;
          std::uint64_t m1 = l1_[w1];
          l1_[w1] = 0;
          while (m1 != 0) {
            const std::size_t w0 =
                (w1 << 6) + static_cast<std::size_t>(std::countr_zero(m1));
            m1 &= m1 - 1;
            l0_[w0] = 0;
          }
        }
      }
      count_ = 0;
    }
    scan0_ = 0;
    scan2_ = 0;
  }

 private:
  static std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
  // Cursors bounding the minimum from below: scan0_ <= min's level-0 word
  // and scan2_ <= min's level-2 word. Only lowered by insert and only
  // raised when proven empty below, so min-extraction never rescans.
  mutable std::size_t scan0_ = 0;
  mutable std::size_t scan2_ = 0;
  std::vector<std::uint64_t> l0_, l1_, l2_;
};

}  // namespace cpt
