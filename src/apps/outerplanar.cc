#include "apps/outerplanar.h"

#include <algorithm>
#include <cmath>

#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/ops.h"
#include "planar/lr_planarity.h"

namespace cpt {

namespace {

// Outerplanarity via the apex trick: G is outerplanar iff G + a universal
// apex vertex is planar (the apex sits in the outer face touching everyone).
bool is_outerplanar(const Graph& g) {
  GraphBuilder b(g.num_nodes() + 1);
  const NodeId apex = g.num_nodes();
  for (const Endpoints e : g.edges()) b.add_edge(e.u, e.v);
  for (NodeId v = 0; v < g.num_nodes(); ++v) b.add_edge(v, apex);
  return is_planar(std::move(b).build());
}

}  // namespace

AppResult test_outerplanarity(const Graph& g, const MinorFreeOptions& opt) {
  AppResult result;
  congest::Network net(g);
  congest::Simulator sim(net);

  const MinorFreePartition part = minor_free_partition(sim, g, opt, result.ledger);
  result.partition = measure_partition(g, part.forest);
  if (part.rejected) {
    result.verdict = Verdict::kReject;
    result.rejecting_nodes = part.rejecting_nodes;
    return result;
  }
  const BfsClassification cls = classify_edges(sim, g, part.forest, result.ledger);

  // Per-part verification (centralized, charged at the per-part diameter
  // bound like the Stage II embedding substitute).
  std::vector<std::uint32_t> part_depth(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    part_depth[part.forest.root[v]] =
        std::max(part_depth[part.forest.root[v]], cls.bfs.level[v]);
  }
  std::uint64_t max_check_rounds = 0;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (part.forest.root[root] != root) continue;
    const InducedSubgraph sub = induced_subgraph(g, part.forest.members[root]);
    if (!is_outerplanar(sub.graph)) {
      result.rejecting_nodes.push_back(root);
    }
    const std::uint64_t d = part_depth[root];
    const std::uint64_t log_n = static_cast<std::uint64_t>(std::ceil(
        std::log2(std::max<double>(part.forest.members[root].size(), 2))));
    max_check_rounds = std::max(max_check_rounds, 4 * d * std::min(log_n, d) + 1);
  }
  result.ledger.charge("app/outerplanar-check", max_check_rounds);
  if (!result.rejecting_nodes.empty()) result.verdict = Verdict::kReject;
  return result;
}

}  // namespace cpt
