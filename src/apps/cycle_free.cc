#include "apps/cycle_free.h"

#include "congest/network.h"
#include "congest/simulator.h"

namespace cpt {

AppResult test_cycle_freeness(const Graph& g, const MinorFreeOptions& opt) {
  AppResult result;
  congest::Network net(g);
  congest::SimOptions sim_opt;
  sim_opt.num_threads = opt.num_threads;
  sim_opt.max_rounds = opt.max_rounds;
  sim_opt.memory = opt.sim_memory;
  sim_opt.trace = opt.trace;
  congest::Simulator sim(net, sim_opt);
  result.ledger.set_trace(opt.trace);

  const MinorFreePartition part = minor_free_partition(sim, g, opt, result.ledger);
  result.partition = measure_partition(g, part.forest);
  if (part.rejected) {
    // Arboricity evidence is in particular a cycle witness.
    result.verdict = Verdict::kReject;
    result.rejecting_nodes = part.rejecting_nodes;
    return result;
  }
  const BfsClassification cls = classify_edges(sim, g, part.forest, result.ledger);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!cls.assigned[v].empty()) {
      // Any same-part non-tree edge closes a cycle.
      result.rejecting_nodes.push_back(v);
    }
  }
  if (!result.rejecting_nodes.empty()) result.verdict = Verdict::kReject;
  return result;
}

}  // namespace cpt
