#include "apps/spanner.h"

#include <algorithm>
#include <queue>

#include "congest/network.h"
#include "congest/simulator.h"
#include "util/contracts.h"

namespace cpt {

using congest::Exchange;
using congest::Inbound;
using congest::Msg;

namespace {
constexpr std::uint32_t kTagRoot = 80;
}

SpannerResult build_spanner(const Graph& g, const MinorFreeOptions& opt) {
  SpannerResult result;
  congest::Network net(g);
  congest::SimOptions sim_opt;
  sim_opt.num_threads = opt.num_threads;
  congest::Simulator sim(net, sim_opt);

  const MinorFreePartition part = minor_free_partition(sim, g, opt, result.ledger);
  CPT_ASSERT(!part.rejected && "spanner construction assumes the promise");
  result.partition = measure_partition(g, part.forest);

  const BfsClassification cls = classify_edges(sim, g, part.forest, result.ledger);

  // Cut edges: each node learns per-port neighbor roots in one round and
  // keeps its cut ports (per-node lists -- both endpoints of a cut edge
  // record it, the edge marking below deduplicates; collecting per node
  // keeps on_wake per-node-write-clean for parallel rounds).
  std::vector<std::uint8_t> in_spanner(g.num_edges(), 0);
  std::vector<std::vector<std::uint32_t>> cut_ports(g.num_nodes());
  Exchange cut(
      g.num_nodes(),
      [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
        for (std::uint32_t p = 0; p < g.degree(v); ++p) {
          out.push_back({p, Msg::make(kTagRoot,
                                      static_cast<std::int64_t>(
                                          part.forest.root[v]))});
        }
      },
      [&](congest::Exec&, NodeId v, std::span<const Inbound> inbox) {
        for (const Inbound& in : inbox) {
          if (in.msg.tag != kTagRoot) continue;
          if (static_cast<NodeId>(in.msg.w[0]) != part.forest.root[v]) {
            cut_ports[v].push_back(in.port);
          }
        }
      });
  const auto r = sim.run(cut);
  result.ledger.add_pass("spanner/cut", r.rounds, r.messages);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const std::uint32_t p : cut_ports[v]) {
      in_spanner[sim.network().arc(v, p).edge] = 1;
    }
  }

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (cls.bfs.parent_edge[v] != kNoEdge) {
      in_spanner[cls.bfs.parent_edge[v]] = 1;
      ++result.tree_edges;
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_spanner[e]) result.edges.push_back(e);
  }
  result.cut_edges = result.edges.size() - result.tree_edges;
  return result;
}

std::uint32_t measure_edge_stretch(const Graph& g,
                                   const std::vector<EdgeId>& spanner_edges,
                                   std::uint32_t samples, Rng& rng) {
  if (g.num_edges() == 0) return 1;
  // Spanner adjacency.
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  std::vector<std::uint8_t> in_spanner(g.num_edges(), 0);
  for (const EdgeId e : spanner_edges) {
    const Endpoints ep = g.endpoints(e);
    adj[ep.u].push_back(ep.v);
    adj[ep.v].push_back(ep.u);
    in_spanner[e] = 1;
  }
  // Sample non-spanner edges (spanner edges have stretch 1).
  std::vector<EdgeId> candidates;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_spanner[e]) candidates.push_back(e);
  }
  if (candidates.size() > samples) {
    for (std::size_t i = 0; i < samples; ++i) {
      std::swap(candidates[i],
                candidates[i + rng.next_below(candidates.size() - i)]);
    }
    candidates.resize(samples);
  }
  std::uint32_t worst = 1;
  std::vector<std::uint32_t> dist(g.num_nodes());
  for (const EdgeId e : candidates) {
    const Endpoints ep = g.endpoints(e);
    // BFS in the spanner from ep.u until ep.v found.
    std::fill(dist.begin(), dist.end(), static_cast<std::uint32_t>(-1));
    std::queue<NodeId> frontier;
    dist[ep.u] = 0;
    frontier.push(ep.u);
    while (!frontier.empty() && dist[ep.v] == static_cast<std::uint32_t>(-1)) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const NodeId w : adj[v]) {
        if (dist[w] == static_cast<std::uint32_t>(-1)) {
          dist[w] = dist[v] + 1;
          frontier.push(w);
        }
      }
    }
    CPT_ASSERT(dist[ep.v] != static_cast<std::uint32_t>(-1) &&
               "spanner must preserve connectivity");
    worst = std::max(worst, dist[ep.v]);
  }
  return worst;
}

}  // namespace cpt
