// Corollary 16: testing cycle-freeness on (promised) minor-free graphs in
// O(poly(1/eps) log n) rounds deterministically, or
// O(poly(1/eps)(log(1/delta) + log* n)) rounds with probability 1 - delta.
// After partitioning, any same-part non-BFS-tree edge closes a cycle and its
// holder rejects; if G is eps-far from cycle-free, some part must contain
// such an edge.
#pragma once

#include "apps/minor_free_common.h"
#include "congest/metrics.h"
#include "core/stage2.h"  // Verdict

namespace cpt {

struct AppResult {
  Verdict verdict = Verdict::kAccept;
  std::vector<NodeId> rejecting_nodes;
  congest::RoundLedger ledger;
  PartitionStats partition;

  std::uint64_t rounds() const { return ledger.total_rounds(); }
};

AppResult test_cycle_freeness(const Graph& g, const MinorFreeOptions& opt);

}  // namespace cpt
