#include "apps/minor_free_common.h"

#include "partition/partition.h"
#include "partition/random_partition.h"

namespace cpt {

using congest::Exchange;
using congest::Inbound;
using congest::Msg;

namespace {
constexpr std::uint32_t kTagInfo = 70;
}

MinorFreePartition minor_free_partition(congest::Simulator& sim, const Graph& g,
                                        const MinorFreeOptions& opt,
                                        congest::RoundLedger& ledger) {
  MinorFreePartition out;
  if (opt.randomized) {
    RandomPartitionOptions rp;
    rp.epsilon = opt.epsilon;
    rp.delta = opt.delta;
    rp.alpha = opt.alpha;
    rp.seed = opt.seed;
    rp.adaptive = opt.adaptive_phases;
    rp.scratch = opt.scratch;
    out.forest = run_random_partition(sim, g, rp, ledger).forest;
  } else {
    Stage1Options s1;
    s1.epsilon = opt.epsilon;
    s1.alpha = opt.alpha;
    s1.adaptive = opt.adaptive_phases;
    s1.pipelined_streams = opt.pipelined_streams;
    s1.scratch = opt.scratch;
    Stage1Result r = run_stage1(sim, g, s1, ledger);
    out.rejected = r.rejected;
    out.rejecting_nodes = std::move(r.rejecting_nodes);
    out.forest = std::move(r.forest);
  }
  return out;
}

BfsClassification classify_edges(congest::Simulator& sim, const Graph& g,
                                 const PartForest& pf,
                                 congest::RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  BfsClassification out(pf.root);
  {
    const auto r = sim.run(out.bfs);
    ledger.add_pass("app/bfs", r.rounds, r.messages);
  }
  out.assigned.resize(n);
  std::vector<std::vector<std::uint8_t>> is_tree_port(n);
  for (NodeId v = 0; v < n; ++v) {
    is_tree_port[v].assign(g.degree(v), 0);
    if (out.bfs.parent_edge[v] != kNoEdge) {
      is_tree_port[v][sim.network().port_of_edge(v, out.bfs.parent_edge[v])] = 1;
    }
    for (const EdgeId ce : out.bfs.children[v]) {
      is_tree_port[v][sim.network().port_of_edge(v, ce)] = 1;
    }
  }
  Exchange classify(
      n,
      [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& outv) {
        for (std::uint32_t p = 0; p < g.degree(v); ++p) {
          outv.push_back({p, Msg::make(kTagInfo,
                                       static_cast<std::int64_t>(pf.root[v]),
                                       out.bfs.level[v])});
        }
      },
      [&](congest::Exec&, NodeId v, std::span<const Inbound> inbox) {
        for (const Inbound& in : inbox) {
          if (in.msg.tag != kTagInfo) continue;
          if (static_cast<NodeId>(in.msg.w[0]) != pf.root[v]) continue;
          if (is_tree_port[v][in.port]) continue;
          const NodeId w = sim.network().arc(v, in.port).to;
          const auto w_level = static_cast<std::uint32_t>(in.msg.w[1]);
          const bool i_am_assignee =
              out.bfs.level[v] != w_level ? out.bfs.level[v] > w_level : v > w;
          if (i_am_assignee) {
            out.assigned[v].push_back(
                {in.port, sim.network().arc(v, in.port).edge, w_level});
          }
        }
      });
  const auto r = sim.run(classify);
  ledger.add_pass("app/classify", r.rounds, r.messages);
  return out;
}

}  // namespace cpt
