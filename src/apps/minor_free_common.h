// Shared plumbing for the Corollary 16/17 applications: obtain a partition
// of a (promised minor-free) graph -- deterministic Stage I (Theorem 3) or
// the randomized variant (Theorem 4) -- then build per-part BFS trees and
// classify edges, all as real simulator passes.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "partition/part_forest.h"

namespace cpt {

struct Stage1Scratch;  // partition/partition.h

struct MinorFreeOptions {
  double epsilon = 0.1;
  std::uint32_t alpha = 3;    // arboricity bound of the promised class
  bool randomized = false;    // Theorem 4 instead of Theorem 3
  double delta = 0.1;         // randomized variant's failure probability
  std::uint64_t seed = 1;
  bool adaptive_phases = false;
  // Stage I pipelined converge/broadcast streams (deterministic partition
  // only; the randomized variant has no unpipelined schedule).
  bool pipelined_streams = true;
  unsigned num_threads = 0;   // simulator workers (0 = env default)
  // Cumulative simulated-round budget for the whole app run (0 =
  // unlimited); exhausting it throws congest::RoundBudgetExceeded.
  std::uint64_t max_rounds = 0;
  // Optional pooled per-worker state (batch engine): simulator buffers and
  // Stage I scratch. nullptr = fresh allocations; identical results.
  congest::SimMemory* sim_memory = nullptr;
  Stage1Scratch* scratch = nullptr;
  // Optional trace track: per-pass ledger spans + simulator events land
  // here (see util/trace.h). nullptr = no tracing.
  util::TraceBuffer* trace = nullptr;
};

// Per-node edge classification against a per-part BFS tree.
struct BfsClassification {
  congest::BfsForest bfs;  // parent/children/level arrays
  // Per node: (port, edge, neighbor_level) of same-part non-tree edges
  // assigned to this node (deeper endpoint, ties to the higher id).
  struct NonTree {
    std::uint32_t port;
    EdgeId edge;
    std::uint32_t nbr_level;
  };
  std::vector<std::vector<NonTree>> assigned;

  explicit BfsClassification(const std::vector<NodeId>& part_root)
      : bfs(part_root) {}
};

// Runs the partition per options; never rejects on minor-free inputs (the
// peeling cannot fail when arboricity <= alpha). `rejected` is set if the
// promise was violated badly enough for the peeling to notice.
struct MinorFreePartition {
  PartForest forest;
  bool rejected = false;
  std::vector<NodeId> rejecting_nodes;
};

MinorFreePartition minor_free_partition(congest::Simulator& sim, const Graph& g,
                                        const MinorFreeOptions& opt,
                                        congest::RoundLedger& ledger);

// BFS trees per part + non-tree edge classification (two passes).
BfsClassification classify_edges(congest::Simulator& sim, const Graph& g,
                                 const PartForest& pf,
                                 congest::RoundLedger& ledger);

}  // namespace cpt
