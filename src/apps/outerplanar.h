// Corollary 16's closing remark instantiated for another hereditary
// property: outerplanarity testing on (promised) minor-free graphs. A part
// is outerplanar iff the part plus one apex node joined to all its nodes is
// planar, so the per-part verification runs in diameter-bounded rounds
// (charged like the embedding black box; the check itself is exact).
#pragma once

#include "apps/cycle_free.h"

namespace cpt {

AppResult test_outerplanarity(const Graph& g, const MinorFreeOptions& opt);

}  // namespace cpt
