// Corollary 17: poly(1/eps)-spanners with (1 + O(eps))n edges for unweighted
// minor-free graphs. The spanner is the union of the per-part BFS trees and
// all inter-part edges: at most (n - #parts) + eps*n edges; an intra-part
// edge is stretched by at most twice the part diameter = poly(1/eps).
#pragma once

#include <vector>

#include "apps/minor_free_common.h"
#include "congest/metrics.h"
#include "util/rng.h"

namespace cpt {

struct SpannerResult {
  std::vector<EdgeId> edges;  // the spanner, as edge ids into g
  congest::RoundLedger ledger;
  PartitionStats partition;
  std::uint64_t tree_edges = 0;
  std::uint64_t cut_edges = 0;

  double size_ratio(const Graph& g) const {
    return g.num_nodes() == 0
               ? 0.0
               : static_cast<double>(edges.size()) / g.num_nodes();
  }
};

SpannerResult build_spanner(const Graph& g, const MinorFreeOptions& opt);

// Measured multiplicative stretch of up to `samples` graph edges (the edge
// stretch bounds the overall spanner stretch). Centralized measurement.
std::uint32_t measure_edge_stretch(const Graph& g,
                                   const std::vector<EdgeId>& spanner_edges,
                                   std::uint32_t samples, Rng& rng);

}  // namespace cpt
