// Corollary 16: testing bipartiteness on (promised) minor-free graphs. A
// same-part non-BFS-tree edge whose endpoints share level parity closes an
// odd cycle; a part with no such edge is bipartite.
#pragma once

#include "apps/cycle_free.h"

namespace cpt {

AppResult test_bipartiteness(const Graph& g, const MinorFreeOptions& opt);

}  // namespace cpt
