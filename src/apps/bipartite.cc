#include "apps/bipartite.h"

#include "congest/network.h"
#include "congest/simulator.h"

namespace cpt {

AppResult test_bipartiteness(const Graph& g, const MinorFreeOptions& opt) {
  AppResult result;
  congest::Network net(g);
  congest::SimOptions sim_opt;
  sim_opt.num_threads = opt.num_threads;
  sim_opt.max_rounds = opt.max_rounds;
  sim_opt.memory = opt.sim_memory;
  sim_opt.trace = opt.trace;
  congest::Simulator sim(net, sim_opt);
  result.ledger.set_trace(opt.trace);

  const MinorFreePartition part = minor_free_partition(sim, g, opt, result.ledger);
  result.partition = measure_partition(g, part.forest);
  if (part.rejected) {
    // The promise was violated; report reject (no bipartiteness witness,
    // but the algorithm cannot continue meaningfully).
    result.verdict = Verdict::kReject;
    result.rejecting_nodes = part.rejecting_nodes;
    return result;
  }
  const BfsClassification cls = classify_edges(sim, g, part.forest, result.ledger);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& nt : cls.assigned[v]) {
      if ((cls.bfs.level[v] & 1U) == (nt.nbr_level & 1U)) {
        // Equal parity endpoints: the tree paths + this edge close an odd
        // cycle.
        result.rejecting_nodes.push_back(v);
        break;
      }
    }
  }
  if (!result.rejecting_nodes.empty()) result.verdict = Verdict::kReject;
  return result;
}

}  // namespace cpt
