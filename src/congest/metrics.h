// Round/message accounting across the many passes of a distributed
// algorithm. Passes executed on the simulator report measured rounds;
// substituted black boxes (e.g. the Ghaffari-Haeupler embedding) charge
// their documented round bounds explicitly (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpt::congest {

struct PassStats {
  std::string name;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

class RoundLedger {
 public:
  void add_pass(std::string name, std::uint64_t rounds, std::uint64_t messages) {
    total_rounds_ += rounds;
    total_messages_ += messages;
    passes_.push_back({std::move(name), rounds, messages});
  }

  // Charge rounds without simulated messages (substituted black boxes,
  // schedule padding for quiet super-rounds, fast-forwarded phases).
  void charge(std::string name, std::uint64_t rounds) {
    add_pass(std::move(name), rounds, 0);
  }

  std::uint64_t total_rounds() const { return total_rounds_; }
  std::uint64_t total_messages() const { return total_messages_; }
  const std::vector<PassStats>& passes() const { return passes_; }

  // Sums rounds over passes whose name starts with `prefix`.
  std::uint64_t rounds_with_prefix(const std::string& prefix) const {
    std::uint64_t sum = 0;
    for (const PassStats& p : passes_) {
      if (p.name.rfind(prefix, 0) == 0) sum += p.rounds;
    }
    return sum;
  }

 private:
  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_messages_ = 0;
  std::vector<PassStats> passes_;
};

}  // namespace cpt::congest
