// Round/message accounting across the many passes of a distributed
// algorithm. Passes executed on the simulator report measured rounds;
// substituted black boxes (e.g. the Ghaffari-Haeupler embedding) charge
// their documented round bounds explicitly (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/trace.h"

namespace cpt::congest {

struct PassStats {
  std::string name;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

class RoundLedger {
 public:
  // Mirror every pass into a trace track: each add_pass emits a span
  // named after the pass covering the wall time since the previous
  // pass boundary, so simulated-round cost and wall cost line up per
  // pass in cpt_trace output. Null (the default) disables mirroring.
  void set_trace(util::TraceBuffer* trace) {
    trace_ = trace;
    if (util::kTraceCompiled && trace_ != nullptr) {
      mark_ns_ = trace_->now_ns();
    }
  }

  void add_pass(std::string name, std::uint64_t rounds, std::uint64_t messages) {
    if (util::kTraceCompiled && trace_ != nullptr) {
      util::TraceArgs args;
      args.add("rounds", rounds).add("messages", messages);
      trace_->complete_span(name, mark_ns_, std::move(args));
      mark_ns_ = trace_->now_ns();
    }
    total_rounds_ += rounds;
    total_messages_ += messages;
    passes_.push_back({std::move(name), rounds, messages});
  }

  // Charge rounds without simulated messages (substituted black boxes,
  // schedule padding for quiet super-rounds, fast-forwarded phases).
  void charge(std::string name, std::uint64_t rounds) {
    add_pass(std::move(name), rounds, 0);
  }

  std::uint64_t total_rounds() const { return total_rounds_; }
  std::uint64_t total_messages() const { return total_messages_; }
  const std::vector<PassStats>& passes() const { return passes_; }

  // Sums rounds over passes whose name starts with `prefix`.
  std::uint64_t rounds_with_prefix(const std::string& prefix) const {
    std::uint64_t sum = 0;
    for (const PassStats& p : passes_) {
      if (p.name.rfind(prefix, 0) == 0) sum += p.rounds;
    }
    return sum;
  }

 private:
  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_messages_ = 0;
  std::vector<PassStats> passes_;
  util::TraceBuffer* trace_ = nullptr;  // not owned; may dangle in copies
  std::uint64_t mark_ns_ = 0;           // previous pass boundary
};

}  // namespace cpt::congest
