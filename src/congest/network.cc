#include "congest/network.h"

namespace cpt::congest {

Network::Network(const Graph& g) : g_(&g) {
  // Arc indices (and the simulator's packed delivery ids) are 32-bit; 2m
  // must fit. Any graph this size is far beyond what the simulator can
  // process anyway, so reject it loudly instead of overflowing.
  CPT_EXPECTS(g.num_edges() <= (static_cast<EdgeId>(-1) >> 1) &&
              "graph too large: 2m must fit in 32 bits");
  port_.assign(2ULL * g.num_edges(), 0);
  owner_.assign(2ULL * g.num_edges(), 0);
  peer_arc_.assign(2ULL * g.num_edges(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    const std::uint32_t base = g.arc_offset(v);
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      const Endpoints ep = g.endpoints(nbrs[p].edge);
      port_[2ULL * nbrs[p].edge + (ep.u == v ? 0 : 1)] = p;
      owner_[base + p] = v;
      peer_arc_[base + p] = nbrs[p].peer_arc;
    }
  }
}

}  // namespace cpt::congest
