#include "congest/network.h"

namespace cpt::congest {

Network::Network(const Graph& g) : g_(&g) {
  port_.assign(2ULL * g.num_edges(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      const Endpoints ep = g.endpoints(nbrs[p].edge);
      port_[2ULL * nbrs[p].edge + (ep.u == v ? 0 : 1)] = p;
    }
  }
}

}  // namespace cpt::congest
