#include "congest/primitives.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt::congest {
namespace {

enum Tag : std::uint32_t {
  kTagRecord = 1,
  kTagDone = 2,
  kTagWave = 3,
  kTagChild = 4,
  // Pipelined streams: the stream's last record, folding the DONE marker
  // into the payload round (see primitives.h).
  kTagLast = 5,
};

constexpr std::uint32_t kNil = RecordTable::kNilSlot;

}  // namespace

// ---------------------------------------------------------------- TreePorts

void TreePorts::build(const Network& net, const std::vector<EdgeId>& parent_edge,
                      const std::vector<std::vector<EdgeId>>& children) {
  const std::size_t n = parent_edge.size();
  parent_port.assign(n, 0);
  if (child_offset.size() != n + 1) child_offset.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total += children[v].size();
    child_offset[v + 1] = static_cast<std::uint32_t>(total);
  }
  child_port.clear();
  child_port.reserve(total);
  for (NodeId v = 0; v < n; ++v) {
    if (parent_edge[v] != kNoEdge) {
      parent_port[v] = net.port_of_edge(v, parent_edge[v]);
    }
    for (const EdgeId ce : children[v]) {
      child_port.push_back(net.port_of_edge(v, ce));
    }
  }
}

// ---------------------------------------------------------------- Converge

ConvergeRecords::ConvergeRecords(TreeView tree, Combine combine, std::uint32_t cap) {
  reset(tree, combine, cap);
}

void ConvergeRecords::reset(TreeView tree, Combine combine, std::uint32_t cap,
                            const TreePorts* ports, bool pipelined) {
  CPT_EXPECTS(tree.parent_edge != nullptr && tree.children != nullptr);
  tree_ = tree;
  combine_ = combine;
  cap_ = cap;
  ports_ = ports;
  pipelined_ = pipelined;
  const std::size_t n = tree_.parent_edge->size();
  initial.reset(n);
  merged_.reset(n);
  if (tree.members != nullptr && overflow_.size() == n) {
    // Participant-list re-arm: only participants' state was dirtied since
    // the last full clear (the pass only ever touches participants), so
    // clearing the members is enough -- O(participants), not O(n).
    for (const NodeId v : *tree.members) {
      overflow_[v] = 0;
      ovf_sent_[v] = 0;
      pending_[v] = 0;
      done_sent_[v] = 0;
    }
  } else {
    overflow_.assign(n, 0);
    ovf_sent_.assign(n, 0);
    pending_.assign(n, 0);
    done_sent_.assign(n, 0);
  }
}

void ConvergeRecords::merge_record(NodeId v, Record r, std::uint32_t shard) {
  if (overflow_[v]) return;
  if (r.key == kOverflowKey) {
    overflow_[v] = 1;
    merged_.clear_row(v);
    return;
  }
  for (Record& have : merged_[v]) {
    if (have.key == r.key) {
      switch (combine_) {
        case Combine::kSum: have.value += r.value; break;
        case Combine::kMin: have.value = std::min(have.value, r.value); break;
        case Combine::kMax: have.value = std::max(have.value, r.value); break;
      }
      return;
    }
  }
  merged_.push(v, r, shard);
  if (cap_ != 0 && merged_.size(v) > cap_) {
    overflow_[v] = 1;
    merged_.clear_row(v);
  }
}

void ConvergeRecords::pump(Exec& ex, NodeId v) {
  // Stream one record (or the final DONE / LAST) per round toward the parent.
  if (done_sent_[v]) return;
  CPT_ASSERT((*tree_.parent_edge)[v] != kNoEdge);
  const std::uint32_t port = parent_ports_[v];
  if (overflow_[v]) {
    // The outgoing stream of an overflowed node is a single overflow record.
    if (pipelined_) {
      ex.send(v, port, Msg::make(kTagLast,
                                 static_cast<std::int64_t>(kOverflowKey), 1));
      done_sent_[v] = 1;
    } else if (!ovf_sent_[v]) {
      ex.send(v, port, Msg::make(kTagRecord,
                                 static_cast<std::int64_t>(kOverflowKey), 1));
      ovf_sent_[v] = 1;
      ex.wake_next_round(v);
    } else {
      ex.send(v, port, Msg::make(kTagDone));
      done_sent_[v] = 1;
    }
    return;
  }
  const std::uint32_t slot = merged_.cursor(v);
  if (slot == kNil) {
    ex.send(v, port, Msg::make(kTagDone));
    done_sent_[v] = 1;
    return;
  }
  const Record& r = merged_.at_slot(slot);
  const std::uint32_t next = merged_.next_slot(slot);
  merged_.set_cursor(v, next);
  if (pipelined_ && next == kNil) {
    ex.send(v, port, Msg::make(kTagLast, static_cast<std::int64_t>(r.key),
                               r.value));
    done_sent_[v] = 1;
    return;
  }
  ex.send(v, port, Msg::make(kTagRecord, static_cast<std::int64_t>(r.key),
                             r.value));
  ex.wake_next_round(v);
}

void ConvergeRecords::finalize(Exec& ex, NodeId v) {
  for (const Record& r : initial[v]) merge_record(v, r, ex.shard());
  if ((*tree_.parent_edge)[v] == kNoEdge) return;  // root keeps its result
  merged_.set_cursor(v, merged_.head_slot(v));
  pump(ex, v);
}

void ConvergeRecords::begin(Exec& ex) {
  const NodeId n = static_cast<NodeId>(tree_.parent_edge->size());
  if (ports_ != nullptr) {
    parent_ports_ = ports_->parent_port.data();
    const std::uint32_t* off = ports_->child_offset.data();
    const auto arm = [&](NodeId v) {
      pending_[v] = off[v + 1] - off[v];
      if (pending_[v] == 0) finalize(ex, v);
    };
    if (tree_.members != nullptr) {
      for (const NodeId v : *tree_.members) arm(v);
    } else {
      for (NodeId v = 0; v < n; ++v) {
        if (tree_.in(v)) arm(v);
      }
    }
    return;
  }
  // No shared port cache: fill the pass's own. With a members list only
  // participants' entries are (re)written -- stale entries of previous
  // passes are never read, since pump() only runs at participants.
  if (tree_.members != nullptr && parent_port_.size() == n) {
    for (const NodeId v : *tree_.members) {
      const EdgeId pe = (*tree_.parent_edge)[v];
      parent_port_[v] = pe != kNoEdge ? ex.network().port_of_edge(v, pe) : 0;
    }
  } else {
    parent_port_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!tree_.in(v)) continue;
      const EdgeId pe = (*tree_.parent_edge)[v];
      if (pe != kNoEdge) parent_port_[v] = ex.network().port_of_edge(v, pe);
    }
  }
  parent_ports_ = parent_port_.data();
  const auto arm = [&](NodeId v) {
    pending_[v] = static_cast<std::uint32_t>((*tree_.children)[v].size());
    if (pending_[v] == 0) finalize(ex, v);
  };
  if (tree_.members != nullptr) {
    for (const NodeId v : *tree_.members) arm(v);
  } else {
    for (NodeId v = 0; v < n; ++v) {
      if (tree_.in(v)) arm(v);
    }
  }
}

void ConvergeRecords::on_wake(Exec& ex, NodeId v,
                              std::span<const Inbound> inbox) {
  bool finalized_now = false;
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagRecord) {
      merge_record(v, {static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]},
                   ex.shard());
    } else if (in.msg.tag == kTagLast) {
      merge_record(v, {static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]},
                   ex.shard());
      CPT_ASSERT(pending_[v] > 0);
      if (--pending_[v] == 0) finalized_now = true;
    } else if (in.msg.tag == kTagDone) {
      CPT_ASSERT(pending_[v] > 0);
      if (--pending_[v] == 0) finalized_now = true;
    }
  }
  if (finalized_now) {
    finalize(ex, v);
  } else if (pending_[v] == 0 && !done_sent_[v] &&
             (*tree_.parent_edge)[v] != kNoEdge) {
    pump(ex, v);  // wake-up to continue draining the queue
  }
}

// ---------------------------------------------------------------- Broadcast

BroadcastRecords::BroadcastRecords(TreeView tree) { reset(tree); }

void BroadcastRecords::reset(TreeView tree, const TreePorts* ports,
                             bool pipelined) {
  CPT_EXPECTS(tree.parent_edge != nullptr && tree.children != nullptr);
  tree_ = tree;
  ports_ = ports;
  pipelined_ = pipelined;
  const std::size_t n = tree_.parent_edge->size();
  stream.reset(n);
  received.reset(n);
  // Pipelined streams pump straight out of `stream` (roots) / `received`
  // (relays) via the rows' cursors: no queue copy at all.
  if (!pipelined_) queue_.reset(n);
  if (tree.members != nullptr && end_queued_.size() == n) {
    for (const NodeId v : *tree.members) end_queued_[v] = 0;
  } else {
    end_queued_.assign(n, 0);
  }
}

void BroadcastRecords::queue_push(NodeId v, Record r, std::uint32_t shard) {
  queue_.push(v, r, shard);
  // Repair the send cursor of a drained (or fresh) row so pump resumes.
  if (queue_.cursor(v) == kNil) queue_.set_cursor(v, queue_.tail_slot(v));
}

void BroadcastRecords::pump(Exec& ex, NodeId v) {
  RecordTable& src =
      pipelined_
          ? ((*tree_.parent_edge)[v] == kNoEdge ? stream : received)
          : queue_;
  const std::uint32_t slot = src.cursor(v);
  if (slot == kNil) return;
  const std::uint32_t next = src.next_slot(slot);
  const bool is_end = end_queued_[v] && next == kNil;
  const Record& r = src.at_slot(slot);
  const Msg msg = Msg::make(
      is_end ? (pipelined_ ? kTagLast : kTagDone) : kTagRecord,
      static_cast<std::int64_t>(r.key), r.value);
  for (std::uint32_t i = child_offset_view_[v]; i < child_offset_view_[v + 1];
       ++i) {
    ex.send(v, child_port_view_[i], msg);
  }
  src.set_cursor(v, next);
  if (next != kNil) ex.wake_next_round(v);
}

void BroadcastRecords::start_root(Exec& ex, NodeId v) {
  if (!tree_.in(v)) return;
  if ((*tree_.parent_edge)[v] != kNoEdge) return;  // not a root
  if (stream[v].empty() || !has_children(v)) return;
  if (pipelined_) {
    stream.set_cursor(v, stream.head_slot(v));
  } else {
    queue_[v] = stream[v];
    // start_root only runs from begin() (driver context).
    queue_.push(v, {}, RecordTable::kDriverShard);  // end marker, sent as DONE
    queue_.set_cursor(v, queue_.head_slot(v));
  }
  end_queued_[v] = 1;
  pump(ex, v);
}

void BroadcastRecords::begin(Exec& ex) {
  const NodeId n = static_cast<NodeId>(tree_.parent_edge->size());
  if (ports_ != nullptr) {
    child_port_view_ = ports_->child_port.data();
    child_offset_view_ = ports_->child_offset.data();
  } else {
    child_ports_offset_.assign(n + 1, 0);
    std::size_t total_children = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (tree_.in(v)) total_children += (*tree_.children)[v].size();
      child_ports_offset_[v + 1] = static_cast<std::uint32_t>(total_children);
    }
    child_ports_.clear();
    child_ports_.reserve(total_children);
    for (NodeId v = 0; v < n; ++v) {
      if (!tree_.in(v)) continue;
      for (const EdgeId ce : (*tree_.children)[v]) {
        child_ports_.push_back(ex.network().port_of_edge(v, ce));
      }
    }
    child_port_view_ = child_ports_.data();
    child_offset_view_ = child_ports_offset_.data();
  }
  if (tree_.roots != nullptr) {
    for (const NodeId r : *tree_.roots) start_root(ex, r);
  } else if (tree_.members != nullptr) {
    for (const NodeId r : *tree_.members) start_root(ex, r);
  } else {
    for (NodeId v = 0; v < n; ++v) start_root(ex, v);
  }
}

void BroadcastRecords::on_wake(Exec& ex, NodeId v,
                               std::span<const Inbound> inbox) {
  const bool relay = has_children(v);
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagRecord) {
      const Record r{static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]};
      received.push(v, r, ex.shard());
      if (relay) {
        if (pipelined_) {
          if (received.cursor(v) == kNil) {
            received.set_cursor(v, received.tail_slot(v));
          }
        } else {
          queue_push(v, r, ex.shard());
        }
      }
    } else if (in.msg.tag == kTagLast) {
      const Record r{static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]};
      received.push(v, r, ex.shard());
      if (relay && received.cursor(v) == kNil) {
        received.set_cursor(v, received.tail_slot(v));
      }
      end_queued_[v] = 1;
    } else if (in.msg.tag == kTagDone) {
      if (relay) queue_push(v, {}, ex.shard());
      end_queued_[v] = 1;
    }
  }
  if (relay) pump(ex, v);
}

// ----------------------------------------------------------------- Exchange

void Exchange::begin(Exec& ex) {
  std::vector<std::pair<std::uint32_t, Msg>> out;
  const auto emit = [&](NodeId v) {
    out.clear();
    outgoing_(v, out);
    for (const auto& [port, msg] : out) ex.send(v, port, msg);
  };
  if (senders_ != nullptr) {
    for (const NodeId v : *senders_) emit(v);
  } else {
    for (NodeId v = 0; v < num_nodes_; ++v) emit(v);
  }
}

void Exchange::on_wake(Exec& ex, NodeId v, std::span<const Inbound> inbox) {
  if (collect_) collect_(ex, v, inbox);
}

// ---------------------------------------------------------------- BfsForest

BfsForest::BfsForest(const std::vector<NodeId>& part_root)
    : part_root_(&part_root) {
  const std::size_t n = part_root.size();
  parent_edge.assign(n, kNoEdge);
  children.assign(n, {});
  level.assign(n, 0);
  joined_.assign(n, 0);
}

void BfsForest::begin(Exec& ex) {
  const NodeId n = static_cast<NodeId>(part_root_->size());
  for (NodeId v = 0; v < n; ++v) {
    if ((*part_root_)[v] != v) continue;  // not a root
    joined_[v] = 1;
    level[v] = 0;
    for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
      ex.send(v, p, Msg::make(kTagWave, static_cast<std::int64_t>(v), 0));
    }
  }
}

void BfsForest::on_wake(Exec& ex, NodeId v, std::span<const Inbound> inbox) {
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagChild) {
      children[v].push_back(ex.network().arc(v, in.port).edge);
      continue;
    }
    if (in.msg.tag != kTagWave) continue;
    const NodeId wave_root = static_cast<NodeId>(in.msg.w[0]);
    if (wave_root != (*part_root_)[v]) continue;  // foreign part's wave
    if (joined_[v]) continue;
    joined_[v] = 1;
    parent_edge[v] = ex.network().arc(v, in.port).edge;
    level[v] = static_cast<std::uint32_t>(in.msg.w[1]) + 1;
    for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
      if (p == in.port) {
        ex.send(v, p, Msg::make(kTagChild));
      } else {
        ex.send(v, p, Msg::make(kTagWave, static_cast<std::int64_t>(wave_root),
                                level[v]));
      }
    }
  }
}

}  // namespace cpt::congest
