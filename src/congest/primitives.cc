#include "congest/primitives.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt::congest {
namespace {

enum Tag : std::uint32_t {
  kTagRecord = 1,
  kTagDone = 2,
  kTagWave = 3,
  kTagChild = 4,
};

}  // namespace

// ---------------------------------------------------------------- Converge

ConvergeRecords::ConvergeRecords(TreeView tree, Combine combine, std::uint32_t cap)
    : tree_(tree), combine_(combine), cap_(cap) {
  CPT_EXPECTS(tree_.parent_edge != nullptr && tree_.children != nullptr);
  const std::size_t n = tree_.parent_edge->size();
  initial.resize(n);
  merged_.resize(n);
  overflow_.assign(n, 0);
  pending_.assign(n, 0);
  cursor_.assign(n, 0);
  done_sent_.assign(n, 0);
}

void ConvergeRecords::merge_record(NodeId v, Record r) {
  if (overflow_[v]) return;
  if (r.key == kOverflowKey) {
    overflow_[v] = 1;
    merged_[v].clear();
    return;
  }
  for (Record& have : merged_[v]) {
    if (have.key == r.key) {
      switch (combine_) {
        case Combine::kSum: have.value += r.value; break;
        case Combine::kMin: have.value = std::min(have.value, r.value); break;
        case Combine::kMax: have.value = std::max(have.value, r.value); break;
      }
      return;
    }
  }
  merged_[v].push_back(r);
  if (cap_ != 0 && merged_[v].size() > cap_) {
    overflow_[v] = 1;
    merged_[v].clear();
  }
}

void ConvergeRecords::pump(Simulator& sim, NodeId v) {
  // Stream one record (or the final DONE) per round toward the parent.
  if (done_sent_[v]) return;
  const EdgeId pe = (*tree_.parent_edge)[v];
  CPT_ASSERT(pe != kNoEdge);
  const std::uint32_t port = sim.network().port_of_edge(v, pe);
  const std::vector<Record>& out =
      overflow_[v] ? overflow_records_() : merged_[v];
  if (cursor_[v] < out.size()) {
    const Record& r = out[cursor_[v]++];
    sim.send(v, port, Msg::make(kTagRecord, static_cast<std::int64_t>(r.key),
                                r.value));
    sim.wake_next_round(v);
  } else {
    sim.send(v, port, Msg::make(kTagDone));
    done_sent_[v] = 1;
  }
}

// A static single overflow record used as the outgoing stream of an
// overflowed node.
const std::vector<Record>& ConvergeRecords::overflow_records_() {
  static const std::vector<Record> kOverflow{{kOverflowKey, 1}};
  return kOverflow;
}

void ConvergeRecords::finalize(Simulator& sim, NodeId v) {
  for (const Record& r : initial[v]) merge_record(v, r);
  if ((*tree_.parent_edge)[v] == kNoEdge) return;  // root keeps its result
  pump(sim, v);
}

void ConvergeRecords::begin(Simulator& sim) {
  const NodeId n = static_cast<NodeId>(tree_.parent_edge->size());
  for (NodeId v = 0; v < n; ++v) {
    if (!tree_.in(v)) continue;
    pending_[v] = static_cast<std::uint32_t>((*tree_.children)[v].size());
    if (pending_[v] == 0) finalize(sim, v);
  }
}

void ConvergeRecords::on_wake(Simulator& sim, NodeId v,
                              std::span<const Inbound> inbox) {
  bool finalized_now = false;
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagRecord) {
      merge_record(v, {static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]});
    } else if (in.msg.tag == kTagDone) {
      CPT_ASSERT(pending_[v] > 0);
      if (--pending_[v] == 0) finalized_now = true;
    }
  }
  if (finalized_now) {
    finalize(sim, v);
  } else if (pending_[v] == 0 && !done_sent_[v] &&
             (*tree_.parent_edge)[v] != kNoEdge) {
    pump(sim, v);  // wake-up to continue draining the queue
  }
}

// ---------------------------------------------------------------- Broadcast

BroadcastRecords::BroadcastRecords(TreeView tree) : tree_(tree) {
  CPT_EXPECTS(tree_.parent_edge != nullptr && tree_.children != nullptr);
  const std::size_t n = tree_.parent_edge->size();
  stream.resize(n);
  received.resize(n);
  queue_.resize(n);
  cursor_.assign(n, 0);
  end_queued_.assign(n, 0);
}

void BroadcastRecords::pump(Simulator& sim, NodeId v) {
  if (cursor_[v] >= queue_[v].size()) return;
  const bool is_end =
      end_queued_[v] && cursor_[v] + 1 == queue_[v].size();
  const Record& r = queue_[v][cursor_[v]++];
  for (const EdgeId ce : (*tree_.children)[v]) {
    const std::uint32_t port = sim.network().port_of_edge(v, ce);
    sim.send(v, port,
             Msg::make(is_end ? kTagDone : kTagRecord,
                       static_cast<std::int64_t>(r.key), r.value));
  }
  if (cursor_[v] < queue_[v].size()) sim.wake_next_round(v);
}

void BroadcastRecords::begin(Simulator& sim) {
  const NodeId n = static_cast<NodeId>(tree_.parent_edge->size());
  for (NodeId v = 0; v < n; ++v) {
    if (!tree_.in(v)) continue;
    if ((*tree_.parent_edge)[v] != kNoEdge) continue;  // not a root
    if (stream[v].empty() || (*tree_.children)[v].empty()) continue;
    queue_[v] = stream[v];
    queue_[v].push_back({});  // end marker slot
    end_queued_[v] = 1;
    pump(sim, v);
  }
}

void BroadcastRecords::on_wake(Simulator& sim, NodeId v,
                               std::span<const Inbound> inbox) {
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagRecord) {
      const Record r{static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]};
      received[v].push_back(r);
      queue_[v].push_back(r);
    } else if (in.msg.tag == kTagDone) {
      queue_[v].push_back({});
      end_queued_[v] = 1;
    }
  }
  pump(sim, v);
}

// ----------------------------------------------------------------- Exchange

void Exchange::begin(Simulator& sim) {
  std::vector<std::pair<std::uint32_t, Msg>> out;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    out.clear();
    outgoing_(v, out);
    for (const auto& [port, msg] : out) sim.send(v, port, msg);
  }
}

void Exchange::on_wake(Simulator&, NodeId v, std::span<const Inbound> inbox) {
  if (collect_) collect_(v, inbox);
}

// ---------------------------------------------------------------- BfsForest

BfsForest::BfsForest(const std::vector<NodeId>& part_root)
    : part_root_(&part_root) {
  const std::size_t n = part_root.size();
  parent_edge.assign(n, kNoEdge);
  children.assign(n, {});
  level.assign(n, 0);
  joined_.assign(n, 0);
}

void BfsForest::begin(Simulator& sim) {
  const NodeId n = static_cast<NodeId>(part_root_->size());
  for (NodeId v = 0; v < n; ++v) {
    if ((*part_root_)[v] != v) continue;  // not a root
    joined_[v] = 1;
    level[v] = 0;
    for (std::uint32_t p = 0; p < sim.network().port_count(v); ++p) {
      sim.send(v, p, Msg::make(kTagWave, static_cast<std::int64_t>(v), 0));
    }
  }
}

void BfsForest::on_wake(Simulator& sim, NodeId v, std::span<const Inbound> inbox) {
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagChild) {
      children[v].push_back(sim.network().arc(v, in.port).edge);
      continue;
    }
    if (in.msg.tag != kTagWave) continue;
    const NodeId wave_root = static_cast<NodeId>(in.msg.w[0]);
    if (wave_root != (*part_root_)[v]) continue;  // foreign part's wave
    if (joined_[v]) continue;
    joined_[v] = 1;
    parent_edge[v] = sim.network().arc(v, in.port).edge;
    level[v] = static_cast<std::uint32_t>(in.msg.w[1]) + 1;
    for (std::uint32_t p = 0; p < sim.network().port_count(v); ++p) {
      if (p == in.port) {
        sim.send(v, p, Msg::make(kTagChild));
      } else {
        sim.send(v, p, Msg::make(kTagWave, static_cast<std::int64_t>(wave_root),
                                 level[v]));
      }
    }
  }
}

}  // namespace cpt::congest
