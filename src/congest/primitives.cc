#include "congest/primitives.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt::congest {
namespace {

enum Tag : std::uint32_t {
  kTagRecord = 1,
  kTagDone = 2,
  kTagWave = 3,
  kTagChild = 4,
};

}  // namespace

// ---------------------------------------------------------------- TreePorts

void TreePorts::build(const Network& net, const std::vector<EdgeId>& parent_edge,
                      const std::vector<std::vector<EdgeId>>& children) {
  const std::size_t n = parent_edge.size();
  parent_port.assign(n, 0);
  if (child_offset.size() != n + 1) child_offset.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total += children[v].size();
    child_offset[v + 1] = static_cast<std::uint32_t>(total);
  }
  child_port.clear();
  child_port.reserve(total);
  for (NodeId v = 0; v < n; ++v) {
    if (parent_edge[v] != kNoEdge) {
      parent_port[v] = net.port_of_edge(v, parent_edge[v]);
    }
    for (const EdgeId ce : children[v]) {
      child_port.push_back(net.port_of_edge(v, ce));
    }
  }
}

// ---------------------------------------------------------------- Converge

ConvergeRecords::ConvergeRecords(TreeView tree, Combine combine, std::uint32_t cap) {
  reset(tree, combine, cap);
}

void ConvergeRecords::reset(TreeView tree, Combine combine, std::uint32_t cap,
                            const TreePorts* ports) {
  CPT_EXPECTS(tree.parent_edge != nullptr && tree.children != nullptr);
  tree_ = tree;
  combine_ = combine;
  cap_ = cap;
  ports_ = ports;
  const std::size_t n = tree_.parent_edge->size();
  clear_record_table(initial, n);
  clear_record_table(merged_, n);
  overflow_.assign(n, 0);
  pending_.assign(n, 0);
  cursor_.assign(n, 0);
  done_sent_.assign(n, 0);
}

void ConvergeRecords::merge_record(NodeId v, Record r) {
  if (overflow_[v]) return;
  if (r.key == kOverflowKey) {
    overflow_[v] = 1;
    merged_[v].clear();
    return;
  }
  for (Record& have : merged_[v]) {
    if (have.key == r.key) {
      switch (combine_) {
        case Combine::kSum: have.value += r.value; break;
        case Combine::kMin: have.value = std::min(have.value, r.value); break;
        case Combine::kMax: have.value = std::max(have.value, r.value); break;
      }
      return;
    }
  }
  merged_[v].push_back(r);
  if (cap_ != 0 && merged_[v].size() > cap_) {
    overflow_[v] = 1;
    merged_[v].clear();
  }
}

void ConvergeRecords::pump(Simulator& sim, NodeId v) {
  // Stream one record (or the final DONE) per round toward the parent.
  if (done_sent_[v]) return;
  CPT_ASSERT((*tree_.parent_edge)[v] != kNoEdge);
  const std::uint32_t port = parent_ports_[v];
  const std::vector<Record>& out =
      overflow_[v] ? overflow_records_() : merged_[v];
  if (cursor_[v] < out.size()) {
    const Record& r = out[cursor_[v]++];
    sim.send(v, port, Msg::make(kTagRecord, static_cast<std::int64_t>(r.key),
                                r.value));
    sim.wake_next_round(v);
  } else {
    sim.send(v, port, Msg::make(kTagDone));
    done_sent_[v] = 1;
  }
}

// A static single overflow record used as the outgoing stream of an
// overflowed node.
const std::vector<Record>& ConvergeRecords::overflow_records_() {
  static const std::vector<Record> kOverflow{{kOverflowKey, 1}};
  return kOverflow;
}

void ConvergeRecords::finalize(Simulator& sim, NodeId v) {
  for (const Record& r : initial[v]) merge_record(v, r);
  if ((*tree_.parent_edge)[v] == kNoEdge) return;  // root keeps its result
  pump(sim, v);
}

void ConvergeRecords::begin(Simulator& sim) {
  const NodeId n = static_cast<NodeId>(tree_.parent_edge->size());
  if (ports_ != nullptr) {
    parent_ports_ = ports_->parent_port.data();
  } else {
    parent_port_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!tree_.in(v)) continue;
      const EdgeId pe = (*tree_.parent_edge)[v];
      if (pe != kNoEdge) parent_port_[v] = sim.network().port_of_edge(v, pe);
    }
    parent_ports_ = parent_port_.data();
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!tree_.in(v)) continue;
    pending_[v] = static_cast<std::uint32_t>((*tree_.children)[v].size());
    if (pending_[v] == 0) finalize(sim, v);
  }
}

void ConvergeRecords::on_wake(Simulator& sim, NodeId v,
                              std::span<const Inbound> inbox) {
  bool finalized_now = false;
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagRecord) {
      merge_record(v, {static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]});
    } else if (in.msg.tag == kTagDone) {
      CPT_ASSERT(pending_[v] > 0);
      if (--pending_[v] == 0) finalized_now = true;
    }
  }
  if (finalized_now) {
    finalize(sim, v);
  } else if (pending_[v] == 0 && !done_sent_[v] &&
             (*tree_.parent_edge)[v] != kNoEdge) {
    pump(sim, v);  // wake-up to continue draining the queue
  }
}

// ---------------------------------------------------------------- Broadcast

BroadcastRecords::BroadcastRecords(TreeView tree) { reset(tree); }

void BroadcastRecords::reset(TreeView tree, const TreePorts* ports) {
  CPT_EXPECTS(tree.parent_edge != nullptr && tree.children != nullptr);
  tree_ = tree;
  ports_ = ports;
  const std::size_t n = tree_.parent_edge->size();
  clear_record_table(stream, n);
  clear_record_table(received, n);
  clear_record_table(queue_, n);
  cursor_.assign(n, 0);
  end_queued_.assign(n, 0);
}

void BroadcastRecords::pump(Simulator& sim, NodeId v) {
  if (cursor_[v] >= queue_[v].size()) return;
  const bool is_end =
      end_queued_[v] && cursor_[v] + 1 == queue_[v].size();
  const Record& r = queue_[v][cursor_[v]++];
  const Msg msg = Msg::make(is_end ? kTagDone : kTagRecord,
                            static_cast<std::int64_t>(r.key), r.value);
  for (std::uint32_t i = child_offset_view_[v]; i < child_offset_view_[v + 1];
       ++i) {
    sim.send(v, child_port_view_[i], msg);
  }
  if (cursor_[v] < queue_[v].size()) sim.wake_next_round(v);
}

void BroadcastRecords::begin(Simulator& sim) {
  const NodeId n = static_cast<NodeId>(tree_.parent_edge->size());
  if (ports_ != nullptr) {
    child_port_view_ = ports_->child_port.data();
    child_offset_view_ = ports_->child_offset.data();
  } else {
    child_ports_offset_.assign(n + 1, 0);
    std::size_t total_children = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (tree_.in(v)) total_children += (*tree_.children)[v].size();
      child_ports_offset_[v + 1] = static_cast<std::uint32_t>(total_children);
    }
    child_ports_.clear();
    child_ports_.reserve(total_children);
    for (NodeId v = 0; v < n; ++v) {
      if (!tree_.in(v)) continue;
      for (const EdgeId ce : (*tree_.children)[v]) {
        child_ports_.push_back(sim.network().port_of_edge(v, ce));
      }
    }
    child_port_view_ = child_ports_.data();
    child_offset_view_ = child_ports_offset_.data();
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!tree_.in(v)) continue;
    if ((*tree_.parent_edge)[v] != kNoEdge) continue;  // not a root
    if (stream[v].empty() || (*tree_.children)[v].empty()) continue;
    queue_[v] = stream[v];
    queue_[v].push_back({});  // end marker slot
    end_queued_[v] = 1;
    pump(sim, v);
  }
}

void BroadcastRecords::on_wake(Simulator& sim, NodeId v,
                               std::span<const Inbound> inbox) {
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagRecord) {
      const Record r{static_cast<std::uint64_t>(in.msg.w[0]), in.msg.w[1]};
      received[v].push_back(r);
      queue_[v].push_back(r);
    } else if (in.msg.tag == kTagDone) {
      queue_[v].push_back({});
      end_queued_[v] = 1;
    }
  }
  pump(sim, v);
}

// ----------------------------------------------------------------- Exchange

void Exchange::begin(Simulator& sim) {
  std::vector<std::pair<std::uint32_t, Msg>> out;
  const auto emit = [&](NodeId v) {
    out.clear();
    outgoing_(v, out);
    for (const auto& [port, msg] : out) sim.send(v, port, msg);
  };
  if (senders_ != nullptr) {
    for (const NodeId v : *senders_) emit(v);
  } else {
    for (NodeId v = 0; v < num_nodes_; ++v) emit(v);
  }
}

void Exchange::on_wake(Simulator&, NodeId v, std::span<const Inbound> inbox) {
  if (collect_) collect_(v, inbox);
}

// ---------------------------------------------------------------- BfsForest

BfsForest::BfsForest(const std::vector<NodeId>& part_root)
    : part_root_(&part_root) {
  const std::size_t n = part_root.size();
  parent_edge.assign(n, kNoEdge);
  children.assign(n, {});
  level.assign(n, 0);
  joined_.assign(n, 0);
}

void BfsForest::begin(Simulator& sim) {
  const NodeId n = static_cast<NodeId>(part_root_->size());
  for (NodeId v = 0; v < n; ++v) {
    if ((*part_root_)[v] != v) continue;  // not a root
    joined_[v] = 1;
    level[v] = 0;
    for (std::uint32_t p = 0; p < sim.network().port_count(v); ++p) {
      sim.send(v, p, Msg::make(kTagWave, static_cast<std::int64_t>(v), 0));
    }
  }
}

void BfsForest::on_wake(Simulator& sim, NodeId v, std::span<const Inbound> inbox) {
  for (const Inbound& in : inbox) {
    if (in.msg.tag == kTagChild) {
      children[v].push_back(sim.network().arc(v, in.port).edge);
      continue;
    }
    if (in.msg.tag != kTagWave) continue;
    const NodeId wave_root = static_cast<NodeId>(in.msg.w[0]);
    if (wave_root != (*part_root_)[v]) continue;  // foreign part's wave
    if (joined_[v]) continue;
    joined_[v] = 1;
    parent_edge[v] = sim.network().arc(v, in.port).edge;
    level[v] = static_cast<std::uint32_t>(in.msg.w[1]) + 1;
    for (std::uint32_t p = 0; p < sim.network().port_count(v); ++p) {
      if (p == in.port) {
        sim.send(v, p, Msg::make(kTagChild));
      } else {
        sim.send(v, p, Msg::make(kTagWave, static_cast<std::int64_t>(wave_root),
                                 level[v]));
      }
    }
  }
}

}  // namespace cpt::congest
