#include "congest/simulator.h"

#include "util/contracts.h"

namespace cpt::congest {

PassResult Simulator::run(Program& program, std::uint64_t max_rounds) {
  // Drop anything left in flight by a previous run that hit max_rounds.
  // O(leftover): a quiesced simulator pays nothing here.
  for (Flight& f : flight_) {
    f.arcs.clear();
    f.msgs.clear();
    f.wakes.clear();
  }
  round_ = 0;
  cur_ = 0;

  PassResult result;
  program.begin(*this);
  while (!flight_[cur_ ^ 1].arcs.empty() || !flight_[cur_ ^ 1].wakes.empty()) {
    if (round_ >= max_rounds) {
      result.quiesced = false;
      break;
    }
    ++round_;
    cur_ ^= 1;
    Flight& in = flight_[cur_];
    result.messages += in.msgs.size();

    // Drain arcs in increasing index order == (destination, port) order:
    // deterministic node processing and port-sorted inboxes, merged with
    // the wake-up set. Sends during on_wake go to the other flight, so the
    // cached minima stay valid across the program callback.
    constexpr std::size_t kDrained = ~std::size_t{0};
    std::size_t ri = in.arcs.empty() ? kDrained : in.arcs.front();
    std::size_t wake = in.wakes.empty() ? kDrained : in.wakes.front();
    while (ri != kDrained || wake != kDrained) {
      const NodeId mv = ri == kDrained
                            ? kNoNode
                            : net_->arc_owner(static_cast<std::uint32_t>(ri));
      const NodeId wv = wake == kDrained ? kNoNode : static_cast<NodeId>(wake);
      const NodeId v = mv <= wv ? mv : wv;
      std::span<const Inbound> box{};
      if (mv == v) {
        // Single-message inboxes (the common case in pipelined passes) are
        // handed out as a span into the flight buffer; only multi-message
        // inboxes gather into inbox_ to make the port-sorted view
        // contiguous. Receiving ports are filled in here (send() leaves
        // them blank to stay lookup-free).
        const std::uint32_t base = net_->arc_base(v);
        const std::uint32_t end = base + net_->port_count(v);
        const std::uint32_t first = in.slot[ri];
        in.msgs[first].port = static_cast<std::uint32_t>(ri) - base;
        std::size_t cnt = 1;
        in.arcs.erase(ri);
        ri = in.arcs.empty() ? kDrained : in.arcs.front();
        while (ri < end) {
          if (cnt == 1) {
            inbox_.clear();
            inbox_.push_back(in.msgs[first]);
          }
          inbox_.push_back({static_cast<std::uint32_t>(ri) - base,
                            in.msgs[in.slot[ri]].msg});
          ++cnt;
          in.arcs.erase(ri);
          ri = in.arcs.empty() ? kDrained : in.arcs.front();
        }
        box = cnt == 1 ? std::span<const Inbound>{&in.msgs[first], 1}
                       : std::span<const Inbound>{inbox_};
      }
      if (wv == v) {
        in.wakes.erase(wake);
        wake = in.wakes.empty() ? kDrained : in.wakes.front();
      }
      program.on_wake(*this, v, box);
    }
    in.msgs.clear();
  }
  result.rounds = round_;
  return result;
}

}  // namespace cpt::congest
