#include "congest/simulator.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpt::congest {

void Simulator::send(NodeId from, std::uint32_t port, const Msg& msg) {
  CPT_EXPECTS(port < net_->port_count(from));
  // One message per directed edge per round (CONGEST bandwidth): detect
  // duplicates with a round stamp per directed half-edge.
  const Arc a = net_->arc(from, port);
  const Endpoints ep = net_->graph().endpoints(a.edge);
  const std::uint64_t half = 2ULL * a.edge + (ep.u == from ? 0 : 1);
  CPT_EXPECTS(half_stamp_[half] != round_ &&
              "one message per directed edge per round (CONGEST)");
  half_stamp_[half] = round_;
  next_out_.push_back(
      {(static_cast<std::uint64_t>(a.to) << 20) | net_->port_of_edge(a.to, a.edge),
       msg});
}

PassResult Simulator::run(Program& program, std::uint64_t max_rounds) {
  next_out_.clear();
  next_wake_.clear();
  round_ = 0;
  half_stamp_.assign(2ULL * net_->graph().num_edges(), ~0ULL);

  PassResult result;
  program.begin(*this);
  std::vector<Delivery> current;
  std::vector<NodeId> wakes;
  while (!next_out_.empty() || !next_wake_.empty()) {
    if (round_ >= max_rounds) {
      result.quiesced = false;
      break;
    }
    ++round_;
    current = std::move(next_out_);
    next_out_.clear();
    wakes = std::move(next_wake_);
    next_wake_.clear();
    result.messages += current.size();

    // Deterministic delivery order: group by destination, inbox sorted by
    // receiving port (both encoded in the packed key).
    std::sort(current.begin(), current.end(),
              [](const Delivery& a, const Delivery& b) { return a.key < b.key; });
    std::sort(wakes.begin(), wakes.end());
    wakes.erase(std::unique(wakes.begin(), wakes.end()), wakes.end());

    static thread_local std::vector<Inbound> inbox;
    std::size_t i = 0;
    std::size_t wi = 0;
    while (i < current.size() || wi < wakes.size()) {
      NodeId v;
      if (i < current.size() &&
          (wi >= wakes.size() ||
           static_cast<NodeId>(current[i].key >> 20) <= wakes[wi])) {
        v = static_cast<NodeId>(current[i].key >> 20);
      } else {
        v = wakes[wi];
      }
      inbox.clear();
      while (i < current.size() &&
             static_cast<NodeId>(current[i].key >> 20) == v) {
        inbox.push_back({static_cast<std::uint32_t>(current[i].key & 0xfffff),
                         current[i].msg});
        ++i;
      }
      while (wi < wakes.size() && wakes[wi] <= v) ++wi;
      program.on_wake(*this, v, inbox);
    }
  }
  result.rounds = round_;
  return result;
}

}  // namespace cpt::congest
