#include "congest/simulator.h"

#include <algorithm>
#include <cstdlib>

#include "util/contracts.h"

namespace cpt::congest {

// What a SimMemory keeps warm between Simulators: the two flight
// generations (bitsets and payload vectors retain capacity through their
// reset/clear paths), the shared slot maps, the gather inboxes, and --
// when the previous owner ran multi-worker -- its WorkerPool, so pooled
// batch jobs reuse live threads instead of spawning per job.
struct SimMemory::Store {
  std::vector<Simulator::Flight> flights[2];
  std::vector<std::uint32_t> slot[2];
  std::vector<std::vector<Inbound>> inbox;
  std::vector<IndexedBitset> udeliv_arcs;
  std::vector<IndexedBitset> udeliv_wakes;
  std::unique_ptr<WorkerPool> pool;
  unsigned pool_workers = 0;
};

SimMemory::SimMemory() = default;
SimMemory::~SimMemory() = default;
SimMemory::SimMemory(SimMemory&&) noexcept = default;
SimMemory& SimMemory::operator=(SimMemory&&) noexcept = default;

unsigned resolve_sim_threads(unsigned requested) {
  unsigned t = requested;
  if (t == 0) {
    if (const char* env = std::getenv("CPT_TEST_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) t = static_cast<unsigned>(v);
    }
    if (t == 0) t = 1;
  }
  return std::min(t, Simulator::kMaxWorkers);
}

Simulator::Simulator(const Network& net, SimOptions opt)
    : net_(&net),
      workers_(resolve_sim_threads(opt.num_threads)),
      parallel_grain_(std::max<std::uint64_t>(opt.parallel_grain, 1)),
      union_delivery_(opt.union_delivery),
      rebalance_(opt.rebalance_shards),
      rebalance_interval_(std::max<std::uint32_t>(opt.rebalance_interval, 1)),
      memory_(opt.memory),
      budget_(opt.max_rounds),
      trace_(util::kTraceCompiled ? opt.trace : nullptr) {
  // Adopt pooled buffers before the sizing code below: every reset /
  // resize path reuses capacity, so a warm store turns the per-job O(m)
  // allocations into plain size bookkeeping. The pool is only reusable at
  // the same worker count (its thread team is fixed at construction).
  if (memory_ != nullptr) {
    if (memory_->store_ == nullptr) {
      memory_->store_ = std::make_unique<SimMemory::Store>();
    } else {
      SimMemory::Store& s = *memory_->store_;
      for (unsigned gen = 0; gen < 2; ++gen) {
        flights_[gen] = std::move(s.flights[gen]);
        slot_[gen] = std::move(s.slot[gen]);
      }
      inbox_ = std::move(s.inbox);
      udeliv_arcs_ = std::move(s.udeliv_arcs);
      udeliv_wakes_ = std::move(s.udeliv_wakes);
      if (s.pool != nullptr && s.pool_workers == workers_) {
        pool_ = std::move(s.pool);
      }
      s.pool.reset();
      s.pool_workers = 0;
    }
  }
  const NodeId n = net.num_nodes();
  // Shard boundaries balanced by arc count: shard s (1..K) owns the node
  // range [shard_lo_[s-1], shard_lo_[s]). Arc ranges of distinct shards
  // are disjoint because arc ids order arcs by (owner, port).
  shard_lo_.assign(workers_ + 1, n);
  shard_lo_[0] = 0;
  const std::uint64_t total_arcs = net.num_arcs();
  NodeId v = 0;
  for (unsigned s = 1; s < workers_; ++s) {
    const std::uint64_t target = total_arcs * s / workers_;
    while (v < n && net.arc_base(v) < target) ++v;
    shard_lo_[s] = v;
  }
  for (unsigned gen = 0; gen < 2; ++gen) {
    flights_[gen].resize(workers_ + 1);
    for (Flight& f : flights_[gen]) {
      f.arcs.reset(net.num_arcs());
      f.wakes.reset(n);
    }
    slot_[gen].resize(net.num_arcs());
  }
  execs_.reserve(workers_ + 1);
  for (std::uint32_t s = 0; s <= workers_; ++s) {
    execs_.emplace_back(new Exec(this, s));
  }
  inbox_.resize(workers_ + 1);
  if (workers_ > 1 && union_delivery_) {
    // Pooled per-shard delivery bitsets (reset reuses adopted capacity).
    udeliv_arcs_.resize(workers_ + 1);
    udeliv_wakes_.resize(workers_ + 1);
    for (std::uint32_t s = 1; s <= workers_; ++s) {
      udeliv_arcs_[s].reset(net.num_arcs());
      udeliv_wakes_[s].reset(n);
    }
  } else {
    udeliv_arcs_.clear();
    udeliv_wakes_.clear();
  }
  if (workers_ > 1 && rebalance_) {
    epoch_load_.assign(workers_ + 1, 0);
    shard_ewma_.assign(workers_ + 1, 0);
  }
  if (workers_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(workers_);
  } else if (workers_ == 1) {
    pool_.reset();  // an adopted pool from a wider run is useless here
  }
}

Simulator::~Simulator() {
  if (memory_ == nullptr) return;
  SimMemory::Store& s = *memory_->store_;
  for (unsigned gen = 0; gen < 2; ++gen) {
    s.flights[gen] = std::move(flights_[gen]);
    s.slot[gen] = std::move(slot_[gen]);
  }
  s.inbox = std::move(inbox_);
  s.udeliv_arcs = std::move(udeliv_arcs_);
  s.udeliv_wakes = std::move(udeliv_wakes_);
  s.pool = std::move(pool_);
  s.pool_workers = s.pool != nullptr ? workers_ : 0;
}

void Simulator::clear_flight(Flight& f) {
  // O(leftover): a drained flight pays only the level-2 scan.
  f.arcs.clear();
  f.msgs.clear();
  f.wakes.clear();
}

void Simulator::harvest_counters(std::uint64_t& msgs, std::uint64_t& wakes) {
  // Rebalancing piggybacks on this sweep: work sent while running shard s
  // is shard s's observed load for the current epoch (the driver's
  // begin-time sends are start-up cost, not steady-state skew, and are
  // excluded). Counter order is deterministic, so epoch_load_ is a pure
  // function of the schedule.
  const bool track = !epoch_load_.empty();
  for (std::uint32_t s = 0; s <= workers_; ++s) {
    Exec& e = *execs_[s];
    msgs += e.sent_msgs_;
    wakes += e.sent_wakes_;
    if (track && s != 0) epoch_load_[s] += e.sent_msgs_ + e.sent_wakes_;
    e.sent_msgs_ = 0;
    e.sent_wakes_ = 0;
  }
}

// Single-worker fast path. With one worker there are two contexts (driver
// 0, worker 1) and a node's sends always run on one of them per round:
// the driver fills flight 0 toward round 1, the worker fills flight 1
// toward every later round -- so exactly one flight holds each round and
// the K-way merge collapses to the classic single-bitset drain, erasing
// as it goes (which doubles as the flight clear). Identical schedule,
// none of the per-message source scans.
void Simulator::run_round_single(Program& program, Flight& in) {
  constexpr std::size_t kDrained = ~std::size_t{0};
  Exec& ex = *execs_[1];
  std::vector<Inbound>& gather = inbox_[1];
  const std::uint32_t* slot = slot_[cur_].data();
  std::size_t ri = in.arcs.empty() ? kDrained : in.arcs.front();
  std::size_t wake = in.wakes.empty() ? kDrained : in.wakes.front();
  while (ri != kDrained || wake != kDrained) {
    const NodeId mv = ri == kDrained
                          ? kNoNode
                          : net_->arc_owner(static_cast<std::uint32_t>(ri));
    const NodeId wv = wake == kDrained ? kNoNode : static_cast<NodeId>(wake);
    const NodeId v = mv <= wv ? mv : wv;
    std::span<const Inbound> box{};
    if (mv == v) {
      // Single-message inboxes (the common case in pipelined passes) are
      // handed out as a span into the flight buffer; only multi-message
      // inboxes gather to make the port-sorted view contiguous. Receiving
      // ports are filled in here (send() leaves them blank).
      const std::uint32_t base = net_->arc_base(v);
      const std::uint32_t end = base + net_->port_count(v);
      const std::uint32_t first = slot[ri];
      in.msgs[first].port = static_cast<std::uint32_t>(ri) - base;
      std::size_t cnt = 1;
      in.arcs.erase(ri);
      ri = in.arcs.empty() ? kDrained : in.arcs.front();
      while (ri < end) {
        if (cnt == 1) {
          gather.clear();
          gather.push_back(in.msgs[first]);
        }
        gather.push_back({static_cast<std::uint32_t>(ri) - base,
                          in.msgs[slot[ri]].msg});
        ++cnt;
        in.arcs.erase(ri);
        ri = in.arcs.empty() ? kDrained : in.arcs.front();
      }
      box = cnt == 1 ? std::span<const Inbound>{&in.msgs[first], 1}
                     : std::span<const Inbound>{gather};
    }
    if (wv == v) {
      in.wakes.erase(wake);
      wake = in.wakes.empty() ? kDrained : in.wakes.front();
    }
    program.on_wake(ex, v, box);
  }
  in.msgs.clear();
}

// Delivers round `round_` to the nodes of shard s and runs their local
// computations, in increasing node id order with port-sorted inboxes --
// exactly the serial schedule restricted to [shard_lo_[s-1], shard_lo_[s]).
// Reads every context's in-generation flight (read-only bitset walks);
// writes only shard s's out-generation flight and per-node program state
// of s's nodes, so concurrent shards never conflict.
void Simulator::process_shard(Program& program, std::uint32_t s) {
  constexpr std::size_t kNone = IndexedBitset::kNone;
  const NodeId lo = shard_lo_[s - 1];
  const NodeId hi = shard_lo_[s];
  if (lo == hi) return;
  const std::size_t arc_lo = net_->arc_base(lo);
  const std::size_t arc_hi = net_->arc_base(hi);

  Flight* const in = flights_[cur_].data();
  const std::uint32_t* slot = slot_[cur_].data();
  const std::uint32_t nsrc = workers_ + 1;
  // Compact live-source list with per-source cursors over this shard's
  // arc / node ranges; kNone marks an exhausted source. Contexts: 0 =
  // driver (round-1 sends), 1..K = workers -- but most rounds only a
  // couple of contexts sent at all, so the per-message min-scans below
  // touch live cursors only instead of all K+1.
  Flight* src[kMaxWorkers + 1];
  std::size_t arc_cur[kMaxWorkers + 1];
  std::size_t wake_cur[kMaxWorkers + 1];
  std::uint32_t nlive = 0;
  for (std::uint32_t f = 0; f < nsrc; ++f) {
    if (in[f].arcs.empty() && in[f].wakes.empty()) continue;
    std::size_t a = in[f].arcs.empty() ? kNone : in[f].arcs.next_at_least(arc_lo);
    a = (a >= arc_hi) ? kNone : a;
    std::size_t w = in[f].wakes.empty() ? kNone : in[f].wakes.next_at_least(lo);
    w = (w >= hi) ? kNone : w;
    if (a == kNone && w == kNone) continue;
    src[nlive] = &in[f];
    arc_cur[nlive] = a;
    wake_cur[nlive] = w;
    ++nlive;
  }

  Exec& ex = *execs_[s];
  std::vector<Inbound>& gather = inbox_[s];
  for (;;) {
    // Global minima across live sources (nlive is small; linear scans).
    std::size_t min_arc = kNone;
    std::uint32_t min_src = 0;
    std::size_t min_wake = kNone;
    for (std::uint32_t f = 0; f < nlive; ++f) {
      if (arc_cur[f] < min_arc) {
        min_arc = arc_cur[f];
        min_src = f;
      }
      if (wake_cur[f] < min_wake) min_wake = wake_cur[f];
    }
    if (min_arc == kNone && min_wake == kNone) break;

    const NodeId mv = min_arc == kNone
                          ? kNoNode
                          : net_->arc_owner(static_cast<std::uint32_t>(min_arc));
    const NodeId wv = min_wake == kNone ? kNoNode : static_cast<NodeId>(min_wake);
    const NodeId v = mv <= wv ? mv : wv;
    std::span<const Inbound> box{};
    if (mv == v) {
      // Drain all of v's arcs across the sources in increasing (global
      // arc index == port) order. Single-message inboxes (the common case
      // in pipelined passes) are handed out as a span into the source
      // flight buffer; only multi-message inboxes gather into inbox_[s]
      // to make the port-sorted view contiguous. Receiving ports are
      // filled in here (send() leaves them blank to stay lookup-free).
      const std::uint32_t base = net_->arc_base(v);
      const std::size_t end = base + net_->port_count(v);
      Flight& f0 = *src[min_src];
      Inbound& first = f0.msgs[slot[min_arc]];
      first.port = static_cast<std::uint32_t>(min_arc) - base;
      [[maybe_unused]] std::size_t prev = min_arc;
      {
        const std::size_t a = f0.arcs.next_at_least(min_arc + 1);
        arc_cur[min_src] = (a >= arc_hi) ? kNone : a;
      }
      std::size_t cnt = 1;
      for (;;) {
        std::size_t a = kNone;
        std::uint32_t af = 0;
        for (std::uint32_t f = 0; f < nlive; ++f) {
          if (arc_cur[f] < a) {
            a = arc_cur[f];
            af = f;
          }
        }
        if (a >= end) break;
        // A (sender, port) pair addresses a unique receiving arc and a
        // node's sends all run on one context, so two sources can never
        // carry the same arc; a repeat here would be a simulator bug.
        CPT_ASSERT(a != prev);
        prev = a;
        if (cnt == 1) {
          gather.clear();
          gather.push_back(first);
        }
        Flight& ff = *src[af];
        gather.push_back({static_cast<std::uint32_t>(a) - base,
                          ff.msgs[slot[a]].msg});
        ++cnt;
        const std::size_t nxt = ff.arcs.next_at_least(a + 1);
        arc_cur[af] = (nxt >= arc_hi) ? kNone : nxt;
      }
      box = cnt == 1 ? std::span<const Inbound>{&first, 1}
                     : std::span<const Inbound>{gather};
    }
    if (wv == v) {
      for (std::uint32_t f = 0; f < nlive; ++f) {
        if (wake_cur[f] != static_cast<std::size_t>(v)) continue;
        const std::size_t w = src[f]->wakes.next_at_least(v + 1);
        wake_cur[f] = (w >= hi) ? kNone : w;
      }
    }
    program.on_wake(ex, v, box);
  }
}

// Same contract as process_shard, but instead of paying a K-way cursor
// merge per delivered message it ORs every flight's arc / wake words over
// this shard's range into one pooled delivery bitset up front (word loop
// with summary short-circuit, see IndexedBitset::union_range_from), then
// drains the single bitset exactly like the serial fast path. Payload
// lookup still needs the owning flight (slot_ is shared; each flight holds
// its own msgs vector), resolved from one cached level-0 word per flight:
// the cache is reloaded only when delivery crosses a 64-arc word boundary,
// so a delivered message costs ~1 bit test per flight instead of ~K
// next_at_least scans. The union holds exactly the same arcs in the same
// increasing order as the merge, so the delivery schedule -- and every
// downstream ledger -- is bit-identical.
void Simulator::process_shard_union(Program& program, std::uint32_t s) {
  constexpr std::size_t kDrained = ~std::size_t{0};
  const NodeId lo = shard_lo_[s - 1];
  const NodeId hi = shard_lo_[s];
  if (lo == hi) return;
  const std::size_t arc_lo = net_->arc_base(lo);
  const std::size_t arc_hi = net_->arc_base(hi);

  Flight* const in = flights_[cur_].data();
  const std::uint32_t* slot = slot_[cur_].data();
  const std::uint32_t nsrc = workers_ + 1;

  IndexedBitset& arcs = udeliv_arcs_[s];
  IndexedBitset& wakes = udeliv_wakes_[s];
  // The drain below erases every member it delivers, so the pooled bitsets
  // come back empty -- no end-of-round clear pass.
  CPT_ASSERT(arcs.empty() && wakes.empty());
  for (std::uint32_t f = 0; f < nsrc; ++f) {
    if (!in[f].arcs.empty()) arcs.union_range_from(in[f].arcs, arc_lo, arc_hi);
    if (!in[f].wakes.empty()) wakes.union_range_from(in[f].wakes, lo, hi);
  }

  std::size_t owner_word = kDrained;
  std::uint64_t owner_mask[kMaxWorkers + 1];
  const auto source_of = [&](std::size_t ri) -> std::uint32_t {
    const std::size_t w = ri >> 6;
    if (w != owner_word) {
      owner_word = w;
      for (std::uint32_t f = 0; f < nsrc; ++f) {
        owner_mask[f] = in[f].arcs.l0_word(w);
      }
    }
    const std::uint64_t bit = 1ULL << (ri & 63);
    for (std::uint32_t f = 0; f < nsrc; ++f) {
      if (owner_mask[f] & bit) return f;
    }
    CPT_ASSERT(false && "delivered arc missing from every flight");
    return 0;
  };

  Exec& ex = *execs_[s];
  std::vector<Inbound>& gather = inbox_[s];
  std::size_t ri = arcs.empty() ? kDrained : arcs.front();
  std::size_t wake = wakes.empty() ? kDrained : wakes.front();
  while (ri != kDrained || wake != kDrained) {
    const NodeId mv = ri == kDrained
                          ? kNoNode
                          : net_->arc_owner(static_cast<std::uint32_t>(ri));
    const NodeId wv = wake == kDrained ? kNoNode : static_cast<NodeId>(wake);
    const NodeId v = mv <= wv ? mv : wv;
    std::span<const Inbound> box{};
    if (mv == v) {
      // Identical inbox construction to run_round_single: single-message
      // inboxes are a span into the owning flight's buffer, multi-message
      // inboxes gather into inbox_[s]. Ports are filled in here.
      const std::uint32_t base = net_->arc_base(v);
      const std::size_t end = base + net_->port_count(v);
      Inbound& first = in[source_of(ri)].msgs[slot[ri]];
      first.port = static_cast<std::uint32_t>(ri) - base;
      std::size_t cnt = 1;
      arcs.erase(ri);
      ri = arcs.empty() ? kDrained : arcs.front();
      while (ri < end) {
        if (cnt == 1) {
          gather.clear();
          gather.push_back(first);
        }
        gather.push_back({static_cast<std::uint32_t>(ri) - base,
                          in[source_of(ri)].msgs[slot[ri]].msg});
        ++cnt;
        arcs.erase(ri);
        ri = arcs.empty() ? kDrained : arcs.front();
      }
      box = cnt == 1 ? std::span<const Inbound>{&first, 1}
                     : std::span<const Inbound>{gather};
    }
    if (wv == v) {
      wakes.erase(wake);
      wake = wakes.empty() ? kDrained : wakes.front();
    }
    program.on_wake(ex, v, box);
  }
}

// Recomputes shard_lo_ from the observed per-shard load. Epoch rule:
// fold the load sent since the last epoch into a halving EWMA, model each
// old shard's load as uniform over its arc range (piecewise-uniform load
// density over arc space), and place the k-th new boundary at the arc
// position where the cumulative modeled load crosses k/K of the total --
// then snap to the first node whose arc base reaches that position.
// Everything is integer arithmetic on the harvested counters and the round
// number drives *when* this runs, so boundaries are a deterministic
// function of the schedule: two runs of the same instance at the same
// worker count always agree. (And per the delivery invariant, runs at
// different worker counts agree on results regardless of boundaries.)
void Simulator::rebalance_now() {
  const unsigned K = workers_;
  const NodeId n = net_->num_nodes();
  const std::uint64_t total_arcs = net_->num_arcs();
  std::uint64_t weight[kMaxWorkers + 1];
  std::uint64_t cum[kMaxWorkers + 1];
  std::uint64_t arc_bound[kMaxWorkers + 1];
  // Epoch loads and boundaries are schedule-invariant (see above), so the
  // rebalance instant is part of the deterministic trace, not rt/ metrics.
  // Captured before the fold below zeroes epoch_load_.
  const bool tracing = util::kTraceCompiled && trace_ != nullptr;
  std::string loads_csv;
  std::string lo_before;
  if (tracing) {
    for (unsigned s = 1; s <= K; ++s) {
      if (s > 1) loads_csv += ',';
      loads_csv += std::to_string(epoch_load_[s]);
    }
    for (unsigned s = 0; s <= K; ++s) {
      if (s > 0) lo_before += ',';
      lo_before += std::to_string(shard_lo_[s]);
    }
  }
  cum[0] = 0;
  for (unsigned s = 1; s <= K; ++s) {
    shard_ewma_[s] = shard_ewma_[s] / 2 + epoch_load_[s];
    epoch_load_[s] = 0;
    // +1 keeps every segment's density positive so the interpolation below
    // never divides by zero and boundary positions stay monotone.
    weight[s] = shard_ewma_[s] + 1;
    cum[s] = cum[s - 1] + weight[s];
  }
  const std::uint64_t total = cum[K];
  for (unsigned s = 0; s <= K; ++s) {
    arc_bound[s] =
        shard_lo_[s] >= n ? total_arcs : net_->arc_base(shard_lo_[s]);
  }
  NodeId prev = 0;
  for (unsigned k = 1; k < K; ++k) {
    const std::uint64_t target = total * k / K;
    unsigned s = 1;
    while (s < K && cum[s] <= target) ++s;  // cum[s-1] <= target < cum[s]
    const std::uint64_t seg_lo = arc_bound[s - 1];
    const std::uint64_t seg_hi = arc_bound[s];
    const std::uint64_t pos =
        seg_lo + static_cast<std::uint64_t>(
                     static_cast<unsigned __int128>(target - cum[s - 1]) *
                     (seg_hi - seg_lo) / weight[s]);
    // First node at or past `pos` in arc space. Starting at the previous
    // boundary keeps shard_lo_ monotone even on degenerate weights.
    NodeId a = prev;
    NodeId b = n;
    while (a < b) {
      const NodeId mid = a + (b - a) / 2;
      if (net_->arc_base(mid) < pos) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    shard_lo_[k] = a;
    prev = a;
  }
  // shard_lo_[0] == 0 and shard_lo_[K] == n are never rewritten.
  if (tracing) {
    std::string lo_after;
    for (unsigned s = 0; s <= K; ++s) {
      if (s > 0) lo_after += ',';
      lo_after += std::to_string(shard_lo_[s]);
    }
    util::TraceArgs args;
    args.add("round", round_)
        .add("shards", K)
        .add("loads", loads_csv)
        .add("lo_before", lo_before)
        .add("lo_after", lo_after);
    trace_->instant("sim/rebalance", std::move(args));
  }
}

PassResult Simulator::run(Program& program, std::uint64_t max_rounds) {
  // Drop anything left in flight: the final round's delivered flights of a
  // quiesced previous run (cleared lazily, see below) or everything a
  // max_rounds-abandoned run left behind. O(leftover).
  for (unsigned gen = 0; gen < 2; ++gen) {
    for (Flight& f : flights_[gen]) clear_flight(f);
  }
  // The union drain leaves its pooled bitsets empty on every normal exit;
  // this is a defensive O(leftover) sweep against future abandon paths.
  for (IndexedBitset& b : udeliv_arcs_) b.clear();
  for (IndexedBitset& b : udeliv_wakes_) b.clear();
  round_ = 0;
  cur_ = 0;

  PassResult result;
  const auto aim_execs = [this] {
    for (std::uint32_t s = 0; s <= workers_; ++s) {
      execs_[s]->out_ = &flights_[cur_ ^ 1][s];
      execs_[s]->slot_ = slot_[cur_ ^ 1].data();
    }
  };
  aim_execs();
  // A run abandoned at max_rounds leaves stale per-context counters behind;
  // zero them alongside the flights.
  for (const std::unique_ptr<Exec>& e : execs_) {
    e->sent_msgs_ = 0;
    e->sent_wakes_ = 0;
  }
  program.begin(*execs_[0]);
  // In-flight totals of the generation about to be delivered, maintained
  // incrementally by the contexts and harvested once per round -- the old
  // per-round flight scans are gone.
  std::uint64_t next_msgs = 0;
  std::uint64_t next_wakes = 0;
  harvest_counters(next_msgs, next_wakes);
  while (next_msgs + next_wakes != 0) {
    if (round_ >= max_rounds) {
      result.quiesced = false;
      break;
    }
    // The lifetime budget throws instead of returning a partial pass:
    // callers stacking many passes (stage1 phases, stage2 walks) would
    // otherwise have to thread quiesced checks through every layer.
    if (budget_ != 0 && total_rounds_ >= budget_) {
      throw RoundBudgetExceeded(budget_, total_rounds_);
    }
    ++total_rounds_;
    ++round_;
    // Rebalance between rounds at fixed epochs: pure function of the round
    // number and the harvested counters, never wall clock. Moving the
    // boundaries before delivery is safe -- delivery scans every flight
    // over the (new) shard ranges, wherever the messages parked.
    if (rebalance_ && workers_ > 1 && round_ % rebalance_interval_ == 0) {
      rebalance_now();
    }
    cur_ ^= 1;
    aim_execs();
    result.messages += next_msgs;
    const std::uint64_t work = next_msgs + next_wakes;
    next_msgs = 0;
    next_wakes = 0;

    // Adaptive delivery cutover (union_delivery only; both strategies
    // deliver bit-identically, so this moves wall clock alone): the word
    // union pays off on dense rounds, where whole 64-arc words OR at a
    // time and the drain's ~1 probe per message amortizes the pooled
    // bitset's build-and-tear-down. Sparse rounds drain cheaper through
    // the compact-live-source cursor merge, which touches only the few
    // flights that sent. The density test is a pure function of the
    // round's message counters, so the choice is deterministic.
    const auto use_union = [&] {
      return union_delivery_ && work * 64 >= net_->num_arcs();
    };

    // Delivery-path tallies are schedule-dependent (they vary with the
    // worker count and the union/merge flag), so they flush to rt/
    // metrics at the end of the pass rather than into the trace stream.
    if (util::kTraceCompiled && trace_ != nullptr) {
      if (workers_ == 1) {
        ++trace_serial_rounds_;
      } else if (use_union()) {
        ++trace_union_rounds_;
        trace_union_work_ += work;
      } else {
        ++trace_merge_rounds_;
        trace_merge_work_ += work;
      }
    }

    // The out-generation flights still hold the round delivered two rounds
    // ago (delivery is a read-only walk; clearing is deferred to here so
    // the in-generation stays intact while every shard reads it). Nobody
    // reads the out generation during this round, so each worker clears
    // its own flight before processing; the driver flight falls to the
    // main thread either way.
    if (workers_ == 1) {
      // Exactly one of the two flights carries this round (see
      // run_round_single); the drain clears it in place.
      Flight& f0 = flights_[cur_][0];
      Flight& f1 = flights_[cur_][1];
      const bool f0_live = !f0.arcs.empty() || !f0.wakes.empty();
      CPT_ASSERT(!f0_live || (f1.arcs.empty() && f1.wakes.empty()));
      run_round_single(program, f0_live ? f0 : f1);
    } else if (pool_ != nullptr && work >= parallel_grain_ * workers_) {
      clear_flight(flights_[cur_ ^ 1][0]);
      Program* prog = &program;
      if (util::kTraceCompiled && trace_ != nullptr) {
        // Traced pooled dispatch: sample each worker's wake latency
        // (dispatch to first instruction) into an rt/ histogram. The
        // extra timestamping lives only on this branch so untraced runs
        // keep the exact lambdas below.
        ++trace_pooled_rounds_;
        const bool uni = use_union();
        const std::uint64_t t0 = util::trace_now_ns();
        std::uint64_t wake_at[kMaxWorkers] = {};
        pool_->run([this, prog, uni, &wake_at](unsigned w) {
          wake_at[w] = util::trace_now_ns();
          const std::uint32_t s = w + 1;
          clear_flight(flights_[cur_ ^ 1][s]);
          if (uni) {
            process_shard_union(*prog, s);
          } else {
            process_shard(*prog, s);
          }
        });
        if (util::MetricsRegistry* m = trace_->metrics()) {
          for (unsigned w = 0; w < workers_; ++w) {
            m->record("rt/sim/pool_wake_ns", wake_at[w] - t0);
          }
        }
      } else if (use_union()) {
        pool_->run([this, prog](unsigned w) {
          const std::uint32_t s = w + 1;
          clear_flight(flights_[cur_ ^ 1][s]);
          process_shard_union(*prog, s);
        });
      } else {
        pool_->run([this, prog](unsigned w) {
          const std::uint32_t s = w + 1;
          clear_flight(flights_[cur_ ^ 1][s]);
          process_shard(*prog, s);
        });
      }
    } else {
      for (Flight& f : flights_[cur_ ^ 1]) clear_flight(f);
      if (use_union()) {
        for (std::uint32_t s = 1; s <= workers_; ++s) {
          process_shard_union(program, s);
        }
      } else {
        for (std::uint32_t s = 1; s <= workers_; ++s) process_shard(program, s);
      }
    }
    harvest_counters(next_msgs, next_wakes);
  }
  result.rounds = round_;
  if (util::kTraceCompiled && trace_ != nullptr) {
    if (util::MetricsRegistry* m = trace_->metrics()) {
      if (trace_serial_rounds_ != 0) {
        m->add_counter("rt/sim/serial_rounds", trace_serial_rounds_);
      }
      if (trace_union_rounds_ != 0) {
        m->add_counter("rt/sim/union_rounds", trace_union_rounds_);
        m->add_counter("rt/sim/union_delivered_work", trace_union_work_);
      }
      if (trace_merge_rounds_ != 0) {
        m->add_counter("rt/sim/merge_rounds", trace_merge_rounds_);
        m->add_counter("rt/sim/merge_delivered_work", trace_merge_work_);
      }
      if (trace_pooled_rounds_ != 0) {
        m->add_counter("rt/sim/pooled_rounds", trace_pooled_rounds_);
      }
    }
    trace_serial_rounds_ = 0;
    trace_union_rounds_ = 0;
    trace_union_work_ = 0;
    trace_merge_rounds_ = 0;
    trace_merge_work_ = 0;
    trace_pooled_rounds_ = 0;
  }
  return result;
}

}  // namespace cpt::congest
