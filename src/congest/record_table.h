// Flat per-node record tables backed by one contiguous slot arena.
//
// A RecordTable replaces the `std::vector<std::vector<Record>>` per-node
// tables the Stage I drivers used to pool: every record of every row lives
// in one shared `pool_`, rows are slot chains (head/tail indices plus a
// per-slot `next_` link), and reset() re-arms the whole table by bumping
// the allocation watermark back to zero and clearing only the rows touched
// since the previous reset. The pooling contract:
//
//   * reset(n) is O(rows touched since the last reset), never O(n) once
//     the table has been sized, and never releases pool capacity -- the
//     steady state of a driver that resets one table across thousands of
//     passes is allocation-free.
//   * Rows appended without interleaving occupy consecutive pool slots
//     (CSR-like layout), so iteration over a row written in one go is a
//     sequential scan. Interleaved appends (records arriving round by
//     round) still cost O(1) per push; their rows just hop slots.
//   * clear_row / row reassignment orphans the old slots until the next
//     reset (bounded by total pushes) -- by design, since reclamation
//     would cost the watermark reset its O(1).
//   * Every row carries a cursor slot (kNilSlot when unset) for streaming
//     consumers (ConvergeRecords/BroadcastRecords pumps): the cursor
//     resets with the row and costs nothing when unused.
//
// Rows expose a proxy API (`table[v] = {...}`, push_back, range-for,
// indexed access) so call sites read like the vector-of-vectors they
// replace; `row[i]` walks the chain and is O(i) -- fine for the short
// rows Stage I produces, wrong for bulk random access (stream with the
// cursor instead).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/contracts.h"

namespace cpt::congest {

// Merged record sets that exceed their cap collapse to this single key,
// mirroring the paper's "more than 3*alpha distinct roots => just 'Active'".
inline constexpr std::uint64_t kOverflowKey = static_cast<std::uint64_t>(-1);

struct Record {
  std::uint64_t key = 0;
  std::int64_t value = 0;
};

class RecordTable {
 public:
  static constexpr std::uint32_t kNilSlot = static_cast<std::uint32_t>(-1);

  class ConstRow;
  class Row;

  // Re-arms the table for `n` rows; see the pooling contract above. When
  // most rows were touched, one sequential re-assign beats the scattered
  // per-row clears.
  void reset(std::size_t n) {
    if (rows_.size() != n || touched_.size() >= n / 8) {
      rows_.assign(n, RowHead{});
    } else {
      for (const std::uint32_t v : touched_) rows_[v] = RowHead{};
    }
    touched_.clear();
    used_ = 0;
  }

  std::size_t num_rows() const { return rows_.size(); }

  Row operator[](std::uint32_t v);
  ConstRow operator[](std::uint32_t v) const;

  bool empty(std::uint32_t v) const { return rows_[v].size == 0; }
  std::uint32_t size(std::uint32_t v) const { return rows_[v].size; }

  void push(std::uint32_t v, Record r) {
    CPT_EXPECTS(v < rows_.size());
    const std::uint32_t slot = used_++;
    if (slot == pool_.size()) {
      pool_.push_back(r);
      next_.push_back(kNilSlot);
    } else {
      pool_[slot] = r;
      next_[slot] = kNilSlot;
    }
    RowHead& h = rows_[v];
    if (h.head == kNilSlot) {
      h.head = h.tail = slot;
      touched_.push_back(v);
    } else {
      next_[h.tail] = slot;
      h.tail = slot;
    }
    ++h.size;
  }

  void clear_row(std::uint32_t v) { rows_[v] = RowHead{}; }

  // Rows that may hold records (deduplicated only by reset; may include
  // since-cleared rows). Lets drivers visit non-empty rows without an O(n)
  // sweep.
  const std::vector<std::uint32_t>& touched_rows() const { return touched_; }

  // ---- Slot-level access for streaming consumers --------------------------
  std::uint32_t head_slot(std::uint32_t v) const { return rows_[v].head; }
  std::uint32_t tail_slot(std::uint32_t v) const { return rows_[v].tail; }
  std::uint32_t next_slot(std::uint32_t slot) const { return next_[slot]; }
  const Record& at_slot(std::uint32_t slot) const { return pool_[slot]; }

  std::uint32_t cursor(std::uint32_t v) const { return rows_[v].cursor; }
  void set_cursor(std::uint32_t v, std::uint32_t slot) {
    rows_[v].cursor = slot;
  }

  // ---- Row iteration ------------------------------------------------------
  template <bool kConst>
  class RowIterator {
    using TablePtr = std::conditional_t<kConst, const RecordTable*, RecordTable*>;

   public:
    using value_type = Record;
    using reference = std::conditional_t<kConst, const Record&, Record&>;
    using pointer = std::conditional_t<kConst, const Record*, Record*>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    RowIterator() = default;
    RowIterator(TablePtr t, std::uint32_t slot) : t_(t), slot_(slot) {}

    reference operator*() const { return t_->pool_[slot_]; }
    pointer operator->() const { return &t_->pool_[slot_]; }
    RowIterator& operator++() {
      slot_ = t_->next_[slot_];
      return *this;
    }
    RowIterator operator++(int) {
      RowIterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const RowIterator& o) const { return slot_ == o.slot_; }
    bool operator!=(const RowIterator& o) const { return slot_ != o.slot_; }

   private:
    TablePtr t_ = nullptr;
    std::uint32_t slot_ = kNilSlot;
  };

  using const_iterator = RowIterator<true>;
  using iterator = RowIterator<false>;

  // Read-only view of one row. Cheap to copy; indexing walks the chain.
  class ConstRow {
   public:
    ConstRow(const RecordTable* t, std::uint32_t v) : t_(t), v_(v) {}

    bool empty() const { return t_->empty(v_); }
    std::uint32_t size() const { return t_->size(v_); }
    const_iterator begin() const { return {t_, t_->rows_[v_].head}; }
    const_iterator end() const { return {t_, kNilSlot}; }
    const Record& operator[](std::uint32_t i) const {  // O(i) chain walk
      std::uint32_t slot = t_->rows_[v_].head;
      for (; i > 0; --i) slot = t_->next_[slot];
      return t_->pool_[slot];
    }

    const RecordTable* table() const { return t_; }
    std::uint32_t row_id() const { return v_; }

   private:
    const RecordTable* t_;
    std::uint32_t v_;
  };

  // Mutable row proxy. Assignment copies *contents* (from a list or from
  // another row, even one of the same table); it never rebinds the proxy.
  class Row {
   public:
    Row(RecordTable* t, std::uint32_t v) : t_(t), v_(v) {}

    operator ConstRow() const { return {t_, v_}; }

    Row& operator=(std::initializer_list<Record> recs) {
      t_->clear_row(v_);
      for (const Record& r : recs) t_->push(v_, r);
      return *this;
    }
    Row& operator=(const ConstRow& src) {
      if (src.table() == t_ && src.row_id() == v_) return *this;
      t_->clear_row(v_);
      // Slot-indexed walk: pushes into t_ may grow the shared pool, which
      // would invalidate iterators into the same table but not slot ids.
      const RecordTable* st = src.table();
      for (std::uint32_t slot = st->head_slot(src.row_id()); slot != kNilSlot;
           slot = st->next_slot(slot)) {
        t_->push(v_, st->at_slot(slot));
      }
      return *this;
    }
    Row& operator=(const Row& src) { return *this = static_cast<ConstRow>(src); }

    void push_back(Record r) { t_->push(v_, r); }
    void clear() { t_->clear_row(v_); }
    bool empty() const { return t_->empty(v_); }
    std::uint32_t size() const { return t_->size(v_); }

    iterator begin() { return {t_, t_->rows_[v_].head}; }
    iterator end() { return {t_, kNilSlot}; }
    const_iterator begin() const { return {t_, t_->rows_[v_].head}; }
    const_iterator end() const { return {t_, kNilSlot}; }

    const Record& operator[](std::uint32_t i) const {
      return static_cast<ConstRow>(*this)[i];
    }

   private:
    RecordTable* t_;
    std::uint32_t v_;
  };

 private:
  struct RowHead {
    std::uint32_t head = kNilSlot;
    std::uint32_t tail = kNilSlot;
    std::uint32_t size = 0;
    std::uint32_t cursor = kNilSlot;
  };

  std::vector<RowHead> rows_;
  std::vector<Record> pool_;           // slot payloads; logical size = used_
  std::vector<std::uint32_t> next_;    // slot chain links
  std::vector<std::uint32_t> touched_; // rows to clear on reset
  std::uint32_t used_ = 0;             // bump watermark into pool_/next_
};

inline RecordTable::Row RecordTable::operator[](std::uint32_t v) {
  CPT_EXPECTS(v < rows_.size());
  return {this, v};
}

inline RecordTable::ConstRow RecordTable::operator[](std::uint32_t v) const {
  CPT_EXPECTS(v < rows_.size());
  return {this, v};
}

}  // namespace cpt::congest
