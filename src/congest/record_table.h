// Flat per-node record tables backed by sharded slot arenas.
//
// A RecordTable replaces the `std::vector<std::vector<Record>>` per-node
// tables the Stage I drivers used to pool: every record of every row lives
// in a shared slot pool, rows are slot chains (head/tail indices plus a
// per-slot `next` link), and reset() re-arms the whole table by bumping
// the allocation watermarks back to zero and clearing only the rows
// touched since the previous reset.
//
// Sharding (parallel rounds). A slot id encodes (shard, index): the high
// kShardBits name one of kMaxShards independent arenas, each with its own
// slot chunks, touched list and watermark. push(v, r, shard) bumps only
// that shard's watermark, so the simulator's workers (shard s = its
// Exec::shard()) append rows concurrently without locks or atomics. The
// safety argument relies on the per-node-write-clean Program contract
// (see DESIGN.md): rows of a node owned by worker s receive pushes only
// from context s (rounds) and context 0 (driver code between passes), so
//   * a shard's arena grows only from its single owning context, and
//   * cross-shard accesses touch only *frozen* slots: slots allocated in
//     earlier rounds (published by the round barrier), never the open end
//     of a foreign arena.
// Chain links may point across shards: a row started by the driver and
// extended by its worker, or -- under the simulator's observed-load shard
// rebalancing -- a row whose node migrated to a new worker mid-pass, whose
// chain keeps growing from the new context while the old arena keeps
// growing from its own. That is why slot storage is a table of doubling
// chunks with stable addresses instead of one std::vector per shard: a
// vector's realloc would move frozen slots out from under a concurrent
// cross-shard chain walk (or a tail-`next` write), while chunked growth
// only ever writes a previously-null chunk pointer no reader of frozen
// slots dereferences.
//
// The pooling contract (unchanged from the single-arena version):
//
//   * reset(n) is O(rows touched since the last reset), never O(n) once
//     the table has been sized, and never releases pool capacity -- the
//     steady state of a driver that resets one table across thousands of
//     passes is allocation-free.
//   * Rows appended without interleaving occupy consecutive slots of one
//     shard (CSR-like layout), so iteration over a row written in one go
//     is a sequential scan. Interleaved appends (records arriving round
//     by round) still cost O(1) per push; their rows just hop slots.
//   * clear_row / row reassignment orphans the old slots until the next
//     reset (bounded by total pushes) -- by design, since reclamation
//     would cost the watermark reset its O(1).
//   * Every row carries a cursor slot (kNilSlot when unset) for streaming
//     consumers (ConvergeRecords/BroadcastRecords pumps): the cursor
//     resets with the row and costs nothing when unused.
//
// Rows expose a proxy API (`table[v] = {...}`, push_back, range-for,
// indexed access) so call sites read like the vector-of-vectors they
// replace; `row[i]` walks the chain and is O(i) -- fine for the short
// rows Stage I produces, wrong for bulk random access (stream with the
// cursor instead).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "util/contracts.h"

namespace cpt::congest {

// Merged record sets that exceed their cap collapse to this single key,
// mirroring the paper's "more than 3*alpha distinct roots => just 'Active'".
inline constexpr std::uint64_t kOverflowKey = static_cast<std::uint64_t>(-1);

struct Record {
  std::uint64_t key = 0;
  std::int64_t value = 0;
};

class RecordTable {
 public:
  static constexpr std::uint32_t kNilSlot = static_cast<std::uint32_t>(-1);
  static constexpr unsigned kShardBits = 6;
  static constexpr unsigned kIdxBits = 32 - kShardBits;
  static constexpr std::uint32_t kIdxMask = (1u << kIdxBits) - 1;
  // Shard kMaxShards - 1 is never allocated from: kNilSlot decodes into it.
  static constexpr std::uint32_t kMaxShards = 1u << kShardBits;

  // Re-arms the table for `n` rows; see the pooling contract above. When
  // most rows were touched, one sequential re-assign beats the scattered
  // per-row clears.
  void reset(std::size_t n) {
    std::size_t touched_total = 0;
    for (const Shard& sh : shards_) touched_total += sh.touched.size();
    if (rows_.size() != n || touched_total >= n / 8) {
      rows_.assign(n, RowHead{});
    } else {
      for (const Shard& sh : shards_) {
        for (const std::uint32_t v : sh.touched) rows_[v] = RowHead{};
      }
    }
    for (Shard& sh : shards_) {
      sh.touched.clear();
      sh.used = 0;  // chunks stay allocated: the steady state is alloc-free
    }
  }

  std::size_t num_rows() const { return rows_.size(); }

  class ConstRow;
  class Row;

  Row operator[](std::uint32_t v);
  ConstRow operator[](std::uint32_t v) const;

  bool empty(std::uint32_t v) const { return rows_[v].size == 0; }
  std::uint32_t size(std::uint32_t v) const { return rows_[v].size; }

  // The arena driver code (and the driver-side Row proxy API) allocates
  // from: context 0 of the simulator, frozen during parallel rounds.
  static constexpr std::uint32_t kDriverShard = 0;

  // Appends r to row v, allocating from `shard`'s arena. The shard is
  // deliberately NOT defaulted: Program::on_wake code must pass
  // ex.shard(), and a silent shard-0 default would turn a forgotten
  // argument into a lock-free data race under parallel rounds instead of
  // a compile error. Driver code passes kDriverShard.
  void push(std::uint32_t v, Record r, std::uint32_t shard) {
    CPT_EXPECTS(v < rows_.size());
    CPT_EXPECTS(shard < kMaxShards - 1);
    Shard& sh = shards_[shard];
    const std::uint32_t idx = sh.used++;
    // Unconditional (survives CPT_DISABLE_CONTRACTS): overflowing the
    // 2^26-slot shard index would silently corrupt slot ids.
    if (idx >= kIdxMask) {
      contract_fail("Invariant", "record shard full", __FILE__, __LINE__);
    }
    if (idx == sh.cap) grow(sh);
    Slot& st = slot_at(sh, idx);
    st.rec = r;
    st.next = kNilSlot;
    const std::uint32_t slot = (shard << kIdxBits) | idx;
    RowHead& h = rows_[v];
    if (h.head == kNilSlot) {
      h.head = h.tail = slot;
      sh.touched.push_back(v);
    } else {
      // Possibly a cross-shard write into a frozen slot of another arena
      // (stable chunk storage; see the sharding notes above).
      slot_at(shards_[h.tail >> kIdxBits], h.tail & kIdxMask).next = slot;
      h.tail = slot;
    }
    ++h.size;
  }

  void clear_row(std::uint32_t v) { rows_[v] = RowHead{}; }

  // ---- Touched-row iteration ---------------------------------------------
  // Rows that may hold records (deduplicated only by reset; may include
  // since-cleared rows and, when a row was cleared and refilled from a
  // different context, duplicates across shards). Lets drivers visit
  // non-empty rows without an O(n) sweep. Iteration order is shard 0's
  // touch order, then shard 1's, ... -- deterministic for a fixed worker
  // count; consumers must be order-independent (they are: row copies and
  // idempotent mask updates).
  class TouchedIterator {
   public:
    TouchedIterator(const RecordTable* t, std::uint32_t shard, std::size_t pos)
        : t_(t), shard_(shard), pos_(pos) {
      settle();
    }

    std::uint32_t operator*() const { return t_->shards_[shard_].touched[pos_]; }
    TouchedIterator& operator++() {
      ++pos_;
      settle();
      return *this;
    }
    bool operator==(const TouchedIterator& o) const {
      return shard_ == o.shard_ && pos_ == o.pos_;
    }
    bool operator!=(const TouchedIterator& o) const { return !(*this == o); }

   private:
    void settle() {
      while (shard_ < kMaxShards && pos_ >= t_->shards_[shard_].touched.size()) {
        ++shard_;
        pos_ = 0;
      }
      if (shard_ >= kMaxShards) {
        shard_ = kMaxShards;
        pos_ = 0;
      }
    }
    const RecordTable* t_;
    std::uint32_t shard_;
    std::size_t pos_;
  };

  class TouchedView {
   public:
    explicit TouchedView(const RecordTable* t) : t_(t) {}
    TouchedIterator begin() const { return {t_, 0, 0}; }
    TouchedIterator end() const { return {t_, kMaxShards, 0}; }
    bool empty() const { return begin() == end(); }

   private:
    const RecordTable* t_;
  };

  TouchedView touched_rows() const { return TouchedView{this}; }

  // ---- Slot-level access for streaming consumers --------------------------
  std::uint32_t head_slot(std::uint32_t v) const { return rows_[v].head; }
  std::uint32_t tail_slot(std::uint32_t v) const { return rows_[v].tail; }
  std::uint32_t next_slot(std::uint32_t slot) const {
    return slot_at(shards_[slot >> kIdxBits], slot & kIdxMask).next;
  }
  const Record& at_slot(std::uint32_t slot) const {
    return slot_at(shards_[slot >> kIdxBits], slot & kIdxMask).rec;
  }

  std::uint32_t cursor(std::uint32_t v) const { return rows_[v].cursor; }
  void set_cursor(std::uint32_t v, std::uint32_t slot) {
    rows_[v].cursor = slot;
  }

  // ---- Row iteration ------------------------------------------------------
  template <bool kConst>
  class RowIterator {
    using TablePtr = std::conditional_t<kConst, const RecordTable*, RecordTable*>;

   public:
    using value_type = Record;
    using reference = std::conditional_t<kConst, const Record&, Record&>;
    using pointer = std::conditional_t<kConst, const Record*, Record*>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    RowIterator() = default;
    RowIterator(TablePtr t, std::uint32_t slot) : t_(t), slot_(slot) {}

    reference operator*() const {
      return slot_at(t_->shards_[slot_ >> kIdxBits], slot_ & kIdxMask).rec;
    }
    pointer operator->() const { return &**this; }
    RowIterator& operator++() {
      slot_ = t_->next_slot(slot_);
      return *this;
    }
    RowIterator operator++(int) {
      RowIterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const RowIterator& o) const { return slot_ == o.slot_; }
    bool operator!=(const RowIterator& o) const { return slot_ != o.slot_; }

   private:
    TablePtr t_ = nullptr;
    std::uint32_t slot_ = kNilSlot;
  };

  using const_iterator = RowIterator<true>;
  using iterator = RowIterator<false>;

  // Read-only view of one row. Cheap to copy; indexing walks the chain.
  class ConstRow {
   public:
    ConstRow(const RecordTable* t, std::uint32_t v) : t_(t), v_(v) {}

    bool empty() const { return t_->empty(v_); }
    std::uint32_t size() const { return t_->size(v_); }
    const_iterator begin() const { return {t_, t_->rows_[v_].head}; }
    const_iterator end() const { return {t_, kNilSlot}; }
    const Record& operator[](std::uint32_t i) const {  // O(i) chain walk
      std::uint32_t slot = t_->rows_[v_].head;
      for (; i > 0; --i) slot = t_->next_slot(slot);
      return t_->at_slot(slot);
    }

    const RecordTable* table() const { return t_; }
    std::uint32_t row_id() const { return v_; }

   private:
    const RecordTable* t_;
    std::uint32_t v_;
  };

  // Mutable row proxy. Assignment copies *contents* (from a list or from
  // another row, even one of the same table); it never rebinds the proxy.
  // Row writes allocate from shard 0: the proxy API is driver-side (worker
  // code appends through push(v, r, shard)).
  class Row {
   public:
    Row(RecordTable* t, std::uint32_t v) : t_(t), v_(v) {}

    operator ConstRow() const { return {t_, v_}; }

    Row& operator=(std::initializer_list<Record> recs) {
      t_->clear_row(v_);
      for (const Record& r : recs) t_->push(v_, r, kDriverShard);
      return *this;
    }
    Row& operator=(const ConstRow& src) {
      if (src.table() == t_ && src.row_id() == v_) return *this;
      t_->clear_row(v_);
      // Slot-indexed walk: pushes into t_ may grow the shared pool, which
      // would invalidate iterators into the same table but not slot ids.
      const RecordTable* st = src.table();
      for (std::uint32_t slot = st->head_slot(src.row_id()); slot != kNilSlot;
           slot = st->next_slot(slot)) {
        t_->push(v_, st->at_slot(slot), kDriverShard);
      }
      return *this;
    }
    Row& operator=(const Row& src) { return *this = static_cast<ConstRow>(src); }

    void push_back(Record r) { t_->push(v_, r, kDriverShard); }
    void clear() { t_->clear_row(v_); }
    bool empty() const { return t_->empty(v_); }
    std::uint32_t size() const { return t_->size(v_); }

    iterator begin() { return {t_, t_->rows_[v_].head}; }
    iterator end() { return {t_, kNilSlot}; }
    const_iterator begin() const { return {t_, t_->rows_[v_].head}; }
    const_iterator end() const { return {t_, kNilSlot}; }

    const Record& operator[](std::uint32_t i) const {
      return static_cast<ConstRow>(*this)[i];
    }

   private:
    RecordTable* t_;
    std::uint32_t v_;
  };

 private:
  struct RowHead {
    std::uint32_t head = kNilSlot;
    std::uint32_t tail = kNilSlot;
    std::uint32_t size = 0;
    std::uint32_t cursor = kNilSlot;
  };

  // Slot payload + chain link, co-located so a chain hop touches one line.
  struct Slot {
    Record rec;
    std::uint32_t next;
  };

  // Chunked arena geometry: chunk c holds 2^(kChunk0Bits + c) slots, so
  // the chunk table covering all 2^kIdxBits indices is 17 pointers and a
  // slot index decodes with one bit_width. Existing slots NEVER move --
  // growth fills in the next null chunk pointer -- which is what makes
  // cross-shard frozen-slot access safe while the owner appends.
  static constexpr unsigned kChunk0Bits = 10;  // first chunk: 1024 slots
  static constexpr unsigned kNumChunks = kIdxBits - kChunk0Bits + 1;

  // One arena: stable-address slot chunks (logical size = used), plus the
  // rows first touched from this shard since the last reset.
  struct Shard {
    std::array<std::unique_ptr<Slot[]>, kNumChunks> chunks;
    std::vector<std::uint32_t> touched;
    std::uint32_t used = 0;
    std::uint32_t cap = 0;  // slots allocated across chunks
  };

  // idx -> (chunk, offset): bias by the first chunk's size so the chunk
  // index is bit_width(biased) - (kChunk0Bits + 1) and the offset is the
  // remainder below the chunk's base.
  static Slot& slot_at(Shard& sh, std::uint32_t idx) {
    const std::uint32_t biased = idx + (1u << kChunk0Bits);
    const unsigned chunk =
        static_cast<unsigned>(std::bit_width(biased)) - (kChunk0Bits + 1);
    return sh.chunks[chunk][biased - (1u << (chunk + kChunk0Bits))];
  }
  static const Slot& slot_at(const Shard& sh, std::uint32_t idx) {
    const std::uint32_t biased = idx + (1u << kChunk0Bits);
    const unsigned chunk =
        static_cast<unsigned>(std::bit_width(biased)) - (kChunk0Bits + 1);
    return sh.chunks[chunk][biased - (1u << (chunk + kChunk0Bits))];
  }

  static void grow(Shard& sh) {
    const std::uint32_t biased = sh.cap + (1u << kChunk0Bits);
    const unsigned chunk =
        static_cast<unsigned>(std::bit_width(biased)) - (kChunk0Bits + 1);
    CPT_ASSERT(sh.chunks[chunk] == nullptr);
    const std::uint32_t size = 1u << (kChunk0Bits + chunk);
    sh.chunks[chunk] = std::make_unique<Slot[]>(size);
    sh.cap += size;
  }

  std::vector<RowHead> rows_;
  std::array<Shard, kMaxShards> shards_;
};

inline RecordTable::Row RecordTable::operator[](std::uint32_t v) {
  CPT_EXPECTS(v < rows_.size());
  return {this, v};
}

inline RecordTable::ConstRow RecordTable::operator[](std::uint32_t v) const {
  CPT_EXPECTS(v < rows_.size());
  return {this, v};
}

}  // namespace cpt::congest
