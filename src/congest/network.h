// The communication topology for the CONGEST simulator: an undirected graph
// with per-node port numbering. Nodes address neighbors only through ports;
// ids travel in message payloads, as in the standard model.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cpt::congest {

class Network {
 public:
  explicit Network(const Graph& g);

  const Graph& graph() const { return *g_; }
  NodeId num_nodes() const { return g_->num_nodes(); }

  std::uint32_t port_count(NodeId v) const { return g_->degree(v); }

  // The arc (neighbor, edge) behind port `port` of node v.
  Arc arc(NodeId v, std::uint32_t port) const { return g_->neighbors(v)[port]; }

  // The port of node v on edge e. Precondition: v is an endpoint of e.
  std::uint32_t port_of_edge(NodeId v, EdgeId e) const {
    const Endpoints ep = g_->endpoints(e);
    CPT_EXPECTS(ep.u == v || ep.v == v);
    return port_[2ULL * e + (ep.u == v ? 0 : 1)];
  }

 private:
  const Graph* g_;
  std::vector<std::uint32_t> port_;  // indexed by half-edge (2e + side)
};

}  // namespace cpt::congest
