// The communication topology for the CONGEST simulator: an undirected graph
// with per-node port numbering. Nodes address neighbors only through ports;
// ids travel in message payloads, as in the standard model.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cpt::congest {

class Network {
 public:
  explicit Network(const Graph& g);

  const Graph& graph() const { return *g_; }
  NodeId num_nodes() const { return g_->num_nodes(); }

  std::uint32_t port_count(NodeId v) const { return g_->degree(v); }

  // The arc (neighbor, edge, peer_port) behind port `port` of node v.
  Arc arc(NodeId v, std::uint32_t port) const { return g_->neighbors(v)[port]; }

  // The receiving half-edge of (v, port), as a flat lookup: the only part
  // of the Arc the simulator's send path needs, without materializing the
  // adjacency span. Same values as arc(v, port).peer_arc.
  std::uint32_t peer_arc(NodeId v, std::uint32_t port) const {
    const std::uint32_t base = g_->arc_offset(v);
    // Checked as a degree comparison, not `base + port < end`: sentinel
    // ports like 0xffffffff must not wrap past the bound.
    CPT_EXPECTS(port < g_->arc_offset(v + 1) - base);
    return peer_arc_[base + port];
  }

  // The port of node v on edge e. Precondition: v is an endpoint of e.
  std::uint32_t port_of_edge(NodeId v, EdgeId e) const {
    const Endpoints ep = g_->endpoints(e);
    CPT_EXPECTS(ep.u == v || ep.v == v);
    return port_[2ULL * e + (ep.u == v ? 0 : 1)];
  }

  // Global arc (directed half-edge) indexing: arc_base(v) + p is the id of
  // v's port p, so ids order all arcs by (owner, port) — which is exactly
  // the simulator's delivery order. arc_owner inverts the mapping.
  std::uint32_t num_arcs() const { return 2 * g_->num_edges(); }
  std::uint32_t arc_base(NodeId v) const { return g_->arc_offset(v); }
  NodeId arc_owner(std::uint32_t arc_index) const {
    CPT_EXPECTS(arc_index < owner_.size());
    return owner_[arc_index];
  }

 private:
  const Graph* g_;
  std::vector<std::uint32_t> port_;      // indexed by half-edge (2e + side)
  std::vector<NodeId> owner_;            // indexed by global arc index
  std::vector<std::uint32_t> peer_arc_;  // indexed by global arc index
};

}  // namespace cpt::congest
