// Synchronous message-driven CONGEST simulator.
//
// A Program is a (flyweight) node algorithm: `begin` may inject initial
// messages / wake-ups, then each round every node that received messages or
// requested a wake-up gets `on_wake` with its inbox. Sending more than one
// message over the same directed edge in one round is a contract violation
// (CONGEST bandwidth). A pass ends when no messages are in flight and no
// wake-ups are pending; the simulator reports measured rounds and messages.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.h"
#include "congest/network.h"

namespace cpt::congest {

class Simulator;

class Program {
 public:
  virtual ~Program() = default;
  // Inject initial sends/wake-ups. Runs "before round 1".
  virtual void begin(Simulator& sim) = 0;
  // Node v runs its local computation for this round. `inbox` holds the
  // messages delivered this round (possibly empty for pure wake-ups).
  virtual void on_wake(Simulator& sim, NodeId v, std::span<const Inbound> inbox) = 0;
};

struct PassResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  bool quiesced = true;  // false iff max_rounds was hit first
};

class Simulator {
 public:
  static constexpr std::uint64_t kDefaultMaxRounds = 1'000'000'000ULL;

  explicit Simulator(const Network& net) : net_(&net) {}

  // Runs the program to quiescence (or max_rounds) and returns measured cost.
  PassResult run(Program& program, std::uint64_t max_rounds = kDefaultMaxRounds);

  // ---- Callable from Program::begin / Program::on_wake ----

  // Send msg from node `from` through its local port `port`; delivered to
  // the neighbor at the start of the next round.
  void send(NodeId from, std::uint32_t port, const Msg& msg);

  // Ask to be woken next round even without incoming messages (used by
  // nodes draining multi-round send queues).
  void wake_next_round(NodeId v) { next_wake_.push_back(v); }

  const Network& network() const { return *net_; }

  // Round number of the round currently executing (1-based); 0 in begin().
  std::uint64_t current_round() const { return round_; }

 private:
  struct Delivery {
    // (dst << 20) | dst_port: a single sortable key. Ports are bounded by
    // node degree < 2^20.
    std::uint64_t key;
    Msg msg;
  };

  const Network* net_;
  std::vector<Delivery> next_out_;
  std::vector<NodeId> next_wake_;
  // Round stamp per directed half-edge: bandwidth enforcement.
  std::vector<std::uint64_t> half_stamp_;
  std::uint64_t round_ = 0;
};

}  // namespace cpt::congest
