// Synchronous message-driven CONGEST simulator.
//
// A Program is a (flyweight) node algorithm: `begin` may inject initial
// messages / wake-ups, then each round every node that received messages or
// requested a wake-up gets `on_wake` with its inbox. Sending more than one
// message over the same directed edge in one round is a contract violation
// (CONGEST bandwidth). A pass ends when no messages are in flight and no
// wake-ups are pending; the simulator reports measured rounds and messages.
//
// Delivery engine: sort-free and allocation-free in steady state. A send
// addresses the *receiving* half-edge directly — global arc index
// arc_base(dst) + dst_port, with dst_port precomputed in Arc::peer_port —
// and marks it in an ordered bitset over all 2m arcs. Since arc indices
// order arcs by (destination, port), draining that bitset in increasing
// order visits nodes in id order with each inbox already port-sorted: no
// per-round std::sort of delivery records. The same membership bit doubles
// as the CONGEST bandwidth check (a second send over a directed edge in one
// round finds its bit already set), replacing the seed's per-half-edge round
// stamps and their O(m) per-pass reinitialization. All buffers are owned by
// the Simulator and reused across rounds and passes; clearing costs
// O(in-flight), never O(m) or O(n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.h"
#include "congest/network.h"
#include "util/indexed_bitset.h"

namespace cpt::congest {

class Simulator;

class Program {
 public:
  virtual ~Program() = default;
  // Inject initial sends/wake-ups. Runs "before round 1".
  virtual void begin(Simulator& sim) = 0;
  // Node v runs its local computation for this round. `inbox` holds the
  // messages delivered this round (possibly empty for pure wake-ups).
  virtual void on_wake(Simulator& sim, NodeId v, std::span<const Inbound> inbox) = 0;
};

struct PassResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  bool quiesced = true;  // false iff max_rounds was hit first
};

class Simulator {
 public:
  static constexpr std::uint64_t kDefaultMaxRounds = 1'000'000'000ULL;

  explicit Simulator(const Network& net) : net_(&net) {
    for (Flight& f : flight_) {
      f.arcs.reset(net.num_arcs());
      f.slot.resize(net.num_arcs());
      f.wakes.reset(net.num_nodes());
    }
  }

  // Runs the program to quiescence (or max_rounds) and returns measured cost.
  PassResult run(Program& program, std::uint64_t max_rounds = kDefaultMaxRounds);

  // ---- Callable from Program::begin / Program::on_wake ----

  // Send msg from node `from` through its local port `port`; delivered to
  // the neighbor at the start of the next round.
  void send(NodeId from, std::uint32_t port, const Msg& msg) {
    // Receiving half-edge via the network's flat peer-arc table (which
    // bounds-checks the port): two loads, no adjacency-span construction.
    const std::uint32_t ri = net_->peer_arc(from, port);
    Flight& out = flight_[cur_ ^ 1];
    [[maybe_unused]] const bool fresh = out.arcs.insert(ri);
    CPT_EXPECTS(fresh && "one message per directed edge per round (CONGEST)");
    out.slot[ri] = static_cast<std::uint32_t>(out.msgs.size());
    // The receiving port is filled in at delivery (where the receiver's
    // arc base is already at hand): a single-message inbox is then a span
    // straight into this buffer, no copy.
    out.msgs.push_back({0, msg});
  }

  // Ask to be woken next round even without incoming messages (used by
  // nodes draining multi-round send queues). Duplicate requests coalesce.
  void wake_next_round(NodeId v) {
    CPT_EXPECTS(v < net_->num_nodes());
    flight_[cur_ ^ 1].wakes.insert(v);
  }

  const Network& network() const { return *net_; }

  // Round number of the round currently executing (1-based); 0 in begin().
  std::uint64_t current_round() const { return round_; }

 private:
  // Everything in flight toward one round: per-receiving-arc membership
  // (ordered), the message payloads in send order, and the arc -> payload
  // mapping. Double-buffered: programs running round r fill the other
  // buffer for round r+1.
  struct Flight {
    IndexedBitset arcs;               // in-flight receiving half-edges
    std::vector<Inbound> msgs;        // receiver-ready payloads, send order
    std::vector<std::uint32_t> slot;  // arc index -> index into msgs
    IndexedBitset wakes;              // nodes to wake regardless of inbox
  };

  const Network* net_;
  Flight flight_[2];
  unsigned cur_ = 0;  // index of the flight being delivered this round
  std::vector<Inbound> inbox_;
  std::uint64_t round_ = 0;
};

}  // namespace cpt::congest
