// Synchronous message-driven CONGEST simulator with a deterministic
// parallel round executor.
//
// A Program is a (flyweight) node algorithm: `begin` may inject initial
// messages / wake-ups, then each round every node that received messages or
// requested a wake-up gets `on_wake` with its inbox. Sending more than one
// message over the same directed edge in one round is a contract violation
// (CONGEST bandwidth). A pass ends when no messages are in flight and no
// wake-ups are pending; the simulator reports measured rounds and messages.
//
// Execution model. Within a round, CONGEST nodes compute independently --
// the round loop is data-parallel over nodes. The simulator statically
// shards node ids into contiguous ranges of roughly equal arc count, one
// shard per worker. Every shard owns an execution context (`Exec`) with a
// private Flight (arc bitset / payloads / wakes): sends issued while
// processing shard s land in s's flight for the next round, so flights are
// single-writer (the arc -> payload-index map is shared per generation;
// writers are disjoint by receiving arc, see Flight).
//
// Delivery of a round takes one of two equivalent paths. The default
// (SimOptions::union_delivery) first ORs every live flight's arc and wake
// bitset words over the shard's range into one pooled per-shard delivery
// bitset (IndexedBitset::union_range_from -- a word loop with summary-
// level short-circuit), then drains that single bitset exactly like the
// serial fast path; payload lookup resolves which flight carries an arc
// from one cached level-0 word per flight, so a delivered message costs
// ~1 bit probe instead of ~K next_at_least compares. The fallback merges
// all flights' ordered arc bitsets on the fly -- each worker scans its own
// arc range of every source bitset (read-only `next_at_least` walks) and
// takes arcs in increasing global index order. Both walk arcs in
// increasing global index order, which is (destination, port) order, so
// the result is *bit-identical to the serial run at any thread count and
// under either path*: each node sees the same port-sorted inbox in the
// same round, so it computes the same state, sends the same messages and
// the ledgers, partitions and verdicts downstream cannot differ. Sharding
// changes only which flight a message parks in between rounds, never what
// is delivered when -- which is also why the shard boundaries themselves
// may move between rounds (SimOptions::rebalance_shards): at deterministic
// epochs the simulator folds the per-context send counters into per-shard
// load EWMAs and recomputes `shard_lo_` from them, a pure integer function
// of the round number and the message counts (never wall clock), so every
// run at a given worker count sees the same boundaries and every worker
// count sees the same results.
//
// Programs must be per-node-write-clean to run under more than one worker:
// on_wake(ex, v, inbox) may read anything but may only write v's slots of
// per-node state (and push to v's rows of RecordTables, passing
// ex.shard()). Every Program in this repository satisfies this; see
// DESIGN.md ("Parallel determinism invariants") for the full contract.
//
// Rounds whose in-flight work is below `parallel_grain * workers` are
// executed inline on the calling thread (same code path, same shard
// order, same results) so the hundreds of thousands of small rounds in a
// Stage I run never pay a fork-join latency.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "congest/message.h"
#include "congest/network.h"
#include "util/indexed_bitset.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace cpt::congest {

class Simulator;
class Exec;

class Program {
 public:
  virtual ~Program() = default;
  // Inject initial sends/wake-ups. Runs "before round 1" on the driver
  // context (ex.shard() == 0).
  virtual void begin(Exec& ex) = 0;
  // Node v runs its local computation for this round. `inbox` holds the
  // messages delivered this round (possibly empty for pure wake-ups).
  // Runs on the context owning v's shard; per-node-write-clean code only.
  virtual void on_wake(Exec& ex, NodeId v, std::span<const Inbound> inbox) = 0;
};

struct PassResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  bool quiesced = true;  // false iff max_rounds was hit first
};

// Pooled simulator state: the flight payload buffers, arc->slot maps,
// gather inboxes and (multi-worker) the WorkerPool of a destroyed
// Simulator, kept warm for the next one. The batch engine owns one per
// worker context so repeated jobs reuse hot memory -- and live threads --
// instead of re-growing allocations job by job. A SimMemory may back at
// most one live Simulator at a time (the Simulator adopts the store at
// construction and returns it at destruction); results are bit-identical
// with or without pooling because every adopted buffer is resized and
// reset for the new network before use.
class SimMemory {
 public:
  SimMemory();
  ~SimMemory();
  SimMemory(SimMemory&&) noexcept;
  SimMemory& operator=(SimMemory&&) noexcept;
  SimMemory(const SimMemory&) = delete;
  SimMemory& operator=(const SimMemory&) = delete;

 private:
  friend class Simulator;
  struct Store;
  std::unique_ptr<Store> store_;
};

struct SimOptions {
  // Worker count for round execution. 0 resolves to the CPT_TEST_THREADS
  // environment variable if set (the CI knob that runs whole test suites
  // multi-threaded), else 1. Clamped to [1, kMaxWorkers].
  unsigned num_threads = 0;
  // Optional pooled state to adopt (see SimMemory). nullptr = allocate
  // fresh. The pointee must outlive the Simulator.
  SimMemory* memory = nullptr;
  // Minimum in-flight work (messages + wake-ups) per worker before a round
  // is dispatched to the pool; smaller rounds run inline on the caller.
  std::uint64_t parallel_grain = 2048;
  // Multi-worker delivery strategy: true (default) ORs all live flights'
  // arc/wake words into one pooled per-shard bitset and drains it with the
  // single-bitset fast path (~1 probe per message) on dense rounds (>= 1
  // message per 64-arc word); sparse rounds cut over per round to the
  // compact-live-source cursor merge, whose few probes per message beat
  // building and tearing down the pooled bitsets. false forces the cursor
  // merge everywhere (differential oracle). Bit-identical results either
  // way -- the union holds the same arcs in the same order. Ignored at
  // num_threads == 1 (the serial path already drains a single bitset).
  bool union_delivery = true;
  // Recompute the node-shard boundaries from observed per-shard load every
  // rebalance_interval rounds (multi-worker only). The epoch rule is a
  // pure function of the round number and the harvested send counters, so
  // it is schedule-deterministic; and since delivery scans every flight
  // over the shard's range regardless of where a message parked, moving a
  // boundary between rounds never changes what is delivered when --
  // results stay bit-identical with rebalancing on or off.
  bool rebalance_shards = true;
  std::uint32_t rebalance_interval = 64;
  // Cumulative round budget across *all* passes run on this Simulator
  // (0 = unlimited). Unlike run()'s per-pass max_rounds -- which callers
  // use to abandon one pass and read its partial cost -- exhausting this
  // budget throws RoundBudgetExceeded out of run(), so a pathological
  // instance cannot wedge a batch worker no matter how many passes the
  // tester stacks on one simulator. The batch engine maps the throw to
  // JobResult::timed_out.
  std::uint64_t max_rounds = 0;
  // Optional trace track (not owned; must outlive the Simulator). The
  // round loop emits schedule-invariant "sim/rebalance" instants into it
  // and schedule-dependent delivery/pool statistics into the owning
  // session's MetricsRegistry under rt/ names (see util/trace.h for the
  // determinism contract). Null disables all instrumentation; the only
  // residual cost is one predictable branch per round.
  util::TraceBuffer* trace = nullptr;
};

// Thrown by Simulator::run when SimOptions::max_rounds is exhausted. A
// budget violation is deterministic (same instance, same seeds, same round
// count), so catchers must not retry -- the engine records timed_out.
class RoundBudgetExceeded : public std::runtime_error {
 public:
  RoundBudgetExceeded(std::uint64_t budget, std::uint64_t rounds)
      : std::runtime_error("simulated round budget exceeded"),
        budget_(budget),
        rounds_(rounds) {}
  std::uint64_t budget() const { return budget_; }
  std::uint64_t rounds() const { return rounds_; }

 private:
  std::uint64_t budget_;
  std::uint64_t rounds_;
};

// Resolves SimOptions::num_threads == 0 (see above). Exposed for CLIs and
// benches that want to report the effective worker count.
unsigned resolve_sim_threads(unsigned requested);

class Simulator {
 public:
  static constexpr std::uint64_t kDefaultMaxRounds = 1'000'000'000ULL;
  // Worker shards are 1..K and the driver context is shard 0; RecordTable
  // slot encoding (6 shard bits, shard 63 reserved by kNilSlot) bounds K.
  static constexpr unsigned kMaxWorkers = 32;

  explicit Simulator(const Network& net, SimOptions opt = {});
  // Returns adopted buffers to the SimOptions::memory pool, if any.
  ~Simulator();

  // The execution contexts hold back-pointers into this object.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Runs the program to quiescence (or max_rounds) and returns measured
  // cost. Identical results at every num_threads setting.
  PassResult run(Program& program, std::uint64_t max_rounds = kDefaultMaxRounds);

  const Network& network() const { return *net_; }
  unsigned num_workers() const { return workers_; }

  // Round number of the round currently executing (1-based); 0 in begin().
  std::uint64_t current_round() const { return round_; }

  // Rounds executed across all passes (the counter SimOptions::max_rounds
  // is charged against).
  std::uint64_t total_rounds() const { return total_rounds_; }

 private:
  friend class Exec;
  friend class SimMemory;
  friend struct SimMemory::Store;

  // Everything in flight toward one round from one execution context:
  // per-receiving-arc membership (ordered), the message payloads in send
  // order, and the nodes to wake regardless of inbox. Double-buffered per
  // context: code running round r fills the other generation for round
  // r+1. The arc -> payload-index map (`slot_`) is shared per generation
  // across all contexts: every receiving arc has at most one sender per
  // round (CONGEST bandwidth), so writers are disjoint by arc, and the
  // owning flight is recovered at delivery from whose bitset holds the
  // arc -- flight memory stays O(m / 8) per extra worker, not O(4m).
  struct Flight {
    IndexedBitset arcs;               // in-flight receiving half-edges
    std::vector<Inbound> msgs;        // receiver-ready payloads, send order
    IndexedBitset wakes;              // nodes to wake regardless of inbox
  };

  void clear_flight(Flight& f);
  // Collects (and zeroes) the per-context send/wake counters incremented by
  // Exec::send / wake_next_round since the previous harvest: the in-flight
  // totals of the generation the contexts were aiming at. One O(K) sweep
  // per round at the barrier replaces the former three O(K) flight scans
  // (loop condition, message count, grain check) per round.
  void harvest_counters(std::uint64_t& msgs, std::uint64_t& wakes);
  void process_shard(Program& program, std::uint32_t s);
  void process_shard_union(Program& program, std::uint32_t s);
  void run_round_single(Program& program, Flight& in);
  // Folds the epoch's observed per-shard load into the EWMAs and
  // recomputes shard_lo_ (piecewise-uniform interpolation over arc space).
  // Called between rounds only; pure function of round number + counters.
  void rebalance_now();

  const Network* net_;
  unsigned workers_ = 1;              // K: node shards 1..K
  std::uint64_t parallel_grain_ = 2048;
  bool union_delivery_ = true;
  bool rebalance_ = true;
  std::uint32_t rebalance_interval_ = 64;
  std::vector<NodeId> shard_lo_;      // size K+1: shard s owns [lo[s-1], lo[s])
  std::vector<Flight> flights_[2];    // [generation][context 0..K]
  // Pooled per-shard union-delivery bitsets (union_delivery_ && workers_>1
  // only; indexed by shard 1..K). Empty outside process_shard_union: the
  // drain erases every member it delivers.
  std::vector<IndexedBitset> udeliv_arcs_;
  std::vector<IndexedBitset> udeliv_wakes_;
  // Observed-load rebalancing state, indexed by context (1..K = shards):
  // work sent since the last epoch, and the halving EWMA it folds into.
  std::vector<std::uint64_t> epoch_load_;
  std::vector<std::uint64_t> shard_ewma_;
  std::vector<std::uint32_t> slot_[2];  // arc -> msgs index (shared, see Flight)
  std::vector<std::unique_ptr<Exec>> execs_;        // contexts 0..K
  std::vector<std::vector<Inbound>> inbox_;         // per-shard gather buffer
  std::unique_ptr<WorkerPool> pool_;  // only when workers_ > 1
  SimMemory* memory_ = nullptr;       // pool to return the buffers to
  unsigned cur_ = 0;  // generation being delivered this round
  std::uint64_t round_ = 0;
  std::uint64_t budget_ = 0;        // SimOptions::max_rounds (0 = unlimited)
  std::uint64_t total_rounds_ = 0;  // lifetime rounds, all passes
  // Tracing (SimOptions::trace; all zero-cost when trace_ is null).
  // Per-pass delivery-path tallies, flushed to rt/ metrics at run() end.
  util::TraceBuffer* trace_ = nullptr;
  std::uint64_t trace_serial_rounds_ = 0;
  std::uint64_t trace_union_rounds_ = 0;
  std::uint64_t trace_union_work_ = 0;
  std::uint64_t trace_merge_rounds_ = 0;
  std::uint64_t trace_merge_work_ = 0;
  std::uint64_t trace_pooled_rounds_ = 0;
};

// Execution context handed to Program callbacks: the sending surface of
// one shard. shard() doubles as the RecordTable shard id for pushes made
// while running on this context (0 = driver / begin-time pushes).
class Exec {
 public:
  Exec(const Exec&) = delete;
  Exec& operator=(const Exec&) = delete;

  // Send msg from node `from` through its local port `port`; delivered to
  // the neighbor at the start of the next round.
  void send(NodeId from, std::uint32_t port, const Msg& msg) {
    // Receiving half-edge via the network's flat peer-arc table (which
    // bounds-checks the port): two loads, no adjacency-span construction.
    // A (from, port) pair maps to a unique receiving arc, so the CONGEST
    // bandwidth check is local to this flight even under many workers: a
    // node's sends always run on the one context owning its shard.
    const std::uint32_t ri = sim_->net_->peer_arc(from, port);
    Simulator::Flight& out = *out_;  // re-aimed by the round loop
    [[maybe_unused]] const bool fresh = out.arcs.insert(ri);
    CPT_EXPECTS(fresh && "one message per directed edge per round (CONGEST)");
    slot_[ri] = static_cast<std::uint32_t>(out.msgs.size());
    // The receiving port is filled in at delivery (where the receiver's
    // arc base is already at hand): a single-message inbox is then a span
    // straight into this buffer, no copy.
    out.msgs.push_back({0, msg});
    ++sent_msgs_;
  }

  // Ask to be woken next round even without incoming messages (used by
  // nodes draining multi-round send queues). Duplicate requests coalesce.
  void wake_next_round(NodeId v) {
    CPT_EXPECTS(v < sim_->net_->num_nodes());
    if (out_->wakes.insert(v)) ++sent_wakes_;
  }

  const Network& network() const { return *sim_->net_; }
  std::uint64_t current_round() const { return sim_->round_; }
  std::uint32_t shard() const { return shard_; }
  const Simulator& simulator() const { return *sim_; }

 private:
  friend class Simulator;
  Exec(Simulator* sim, std::uint32_t shard) : sim_(sim), shard_(shard) {}

  Simulator* sim_;
  Simulator::Flight* out_ = nullptr;   // this context's next-round flight
  std::uint32_t* slot_ = nullptr;      // next round's shared slot map
  std::uint32_t shard_;
  // In-flight work this context sent toward the next round, maintained
  // incrementally (wake duplicates are not counted, mirroring the wake
  // bitset). Harvested and zeroed by the round loop at each barrier.
  std::uint64_t sent_msgs_ = 0;
  std::uint64_t sent_wakes_ = 0;
};

}  // namespace cpt::congest
