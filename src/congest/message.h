// CONGEST messages. One word models Theta(log n) bits; a message carries a
// tag plus at most three payload words, i.e. O(log n) bits total, which is
// CONGEST-legal up to the usual constant factor. Logical payloads longer
// than a constant number of words (e.g. Stage II node labels) must be
// pipelined over multiple rounds -- the simulator enforces one message per
// directed edge per round, so pipelining is what makes long payloads cost
// rounds, exactly as in the paper's accounting.
#pragma once

#include <array>
#include <cstdint>

namespace cpt::congest {

struct Msg {
  std::uint32_t tag = 0;
  std::array<std::int64_t, 3> w{};

  static Msg make(std::uint32_t tag, std::int64_t a = 0, std::int64_t b = 0,
                  std::int64_t c = 0) {
    return Msg{tag, {a, b, c}};
  }
};

// A message as seen by its receiver: which local port it arrived on.
struct Inbound {
  std::uint32_t port;
  Msg msg;
};

}  // namespace cpt::congest
