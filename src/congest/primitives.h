// Reusable message-passing building blocks, each a genuine CONGEST node
// program: record convergecast and broadcast over rooted part trees
// (store-and-forward, one record per edge per round -- so record volume
// costs rounds, as in the paper's emulation accounting), a one-round
// neighbor exchange, and a per-part BFS tree builder.
//
// Buffer pooling contract: every per-node table of these passes is a
// RecordTable (see congest/record_table.h) -- one slot arena per table,
// rows as slot chains, reset by bumping a watermark and clearing only the
// rows touched since the previous reset. Drivers that own one pass object
// and reset() it per use are allocation-free in steady state, and a reset
// costs O(rows touched), not O(n).
//
// Participant lists: a TreeView may carry `members`, the exact node set
// taking part in the pass. Converge/broadcast then iterate participants in
// begin() and re-arm only participants' state in reset(), killing the
// O(n)-per-pass sweeps of early-phase masked passes (ROADMAP item). The
// emulated schedule is unchanged -- members never alters who sends what
// when, only how the host iterates.
//
// Parallel rounds: every program here is per-node-write-clean (on_wake(v)
// writes only v's slots / rows, RecordTable pushes pass ex.shard()), so
// they run bit-identically under any simulator worker count. New programs
// must keep that property; see DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "congest/record_table.h"
#include "congest/simulator.h"

namespace cpt::congest {

// A rooted spanning forest over (a subset of) the network's nodes.
// parent_edge[v] == kNoEdge marks part roots; children[v] lists tree edges
// to v's children. An optional participation mask restricts the pass. An
// optional `roots` list names every node that may source a broadcast
// stream (e.g. PartForest::live_roots()): passes that only need to visit
// stream sources then skip their O(n) root sweep. An optional `members`
// list names every participating node -- when `participates` is set it
// must list exactly the mask's nodes; when the mask is null it must cover
// every node the pass can touch (senders, relays and receivers).
struct TreeView {
  const std::vector<EdgeId>* parent_edge = nullptr;
  const std::vector<std::vector<EdgeId>>* children = nullptr;
  const std::vector<std::uint8_t>* participates = nullptr;  // optional
  const std::vector<NodeId>* roots = nullptr;               // optional
  const std::vector<NodeId>* members = nullptr;             // optional

  bool in(NodeId v) const {
    return participates == nullptr || (*participates)[v] != 0;
  }
};

// Precomputed tree-edge ports for a rooted forest: the port of each node's
// parent edge, and each node's child-edge ports in CSR layout. The forest
// topology is fixed between contractions, so drivers running many converge
// / broadcast passes over the same trees build one TreePorts and hand it to
// every reset(): the passes then skip their per-pass port_of_edge sweeps.
struct TreePorts {
  std::vector<std::uint32_t> parent_port;        // per node (0 at roots)
  std::vector<std::uint32_t> child_port;         // CSR payload
  std::vector<std::uint32_t> child_offset;       // size n+1

  void build(const Network& net, const std::vector<EdgeId>& parent_edge,
             const std::vector<std::vector<EdgeId>>& children);
};

// Clears a per-node record-list table in place, keeping every inner
// buffer's capacity. Survives for the few cold-path tables still shaped as
// vector-of-vectors (e.g. PeelingResult::out_records); hot-path scratch
// uses RecordTable::reset instead.
inline void clear_record_table(std::vector<std::vector<Record>>& table,
                               std::size_t n) {
  if (table.size() != n) {
    table.assign(n, {});
    return;
  }
  for (auto& recs : table) recs.clear();
}

enum class Combine { kSum, kMin, kMax };

// Convergecast: each participating node merges its children's record sets
// with its own (by key, with the given combine), then streams the result to
// its parent one record per round, terminated by a DONE marker. Roots
// deposit their merged set in `at_root()`.
//
// Pipelined mode folds the DONE marker into the stream's last record (a
// LAST tag), so a stream of L >= 1 records costs L sends per tree edge
// instead of L+1 -- strictly fewer rounds and messages, same merged
// results. Unpipelined mode reproduces the original schedule exactly;
// the differential tests cross-check the two.
class ConvergeRecords : public Program {
 public:
  // A default-constructed pass is an empty shell: reset() must run before
  // the simulator does.
  ConvergeRecords() = default;
  ConvergeRecords(TreeView tree, Combine combine, std::uint32_t cap);

  // Re-arms the pass for a fresh run, keeping every per-node buffer's
  // capacity. Drivers that run one converge pass per phase should own one
  // ConvergeRecords and reset() it instead of constructing a new one: the
  // steady state is then allocation-free. `ports` (optional, must outlive
  // the run and match `tree`) skips the per-pass parent-port sweep. When
  // `tree.members` is set, reset() re-arms only the members' state --
  // O(participants), not O(n) -- relying on the contract that only
  // participants' state was dirtied since the arrays were last fully
  // cleared.
  void reset(TreeView tree, Combine combine, std::uint32_t cap,
             const TreePorts* ports = nullptr, bool pipelined = false);

  // Caller fills `initial[v]` (distinct keys per node) before running.
  RecordTable initial;

  void begin(Exec& ex) override;
  void on_wake(Exec& ex, NodeId v, std::span<const Inbound> inbox) override;

  RecordTable::ConstRow at_root(NodeId root) const { return merged_[root]; }
  bool overflowed(NodeId root) const { return overflow_[root] != 0; }

 private:
  void merge_record(NodeId v, Record r, std::uint32_t shard);
  void finalize(Exec& ex, NodeId v);
  void pump(Exec& ex, NodeId v);

  TreeView tree_;
  Combine combine_ = Combine::kSum;
  std::uint32_t cap_ = 0;
  bool pipelined_ = false;
  RecordTable merged_;                  // row cursor = next record to send
  std::vector<std::uint8_t> overflow_;
  std::vector<std::uint8_t> ovf_sent_;  // overflow record already streamed
  std::vector<std::uint32_t> pending_;  // children DONEs still expected
  std::vector<std::uint8_t> done_sent_;
  std::vector<std::uint32_t> parent_port_;  // own cache, filled in begin()
  const TreePorts* ports_ = nullptr;        // shared cache, overrides own
  const std::uint32_t* parent_ports_ = nullptr;  // active view (set in begin)
};

// Broadcast: each participating root streams its record list down its tree,
// one record per round per edge (pipelined store-and-forward). Every
// non-root participant ends up with the full stream in `received[v]`.
//
// Pipelined mode folds the end marker into the stream's last record, as in
// ConvergeRecords: L sends per edge instead of L+1 for a stream of L >= 1
// records, identical `received` contents.
class BroadcastRecords : public Program {
 public:
  // A default-constructed pass is an empty shell: reset() must run before
  // the simulator does.
  BroadcastRecords() = default;
  explicit BroadcastRecords(TreeView tree);

  // Re-arms the pass for a fresh run, keeping per-node buffer capacity
  // (see ConvergeRecords::reset; `tree.members` makes it O(participants)).
  // `ports` (optional, must outlive the run and match `tree`) skips the
  // per-pass child-port sweep.
  void reset(TreeView tree, const TreePorts* ports = nullptr,
             bool pipelined = false);

  // Caller fills `stream[r]` for each participating root r.
  RecordTable stream;
  RecordTable received;

  void begin(Exec& ex) override;
  void on_wake(Exec& ex, NodeId v, std::span<const Inbound> inbox) override;

 private:
  void pump(Exec& ex, NodeId v);
  void start_root(Exec& ex, NodeId v);
  void queue_push(NodeId v, Record r, std::uint32_t shard);
  bool has_children(NodeId v) const {
    return child_offset_view_[v + 1] > child_offset_view_[v];
  }

  TreeView tree_;
  bool pipelined_ = false;
  RecordTable queue_;                   // row cursor = next record to send
  std::vector<std::uint8_t> end_queued_;
  // Child ports per node in CSR layout, cached once in begin(): pump()
  // runs every round of a pipelined stream and must not pay a port_of_edge
  // lookup (nor a per-node allocation) per child per record.
  std::vector<std::uint32_t> child_ports_;
  std::vector<std::uint32_t> child_ports_offset_;  // size n+1
  const TreePorts* ports_ = nullptr;               // shared cache, overrides own
  const std::uint32_t* child_port_view_ = nullptr;    // active views
  const std::uint32_t* child_offset_view_ = nullptr;  // (set in begin)
};

// One-round exchange: `outgoing` lists (port, msg) pairs per node before the
// round; `collect` sees each node's inbox after delivery (with the worker
// context first, for sharded RecordTable pushes). `senders` (optional)
// names the nodes that may send — any superset of the actual senders leaves
// the pass's messages unchanged while skipping the `outgoing` callback for
// everyone else; drivers that run many exchanges where few nodes speak
// (relay hops, notification rounds) should pass it.
class Exchange : public Program {
 public:
  using OutgoingFn =
      std::function<void(NodeId, std::vector<std::pair<std::uint32_t, Msg>>&)>;
  using CollectFn = std::function<void(Exec&, NodeId, std::span<const Inbound>)>;

  Exchange(NodeId num_nodes, OutgoingFn outgoing, CollectFn collect,
           const std::vector<NodeId>* senders = nullptr)
      : num_nodes_(num_nodes),
        outgoing_(std::move(outgoing)),
        collect_(std::move(collect)),
        senders_(senders) {}

  void begin(Exec& ex) override;
  void on_wake(Exec& ex, NodeId v, std::span<const Inbound> inbox) override;

 private:
  NodeId num_nodes_;
  OutgoingFn outgoing_;
  CollectFn collect_;
  const std::vector<NodeId>* senders_;
};

// BFS forest: one wave per part root, restricted to the root's own part
// (receivers discard waves carrying a foreign root id). Produces per-node
// parent edge, children edges and BFS level.
class BfsForest : public Program {
 public:
  // part_root[v] = id of the part root of v's part (part_root[r] == r).
  explicit BfsForest(const std::vector<NodeId>& part_root);

  void begin(Exec& ex) override;
  void on_wake(Exec& ex, NodeId v, std::span<const Inbound> inbox) override;

  std::vector<EdgeId> parent_edge;               // kNoEdge at roots
  std::vector<std::vector<EdgeId>> children;
  std::vector<std::uint32_t> level;

 private:
  const std::vector<NodeId>* part_root_;
  std::vector<std::uint8_t> joined_;
};

}  // namespace cpt::congest
