// Quickstart: build a graph, run the distributed planarity tester, inspect
// the verdict and the round ledger.
//
//   $ ./quickstart
#include <cstdio>

#include "core/tester.h"
#include "graph/generators.h"

using namespace cpt;

int main() {
  // A planar road-grid-like network.
  const Graph planar = gen::triangulated_grid(20, 20);

  TesterOptions opt;
  opt.epsilon = 0.25;  // distance parameter: reject if > eps*m edges must go
  opt.seed = 42;

  const TesterResult ok = test_planarity(planar, opt);
  std::printf("planar 20x20 triangulated grid (n=%u, m=%u):\n",
              planar.num_nodes(), planar.num_edges());
  std::printf("  verdict : %s\n",
              ok.verdict == Verdict::kAccept ? "ACCEPT (every node accepts)"
                                             : "REJECT");
  std::printf("  rounds  : %llu CONGEST rounds (%u stage-I phases)\n",
              static_cast<unsigned long long>(ok.rounds()),
              ok.stage1_phases_emulated);
  std::printf("  cut     : %llu inter-part edges across %u parts\n\n",
              static_cast<unsigned long long>(ok.partition.cut_edges),
              ok.partition.num_parts);

  // The same network after someone adds sixty K5 interchanges.
  Rng rng(7);
  const Graph far = gen::planar_with_k5_blobs(400, 60, rng);
  const TesterResult bad = test_planarity(far, opt);
  std::printf("planar backbone + 60 K5 blobs (n=%u, m=%u):\n",
              far.num_nodes(), far.num_edges());
  std::printf("  verdict : %s\n",
              bad.verdict == Verdict::kReject ? "REJECT" : "ACCEPT");
  std::printf("  reason  : %s\n", bad.reason.c_str());
  std::printf("  witness : %zu rejecting node(s), first id %u\n",
              bad.rejecting_nodes.size(),
              bad.rejecting_nodes.empty() ? 0 : bad.rejecting_nodes.front());

  // Round breakdown by pass family.
  std::printf("\nround breakdown (planar run):\n");
  std::printf("  stage I peeling   : %llu\n",
              static_cast<unsigned long long>(
                  ok.ledger.rounds_with_prefix("stage1/peel")));
  std::printf("  stage I merging   : %llu\n",
              static_cast<unsigned long long>(
                  ok.ledger.total_rounds() -
                  ok.ledger.rounds_with_prefix("stage1/peel") -
                  ok.ledger.rounds_with_prefix("stage2/")));
  std::printf("  stage II          : %llu\n",
              static_cast<unsigned long long>(
                  ok.ledger.rounds_with_prefix("stage2/")));
  return 0;
}
