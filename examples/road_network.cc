// Scenario: a road network authority checks whether its map data is still
// (nearly) planar after years of flyover/tunnel additions, then builds an
// ultra-sparse spanner as a routing skeleton (Corollary 17).
//
// The graph setup is the registered "road_network" scenario preset
// (src/scenario/registry.cc): a street grid plus `flyovers` random
// long-range edges. Batch sweeps (tools/cpt_batch.cc) and this example
// share that one source of truth -- `cpt_batch gen road_network
// flyovers=200 --base-seed=2024` reproduces any row below bit-for-bit
// (this example derives its instances from base seed 2024).
#include <cstdio>

#include "apps/spanner.h"
#include "core/tester.h"
#include "graph/properties.h"
#include "planar/lr_planarity.h"
#include "scenario/registry.h"

using namespace cpt;

namespace {

Graph road_graph(std::int64_t flyovers) {
  scenario::ScenarioParams params;
  params.set_int("flyovers", flyovers);
  return scenario::build_instance(
      scenario::resolve_scenario("road_network", params, /*base_seed=*/2024,
                                 /*index=*/0));
}

}  // namespace

int main() {
  const Graph roads = road_graph(0);
  std::printf("road network: %u junctions, %u segments\n", roads.num_nodes(),
              roads.num_edges());

  TesterOptions opt;
  opt.epsilon = 0.15;
  opt.seed = 1;

  std::printf("\n%-12s %-10s %-26s %-12s\n", "flyovers", "planar?",
              "tester verdict", "rounds");
  for (const std::int64_t flyovers : {0, 5, 40, 200, 600}) {
    const Graph g = flyovers == 0 ? roads : road_graph(flyovers);
    const TesterResult r = test_planarity(g, opt);
    std::printf("%-12lld %-10s %-26s %-12llu\n",
                static_cast<long long>(flyovers), is_planar(g) ? "yes" : "no",
                r.verdict == Verdict::kAccept
                    ? "accept"
                    : ("reject: " + r.reason).c_str(),
                static_cast<unsigned long long>(r.rounds()));
  }
  std::printf(
      "\nA handful of flyovers is *close* to planar: the one-sided tester\n"
      "may accept (that is the property-testing relaxation); heavy\n"
      "flyover counts are far from planar and get rejected.\n");

  // Routing skeleton on the (planar) base network.
  MinorFreeOptions sopt;
  sopt.epsilon = 0.1;
  sopt.seed = 3;
  const SpannerResult s = build_spanner(roads, sopt);
  Rng sample_rng(5);
  const std::uint32_t stretch = measure_edge_stretch(roads, s.edges, 300, sample_rng);
  std::printf("\nrouting skeleton (spanner, eps = 0.1):\n");
  std::printf("  %zu of %u segments kept (%.2fx n)\n", s.edges.size(),
              roads.num_edges(), s.size_ratio(roads));
  std::printf("  worst sampled detour factor: %u\n", stretch);
  std::printf("  built in %llu CONGEST rounds\n",
              static_cast<unsigned long long>(s.ledger.total_rounds()));
  return 0;
}
