// Scenario: everything Section 4 gives you once you know your network is
// minor-free -- the partition itself (Theorems 3/4), cycle-freeness and
// bipartiteness testing (Corollary 16), and spanners (Corollary 17),
// deterministic and randomized variants side by side.
#include <cstdio>

#include "apps/bipartite.h"
#include "apps/cycle_free.h"
#include "apps/spanner.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "partition/random_partition.h"

using namespace cpt;

int main() {
  const Graph g = gen::triangulated_grid(30, 30);
  std::printf("input: 30x30 triangulated grid (planar => minor-free), "
              "n=%u m=%u\n\n", g.num_nodes(), g.num_edges());

  // --- The partition primitive itself. ---
  {
    congest::Network net(g);
    congest::Simulator sim(net);
    congest::RoundLedger ledger;
    Stage1Options opt;
    opt.epsilon = 0.2;
    const Stage1Result r = run_stage1(sim, g, opt, ledger);
    const PartitionStats s = measure_partition(g, r.forest);
    std::printf("Theorem 3 (deterministic partition): %u parts, cut %llu, "
                "max ecc %u, %llu rounds\n", s.num_parts,
                static_cast<unsigned long long>(s.cut_edges), s.max_part_ecc,
                static_cast<unsigned long long>(ledger.total_rounds()));
  }
  {
    congest::Network net(g);
    congest::Simulator sim(net);
    congest::RoundLedger ledger;
    RandomPartitionOptions opt;
    opt.epsilon = 0.2;
    opt.delta = 0.1;
    opt.seed = 9;
    const RandomPartitionResult r = run_random_partition(sim, g, opt, ledger);
    const PartitionStats s = measure_partition(g, r.forest);
    std::printf("Theorem 4 (randomized, delta=0.1):   %u parts, cut %llu, "
                "max ecc %u, %llu rounds (%u trials/phase)\n\n", s.num_parts,
                static_cast<unsigned long long>(s.cut_edges), s.max_part_ecc,
                static_cast<unsigned long long>(ledger.total_rounds()),
                r.trials_per_phase);
  }

  // --- Corollary 16 testers. ---
  for (const bool randomized : {false, true}) {
    MinorFreeOptions opt;
    opt.epsilon = 0.25;
    opt.randomized = randomized;
    opt.delta = 0.1;
    opt.seed = 4;
    const AppResult cf = test_cycle_freeness(g, opt);
    const AppResult bp = test_bipartiteness(g, opt);
    std::printf("Corollary 16 (%s): cycle-free -> %s (%llu rounds), "
                "bipartite -> %s (%llu rounds)\n",
                randomized ? "randomized" : "deterministic",
                cf.verdict == Verdict::kAccept ? "accept" : "reject",
                static_cast<unsigned long long>(cf.rounds()),
                bp.verdict == Verdict::kAccept ? "accept" : "reject",
                static_cast<unsigned long long>(bp.rounds()));
  }
  std::printf("(the triangulated grid has many cycles and odd triangles:\n"
              " both properties are correctly rejected)\n\n");

  // --- Corollary 17 spanner. ---
  MinorFreeOptions sopt;
  sopt.epsilon = 0.1;
  sopt.seed = 2;
  const SpannerResult s = build_spanner(g, sopt);
  Rng rng(1);
  std::printf("Corollary 17: spanner with %zu edges (%.3f x n), stretch <= %u, "
              "%llu rounds\n", s.edges.size(), s.size_ratio(g),
              measure_edge_stretch(g, s.edges, 200, rng),
              static_cast<unsigned long long>(s.ledger.total_rounds()));
  return 0;
}
