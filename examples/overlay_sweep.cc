// Scenario: a P2P system keeps a planar backbone and tolerates some overlay
// links. How much overlay can the planarity tester tolerate before it
// (correctly) starts rejecting? Sweeps the overlay fraction and reports the
// rejection rate over seeds -- an empirical look at the eps threshold.
//
// The graph setup is the registered "overlay_backbone" scenario preset
// (src/scenario/registry.cc), shared with batch sweeps; per-trial tester
// seeds use the engine's derivation, so `cpt_batch gen overlay_backbone
// overlay=... --base-seed=77` reproduces each row's graph.
#include <cstdio>

#include "core/tester.h"
#include "graph/properties.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"

using namespace cpt;

namespace {

constexpr std::uint64_t kBaseSeed = 77;

scenario::ScenarioInstance overlay_instance(std::int64_t overlay) {
  scenario::ScenarioParams params;
  params.set_int("n", 1500);
  params.set_int("m", 3200);
  params.set_int("overlay", overlay);
  return scenario::resolve_scenario("overlay_backbone", params, kBaseSeed,
                                    /*index=*/0);
}

}  // namespace

int main() {
  const Graph backbone = scenario::build_instance(overlay_instance(0));
  std::printf("backbone: n=%u, m=%u (planar)\n\n", backbone.num_nodes(),
              backbone.num_edges());

  constexpr int kSeeds = 8;
  std::printf("%-14s %-10s %-12s %-14s %-16s\n", "overlay-edges",
              "overlay/m", "dist-lb/m", "reject-rate", "avg-rounds");
  for (const std::int64_t overlay : {0, 30, 100, 300, 800, 2000}) {
    const scenario::ScenarioInstance inst = overlay_instance(overlay);
    const Graph g = overlay == 0 ? backbone : scenario::build_instance(inst);
    int rejects = 0;
    std::uint64_t rounds = 0;
    for (std::uint32_t trial = 0; trial < kSeeds; ++trial) {
      TesterOptions opt;
      opt.epsilon = 0.1;
      opt.seed = scenario::derive_tester_seed(inst.seed, trial);
      const TesterResult r = test_planarity(g, opt);
      rejects += r.verdict == Verdict::kReject;
      rounds += r.rounds();
    }
    std::printf("%-14lld %-10.3f %-12.3f %2d/%-11d %-16llu\n",
                static_cast<long long>(overlay),
                static_cast<double>(overlay) / g.num_edges(),
                static_cast<double>(planarity_distance_lower_bound(g)) /
                    g.num_edges(),
                rejects, kSeeds,
                static_cast<unsigned long long>(rounds / kSeeds));
  }
  std::printf(
      "\nOne-sidedness shows as a 0/%d rejection rate at overlay = 0; the\n"
      "rejection rate climbs to %d/%d once the overlay pushes the graph\n"
      "past the eps threshold.\n",
      kSeeds, kSeeds, kSeeds);
  return 0;
}
