// Scenario: a P2P system keeps a planar backbone and tolerates some overlay
// links. How much overlay can the planarity tester tolerate before it
// (correctly) starts rejecting? Sweeps the overlay fraction and reports the
// rejection rate over seeds -- an empirical look at the eps threshold.
#include <cstdio>

#include "core/tester.h"
#include "graph/generators.h"
#include "graph/properties.h"

using namespace cpt;

int main() {
  Rng rng(77);
  const Graph backbone = gen::random_planar(1500, 3200, rng);
  std::printf("backbone: n=%u, m=%u (planar)\n\n", backbone.num_nodes(),
              backbone.num_edges());

  constexpr int kSeeds = 8;
  std::printf("%-14s %-10s %-12s %-14s %-16s\n", "overlay-edges",
              "overlay/m", "dist-lb/m", "reject-rate", "avg-rounds");
  for (const EdgeId overlay : {0u, 30u, 100u, 300u, 800u, 2000u}) {
    const Graph g =
        overlay == 0 ? backbone
                     : gen::planar_plus_random_edges(backbone, overlay, rng);
    int rejects = 0;
    std::uint64_t rounds = 0;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      TesterOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      const TesterResult r = test_planarity(g, opt);
      rejects += r.verdict == Verdict::kReject;
      rounds += r.rounds();
    }
    std::printf("%-14u %-10.3f %-12.3f %2d/%-11d %-16llu\n", overlay,
                static_cast<double>(overlay) / g.num_edges(),
                static_cast<double>(planarity_distance_lower_bound(g)) /
                    g.num_edges(),
                rejects, kSeeds,
                static_cast<unsigned long long>(rounds / kSeeds));
  }
  std::printf(
      "\nOne-sidedness shows as a 0/%d rejection rate at overlay = 0; the\n"
      "rejection rate climbs to %d/%d once the overlay pushes the graph\n"
      "past the eps threshold.\n",
      kSeeds, kSeeds, kSeeds);
  return 0;
}
