// Command-line front end: run the paper's algorithms on an edge-list file.
//
//   cpt_cli test <file> [eps] [seed]      planarity tester (Theorem 1)
//   cpt_cli partition <file> [eps]        Stage I partition (Theorem 3)
//   cpt_cli spanner <file> [eps]          spanner construction (Corollary 17)
//
//   --threads=N (anywhere): simulator workers for round execution.
//   Results are bit-identical at every N; N only changes host wall time.
//   cpt_cli witness <file>                Kuratowski witness (exact, centralized)
//   cpt_cli gen <family> <args...>        write a generator graph to stdout
//
// Edge-list format: "n m" header, then one "u v" pair per line; '#' comments.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/spanner.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "core/tester.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "partition/partition.h"
#include "planar/kuratowski.h"

using namespace cpt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cpt_cli [--threads=N] test <file> [eps] [seed]\n"
               "  cpt_cli [--threads=N] partition <file> [eps]\n"
               "  cpt_cli [--threads=N] spanner <file> [eps]\n"
               "  cpt_cli witness <file>\n"
               "  cpt_cli gen grid <rows> <cols>\n"
               "  cpt_cli gen trigrid <rows> <cols>\n"
               "  cpt_cli gen apollonian <n> <seed>\n"
               "  cpt_cli gen gnp <n> <avg_degree> <seed>\n");
  return 2;
}

unsigned g_threads = 0;  // 0 = env default (CPT_TEST_THREADS) or 1

int cmd_test(const std::string& path, double eps, std::uint64_t seed) {
  const Graph g = load_edge_list_file(path);
  TesterOptions opt;
  opt.epsilon = eps;
  opt.seed = seed;
  opt.num_threads = g_threads;
  const TesterResult r = test_planarity(g, opt);
  std::printf("n=%u m=%u eps=%.3f\n", g.num_nodes(), g.num_edges(), eps);
  std::printf("verdict: %s\n", r.verdict == Verdict::kAccept ? "ACCEPT"
                               : r.verdict == Verdict::kReject ? "REJECT"
                                                               : "FAIL");
  if (!r.reason.empty()) std::printf("reason:  %s\n", r.reason.c_str());
  std::printf("rounds:  %llu  (stage I phases: %u emulated / %u scheduled)\n",
              static_cast<unsigned long long>(r.rounds()),
              r.stage1_phases_emulated, r.stage1_phases_total);
  std::printf("parts:   %u, cut %llu, max part ecc %u\n", r.partition.num_parts,
              static_cast<unsigned long long>(r.partition.cut_edges),
              r.partition.max_part_ecc);
  return r.verdict == Verdict::kAccept ? 0 : 1;
}

int cmd_partition(const std::string& path, double eps) {
  const Graph g = load_edge_list_file(path);
  congest::Network net(g);
  congest::SimOptions sim_opt;
  sim_opt.num_threads = g_threads;
  congest::Simulator sim(net, sim_opt);
  congest::RoundLedger ledger;
  Stage1Options opt;
  opt.epsilon = eps;
  const Stage1Result r = run_stage1(sim, g, opt, ledger);
  if (r.rejected) {
    std::printf("REJECT: arboricity evidence at %zu node(s)\n",
                r.rejecting_nodes.size());
    return 1;
  }
  const PartitionStats stats = measure_partition(g, r.forest);
  std::printf("parts=%u cut=%llu max_ecc=%u rounds=%llu\n", stats.num_parts,
              static_cast<unsigned long long>(stats.cut_edges),
              stats.max_part_ecc,
              static_cast<unsigned long long>(ledger.total_rounds()));
  // One "node part" line per node for scripting.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::printf("%u %u\n", v, r.forest.root[v]);
  }
  return 0;
}

int cmd_spanner(const std::string& path, double eps) {
  const Graph g = load_edge_list_file(path);
  MinorFreeOptions opt;
  opt.epsilon = eps;
  opt.adaptive_phases = true;
  opt.num_threads = g_threads;
  const SpannerResult s = build_spanner(g, opt);
  std::printf("# spanner: %zu edges (%.3f x n), rounds=%llu\n", s.edges.size(),
              s.size_ratio(g),
              static_cast<unsigned long long>(s.ledger.total_rounds()));
  for (const EdgeId e : s.edges) {
    const Endpoints ep = g.endpoints(e);
    std::printf("%u %u\n", ep.u, ep.v);
  }
  return 0;
}

int cmd_witness(const std::string& path) {
  const Graph g = load_edge_list_file(path);
  const auto w = find_kuratowski_subdivision(g);
  if (!w.has_value()) {
    std::printf("planar: no Kuratowski witness\n");
    return 0;
  }
  std::printf("non-planar: %s subdivision on %zu edges; branch nodes:",
              w->kind == KuratowskiWitness::Kind::kK5 ? "K5" : "K3,3",
              w->edges.size());
  for (const NodeId v : w->branch_nodes) std::printf(" %u", v);
  std::printf("\n");
  for (const EdgeId e : w->edges) {
    const Endpoints ep = g.endpoints(e);
    std::printf("%u %u\n", ep.u, ep.v);
  }
  return 1;
}

int cmd_gen(int argc, char** argv) {
  const std::string family = argv[2];
  Graph g;
  if (family == "grid" && argc >= 5) {
    g = gen::grid(static_cast<NodeId>(std::atoi(argv[3])),
                  static_cast<NodeId>(std::atoi(argv[4])));
  } else if (family == "trigrid" && argc >= 5) {
    g = gen::triangulated_grid(static_cast<NodeId>(std::atoi(argv[3])),
                               static_cast<NodeId>(std::atoi(argv[4])));
  } else if (family == "apollonian" && argc >= 5) {
    Rng rng(static_cast<std::uint64_t>(std::atoll(argv[4])));
    g = gen::apollonian(static_cast<NodeId>(std::atoi(argv[3])), rng);
  } else if (family == "gnp" && argc >= 6) {
    Rng rng(static_cast<std::uint64_t>(std::atoll(argv[5])));
    const NodeId n = static_cast<NodeId>(std::atoi(argv[3]));
    g = gen::gnp(n, std::atof(argv[4]) / n, rng);
  } else {
    return usage();
  }
  write_edge_list(g, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --threads=N wherever it appears.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const double eps = argc >= 4 ? std::atof(argv[3]) : 0.25;
  const std::uint64_t seed =
      argc >= 5 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  if (cmd == "test") return cmd_test(argv[2], eps, seed);
  if (cmd == "partition") return cmd_partition(argv[2], eps);
  if (cmd == "spanner") return cmd_spanner(argv[2], eps);
  if (cmd == "witness") return cmd_witness(argv[2]);
  if (cmd == "gen") return cmd_gen(argc, argv);
  return usage();
}
