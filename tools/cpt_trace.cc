// cpt_trace: analyzer for the observability artifacts cpt_batch emits.
//
//   cpt_trace summary [--no-wall] TRACE.jsonl
//       Per-name span/instant/count rollup. --no-wall drops the wall-
//       clock columns, leaving a pure function of the deterministic
//       trace fields (what the golden test pins).
//   cpt_trace flame TRACE.jsonl
//       Wall-clock rollup by span name (total and self time).
//   cpt_trace shards TRACE.jsonl
//       Simulator shard-rebalance table (epoch loads, imbalance,
//       boundary moves) from the sim/rebalance instants.
//   cpt_trace diff FILE_A FILE_B
//       Compares the deterministic views of two traces (timestamps
//       stripped) or two metrics snapshots ("runtime" section dropped).
//       Exit 0 when identical, 1 with a divergence report otherwise.
//
// Exit codes: 0 ok / match, 1 runtime failure or diff divergence,
// 2 usage error.
#include <cstdio>
#include <cstring>
#include <string>

#include "scenario/trace_analysis.h"

namespace {

using cpt::scenario::TraceFile;

int usage() {
  std::fprintf(stderr,
               "usage: cpt_trace summary [--no-wall] TRACE.jsonl\n"
               "       cpt_trace flame TRACE.jsonl\n"
               "       cpt_trace shards TRACE.jsonl\n"
               "       cpt_trace diff FILE_A FILE_B\n");
  return 2;
}

int load_or_fail(const std::string& path, TraceFile* t) {
  std::string error;
  if (!cpt::scenario::load_trace_file(path, t, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "summary") {
    bool include_wall = true;
    std::string path;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--no-wall") == 0) {
        include_wall = false;
      } else if (argv[i][0] == '-') {
        std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
        return 2;
      } else if (path.empty()) {
        path = argv[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    TraceFile t;
    if (int rc = load_or_fail(path, &t)) return rc;
    std::fputs(cpt::scenario::trace_summary(t, include_wall).c_str(), stdout);
    return 0;
  }

  if (cmd == "flame" || cmd == "shards") {
    if (argc != 3) return usage();
    TraceFile t;
    if (int rc = load_or_fail(argv[2], &t)) return rc;
    const std::string out = cmd == "flame" ? cpt::scenario::trace_flame(t)
                                           : cpt::scenario::trace_shards(t);
    std::fputs(out.c_str(), stdout);
    return 0;
  }

  if (cmd == "diff") {
    if (argc != 4) return usage();
    std::string report;
    if (cpt::scenario::trace_diff_files(argv[2], argv[3], &report)) {
      std::printf("identical deterministic views\n");
      return 0;
    }
    std::fprintf(stderr, "%s\n", report.c_str());
    return 1;
  }

  return usage();
}
