// Batch front end for the scenario engine: expand manifests, run sweeps
// with cross-simulation parallelism, emit the aggregate JSON/CSV schema.
//
//   cpt_batch list                          registry (families, perturbations,
//                                           presets, testers)
//   cpt_batch expand <manifest.json>        print the expanded job list
//   cpt_batch run <manifest.json>           execute and aggregate
//       [--threads=N]                       concurrent simulations (0 = env)
//       [--corpus=DIR]                      binary graph cache directory
//       [--out=FILE]                        aggregate JSON (deterministic:
//                                           bit-identical at every --threads)
//       [--csv=FILE]                        aggregate CSV
//       [--timing-out=FILE]                 wall-clock report (nondeterministic)
//       [--stream=FILE]                     streaming mode: JSONL aggregate
//                                           (cpt_batch_aggregate_stream_v1),
//                                           each sweep cell flushed as it
//                                           completes; per-job results are
//                                           never held in memory
//       [--quiet]                           suppress the summary table
//   cpt_batch gen <scenario> [k=v ...]      write one instance as an edge
//       [--base-seed=S] [--index=I]         list to stdout (graph/io.h format)
//
// Exit status: nonzero when any job fails (unreadable file scenario,
// generation/simulation error) -- the aggregate then covers only the jobs
// that ran, and trusting it silently would be wrong.
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "graph/io.h"
#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"

using namespace cpt;
using namespace cpt::scenario;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cpt_batch list\n"
               "  cpt_batch expand <manifest.json>\n"
               "  cpt_batch run <manifest.json> [--threads=N] [--corpus=DIR]\n"
               "                [--out=FILE] [--csv=FILE] [--timing-out=FILE]"
               " [--stream=FILE]\n"
               "                [--quiet]\n"
               "  cpt_batch gen <scenario> [key=value ...] [--base-seed=S]"
               " [--index=I]\n");
  return 2;
}

int cmd_list() {
  std::printf("graph families (scenario registry):\n");
  for (const FamilyInfo& f : scenario_families()) {
    std::printf("  %-20s %s%s\n", f.name, f.params_help,
                f.randomized ? "  [seeded]" : "");
  }
  std::printf("\nperturbations (eps-far wrappers, \"perturb\" block):\n");
  for (const PerturbInfo& p : scenario_perturbations()) {
    std::printf("  %-20s %s\n", p.name, p.params_help);
  }
  std::printf("\npresets (named scenarios; examples share these):\n");
  for (const PresetInfo& p : scenario_presets()) {
    std::printf("  %-20s %s\n", p.name, p.params_help);
  }
  std::printf("\ntesters: planarity | cycle_free | bipartite\n");
  return 0;
}

int cmd_expand(const std::string& path) {
  Manifest manifest;
  std::string error;
  if (!load_manifest_file(path, &manifest, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::vector<Job> jobs = expand_manifest(manifest);
  std::printf("# manifest %s: %zu jobs, base_seed=%" PRIu64 "\n",
              manifest.name.c_str(), jobs.size(), manifest.base_seed);
  std::printf("%-6s %-52s %-10s %-7s %-5s %-20s\n", "job", "instance",
              "tester", "eps", "trial", "seeds(instance/tester)");
  for (const Job& job : jobs) {
    char seeds[48];
    std::snprintf(seeds, sizeof seeds, "%016" PRIx64 "/%016" PRIx64,
                  job.instance.seed, job.tester_seed);
    std::printf("%-6u %-52s %-10s %-7.3f %-5u %s\n", job.job_index,
                job.instance.label().c_str(), tester_name(job.tester),
                job.epsilon, job.trial, seeds);
  }
  return 0;
}

int cmd_run(const std::string& path, const BatchOptions& options,
            const std::string& out_path, const std::string& csv_path,
            const std::string& timing_path, const std::string& stream_path,
            bool quiet) {
  Manifest manifest;
  std::string error;
  if (!load_manifest_file(path, &manifest, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  BatchResult batch;
  std::vector<CellAggregate> cells;
  std::vector<std::string> job_errors;  // first few, for the failure report
  if (stream_path.empty()) {
    batch = run_batch(manifest, options);
    cells = aggregate_cells(batch);
    for (std::size_t j = 0; j < batch.results.size(); ++j) {
      if (batch.results[j].failed && job_errors.size() < 3) {
        job_errors.push_back(batch.jobs[j].instance.label() + ": " +
                             batch.results[j].error);
      }
    }
  } else {
    // Streaming: per-job results go straight into the aggregator (and each
    // finished cell straight to disk); nothing per-job is retained. The
    // aggregator's expected cell sizes come from our own expansion;
    // run_batch re-expands internally -- expansion is pure and golden-
    // pinned (scenario_test.cc), so both lists are identical by contract,
    // and finish() flushes defensively even if they ever were not.
    std::FILE* stream = std::fopen(stream_path.c_str(), "w");
    if (stream == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", stream_path.c_str());
      return 1;
    }
    bool write_ok = true;
    const auto emit = [&](const std::string& chunk) {
      write_ok = write_ok &&
                 std::fwrite(chunk.data(), 1, chunk.size(), stream) ==
                     chunk.size() &&
                 std::fflush(stream) == 0;  // a killed sweep keeps every
                                            // finished cell
    };
    const std::vector<Job> jobs = expand_manifest(manifest);
    emit(render_stream_header(manifest, jobs.size()));
    StreamingAggregator agg(jobs);
    agg.set_cell_sink(
        [&](const CellAggregate& cell) { emit(render_stream_cell(cell)); });
    batch = run_batch(manifest, options,
                      [&](const Job& job, const JobResult& result) {
                        if (result.failed && job_errors.size() < 3) {
                          job_errors.push_back(job.instance.label() + ": " +
                                               result.error);
                        }
                        agg.consume(job, result);
                      });
    cells = agg.finish();
    emit(render_stream_footer(batch, cells.size()));
    write_ok = (std::fclose(stream) == 0) && write_ok;
    if (!write_ok) {
      std::fprintf(stderr, "error: cannot write %s\n", stream_path.c_str());
      return 1;
    }
  }

  if (!quiet) {
    std::printf("# %s: %zu jobs over %" PRIu64
                " instances, %u threads, %.2fs wall\n",
                manifest.name.c_str(), batch.jobs.size(),
                batch.corpus.unique_instances, batch.threads_used,
                batch.wall_seconds);
    std::printf("# corpus: %" PRIu64 " generated, %" PRIu64 " disk hits%s%s\n",
                batch.corpus.generated, batch.corpus.disk_hits,
                options.corpus_dir.empty() ? "" : " in ",
                options.corpus_dir.c_str());
    std::printf("%-44s %-10s %-6s %-10s %-12s %-12s\n", "scenario", "tester",
                "eps", "detect", "rounds p50", "messages p50");
    for (const CellAggregate& cell : cells) {
      char detect[24];
      std::snprintf(detect, sizeof detect, "%u/%u", cell.rejects, cell.jobs);
      std::printf("%-44s %-10s %-6.3f %-10s %-12" PRIu64 " %-12" PRIu64 "\n",
                  cell.scenario.c_str(), cell.tester.c_str(), cell.epsilon,
                  detect, cell.rounds.p50, cell.messages.p50);
    }
  }
  if (!out_path.empty() &&
      !write_text_file(out_path,
                       render_aggregate_json(manifest, batch, cells))) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!csv_path.empty() &&
      !write_text_file(csv_path, render_aggregate_csv(cells))) {
    std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  if (!timing_path.empty() &&
      !write_text_file(timing_path,
                       render_timing_json(manifest, batch, cells))) {
    std::fprintf(stderr, "error: cannot write %s\n", timing_path.c_str());
    return 1;
  }
  if (batch.failed_jobs > 0) {
    std::fprintf(stderr,
                 "error: %u of %zu jobs failed; the aggregate covers only "
                 "the jobs that ran\n",
                 batch.failed_jobs, batch.jobs.size());
    for (const std::string& e : job_errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    return 1;
  }
  return 0;
}

// key=value -> typed ParamValue (int, else double, else string).
bool parse_kv(const std::string& arg, ScenarioParams* params) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string key = arg.substr(0, eq);
  const std::string value = arg.substr(eq + 1);
  char* end = nullptr;
  const long long i = std::strtoll(value.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !value.empty()) {
    params->set_int(key, i);
    return true;
  }
  const double d = std::strtod(value.c_str(), &end);
  if (end != nullptr && *end == '\0' && !value.empty()) {
    params->set_double(key, d);
    return true;
  }
  params->set_string(key, value);
  return true;
}

int cmd_gen(const std::vector<std::string>& args, std::uint64_t base_seed,
            std::uint64_t index) {
  if (args.empty()) return usage();
  const std::string& name = args[0];
  if (!is_known_scenario(name)) {
    std::fprintf(stderr, "error: unknown scenario \"%s\" (see cpt_batch list)\n",
                 name.c_str());
    return 1;
  }
  ScenarioParams params;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (!parse_kv(args[i], &params)) {
      std::fprintf(stderr, "error: expected key=value, got \"%s\"\n",
                   args[i].c_str());
      return 1;
    }
  }
  const ScenarioInstance inst =
      resolve_scenario(name, params, base_seed, index);
  const Graph g = build_instance(inst);
  std::printf("# %s  hash=%016" PRIx64 "\n", inst.label_with_seed().c_str(),
              inst.hash());
  write_edge_list(g, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BatchOptions options;
  std::string out_path, csv_path, timing_path, stream_path;
  std::uint64_t base_seed = 1, index = 0;
  bool quiet = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--threads=", 10) == 0) {
      options.threads = static_cast<unsigned>(std::atoi(a + 10));
    } else if (std::strncmp(a, "--corpus=", 9) == 0) {
      options.corpus_dir = a + 9;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      out_path = a + 6;
    } else if (std::strncmp(a, "--csv=", 6) == 0) {
      csv_path = a + 6;
    } else if (std::strncmp(a, "--timing-out=", 13) == 0) {
      timing_path = a + 13;
    } else if (std::strncmp(a, "--stream=", 9) == 0) {
      stream_path = a + 9;
    } else if (std::strncmp(a, "--base-seed=", 12) == 0) {
      base_seed = static_cast<std::uint64_t>(std::strtoull(a + 12, nullptr, 10));
    } else if (std::strncmp(a, "--index=", 8) == 0) {
      index = static_cast<std::uint64_t>(std::strtoull(a + 8, nullptr, 10));
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strncmp(a, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return usage();
    } else {
      args.emplace_back(a);
    }
  }
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  if (cmd == "list") return cmd_list();
  if (cmd == "expand" && args.size() == 2) return cmd_expand(args[1]);
  if (cmd == "run" && args.size() == 2) {
    return cmd_run(args[1], options, out_path, csv_path, timing_path,
                   stream_path, quiet);
  }
  if (cmd == "gen") {
    return cmd_gen({args.begin() + 1, args.end()}, base_seed, index);
  }
  return usage();
}
