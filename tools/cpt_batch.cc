// Batch front end for the scenario engine: expand manifests, run sweeps
// with cross-simulation parallelism, emit the aggregate JSON/CSV schema.
//
//   cpt_batch list                          registry (families, perturbations,
//                                           presets, testers)
//   cpt_batch expand <manifest.json>        print the expanded job list
//   cpt_batch run <manifest.json>           execute and aggregate
//       [--threads=N]                       concurrent simulations (0 = env)
//       [--sim-threads-policy=P]            core split between concurrent
//                                           simulations and threads inside
//                                           one: manifest | serial-jobs-wide
//                                           | threaded-jobs-narrow | auto
//                                           (wall-clock only; the aggregate
//                                           is bit-identical under every
//                                           policy)
//       [--corpus=DIR]                      binary graph cache directory
//       [--cache=DIR]                       persistent result cache: jobs
//                                           whose content address is cached
//                                           are served without simulating,
//                                           and freshly executed results
//                                           are stored; the aggregate stays
//                                           byte-identical either way
//       [--cache-max-entries=N]             FIFO-evict past N entries
//       [--server=SOCK]                     thin-client mode: send the
//                                           manifest to a cpt_serve daemon
//                                           on SOCK and relay its byte-
//                                           identical aggregate; only
//                                           --out/--csv/--stream/--priority/
//                                           --sim-threads-policy/--quiet
//                                           combine with it
//       [--priority=N]                      server queue priority (higher
//                                           runs sooner; default 0)
//       [--out=FILE]                        aggregate JSON (deterministic:
//                                           bit-identical at every --threads)
//       [--csv=FILE]                        aggregate CSV
//       [--timing-out=FILE]                 wall-clock report (nondeterministic)
//       [--stream=FILE]                     streaming mode: JSONL aggregate
//                                           (cpt_batch_aggregate_stream_v1),
//                                           each sweep cell flushed as it
//                                           completes; per-job results are
//                                           never held in memory
//       [--journal=FILE]                    append a checksummed JSONL record
//                                           per retired job (schema
//                                           cpt_batch_journal_v1); implies the
//                                           streaming execution path
//       [--resume]                          replay --journal, skip completed
//                                           jobs, re-run only the remainder;
//                                           the final aggregate is
//                                           bit-identical to an uninterrupted
//                                           run at any --threads
//       [--fault-plan=SPEC]                 deterministic fault injection
//                                           (also via CPT_FAULT_PLAN env; the
//                                           flag wins) -- see
//                                           scenario/faultinject.h
//       [--max-retries=N]                   transient-failure retry budget
//                                           per job (default 2)
//       [--trace=FILE]                      structured span stream
//                                           (cpt_trace_v1 JSONL; every
//                                           non-timestamp field is
//                                           bit-identical at every
//                                           --threads -- see cpt_trace
//                                           diff)
//       [--metrics=FILE]                    counter/gauge/histogram
//                                           snapshot (cpt_metrics_v1; the
//                                           deterministic sections diff
//                                           like aggregates, the
//                                           "runtime" section does not)
//       [--progress]                        ~1 Hz stderr heartbeat (jobs
//                                           done/total, rate, ETA, corpus
//                                           hits, retries); stderr only,
//                                           never perturbs aggregates or
//                                           journal bytes
//       [--quiet]                           suppress the summary table
//   cpt_batch materialize <manifest.json>   resolve every unique instance
//       --corpus=DIR [--threads=N]          into the corpus store without
//                                           running any jobs: streaming
//                                           generators write v3 files
//                                           directly (no resident graph),
//                                           so peak RSS stays bounded by
//                                           one instance regardless of
//                                           sweep size
//   cpt_batch gen <scenario> [k=v ...]      write one instance as an edge
//       [--base-seed=S] [--index=I]         list to stdout (graph/io.h format)
//
// Exit status:
//    0  every job ran (timed-out jobs are reported, not fatal)
//    1  hard failure: bad usage/manifest, unwritable output, failed jobs
//       (the aggregate covers only the jobs that ran), fingerprint mismatch
//    2  usage error
//   75  resumable interruption (EX_TEMPFAIL): SIGINT/SIGTERM drained the
//       in-flight jobs and flushed the journal + partial aggregate, or the
//       journal itself could not be written -- re-run with --resume
//  137  injected hard kill (fault plan `exit` action; mimics SIGKILL)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/io.h"
#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/faultinject.h"
#include "scenario/journal.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"
#include "scenario/result_cache.h"
#include "util/trace.h"

using namespace cpt;
using namespace cpt::scenario;

namespace {

// EX_TEMPFAIL: the run was interrupted but left a resumable journal.
constexpr int kExitResumable = 75;

std::atomic<bool> g_cancel{false};

extern "C" void on_cancel_signal(int) {
  // Relaxed store on a lock-free atomic: async-signal-safe. The engine's
  // streaming wait polls this flag (a handler cannot notify a condvar).
  g_cancel.store(true, std::memory_order_relaxed);
}

// --progress heartbeat: one stderr line per second with jobs done/total,
// throughput, ETA, corpus hits and retries, read from the engine's relaxed
// ProgressCounters. Writes stderr only -- by construction it cannot touch
// aggregates, journal bytes or the trace stream. On a tty the line
// redraws in place; piped, it prints one line per tick.
class ProgressMeter {
 public:
  explicit ProgressMeter(const ProgressCounters* counters)
      : counters_(counters),
        tty_(isatty(fileno(stderr)) != 0),
        start_(std::chrono::steady_clock::now()),
        thread_([this] { loop(); }) {}

  ~ProgressMeter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    print(/*final=*/true);
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::seconds(1));
      if (stop_) return;
      lock.unlock();
      print(/*final=*/false);
      lock.lock();
    }
  }

  void print(bool final) {
    const auto relaxed = std::memory_order_relaxed;
    const std::uint64_t total = counters_->jobs_total.load(relaxed);
    const std::uint64_t done = counters_->jobs_done.load(relaxed);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
    char eta[32] = "--";
    if (rate > 0 && total > done) {
      std::snprintf(eta, sizeof eta, "%.0fs",
                    static_cast<double>(total - done) / rate);
    }
    std::fprintf(stderr,
                 "%s# progress: %" PRIu64 "/%" PRIu64 " jobs  %.1f/s  eta %s"
                 "  corpus %" PRIu64 " hit / %" PRIu64 " gen  retries %" PRIu64
                 "%s",
                 tty_ && !first_ ? "\r" : "", done, total, rate, eta,
                 counters_->corpus_hits.load(relaxed),
                 counters_->corpus_generated.load(relaxed),
                 counters_->retries.load(relaxed),
                 tty_ && !final ? "  " : "\n");
    std::fflush(stderr);
    first_ = false;
  }

  const ProgressCounters* counters_;
  const bool tty_;
  const std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool first_ = true;
  std::thread thread_;
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cpt_batch list\n"
               "  cpt_batch expand <manifest.json>\n"
               "  cpt_batch run <manifest.json> [--threads=N]"
               " [--sim-threads-policy=P] [--corpus=DIR]\n"
               "                [--cache=DIR] [--cache-max-entries=N]"
               " [--server=SOCK] [--priority=N]\n"
               "                [--out=FILE] [--csv=FILE] [--timing-out=FILE]"
               " [--stream=FILE]\n"
               "                [--journal=FILE] [--resume]"
               " [--fault-plan=SPEC]\n"
               "                [--max-retries=N] [--trace=FILE]"
               " [--metrics=FILE] [--progress] [--quiet]\n"
               "  cpt_batch materialize <manifest.json> --corpus=DIR"
               " [--threads=N] [--quiet]\n"
               "  cpt_batch gen <scenario> [key=value ...] [--base-seed=S]"
               " [--index=I]\n");
  return 2;
}

int cmd_list() {
  std::printf("graph families (scenario registry):\n");
  for (const FamilyInfo& f : scenario_families()) {
    std::printf("  %-20s %s%s\n", f.name, f.params_help,
                f.randomized ? "  [seeded]" : "");
  }
  std::printf("\nperturbations (eps-far wrappers, \"perturb\" block):\n");
  for (const PerturbInfo& p : scenario_perturbations()) {
    std::printf("  %-20s %s\n", p.name, p.params_help);
  }
  std::printf("\npresets (named scenarios; examples share these):\n");
  for (const PresetInfo& p : scenario_presets()) {
    std::printf("  %-20s %s\n", p.name, p.params_help);
  }
  std::printf("\ntesters: planarity | cycle_free | bipartite\n");
  return 0;
}

int cmd_expand(const std::string& path) {
  Manifest manifest;
  std::string error;
  if (!load_manifest_file(path, &manifest, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::vector<Job> jobs = expand_manifest(manifest);
  std::printf("# manifest %s: %zu jobs, base_seed=%" PRIu64 "\n",
              manifest.name.c_str(), jobs.size(), manifest.base_seed);
  std::printf("%-6s %-52s %-10s %-7s %-5s %-20s\n", "job", "instance",
              "tester", "eps", "trial", "seeds(instance/tester)");
  for (const Job& job : jobs) {
    char seeds[48];
    std::snprintf(seeds, sizeof seeds, "%016" PRIx64 "/%016" PRIx64,
                  job.instance.seed, job.tester_seed);
    std::printf("%-6u %-52s %-10s %-7.3f %-5u %s\n", job.job_index,
                job.instance.label().c_str(), tester_name(job.tester),
                job.epsilon, job.trial, seeds);
  }
  return 0;
}

int cmd_run(const std::string& path, BatchOptions options,
            const std::string& out_path, const std::string& csv_path,
            const std::string& timing_path, const std::string& stream_path,
            const std::string& journal_path, const std::string& trace_path,
            const std::string& metrics_path, bool progress, bool resume,
            bool quiet) {
  Manifest manifest;
  std::string error;
  if (!load_manifest_file(path, &manifest, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // SIGINT/SIGTERM drain in-flight jobs, flush the journal and the partial
  // aggregate, and exit kExitResumable. Installed only for `run`: the other
  // subcommands have nothing to flush.
  std::signal(SIGINT, on_cancel_signal);
  std::signal(SIGTERM, on_cancel_signal);
  options.cancel = &g_cancel;

  std::unique_ptr<util::TraceSession> session;
  util::TraceBuffer* cli_track = nullptr;
  if (!trace_path.empty() || !metrics_path.empty()) {
    if (!util::kTraceCompiled) {
      std::fprintf(stderr,
                   "error: tracing is compiled out of this build "
                   "(CPT_TRACE_DISABLED); --trace/--metrics unavailable\n");
      return 2;
    }
    session = std::make_unique<util::TraceSession>();
    options.trace = session.get();
    // CLI-side events (journal lifecycle) get the highest track id so the
    // engine's deterministic batch/instance/job layout stays untouched.
    cli_track = session->make_track(~std::uint64_t{0}, "cli");
  }
  ProgressCounters progress_counters;
  std::unique_ptr<ProgressMeter> meter;
  if (progress) {
    options.progress = &progress_counters;
    meter = std::make_unique<ProgressMeter>(&progress_counters);
  }

  BatchResult batch;
  std::vector<CellAggregate> cells;
  std::vector<std::string> job_errors;  // first few, for the failure report
  bool journal_ok = true;
  if (stream_path.empty() && journal_path.empty()) {
    batch = run_batch(manifest, options);
    cells = aggregate_cells(batch);
    for (std::size_t j = 0; j < batch.results.size(); ++j) {
      if (batch.results[j].failed && job_errors.size() < 3) {
        job_errors.push_back(batch.jobs[j].instance.label() + ": " +
                             batch.results[j].error);
      }
    }
  } else {
    // Streaming: per-job results go straight into the aggregator (and each
    // finished cell straight to disk); nothing per-job is retained. The
    // aggregator's expected cell sizes come from our own expansion;
    // run_batch re-expands internally -- expansion is pure and golden-
    // pinned (scenario_test.cc), so both lists are identical by contract,
    // and finish() flushes defensively even if they ever were not.
    // --journal rides this path too (it needs the in-order sink), with or
    // without a stream file.
    std::FILE* stream = nullptr;
    if (!stream_path.empty()) {
      stream = std::fopen(stream_path.c_str(), "w");
      if (stream == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", stream_path.c_str());
        return 1;
      }
    }
    bool write_ok = true;
    std::uint64_t emit_ordinal = 0;  // schedule-independent fault key: the
                                     // sink runs in job-index order
    const auto emit = [&](const std::string& chunk) {
      if (stream == nullptr) return;
      const FaultAction fault =
          fault_check(FaultSite::kStreamWrite, emit_ordinal++);
      if (fault != FaultAction::kNone) {
        // Tear the chunk mid-write; the sink must not throw through the
        // worker pool, so every injected action degrades to a half write
        // (exit additionally kills the process, like a crash would).
        std::fwrite(chunk.data(), 1, chunk.size() / 2, stream);
        std::fflush(stream);
        if (fault == FaultAction::kExit) ::_exit(kFaultExitCode);
        write_ok = false;
        return;
      }
      write_ok = write_ok &&
                 std::fwrite(chunk.data(), 1, chunk.size(), stream) ==
                     chunk.size() &&
                 std::fflush(stream) == 0;  // a killed sweep keeps every
                                            // finished cell
    };
    const std::vector<Job> jobs = expand_manifest(manifest);

    JournalWriter journal;
    JournalReplay replay;
    if (!journal_path.empty()) {
      bool fresh = true;
      if (resume) {
        std::FILE* probe = std::fopen(journal_path.c_str(), "rb");
        if (probe != nullptr) {
          std::fclose(probe);
          std::string jerr;
          if (!load_journal(journal_path, &replay, &jerr)) {
            std::fprintf(stderr, "error: cannot resume from %s: %s\n",
                         journal_path.c_str(), jerr.c_str());
            return 1;
          }
          const std::uint64_t want = journal_fingerprint(manifest, jobs);
          if (replay.fingerprint != want ||
              replay.jobs != static_cast<std::uint64_t>(jobs.size())) {
            std::fprintf(stderr,
                         "error: journal %s was written for a different job "
                         "list (fingerprint %016" PRIx64 ", want %016" PRIx64
                         "; %" PRIu64 " jobs, want %zu); refusing to resume\n",
                         journal_path.c_str(), replay.fingerprint, want,
                         replay.jobs, jobs.size());
            return 1;
          }
          if (replay.dropped_bytes > 0 && !quiet) {
            std::fprintf(stderr,
                         "# journal: dropped %zu torn tail byte(s) from %s\n",
                         replay.dropped_bytes, journal_path.c_str());
          }
          if (!journal.open_resume(journal_path, replay.valid_bytes)) {
            std::fprintf(stderr, "error: cannot append to journal %s\n",
                         journal_path.c_str());
            return 1;
          }
          options.completed = &replay.completed;
          fresh = false;
          if (cli_track != nullptr) {
            cli_track->instant(
                "journal/resume",
                util::TraceArgs().add(
                    "completed",
                    static_cast<std::uint64_t>(replay.completed.size())));
          }
        }
        // --resume with no journal file yet is a fresh start: the
        // "retry until exit 0" loop shape needs the first attempt and
        // every later one to be the same command line.
      }
      if (fresh && !journal.create(journal_path, manifest, jobs)) {
        std::fprintf(stderr, "error: cannot write journal %s\n",
                     journal_path.c_str());
        return 1;
      }
      if (fresh && cli_track != nullptr) {
        cli_track->instant(
            "journal/create",
            util::TraceArgs().add("jobs",
                                  static_cast<std::uint64_t>(jobs.size())));
      }
    }

    emit(render_stream_header(manifest, jobs.size()));
    StreamingAggregator agg(jobs);
    agg.set_cell_sink(
        [&](const CellAggregate& cell) { emit(render_stream_cell(cell)); });
    batch = run_batch(
        manifest, options, [&](const Job& job, const JobResult& result) {
          if (result.failed && job_errors.size() < 3) {
            job_errors.push_back(job.instance.label() + ": " + result.error);
          }
          // Journal only freshly executed jobs: replayed ones are already
          // in the intact prefix we appended after.
          if (journal.ok() &&
              (options.completed == nullptr ||
               options.completed->count(job.job_index) == 0)) {
            if (!journal.append(job, result)) journal_ok = false;
            if (cli_track != nullptr) {
              // The sink runs serialized and in job-index order, so these
              // instants are deterministic like the journal bytes they
              // mirror.
              cli_track->instant("journal/append",
                                 util::TraceArgs().add("job", job.job_index));
            }
          }
          agg.consume(job, result);
        });
    // The journal's buffered tail is flushed and fsynced *before* the
    // footer and aggregate writes: a crash while emitting the footer (the
    // classic kStreamWrite exit fault) must not lose the final partial
    // record group that the stream file's footer already implies retired.
    journal_ok = journal.finish() && journal_ok;
    cells = agg.finish();
    emit(render_stream_footer(batch, cells.size()));
    journal_ok = journal.close() && journal_ok;
    if (stream != nullptr) {
      write_ok = (std::fclose(stream) == 0) && write_ok;
      if (!write_ok) {
        std::fprintf(stderr, "error: cannot write %s\n", stream_path.c_str());
        if (!batch.cancelled) return 1;
      }
    }
  }

  meter.reset();  // joins the heartbeat thread; prints the final line

  if (!quiet) {
    std::printf("# %s: %zu jobs over %" PRIu64
                " instances, %u threads, %.2fs wall\n",
                manifest.name.c_str(), batch.jobs.size(),
                batch.corpus.unique_instances, batch.threads_used,
                batch.wall_seconds);
    std::printf("# corpus: %" PRIu64 " generated, %" PRIu64 " disk hits%s%s\n",
                batch.corpus.generated, batch.corpus.disk_hits,
                options.corpus_dir.empty() ? "" : " in ",
                options.corpus_dir.c_str());
    if (options.result_cache != nullptr) {
      std::printf("# cache: %u of %zu jobs from result cache in %s\n",
                  batch.cache_hit_jobs, batch.jobs.size(),
                  options.result_cache->dir().c_str());
    }
    if (batch.retried_jobs > 0 || batch.timed_out_jobs > 0 ||
        batch.resumed_jobs > 0) {
      std::printf("# degraded: %u job(s) retried (%u retries), %u timed out "
                  "at the round budget, %u resumed from journal\n",
                  batch.retried_jobs, batch.total_retries,
                  batch.timed_out_jobs, batch.resumed_jobs);
    }
    std::printf("%-44s %-10s %-6s %-10s %-12s %-12s\n", "scenario", "tester",
                "eps", "detect", "rounds p50", "messages p50");
    for (const CellAggregate& cell : cells) {
      char detect[24];
      std::snprintf(detect, sizeof detect, "%u/%u", cell.rejects, cell.jobs);
      std::printf("%-44s %-10s %-6.3f %-10s %-12" PRIu64 " %-12" PRIu64 "\n",
                  cell.scenario.c_str(), cell.tester.c_str(), cell.epsilon,
                  detect, cell.rounds.p50, cell.messages.p50);
    }
  }
  if (!out_path.empty() &&
      !write_text_file(out_path,
                       render_aggregate_json(manifest, batch, cells))) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!csv_path.empty() &&
      !write_text_file(csv_path, render_aggregate_csv(cells))) {
    std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  if (!timing_path.empty() &&
      !write_text_file(
          timing_path,
          render_timing_json(manifest, batch, cells,
                             session ? &session->metrics() : nullptr))) {
    std::fprintf(stderr, "error: cannot write %s\n", timing_path.c_str());
    return 1;
  }
  // Trace/metrics flush happens before the cancelled check on purpose: the
  // SIGINT/SIGTERM drain path (exit 75) keeps the snapshot alongside the
  // partial aggregate, so interrupted runs stay diagnosable.
  if (session != nullptr && !trace_path.empty() &&
      !write_text_file(trace_path, session->render_jsonl(manifest.name))) {
    std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  if (session != nullptr && !metrics_path.empty() &&
      !write_text_file(metrics_path,
                       session->metrics().render_json(manifest.name))) {
    std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
    return 1;
  }
  if (batch.cancelled) {
    std::fprintf(stderr,
                 "interrupted: %u of %zu jobs completed; %s and the partial "
                 "aggregate are flushed -- re-run with --resume\n",
                 batch.completed_jobs, batch.jobs.size(),
                 journal_path.empty() ? "finished cells" : "the journal");
    return kExitResumable;
  }
  if (!journal_ok) {
    std::fprintf(stderr,
                 "error: journal %s could not be fully written; its intact "
                 "prefix is still resumable\n",
                 journal_path.c_str());
    return kExitResumable;
  }
  if (batch.failed_jobs > 0) {
    std::fprintf(stderr,
                 "error: %u of %zu jobs failed; the aggregate covers only "
                 "the jobs that ran\n",
                 batch.failed_jobs, batch.jobs.size());
    for (const std::string& e : job_errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    return 1;
  }
  return 0;
}

int cmd_materialize(const std::string& path, const BatchOptions& options,
                    bool quiet) {
  if (options.corpus_dir.empty()) {
    std::fprintf(stderr, "error: materialize requires --corpus=DIR\n");
    return 2;
  }
  Manifest manifest;
  std::string error;
  if (!load_manifest_file(path, &manifest, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const MaterializeResult r = materialize_manifest(manifest, options);
  if (!quiet) {
    std::printf("# %s: %" PRIu64 " unique instance(s) into %s: %" PRIu64
                " generated, %" PRIu64 " disk hit(s), %" PRIu64
                " corrupt file(s) replaced, %.2fs wall\n",
                manifest.name.c_str(), r.corpus.unique_instances,
                options.corpus_dir.c_str(), r.corpus.generated,
                r.corpus.disk_hits, r.corpus.corrupt_files, r.wall_seconds);
  }
  if (r.failed_instances > 0) {
    std::fprintf(stderr, "error: %u instance(s) failed to materialize\n",
                 r.failed_instances);
    for (const std::string& e : r.errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    return 1;
  }
  return 0;
}

// ---- Thin client for a cpt_serve daemon (`run --server=SOCK`) ------------

bool send_all_fd(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

// One '\n'-terminated line (stripped); false on EOF/error.
bool recv_line(int fd, std::string* buf, std::string* line) {
  while (true) {
    const std::size_t pos = buf->find('\n');
    if (pos != std::string::npos) {
      line->assign(*buf, 0, pos);
      buf->erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf->append(chunk, static_cast<std::size_t>(n));
  }
}

// Sends the manifest to the daemon and relays its response: the streamed
// cpt_batch_aggregate_stream_v1 lines go to --stream verbatim, and the
// terminal "done" line carries the full aggregate/CSV documents (escaped)
// for --out/--csv -- byte-identical to a local run because the server
// renders them through the exact same code path. The exit code mirrors
// what a local run of the same manifest would return (0 ok, 1 failed
// jobs); connection/protocol failures are 1.
int cmd_run_server(const std::string& manifest_path,
                   const std::string& socket_path, std::uint64_t priority,
                   const char* policy_name, const std::string& out_path,
                   const std::string& csv_path, const std::string& stream_path,
                   bool quiet) {
  std::string manifest_text;
  if (!read_text_file(manifest_path, &manifest_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", manifest_path.c_str());
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "error: socket path too long: %s\n",
                 socket_path.c_str());
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);

  std::string req = "{\"op\": \"run\", \"manifest_text\": ";
  json_append_escaped(req, manifest_text);
  req += ", \"priority\": " + json_render_uint(priority);
  if (policy_name != nullptr) {
    req += ", \"sim_threads_policy\": ";
    json_append_escaped(req, policy_name);
  }
  req += "}\n";
  if (!send_all_fd(fd, req)) {
    std::fprintf(stderr, "error: cannot write to %s\n", socket_path.c_str());
    ::close(fd);
    return 1;
  }

  std::FILE* stream = nullptr;
  if (!stream_path.empty()) {
    stream = std::fopen(stream_path.c_str(), "w");
    if (stream == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", stream_path.c_str());
      ::close(fd);
      return 1;
    }
  }
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    if (stream != nullptr) std::fclose(stream);
    ::close(fd);
    return 1;
  };

  std::string buf, line;
  while (true) {
    if (!recv_line(fd, &buf, &line)) {
      return fail("server closed the connection before finishing");
    }
    JsonValue msg;
    std::string jerr;
    if (!JsonValue::parse(line, &msg, &jerr) || !msg.is_object()) {
      return fail("bad server response: " + jerr);
    }
    if (const JsonValue* ok = msg.find("ok")) {
      if (ok->is_bool() && !ok->as_bool()) {
        const JsonValue* e = msg.find("error");
        return fail(e != nullptr && e->is_string() ? e->as_string()
                                                   : "server error");
      }
      continue;  // the enqueue ack
    }
    const JsonValue* done = msg.find("done");
    if (done == nullptr) {
      // A verbatim cpt_batch_aggregate_stream_v1 line.
      if (stream != nullptr) {
        std::fprintf(stream, "%s\n", line.c_str());
        std::fflush(stream);
      }
      continue;
    }
    // Terminal line: unpack totals and the full documents.
    const auto get_u64 = [&](const char* key) -> std::uint64_t {
      const JsonValue* v = msg.find(key);
      return v != nullptr && v->is_integer()
                 ? static_cast<std::uint64_t>(v->as_int64())
                 : 0;
    };
    const std::uint64_t jobs = get_u64("jobs");
    const std::uint64_t failed = get_u64("failed_jobs");
    const std::uint64_t timed_out = get_u64("timed_out_jobs");
    const std::uint64_t cache_hits = get_u64("cache_hit_jobs");
    const int exit_code = static_cast<int>(get_u64("exit_code"));
    const JsonValue* aggregate = msg.find("aggregate");
    const JsonValue* csv = msg.find("csv");
    if (stream != nullptr && std::fclose(stream) != 0) {
      stream = nullptr;
      return fail("cannot write " + stream_path);
    }
    stream = nullptr;
    if (!out_path.empty()) {
      if (aggregate == nullptr || !aggregate->is_string() ||
          !write_text_file(out_path, aggregate->as_string())) {
        return fail("cannot write " + out_path);
      }
    }
    if (!csv_path.empty()) {
      if (csv == nullptr || !csv->is_string() ||
          !write_text_file(csv_path, csv->as_string())) {
        return fail("cannot write " + csv_path);
      }
    }
    if (!quiet) {
      std::printf("# serve: %" PRIu64 " of %" PRIu64
                  " jobs from result cache (via %s)\n",
                  cache_hits, jobs, socket_path.c_str());
      if (timed_out > 0) {
        std::printf("# serve: %" PRIu64 " job(s) timed out at the round "
                    "budget\n",
                    timed_out);
      }
    }
    if (failed > 0) {
      std::fprintf(stderr,
                   "error: %" PRIu64 " of %" PRIu64
                   " jobs failed on the server; the aggregate covers only "
                   "the jobs that ran\n",
                   failed, jobs);
    }
    ::close(fd);
    return exit_code;
  }
}

// Strict unsigned-integer flag parsing. The old bare atoi silently mapped
// "--threads=abc" to 0 and overflowed large values into garbage; here
// anything but a plain decimal number in [0, max] is a usage error (exit
// 2). "--threads=0" stays valid: 0 means "resolve from the environment"
// (and resolves to the serial fast path when CPT_TEST_THREADS is unset).
bool parse_uint_flag(const char* flag, const char* text, std::uint64_t max,
                     std::uint64_t* out) {
  if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
    // Also rejects "" and strtoull's surprising accepts: leading
    // whitespace, "+", and "-1" (which would wrap to 2^64-1).
    std::fprintf(stderr, "error: %s expects an unsigned integer, got \"%s\"\n",
                 flag, text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (*end != '\0' || errno == ERANGE || v > max) {
    std::fprintf(stderr,
                 "error: %s expects an unsigned integer <= %" PRIu64
                 ", got \"%s\"\n",
                 flag, max, text);
    return false;
  }
  *out = v;
  return true;
}

// key=value -> typed ParamValue (int, else double, else string).
bool parse_kv(const std::string& arg, ScenarioParams* params) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string key = arg.substr(0, eq);
  const std::string value = arg.substr(eq + 1);
  char* end = nullptr;
  const long long i = std::strtoll(value.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !value.empty()) {
    params->set_int(key, i);
    return true;
  }
  const double d = std::strtod(value.c_str(), &end);
  if (end != nullptr && *end == '\0' && !value.empty()) {
    params->set_double(key, d);
    return true;
  }
  params->set_string(key, value);
  return true;
}

int cmd_gen(const std::vector<std::string>& args, std::uint64_t base_seed,
            std::uint64_t index) {
  if (args.empty()) return usage();
  const std::string& name = args[0];
  if (!is_known_scenario(name)) {
    std::fprintf(stderr, "error: unknown scenario \"%s\" (see cpt_batch list)\n",
                 name.c_str());
    return 1;
  }
  ScenarioParams params;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (!parse_kv(args[i], &params)) {
      std::fprintf(stderr, "error: expected key=value, got \"%s\"\n",
                   args[i].c_str());
      return 1;
    }
  }
  const ScenarioInstance inst =
      resolve_scenario(name, params, base_seed, index);
  const Graph g = build_instance(inst);
  std::printf("# %s  hash=%016" PRIx64 "\n", inst.label_with_seed().c_str(),
              inst.hash());
  write_edge_list(g, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BatchOptions options;
  std::string out_path, csv_path, timing_path, stream_path, journal_path;
  std::string trace_path, metrics_path;
  std::string fault_spec;
  std::string server_path, cache_dir;
  std::uint64_t cache_max_entries = 0, priority = 0;
  bool have_fault_spec = false, fault_flag = false, have_policy = false;
  bool have_threads = false;
  std::uint64_t base_seed = 1, index = 0;
  bool quiet = false, resume = false, progress = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::uint64_t parsed = 0;
    if (std::strncmp(a, "--threads=", 10) == 0) {
      if (!parse_uint_flag("--threads", a + 10, 1u << 16, &parsed)) return 2;
      options.threads = static_cast<unsigned>(parsed);
      have_threads = true;
    } else if (std::strncmp(a, "--sim-threads-policy=", 21) == 0) {
      // Same strictness as the numeric flags: an unknown policy name is a
      // usage error (exit 2) with the accepted values spelled out, never a
      // silent fallback.
      if (!parse_sim_threads_policy(a + 21, &options.sim_threads_policy)) {
        std::fprintf(stderr,
                     "error: --sim-threads-policy expects one of manifest, "
                     "serial-jobs-wide, threaded-jobs-narrow, auto; got "
                     "\"%s\"\n",
                     a + 21);
        return 2;
      }
      have_policy = true;
    } else if (std::strncmp(a, "--corpus=", 9) == 0) {
      options.corpus_dir = a + 9;
    } else if (std::strncmp(a, "--cache=", 8) == 0) {
      cache_dir = a + 8;
    } else if (std::strncmp(a, "--cache-max-entries=", 20) == 0) {
      if (!parse_uint_flag("--cache-max-entries", a + 20, UINT64_MAX,
                           &parsed)) {
        return 2;
      }
      cache_max_entries = parsed;
    } else if (std::strncmp(a, "--server=", 9) == 0) {
      server_path = a + 9;
    } else if (std::strncmp(a, "--priority=", 11) == 0) {
      if (!parse_uint_flag("--priority", a + 11, INT64_MAX, &parsed)) return 2;
      priority = parsed;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      out_path = a + 6;
    } else if (std::strncmp(a, "--csv=", 6) == 0) {
      csv_path = a + 6;
    } else if (std::strncmp(a, "--timing-out=", 13) == 0) {
      timing_path = a + 13;
    } else if (std::strncmp(a, "--stream=", 9) == 0) {
      stream_path = a + 9;
    } else if (std::strncmp(a, "--journal=", 10) == 0) {
      journal_path = a + 10;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      trace_path = a + 8;
    } else if (std::strncmp(a, "--metrics=", 10) == 0) {
      metrics_path = a + 10;
    } else if (std::strcmp(a, "--progress") == 0) {
      progress = true;
    } else if (std::strcmp(a, "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(a, "--fault-plan=", 13) == 0) {
      fault_spec = a + 13;
      have_fault_spec = true;
      fault_flag = true;
    } else if (std::strncmp(a, "--max-retries=", 14) == 0) {
      if (!parse_uint_flag("--max-retries", a + 14, 1000, &parsed)) return 2;
      options.max_retries = static_cast<unsigned>(parsed);
    } else if (std::strncmp(a, "--base-seed=", 12) == 0) {
      if (!parse_uint_flag("--base-seed", a + 12, UINT64_MAX, &parsed)) {
        return 2;
      }
      base_seed = parsed;
    } else if (std::strncmp(a, "--index=", 8) == 0) {
      if (!parse_uint_flag("--index", a + 8, UINT64_MAX, &parsed)) return 2;
      index = parsed;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strncmp(a, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return usage();
    } else {
      args.emplace_back(a);
    }
  }
  if (!have_fault_spec) {
    // Env fallback lets the CI harness inject faults into an otherwise
    // unmodified command line; an explicit --fault-plan wins.
    const char* env = std::getenv("CPT_FAULT_PLAN");
    if (env != nullptr && *env != '\0') {
      fault_spec = env;
      have_fault_spec = true;
    }
  }
  if (have_fault_spec) {
    auto plan = std::make_shared<FaultPlan>();
    std::string plan_error;
    if (!FaultPlan::parse(fault_spec, plan.get(), &plan_error)) {
      std::fprintf(stderr, "error: bad fault plan: %s\n", plan_error.c_str());
      return usage();
    }
    install_fault_plan(std::move(plan));
  }
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "error: --resume requires --journal=FILE\n");
    return usage();
  }
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  if (!server_path.empty()) {
    // Thin-client mode: the daemon owns the pool, the corpus and the
    // result cache, so every local-execution flag is a contradiction, not
    // something to silently ignore.
    if (cmd != "run" || args.size() != 2) {
      std::fprintf(stderr, "error: --server only applies to `run`\n");
      return 2;
    }
    if (have_threads || !options.corpus_dir.empty() ||
        !cache_dir.empty() || !journal_path.empty() || resume || fault_flag ||
        !trace_path.empty() || !metrics_path.empty() || !timing_path.empty() ||
        progress) {
      std::fprintf(stderr,
                   "error: --server combines only with --out/--csv/--stream/"
                   "--priority/--sim-threads-policy/--quiet\n");
      return 2;
    }
    return cmd_run_server(
        args[1], server_path, priority,
        have_policy ? sim_threads_policy_name(options.sim_threads_policy)
                    : nullptr,
        out_path, csv_path, stream_path, quiet);
  }
  if (cmd == "list") return cmd_list();
  if (cmd == "expand" && args.size() == 2) return cmd_expand(args[1]);
  if (cmd == "run" && args.size() == 2) {
    std::optional<ResultCache> cache;
    if (!cache_dir.empty()) {
      cache.emplace(cache_dir, cache_max_entries);
      options.result_cache = &*cache;
    }
    return cmd_run(args[1], options, out_path, csv_path, timing_path,
                   stream_path, journal_path, trace_path, metrics_path,
                   progress, resume, quiet);
  }
  if (cmd == "materialize" && args.size() == 2) {
    return cmd_materialize(args[1], options, quiet);
  }
  if (cmd == "gen") {
    return cmd_gen({args.begin() + 1, args.end()}, base_seed, index);
  }
  return usage();
}
