// Batch service daemon: run manifests on request over a local Unix-domain
// socket, with a shared worker pool and a persistent content-addressed
// result cache (DESIGN.md section 10 has the wire protocol).
//
//   cpt_serve --socket=PATH                  listen on PATH (required)
//       [--corpus=DIR]                       binary graph cache directory
//       [--cache=DIR]                        persistent result cache; repeat
//                                            sweeps are served without
//                                            re-simulating (aggregates stay
//                                            byte-identical)
//       [--cache-max-entries=N]              FIFO-evict the oldest entries
//                                            past N (0 = unbounded)
//       [--threads=N]                        shared pool width (0 = env)
//       [--sim-threads-policy=P]             default core split; a request
//                                            may override per run
//       [--max-retries=N]                    transient retry budget per job
//       [--metrics-out=FILE]                 write the serve/ metrics
//                                            snapshot (cpt_metrics_v1) on
//                                            shutdown
//       [--quiet]                            no startup/shutdown banner
//
// Clients: `cpt_batch run manifest.json --server=PATH` (thin client), or
// any program speaking the line protocol. SIGINT/SIGTERM (or a client's
// shutdown op) stop the daemon: queued runs drain, the socket is
// unlinked, the metrics snapshot is written.
//
// Exit status: 0 clean shutdown, 1 startup/write failure, 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/engine.h"
#include "scenario/json.h"
#include "scenario/service.h"

using namespace cpt;
using namespace cpt::scenario;

namespace {

Service* g_service = nullptr;

extern "C" void on_stop_signal(int) {
  // request_stop only flips an atomic and shutdown(2)s the listener --
  // both async-signal-safe.
  if (g_service != nullptr) g_service->request_stop();
}

int usage() {
  std::fprintf(stderr,
               "usage: cpt_serve --socket=PATH [--corpus=DIR] [--cache=DIR]\n"
               "                 [--cache-max-entries=N] [--threads=N]\n"
               "                 [--sim-threads-policy=P] [--max-retries=N]\n"
               "                 [--metrics-out=FILE] [--quiet]\n");
  return 2;
}

bool parse_uint(const char* flag, const char* text, std::uint64_t* out) {
  char* end = nullptr;
  if (*text == '\0' || *text == '-') {
    std::fprintf(stderr, "error: %s expects an unsigned integer\n", flag);
    return false;
  }
  *out = std::strtoull(text, &end, 10);
  if (*end != '\0') {
    std::fprintf(stderr, "error: %s expects an unsigned integer, got \"%s\"\n",
                 flag, text);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions options;
  std::string metrics_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::uint64_t parsed = 0;
    if (std::strncmp(a, "--socket=", 9) == 0) {
      options.socket_path = a + 9;
    } else if (std::strncmp(a, "--corpus=", 9) == 0) {
      options.corpus_dir = a + 9;
    } else if (std::strncmp(a, "--cache=", 8) == 0) {
      options.cache_dir = a + 8;
    } else if (std::strncmp(a, "--cache-max-entries=", 20) == 0) {
      if (!parse_uint("--cache-max-entries", a + 20, &parsed)) return 2;
      options.cache_max_entries = parsed;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      if (!parse_uint("--threads", a + 10, &parsed) || parsed > (1u << 16)) {
        return 2;
      }
      options.threads = static_cast<unsigned>(parsed);
    } else if (std::strncmp(a, "--sim-threads-policy=", 21) == 0) {
      if (!parse_sim_threads_policy(a + 21, &options.sim_threads_policy)) {
        std::fprintf(stderr,
                     "error: --sim-threads-policy expects one of manifest, "
                     "serial-jobs-wide, threaded-jobs-narrow, auto\n");
        return 2;
      }
    } else if (std::strncmp(a, "--max-retries=", 14) == 0) {
      if (!parse_uint("--max-retries", a + 14, &parsed) || parsed > 1000) {
        return 2;
      }
      options.max_retries = static_cast<unsigned>(parsed);
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      metrics_path = a + 14;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return usage();
    }
  }
  if (options.socket_path.empty()) return usage();

  Service service(std::move(options));
  std::string error;
  if (!service.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_service = &service;
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!quiet) {
    std::fprintf(stderr, "# cpt_serve: listening\n");
    std::fflush(stderr);
  }
  service.serve();
  g_service = nullptr;

  if (!metrics_path.empty() &&
      !write_text_file(metrics_path,
                       service.metrics().render_json("cpt_serve"))) {
    std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
    return 1;
  }
  if (!quiet) std::fprintf(stderr, "# cpt_serve: stopped\n");
  return 0;
}
