// Metamorphic invariant harness (ISSUE 5): drives randomized sweeps
// straight from the scenario registry and asserts the paper-level
// guarantees (Levi-Medina-Ron, PODC 2018) and the engine-level
// determinism contracts on every job, instead of spot-checking hand-
// picked graphs:
//
//   (a) one-sidedness  -- no guaranteed-planar instance is ever rejected,
//       at any eps / seed / thread count (Theorem 1's zero-error side);
//   (b) detection monotonicity -- rejection rates are non-decreasing in
//       perturbation strength (fixed base graph, the registry's seed
//       contract) and non-increasing in epsilon (the frontier manifest);
//   (c) relabeling invariance -- a vertex-permuted instance yields the
//       same verdict (round counts are id-tie-break-dependent and
//       deliberately NOT pinned; see scenario/invariants.h);
//   (d) determinism -- corpus replay, --threads 1/4 and streamed-vs-
//       in-memory aggregation are bit-identical, and pipelined streams
//       dominate unpipelined ones (same verdicts/partitions, <= cost).
//
// The whole suite must stay green at CPT_TEST_THREADS 1 and 4 (the CI
// legs); batch thread counts below are explicit where determinism is the
// point and env-resolved (threads=0) where coverage is the point.
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/invariants.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"

namespace cpt::scenario {
namespace {

#ifndef CPT_MANIFEST_DIR
#error "CPT_MANIFEST_DIR must point at bench/manifests"
#endif

Manifest load(const char* name) {
  Manifest m;
  std::string err;
  const std::string path = std::string(CPT_MANIFEST_DIR) + "/" + name;
  if (!load_manifest_file(path, &m, &err)) {
    ADD_FAILURE() << err;
  }
  return m;
}

Manifest parse(const std::string& json) {
  Manifest m;
  std::string err;
  if (!parse_manifest(json, &m, &err)) {
    ADD_FAILURE() << err;
  }
  return m;
}

// ---- (a) one-sidedness ----------------------------------------------------

// Small-instance params for every guaranteed-planar registry family: the
// sweep below covers each of them, so a newly registered planar family
// automatically joins the invariant (or fails the coverage assert here).
std::string planar_family_params(const std::string& family) {
  if (family == "grid" || family == "triangulated_grid") {
    return R"({"rows": 8, "cols": 8})";
  }
  if (family == "binary_tree") return R"({"n": 63})";
  if (family == "random_tree") return R"({"n": 120})";
  if (family == "outerplanar") return R"({"n": 100})";
  if (family == "apollonian") return R"({"n": 120})";
  if (family == "random_planar") return R"({"n": 120, "m": 240})";
  if (family == "caterpillar") return R"({"spine": 30, "legs": 60})";
  return R"({"n": 60})";  // path, cycle, star, wheel
}

TEST(Metamorphic, OneSidednessAcrossAllPlanarRegistryFamilies) {
  std::string cells;
  std::size_t planar_families = 0;
  for (const FamilyInfo& family : scenario_families()) {
    if (!family.planar) continue;
    ++planar_families;
    if (!cells.empty()) cells += ",\n";
    cells += std::string(R"({"scenario": ")") + family.name +
             R"(", "params": )" + planar_family_params(family.name) + "}";
  }
  ASSERT_GE(planar_families, 12u) << "planar registry coverage shrank";
  const Manifest m = parse(
      R"({"name": "one_sided", "base_seed": 2026,
          "defaults": {"epsilon": [0.1, 0.3], "instances": 2, "trials": 2,
                       "tester": ["planarity", "stage1_partition"]},
          "cells": [)" +
      cells + "]}");

  BatchOptions opt;
  opt.threads = 0;  // CPT_TEST_THREADS: the CI legs run this at 1 and 4
  const BatchResult batch = run_batch(m, opt);
  ASSERT_EQ(batch.failed_jobs, 0u);
  ASSERT_EQ(batch.jobs.size(), planar_families * 2 * 2 * 2 * 2);

  InvariantReport report;
  check_one_sidedness(batch, &report);
  EXPECT_EQ(report.checks, batch.jobs.size());
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---- (b) detection monotonicity ------------------------------------------

TEST(Metamorphic, DetectionMonotoneInPerturbationStrength) {
  const Manifest m = parse(
      R"({"name": "monotone_strength", "base_seed": 31,
          "defaults": {"instances": 2, "trials": 3, "tester": "planarity"},
          "cells": [
            {"scenario": "grid", "params": {"rows": 10, "cols": 10},
             "perturb": {"kind": "plus_random_edges",
                         "extra": [0, 8, 40, 120]},
             "epsilon": [0.08, 0.2]},
            {"scenario": "cycle", "params": {"n": 120},
             "perturb": {"kind": "k33_blobs", "count": [0, 2, 8]},
             "epsilon": 0.1}
          ]})");
  BatchOptions opt;
  opt.threads = 0;
  const BatchResult batch = run_batch(m, opt);
  ASSERT_EQ(batch.failed_jobs, 0u);

  InvariantReport report;
  check_monotone_detection(batch, "extra", /*perturb_axis=*/true,
                           /*direction=*/+1, &report);
  check_monotone_detection(batch, "count", /*perturb_axis=*/true,
                           /*direction=*/+1, &report);
  // 2 eps groups x 3 extra-steps + 1 count group x 2 steps.
  EXPECT_EQ(report.checks, 2u * 3u + 1u * 2u);
  EXPECT_TRUE(report.ok()) << report.summary();

  // The sweep is informative, not vacuously monotone: the zero-strength
  // points never reject (they are planar: one-sidedness) and the strongest
  // points always do.
  std::uint32_t zero_rejects = 0, strong_jobs = 0, strong_rejects = 0;
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const ScenarioParams& pp = batch.jobs[j].instance.perturb_params;
    const std::int64_t strength =
        pp.has("extra") ? pp.get_int("extra", 0) : pp.get_int("count", 0);
    if (strength == 0 && batch.results[j].verdict == Verdict::kReject) {
      ++zero_rejects;
    }
    if (strength >= 100 || (pp.has("count") && strength >= 8)) {
      ++strong_jobs;
      if (batch.results[j].verdict == Verdict::kReject) ++strong_rejects;
    }
  }
  EXPECT_EQ(zero_rejects, 0u);
  EXPECT_GT(strong_jobs, 0u);
  EXPECT_EQ(strong_rejects, strong_jobs);
}

TEST(Metamorphic, DetectionMonotoneInEpsilonOnTheFrontierManifest) {
  const Manifest m = load("frontier.json");
  BatchOptions opt;
  opt.threads = 0;
  const BatchResult batch = run_batch(m, opt);
  ASSERT_EQ(batch.failed_jobs, 0u);

  InvariantReport report;
  check_monotone_detection_in_epsilon(batch, &report);
  // grid cell: 3 strengths x 2 instances... grouped by cell key minus eps:
  // 3 extra-values -> 3 groups x 4 eps-steps; cycle: 3 counts x 3 steps.
  EXPECT_EQ(report.checks, 3u * 4u + 3u * 3u);
  EXPECT_TRUE(report.ok()) << report.summary();

  // The frontier actually crosses the detection threshold: the sweep must
  // contain both fully-detected and fully-accepted (eps too large) points.
  const std::vector<CellAggregate> cells = aggregate_cells(batch);
  bool saw_full_detection = false, saw_no_detection = false;
  for (const CellAggregate& cell : cells) {
    if (cell.rejects == cell.jobs) saw_full_detection = true;
    if (cell.rejects == 0) saw_no_detection = true;
  }
  EXPECT_TRUE(saw_full_detection);
  EXPECT_TRUE(saw_no_detection);
}

// ---- (c) relabeling invariance -------------------------------------------

TEST(Metamorphic, RelabelingPreservesVerdicts) {
  const Manifest m = parse(
      R"({"name": "relabel", "base_seed": 77,
          "defaults": {"trials": 1, "tester": "planarity"},
          "cells": [
            {"scenario": "grid", "params": {"rows": 8, "cols": 8},
             "epsilon": 0.15},
            {"scenario": "apollonian", "params": {"n": 100},
             "epsilon": 0.15},
            {"scenario": "grid", "params": {"rows": 8, "cols": 8},
             "perturb": {"kind": "plus_random_edges", "extra": 60},
             "epsilon": 0.1},
            {"scenario": "cycle", "params": {"n": 90},
             "perturb": {"kind": "k33_blobs", "count": 4}, "epsilon": 0.1},
            {"scenario": "random_tree", "params": {"n": 150},
             "tester": "cycle_free", "epsilon": 0.2}
          ]})");
  const std::vector<Job> jobs = expand_manifest(m);
  InvariantReport report;
  for (const Job& job : jobs) {
    const Graph g = build_instance(job.instance);
    // Two permutations per instance, seeds chained off the instance seed.
    check_relabeling_invariance(job, g, job.instance.seed ^ 1, &report);
    check_relabeling_invariance(job, g, job.instance.seed ^ 2, &report);
  }
  EXPECT_EQ(report.checks, jobs.size() * 2);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---- (d) determinism ------------------------------------------------------

TEST(Metamorphic, PipelinedStreamsDominateUnpipelinedThroughTheEngine) {
  Manifest m = load("metamorphic_smoke.json");
  BatchOptions opt;
  opt.threads = 0;
  const BatchResult pipelined = run_batch(m, opt);
  ASSERT_EQ(pipelined.failed_jobs, 0u);
  for (ManifestCell& cell : m.cells) cell.pipelined = false;
  const BatchResult unpipelined = run_batch(m, opt);
  ASSERT_EQ(unpipelined.failed_jobs, 0u);

  InvariantReport report;
  check_pipelining_dominance(pipelined, unpipelined, &report);
  EXPECT_EQ(report.checks, pipelined.jobs.size());
  EXPECT_TRUE(report.ok()) << report.summary();

  // The flag is live: some planarity job must actually get cheaper.
  bool strictly_cheaper = false;
  for (std::size_t j = 0; j < pipelined.jobs.size(); ++j) {
    strictly_cheaper |=
        pipelined.results[j].rounds < unpipelined.results[j].rounds;
  }
  EXPECT_TRUE(strictly_cheaper);
}

TEST(Metamorphic, CorpusReplayThreadsAndStreamingAreBitIdentical) {
  const Manifest m = load("metamorphic_smoke.json");

  // Thread sweep, in-memory.
  BatchOptions serial;
  serial.threads = 1;
  const BatchResult t1 = run_batch(m, serial);
  ASSERT_EQ(t1.failed_jobs, 0u);
  const std::string reference =
      render_aggregate_json(m, t1, aggregate_cells(t1));
  BatchOptions quad;
  quad.threads = 4;
  const BatchResult t4 = run_batch(m, quad);
  EXPECT_EQ(render_aggregate_json(m, t4, aggregate_cells(t4)), reference);

  // Corpus replay: second run loads every instance from disk and must
  // aggregate identically.
  std::string dir_template = testing::TempDir() + "cpt_meta_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template.data()), nullptr);
  BatchOptions corpus;
  corpus.threads = 2;
  corpus.corpus_dir = dir_template;
  const BatchResult generate = run_batch(m, corpus);
  const BatchResult replay = run_batch(m, corpus);
  EXPECT_EQ(replay.corpus.disk_hits, replay.corpus.unique_instances);
  EXPECT_EQ(replay.corpus.generated, 0u);
  EXPECT_EQ(render_aggregate_json(m, generate, aggregate_cells(generate)),
            reference);
  EXPECT_EQ(render_aggregate_json(m, replay, aggregate_cells(replay)),
            reference);

  // Streaming pipeline: same document, same JSONL at 1 and 4 threads.
  const std::vector<Job> jobs = expand_manifest(m);
  const auto streamed = [&](unsigned threads) {
    StreamingAggregator agg(jobs);
    std::string jsonl = render_stream_header(m, jobs.size());
    agg.set_cell_sink([&](const CellAggregate& cell) {
      jsonl += render_stream_cell(cell);
    });
    BatchOptions opt;
    opt.threads = threads;
    const BatchResult batch =
        run_batch(m, opt, [&](const Job& job, const JobResult& result) {
          agg.consume(job, result);
        });
    jsonl += render_stream_footer(batch, agg.finish().size());
    return std::make_pair(
        jsonl, render_aggregate_json(m, batch, agg.cells()));
  };
  const auto [jsonl1, doc1] = streamed(1);
  const auto [jsonl4, doc4] = streamed(4);
  EXPECT_EQ(jsonl1, jsonl4);
  EXPECT_EQ(doc1, reference);
  EXPECT_EQ(doc4, reference);
}

}  // namespace
}  // namespace cpt::scenario
