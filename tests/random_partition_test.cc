#include <gtest/gtest.h>

#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "partition/random_partition.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

RandomPartitionResult run(const Graph& g, double epsilon, double delta,
                          std::uint64_t seed,
                          congest::RoundLedger* ledger_out = nullptr) {
  congest::Network net(g);
  congest::Simulator sim(net);
  congest::RoundLedger ledger;
  RandomPartitionOptions opt;
  opt.epsilon = epsilon;
  opt.delta = delta;
  opt.seed = seed;
  RandomPartitionResult r = run_random_partition(sim, g, opt, ledger);
  if (ledger_out != nullptr) *ledger_out = ledger;
  return r;
}

TEST(RandomPartition, ForestStaysValidOnPlanarInputs) {
  Rng rng(3);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::random_planar(150, 350, rng);
    const RandomPartitionResult r = run(g, 0.3, 0.2, seed);
    EXPECT_TRUE(validate_part_forest(g, r.forest));
  }
}

TEST(RandomPartition, MeetsCutTargetOnMinorFreeGraphs) {
  // Theorem 4: cut <= eps*n with probability >= 1-delta. Check the eps*m/2
  // working target across seeds, allowing the occasional failure.
  Rng rng(5);
  const Graph g = gen::triangulated_grid(12, 12);
  int successes = 0;
  constexpr int kSeeds = 6;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const RandomPartitionResult r = run(g, 0.3, 0.1, seed);
    const PartitionStats stats = measure_partition(g, r.forest);
    if (stats.cut_edges <= 0.15 * g.num_edges()) ++successes;
  }
  EXPECT_GE(successes, kSeeds - 1);
}

TEST(RandomPartition, TrialCountFollowsLemma13) {
  const Graph g = gen::grid(6, 6);
  const RandomPartitionResult strict = run(g, 0.3, 0.001, 1);
  const RandomPartitionResult loose = run(g, 0.3, 0.5, 1);
  EXPECT_GT(strict.trials_per_phase, loose.trials_per_phase);
}

TEST(RandomPartition, PhaseCountFollowsClaim14) {
  EXPECT_GT(random_partition_theory_phase_count(0.1, 3),
            random_partition_theory_phase_count(0.5, 3));
}

TEST(RandomPartition, CutWeightMonotone) {
  Rng rng(9);
  const Graph g = gen::apollonian(150, rng);
  const RandomPartitionResult r = run(g, 0.25, 0.2, 7);
  for (const PhaseStats& p : r.phase_stats) {
    EXPECT_LE(p.cut_after, p.cut_before);
  }
}

TEST(RandomPartition, DeterministicForFixedSeed) {
  Rng rng(11);
  const Graph g = gen::random_planar(100, 220, rng);
  const RandomPartitionResult a = run(g, 0.3, 0.2, 42);
  const RandomPartitionResult b = run(g, 0.3, 0.2, 42);
  EXPECT_EQ(a.forest.root, b.forest.root);
  EXPECT_EQ(a.phases_emulated, b.phases_emulated);
}

TEST(RandomPartition, SeedsProduceDifferentPartitions) {
  Rng rng(13);
  const Graph g = gen::triangulated_grid(10, 10);
  const RandomPartitionResult a = run(g, 0.3, 0.2, 1);
  const RandomPartitionResult b = run(g, 0.3, 0.2, 2);
  EXPECT_NE(a.forest.root, b.forest.root);
}

TEST(RandomPartition, WorksOnDisconnectedInputs) {
  const Graph g = gen::disjoint_copies(gen::grid(4, 4), 3);
  const RandomPartitionResult r = run(g, 0.3, 0.2, 5);
  EXPECT_TRUE(validate_part_forest(g, r.forest));
  const auto comps = connected_components(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(comps.component_of[v], comps.component_of[r.forest.root[v]]);
  }
}

TEST(RandomPartition, RoundsGrowSublinearlyInN) {
  // Theorem 4's round count has no log n factor, but the merged parts'
  // diameters (poly(1/eps), here larger than the graph diameters) still
  // grow with the instance at these sizes. Quadrupling n must stay well
  // below quadrupling rounds.
  congest::RoundLedger small;
  congest::RoundLedger large;
  run(gen::grid(8, 8), 0.3, 0.2, 3, &small);
  run(gen::grid(16, 16), 0.3, 0.2, 3, &large);
  EXPECT_LT(static_cast<double>(large.total_rounds()),
            3.0 * static_cast<double>(small.total_rounds()));
}

}  // namespace
}  // namespace cpt
