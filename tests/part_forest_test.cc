#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/part_forest.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

using testutil::whole_graph_parts;

TEST(PartForest, SingletonsValidate) {
  const Graph g = gen::grid(4, 4);
  const PartForest pf = PartForest::singletons(g.num_nodes());
  EXPECT_TRUE(validate_part_forest(g, pf));
  EXPECT_EQ(pf.live_roots().size(), g.num_nodes());
  EXPECT_EQ(pf.num_parts(), g.num_nodes());
  EXPECT_EQ(pf.max_depth(), 0u);
}

TEST(PartForest, WholeGraphPartsValidate) {
  Rng rng(3);
  const Graph g = gen::apollonian(80, rng);
  const PartForest pf = whole_graph_parts(g);
  EXPECT_TRUE(validate_part_forest(g, pf));
  EXPECT_EQ(pf.live_roots().size(), 1u);
}

TEST(PartForest, MergeIntoFlipsPathAndReroots) {
  // Path 0-1-2-3-4: two parts {0,1,2} rooted at 2 (so the path 2->1->0 must
  // flip when 0 merges into 4's part {3,4} rooted at 3... exercising a
  // nontrivial flip).
  const Graph g = gen::path(5);
  PartForest pf;
  pf.root = {2, 2, 2, 3, 3};
  pf.parent_edge.assign(5, kNoEdge);
  pf.children.assign(5, {});
  pf.members.assign(5, {});
  // Tree of part {0,1,2}: 2 -> 1 -> 0 (parent edges toward 2).
  pf.parent_edge[1] = g.find_edge(1, 2);
  pf.parent_edge[0] = g.find_edge(0, 1);
  pf.children[2] = {g.find_edge(1, 2)};
  pf.children[1] = {g.find_edge(0, 1)};
  // Tree of part {3,4}: 3 -> 4.
  pf.parent_edge[4] = g.find_edge(3, 4);
  pf.children[3] = {g.find_edge(3, 4)};
  pf.members[2] = {0, 1, 2};
  pf.members[3] = {3, 4};
  pf.depth = {2, 1, 0, 0, 1};
  ASSERT_TRUE(validate_part_forest(g, pf));

  // Part rooted at 2 merges into part of 3, via designated edge (2-3)?
  // No: u must be a boundary node of the merging part: u=2, v=3.
  const std::uint32_t flip = pf.merge_into(g, 2, g.find_edge(2, 3), 3);
  EXPECT_EQ(flip, 0u);  // u was the root: nothing to flip
  pf.recompute_depths(g);
  EXPECT_TRUE(validate_part_forest(g, pf));
  EXPECT_EQ(pf.root[0], 3u);
  EXPECT_EQ(pf.root[2], 3u);
  EXPECT_EQ(pf.members[3].size(), 5u);
}

TEST(PartForest, MergeIntoWithDeepFlip) {
  // Part {0,1,2,3} rooted at 0 as a path 0<-1<-2<-3; boundary node 3
  // merges into singleton part {4}: the whole path must flip.
  const Graph g = gen::path(5);
  PartForest pf;
  pf.root = {0, 0, 0, 0, 4};
  pf.parent_edge.assign(5, kNoEdge);
  pf.children.assign(5, {});
  pf.members.assign(5, {});
  for (NodeId v = 1; v <= 3; ++v) {
    pf.parent_edge[v] = g.find_edge(v - 1, v);
    pf.children[v - 1] = {g.find_edge(v - 1, v)};
  }
  pf.members[0] = {0, 1, 2, 3};
  pf.members[4] = {4};
  pf.depth = {0, 1, 2, 3, 0};
  ASSERT_TRUE(validate_part_forest(g, pf));

  const std::uint32_t flip = pf.merge_into(g, 3, g.find_edge(3, 4), 4);
  EXPECT_EQ(flip, 3u);
  pf.recompute_depths(g);
  EXPECT_TRUE(validate_part_forest(g, pf));
  EXPECT_EQ(pf.root[0], 4u);
  EXPECT_EQ(pf.depth[0], 4u);  // 0 is now the deepest node
  EXPECT_EQ(pf.parent_edge[4], kNoEdge);
}

TEST(PartForest, LiveRootsTrackMergesIncrementally) {
  const Graph g = gen::path(6);
  PartForest pf = PartForest::singletons(6);
  EXPECT_EQ(pf.live_roots().size(), 6u);
  pf.merge_into(g, 0, g.find_edge(0, 1), 1);
  pf.merge_into(g, 2, g.find_edge(2, 3), 3);
  pf.recompute_depths(g);
  const std::vector<NodeId> expect{1, 3, 4, 5};
  EXPECT_EQ(pf.live_roots(), expect);
  EXPECT_EQ(pf.num_parts(), 4u);
  EXPECT_TRUE(validate_part_forest(g, pf));
  // Merging a multi-node part keeps the list sorted and compacted.
  pf.merge_into(g, 1, g.find_edge(1, 2), 2);
  pf.recompute_depths(g);
  const std::vector<NodeId> expect2{3, 4, 5};
  EXPECT_EQ(pf.live_roots(), expect2);
  EXPECT_TRUE(validate_part_forest(g, pf));
}

TEST(PartForest, RebuildRootIndexAfterHandEdits) {
  const Graph g = gen::path(3);
  PartForest pf = PartForest::singletons(3);
  EXPECT_EQ(pf.num_parts(), 3u);  // index built here
  // Hand-editing the root array requires an explicit rebuild.
  pf.root = {2, 2, 2};
  pf.parent_edge[0] = g.find_edge(0, 1);
  pf.parent_edge[1] = g.find_edge(1, 2);
  pf.children[2] = {g.find_edge(1, 2)};
  pf.children[1] = {g.find_edge(0, 1)};
  pf.members = {{}, {}, {2, 1, 0}};
  pf.depth = {2, 1, 0};
  pf.rebuild_root_index();
  const std::vector<NodeId> expect{2};
  EXPECT_EQ(pf.live_roots(), expect);
  EXPECT_TRUE(validate_part_forest(g, pf));
}

TEST(PartForest, DenseIndexCoversAllParts) {
  const Graph g = gen::disjoint_copies(gen::cycle(4), 3);
  const PartForest pf = whole_graph_parts(g);
  const PartForest::Dense d = pf.dense_index();
  EXPECT_EQ(d.num_parts, 3u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LT(d.part_of[v], d.num_parts);
    EXPECT_EQ(pf.root[v], d.root_of_part[d.part_of[v]]);
  }
}

TEST(PartForest, ValidateCatchesCorruption) {
  const Graph g = gen::grid(3, 3);
  {
    PartForest pf = whole_graph_parts(g);
    pf.root[5] = 5;  // inconsistent with members
    EXPECT_FALSE(validate_part_forest(g, pf));
  }
  {
    PartForest pf = whole_graph_parts(g);
    pf.depth[8] += 1;
    EXPECT_FALSE(validate_part_forest(g, pf));
  }
  {
    PartForest pf = whole_graph_parts(g);
    // Orphan a child edge.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!pf.children[v].empty()) {
        pf.children[v].pop_back();
        break;
      }
    }
    EXPECT_FALSE(validate_part_forest(g, pf));
  }
}

TEST(PartForest, MeasurePartitionStats) {
  // Two 2x2 grid parts joined by 2 edges.
  GraphBuilder b(8);
  // part A: 0,1,2,3 as a square; part B: 4,5,6,7 as a square
  b.add_edge(0, 1); b.add_edge(1, 3); b.add_edge(3, 2); b.add_edge(2, 0);
  b.add_edge(4, 5); b.add_edge(5, 7); b.add_edge(7, 6); b.add_edge(6, 4);
  b.add_edge(1, 4);
  b.add_edge(3, 6);
  const Graph g = std::move(b).build();
  PartForest pf;
  pf.root = {0, 0, 0, 0, 4, 4, 4, 4};
  pf.parent_edge.assign(8, kNoEdge);
  pf.children.assign(8, {});
  pf.members.assign(8, {});
  pf.members[0] = {0, 1, 2, 3};
  pf.members[4] = {4, 5, 6, 7};
  pf.parent_edge[1] = g.find_edge(0, 1);
  pf.parent_edge[2] = g.find_edge(0, 2);
  pf.parent_edge[3] = g.find_edge(1, 3);
  pf.children[0] = {g.find_edge(0, 1), g.find_edge(0, 2)};
  pf.children[1] = {g.find_edge(1, 3)};
  pf.parent_edge[5] = g.find_edge(4, 5);
  pf.parent_edge[6] = g.find_edge(4, 6);
  pf.parent_edge[7] = g.find_edge(5, 7);
  pf.children[4] = {g.find_edge(4, 5), g.find_edge(4, 6)};
  pf.children[5] = {g.find_edge(5, 7)};
  pf.depth = {0, 1, 1, 2, 0, 1, 1, 2};
  ASSERT_TRUE(validate_part_forest(g, pf));

  const PartitionStats stats = measure_partition(g, pf);
  EXPECT_EQ(stats.num_parts, 2u);
  EXPECT_EQ(stats.cut_edges, 2u);
  EXPECT_EQ(stats.max_tree_depth, 2u);
  EXPECT_EQ(stats.max_part_ecc, 2u);
}

}  // namespace
}  // namespace cpt
