#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/ops.h"
#include "planar/lr_planarity.h"

namespace cpt {
namespace {

// Subdivides every edge of g `times` times (Kuratowski subdivisions keep
// (non-)planarity).
Graph subdivide(const Graph& g, int times) {
  GraphBuilder b(g.num_nodes());
  for (const Endpoints e : g.edges()) {
    NodeId prev = e.u;
    for (int i = 0; i < times; ++i) {
      const NodeId mid = b.add_node();
      b.add_edge(prev, mid);
      prev = mid;
    }
    b.add_edge(prev, e.v);
  }
  return std::move(b).build();
}

TEST(LrPlanarity, SmallKnownGraphs) {
  EXPECT_TRUE(is_planar(Graph{}));
  EXPECT_TRUE(is_planar(gen::path(1)));
  EXPECT_TRUE(is_planar(gen::complete(4)));
  EXPECT_FALSE(is_planar(gen::complete(5)));
  EXPECT_FALSE(is_planar(gen::complete(6)));
  EXPECT_FALSE(is_planar(gen::complete_bipartite(3, 3)));
  EXPECT_TRUE(is_planar(gen::complete_bipartite(2, 7)));
  EXPECT_TRUE(is_planar(gen::hypercube(3)));
  EXPECT_FALSE(is_planar(gen::hypercube(4)));
}

TEST(LrPlanarity, PetersenIsNonPlanar) {
  GraphBuilder pb(10);
  for (NodeId i = 0; i < 5; ++i) {
    pb.add_edge(i, (i + 1) % 5);
    pb.add_edge(i, i + 5);
    pb.add_edge(i + 5, 5 + (i + 2) % 5);
  }
  EXPECT_FALSE(is_planar(std::move(pb).build()));
}

TEST(LrPlanarity, KuratowskiSubdivisionsStayNonPlanar) {
  for (int times = 1; times <= 4; ++times) {
    EXPECT_FALSE(is_planar(subdivide(gen::complete(5), times)));
    EXPECT_FALSE(is_planar(subdivide(gen::complete_bipartite(3, 3), times)));
  }
}

TEST(LrPlanarity, SubdivisionsOfPlanarStayPlanar) {
  for (int times = 1; times <= 3; ++times) {
    EXPECT_TRUE(is_planar(subdivide(gen::complete(4), times)));
    EXPECT_TRUE(is_planar(subdivide(gen::grid(4, 4), times)));
  }
}

TEST(LrPlanarity, DeepStructuresDontOverflow) {
  EXPECT_TRUE(is_planar(gen::path(200000)));
  EXPECT_TRUE(is_planar(gen::cycle(200000)));
}

TEST(LrPlanarity, DisjointUnions) {
  const std::vector<Graph> ok = {gen::grid(5, 5), gen::cycle(9), gen::complete(4)};
  EXPECT_TRUE(is_planar(disjoint_union(ok)));
  const std::vector<Graph> bad = {gen::grid(5, 5), gen::complete(5)};
  EXPECT_FALSE(is_planar(disjoint_union(bad)));
}

TEST(LrPlanarity, EulerBoundShortCircuit) {
  Rng rng(3);
  // Any graph with m > 3n-6 must be declared non-planar.
  const Graph g = gen::gnm(30, 85, rng);  // 85 > 84
  EXPECT_FALSE(is_planar(g));
}

TEST(LrPlanarity, EmbeddingExistsIffPlanar) {
  Rng rng(5);
  EXPECT_TRUE(lr_planar_embedding(gen::grid(6, 6)).has_value());
  EXPECT_FALSE(lr_planar_embedding(gen::complete(5)).has_value());
  EXPECT_FALSE(lr_planar_embedding(gen::hypercube(4)).has_value());
  EXPECT_TRUE(lr_planar_embedding(gen::apollonian(77, rng)).has_value());
}

// Property sweep: random planar graphs are planar; one extra edge on a
// maximal planar graph is not.
class LrSweep : public ::testing::TestWithParam<int> {};

TEST_P(LrSweep, RandomPlanarAccepted) {
  Rng rng(1000 + GetParam());
  const NodeId n = 10 + static_cast<NodeId>(rng.next_below(400));
  const EdgeId m = n - 1 + static_cast<EdgeId>(rng.next_below(2 * n - 5));
  EXPECT_TRUE(is_planar(gen::random_planar(n, m, rng)));
}

TEST_P(LrSweep, MaximalPlanarPlusEdgeRejected) {
  Rng rng(2000 + GetParam());
  const NodeId n = 8 + static_cast<NodeId>(rng.next_below(150));
  const Graph g = gen::apollonian(n, rng);
  EXPECT_FALSE(is_planar(gen::planar_plus_random_edges(g, 1, rng)));
}

TEST_P(LrSweep, SparseGnpMatchesExpectation) {
  // Very sparse G(n, c/n) with c < 1 is a forest plus few unicyclic parts:
  // always planar.
  Rng rng(3000 + GetParam());
  const Graph g = gen::gnp(500, 0.8 / 500, rng);
  EXPECT_TRUE(is_planar(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LrSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace cpt
