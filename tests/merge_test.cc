#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "partition/merge.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

// Driver that feeds run_merge_step a hand-built Selection over singleton
// parts (every node its own part; neighbor roots are just neighbor ids).
struct MergeFixture {
  Graph g;
  congest::Network net;
  congest::Simulator sim;
  congest::RoundLedger ledger;
  PartForest pf;
  std::vector<std::vector<NodeId>> neighbor_root;

  explicit MergeFixture(Graph graph)
      : g(std::move(graph)),
        net(g),
        sim(net),
        pf(PartForest::singletons(g.num_nodes())) {
    neighbor_root.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nbrs = g.neighbors(v);
      neighbor_root[v].resize(nbrs.size());
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        neighbor_root[v][p] = nbrs[p].to;
      }
    }
  }

  MergeStats run(Selection sel, bool pipelined = true) {
    return run_merge_step(sim, g, pf, neighbor_root, std::move(sel), ledger,
                          nullptr, pipelined);
  }

  // Driver-side refresh after a contraction (tests only; Stage I proper
  // refreshes this via the peeling's pass A).
  void refresh_neighbor_root() {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nbrs = g.neighbors(v);
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        neighbor_root[v][p] = pf.root[nbrs[p].to];
      }
    }
  }

  // Each part targets the first foreign part adjacent to its root node
  // (deterministic; parts whose root has no foreign neighbor sit out).
  Selection select_first_foreign() {
    Selection sel(g.num_nodes());
    for (const NodeId r : pf.live_roots()) {
      for (const Arc& a : g.neighbors(r)) {
        if (pf.root[a.to] != r) {
          sel.target[r] = pf.root[a.to];
          sel.weight[r] = 1;
          break;
        }
      }
    }
    return sel;
  }

  std::uint64_t cut() const {
    std::uint64_t cut = 0;
    for (const Endpoints e : g.edges()) {
      if (pf.root[e.u] != pf.root[e.v]) ++cut;
    }
    return cut;
  }
};

TEST(MergeStep, EmptySelectionIsANoOp) {
  MergeFixture f(gen::grid(3, 3));
  const MergeStats stats = f.run(Selection(f.g.num_nodes()));
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(f.ledger.total_rounds(), 0u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
}

TEST(MergeStep, SinglePairMerges) {
  MergeFixture f(gen::path(2));
  Selection sel(2);
  sel.target[0] = 1;
  sel.weight[0] = 1;
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.contracted_weight, 1u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_EQ(f.pf.root[0], f.pf.root[1]);
  EXPECT_EQ(f.cut(), 0u);
}

TEST(MergeStep, MutualSelectionDeduplicates) {
  // Both endpoints select the shared auxiliary edge: the smaller root id
  // keeps it (Section 4's rule); exactly one merge happens, no crash.
  MergeFixture f(gen::path(2));
  Selection sel(2);
  sel.target[0] = 1;
  sel.weight[0] = 1;
  sel.target[1] = 0;
  sel.weight[1] = 1;
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_EQ(f.pf.root[0], f.pf.root[1]);
}

TEST(MergeStep, StarSelectionFormsOnePart) {
  // All leaves of a star select the hub: the marked structure is a star in
  // F_i, and every leaf contracts into the hub in one step (the hub is the
  // T root at level 0; leaves at level 1 contract iff the odd parity wins,
  // which it does since all weight sits on odd edges).
  const NodeId n = 8;
  MergeFixture f(gen::star(n));
  Selection sel(n);
  for (NodeId v = 1; v < n; ++v) {
    sel.target[v] = 0;
    sel.weight[v] = 1;
  }
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, n - 1);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(f.pf.root[v], f.pf.root[0]);
  EXPECT_EQ(f.cut(), 0u);
  EXPECT_LE(stats.marked_tree_height, 1u);
}

TEST(MergeStep, ChainSelectionsRespectClaim15) {
  // Path selections v -> v+1 form one long F_i path; the marked subgraph
  // must stay a forest (Claim 15) and contraction must make progress
  // without ever corrupting the part trees.
  const NodeId n = 12;
  MergeFixture f(gen::path(n));
  Selection sel(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    sel.target[v] = v + 1;
    sel.weight[v] = 1;
  }
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_GT(stats.merges, 0u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_LT(f.cut(), n - 1);  // progress on the cut
}

TEST(MergeStep, DirectedCycleSelectionsTerminate) {
  // Selections around a cycle produce a directed cycle in the pseudo-forest
  // (the Theorem 4 regime); the Cole-Vishkin emulation and the shift-down
  // recoloring must still terminate with a proper structure.
  const NodeId n = 9;
  MergeFixture f(gen::cycle(n));
  Selection sel(n);
  for (NodeId v = 0; v < n; ++v) {
    sel.target[v] = (v + 1) % n;
    sel.weight[v] = 1;
  }
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_GT(stats.merges, 0u);
  EXPECT_LT(stats.cv_iterations, 64u);
}

TEST(MergeStep, HeavierEdgesWinTheParityContest) {
  // Two parts both select the middle part: the even/odd decision follows
  // the heavier side (Sub-step 3).
  //    0 --(w=1)-- 1 --(w=1)-- 2, with 0 and 2 selecting 1.
  MergeFixture f(gen::path(3));
  Selection sel(3);
  sel.target[0] = 1;
  sel.weight[0] = 1;
  sel.target[2] = 1;
  sel.weight[2] = 1;
  const MergeStats stats = f.run(std::move(sel));
  // Both children of the T-root contract (same parity level 1... level
  // parity 1 edges are odd: both or neither): here both.
  EXPECT_EQ(stats.merges, 2u);
  EXPECT_EQ(f.pf.root[0], f.pf.root[2]);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
}

TEST(MergeStep, RoundsAreChargedForEveryPhase) {
  MergeFixture f(gen::grid(4, 4));
  Selection sel(f.g.num_nodes());
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    const auto nbrs = f.g.neighbors(v);
    sel.target[v] = nbrs[0].to;
    sel.weight[v] = 1;
  }
  f.run(std::move(sel));
  EXPECT_GT(f.ledger.rounds_with_prefix("stage1/seek"), 0u);
  EXPECT_GT(f.ledger.rounds_with_prefix("stage1/cv"), 0u);
  EXPECT_GT(f.ledger.rounds_with_prefix("stage1/mark"), 0u);
}

// ---- Golden message/round ledgers per merge phase ------------------------
//
// Fixed seed-free scenario: on a 6x6 triangulated grid, merge step 1 (every
// node selects its port-0 neighbor) builds multi-node parts, then merge
// step 2 (each part targets the first foreign part at its root) drives the
// relay machinery over real part trees. The cumulative per-phase CONGEST
// cost is pinned exactly, in both stream modes, so later perf PRs cannot
// silently change a phase's complexity. Regenerate with CPT_PRINT_GOLDENS=1.

constexpr const char* kPhasePrefixes[] = {
    "stage1/seek", "stage1/cv", "stage1/mark", "stage1/t-", "stage1/contract",
};
constexpr std::size_t kNumPhases = std::size(kPhasePrefixes);

struct LedgerGolden {
  std::uint64_t phase_rounds[kNumPhases];
  std::uint64_t total_rounds;
  std::uint64_t total_messages;
};

// [0] = unpipelined legacy schedule, [1] = pipelined streams.
constexpr LedgerGolden kMergeGoldens[2] = {
    {{12ULL, 39ULL, 26ULL, 82ULL, 4ULL}, 163ULL, 1970ULL},
    {{7ULL, 31ULL, 19ULL, 68ULL, 4ULL}, 129ULL, 1699ULL},
};

TEST(MergeStep, GoldenPerPhaseLedgersAreStable) {
  const bool print = std::getenv("CPT_PRINT_GOLDENS") != nullptr;
  std::uint64_t rounds[2][kNumPhases] = {};
  std::uint64_t totals[2] = {};
  std::uint64_t messages[2] = {};
  for (const int mode : {0, 1}) {
    MergeFixture f(gen::triangulated_grid(6, 6));
    Selection sel(f.g.num_nodes());
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
      sel.target[v] = f.g.neighbors(v)[0].to;
      sel.weight[v] = 1;
    }
    const MergeStats stats = f.run(std::move(sel), /*pipelined=*/mode == 1);
    EXPECT_GT(stats.merges, 0u);
    EXPECT_TRUE(validate_part_forest(f.g, f.pf));
    // Step 2: multi-node part trees carry real converge/broadcast streams.
    f.refresh_neighbor_root();
    const MergeStats stats2 =
        f.run(f.select_first_foreign(), /*pipelined=*/mode == 1);
    EXPECT_GT(stats2.merges, 0u);
    EXPECT_TRUE(validate_part_forest(f.g, f.pf));
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      rounds[mode][i] = f.ledger.rounds_with_prefix(kPhasePrefixes[i]);
    }
    totals[mode] = f.ledger.total_rounds();
    messages[mode] = f.ledger.total_messages();
  }
  if (print) {
    std::string out;
    for (const int mode : {0, 1}) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {{%lluULL, %lluULL, %lluULL, %lluULL, %lluULL}, "
                    "%lluULL, %lluULL},\n",
                    static_cast<unsigned long long>(rounds[mode][0]),
                    static_cast<unsigned long long>(rounds[mode][1]),
                    static_cast<unsigned long long>(rounds[mode][2]),
                    static_cast<unsigned long long>(rounds[mode][3]),
                    static_cast<unsigned long long>(rounds[mode][4]),
                    static_cast<unsigned long long>(totals[mode]),
                    static_cast<unsigned long long>(messages[mode]));
      out += buf;
    }
    std::printf("constexpr LedgerGolden kMergeGoldens[2] = {\n%s};\n",
                out.c_str());
    GTEST_SKIP() << "golden print mode";
  }
  for (const int mode : {0, 1}) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      EXPECT_EQ(rounds[mode][i], kMergeGoldens[mode].phase_rounds[i])
          << "mode " << mode << " prefix " << kPhasePrefixes[i];
    }
    EXPECT_EQ(totals[mode], kMergeGoldens[mode].total_rounds) << "mode " << mode;
    EXPECT_EQ(messages[mode], kMergeGoldens[mode].total_messages)
        << "mode " << mode;
  }
  // Pipelining may only reduce the CONGEST cost, phase by phase.
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    EXPECT_LE(rounds[1][i], rounds[0][i]) << kPhasePrefixes[i];
  }
  EXPECT_LE(totals[1], totals[0]);
  EXPECT_LE(messages[1], messages[0]);
}

TEST(MergeStep, PipelinedAndUnpipelinedAgreeOnTheResultingForest) {
  PartForest forests[2];
  for (const int mode : {0, 1}) {
    MergeFixture f(gen::triangulated_grid(5, 7));
    Selection sel(f.g.num_nodes());
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
      const auto nbrs = f.g.neighbors(v);
      sel.target[v] = nbrs[v % nbrs.size()].to;
      sel.weight[v] = 1 + v % 3;
    }
    f.run(std::move(sel), /*pipelined=*/mode == 1);
    forests[mode] = f.pf;
  }
  EXPECT_EQ(forests[0].root, forests[1].root);
  EXPECT_EQ(forests[0].parent_edge, forests[1].parent_edge);
  EXPECT_EQ(forests[0].depth, forests[1].depth);
}

TEST(MergeStep, PreexistingMultiNodePartsMergeViaBoundary) {
  // Two 2-node parts joined by one boundary edge; the designated in-charge
  // node is found by the SEEK passes and the path flip reroots correctly.
  const Graph g = gen::path(4);  // 0-1-2-3; parts {0,1} rooted 0, {2,3} rooted 2
  MergeFixture f(g);
  f.pf.merge_into(g, 1, g.find_edge(0, 1), 0);  // part {1} joins part {0}
  f.pf.merge_into(g, 3, g.find_edge(2, 3), 2);  // part {3} joins part {2}
  f.pf.recompute_depths(g);
  ASSERT_TRUE(validate_part_forest(g, f.pf));
  // Refresh neighbor roots to reflect the 2-node parts.
  for (NodeId v = 0; v < 4; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      f.neighbor_root[v][p] = f.pf.root[nbrs[p].to];
    }
  }
  Selection sel(4);
  sel.target[0] = 2;
  sel.weight[0] = 1;
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_TRUE(validate_part_forest(g, f.pf));
  EXPECT_EQ(f.pf.root[0], f.pf.root[3]);
}

}  // namespace
}  // namespace cpt
