#include <gtest/gtest.h>

#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "partition/merge.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

// Driver that feeds run_merge_step a hand-built Selection over singleton
// parts (every node its own part; neighbor roots are just neighbor ids).
struct MergeFixture {
  Graph g;
  congest::Network net;
  congest::Simulator sim;
  congest::RoundLedger ledger;
  PartForest pf;
  std::vector<std::vector<NodeId>> neighbor_root;

  explicit MergeFixture(Graph graph)
      : g(std::move(graph)),
        net(g),
        sim(net),
        pf(PartForest::singletons(g.num_nodes())) {
    neighbor_root.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nbrs = g.neighbors(v);
      neighbor_root[v].resize(nbrs.size());
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        neighbor_root[v][p] = nbrs[p].to;
      }
    }
  }

  MergeStats run(Selection sel) {
    return run_merge_step(sim, g, pf, neighbor_root, std::move(sel), ledger);
  }

  std::uint64_t cut() const {
    std::uint64_t cut = 0;
    for (const Endpoints e : g.edges()) {
      if (pf.root[e.u] != pf.root[e.v]) ++cut;
    }
    return cut;
  }
};

TEST(MergeStep, EmptySelectionIsANoOp) {
  MergeFixture f(gen::grid(3, 3));
  const MergeStats stats = f.run(Selection(f.g.num_nodes()));
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(f.ledger.total_rounds(), 0u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
}

TEST(MergeStep, SinglePairMerges) {
  MergeFixture f(gen::path(2));
  Selection sel(2);
  sel.target[0] = 1;
  sel.weight[0] = 1;
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.contracted_weight, 1u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_EQ(f.pf.root[0], f.pf.root[1]);
  EXPECT_EQ(f.cut(), 0u);
}

TEST(MergeStep, MutualSelectionDeduplicates) {
  // Both endpoints select the shared auxiliary edge: the smaller root id
  // keeps it (Section 4's rule); exactly one merge happens, no crash.
  MergeFixture f(gen::path(2));
  Selection sel(2);
  sel.target[0] = 1;
  sel.weight[0] = 1;
  sel.target[1] = 0;
  sel.weight[1] = 1;
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_EQ(f.pf.root[0], f.pf.root[1]);
}

TEST(MergeStep, StarSelectionFormsOnePart) {
  // All leaves of a star select the hub: the marked structure is a star in
  // F_i, and every leaf contracts into the hub in one step (the hub is the
  // T root at level 0; leaves at level 1 contract iff the odd parity wins,
  // which it does since all weight sits on odd edges).
  const NodeId n = 8;
  MergeFixture f(gen::star(n));
  Selection sel(n);
  for (NodeId v = 1; v < n; ++v) {
    sel.target[v] = 0;
    sel.weight[v] = 1;
  }
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, n - 1);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(f.pf.root[v], f.pf.root[0]);
  EXPECT_EQ(f.cut(), 0u);
  EXPECT_LE(stats.marked_tree_height, 1u);
}

TEST(MergeStep, ChainSelectionsRespectClaim15) {
  // Path selections v -> v+1 form one long F_i path; the marked subgraph
  // must stay a forest (Claim 15) and contraction must make progress
  // without ever corrupting the part trees.
  const NodeId n = 12;
  MergeFixture f(gen::path(n));
  Selection sel(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    sel.target[v] = v + 1;
    sel.weight[v] = 1;
  }
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_GT(stats.merges, 0u);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_LT(f.cut(), n - 1);  // progress on the cut
}

TEST(MergeStep, DirectedCycleSelectionsTerminate) {
  // Selections around a cycle produce a directed cycle in the pseudo-forest
  // (the Theorem 4 regime); the Cole-Vishkin emulation and the shift-down
  // recoloring must still terminate with a proper structure.
  const NodeId n = 9;
  MergeFixture f(gen::cycle(n));
  Selection sel(n);
  for (NodeId v = 0; v < n; ++v) {
    sel.target[v] = (v + 1) % n;
    sel.weight[v] = 1;
  }
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
  EXPECT_GT(stats.merges, 0u);
  EXPECT_LT(stats.cv_iterations, 64u);
}

TEST(MergeStep, HeavierEdgesWinTheParityContest) {
  // Two parts both select the middle part: the even/odd decision follows
  // the heavier side (Sub-step 3).
  //    0 --(w=1)-- 1 --(w=1)-- 2, with 0 and 2 selecting 1.
  MergeFixture f(gen::path(3));
  Selection sel(3);
  sel.target[0] = 1;
  sel.weight[0] = 1;
  sel.target[2] = 1;
  sel.weight[2] = 1;
  const MergeStats stats = f.run(std::move(sel));
  // Both children of the T-root contract (same parity level 1... level
  // parity 1 edges are odd: both or neither): here both.
  EXPECT_EQ(stats.merges, 2u);
  EXPECT_EQ(f.pf.root[0], f.pf.root[2]);
  EXPECT_TRUE(validate_part_forest(f.g, f.pf));
}

TEST(MergeStep, RoundsAreChargedForEveryPhase) {
  MergeFixture f(gen::grid(4, 4));
  Selection sel(f.g.num_nodes());
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    const auto nbrs = f.g.neighbors(v);
    sel.target[v] = nbrs[0].to;
    sel.weight[v] = 1;
  }
  f.run(std::move(sel));
  EXPECT_GT(f.ledger.rounds_with_prefix("stage1/seek"), 0u);
  EXPECT_GT(f.ledger.rounds_with_prefix("stage1/cv"), 0u);
  EXPECT_GT(f.ledger.rounds_with_prefix("stage1/mark"), 0u);
}

TEST(MergeStep, PreexistingMultiNodePartsMergeViaBoundary) {
  // Two 2-node parts joined by one boundary edge; the designated in-charge
  // node is found by the SEEK passes and the path flip reroots correctly.
  const Graph g = gen::path(4);  // 0-1-2-3; parts {0,1} rooted 0, {2,3} rooted 2
  MergeFixture f(g);
  f.pf.merge_into(g, 1, g.find_edge(0, 1), 0);  // part {1} joins part {0}
  f.pf.merge_into(g, 3, g.find_edge(2, 3), 2);  // part {3} joins part {2}
  f.pf.recompute_depths(g);
  ASSERT_TRUE(validate_part_forest(g, f.pf));
  // Refresh neighbor roots to reflect the 2-node parts.
  for (NodeId v = 0; v < 4; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      f.neighbor_root[v][p] = f.pf.root[nbrs[p].to];
    }
  }
  Selection sel(4);
  sel.target[0] = 2;
  sel.weight[0] = 1;
  const MergeStats stats = f.run(std::move(sel));
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_TRUE(validate_part_forest(g, f.pf));
  EXPECT_EQ(f.pf.root[0], f.pf.root[3]);
}

}  // namespace
}  // namespace cpt
