#include <gtest/gtest.h>

#include "congest/network.h"
#include "congest/metrics.h"
#include "congest/simulator.h"
#include "graph/generators.h"

namespace cpt::congest {
namespace {

// Flood: node 0 starts; every node forwards once. Measures BFS-like rounds.
class Flood : public Program {
 public:
  explicit Flood(NodeId n) : reached(n, 0) {}

  void begin(Simulator& sim) override {
    reached[0] = 1;
    for (std::uint32_t p = 0; p < sim.network().port_count(0); ++p) {
      sim.send(0, p, Msg::make(1));
    }
  }

  void on_wake(Simulator& sim, NodeId v, std::span<const Inbound> inbox) override {
    if (inbox.empty() || reached[v]) return;
    reached[v] = 1;
    for (std::uint32_t p = 0; p < sim.network().port_count(v); ++p) {
      if (p != inbox.front().port) sim.send(v, p, Msg::make(1));
    }
  }

  std::vector<std::uint8_t> reached;
};

TEST(Simulator, FloodReachesEveryoneInDiameterRounds) {
  const Graph g = gen::path(10);
  Network net(g);
  Simulator sim(net);
  Flood flood(g.num_nodes());
  const PassResult r = sim.run(flood);
  EXPECT_TRUE(r.quiesced);
  EXPECT_EQ(r.rounds, 9u);   // wave traverses the path
  EXPECT_EQ(r.messages, 9u);  // nodes skip the port the wave arrived on
  for (const auto f : flood.reached) EXPECT_TRUE(f);
}

// Ping-pong across one edge for k rounds.
class PingPong : public Program {
 public:
  explicit PingPong(int k) : remaining_(k) {}

  void begin(Simulator& sim) override { sim.send(0, 0, Msg::make(7, 123)); }

  void on_wake(Simulator& sim, NodeId v, std::span<const Inbound> inbox) override {
    for (const Inbound& in : inbox) {
      EXPECT_EQ(in.msg.tag, 7u);
      EXPECT_EQ(in.msg.w[0], 123);
      if (--remaining_ > 0) sim.send(v, in.port, in.msg);
    }
  }

 private:
  int remaining_;
};

TEST(Simulator, PingPongRoundsAndMessages) {
  const Graph g = gen::path(2);
  Network net(g);
  Simulator sim(net);
  PingPong pp(6);
  const PassResult r = sim.run(pp);
  EXPECT_EQ(r.rounds, 6u);
  EXPECT_EQ(r.messages, 6u);
}

TEST(Simulator, MaxRoundsCutsOff) {
  const Graph g = gen::path(2);
  Network net(g);
  Simulator sim(net);
  PingPong pp(1000);
  const PassResult r = sim.run(pp, 10);
  EXPECT_FALSE(r.quiesced);
  EXPECT_EQ(r.rounds, 10u);
}

// A node that sends twice on the same port in one round violates CONGEST.
class DoubleSend : public Program {
 public:
  void begin(Simulator& sim) override {
    sim.send(0, 0, Msg::make(1));
    sim.send(0, 0, Msg::make(2));  // contract violation
  }
  void on_wake(Simulator&, NodeId, std::span<const Inbound>) override {}
};

// Contract-violation death tests only fire when contracts are compiled in;
// the CPT_DISABLE_CONTRACTS=ON CI leg skips them.
#if !defined(CPT_DISABLE_CONTRACTS)
TEST(SimulatorDeathTest, BandwidthViolationAborts) {
  const Graph g = gen::path(2);
  Network net(g);
  Simulator sim(net);
  DoubleSend ds;
  EXPECT_DEATH(sim.run(ds), "one message per directed edge per round");
}
#endif

// Wake-only program: counts its wake-ups without any messages.
class SelfWaker : public Program {
 public:
  void begin(Simulator& sim) override { sim.wake_next_round(0); }
  void on_wake(Simulator& sim, NodeId v, std::span<const Inbound> inbox) override {
    EXPECT_TRUE(inbox.empty());
    EXPECT_EQ(v, 0u);
    if (++wakes < 5) sim.wake_next_round(0);
  }
  int wakes = 0;
};

TEST(Simulator, WakeUpsDriveRoundsWithoutMessages) {
  const Graph g = gen::path(3);
  Network net(g);
  Simulator sim(net);
  SelfWaker w;
  const PassResult r = sim.run(w);
  EXPECT_EQ(w.wakes, 5);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Graph g = gen::grid(5, 5);
  Network net(g);
  Simulator sim(net);
  Flood f1(g.num_nodes());
  const PassResult r1 = sim.run(f1);
  Flood f2(g.num_nodes());
  const PassResult r2 = sim.run(f2);
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(r1.messages, r2.messages);
}

TEST(Network, PortNumberingRoundTrips) {
  const Graph g = gen::triangulated_grid(3, 4);
  Network net(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t p = 0; p < net.port_count(v); ++p) {
      const Arc a = net.arc(v, p);
      EXPECT_EQ(net.port_of_edge(v, a.edge), p);
      // The far side's port maps back to the same edge.
      const std::uint32_t q = net.port_of_edge(a.to, a.edge);
      EXPECT_EQ(net.arc(a.to, q).edge, a.edge);
      EXPECT_EQ(net.arc(a.to, q).to, v);
    }
  }
}

TEST(Metrics, LedgerAggregates) {
  RoundLedger ledger;
  ledger.add_pass("a/x", 5, 100);
  ledger.add_pass("a/y", 7, 50);
  ledger.charge("b", 10);
  EXPECT_EQ(ledger.total_rounds(), 22u);
  EXPECT_EQ(ledger.total_messages(), 150u);
  EXPECT_EQ(ledger.rounds_with_prefix("a/"), 12u);
  EXPECT_EQ(ledger.rounds_with_prefix("b"), 10u);
  EXPECT_EQ(ledger.passes().size(), 3u);
}

}  // namespace
}  // namespace cpt::congest
