#include <gtest/gtest.h>

#include "congest/network.h"
#include "congest/metrics.h"
#include "congest/simulator.h"
#include "graph/generators.h"

namespace cpt::congest {
namespace {

// Flood: node 0 starts; every node forwards once. Measures BFS-like rounds.
class Flood : public Program {
 public:
  explicit Flood(NodeId n) : reached(n, 0) {}

  void begin(Exec& sim) override {
    reached[0] = 1;
    for (std::uint32_t p = 0; p < sim.network().port_count(0); ++p) {
      sim.send(0, p, Msg::make(1));
    }
  }

  void on_wake(Exec& sim, NodeId v, std::span<const Inbound> inbox) override {
    if (inbox.empty() || reached[v]) return;
    reached[v] = 1;
    for (std::uint32_t p = 0; p < sim.network().port_count(v); ++p) {
      if (p != inbox.front().port) sim.send(v, p, Msg::make(1));
    }
  }

  std::vector<std::uint8_t> reached;
};

TEST(Simulator, FloodReachesEveryoneInDiameterRounds) {
  const Graph g = gen::path(10);
  Network net(g);
  Simulator sim(net);
  Flood flood(g.num_nodes());
  const PassResult r = sim.run(flood);
  EXPECT_TRUE(r.quiesced);
  EXPECT_EQ(r.rounds, 9u);   // wave traverses the path
  EXPECT_EQ(r.messages, 9u);  // nodes skip the port the wave arrived on
  for (const auto f : flood.reached) EXPECT_TRUE(f);
}

// Ping-pong across one edge for k rounds.
class PingPong : public Program {
 public:
  explicit PingPong(int k) : remaining_(k) {}

  void begin(Exec& sim) override { sim.send(0, 0, Msg::make(7, 123)); }

  void on_wake(Exec& sim, NodeId v, std::span<const Inbound> inbox) override {
    for (const Inbound& in : inbox) {
      EXPECT_EQ(in.msg.tag, 7u);
      EXPECT_EQ(in.msg.w[0], 123);
      if (--remaining_ > 0) sim.send(v, in.port, in.msg);
    }
  }

 private:
  int remaining_;
};

TEST(Simulator, PingPongRoundsAndMessages) {
  const Graph g = gen::path(2);
  Network net(g);
  Simulator sim(net);
  PingPong pp(6);
  const PassResult r = sim.run(pp);
  EXPECT_EQ(r.rounds, 6u);
  EXPECT_EQ(r.messages, 6u);
}

TEST(Simulator, MaxRoundsCutsOff) {
  const Graph g = gen::path(2);
  Network net(g);
  Simulator sim(net);
  PingPong pp(1000);
  const PassResult r = sim.run(pp, 10);
  EXPECT_FALSE(r.quiesced);
  EXPECT_EQ(r.rounds, 10u);
}

// A node that sends twice on the same port in one round violates CONGEST.
class DoubleSend : public Program {
 public:
  void begin(Exec& sim) override {
    sim.send(0, 0, Msg::make(1));
    sim.send(0, 0, Msg::make(2));  // contract violation
  }
  void on_wake(Exec&, NodeId, std::span<const Inbound>) override {}
};

// Contract-violation death tests only fire when contracts are compiled in;
// the CPT_DISABLE_CONTRACTS=ON CI leg skips them.
#if !defined(CPT_DISABLE_CONTRACTS)
TEST(SimulatorDeathTest, BandwidthViolationAborts) {
  const Graph g = gen::path(2);
  Network net(g);
  Simulator sim(net);
  DoubleSend ds;
  EXPECT_DEATH(sim.run(ds), "one message per directed edge per round");
}
#endif

// Wake-only program: counts its wake-ups without any messages.
class SelfWaker : public Program {
 public:
  void begin(Exec& sim) override { sim.wake_next_round(0); }
  void on_wake(Exec& sim, NodeId v, std::span<const Inbound> inbox) override {
    EXPECT_TRUE(inbox.empty());
    EXPECT_EQ(v, 0u);
    if (++wakes < 5) sim.wake_next_round(0);
  }
  int wakes = 0;
};

TEST(Simulator, WakeUpsDriveRoundsWithoutMessages) {
  const Graph g = gen::path(3);
  Network net(g);
  Simulator sim(net);
  SelfWaker w;
  const PassResult r = sim.run(w);
  EXPECT_EQ(w.wakes, 5);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Graph g = gen::grid(5, 5);
  Network net(g);
  Simulator sim(net);
  Flood f1(g.num_nodes());
  const PassResult r1 = sim.run(f1);
  Flood f2(g.num_nodes());
  const PassResult r2 = sim.run(f2);
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(r1.messages, r2.messages);
}

// Echo storm: every node echoes every inbound message for `rounds` rounds.
// Saturates every directed edge, the densest load the executor sees.
class Echo : public Program {
 public:
  explicit Echo(NodeId n, std::uint64_t rounds) : inboxes(n, 0), rounds_(rounds) {}

  void begin(Exec& sim) override {
    const NodeId n = static_cast<NodeId>(inboxes.size());
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < sim.network().port_count(v); ++p) {
        sim.send(v, p, Msg::make(1, static_cast<std::int64_t>(v), p));
      }
    }
  }

  void on_wake(Exec& sim, NodeId v, std::span<const Inbound> inbox) override {
    inboxes[v] += static_cast<std::uint64_t>(inbox.size());
    if (sim.current_round() >= rounds_) return;
    for (const Inbound& in : inbox) sim.send(v, in.port, in.msg);
  }

  std::vector<std::uint64_t> inboxes;

 private:
  std::uint64_t rounds_;
};

// The tentpole guarantee: any worker count produces the serial results
// bit-for-bit -- same rounds, same messages, same per-node state.
TEST(Simulator, ParallelMatchesSerialBitForBit) {
  const Graph g = gen::triangulated_grid(9, 7);
  Network net(g);
  SimOptions serial_opt;
  serial_opt.num_threads = 1;
  Simulator serial(net, serial_opt);
  Flood ref_flood(g.num_nodes());
  const PassResult ref_f = serial.run(ref_flood);
  Echo ref_echo(g.num_nodes(), 5);
  const PassResult ref_e = serial.run(ref_echo);

  for (const unsigned threads : {2u, 4u, 8u}) {
    SimOptions opt;
    opt.num_threads = threads;
    opt.parallel_grain = 1;  // force pool dispatch for every nontrivial round
    Simulator sim(net, opt);
    Flood flood(g.num_nodes());
    const PassResult rf = sim.run(flood);
    EXPECT_EQ(rf.rounds, ref_f.rounds) << threads;
    EXPECT_EQ(rf.messages, ref_f.messages) << threads;
    EXPECT_EQ(flood.reached, ref_flood.reached) << threads;

    Echo echo(g.num_nodes(), 5);
    const PassResult re = sim.run(echo);
    EXPECT_EQ(re.rounds, ref_e.rounds) << threads;
    EXPECT_EQ(re.messages, ref_e.messages) << threads;
    EXPECT_EQ(echo.inboxes, ref_echo.inboxes) << threads;
  }
}

// The delivery-strategy / rebalancing matrix: union delivery (the default)
// and the K-way merge fallback, with observed-load shard rebalancing on
// (at an aggressive epoch so it actually fires in these short passes) and
// off, all reproduce the serial run bit-for-bit.
TEST(Simulator, UnionMergeAndRebalanceMatrixMatchesSerial) {
  const Graph g = gen::triangulated_grid(9, 7);
  Network net(g);
  SimOptions serial_opt;
  serial_opt.num_threads = 1;
  Simulator serial(net, serial_opt);
  Flood ref_flood(g.num_nodes());
  const PassResult ref_f = serial.run(ref_flood);
  Echo ref_echo(g.num_nodes(), 9);
  const PassResult ref_e = serial.run(ref_echo);

  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const bool union_delivery : {true, false}) {
      for (const bool rebalance : {true, false}) {
        SimOptions opt;
        opt.num_threads = threads;
        opt.parallel_grain = 1;
        opt.union_delivery = union_delivery;
        opt.rebalance_shards = rebalance;
        opt.rebalance_interval = 2;  // several epochs within 9 rounds
        Simulator sim(net, opt);
        const auto label = [&] {
          return ::testing::Message()
                 << threads << (union_delivery ? " union" : " merge")
                 << (rebalance ? " rebalance" : " static");
        };
        Flood flood(g.num_nodes());
        const PassResult rf = sim.run(flood);
        EXPECT_EQ(rf.rounds, ref_f.rounds) << label();
        EXPECT_EQ(rf.messages, ref_f.messages) << label();
        EXPECT_EQ(flood.reached, ref_flood.reached) << label();

        Echo echo(g.num_nodes(), 9);
        const PassResult re = sim.run(echo);
        EXPECT_EQ(re.rounds, ref_e.rounds) << label();
        EXPECT_EQ(re.messages, ref_e.messages) << label();
        EXPECT_EQ(echo.inboxes, ref_echo.inboxes) << label();
      }
    }
  }
}

// Wake-ups and messages merge identically when they land on the same and
// on different nodes, across the serial/parallel boundary.
TEST(Simulator, ParallelWakeAndInboxMergeMatchesSerial) {
  const Graph g = gen::grid(6, 6);
  Network net(g);

  class WakeAndSend : public Program {
   public:
    explicit WakeAndSend(NodeId n) : hits(n, 0) {}
    void begin(Exec& sim) override {
      const NodeId n = static_cast<NodeId>(hits.size());
      for (NodeId v = 0; v < n; ++v) {
        sim.wake_next_round(v);
        if (v % 3 == 0) sim.send(v, 0, Msg::make(2));
      }
    }
    void on_wake(Exec& sim, NodeId v, std::span<const Inbound> inbox) override {
      hits[v] += 1 + 100 * static_cast<std::uint64_t>(inbox.size());
      if (sim.current_round() < 4 && v % 2 == 0) sim.wake_next_round(v);
    }
    std::vector<std::uint64_t> hits;
  };

  SimOptions serial_opt;
  serial_opt.num_threads = 1;
  Simulator serial(net, serial_opt);
  WakeAndSend ref(g.num_nodes());
  const PassResult rr = serial.run(ref);

  SimOptions opt;
  opt.num_threads = 4;
  opt.parallel_grain = 1;
  Simulator par(net, opt);
  WakeAndSend got(g.num_nodes());
  const PassResult rp = par.run(got);
  EXPECT_EQ(rp.rounds, rr.rounds);
  EXPECT_EQ(rp.messages, rr.messages);
  EXPECT_EQ(got.hits, ref.hits);
}

TEST(Network, PortNumberingRoundTrips) {
  const Graph g = gen::triangulated_grid(3, 4);
  Network net(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t p = 0; p < net.port_count(v); ++p) {
      const Arc a = net.arc(v, p);
      EXPECT_EQ(net.port_of_edge(v, a.edge), p);
      // The far side's port maps back to the same edge.
      const std::uint32_t q = net.port_of_edge(a.to, a.edge);
      EXPECT_EQ(net.arc(a.to, q).edge, a.edge);
      EXPECT_EQ(net.arc(a.to, q).to, v);
    }
  }
}

TEST(Metrics, LedgerAggregates) {
  RoundLedger ledger;
  ledger.add_pass("a/x", 5, 100);
  ledger.add_pass("a/y", 7, 50);
  ledger.charge("b", 10);
  EXPECT_EQ(ledger.total_rounds(), 22u);
  EXPECT_EQ(ledger.total_messages(), 150u);
  EXPECT_EQ(ledger.rounds_with_prefix("a/"), 12u);
  EXPECT_EQ(ledger.rounds_with_prefix("b"), 10u);
  EXPECT_EQ(ledger.passes().size(), 3u);
}

}  // namespace
}  // namespace cpt::congest
