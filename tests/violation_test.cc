#include <gtest/gtest.h>

#include "core/violation.h"
#include "util/rng.h"

namespace cpt {
namespace {

LabelPair mk(std::initializer_list<std::uint32_t> a,
             std::initializer_list<std::uint32_t> b) {
  return LabelPair::normalized(Label(a), Label(b));
}

TEST(LabelsIntersect, InterleavedPairs) {
  // l(u) < l(u') < l(v) < l(v').
  EXPECT_TRUE(labels_intersect(mk({1}, {3}), mk({2}, {4})));
  EXPECT_TRUE(labels_intersect(mk({2}, {4}), mk({1}, {3})));  // symmetric
  EXPECT_TRUE(labels_intersect(mk({1}, {2, 1}), mk({2}, {3})));
}

TEST(LabelsIntersect, NestedPairsDoNot) {
  EXPECT_FALSE(labels_intersect(mk({1}, {4}), mk({2}, {3})));
  EXPECT_FALSE(labels_intersect(mk({2}, {3}), mk({1}, {4})));
}

TEST(LabelsIntersect, DisjointPairsDoNot) {
  EXPECT_FALSE(labels_intersect(mk({1}, {2}), mk({3}, {4})));
}

TEST(LabelsIntersect, SharedEndpointsDoNot) {
  // Strict inequalities: shared labels break the pattern.
  EXPECT_FALSE(labels_intersect(mk({1}, {2}), mk({1}, {3})));
  EXPECT_FALSE(labels_intersect(mk({1}, {2}), mk({2}, {3})));
  EXPECT_FALSE(labels_intersect(mk({1}, {3}), mk({2}, {3})));
}

TEST(LabelsIntersect, PrefixOrderSemantics) {
  // {1} < {1,1} < {1,2} < {2} in footnote-5 lex order.
  EXPECT_TRUE(labels_intersect(mk({1}, {1, 2}), mk({1, 1}, {2})));
  EXPECT_FALSE(labels_intersect(mk({1}, {2}), mk({1, 1}, {1, 2})));  // nested
}

TEST(ViolatingMask, SmallKnownConfigurations) {
  // Chain of interleaves: e0-e1 interleave, e2 disjoint from both.
  std::vector<LabelPair> edges = {mk({1}, {3}), mk({2}, {4}), mk({5}, {6})};
  const auto mask = violating_mask(edges);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);
  EXPECT_EQ(count_violating(edges), 2u);
}

TEST(ViolatingMask, AllNestedIsClean) {
  std::vector<LabelPair> edges;
  for (std::uint32_t i = 0; i < 20; ++i) {
    edges.push_back(mk({10 + i}, {100 - i}));
  }
  EXPECT_EQ(count_violating(edges), 0u);
}

TEST(ViolatingMask, EveryPairInterleaves) {
  // Edges (i, i+50) for i = 0..29: every pair interleaves.
  std::vector<LabelPair> edges;
  for (std::uint32_t i = 0; i < 30; ++i) {
    edges.push_back(mk({i}, {50 + i}));
  }
  EXPECT_EQ(count_violating(edges), 30u);
}

TEST(ViolatingMask, EmptyAndSingleton) {
  EXPECT_EQ(count_violating({}), 0u);
  std::vector<LabelPair> one = {mk({1}, {2})};
  EXPECT_EQ(count_violating(one), 0u);
}

// Property fuzz: the sweep implementation must agree with the quadratic
// reference on random label-pair sets.
class ViolationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ViolationFuzz, SweepMatchesQuadratic) {
  Rng rng(9000 + GetParam());
  const int k = 5 + static_cast<int>(rng.next_below(120));
  std::vector<LabelPair> edges;
  for (int i = 0; i < k; ++i) {
    const auto mk_label = [&] {
      Label l(1 + rng.next_below(4));
      for (auto& x : l) x = static_cast<std::uint32_t>(rng.next_below(6));
      return l;
    };
    Label a = mk_label();
    Label b = mk_label();
    if (a == b) b.push_back(1);
    edges.push_back(LabelPair::normalized(std::move(a), std::move(b)));
  }
  EXPECT_EQ(violating_mask(edges), violating_mask_quadratic(edges));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViolationFuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace cpt
