#include <gtest/gtest.h>

#include "core/tester.h"
#include "planar/lr_planarity.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

TesterOptions opts(double eps, std::uint64_t seed) {
  TesterOptions o;
  o.epsilon = eps;
  o.seed = seed;
  return o;
}

// One-sidedness: every planar family member is accepted, for every seed.
class OneSided : public ::testing::TestWithParam<int> {};

TEST_P(OneSided, PlanarAlwaysAccepted) {
  for (const auto& c : testutil::planar_family(GetParam())) {
    const TesterResult r = test_planarity(c.graph, opts(0.25, GetParam()));
    EXPECT_EQ(r.verdict, Verdict::kAccept)
        << c.name << " seed=" << GetParam() << " reason=" << r.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneSided, ::testing::Range(0, 6));

// Detection: far-from-planar families are rejected.
class Detection : public ::testing::TestWithParam<int> {};

TEST_P(Detection, FarFamiliesRejected) {
  for (const auto& c : testutil::far_family(GetParam())) {
    const TesterResult r = test_planarity(c.graph, opts(0.2, GetParam()));
    EXPECT_EQ(r.verdict, Verdict::kReject)
        << c.name << " seed=" << GetParam();
    EXPECT_FALSE(r.rejecting_nodes.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Detection, ::testing::Range(0, 4));

TEST(TesterE2e, RejectionReasonsAreInformative) {
  const TesterResult k5 = test_planarity(gen::complete(5), opts(0.2, 1));
  EXPECT_NE(k5.reason.find("edge bound"), std::string::npos);

  Rng rng(2);
  const TesterResult dense =
      test_planarity(gen::gnp(300, 12.0 / 300, rng), opts(0.2, 1));
  EXPECT_NE(dense.reason.find("arboricity"), std::string::npos);
  EXPECT_TRUE(dense.stage1_rejected);
}

TEST(TesterE2e, DeterministicForFixedSeed) {
  Rng rng(3);
  const Graph g = gen::planar_with_k5_blobs(150, 20, rng);
  const TesterResult a = test_planarity(g, opts(0.25, 7));
  const TesterResult b = test_planarity(g, opts(0.25, 7));
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.rounds(), b.rounds());
  EXPECT_EQ(a.rejecting_nodes, b.rejecting_nodes);
}

TEST(TesterE2e, LedgerRoundsAreConsistent) {
  Rng rng(4);
  const Graph g = gen::apollonian(150, rng);
  const TesterResult r = test_planarity(g, opts(0.25, 1));
  std::uint64_t sum = 0;
  for (const auto& p : r.ledger.passes()) sum += p.rounds;
  EXPECT_EQ(sum, r.rounds());
  EXPECT_GT(r.rounds(), 0u);
}

TEST(TesterE2e, EpsilonControlsPhaseBudget) {
  Rng rng(5);
  const Graph g = gen::apollonian(100, rng);
  const TesterResult loose = test_planarity(g, opts(0.5, 1));
  const TesterResult tight = test_planarity(g, opts(0.05, 1));
  EXPECT_LT(loose.stage1_phases_total, tight.stage1_phases_total);
}

TEST(TesterE2e, PartitionMeetsClaim3CutBound) {
  Rng rng(6);
  const Graph g = gen::triangulated_grid(12, 12);
  const double eps = 0.25;
  const TesterResult r = test_planarity(g, opts(eps, 1));
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_LE(static_cast<double>(r.partition.cut_edges),
            eps * g.num_edges() / 2.0);
}

TEST(TesterE2e, BlobDetectionAcrossSeeds) {
  // K5 blobs on a planar backbone survive Stage I (arboricity 3) and must
  // be caught by Stage II sampling, whp over seeds.
  Rng rng(7);
  const Graph g = gen::planar_with_k5_blobs(300, 40, rng);
  int rejected = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    if (test_planarity(g, opts(0.2, seed)).verdict == Verdict::kReject) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 6);
}

TEST(TesterE2e, ExhaustiveOracleAgreesWithSampling) {
  Rng rng(8);
  const Graph g = gen::planar_with_k5_blobs(200, 25, rng);
  TesterOptions sampled = opts(0.2, 3);
  TesterOptions oracle = opts(0.2, 3);
  oracle.stage2.exhaustive_check = true;
  EXPECT_EQ(test_planarity(g, sampled).verdict, Verdict::kReject);
  EXPECT_EQ(test_planarity(g, oracle).verdict, Verdict::kReject);
}

TEST(TesterE2e, DisconnectedMixedVerdict) {
  // Planar component + non-planar component => reject (some node rejects).
  const std::vector<Graph> parts = {gen::grid(8, 8), gen::complete(6)};
  const Graph g = disjoint_union(parts);
  const TesterResult r = test_planarity(g, opts(0.2, 1));
  EXPECT_EQ(r.verdict, Verdict::kReject);
  // Rejecting nodes live in the K6 component (ids >= 64).
  for (const NodeId v : r.rejecting_nodes) EXPECT_GE(v, 64u);
}

// Strong one-sidedness fuzz: on ARBITRARY random graphs (planar or not),
// a reject verdict must imply non-planarity -- the tester never needs to
// reject, but when it does the witness must be real.
class RejectSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RejectSoundness, RejectImpliesNonPlanar) {
  Rng rng(7000 + GetParam());
  const NodeId n = 10 + static_cast<NodeId>(rng.next_below(120));
  const EdgeId max_m = std::min<EdgeId>(3 * n, n * (n - 1) / 2);
  const EdgeId m = 1 + static_cast<EdgeId>(rng.next_below(max_m));
  const Graph g = gen::gnm(n, m, rng);
  const TesterResult r = test_planarity(g, opts(0.2, GetParam()));
  if (r.verdict == Verdict::kReject) {
    EXPECT_FALSE(is_planar(g)) << "false reject: n=" << n << " m=" << m;
  }
  if (is_planar(g)) {
    EXPECT_EQ(r.verdict, Verdict::kAccept);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RejectSoundness, ::testing::Range(0, 20));

TEST(TesterE2e, EmptyAndTinyGraphs) {
  EXPECT_EQ(test_planarity(gen::path(1), opts(0.2, 1)).verdict,
            Verdict::kAccept);
  EXPECT_EQ(test_planarity(gen::path(2), opts(0.2, 1)).verdict,
            Verdict::kAccept);
  EXPECT_EQ(test_planarity(gen::complete(4), opts(0.2, 1)).verdict,
            Verdict::kAccept);
}

}  // namespace
}  // namespace cpt
