#include <gtest/gtest.h>

#include "baseline/en_partition.h"
#include "baseline/en_tester.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

EnPartitionResult run_part(const Graph& g, double eps, std::uint64_t seed,
                           congest::RoundLedger* ledger_out = nullptr) {
  congest::Network net(g);
  congest::Simulator sim(net);
  congest::RoundLedger ledger;
  EnPartitionOptions opt;
  opt.epsilon = eps;
  opt.seed = seed;
  EnPartitionResult r = run_en_partition(sim, g, opt, ledger);
  if (ledger_out != nullptr) *ledger_out = ledger;
  return r;
}

TEST(EnPartition, ForestIsValid) {
  Rng rng(3);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::random_planar(200, 450, rng);
    const EnPartitionResult r = run_part(g, 0.2, seed);
    EXPECT_TRUE(validate_part_forest(g, r.forest));
  }
}

TEST(EnPartition, CutIsSmallOnAverage) {
  // MPX-style clustering cuts each edge with probability O(beta); across
  // seeds the average cut must stay well below m.
  const Graph g = gen::triangulated_grid(14, 14);
  double total_cut = 0;
  constexpr int kSeeds = 6;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const EnPartitionResult r = run_part(g, 0.2, seed);
    total_cut += static_cast<double>(measure_partition(g, r.forest).cut_edges);
  }
  EXPECT_LE(total_cut / kSeeds, 0.35 * g.num_edges());
}

TEST(EnPartition, PartRadiusBoundedByMaxShift) {
  const Graph g = gen::grid(16, 16);
  const EnPartitionResult r = run_part(g, 0.2, 7);
  const PartitionStats stats = measure_partition(g, r.forest);
  EXPECT_LE(stats.max_tree_depth, r.max_shift + 1);
}

TEST(EnPartition, RoundsScaleWithLogNOverEps) {
  congest::RoundLedger tight;
  congest::RoundLedger loose;
  const Graph g = gen::grid(14, 14);
  run_part(g, 0.05, 3, &tight);
  run_part(g, 0.4, 3, &loose);
  EXPECT_GT(tight.total_rounds(), loose.total_rounds());
}

TEST(EnTester, PlanarAccepted) {
  Rng rng(5);
  EnTesterOptions opt;
  opt.epsilon = 0.25;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    opt.seed = seed;
    const Graph g = gen::random_planar(150, 330, rng);
    const TesterResult r = test_planarity_en(g, opt);
    EXPECT_EQ(r.verdict, Verdict::kAccept) << r.reason;
  }
}

TEST(EnTester, FarGraphsRejected) {
  EnTesterOptions opt;
  opt.epsilon = 0.2;
  opt.seed = 3;
  EXPECT_EQ(test_planarity_en(gen::disjoint_copies(gen::complete(5), 40), opt)
                .verdict,
            Verdict::kReject);
  Rng rng(7);
  EXPECT_EQ(
      test_planarity_en(gen::planar_with_k5_blobs(200, 30, rng), opt).verdict,
      Verdict::kReject);
}

TEST(EnTester, LedgerPopulated) {
  Rng rng(9);
  EnTesterOptions opt;
  opt.epsilon = 0.25;
  opt.seed = 1;
  const TesterResult r = test_planarity_en(gen::apollonian(120, rng), opt);
  EXPECT_GT(r.ledger.rounds_with_prefix("en/shifted-bfs"), 0u);
  EXPECT_GT(r.ledger.rounds_with_prefix("stage2/"), 0u);
}

}  // namespace
}  // namespace cpt
