#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"

namespace cpt {
namespace {

TEST(Properties, ConnectedComponents) {
  const std::vector<Graph> parts = {gen::cycle(4), gen::path(3), gen::complete(5)};
  const Graph g = disjoint_union(parts);
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.num_components, 3u);
  EXPECT_EQ(info.component_of[0], info.component_of[3]);
  EXPECT_NE(info.component_of[0], info.component_of[4]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(gen::grid(4, 4)));
}

TEST(Properties, BfsDistancesOnGrid) {
  const Graph g = gen::grid(3, 3);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[4], 2u);  // center
  EXPECT_EQ(dist[8], 4u);  // opposite corner
}

TEST(Properties, DiameterKnownValues) {
  EXPECT_EQ(diameter_exact(gen::path(10)), 9u);
  EXPECT_EQ(diameter_exact(gen::cycle(10)), 5u);
  EXPECT_EQ(diameter_exact(gen::complete(6)), 1u);
  EXPECT_EQ(diameter_exact(gen::grid(4, 7)), 3u + 6u);
  EXPECT_GE(diameter_exact(gen::path(50)), diameter_lower_bound(gen::path(50)));
}

TEST(Properties, BipartitenessKnownCases) {
  EXPECT_TRUE(is_bipartite(gen::grid(5, 6)));
  EXPECT_TRUE(is_bipartite(gen::cycle(8)));
  EXPECT_FALSE(is_bipartite(gen::cycle(9)));
  EXPECT_TRUE(is_bipartite(gen::binary_tree(31)));
  EXPECT_FALSE(is_bipartite(gen::complete(3)));
  EXPECT_TRUE(is_bipartite(gen::complete_bipartite(4, 5)));
  EXPECT_FALSE(is_bipartite(gen::triangulated_grid(3, 3)));
}

TEST(Properties, BipartitionIsProper) {
  const Graph g = gen::hypercube(4);
  const auto coloring = bipartition(g);
  ASSERT_TRUE(coloring.has_value());
  for (const Endpoints e : g.edges()) {
    EXPECT_NE((*coloring)[e.u], (*coloring)[e.v]);
  }
}

TEST(Properties, HasCycle) {
  EXPECT_FALSE(has_cycle(gen::path(10)));
  EXPECT_FALSE(has_cycle(gen::binary_tree(20)));
  EXPECT_TRUE(has_cycle(gen::cycle(3)));
  const std::vector<Graph> parts = {gen::path(5), gen::cycle(4)};
  EXPECT_TRUE(has_cycle(disjoint_union(parts)));
}

TEST(Properties, GirthKnownValues) {
  EXPECT_EQ(girth(gen::cycle(7)), 7u);
  EXPECT_EQ(girth(gen::grid(4, 4)), 4u);
  EXPECT_EQ(girth(gen::complete(5)), 3u);
  EXPECT_EQ(girth(gen::complete_bipartite(3, 3)), 4u);
  EXPECT_EQ(girth(gen::path(10)), kUnreachable);  // acyclic
  EXPECT_EQ(girth(gen::hypercube(4)), 4u);
  // Petersen graph: girth 5.
  GraphBuilder pb(10);
  for (NodeId i = 0; i < 5; ++i) {
    pb.add_edge(i, (i + 1) % 5);
    pb.add_edge(i, i + 5);
    pb.add_edge(i + 5, 5 + (i + 2) % 5);
  }
  EXPECT_EQ(girth(std::move(pb).build()), 5u);
}

TEST(Properties, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(gen::path(10)), 1u);
  EXPECT_EQ(degeneracy(gen::binary_tree(20)), 1u);
  EXPECT_EQ(degeneracy(gen::cycle(12)), 2u);
  EXPECT_EQ(degeneracy(gen::complete(6)), 5u);
  EXPECT_EQ(degeneracy(gen::grid(5, 5)), 2u);
  Rng rng(3);
  // Apollonian networks are 3-degenerate.
  EXPECT_EQ(degeneracy(gen::apollonian(100, rng)), 3u);
}

TEST(Properties, ArboricityLowerBound) {
  EXPECT_EQ(arboricity_lower_bound(gen::complete(5)), 3u);  // ceil(10/4)
  EXPECT_EQ(arboricity_lower_bound(gen::path(10)), 1u);
  Rng rng(5);
  // Planar graphs have arboricity <= 3; the bound must respect that.
  EXPECT_LE(arboricity_lower_bound(gen::apollonian(200, rng)), 3u);
}

TEST(Properties, PlanarityDistanceLowerBound) {
  EXPECT_EQ(planarity_distance_lower_bound(gen::complete(5)), 1u);   // 10 - 9
  EXPECT_EQ(planarity_distance_lower_bound(gen::grid(5, 5)), 0u);
  EXPECT_EQ(planarity_distance_lower_bound(gen::complete(8)), 28u - 18u);
  Rng rng(7);
  EXPECT_EQ(planarity_distance_lower_bound(gen::apollonian(64, rng)), 0u);
}

TEST(Properties, EccentricityMatchesDiameterOnPaths) {
  const Graph g = gen::path(20);
  EXPECT_EQ(eccentricity(g, 0), 19u);
  EXPECT_EQ(eccentricity(g, 10), 10u);
}

}  // namespace
}  // namespace cpt
