#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"

namespace cpt {
namespace {

TEST(GraphIo, RoundTripPreservesGraph) {
  Rng rng(3);
  const Graph g = gen::random_planar(80, 180, rng);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (const Endpoints e : g.edges()) {
    EXPECT_TRUE(back.has_edge(e.u, e.v));
  }
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::stringstream in;
  in << "# a triangle\n\n3 3\n0 1\n# middle comment\n1 2\n\n0 2\n";
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream in("0 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphIo, IsolatedNodesSurvive) {
  std::stringstream in("5 1\n0 4\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(7);
  const Graph g = gen::triangulated_grid(6, 7);
  const std::string path = ::testing::TempDir() + "/cpt_io_test.edges";
  save_edge_list_file(g, path);
  const Graph back = load_edge_list_file(path);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace cpt
