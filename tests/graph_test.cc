#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/ops.h"

namespace cpt {
namespace {

TEST(GraphBuilder, DeduplicatesAndNormalizes) {
  GraphBuilder b(4);
  b.add_edge(1, 0);
  b.add_edge(0, 1);  // duplicate in the other orientation
  b.add_edge(2, 3);
  b.add_edge(2, 3);  // exact duplicate
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DegreesAndNeighborsConsistent) {
  const Graph g = gen::grid(3, 4);
  std::uint64_t degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degree_sum += g.degree(v);
    for (const Arc& a : g.neighbors(v)) {
      EXPECT_EQ(g.other_endpoint(a.edge, v), a.to);
      EXPECT_TRUE(g.has_edge(v, a.to));
    }
  }
  EXPECT_EQ(degree_sum, 2ull * g.num_edges());
}

TEST(Graph, FindEdgeRoundTrips) {
  const Graph g = gen::triangulated_grid(4, 4);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    EXPECT_EQ(g.find_edge(ep.u, ep.v), e);
    EXPECT_EQ(g.find_edge(ep.v, ep.u), e);
  }
  EXPECT_EQ(g.find_edge(0, 0), kNoEdge);
}

TEST(Graph, EdgeIdsAreStableAndCoverEdgeList) {
  const Graph g = gen::cycle(10);
  EXPECT_EQ(g.edges().size(), 10u);
  for (const Endpoints e : g.edges()) EXPECT_TRUE(g.has_edge(e.u, e.v));
}

TEST(Ops, InducedSubgraphKeepsInternalEdgesOnly) {
  const Graph g = gen::grid(3, 3);
  const std::vector<NodeId> nodes = {0, 1, 3, 4};  // top-left square
  const InducedSubgraph sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 4u);  // the 4-cycle
  for (NodeId sv = 0; sv < 4; ++sv) {
    EXPECT_EQ(sub.from_original[sub.to_original[sv]], sv);
  }
}

TEST(Ops, ContractCollapsesParallelEdgesIntoWeights) {
  // Two parts with three crossing edges.
  GraphBuilder b(4);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  b.add_edge(0, 1);  // intra-part
  const Graph g = std::move(b).build();
  const std::vector<NodeId> part_of = {0, 0, 1, 1};
  const WeightedGraph wg = contract(g, part_of, 2);
  EXPECT_EQ(wg.graph.num_nodes(), 2u);
  ASSERT_EQ(wg.graph.num_edges(), 1u);
  EXPECT_EQ(wg.edge_weight[0], 3u);
  EXPECT_EQ(wg.total_weight(), 3u);
}

TEST(Ops, DisjointUnionShiftsIds) {
  const std::vector<Graph> parts = {gen::complete(3), gen::path(4)};
  const Graph g = disjoint_union(parts);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 3u + 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Ops, RelabelPreservesStructure) {
  const Graph g = gen::cycle(6);
  const std::vector<NodeId> perm = {5, 4, 3, 2, 1, 0};
  const Graph h = relabel(g, perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (const Endpoints e : g.edges()) {
    EXPECT_TRUE(h.has_edge(perm[e.u], perm[e.v]));
  }
}

TEST(Ops, AddAndRemoveEdges) {
  const Graph g = gen::path(5);
  const std::vector<Endpoints> extra = {{0, 4}, {1, 3}};
  const Graph h = add_edges(g, extra);
  EXPECT_EQ(h.num_edges(), g.num_edges() + 2);
  EXPECT_TRUE(h.has_edge(0, 4));

  const std::vector<EdgeId> del = {h.find_edge(0, 4)};
  const Graph back = remove_edges(h, del);
  EXPECT_EQ(back.num_edges(), h.num_edges() - 1);
  EXPECT_FALSE(back.has_edge(0, 4));
  EXPECT_TRUE(back.has_edge(1, 3));
}

TEST(Ops, AddEdgesIgnoresDuplicates) {
  const Graph g = gen::path(3);
  const std::vector<Endpoints> extra = {{0, 1}};  // already present
  EXPECT_EQ(add_edges(g, extra).num_edges(), g.num_edges());
}

}  // namespace
}  // namespace cpt
