// Differential + golden-ledger pinning of the Stage I partition drivers.
//
// Two safety nets behind the arena/root-list/pipelining refactor:
//  1. Differential: Stage I with pipelined streams (the default) and with
//     the unpipelined legacy schedule must produce bit-identical partitions
//     (roots, members, parent edges, per-phase part counts), with the
//     pipelined run costing no more rounds or messages on any phase.
//  2. Golden ledgers: for fixed seeds, the total rounds/messages and a
//     fingerprint of (forest, per-phase rounds/parts/cut) must match the
//     recorded reference values, so later perf PRs cannot silently change
//     the CONGEST complexity or the computed partition.
//
// Regenerating goldens: run with CPT_PRINT_GOLDENS=1 in the environment and
// paste the printed table over kGoldens below.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

struct RunOutput {
  Stage1Result result;
  congest::RoundLedger ledger;
};

RunOutput run_stage1_mode(const Graph& g, double epsilon, bool pipelined,
                          unsigned num_threads = 1, bool rebalance = true,
                          std::uint32_t rebalance_interval = 64) {
  congest::Network net(g);
  congest::SimOptions sopt;
  sopt.num_threads = num_threads;
  sopt.rebalance_shards = rebalance;
  sopt.rebalance_interval = rebalance_interval;
  // Force pool dispatch for every nontrivial round so the sweep exercises
  // the parallel executor even on the small golden graphs.
  if (num_threads > 1) sopt.parallel_grain = 1;
  congest::Simulator sim(net, sopt);
  RunOutput out;
  Stage1Options opt;
  opt.epsilon = epsilon;
  opt.pipelined_streams = pipelined;
  out.result = run_stage1(sim, g, opt, out.ledger);
  return out;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

// Fingerprint of everything the golden pins: the forest (roots and parent
// edges per node) and the per-phase trajectory (rounds, parts, cut).
std::uint64_t fingerprint(const RunOutput& out) {
  std::uint64_t h = 14695981039346656037ULL;
  const PartForest& pf = out.result.forest;
  h = fnv1a(h, pf.num_nodes());
  for (NodeId v = 0; v < pf.num_nodes(); ++v) {
    h = fnv1a(h, pf.root[v]);
    h = fnv1a(h, pf.parent_edge[v]);
  }
  h = fnv1a(h, out.result.rejected ? 1 : 0);
  h = fnv1a(h, out.result.phases_emulated);
  h = fnv1a(h, out.result.phases_total);
  for (const PhaseStats& p : out.result.phase_stats) {
    h = fnv1a(h, p.rounds);
    h = fnv1a(h, p.parts_after);
    h = fnv1a(h, p.cut_after);
  }
  return h;
}

struct Case {
  const char* name;
  Graph graph;
  double epsilon;
};

std::vector<Case> golden_cases() {
  std::vector<Case> cases;
  {
    Rng rng(21);
    cases.push_back({"trigrid_12x9", gen::triangulated_grid(12, 9), 0.25});
    cases.push_back({"grid_16x16", gen::grid(16, 16), 0.25});
    cases.push_back({"rnd_planar_300", gen::random_planar(300, 700, rng), 0.25});
  }
  {
    Rng rng(33);
    cases.push_back({"apollonian_150", gen::apollonian(150, rng), 0.1});
  }
  {
    // eps-far inputs: the dense one rejects with arboricity evidence, the
    // K5 union partitions fine (Stage I only rejects on arboricity).
    Rng rng(7);
    cases.push_back({"far_gnp_dense", gen::gnp(120, 14.0 / 120, rng), 0.25});
    cases.push_back(
        {"far_k5_union", gen::disjoint_copies(gen::complete(5), 20), 0.25});
  }
  return cases;
}

struct Golden {
  const char* name;
  std::uint64_t fp;
  std::uint64_t rounds;
  std::uint64_t messages;
  std::uint32_t phases_emulated;
  NodeId parts;
  bool rejected;
};

// Recorded reference ledgers (pipelined Stage I, the shipping default).
// Regenerate with CPT_PRINT_GOLDENS=1.
constexpr Golden kGoldens[] = {
    {"trigrid_12x9", 0x60c1ca4c4c04e240ULL, 10149ULL, 34934ULL, 9u, 1u, false},
    {"grid_16x16", 0xa6fc8f7edffc29c7ULL, 25624ULL, 99392ULL, 10u, 1u, false},
    {"rnd_planar_300", 0xc87a0f30f0a5151ULL, 4163ULL, 57699ULL, 6u, 1u, false},
    {"apollonian_150", 0x5bbc369739e5f915ULL, 5886ULL, 38115ULL, 8u, 1u, false},
    {"far_gnp_dense", 0x971d7828f5851928ULL, 14ULL, 19815ULL, 1u, 120u, true},
    {"far_k5_union", 0x88c6263a825b9832ULL, 1904ULL, 6590ULL, 4u, 20u, false},
};

TEST(Stage1Differential, PipelinedMatchesUnpipelinedPartitions) {
  for (Case& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunOutput pip = run_stage1_mode(c.graph, c.epsilon, true);
    const RunOutput base = run_stage1_mode(c.graph, c.epsilon, false);

    // Identical partition state.
    EXPECT_EQ(pip.result.rejected, base.result.rejected);
    EXPECT_EQ(pip.result.phases_emulated, base.result.phases_emulated);
    EXPECT_EQ(pip.result.forest.root, base.result.forest.root);
    EXPECT_EQ(pip.result.forest.parent_edge, base.result.forest.parent_edge);
    EXPECT_EQ(pip.result.forest.depth, base.result.forest.depth);
    ASSERT_EQ(pip.result.forest.num_nodes(), base.result.forest.num_nodes());
    for (const NodeId r : pip.result.forest.live_roots()) {
      std::vector<NodeId> a = pip.result.forest.members[r];
      std::vector<NodeId> b = base.result.forest.members[r];
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "members of part " << r;
    }
    if (!pip.result.rejected) {
      EXPECT_TRUE(validate_part_forest(c.graph, pip.result.forest));
    }

    // Identical per-phase trajectory, with pipelining only reducing cost.
    ASSERT_EQ(pip.result.phase_stats.size(), base.result.phase_stats.size());
    for (std::size_t i = 0; i < pip.result.phase_stats.size(); ++i) {
      const PhaseStats& a = pip.result.phase_stats[i];
      const PhaseStats& b = base.result.phase_stats[i];
      EXPECT_EQ(a.parts_after, b.parts_after) << "phase " << i + 1;
      EXPECT_EQ(a.cut_after, b.cut_after) << "phase " << i + 1;
      EXPECT_LE(a.rounds, b.rounds) << "phase " << i + 1;
    }
    EXPECT_LE(pip.ledger.total_rounds(), base.ledger.total_rounds());
    EXPECT_LE(pip.ledger.total_messages(), base.ledger.total_messages());
  }
}

TEST(Stage1Differential, GoldenLedgersMatch) {
  const bool print = std::getenv("CPT_PRINT_GOLDENS") != nullptr;
  std::string regen;
  for (Case& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunOutput out = run_stage1_mode(c.graph, c.epsilon, true);
    const std::uint64_t fp = fingerprint(out);
    if (print) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {\"%s\", 0x%llxULL, %lluULL, %lluULL, %uu, %uu, %s},\n",
                    c.name, static_cast<unsigned long long>(fp),
                    static_cast<unsigned long long>(out.ledger.total_rounds()),
                    static_cast<unsigned long long>(out.ledger.total_messages()),
                    out.result.phases_emulated, out.result.forest.num_parts(),
                    out.result.rejected ? "true" : "false");
      regen += buf;
      continue;
    }
    const Golden* golden = nullptr;
    for (const Golden& gl : kGoldens) {
      if (std::string(gl.name) == c.name) golden = &gl;
    }
    ASSERT_NE(golden, nullptr) << "no golden recorded for " << c.name
                               << "; regenerate with CPT_PRINT_GOLDENS=1";
    EXPECT_EQ(fp, golden->fp) << "fingerprint drift (forest or per-phase "
                                 "rounds changed); regenerate if intended";
    EXPECT_EQ(out.ledger.total_rounds(), golden->rounds);
    EXPECT_EQ(out.ledger.total_messages(), golden->messages);
    EXPECT_EQ(out.result.phases_emulated, golden->phases_emulated);
    EXPECT_EQ(out.result.forest.num_parts(), golden->parts);
    EXPECT_EQ(out.result.rejected, golden->rejected);
  }
  if (print) {
    std::printf("constexpr Golden kGoldens[] = {\n%s};\n", regen.c_str());
    GTEST_SKIP() << "golden print mode";
  }
}

// The tentpole guarantee of the parallel executor: Stage I under 2, 4 and
// 8 workers is bit-identical to the single-thread run -- same golden
// fingerprint (forest + per-phase trajectory), same total rounds and
// messages, for every golden case including the eps-far ones.
TEST(Stage1Differential, ThreadSweepIsBitIdentical) {
  for (Case& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunOutput ref = run_stage1_mode(c.graph, c.epsilon, true, 1);
    const std::uint64_t ref_fp = fingerprint(ref);
    for (const unsigned threads : {2u, 4u, 8u}) {
      SCOPED_TRACE(threads);
      const RunOutput out = run_stage1_mode(c.graph, c.epsilon, true, threads);
      EXPECT_EQ(fingerprint(out), ref_fp);
      EXPECT_EQ(out.ledger.total_rounds(), ref.ledger.total_rounds());
      EXPECT_EQ(out.ledger.total_messages(), ref.ledger.total_messages());
      EXPECT_EQ(out.result.forest.root, ref.result.forest.root);
      EXPECT_EQ(out.result.forest.parent_edge, ref.result.forest.parent_edge);
      EXPECT_EQ(out.result.rejected, ref.result.rejected);
    }
    // The unpipelined legacy schedule must be thread-count-invariant too.
    const RunOutput base = run_stage1_mode(c.graph, c.epsilon, false, 1);
    const RunOutput base4 = run_stage1_mode(c.graph, c.epsilon, false, 4);
    EXPECT_EQ(fingerprint(base4), fingerprint(base));
    EXPECT_EQ(base4.ledger.total_messages(), base.ledger.total_messages());
  }
}

// Skewed-degree stress for observed-load shard rebalancing: a hub wired to
// every node of a grid concentrates ~1/3 of all arcs on one node id, so the
// equal-arc-count initial sharding is maximally lopsided and the EWMA
// rebalancer actually moves boundaries at every epoch. Stage I must still
// be bit-identical across 1/2/4/8 workers with rebalancing on (aggressive
// epoch) and off.
TEST(Stage1Differential, SkewedStarPlusGridSweepIsBitIdentical) {
  constexpr NodeId kRows = 12;
  constexpr NodeId kCols = 12;
  GraphBuilder b(kRows * kCols + 1);
  const Graph grid = gen::grid(kRows, kCols);
  for (EdgeId e = 0; e < grid.num_edges(); ++e) {
    const Endpoints ep = grid.endpoints(e);
    b.add_edge(ep.u + 1, ep.v + 1);
  }
  for (NodeId v = 1; v <= kRows * kCols; ++v) b.add_edge(0, v);
  const Graph g = std::move(b).build();

  const RunOutput ref = run_stage1_mode(g, 0.25, true, 1);
  const std::uint64_t ref_fp = fingerprint(ref);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const bool rebalance : {true, false}) {
      SCOPED_TRACE(::testing::Message()
                   << threads << (rebalance ? " rebalance" : " static"));
      const RunOutput out =
          run_stage1_mode(g, 0.25, true, threads, rebalance,
                          /*rebalance_interval=*/4);
      EXPECT_EQ(fingerprint(out), ref_fp);
      EXPECT_EQ(out.ledger.total_rounds(), ref.ledger.total_rounds());
      EXPECT_EQ(out.ledger.total_messages(), ref.ledger.total_messages());
      EXPECT_EQ(out.result.forest.root, ref.result.forest.root);
      EXPECT_EQ(out.result.forest.parent_edge, ref.result.forest.parent_edge);
      EXPECT_EQ(out.result.rejected, ref.result.rejected);
    }
  }
}

// The ledger's pass-level accounting must stay internally consistent in
// both modes (sum of passes == total), so golden totals are trustworthy.
TEST(Stage1Differential, LedgerSumsAreConsistentInBothModes) {
  Rng rng(5);
  const Graph g = gen::random_planar(150, 340, rng);
  for (const bool pipelined : {true, false}) {
    const RunOutput out = run_stage1_mode(g, 0.25, pipelined);
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    for (const auto& p : out.ledger.passes()) {
      rounds += p.rounds;
      messages += p.messages;
    }
    EXPECT_EQ(rounds, out.ledger.total_rounds());
    EXPECT_EQ(messages, out.ledger.total_messages());
  }
}

}  // namespace
}  // namespace cpt
