#include <gtest/gtest.h>

#include "core/tester.h"
#include "graph/properties.h"
#include "graph/ops.h"
#include "lowerbound/construction.h"

namespace cpt {
namespace {

TEST(LowerBound, GirthMeetsTarget) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    LowerBoundOptions opt;
    opt.n = 1024;
    opt.avg_degree = 12.0;
    opt.seed = seed;
    const LowerBoundInstance inst = build_lower_bound_instance(opt);
    EXPECT_GE(inst.girth, inst.girth_target);
    EXPECT_GE(inst.girth_target, 4u);
  }
}

TEST(LowerBound, StaysFarFromPlanarAfterSurgery) {
  LowerBoundOptions opt;
  opt.n = 2048;
  opt.avg_degree = 12.0;
  opt.seed = 1;
  const LowerBoundInstance inst = build_lower_bound_instance(opt);
  // Certified distance (edge excess) must remain a constant fraction.
  EXPECT_GT(inst.distance_lb, 0u);
  EXPECT_GT(inst.certified_eps, 0.2);
  // Surgery must not have removed most of the graph.
  EXPECT_LT(inst.removed_edges, inst.graph.num_edges());
}

TEST(LowerBound, GirthGrowsWithN) {
  LowerBoundOptions small;
  small.n = 256;
  small.avg_degree = 4.0;
  small.seed = 3;
  LowerBoundOptions large;
  large.n = 16384;
  large.avg_degree = 4.0;
  large.seed = 3;
  const auto a = build_lower_bound_instance(small);
  const auto b = build_lower_bound_instance(large);
  EXPECT_GT(b.girth_target, a.girth_target);
}

TEST(LowerBound, ExplicitGirthTargetHonored) {
  LowerBoundOptions opt;
  opt.n = 512;
  opt.avg_degree = 8.0;
  opt.girth_target = 7;
  opt.seed = 5;
  const LowerBoundInstance inst = build_lower_bound_instance(opt);
  EXPECT_GE(inst.girth, 7u);
}

TEST(LowerBound, TesterStillRejectsTheInstance) {
  // The tester has Theta(log n) rounds available, enough to see cycles of
  // length ~ girth; the instance is far from planar and must be rejected
  // (the avg degree alone forces arboricity evidence in Stage I).
  LowerBoundOptions opt;
  opt.n = 1024;
  opt.avg_degree = 12.0;
  opt.seed = 7;
  const LowerBoundInstance inst = build_lower_bound_instance(opt);
  TesterOptions topt;
  topt.epsilon = 0.2;
  topt.seed = 1;
  EXPECT_EQ(test_planarity(inst.graph, topt).verdict, Verdict::kReject);
}

TEST(LowerBound, LocalViewsAreTreesWithinGirthRadius) {
  // The lower-bound argument: any r-round algorithm with r < girth/2 - 1
  // sees a tree around every node, indistinguishable from a planar graph.
  LowerBoundOptions opt;
  opt.n = 1024;
  opt.avg_degree = 10.0;
  opt.seed = 9;
  const LowerBoundInstance inst = build_lower_bound_instance(opt);
  const std::uint32_t radius = (inst.girth - 1) / 2;
  EXPECT_GE(radius, 1u);
  // Spot-check: BFS balls of that radius contain no cycle (their edge count
  // equals node count - 1).
  Rng rng(1);
  for (int probe = 0; probe < 10; ++probe) {
    const NodeId s =
        static_cast<NodeId>(rng.next_below(inst.graph.num_nodes()));
    const auto dist = bfs_distances(inst.graph, s);
    std::vector<NodeId> ball;
    for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
      if (dist[v] != kUnreachable && dist[v] < radius) ball.push_back(v);
    }
    const InducedSubgraph sub = induced_subgraph(inst.graph, ball);
    EXPECT_FALSE(has_cycle(sub.graph)) << "cycle inside radius-" << radius
                                       << " ball around " << s;
  }
}

}  // namespace
}  // namespace cpt
