#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/union_find.h"

namespace cpt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.next_in(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialIsPositiveWithCorrectMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);  // mean 1/lambda
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(17);
  for (std::uint32_t n : {0u, 1u, 2u, 10u, 257u}) {
    auto perm = rng.permutation(n);
    std::sort(perm.begin(), perm.end());
    ASSERT_EQ(perm.size(), n);
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(perm[i], i);
  }
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t n = 50;
    const std::uint32_t k = 20;
    const auto sample = rng.sample_without_replacement(n, k);
    ASSERT_EQ(sample.size(), k);
    std::set<std::uint32_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), k);
    for (const auto x : sample) EXPECT_LT(x, n);
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(23);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += f1.next_u64() == f2.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(UnionFind, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndReportsFreshness) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_TRUE(uf.same(1, 3));
  EXPECT_FALSE(uf.same(1, 4));
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, ChainMergeKeepsCounts) {
  const std::uint32_t n = 1000;
  UnionFind uf(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) EXPECT_TRUE(uf.unite(i, i + 1));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(500), n);
}

}  // namespace
}  // namespace cpt
