// Crash-safety suite for the resumable batch stack (PR 6): the fault-plan
// grammar and its determinism contract, bounded transient retry, corrupt-
// corpus regeneration, the orphan-tmp sweep, the journal's round-trip /
// torn-tail / bit-rot semantics, in-process resume (cached jobs provably
// not re-executed), the round-budget timeout classification, cooperative
// cancellation -- and a subprocess kill/resume harness that hard-kills the
// real cpt_batch binary at injected job indices and pins the recovered
// aggregate byte-identical to an uninterrupted run at --threads 1 and 4.
//
// Every test that installs a fault plan uninstalls it on exit (the plan is
// process-global); plans are re-parsed per run because check() consumes
// per-key budgets.
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "scenario/aggregate.h"
#include "scenario/corpus.h"
#include "scenario/engine.h"
#include "scenario/faultinject.h"
#include "scenario/journal.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace cpt::scenario {
namespace {

constexpr const char* kSmallManifest = R"({
  "name": "crashsafe",
  "base_seed": 7,
  "defaults": {"trials": 2, "epsilon": 0.15, "tester": ["planarity", "cycle_free"]},
  "cells": [
    {"scenario": "grid", "params": {"rows": [10, 12], "cols": 10}},
    {"scenario": "cycle", "params": {"n": 40},
     "perturb": {"kind": "k33_blobs", "count": [1, 3]},
     "tester": "planarity", "trials": 1, "instances": 2}
  ]
})";

Manifest small_manifest() {
  Manifest m;
  std::string err;
  EXPECT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  return m;
}

// Parses and installs a plan; uninstalls on scope exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const std::string& spec) {
    auto plan = std::make_shared<FaultPlan>();
    std::string err;
    EXPECT_TRUE(FaultPlan::parse(spec, plan.get(), &err)) << err;
    install_fault_plan(std::move(plan));
  }
  ~ScopedFaultPlan() { install_fault_plan(nullptr); }
};

std::string temp_dir() {
  std::string t = testing::TempDir() + "cpt_crashsafe_XXXXXX";
  const char* made = mkdtemp(t.data());
  EXPECT_NE(made, nullptr);
  return t;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
}

std::size_t count_files_containing(const std::string& dir,
                                   const std::string& infix) {
  std::size_t count = 0;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (const dirent* entry = readdir(d)) {
    if (std::string(entry->d_name).find(infix) != std::string::npos) ++count;
  }
  closedir(d);
  return count;
}

// ---- Fault-plan grammar and determinism ---------------------------------

TEST(FaultPlan, ParsesGrammar) {
  FaultPlan plan;
  std::string err;
  EXPECT_TRUE(FaultPlan::parse("", &plan, &err)) << err;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(FaultPlan::parse(
      "seed=9,throw@run_job:every=7,corrupt@corpus_load:key=42,"
      "exit@journal_write:key=3,badalloc@materialize:rate=0.5:times=2",
      &plan, &err))
      << err;
  EXPECT_EQ(plan.seed(), 9u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string err;
  const char* bad[] = {
      "bogus@run_job",           // unknown action
      "throw@nowhere",           // unknown site
      "throw",                   // missing @site
      "throw@run_job:rate=2",    // rate out of [0, 1]
      "throw@run_job:every=0",   // modulus must be positive
      "throw@run_job:times=0",   // budget must be positive
      "throw@run_job:frobnicate=1",
      "seed=abc",
      "throw@run_job,,corrupt@corpus_load",  // empty rule
  };
  for (const char* spec : bad) {
    err.clear();
    EXPECT_FALSE(FaultPlan::parse(spec, &plan, &err)) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(FaultPlan, KeyEveryTimesSemantics) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse("throw@run_job:key=5:times=2", &plan, &err));
  EXPECT_EQ(plan.check(FaultSite::kRunJob, 4), FaultAction::kNone);
  EXPECT_EQ(plan.check(FaultSite::kMaterialize, 5), FaultAction::kNone);
  EXPECT_EQ(plan.check(FaultSite::kRunJob, 5), FaultAction::kThrow);
  EXPECT_EQ(plan.check(FaultSite::kRunJob, 5), FaultAction::kThrow);
  // times=2 budget exhausted for key 5.
  EXPECT_EQ(plan.check(FaultSite::kRunJob, 5), FaultAction::kNone);

  ASSERT_TRUE(FaultPlan::parse("corrupt@corpus_load:every=3", &plan, &err));
  EXPECT_EQ(plan.check(FaultSite::kCorpusLoad, 6), FaultAction::kCorrupt);
  EXPECT_EQ(plan.check(FaultSite::kCorpusLoad, 7), FaultAction::kNone);
  // Default times=1: key 6 fired once already.
  EXPECT_EQ(plan.check(FaultSite::kCorpusLoad, 6), FaultAction::kNone);
  EXPECT_EQ(plan.check(FaultSite::kCorpusLoad, 9), FaultAction::kCorrupt);
}

TEST(FaultPlan, RateRulesAreSeededAndReproducible) {
  // The same (seed, site, key) draws the same coin in two plan instances;
  // a different seed draws a different subset.
  FaultPlan a, b, c;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse("seed=3,throw@run_job:rate=0.4:times=1000000",
                               &a, &err));
  ASSERT_TRUE(FaultPlan::parse("seed=3,throw@run_job:rate=0.4:times=1000000",
                               &b, &err));
  ASSERT_TRUE(FaultPlan::parse("seed=4,throw@run_job:rate=0.4:times=1000000",
                               &c, &err));
  int fired_a = 0, fired_c = 0, diverged = 0;
  for (std::uint64_t key = 0; key < 256; ++key) {
    const FaultAction fa = a.check(FaultSite::kRunJob, key);
    EXPECT_EQ(fa, b.check(FaultSite::kRunJob, key));
    fired_a += fa != FaultAction::kNone;
    const FaultAction fc = c.check(FaultSite::kRunJob, key);
    fired_c += fc != FaultAction::kNone;
    diverged += fa != fc;
  }
  // ~40% of 256 keys fire, under either seed, on different key subsets.
  EXPECT_GT(fired_a, 60);
  EXPECT_LT(fired_a, 150);
  EXPECT_GT(fired_c, 60);
  EXPECT_GT(diverged, 20);
}

TEST(FaultPlan, ClassifierSeparatesTransientFromDeterministic) {
  EXPECT_TRUE(is_transient_error("injected transient fault at run_job key=3"));
  EXPECT_TRUE(is_transient_error("std::bad_alloc"));
  EXPECT_FALSE(is_transient_error("file scenario: x: malformed edge list"));
  EXPECT_FALSE(is_transient_error("simulated round budget exceeded"));
}

// ---- Graceful degradation: retry, regeneration, classification ----------

TEST(CrashSafe, TransientFaultsRetryToBitIdenticalAggregate) {
  const Manifest m = small_manifest();
  BatchOptions opt;
  opt.threads = 4;
  const BatchResult clean = run_batch(m, opt);
  ASSERT_EQ(clean.failed_jobs, 0u);
  const std::string clean_json =
      render_aggregate_json(m, clean, aggregate_cells(clean));

  BatchResult faulty;
  {
    // times=1 per key: every third job fails once, the retry succeeds.
    ScopedFaultPlan plan("throw@run_job:every=3");
    faulty = run_batch(m, opt);
  }
  EXPECT_EQ(faulty.failed_jobs, 0u);
  EXPECT_GT(faulty.retried_jobs, 0u);
  EXPECT_EQ(faulty.retried_jobs, faulty.total_retries);
  EXPECT_EQ(render_aggregate_json(m, faulty, aggregate_cells(faulty)),
            clean_json);
}

TEST(CrashSafe, RetryBudgetExhaustionFailsTheJob) {
  const Manifest m = small_manifest();
  BatchOptions opt;
  opt.threads = 2;
  opt.max_retries = 2;
  BatchResult batch;
  {
    // Fires on every attempt of job 3: initial + 2 retries all fail.
    ScopedFaultPlan plan("throw@run_job:key=3:times=1000");
    batch = run_batch(m, opt);
  }
  EXPECT_EQ(batch.failed_jobs, 1u);
  EXPECT_EQ(batch.total_retries, 2u);
  ASSERT_GT(batch.results.size(), 3u);
  EXPECT_TRUE(batch.results[3].failed);
  EXPECT_EQ(batch.results[3].retries, 2u);
  EXPECT_NE(batch.results[3].error.find("injected transient"),
            std::string::npos);
}

TEST(CrashSafe, DeterministicFailuresAreNotRetried) {
  // A corrupted edge-list read is a deterministic failure: the whole
  // cell fails with zero retries (re-reading the same bytes cannot help).
  const std::string dir = temp_dir();
  const std::string edge_path = dir + "/input.edges";
  {
    ScenarioParams params;
    params.set_int("rows", 6);
    params.set_int("cols", 6);
    const Graph g = build_instance(resolve_scenario("grid", params, 1, 0));
    std::ofstream out(edge_path);
    write_edge_list(g, out);
  }
  Manifest m;
  std::string err;
  const std::string text = std::string(R"({
    "name": "filecell", "base_seed": 3,
    "defaults": {"trials": 2, "epsilon": 0.15, "tester": "planarity"},
    "cells": [{"scenario": "file", "params": {"path": ")") +
                           edge_path + R"("}}]})";
  ASSERT_TRUE(parse_manifest(text, &m, &err)) << err;

  BatchOptions opt;
  opt.threads = 2;
  const BatchResult clean = run_batch(m, opt);
  EXPECT_EQ(clean.failed_jobs, 0u);

  BatchResult corrupt;
  {
    ScopedFaultPlan plan("corrupt@edge_list:key=" +
                         std::to_string(fnv1a64(edge_path)) + ":times=1000");
    corrupt = run_batch(m, opt);
  }
  EXPECT_EQ(corrupt.failed_jobs, static_cast<std::uint32_t>(
                                     corrupt.jobs.size()));
  EXPECT_EQ(corrupt.total_retries, 0u);
  ASSERT_FALSE(corrupt.results.empty());
  EXPECT_NE(corrupt.results[0].error.find("malformed edge list"),
            std::string::npos);
}

TEST(CrashSafe, MaterializeRetriesTransientFaults) {
  const Manifest m = small_manifest();
  BatchOptions opt;
  opt.threads = 2;
  const BatchResult clean = run_batch(m, opt);
  const std::string clean_json =
      render_aggregate_json(m, clean, aggregate_cells(clean));
  BatchResult batch;
  {
    // every=1 fires once per instance hash: every materialization fails
    // on its first attempt and succeeds on retry.
    ScopedFaultPlan plan("badalloc@materialize:every=1");
    batch = run_batch(m, opt);
  }
  EXPECT_EQ(batch.failed_jobs, 0u);
  EXPECT_GT(batch.total_retries, 0u);
  EXPECT_EQ(render_aggregate_json(m, batch, aggregate_cells(batch)),
            clean_json);
}

TEST(CrashSafe, CorruptCorpusReadRegeneratesInstances) {
  const Manifest m = small_manifest();
  const std::string dir = temp_dir();
  BatchOptions opt;
  opt.threads = 2;
  opt.corpus_dir = dir;
  const BatchResult first = run_batch(m, opt);  // populates the corpus
  ASSERT_EQ(first.failed_jobs, 0u);
  ASSERT_GT(first.corpus.generated, 0u);
  const std::string clean_json =
      render_aggregate_json(m, first, aggregate_cells(first));

  BatchResult second;
  {
    ScopedFaultPlan plan("corrupt@corpus_load:every=1");
    second = run_batch(m, opt);
  }
  EXPECT_EQ(second.failed_jobs, 0u);
  // Every load was declared corrupt; every instance regenerated.
  EXPECT_EQ(second.corpus.corrupt_files, second.corpus.unique_instances);
  EXPECT_EQ(second.corpus.disk_hits, 0u);
  EXPECT_EQ(render_aggregate_json(m, second, aggregate_cells(second)),
            clean_json);
}

TEST(CrashSafe, ShortWriteLeavesTmpAndConstructorSweepsIt) {
  const std::string dir = temp_dir();
  ScenarioParams params;
  params.set_int("rows", 6);
  params.set_int("cols", 6);
  const ScenarioInstance inst = resolve_scenario("grid", params, 1, 0);
  const Graph g = build_instance(inst);

  char name[64];
  std::snprintf(name, sizeof name, "%016llx.cpg",
                static_cast<unsigned long long>(inst.hash()));
  const std::string final_path = dir + "/" + name;

  {
    CorpusStore store(dir);
    ScopedFaultPlan plan("shortwrite@corpus_save:key=" +
                         std::to_string(inst.hash()));
    EXPECT_FALSE(store.save(inst.hash(), g));
  }
  // The half-written temp file (now pid+counter suffixed so concurrent
  // writers never collide) was deliberately left behind...
  EXPECT_EQ(count_files_containing(dir, ".cpg.tmp"), 1u);
  EXPECT_FALSE(file_exists(final_path));
  // ...and opening the corpus again sweeps true orphans -- legacy
  // fixed-name temps and dead-pid temps -- but keeps ours: its suffix
  // carries this (live) process's pid, so for all the sweep can tell a
  // sibling thread is still mid-save.
  write_file(dir + "/" + name + ".tmp", "legacy orphan");
  write_file(dir + "/" + name + ".tmp.999999999.0", "dead-pid orphan");
  CorpusStore swept(dir);
  EXPECT_EQ(count_files_containing(dir, ".cpg.tmp"), 1u);
  // Once the owner is gone (simulated by renaming to a dead pid), the
  // next sweep collects it too.
  {
    DIR* d = opendir(dir.c_str());
    ASSERT_NE(d, nullptr);
    while (const dirent* entry = readdir(d)) {
      if (std::strstr(entry->d_name, ".cpg.tmp") != nullptr) {
        std::rename((dir + "/" + entry->d_name).c_str(),
                    (dir + "/" + name + ".tmp.999999999.1").c_str());
      }
    }
    closedir(d);
  }
  CorpusStore swept_again(dir);
  EXPECT_EQ(count_files_containing(dir, ".cpg.tmp"), 0u);
  // The store still works after the sweep.
  EXPECT_TRUE(swept.save(inst.hash(), g));
  Graph loaded;
  EXPECT_EQ(swept.load(inst.hash(), &loaded), CorpusStore::LoadStatus::kHit);
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
}

// ---- Round budget (max_rounds -> timed_out) ------------------------------

TEST(CrashSafe, RoundBudgetTimesOutWithoutPoisoningSiblings) {
  // Sibling cell first, budget cell second: the sibling's jobs keep their
  // indices and seeds when the budget cell is appended, so its results
  // must be bitwise unchanged.
  const char* base = R"({
    "name": "budget", "base_seed": 5,
    "defaults": {"trials": 2, "epsilon": 0.15, "tester": "planarity"},
    "cells": [{"scenario": "grid", "params": {"rows": 10, "cols": 10}}]})";
  const char* with_budget = R"({
    "name": "budget", "base_seed": 5,
    "defaults": {"trials": 2, "epsilon": 0.15, "tester": "planarity"},
    "cells": [{"scenario": "grid", "params": {"rows": 10, "cols": 10}},
              {"scenario": "grid", "params": {"rows": 12, "cols": 12},
               "max_rounds": 3}]})";
  Manifest a, b;
  std::string err;
  ASSERT_TRUE(parse_manifest(base, &a, &err)) << err;
  ASSERT_TRUE(parse_manifest(with_budget, &b, &err)) << err;

  BatchOptions opt;
  opt.threads = 2;
  const BatchResult ra = run_batch(a, opt);
  const BatchResult rb = run_batch(b, opt);
  ASSERT_EQ(ra.failed_jobs, 0u);

  // The budget cell timed out wholesale; nothing *failed*, and the exit-1
  // path (failed_jobs) stays clean.
  EXPECT_EQ(rb.failed_jobs, 0u);
  EXPECT_EQ(rb.timed_out_jobs, static_cast<std::uint32_t>(
                                   rb.jobs.size() - ra.jobs.size()));
  ASSERT_GT(rb.timed_out_jobs, 0u);
  for (std::size_t j = ra.jobs.size(); j < rb.results.size(); ++j) {
    EXPECT_TRUE(rb.results[j].timed_out);
    EXPECT_FALSE(rb.results[j].failed);
    EXPECT_EQ(rb.results[j].retries, 0u);  // deterministic: never retried
  }
  // Sibling jobs are untouched by the new cell.
  for (std::size_t j = 0; j < ra.results.size(); ++j) {
    EXPECT_FALSE(rb.results[j].timed_out);
    EXPECT_EQ(rb.results[j].verdict, ra.results[j].verdict);
    EXPECT_EQ(rb.results[j].rounds, ra.results[j].rounds);
    EXPECT_EQ(rb.results[j].messages, ra.results[j].messages);
  }
  // The aggregate document renders the exclusion.
  const std::string json = render_aggregate_json(b, rb, aggregate_cells(rb));
  EXPECT_NE(json.find("\"timed_out_jobs\""), std::string::npos);
}

// ---- Journal round-trip, torn tail, bit rot, fingerprint -----------------

TEST(Journal, RoundTripsEveryRecordBitExactly) {
  const Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const std::string dir = temp_dir();
  const std::string path = dir + "/run.journal";

  // Journal a real streamed run.
  std::vector<JobResult> results(jobs.size());
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.create(path, m, jobs));
    BatchOptions opt;
    opt.threads = 2;
    run_batch(m, opt, [&](const Job& job, const JobResult& result) {
      results[job.job_index] = result;
      EXPECT_TRUE(writer.append(job, result));
    });
    EXPECT_TRUE(writer.close());
  }

  JournalReplay replay;
  std::string err;
  ASSERT_TRUE(load_journal(path, &replay, &err)) << err;
  EXPECT_EQ(replay.manifest_name, m.name);
  EXPECT_EQ(replay.base_seed, m.base_seed);
  EXPECT_EQ(replay.fingerprint, journal_fingerprint(m, jobs));
  EXPECT_EQ(replay.jobs, jobs.size());
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.completed.size(), jobs.size());
  for (const Job& job : jobs) {
    const auto it = replay.completed.find(job.job_index);
    ASSERT_NE(it, replay.completed.end());
    // Rendering the loaded record must reproduce the original bytes:
    // every journaled field survived the round trip exactly.
    EXPECT_EQ(render_journal_record(job, it->second),
              render_journal_record(job, results[job.job_index]));
  }
}

TEST(Journal, TornTailIsDroppedAndResumeTruncatesIt) {
  const Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const std::string dir = temp_dir();
  const std::string path = dir + "/torn.journal";

  JournalWriter writer;
  ASSERT_TRUE(writer.create(path, m, jobs));
  JobResult r;
  r.verdict = Verdict::kAccept;
  r.rounds = 11;
  r.messages = 42;
  for (std::uint32_t j = 0; j < 4; ++j) ASSERT_TRUE(writer.append(jobs[j], r));
  ASSERT_TRUE(writer.close());

  // Simulate a crash mid-line: append half a record.
  const std::string torn = render_journal_record(jobs[4], r);
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(torn.data(), 1, torn.size() / 2, f),
              torn.size() / 2);
    std::fclose(f);
  }
  JournalReplay replay;
  std::string err;
  ASSERT_TRUE(load_journal(path, &replay, &err)) << err;
  EXPECT_EQ(replay.completed.size(), 4u);
  EXPECT_EQ(replay.dropped_bytes, torn.size() / 2);

  // open_resume cuts the torn tail before appending, so the file parses
  // cleanly afterwards with the new record in place.
  JournalWriter resumed;
  ASSERT_TRUE(resumed.open_resume(path, replay.valid_bytes));
  ASSERT_TRUE(resumed.append(jobs[4], r));
  ASSERT_TRUE(resumed.close());
  JournalReplay after;
  ASSERT_TRUE(load_journal(path, &after, &err)) << err;
  EXPECT_EQ(after.completed.size(), 5u);
  EXPECT_EQ(after.dropped_bytes, 0u);
}

TEST(Journal, CorruptionBeforeValidRecordsIsRefused) {
  const Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const std::string dir = temp_dir();
  const std::string path = dir + "/rot.journal";

  JournalWriter writer;
  ASSERT_TRUE(writer.create(path, m, jobs));
  JobResult r;
  for (std::uint32_t j = 0; j < 4; ++j) ASSERT_TRUE(writer.append(jobs[j], r));
  ASSERT_TRUE(writer.close());

  // Flip one byte inside record 1's checksum hex: a damaged *middle* line
  // followed by intact records is bit rot, not a crash.
  std::string text;
  ASSERT_TRUE(read_text_file(path, &text));
  std::size_t line_start = text.find('\n') + 1;        // skip header
  line_start = text.find('\n', line_start) + 1;        // skip record 0
  text[line_start + 10] = text[line_start + 10] == '0' ? '1' : '0';
  ASSERT_TRUE(write_text_file(path, text));

  JournalReplay replay;
  std::string err;
  EXPECT_FALSE(load_journal(path, &replay, &err));
  EXPECT_NE(err.find("corrupt"), std::string::npos);
}

TEST(Journal, FingerprintPinsTheJobList) {
  Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const std::uint64_t fp = journal_fingerprint(m, jobs);
  // Same manifest, same fingerprint (pure function)...
  EXPECT_EQ(fp, journal_fingerprint(m, expand_manifest(m)));
  // ...any change to the expansion breaks it.
  m.base_seed += 1;
  EXPECT_NE(fp, journal_fingerprint(m, expand_manifest(m)));

  std::vector<Job> truncated(jobs.begin(), jobs.end() - 1);
  Manifest orig = small_manifest();
  EXPECT_NE(fp, journal_fingerprint(orig, truncated));
}

TEST(Journal, ShortWriteFaultKeepsResumablePrefix) {
  const Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const std::string dir = temp_dir();
  const std::string path = dir + "/short.journal";

  JournalWriter writer;
  ASSERT_TRUE(writer.create(path, m, jobs));
  JobResult r;
  ASSERT_TRUE(writer.append(jobs[0], r));
  ASSERT_TRUE(writer.append(jobs[1], r));
  {
    ScopedFaultPlan plan("shortwrite@journal_write:key=2");
    EXPECT_FALSE(writer.append(jobs[2], r));
    EXPECT_FALSE(writer.ok());
  }
  writer.close();
  // The torn record is a normal crash tail: records 0-1 stay loadable.
  JournalReplay replay;
  std::string err;
  ASSERT_TRUE(load_journal(path, &replay, &err)) << err;
  EXPECT_EQ(replay.completed.size(), 2u);
  EXPECT_GT(replay.dropped_bytes, 0u);
}

TEST(Journal, FinishMakesThePartialTailGroupDurable) {
  const Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const std::string dir = temp_dir();
  const std::string path = dir + "/tail.journal";

  JournalWriter writer;
  ASSERT_TRUE(writer.create(path, m, jobs));
  JobResult r;
  r.verdict = Verdict::kAccept;
  r.rounds = 3;
  r.messages = 9;
  // Strictly inside one fsync group: append() alone leaves these records
  // in the stdio buffer until the group fills.
  const std::uint32_t n = JournalWriter::kSyncEvery - 9;
  static_assert(JournalWriter::kSyncEvery > 9);
  for (std::uint32_t j = 0; j < n; ++j) ASSERT_TRUE(writer.append(jobs[j], r));
  ASSERT_TRUE(writer.finish());

  // The writer is still open -- no close() yet -- but every appended
  // record must already be parseable from disk, with nothing torn.
  JournalReplay replay;
  std::string err;
  ASSERT_TRUE(load_journal(path, &replay, &err)) << err;
  EXPECT_EQ(replay.completed.size(), n);
  EXPECT_EQ(replay.dropped_bytes, 0u);
  EXPECT_TRUE(writer.close());
}

// ---- Resume and cancellation (in-process) --------------------------------

TEST(CrashSafe, ResumeSkipsCompletedJobsAndReproducesTheAggregate) {
  const Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  BatchOptions opt;
  opt.threads = 4;

  std::string clean_jsonl;
  std::unordered_map<std::uint32_t, JobResult> completed;
  {
    StreamingAggregator agg(jobs);
    agg.set_cell_sink([&](const CellAggregate& cell) {
      clean_jsonl += render_stream_cell(cell);
    });
    run_batch(m, opt, [&](const Job& job, const JobResult& result) {
      if (job.job_index < jobs.size() / 2) completed[job.job_index] = result;
      agg.consume(job, result);
    });
    agg.finish();
  }
  ASSERT_GT(completed.size(), 2u);

  // Replay the first half from the cache; prove cached jobs never execute
  // by arming a would-fail fault on one of them.
  BatchOptions resume_opt = opt;
  resume_opt.threads = 1;  // different schedule, same bytes
  resume_opt.max_retries = 0;
  resume_opt.completed = &completed;
  std::string resumed_jsonl;
  BatchResult batch;
  {
    ScopedFaultPlan plan("throw@run_job:key=1:times=1000000");
    StreamingAggregator agg(jobs);
    agg.set_cell_sink([&](const CellAggregate& cell) {
      resumed_jsonl += render_stream_cell(cell);
    });
    batch = run_batch(m, resume_opt,
                      [&](const Job& job, const JobResult& result) {
                        agg.consume(job, result);
                      });
    agg.finish();
  }
  EXPECT_EQ(batch.failed_jobs, 0u);  // job 1 came from the cache
  EXPECT_EQ(batch.resumed_jobs, static_cast<std::uint32_t>(completed.size()));
  EXPECT_EQ(resumed_jsonl, clean_jsonl);
}

TEST(CrashSafe, CancelFlagDrainsToAResumablePrefix) {
  const Manifest m = small_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  std::atomic<bool> cancel{true};  // pre-set: cancel before any claim
  BatchOptions opt;
  opt.threads = 2;
  opt.cancel = &cancel;

  std::uint32_t sunk = 0;
  const BatchResult batch = run_batch(
      m, opt, [&](const Job&, const JobResult&) { ++sunk; });
  EXPECT_TRUE(batch.cancelled);
  EXPECT_EQ(batch.completed_jobs, sunk);
  EXPECT_LT(batch.completed_jobs, jobs.size());
  // The footer renders the truncation for downstream consumers.
  const std::string footer = render_stream_footer(batch, 0);
  EXPECT_NE(footer.find("\"partial\": true"), std::string::npos);
  EXPECT_NE(footer.find("\"completed_jobs\""), std::string::npos);
}

// ---- Subprocess kill/resume harness (the real binary) --------------------

#ifdef CPT_BATCH_BIN

int run_command(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

std::string slurp(const std::string& path) {
  std::string text;
  EXPECT_TRUE(read_text_file(path, &text)) << path;
  return text;
}

TEST(KillResumeHarness, HardKillThenResumeIsByteIdentical) {
  const std::string manifest = std::string(CPT_MANIFEST_DIR) +
                               "/batch_sweep.json";
  const std::string dir = temp_dir();
  const std::string clean_out = dir + "/clean.json";

  // Uninterrupted baseline.
  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=4 --quiet --out=" + clean_out),
            0);
  const std::string clean = slurp(clean_out);
  ASSERT_FALSE(clean.empty());

  // 208 jobs in batch_sweep; pick schedule-independent kill points from a
  // seeded stream, away from the very start and end.
  std::uint64_t state = 0x6a6f75726e616cULL;
  for (const unsigned threads : {1u, 4u}) {
    const std::uint32_t kill_at =
        10 + static_cast<std::uint32_t>(splitmix64(state) % 150);
    const std::string tag = dir + "/t" + std::to_string(threads);
    const std::string journal = tag + ".journal";
    const std::string out = tag + ".json";
    const std::string base = std::string(CPT_BATCH_BIN) + " run " + manifest +
                             " --threads=" + std::to_string(threads) +
                             " --quiet --journal=" + journal +
                             " --out=" + out;
    const std::string kill_plan =
        " --fault-plan=exit@run_job:key=" + std::to_string(kill_at);

    // First run dies mid-sweep with the SIGKILL-alike status.
    EXPECT_EQ(run_command(base + kill_plan + " 2>/dev/null"),
              kFaultExitCode);
    // Double kill: the resume re-runs job kill_at (it never retired), and
    // the same key-based plan fires again -- proving both that the plan is
    // schedule-independent and that completed jobs are the only skips.
    EXPECT_EQ(run_command(base + " --resume" + kill_plan + " 2>/dev/null"),
              kFaultExitCode);
    // Final resume, no faults: completes and reproduces the clean bytes.
    ASSERT_EQ(run_command(base + " --resume"), 0);
    EXPECT_EQ(slurp(out), clean) << "threads=" << threads
                                 << " kill_at=" << kill_at;

    // The journal is now a complete, loadable record of the sweep.
    Manifest m;
    std::string err;
    ASSERT_TRUE(load_manifest_file(manifest, &m, &err)) << err;
    JournalReplay replay;
    ASSERT_TRUE(load_journal(journal, &replay, &err)) << err;
    EXPECT_EQ(replay.completed.size(), expand_manifest(m).size());
  }
}

TEST(KillResumeHarness, FaultPlanEnvFallbackAndResumeOnFreshJournal) {
  const std::string manifest = std::string(CPT_MANIFEST_DIR) +
                               "/metamorphic_smoke.json";
  const std::string dir = temp_dir();
  const std::string journal = dir + "/env.journal";
  const std::string out = dir + "/env.json";
  const std::string clean_out = dir + "/clean.json";

  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=2 --quiet --out=" + clean_out),
            0);

  // --resume with no journal on disk is a fresh start (same command line
  // retries to success); the kill plan arrives via the environment.
  const std::string base = std::string(CPT_BATCH_BIN) + " run " + manifest +
                           " --threads=2 --quiet --resume --journal=" +
                           journal + " --out=" + out;
  EXPECT_EQ(run_command("CPT_FAULT_PLAN=exit@run_job:key=5 " + base +
                        " 2>/dev/null"),
            kFaultExitCode);
  ASSERT_EQ(run_command(base), 0);
  EXPECT_EQ(slurp(out), slurp(clean_out));
}

TEST(KillResumeHarness, SigtermDrainsFlushesAndExitsResumable) {
  const std::string manifest = std::string(CPT_MANIFEST_DIR) +
                               "/batch_sweep.json";
  const std::string dir = temp_dir();
  const std::string journal = dir + "/sig.journal";
  const std::string out = dir + "/sig.json";
  const std::string clean_out = dir + "/clean.json";

  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=4 --quiet --out=" + clean_out),
            0);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Quiet the child: the "interrupted" notice is expected.
    std::freopen("/dev/null", "w", stderr);
    execl(CPT_BATCH_BIN, CPT_BATCH_BIN, "run", manifest.c_str(),
          "--threads=2", "--quiet", ("--journal=" + journal).c_str(),
          ("--out=" + out).c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  // batch_sweep takes >1s at 2 threads; 300ms lands mid-sweep.
  usleep(300 * 1000);
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 75);  // EX_TEMPFAIL: resumable

  // The drained run left a loadable journal and a partial aggregate.
  JournalReplay replay;
  std::string err;
  ASSERT_TRUE(load_journal(journal, &replay, &err)) << err;
  EXPECT_NE(slurp(out).find("\"partial\": true"), std::string::npos);

  // Resume completes and reproduces the uninterrupted bytes.
  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=4 --quiet --resume --journal=" + journal +
                        " --out=" + out),
            0);
  EXPECT_EQ(slurp(out), slurp(clean_out));
}

// ---- CLI flag parsing (the bare-atoi regression) --------------------------

TEST(KillResumeHarness, KillAtFooterWriteLosesNoJournaledRecords) {
  // Regression for the journal fsync ordering in cmd_run: the buffered
  // tail group is made durable (JournalWriter::finish) *before* the
  // stream footer is emitted. A process killed exactly at the footer
  // write -- after every job retired -- must leave a journal that already
  // holds every record; before the fix, up to kSyncEvery-1 records
  // evaporated with the stdio buffer even though the sweep had finished.
  const std::string dir = temp_dir();
  const std::string manifest_path = dir + "/footer.json";
  // 7 jobs: strictly inside one fsync group, so the whole tail is at
  // stake. One cell -> stream emit ordinals: header=0, cell=1, footer=2.
  write_file(manifest_path, R"({
    "name": "footer", "base_seed": 3,
    "defaults": {"trials": 7, "epsilon": 0.15, "tester": "planarity"},
    "cells": [{"scenario": "grid", "params": {"rows": 8, "cols": 8}}]})");
  const std::string journal = dir + "/footer.journal";
  const std::string base = std::string(CPT_BATCH_BIN) + " run " +
                           manifest_path + " --threads=2 --quiet --journal=" +
                           journal + " --stream=" + dir + "/footer.jsonl";

  EXPECT_EQ(run_command(base + " --fault-plan=exit@stream_write:key=2"
                               " 2>/dev/null"),
            kFaultExitCode);

  Manifest m;
  JournalReplay replay;
  std::string err;
  ASSERT_TRUE(load_manifest_file(manifest_path, &m, &err)) << err;
  ASSERT_TRUE(load_journal(journal, &replay, &err)) << err;
  EXPECT_EQ(replay.dropped_bytes, 0u);
  EXPECT_EQ(replay.completed.size(), expand_manifest(m).size());

  // And the resume completes without re-running anything: exit 0 with the
  // full job set already journaled.
  EXPECT_EQ(run_command(base + " --resume"), 0);
}

TEST(CliParsing, RejectsNonNumericAndOutOfRangeFlagValues) {
  const std::string manifest =
      std::string(CPT_MANIFEST_DIR) + "/batch_sweep.json";
  const std::string base = std::string(CPT_BATCH_BIN) + " run " + manifest +
                           " --quiet 2>/dev/null";
  // Bare atoi used to map these to 0 (or garbage) and run anyway; they
  // must be usage errors now.
  const char* bad[] = {
      "--threads=abc",      "--threads=",      "--threads=-1",
      "--threads=2x",       "--threads=1e3",   "--threads=99999999999",
      "--max-retries=abc",  "--max-retries=-2",
      "--max-retries=999999999999999999999",
      "--base-seed=seven",  "--index=0.5",
  };
  for (const char* flag : bad) {
    EXPECT_EQ(run_command(base + " " + flag), 2) << flag;
  }
}

TEST(CliParsing, SimThreadsPolicyNamesAreStrict) {
  const std::string manifest =
      std::string(CPT_MANIFEST_DIR) + "/ci_smoke.json";
  const std::string dir = temp_dir();
  // Unknown names are usage errors, and the diagnostic lists the accepted
  // values so the caller can fix the flag without reading the source.
  const std::string errfile = dir + "/policy.err";
  for (const char* bad : {"bogus", "", "Manifest", "serial", "wide", "auto2",
                          "serial_jobs_wide"}) {
    EXPECT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                          " --quiet --sim-threads-policy=" + bad + " 2>" +
                          errfile),
              2)
        << '"' << bad << '"';
    const std::string err = slurp(errfile);
    EXPECT_NE(err.find("serial-jobs-wide"), std::string::npos) << err;
    EXPECT_NE(err.find("threaded-jobs-narrow"), std::string::npos) << err;
  }
  // Every accepted name runs and reproduces the serial aggregate bytes.
  const std::string ref = dir + "/policy_ref.json";
  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=1 --quiet --out=" + ref),
            0);
  for (const char* name : {"manifest", "serial-jobs-wide",
                           "threaded-jobs-narrow", "auto"}) {
    const std::string out = dir + "/policy_" + name + ".json";
    ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                          " --threads=4 --sim-threads-policy=" + name +
                          " --quiet --out=" + out),
              0)
        << name;
    EXPECT_EQ(slurp(out), slurp(ref)) << name;
  }
}

TEST(CliParsing, ThreadsZeroIsTheValidSerialPath) {
  // --threads=0 defers to CPT_TEST_THREADS (unset here: serial). It must
  // parse, run, and produce the same aggregate as an explicit --threads=1.
  const std::string manifest =
      std::string(CPT_MANIFEST_DIR) + "/ci_smoke.json";
  const std::string dir = temp_dir();
  const std::string out0 = dir + "/t0.json";
  const std::string out1 = dir + "/t1.json";
  ASSERT_EQ(run_command("env -u CPT_TEST_THREADS " +
                        std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=0 --quiet --out=" + out0),
            0);
  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=1 --quiet --out=" + out1),
            0);
  EXPECT_EQ(slurp(out0), slurp(out1));
}

TEST(CliParsing, MaterializeSubcommandPopulatesCorpusForRun) {
  const std::string manifest =
      std::string(CPT_MANIFEST_DIR) + "/ci_smoke.json";
  const std::string dir = temp_dir();
  const std::string corpus = dir + "/corpus";
  // Without --corpus the subcommand is a usage error.
  EXPECT_EQ(run_command(std::string(CPT_BATCH_BIN) + " materialize " +
                        manifest + " --quiet 2>/dev/null"),
            2);
  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " materialize " +
                        manifest + " --threads=2 --quiet --corpus=" + corpus),
            0);
  // The populated corpus serves the run entirely from disk.
  const std::string summary_path = dir + "/summary.txt";
  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest +
                        " --threads=2 --corpus=" + corpus + " > " +
                        summary_path),
            0);
  const std::string summary = slurp(summary_path);
  EXPECT_NE(summary.find("0 generated"), std::string::npos) << summary;
}

#endif  // CPT_BATCH_BIN

}  // namespace
}  // namespace cpt::scenario
