// Exact-trace tests for the simulator's delivery semantics. These pin down
// the contract any delivery-engine rewrite must preserve bit-for-bit:
//   * nodes are processed in increasing id order within a round,
//   * each inbox is sorted by receiving port,
//   * a node woken by both a wake-up request and incoming messages gets a
//     single on_wake with the full inbox,
//   * duplicate wake-up requests coalesce,
//   * sending twice over one directed edge in one round aborts (CONGEST
//     bandwidth), and
//   * ports are not width-limited (degree >= 2^20 regression).
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>

#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"

namespace cpt::congest {
namespace {

// The exact global on_wake order within a round is a *serial* contract (a
// parallel run interleaves shards; its guarantee -- identical per-node
// results and pass costs -- is covered by simulator_test.cc). Pin one
// worker regardless of CPT_TEST_THREADS.
SimOptions serial_options() {
  SimOptions opt;
  opt.num_threads = 1;
  return opt;
}

// Runs scripted per-node behavior and records every on_wake as
// "r<round> n<node> [port:tag port:tag ...]".
class Tracer : public Program {
 public:
  using BeginFn = std::function<void(Exec&)>;
  using WakeFn =
      std::function<void(Exec&, NodeId, std::span<const Inbound>)>;

  Tracer(BeginFn begin, WakeFn wake)
      : begin_(std::move(begin)), wake_(std::move(wake)) {}

  void begin(Exec& sim) override { begin_(sim); }

  void on_wake(Exec& sim, NodeId v,
               std::span<const Inbound> inbox) override {
    std::string e = "r" + std::to_string(sim.current_round()) + " n" +
                    std::to_string(v) + " [";
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      if (i > 0) e += ' ';
      e += std::to_string(inbox[i].port) + ':' +
           std::to_string(inbox[i].msg.tag);
    }
    e += ']';
    trace.push_back(std::move(e));
    if (wake_) wake_(sim, v, inbox);
  }

  std::vector<std::string> trace;

 private:
  BeginFn begin_;
  WakeFn wake_;
};

// star(5): hub 0; leaf i sits behind hub port i-1.
TEST(SimulatorDelivery, MessageHeavyExactTrace) {
  const Graph g = gen::star(5);
  Network net(g);
  Simulator sim(net, serial_options());
  Tracer t(
      [](Exec& sim) {
        // Reverse send order: delivery must still sort the hub's inbox by
        // receiving port. Hub also messages leaf 2 in the same round.
        for (NodeId v = 4; v >= 1; --v) sim.send(v, 0, Msg::make(v));
        sim.send(0, 1, Msg::make(99));
      },
      [](Exec& sim, NodeId v, std::span<const Inbound> inbox) {
        if (sim.current_round() == 1 && v == 0) {
          // Echo 10+p to every port.
          for (std::uint32_t p = 0; p < sim.network().port_count(0); ++p) {
            sim.send(0, p, Msg::make(10 + p));
          }
        } else if (sim.current_round() == 2 && v == 1) {
          sim.send(1, 0, Msg::make(21));
        } else if (sim.current_round() == 2 && v == 3) {
          sim.send(3, 0, Msg::make(23));
          sim.wake_next_round(3);  // wake + message must interleave at hub
        }
        (void)inbox;
      });
  const PassResult r = sim.run(t);
  const std::vector<std::string> want = {
      "r1 n0 [0:1 1:2 2:3 3:4]",  // inbox port-sorted despite reverse sends
      "r1 n2 [0:99]",
      "r2 n1 [0:10]",
      "r2 n2 [0:11]",
      "r2 n3 [0:12]",
      "r2 n4 [0:13]",
      "r3 n0 [0:21 2:23]",
      "r3 n3 []",  // pure wake-up, after the hub (id order)
  };
  EXPECT_EQ(t.trace, want);
  EXPECT_TRUE(r.quiesced);
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_EQ(r.messages, 11u);
}

// path(4): 0-1-2-3. Node 1's ports: 0 -> node 0, 1 -> node 2.
TEST(SimulatorDelivery, WakeHeavyExactTrace) {
  const Graph g = gen::path(4);
  Network net(g);
  Simulator sim(net, serial_options());
  Tracer t(
      [](Exec& sim) {
        for (NodeId v = 0; v < 4; ++v) sim.wake_next_round(v);
        sim.wake_next_round(1);  // duplicate: must coalesce
      },
      [](Exec& sim, NodeId v, std::span<const Inbound> inbox) {
        const auto round = sim.current_round();
        if (round == 1 && v == 0) sim.send(0, 0, Msg::make(5));
        if (round == 1 && v == 2) sim.wake_next_round(2);
        if (round == 2 && v == 1) {
          sim.send(1, 0, Msg::make(6));
          sim.send(1, 1, Msg::make(7));
          sim.wake_next_round(1);
        }
        (void)inbox;
      });
  const PassResult r = sim.run(t);
  const std::vector<std::string> want = {
      "r1 n0 []", "r1 n1 []", "r1 n2 []", "r1 n3 []",
      "r2 n1 [0:5]", "r2 n2 []",
      "r3 n0 [0:6]", "r3 n1 []", "r3 n2 [0:7]",
  };
  EXPECT_EQ(t.trace, want);
  EXPECT_TRUE(r.quiesced);
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_EQ(r.messages, 3u);
}

// Contract-violation death tests only fire when contracts are compiled in;
// the CPT_DISABLE_CONTRACTS=ON CI leg skips them.
#if !defined(CPT_DISABLE_CONTRACTS)
TEST(SimulatorDeliveryDeathTest, MidRunBandwidthViolationAborts) {
  const Graph g = gen::path(3);
  Network net(g);
  Simulator sim(net, serial_options());
  Tracer t([](Exec& sim) { sim.send(0, 0, Msg::make(1)); },
           [](Exec& sim, NodeId v, std::span<const Inbound>) {
             if (sim.current_round() == 1 && v == 1) {
               sim.send(1, 1, Msg::make(2));
               sim.send(1, 1, Msg::make(3));  // second send, same directed edge
             }
           });
  EXPECT_DEATH(sim.run(t), "one message per directed edge per round");
}
#endif

// Degree >= 2^20 regression: the seed packed (dst << 20 | port) into one
// 64-bit key, so a port of 2^20 bled into the destination id and the
// message was delivered to the wrong node. Ports must be full-width.
TEST(SimulatorDelivery, HugeDegreeHubDeliversOnCorrectPort) {
  constexpr NodeId kHubDegree = (1u << 20) + 1;  // > 2^20 ports
  const Graph g = gen::star(kHubDegree + 1);     // hub 0 + kHubDegree leaves
  Network net(g);
  Simulator sim(net, serial_options());
  const NodeId high_leaf = kHubDegree;  // behind hub port 2^20
  Tracer t(
      [&](Exec& sim) { sim.send(high_leaf, 0, Msg::make(42)); },
      [&](Exec& sim, NodeId v, std::span<const Inbound> inbox) {
        if (v == 0) {
          ASSERT_EQ(inbox.size(), 1u);
          sim.send(0, inbox.front().port, Msg::make(43));
        }
      });
  const PassResult r = sim.run(t);
  const std::vector<std::string> want = {
      "r1 n0 [1048576:42]",
      "r2 n" + std::to_string(high_leaf) + " [0:43]",
  };
  EXPECT_EQ(t.trace, want);
  EXPECT_EQ(r.messages, 2u);
}

// Interrupted runs (max_rounds) must not leak in-flight state into the
// next run on the same simulator.
TEST(SimulatorDelivery, TruncatedRunLeavesNoResidue) {
  const Graph g = gen::cycle(6);
  Network net(g);
  Simulator sim(net, serial_options());
  Tracer forever([](Exec& sim) { sim.send(0, 0, Msg::make(1)); },
                 [](Exec& sim, NodeId v, std::span<const Inbound> inbox) {
                   for (const Inbound& in : inbox) {
                     sim.send(v, 1 - in.port, in.msg);  // pass it around
                   }
                   sim.wake_next_round(v);
                 });
  const PassResult r1 = sim.run(forever, 4);
  EXPECT_FALSE(r1.quiesced);
  EXPECT_EQ(r1.rounds, 4u);

  Tracer quiet([](Exec& sim) { sim.wake_next_round(3); }, nullptr);
  const PassResult r2 = sim.run(quiet);
  EXPECT_TRUE(r2.quiesced);
  EXPECT_EQ(r2.rounds, 1u);
  EXPECT_EQ(r2.messages, 0u);
  const std::vector<std::string> want = {"r1 n3 []"};
  EXPECT_EQ(quiet.trace, want);
}

}  // namespace
}  // namespace cpt::congest
