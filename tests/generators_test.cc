#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "planar/lr_planarity.h"

namespace cpt {
namespace {

TEST(Generators, BasicShapes) {
  EXPECT_EQ(gen::path(5).num_edges(), 4u);
  EXPECT_EQ(gen::cycle(5).num_edges(), 5u);
  EXPECT_EQ(gen::star(5).num_edges(), 4u);
  EXPECT_EQ(gen::complete(6).num_edges(), 15u);
  EXPECT_EQ(gen::complete_bipartite(3, 4).num_edges(), 12u);
  EXPECT_EQ(gen::grid(3, 4).num_edges(), 3u * 3 + 2u * 4);
  EXPECT_EQ(gen::hypercube(4).num_edges(), 32u);
  EXPECT_EQ(gen::binary_tree(15).num_edges(), 14u);
}

TEST(Generators, TriangulatedGridAddsOneDiagonalPerCell) {
  const Graph g = gen::triangulated_grid(4, 5);
  EXPECT_EQ(g.num_edges(), gen::grid(4, 5).num_edges() + 3u * 4);
}

TEST(Generators, RandomTreeIsATree) {
  Rng rng(5);
  for (NodeId n : {1u, 2u, 10u, 500u}) {
    const Graph g = gen::random_tree(n, rng);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(is_connected(g));
    EXPECT_FALSE(has_cycle(g));
  }
}

TEST(Generators, ApollonianIsMaximalPlanar) {
  Rng rng(7);
  for (NodeId n : {3u, 4u, 10u, 200u}) {
    const Graph g = gen::apollonian(n, rng);
    EXPECT_EQ(g.num_edges(), 3u * n - 6);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(is_planar(g));
    if (n >= 5) {
      // Maximal: adding any random edge breaks planarity. (K3 and K4 are
      // already complete, so there is nothing to add below n = 5.)
      const Graph bad = gen::planar_plus_random_edges(g, 1, rng);
      EXPECT_FALSE(is_planar(bad));
    }
  }
}

TEST(Generators, OuterplanarChordsAreNonCrossing) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = 20 + static_cast<NodeId>(rng.next_below(60));
    const NodeId chords = static_cast<NodeId>(rng.next_below(n - 3));
    const Graph g = gen::outerplanar(n, chords, rng);
    EXPECT_EQ(g.num_edges(), n + chords);
    EXPECT_TRUE(is_planar(g));
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomPlanarHitsRequestedEdgeCount) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 10 + static_cast<NodeId>(rng.next_below(100));
    const EdgeId m =
        n - 1 + static_cast<EdgeId>(rng.next_below(2 * n - 5));
    const Graph g = gen::random_planar(n, m, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), m);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(is_planar(g));
  }
}

TEST(Generators, GnpEdgeCountConcentrates) {
  Rng rng(13);
  const NodeId n = 2000;
  const double p = 4.0 / n;
  const Graph g = gen::gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.15 * expected);
}

TEST(Generators, GnpExtremes) {
  Rng rng(15);
  EXPECT_EQ(gen::gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(20, 1.0, rng).num_edges(), 190u);
}

TEST(Generators, GnmExactCount) {
  Rng rng(17);
  const Graph g = gen::gnm(100, 321, rng);
  EXPECT_EQ(g.num_edges(), 321u);
}

TEST(Generators, RandomRegularDegrees) {
  Rng rng(19);
  for (std::uint32_t d : {2u, 3u, 4u}) {
    const Graph g = gen::random_regular(60, d, rng);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), d);
  }
}

TEST(Generators, DisjointCopiesScale) {
  const Graph g = gen::disjoint_copies(gen::complete(5), 7);
  EXPECT_EQ(g.num_nodes(), 35u);
  EXPECT_EQ(g.num_edges(), 70u);
  EXPECT_FALSE(is_planar(g));
}

TEST(Generators, K5BlobsAreConnectedAndNonPlanar) {
  Rng rng(21);
  const Graph g = gen::planar_with_k5_blobs(100, 10, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_planar(g));
  // Distance certificate: removing one edge per K5 makes it planar, so
  // distance <= 10; and each K5 forces at least one removal.
  EXPECT_EQ(g.num_nodes(), 150u);
}

TEST(Generators, PlanarPlusRandomEdgesAddsExactly) {
  Rng rng(23);
  const Graph base = gen::grid(8, 8);
  const Graph g = gen::planar_plus_random_edges(base, 17, rng);
  EXPECT_EQ(g.num_edges(), base.num_edges() + 17);
}

// Parameterized planarity sweep over the named planar families.
class PlanarFamilies : public ::testing::TestWithParam<int> {};

TEST_P(PlanarFamilies, AreAllPlanar) {
  Rng rng(100 + GetParam());
  EXPECT_TRUE(is_planar(gen::apollonian(50 + GetParam() * 13, rng)));
  EXPECT_TRUE(is_planar(gen::random_planar(60 + GetParam() * 11,
                                           100 + GetParam() * 7, rng)));
  EXPECT_TRUE(is_planar(gen::outerplanar(30 + GetParam() * 5,
                                         GetParam() * 2, rng)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanarFamilies, ::testing::Range(0, 8));

}  // namespace
}  // namespace cpt
