#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/ops.h"
#include "planar/kuratowski.h"
#include "planar/lr_planarity.h"

namespace cpt {
namespace {

TEST(Kuratowski, PlanarGraphsHaveNoWitness) {
  Rng rng(3);
  EXPECT_FALSE(find_kuratowski_subdivision(gen::grid(6, 6)).has_value());
  EXPECT_FALSE(find_kuratowski_subdivision(gen::complete(4)).has_value());
  EXPECT_FALSE(find_kuratowski_subdivision(gen::apollonian(60, rng)).has_value());
  EXPECT_FALSE(find_kuratowski_subdivision(gen::random_tree(50, rng)).has_value());
}

TEST(Kuratowski, K5YieldsK5Witness) {
  const Graph g = gen::complete(5);
  const auto w = find_kuratowski_subdivision(g);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, KuratowskiWitness::Kind::kK5);
  EXPECT_EQ(w->edges.size(), 10u);
  EXPECT_EQ(w->branch_nodes.size(), 5u);
  EXPECT_TRUE(validate_kuratowski_witness(g, *w));
}

TEST(Kuratowski, K33YieldsK33Witness) {
  const Graph g = gen::complete_bipartite(3, 3);
  const auto w = find_kuratowski_subdivision(g);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, KuratowskiWitness::Kind::kK33);
  EXPECT_EQ(w->edges.size(), 9u);
  EXPECT_TRUE(validate_kuratowski_witness(g, *w));
}

TEST(Kuratowski, PetersenContainsAWitness) {
  GraphBuilder pb(10);
  for (NodeId i = 0; i < 5; ++i) {
    pb.add_edge(i, (i + 1) % 5);
    pb.add_edge(i, i + 5);
    pb.add_edge(i + 5, 5 + (i + 2) % 5);
  }
  const Graph g = std::move(pb).build();
  const auto w = find_kuratowski_subdivision(g);
  ASSERT_TRUE(w.has_value());
  // The Petersen graph famously contains a K3,3 subdivision (it is
  // 3-regular, so no K5 subdivision fits).
  EXPECT_EQ(w->kind, KuratowskiWitness::Kind::kK33);
  EXPECT_TRUE(validate_kuratowski_witness(g, *w));
}

TEST(Kuratowski, ToroidalGridIsNonPlanarWithWitness) {
  const Graph g = gen::toroidal_grid(4, 4);
  ASSERT_FALSE(is_planar(g));
  const auto w = find_kuratowski_subdivision(g);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(validate_kuratowski_witness(g, *w));
}

// Property sweep: witnesses of noised planar graphs always validate, and
// hide inside the noisy region.
class KuratowskiSweep : public ::testing::TestWithParam<int> {};

TEST_P(KuratowskiSweep, NoisyPlanarWitnessesValidate) {
  Rng rng(6000 + GetParam());
  const Graph base = gen::random_planar(60, 130, rng);
  const Graph g = gen::planar_plus_random_edges(base, 6, rng);
  const auto w = find_kuratowski_subdivision(g);
  if (!w.has_value()) {
    EXPECT_TRUE(is_planar(g));  // noise may keep it planar: then no witness
    return;
  }
  EXPECT_TRUE(validate_kuratowski_witness(g, *w));
  // Witness edges are a subset of the graph's edges.
  for (const EdgeId e : w->edges) EXPECT_LT(e, g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KuratowskiSweep, ::testing::Range(0, 8));

TEST(Kuratowski, SubdividedWitnessStillMinimal) {
  // A K5 with every edge subdivided once: the witness must be the whole
  // graph (20 edges), still classified as K5.
  const Graph k5 = gen::complete(5);
  GraphBuilder b(5);
  for (const Endpoints e : k5.edges()) {
    const NodeId mid = b.add_node();
    b.add_edge(e.u, mid);
    b.add_edge(mid, e.v);
  }
  const Graph g = std::move(b).build();
  const auto w = find_kuratowski_subdivision(g);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, KuratowskiWitness::Kind::kK5);
  EXPECT_EQ(w->edges.size(), 20u);
  EXPECT_TRUE(validate_kuratowski_witness(g, *w));
}

}  // namespace
}  // namespace cpt
