#include <gtest/gtest.h>

#include "apps/bipartite.h"
#include "apps/cycle_free.h"
#include "apps/spanner.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"
#include "util/union_find.h"

namespace cpt {
namespace {

MinorFreeOptions opts(double eps, bool randomized = false,
                      std::uint64_t seed = 1) {
  MinorFreeOptions o;
  o.epsilon = eps;
  o.randomized = randomized;
  o.seed = seed;
  o.delta = 0.1;
  return o;
}

TEST(CycleFree, TreesAccepted) {
  Rng rng(3);
  for (const bool randomized : {false, true}) {
    const AppResult r =
        test_cycle_freeness(gen::random_tree(200, rng), opts(0.25, randomized));
    EXPECT_EQ(r.verdict, Verdict::kAccept);
  }
}

TEST(CycleFree, ForestsAccepted) {
  Rng rng(5);
  const std::vector<Graph> parts = {gen::random_tree(50, rng), gen::path(30),
                                    gen::binary_tree(40)};
  const AppResult r = test_cycle_freeness(disjoint_union(parts), opts(0.25));
  EXPECT_EQ(r.verdict, Verdict::kAccept);
}

TEST(CycleFree, FarFromCycleFreeRejected) {
  // A triangulated grid is Theta(1)-far from cycle-free: m ~ 3n vs n-1.
  for (const bool randomized : {false, true}) {
    const AppResult r =
        test_cycle_freeness(gen::triangulated_grid(10, 10), opts(0.25, randomized));
    EXPECT_EQ(r.verdict, Verdict::kReject) << "randomized=" << randomized;
  }
}

TEST(CycleFree, ManySmallCyclesRejected) {
  const AppResult r =
      test_cycle_freeness(gen::disjoint_copies(gen::cycle(4), 50), opts(0.2));
  EXPECT_EQ(r.verdict, Verdict::kReject);
}

TEST(Bipartite, BipartitePlanarAccepted) {
  for (const bool randomized : {false, true}) {
    EXPECT_EQ(test_bipartiteness(gen::grid(10, 12), opts(0.25, randomized)).verdict,
              Verdict::kAccept);
    EXPECT_EQ(test_bipartiteness(gen::cycle(24), opts(0.25, randomized)).verdict,
              Verdict::kAccept);
  }
  Rng rng(7);
  EXPECT_EQ(test_bipartiteness(gen::random_tree(150, rng), opts(0.25)).verdict,
            Verdict::kAccept);
}

TEST(Bipartite, FarFromBipartiteRejected) {
  // Triangulated grids have ~rows*cols odd triangles: Theta(1)-far.
  for (const bool randomized : {false, true}) {
    const AppResult r =
        test_bipartiteness(gen::triangulated_grid(10, 10), opts(0.25, randomized));
    EXPECT_EQ(r.verdict, Verdict::kReject) << "randomized=" << randomized;
  }
}

TEST(Bipartite, OddCycleUnionRejected) {
  const AppResult r =
      test_bipartiteness(gen::disjoint_copies(gen::cycle(3), 40), opts(0.2));
  EXPECT_EQ(r.verdict, Verdict::kReject);
}

TEST(Bipartite, OneSidedNeverRejectsBipartite) {
  Rng rng(9);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::grid(6 + seed, 7);
    EXPECT_EQ(test_bipartiteness(g, opts(0.3, true, seed)).verdict,
              Verdict::kAccept);
  }
}

TEST(Spanner, SizeMeetsCorollary17) {
  Rng rng(11);
  for (const bool randomized : {false, true}) {
    const Graph g = gen::triangulated_grid(12, 12);
    const SpannerResult s = build_spanner(g, opts(0.25, randomized));
    // (1 + O(eps)) n edges: tree edges <= n-1, cut edges <= eps*m/2.
    EXPECT_LE(s.edges.size(),
              g.num_nodes() - 1 + 0.125 * g.num_edges());
  }
}

TEST(Spanner, PreservesConnectivity) {
  Rng rng(13);
  const Graph g = gen::random_planar(200, 500, rng);
  const SpannerResult s = build_spanner(g, opts(0.25));
  UnionFind uf(g.num_nodes());
  for (const EdgeId e : s.edges) {
    const Endpoints ep = g.endpoints(e);
    uf.unite(ep.u, ep.v);
  }
  for (const Endpoints e : g.edges()) {
    EXPECT_TRUE(uf.same(e.u, e.v));
  }
}

TEST(Spanner, StretchIsBounded) {
  Rng rng(15);
  const Graph g = gen::triangulated_grid(10, 14);
  const SpannerResult s = build_spanner(g, opts(0.25));
  Rng sample_rng(99);
  const std::uint32_t stretch = measure_edge_stretch(g, s.edges, 200, sample_rng);
  // Stretch is bounded by ~2x the max part diameter + 1.
  EXPECT_LE(stretch, 4u * s.partition.max_part_ecc + 1u);
  EXPECT_GE(stretch, 1u);
}

TEST(Spanner, TreeInputsYieldTheTreeItself) {
  Rng rng(17);
  const Graph g = gen::random_tree(100, rng);
  const SpannerResult s = build_spanner(g, opts(0.3));
  EXPECT_EQ(s.edges.size(), g.num_edges());  // every edge needed
}

TEST(Spanner, EdgesAreRealAndUnique) {
  Rng rng(19);
  const Graph g = gen::apollonian(150, rng);
  const SpannerResult s = build_spanner(g, opts(0.25));
  std::vector<bool> seen(g.num_edges(), false);
  for (const EdgeId e : s.edges) {
    ASSERT_LT(e, g.num_edges());
    EXPECT_FALSE(seen[e]);
    seen[e] = true;
  }
}

TEST(Spanner, UltraSparseRegime) {
  // Section 1.2: for minor-free graphs and eps = o(1) the spanner is
  // ultra-sparse, size (1 + O(eps)) n. Check the ratio at small eps.
  Rng rng(21);
  const Graph g = gen::apollonian(600, rng);
  const SpannerResult s = build_spanner(g, opts(0.05));
  EXPECT_LE(s.size_ratio(g), 1.4);
}

TEST(Apps, RoundLedgersPopulated) {
  const Graph g = gen::grid(8, 8);
  const AppResult cf = test_cycle_freeness(g, opts(0.25));
  EXPECT_GT(cf.ledger.total_rounds(), 0u);
  const SpannerResult s = build_spanner(g, opts(0.25));
  EXPECT_GT(s.ledger.total_rounds(), 0u);
}

}  // namespace
}  // namespace cpt
