#include <gtest/gtest.h>

#include "congest/network.h"
#include "congest/simulator.h"
#include "core/stage2.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

using testutil::whole_graph_parts;

Stage2Result run(const Graph& g, const Stage2Options& opt,
                 congest::RoundLedger* ledger_out = nullptr) {
  congest::Network net(g);
  congest::Simulator sim(net);
  congest::RoundLedger ledger;
  const PartForest pf = whole_graph_parts(g);
  Stage2Result r = run_stage2(sim, g, pf, opt, ledger);
  if (ledger_out != nullptr) *ledger_out = ledger;
  return r;
}

Stage2Options opts(double eps = 0.2, bool exhaustive = false) {
  Stage2Options o;
  o.epsilon = eps;
  o.seed = 12345;
  o.exhaustive_check = exhaustive;
  return o;
}

TEST(Stage2, PlanarPartsAreCertifiedAndAccepted) {
  Rng rng(3);
  const Graph g = gen::random_planar(200, 450, rng);
  const Stage2Result r = run(g, opts());
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.stats.parts_certified_planar, 1u);
  EXPECT_EQ(r.stats.violations_found, 0u);
}

TEST(Stage2, EdgeBoundRejectsDenseParts) {
  const Graph g = gen::complete(5);  // 10 > 3*5-6 = 9
  const Stage2Result r = run(g, opts());
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.stats.parts_rejected_edge_bound, 1u);
  EXPECT_EQ(r.reason, "edge bound m > 3n-6");
}

TEST(Stage2, K33PassesEdgeBoundButViolationsCatchIt) {
  // K33: m = 9 <= 3*6-6 = 12, so the edge bound is silent; the sampled
  // violation machinery must reject.
  const Graph g = gen::complete_bipartite(3, 3);
  const Stage2Result r = run(g, opts());
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.stats.parts_certified_planar, 0u);
  EXPECT_GT(r.stats.violations_found, 0u);
}

TEST(Stage2, ExhaustiveOracleRejectsK33Deterministically) {
  const Graph g = gen::disjoint_copies(gen::complete_bipartite(3, 3), 5);
  const Stage2Result r = run(g, opts(0.2, /*exhaustive=*/true));
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_GT(r.stats.exhaustive_violating_edges, 0u);
  EXPECT_EQ(r.stats.parts_rejected_violation, 5u);
}

TEST(Stage2, PlanarWithManyPartsAllCertified) {
  const Graph g = gen::disjoint_copies(gen::grid(5, 5), 8);
  const Stage2Result r = run(g, opts());
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.stats.parts, 8u);
  EXPECT_EQ(r.stats.parts_certified_planar, 8u);
}

TEST(Stage2, EagerModeRejectsOnEmbeddingFailure) {
  Stage2Options o = opts();
  o.eager_reject_embedding = true;
  const Graph g = gen::complete_bipartite(3, 3);
  congest::Network net(g);
  congest::Simulator sim(net);
  congest::RoundLedger ledger;
  const PartForest pf = whole_graph_parts(g);
  const Stage2Result r = run_stage2(sim, g, pf, o, ledger);
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.stats.parts_rejected_embedding, 1u);
}

TEST(Stage2, MixedPartsRejectOnlyTheBadOnes) {
  const std::vector<Graph> parts = {gen::grid(6, 6),
                                    gen::complete_bipartite(3, 3),
                                    gen::cycle(12)};
  const Graph g = disjoint_union(parts);
  const Stage2Result r = run(g, opts(0.2, /*exhaustive=*/true));
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.stats.parts_certified_planar, 2u);
  EXPECT_EQ(r.stats.parts_rejected_violation, 1u);
}

TEST(Stage2, TreesHaveNoNonTreeEdges) {
  Rng rng(5);
  const Graph g = gen::random_tree(300, rng);
  const Stage2Result r = run(g, opts());
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.stats.total_nontree_edges, 0u);
  EXPECT_EQ(r.stats.sampled_edges, 0u);
}

TEST(Stage2, GhRoundChargeAppearsInLedger) {
  Rng rng(7);
  const Graph g = gen::apollonian(100, rng);
  congest::RoundLedger ledger;
  run(g, opts(), &ledger);
  EXPECT_GT(ledger.rounds_with_prefix("stage2/gh-embedding"), 0u);
  EXPECT_GT(ledger.rounds_with_prefix("stage2/bfs"), 0u);
  EXPECT_GT(ledger.rounds_with_prefix("stage2/labels"), 0u);
}

TEST(Stage2, SampledDetectionIsSeedRobustOnFarParts) {
  // 30 disjoint K33s: each part is 1/9-far from planar; with eps = 0.2 and
  // exhaustive off, detection must succeed for essentially all seeds.
  const Graph g = gen::disjoint_copies(gen::complete_bipartite(3, 3), 30);
  int detected = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Stage2Options o = opts(0.3);
    o.seed = seed;
    congest::Network net(g);
    congest::Simulator sim(net);
    congest::RoundLedger ledger;
    const PartForest pf = whole_graph_parts(g);
    if (run_stage2(sim, g, pf, o, ledger).verdict == Verdict::kReject) {
      ++detected;
    }
  }
  EXPECT_EQ(detected, 8);
}

// The discrepancy this reproduction uncovered (see DESIGN.md): Definition-7
// violations DO exist on planar graphs under BFS labeling (3x3 grid
// counterexample), which is why the certification gate exists. This test
// documents the counterexample.
TEST(Stage2, Claim10CounterexampleDocumented) {
  const Graph g = gen::grid(3, 3);
  Stage2Options o = opts(0.2, /*exhaustive=*/true);
  // With the certification gate, the planar grid is accepted...
  EXPECT_EQ(run(g, o).verdict, Verdict::kAccept);
  // ...but the raw Definition-7 condition does flag edges: disable the gate
  // by checking the labels directly in violation_test / E9 bench. Here we
  // assert the accept-side behaviour stays correct.
  const Stage2Result r = run(g, o);
  EXPECT_EQ(r.stats.exhaustive_violating_edges, 0u);  // gated off
}

}  // namespace
}  // namespace cpt
