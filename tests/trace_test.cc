// Observability layer tests: the trace/metrics renderers, the
// determinism contract (non-timestamp trace bytes identical at every
// --threads value and under both delivery strategies), the
// tracing-disabled fast path (zero allocations), and the cpt_trace
// analyses (golden summary, diff divergence detection).
//
// Regenerating the summary golden: run with CPT_PRINT_GOLDENS=1 and
// paste the printed hash over kSummaryGolden below.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "scenario/engine.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "scenario/trace_analysis.h"
#include "util/trace.h"

#ifndef CPT_MANIFEST_DIR
#error "CPT_MANIFEST_DIR must point at bench/manifests"
#endif

// Global allocation counter backing the disabled-path test: the
// tracing-off fast path (null buffer pointer) must not touch the heap.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cpt {
namespace {

using scenario::BatchOptions;
using scenario::Manifest;
using scenario::TraceFile;

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Per-line deterministic view of a rendered trace stream.
std::string stripped(const std::string& jsonl) {
  std::string out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    out += scenario::strip_trace_timestamps(
        std::string_view(jsonl).substr(pos, nl - pos));
    out += '\n';
    pos = nl + 1;
  }
  return out;
}

TEST(TraceArgsTest, RendersTypedValuesAsJson) {
  util::TraceArgs a;
  a.add("u", std::uint64_t{7})
      .add("i", std::int64_t{-3})
      .add("b", true)
      .add("s", "x\"y")
      .add_hex("h", 0xabcULL);
  ASSERT_EQ(a.entries().size(), 5u);
  EXPECT_EQ(a.entries()[0].second, "7");
  EXPECT_EQ(a.entries()[1].second, "-3");
  EXPECT_EQ(a.entries()[2].second, "true");
  EXPECT_EQ(a.entries()[3].second, "\"x\\\"y\"");
  EXPECT_EQ(a.entries()[4].second, "\"0x0000000000000abc\"");
}

TEST(TraceSessionTest, RendersDeterministicJsonl) {
  if (!util::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  util::TraceSession session;
  util::TraceBuffer* t = session.make_track(3, "lane");
  const std::size_t outer = t->begin_span("outer");
  t->instant("tick", util::TraceArgs().add("n", 2u));
  const std::size_t inner = t->begin_span("inner");
  t->end_span(inner);
  t->end_span(outer, util::TraceArgs().add("rounds", std::uint64_t{9}));
  t->count("bytes", 40);

  const std::string det = stripped(session.render_jsonl("demo"));
  const std::string expect =
      "{\"schema\":\"cpt_trace_v1\",\"name\":\"demo\",\"tracks\":1}\n"
      "{\"track\":3,\"label\":\"lane\"}\n"
      "{\"track\":3,\"seq\":0,\"kind\":\"span\",\"name\":\"outer\","
      "\"depth\":0,\"args\":{\"rounds\":9}}\n"
      "{\"track\":3,\"seq\":1,\"kind\":\"instant\",\"name\":\"tick\","
      "\"depth\":1,\"args\":{\"n\":2}}\n"
      "{\"track\":3,\"seq\":2,\"kind\":\"span\",\"name\":\"inner\","
      "\"depth\":1}\n"
      "{\"track\":3,\"seq\":3,\"kind\":\"count\",\"name\":\"bytes\","
      "\"depth\":0,\"value\":40}\n";
  EXPECT_EQ(det, expect);

  // Same session, same track id: the buffer is reused, not duplicated.
  EXPECT_EQ(session.make_track(3, "other"), t);
}

TEST(MetricsRegistryTest, SplitsRuntimeSectionAndComputesQuartiles) {
  util::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add_counter("batch/jobs", 3);
  m.add_counter("batch/jobs", 1);
  m.set_gauge("corpus/ratio", 0.5);
  m.add_counter("rt/sim/union_rounds", 8);
  m.max_gauge("rt/batch/peak", 2);
  m.max_gauge("rt/batch/peak", 7);
  m.max_gauge("rt/batch/peak", 3);
  for (const std::uint64_t v : {4, 1, 3, 2}) m.record("rt/wake", v);
  EXPECT_FALSE(m.empty());

  const std::string doc = m.render_json("t");
  // Deterministic section: plain names only.
  EXPECT_NE(doc.find("\"batch/jobs\": 4"), std::string::npos);
  EXPECT_NE(doc.find("\"corpus/ratio\": 0.5"), std::string::npos);
  // rt/ names land under "runtime" and nowhere else.
  const std::size_t runtime_pos = doc.find("\"runtime\"");
  ASSERT_NE(runtime_pos, std::string::npos);
  EXPECT_GT(doc.find("\"rt/sim/union_rounds\": 8"), runtime_pos);
  EXPECT_GT(doc.find("\"rt/batch/peak\": 7"), runtime_pos);
  // Nearest-rank quartiles over {1,2,3,4} (aggregate.h's rule).
  EXPECT_NE(doc.find("\"count\": 4, \"min\": 1, \"p25\": 2, \"p50\": 3, "
                     "\"p75\": 3, \"max\": 4, \"sum\": 10"),
            std::string::npos);

  // The deterministic view drops the whole runtime section.
  std::string det, err;
  ASSERT_TRUE(scenario::metrics_deterministic_view(doc, &det, &err)) << err;
  EXPECT_EQ(det.find("rt/"), std::string::npos);
  EXPECT_NE(det.find("\"batch/jobs\": 4"), std::string::npos);
}

TEST(TraceAnalysisTest, StripTraceTimestampsIsASuffixStrip) {
  EXPECT_EQ(scenario::strip_trace_timestamps(
                "{\"track\":1,\"seq\":0,\"kind\":\"span\",\"name\":\"x\","
                "\"depth\":0,\"ts_ns\":123,\"dur_ns\":456}"),
            "{\"track\":1,\"seq\":0,\"kind\":\"span\",\"name\":\"x\","
            "\"depth\":0}");
  // Header and track lines carry no timestamps and pass through.
  EXPECT_EQ(scenario::strip_trace_timestamps("{\"track\":1,\"label\":\"a\"}"),
            "{\"track\":1,\"label\":\"a\"}");
}

TEST(TraceDisabledPathTest, NullBufferGuardAllocatesNothing) {
  util::TraceBuffer* t = nullptr;
  util::TraceSession* session = nullptr;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // The instrumentation-site pattern: one branch, no work when off.
    if (util::kTraceCompiled && t != nullptr) {
      t->instant("ev");
      t->count("c", 1);
    }
    if (util::kTraceCompiled && session != nullptr) {
      session->metrics().add_counter("x", 1);
    }
    util::TraceSpan span(t, "s");
    span.end();
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// The tentpole's acceptance bar: every non-timestamp byte of the trace
// and the deterministic metrics sections are identical between a
// 1-thread and a 4-thread batch run of the CI smoke manifest.
TEST(TraceDeterminismTest, BatchTraceInvariantAcrossThreadCounts) {
  if (!util::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  Manifest m;
  std::string error;
  ASSERT_TRUE(scenario::load_manifest_file(CPT_MANIFEST_DIR "/ci_smoke.json",
                                           &m, &error))
      << error;
  auto traced_run = [&m](unsigned threads, std::string* trace_out,
                         std::string* metrics_out) {
    util::TraceSession session;
    BatchOptions o;
    o.threads = threads;
    o.trace = &session;
    const scenario::BatchResult r = scenario::run_batch(m, o);
    EXPECT_EQ(r.failed_jobs, 0u);
    *trace_out = stripped(session.render_jsonl(m.name));
    std::string err;
    EXPECT_TRUE(scenario::metrics_deterministic_view(
        session.metrics().render_json(m.name), metrics_out, &err))
        << err;
  };
  std::string t1, m1, t4, m4;
  traced_run(1, &t1, &m1);
  traced_run(4, &t4, &m4);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(m1, m4);
}

// Union and K-way merge delivery must produce the same trace: the
// rebalance instants are a pure function of the round schedule and the
// harvested send counters, which both strategies share; only rt/
// metrics may differ.
TEST(TraceDeterminismTest, UnionAndMergeDeliveryTracesMatch) {
  if (!util::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  const Graph g = gen::triangulated_grid(24, 24);
  auto traced_stage1 = [&g](bool union_delivery) {
    util::TraceSession session;
    congest::Network net(g);
    congest::SimOptions so;
    so.num_threads = 4;
    so.union_delivery = union_delivery;
    so.rebalance_interval = 32;
    so.trace = session.make_track(0, "sim");
    congest::Simulator sim(net, so);
    congest::RoundLedger ledger;
    ledger.set_trace(so.trace);
    Stage1Options opt;
    const Stage1Result r = run_stage1(sim, g, opt, ledger);
    EXPECT_FALSE(r.rejected);
    return stripped(session.render_jsonl("stage1"));
  };
  const std::string union_trace = traced_stage1(true);
  const std::string merge_trace = traced_stage1(false);
  EXPECT_EQ(union_trace, merge_trace);
  // The multi-worker run actually rebalanced (the instants exist).
  EXPECT_NE(union_trace.find("\"name\":\"sim/rebalance\""),
            std::string::npos);
}

// Golden cpt_trace summary over the ci_smoke trace (wall columns off:
// a pure function of the deterministic fields). Pins the trace content
// -- span names, counts, rounds/messages sums -- across refactors.
// Regenerate with CPT_PRINT_GOLDENS=1.
constexpr std::uint64_t kSummaryGolden = 0xe9c5d107e77040d5ULL;

TEST(TraceAnalysisTest, GoldenSummaryAndDiffOnCiSmoke) {
  if (!util::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  Manifest m;
  std::string error;
  ASSERT_TRUE(scenario::load_manifest_file(CPT_MANIFEST_DIR "/ci_smoke.json",
                                           &m, &error))
      << error;
  util::TraceSession session;
  BatchOptions o;
  o.threads = 1;
  o.trace = &session;
  const scenario::BatchResult r = scenario::run_batch(m, o);
  ASSERT_EQ(r.failed_jobs, 0u);

  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/trace_a.jsonl";
  ASSERT_TRUE(
      scenario::write_text_file(path_a, session.render_jsonl(m.name)));
  TraceFile t;
  ASSERT_TRUE(scenario::load_trace_file(path_a, &t, &error)) << error;
  EXPECT_EQ(t.name, m.name);
  // 1 batch track + 6 instance slots + 24 job tracks.
  EXPECT_EQ(t.tracks.size(), 31u);
  const std::string summary = scenario::trace_summary(t, false);
  const std::uint64_t hash = fnv1a64(summary);
  if (std::getenv("CPT_PRINT_GOLDENS") != nullptr) {
    std::printf("constexpr std::uint64_t kSummaryGolden = 0x%llxULL;\n",
                static_cast<unsigned long long>(hash));
  } else {
    EXPECT_EQ(hash, kSummaryGolden)
        << "summary drift; regenerate with CPT_PRINT_GOLDENS=1\n"
        << summary;
  }

  // diff: a trace matches itself, and a mutated copy is caught with a
  // line-accurate report.
  std::string report;
  EXPECT_TRUE(scenario::trace_diff_files(path_a, path_a, &report)) << report;
  std::string body = session.render_jsonl(m.name);
  const std::string needle = "\"kind\":\"span\",\"name\":\"job\"";
  const std::size_t at = body.find(needle);
  ASSERT_NE(at, std::string::npos);
  body.replace(at, needle.size(), "\"kind\":\"span\",\"name\":\"JOB\"");
  const std::string path_b = dir + "/trace_b.jsonl";
  ASSERT_TRUE(scenario::write_text_file(path_b, body));
  EXPECT_FALSE(scenario::trace_diff_files(path_a, path_b, &report));
  EXPECT_NE(report.find("first divergence"), std::string::npos);
}

TEST(ProgressCountersTest, CountsJobsAndCorpusActivity) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(scenario::load_manifest_file(CPT_MANIFEST_DIR "/ci_smoke.json",
                                           &m, &error))
      << error;
  scenario::ProgressCounters progress;
  BatchOptions o;
  o.threads = 2;
  o.progress = &progress;
  const scenario::BatchResult r = scenario::run_batch(m, o);
  ASSERT_EQ(r.failed_jobs, 0u);
  EXPECT_EQ(progress.jobs_total.load(), r.jobs.size());
  EXPECT_EQ(progress.jobs_done.load(), r.jobs.size());
  EXPECT_EQ(progress.corpus_generated.load(), r.corpus.generated);
  EXPECT_EQ(progress.corpus_hits.load(), r.corpus.disk_hits);
  EXPECT_EQ(progress.retries.load(), r.total_retries);
}

}  // namespace
}  // namespace cpt
