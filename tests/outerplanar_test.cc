#include <gtest/gtest.h>

#include "apps/outerplanar.h"
#include "graph/generators.h"
#include "graph/ops.h"

namespace cpt {
namespace {

MinorFreeOptions opts(double eps, bool randomized = false) {
  MinorFreeOptions o;
  o.epsilon = eps;
  o.randomized = randomized;
  o.delta = 0.1;
  o.seed = 1;
  return o;
}

TEST(Outerplanar, OuterplanarInputsAccepted) {
  Rng rng(3);
  for (const bool randomized : {false, true}) {
    EXPECT_EQ(test_outerplanarity(gen::cycle(40), opts(0.25, randomized)).verdict,
              Verdict::kAccept);
    EXPECT_EQ(
        test_outerplanarity(gen::outerplanar(60, 30, rng), opts(0.25, randomized))
            .verdict,
        Verdict::kAccept);
    EXPECT_EQ(test_outerplanarity(gen::caterpillar(30, 40, rng),
                                  opts(0.25, randomized))
                  .verdict,
              Verdict::kAccept);
  }
}

TEST(Outerplanar, WheelUnionIsFarAndRejected) {
  // Each W6 wheel (hub + 5-cycle) needs at least one edge removed to become
  // outerplanar: the union is 1/10-far from outerplanarity.
  const Graph g = gen::disjoint_copies(gen::wheel(6), 40);
  for (const bool randomized : {false, true}) {
    EXPECT_EQ(test_outerplanarity(g, opts(0.15, randomized)).verdict,
              Verdict::kReject);
  }
}

TEST(Outerplanar, TriangulatedGridRejected) {
  // Maximal-planar-ish density is far from outerplanar (outerplanar graphs
  // have at most 2n-3 edges; trigrids have ~3n).
  EXPECT_EQ(test_outerplanarity(gen::triangulated_grid(10, 10), opts(0.2)).verdict,
            Verdict::kReject);
}

TEST(Outerplanar, OneSidedOverSeeds) {
  Rng rng(5);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    MinorFreeOptions o = opts(0.3, true);
    o.seed = seed;
    const Graph g = gen::outerplanar(80, 20, rng);
    EXPECT_EQ(test_outerplanarity(g, o).verdict, Verdict::kAccept);
  }
}

TEST(Outerplanar, LedgerIncludesCheckCharge) {
  const AppResult r = test_outerplanarity(gen::cycle(30), opts(0.25));
  EXPECT_GT(r.ledger.rounds_with_prefix("app/outerplanar-check"), 0u);
}

}  // namespace
}  // namespace cpt
